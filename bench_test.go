// Fig. 9 benchmark harness plus the EXT-* ablations that run at the
// integration level (per-package ablations live next to their packages;
// see DESIGN.md §2).
//
// The paper measured, on the Aircraft Optimization scenario, the CPU
// time of (a) the join with trust negotiation (~4 s), (b) the join
// without it (~3 s), and (c) the standalone trust negotiation, all
// across its SOAP web-service stack. The three benchmarks below
// regenerate those bars over this reproduction's XML-over-HTTP services;
// EXPERIMENTS.md compares the shapes (cmd/benchjoin prints the rows).
package trustvo_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"trustvo"
)

var bgCtx = context.Background()

// benchEnv hosts the Aircraft Optimization initiator's toolkit on an
// HTTP loopback server with one capable member.
type benchEnv struct {
	srv    *httptest.Server
	tk     *trustvo.ToolkitService
	member *trustvo.MemberClient
}

func newBenchEnv(b *testing.B) *benchEnv {
	b.Helper()
	ca := trustvo.MustNewAuthority("CertCA")
	iniParty := &trustvo.Party{
		Name:     "AircraftCo",
		Profile:  trustvo.NewProfile("AircraftCo"),
		Policies: trustvo.MustPolicySet(),
		Trust:    trustvo.NewTrustStore(ca),
	}
	contract := &trustvo.Contract{
		VOName:    "AircraftOptimizationVO",
		Goal:      "wing optimization",
		Initiator: "AircraftCo",
		Roles: []trustvo.RoleSpec{
			{Name: "DesignWebPortal", Capabilities: []string{"design-db"}, MinMembers: 1,
				AdmissionPolicies: trustvo.MustParsePolicies(
					"M <- WebDesignerQuality(regulation='UNI EN ISO 9000'), AAAMember")},
		},
	}
	ini, err := trustvo.NewInitiator(contract, iniParty, trustvo.NewRegistry())
	if err != nil {
		b.Fatal(err)
	}
	if err := ini.VO.StartFormation(); err != nil {
		b.Fatal(err)
	}
	tk := trustvo.NewToolkitService(ini)
	// benches run thousands of negotiations per second: retire finished
	// sessions promptly so the session table stays small
	tk.TN.MaxSessionAge = time.Second
	tk.TN.DoneRetention = 50 * time.Millisecond
	mux := http.NewServeMux()
	tk.Register(mux)
	srv := httptest.NewServer(mux)
	b.Cleanup(srv.Close)

	// The member provides, as in the paper's test (a), its ISO 9000
	// quality and AAA-membership certificates.
	prof := trustvo.NewProfile("AerospaceCo")
	prof.Add(
		ca.MustIssue(trustvo.IssueRequest{
			Type: "WebDesignerQuality", Holder: "AerospaceCo",
			Attributes: []trustvo.Attribute{{Name: "regulation", Value: "UNI EN ISO 9000"}},
		}),
		ca.MustIssue(trustvo.IssueRequest{Type: "AAAMember", Holder: "AerospaceCo"}),
	)
	member := &trustvo.MemberClient{
		BaseURL: srv.URL,
		Party: &trustvo.Party{
			Name:     "AerospaceCo",
			Profile:  prof,
			Policies: trustvo.MustPolicySet(),
			Trust:    trustvo.NewTrustStore(ca),
		},
	}
	if err := member.Publish(bgCtx, &trustvo.Description{
		Provider: "AerospaceCo", Service: "DesignPortal", Capabilities: []string{"design-db"},
	}); err != nil {
		b.Fatal(err)
	}
	return &benchEnv{srv: srv, tk: tk, member: member}
}

func (e *benchEnv) reset(b *testing.B) {
	b.Helper()
	if e.tk.Initiator.VO.Member("AerospaceCo") != nil {
		if err := e.tk.Initiator.VO.Remove("AerospaceCo"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoin is Fig. 9's "Join" bar: the pre-integration toolkit path
// (registry check, invitation, admission, X.509 token minting) over the
// web-service boundary, without trust negotiation.
func BenchmarkJoin(b *testing.B) {
	env := newBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Same protocol steps as the integrated path minus the TN:
		// invitation round trip, then admission + token minting.
		if _, _, err := env.member.Apply(bgCtx, "DesignWebPortal"); err != nil {
			b.Fatal(err)
		}
		if _, err := env.member.JoinDirect(bgCtx, "DesignWebPortal"); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		env.reset(b)
		b.StartTimer()
	}
}

// BenchmarkJoinWithTN is Fig. 9's "Join with trust negotiation" bar: the
// same join path with the integrated TN (§6.3.1 test (a)).
func BenchmarkJoinWithTN(b *testing.B) {
	env := newBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := env.member.Join(bgCtx, "DesignWebPortal"); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		env.reset(b)
		b.StartTimer()
	}
}

// BenchmarkTrustNegotiationStandalone is Fig. 9's "trust negotiation"
// bar: the identical negotiation run from the standalone TN web service
// (§6.3.1 test (c)) — no join machinery around it.
func BenchmarkTrustNegotiationStandalone(b *testing.B) {
	env := newBenchEnv(b)
	// Negotiate for the membership resource but with admission disabled:
	// a separate TN service bound to an equivalent controller party whose
	// grant is a plain payload.
	ctl := &trustvo.Party{
		Name:     "AircraftCo",
		Profile:  env.tk.Initiator.Party.Profile,
		Policies: env.tk.Initiator.Party.Policies,
		Trust:    env.tk.Initiator.Party.Trust,
		Grant:    func(resource, peer string) ([]byte, error) { return []byte("ok"), nil },
	}
	mux := http.NewServeMux()
	tnsvc := trustvo.NewTNService(ctl)
	tnsvc.MaxSessionAge = time.Second
	tnsvc.DoneRetention = 50 * time.Millisecond
	tnsvc.Register(mux)
	srv := httptest.NewServer(mux)
	b.Cleanup(srv.Close)
	tn := &trustvo.TNClient{BaseURL: srv.URL, Party: env.member.Party}
	resource := trustvo.MembershipResource("AircraftOptimizationVO", "DesignWebPortal")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := tn.Negotiate(bgCtx, resource)
		if err != nil || !out.Succeeded {
			b.Fatalf("negotiation failed: %v %+v", err, out)
		}
	}
}

// BenchmarkTrustNegotiationInProcess isolates the engine cost from the
// HTTP transport (reference point for EXPERIMENTS.md).
func BenchmarkTrustNegotiationInProcess(b *testing.B) {
	env := newBenchEnv(b)
	ctl := &trustvo.Party{
		Name:     "AircraftCo",
		Profile:  env.tk.Initiator.Party.Profile,
		Policies: env.tk.Initiator.Party.Policies,
		Trust:    env.tk.Initiator.Party.Trust,
		Grant:    func(resource, peer string) ([]byte, error) { return []byte("ok"), nil },
	}
	resource := trustvo.MembershipResource("AircraftOptimizationVO", "DesignWebPortal")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := trustvo.Negotiate(env.member.Party, ctl, resource)
		if err != nil || !out.Succeeded {
			b.Fatalf("negotiation failed: %v %+v", err, out)
		}
	}
}

// BenchmarkFormationCandidates measures EXT-8: joining one role when K
// candidates negotiate for it (sequential JoinFirst vs concurrent).
func benchmarkFormationCandidates(b *testing.B, k int, concurrent bool) {
	ca := trustvo.MustNewAuthority("CertCA")
	newAgents := func() []*trustvo.MemberAgent {
		agents := make([]*trustvo.MemberAgent, k)
		for i := range agents {
			name := fmt.Sprintf("HPC-%d", i)
			prof := trustvo.NewProfile(name)
			prof.Add(ca.MustIssue(trustvo.IssueRequest{Type: "HPCCertification", Holder: name}))
			agents[i] = trustvo.NewMemberAgent(&trustvo.Party{
				Name: name, Profile: prof,
				Policies: trustvo.MustPolicySet(),
				Trust:    trustvo.NewTrustStore(ca),
			}, &trustvo.Description{Provider: name, Service: "Sim", Capabilities: []string{"simulation"}})
		}
		return agents
	}
	contract := &trustvo.Contract{
		VOName: "V", Initiator: "I",
		Roles: []trustvo.RoleSpec{{
			Name: "HPC", MaxMembers: k, MinMembers: 1,
			AdmissionPolicies: trustvo.MustParsePolicies("M <- HPCCertification"),
		}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		reg := trustvo.NewRegistry()
		agents := newAgents()
		iniParty := &trustvo.Party{
			Name: "I", Profile: trustvo.NewProfile("I"),
			Policies: trustvo.MustPolicySet(), Trust: trustvo.NewTrustStore(ca),
		}
		ini, err := trustvo.NewInitiator(contract, iniParty, reg)
		if err != nil {
			b.Fatal(err)
		}
		ini.VO.StartFormation()
		for _, a := range agents {
			a.Publish(reg)
		}
		b.StartTimer()
		if concurrent {
			if _, err := ini.JoinConcurrent(agents, "HPC", trustvo.JoinOptions{Negotiate: true}); err != nil {
				b.Fatal(err)
			}
		} else {
			for _, a := range agents {
				if _, _, err := ini.Join(a, "HPC", trustvo.JoinOptions{Negotiate: true}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// disabledMetrics mirrors an instrumented struct whose telemetry is off
// (negotiation.Party.Metrics == nil): the hot-path cost must be the nil
// branch alone.
type disabledMetrics struct {
	metrics *trustvo.MetricsRegistry
}

// BenchmarkTelemetryDisabled guards the telemetry-off fast path: every
// instrumented call site gates on a nil registry check, so with
// collection disabled the per-site cost must stay under 5ns/op — cheap
// enough to leave the negotiation engine instrumented unconditionally.
func BenchmarkTelemetryDisabled(b *testing.B) {
	e := &disabledMetrics{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if m := e.metrics; m != nil {
			m.Counter("tn_disclosures_sent_total", "role", "requester").Inc()
		}
	}
}

// BenchmarkTelemetryNilCounter covers the cached-handle variant (the
// store's pattern): metric handles resolved once from a nil registry are
// nil and every operation on them is a no-op nil check.
func BenchmarkTelemetryNilCounter(b *testing.B) {
	var reg *trustvo.MetricsRegistry
	c := reg.Counter("store_wal_appends_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkTelemetryCounterEnabled is the enabled counterpart: one
// registry lookup plus an atomic increment per recording.
func BenchmarkTelemetryCounterEnabled(b *testing.B) {
	reg := trustvo.NewMetricsRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.Counter("tn_disclosures_sent_total", "role", "requester").Inc()
	}
}

func BenchmarkFormationCandidates4Sequential(b *testing.B) { benchmarkFormationCandidates(b, 4, false) }
func BenchmarkFormationCandidates4Concurrent(b *testing.B) { benchmarkFormationCandidates(b, 4, true) }
func BenchmarkFormationCandidates8Sequential(b *testing.B) { benchmarkFormationCandidates(b, 8, false) }
func BenchmarkFormationCandidates8Concurrent(b *testing.B) { benchmarkFormationCandidates(b, 8, true) }
