package trustvo_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"trustvo"
)

// The golden corpus under testdata/ pins the on-disk artifact formats:
// every file must keep parsing, and structured round trips must be
// stable. The mutation tests then hammer the same parsers with corrupted
// inputs — they must reject or accept deterministically, never panic.

func readCorpus(t testing.TB, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestCorpusCredential(t *testing.T) {
	cred, err := trustvo.ParseCredential(readCorpus(t, "credential_iso9000.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if cred.Type != "ISO 9000 Certified" || cred.Issuer != "INFN" || cred.Holder != "AerospaceCo" {
		t.Fatalf("credential = %+v", cred)
	}
	if v, _ := cred.Attr("QualityRegulation"); v != "UNI EN ISO 9000" {
		t.Fatalf("attribute = %q", v)
	}
	if cred.Sensitivity != trustvo.SensitivityLow {
		t.Fatalf("sensitivity = %v", cred.Sensitivity)
	}
	// round trip is stable
	re, err := trustvo.ParseCredential(cred.XML())
	if err != nil || re.XML() != cred.XML() {
		t.Fatalf("round trip unstable: %v", err)
	}
}

func TestCorpusPolicy(t *testing.T) {
	pol, err := trustvo.ParsePolicy(readCorpus(t, "policy_iso9000.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if pol.Resource != "ISO 9000 Certified" || len(pol.Terms) != 1 {
		t.Fatalf("policy = %+v", pol)
	}
	if pol.Terms[0].CredType != "AAAccreditation" {
		t.Fatalf("term = %+v", pol.Terms[0])
	}
}

func TestCorpusPolicyDSL(t *testing.T) {
	pols, err := trustvo.ParsePolicies(readCorpus(t, "policies_aircraft.tnl"))
	if err != nil {
		t.Fatal(err)
	}
	// 7 plain lines, one 2-alternative line, one 3-combination group
	if len(pols) != 7+2+3 {
		t.Fatalf("policies = %d", len(pols))
	}
	// every policy re-parses from its String() form
	for _, p := range pols {
		if _, err := trustvo.ParsePolicyRule(p.String()); err != nil {
			t.Fatalf("%q does not re-parse: %v", p.String(), err)
		}
	}
}

func TestCorpusOntology(t *testing.T) {
	o, err := trustvo.ParseOntology(readCorpus(t, "ontology.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if o.Len() != 4 {
		t.Fatalf("concepts = %d", o.Len())
	}
	if !o.IsA("Texas_DriverLicense", "Civilian_DriverLicense") {
		t.Fatal("is_a lost")
	}
	re, err := trustvo.ParseOntology(o.XML())
	if err != nil || re.Len() != o.Len() {
		t.Fatalf("round trip: %v", err)
	}
}

func TestCorpusContract(t *testing.T) {
	c, err := trustvo.ParseContract(readCorpus(t, "contract_aircraft.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if c.VOName != "AircraftOptimizationVO" || len(c.Roles) != 3 || len(c.Rules) != 2 {
		t.Fatalf("contract = %+v", c)
	}
	// the corpus contract actually drives an initiator
	party := &trustvo.Party{
		Name:     c.Initiator,
		Profile:  trustvo.NewProfile(c.Initiator),
		Policies: trustvo.MustPolicySet(),
		Trust:    trustvo.NewTrustStore(),
	}
	if _, err := trustvo.NewInitiator(c, party, trustvo.NewRegistry()); err != nil {
		t.Fatalf("corpus contract unusable: %v", err)
	}
}

func TestCorpusProfile(t *testing.T) {
	p, err := trustvo.ParseProfile(readCorpus(t, "profile.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Owner != "AerospaceCo" || p.Len() != 2 {
		t.Fatalf("profile = owner %q, %d creds", p.Owner, p.Len())
	}
}

func TestCorpusMessage(t *testing.T) {
	m, err := trustvo.ParseMessage(readCorpus(t, "message_policy.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if m.From != "AircraftCo" || len(m.Answers) != 1 || len(m.Answers[0].Policies) != 1 {
		t.Fatalf("message = %+v", m)
	}
	re, err := trustvo.ParseMessage(m.XML())
	if err != nil || re.XML() != m.XML() {
		t.Fatalf("round trip: %v", err)
	}
}

// TestCorpusMutationsNeverPanic corrupts every corpus document in many
// random ways; the parsers must return errors (or parse, when the
// mutation is benign) without panicking.
func TestCorpusMutationsNeverPanic(t *testing.T) {
	files := []struct {
		name  string
		parse func(string) error
	}{
		{"credential_iso9000.xml", func(s string) error { _, err := trustvo.ParseCredential(s); return err }},
		{"policy_iso9000.xml", func(s string) error { _, err := trustvo.ParsePolicy(s); return err }},
		{"policies_aircraft.tnl", func(s string) error { _, err := trustvo.ParsePolicies(s); return err }},
		{"ontology.xml", func(s string) error { _, err := trustvo.ParseOntology(s); return err }},
		{"contract_aircraft.xml", func(s string) error { _, err := trustvo.ParseContract(s); return err }},
		{"profile.xml", func(s string) error { _, err := trustvo.ParseProfile(s); return err }},
		{"message_policy.xml", func(s string) error { _, err := trustvo.ParseMessage(s); return err }},
	}
	rng := rand.New(rand.NewSource(1))
	alphabet := []byte(`<>/"'=abcXYZ0123 &;`)
	for _, f := range files {
		orig := readCorpus(t, f.name)
		for i := 0; i < 300; i++ {
			b := []byte(orig)
			// 1..4 random single-byte mutations
			for k := 0; k <= rng.Intn(4); k++ {
				switch pos := rng.Intn(len(b)); rng.Intn(3) {
				case 0: // replace
					b[pos] = alphabet[rng.Intn(len(alphabet))]
				case 1: // delete
					b = append(b[:pos], b[pos+1:]...)
				case 2: // truncate
					b = b[:pos]
				}
				if len(b) == 0 {
					break
				}
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: parser panicked on mutation %d: %v\ninput: %q", f.name, i, r, b)
					}
				}()
				_ = f.parse(string(b)) // error or success, both fine
			}()
		}
	}
}
