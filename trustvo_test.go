package trustvo_test

import (
	"testing"

	"trustvo"
)

// TestQuickstartSnippet runs the doc-comment quickstart: it must keep
// compiling and succeeding as the public API evolves.
func TestQuickstartSnippet(t *testing.T) {
	ca := trustvo.MustNewAuthority("CertCA")
	alice := &trustvo.Party{
		Name:     "alice",
		Profile:  trustvo.NewProfile("alice"),
		Policies: trustvo.MustPolicySet(),
		Trust:    trustvo.NewTrustStore(ca),
	}
	alice.Profile.Add(ca.MustIssue(trustvo.IssueRequest{Type: "EmployeeBadge", Holder: "alice"}))
	bob := &trustvo.Party{
		Name:     "bob",
		Profile:  trustvo.NewProfile("bob"),
		Policies: trustvo.MustPolicySet(trustvo.MustParsePolicies("Report <- EmployeeBadge")...),
		Trust:    trustvo.NewTrustStore(ca),
	}
	out, _, err := trustvo.Negotiate(alice, bob, "Report")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Succeeded {
		t.Fatalf("quickstart negotiation failed: %s", out.Reason)
	}
}

// TestFacadeConstants pins the strategy constants and sensitivity labels
// exposed by the facade.
func TestFacadeConstants(t *testing.T) {
	if trustvo.Standard.String() != "standard" || trustvo.Trusting.String() != "trusting" ||
		trustvo.Suspicious.String() != "suspicious" || trustvo.StrongSuspicious.String() != "strong-suspicious" {
		t.Fatal("strategy labels changed")
	}
	if trustvo.SensitivityLow.String() != "low" || trustvo.SensitivityHigh.String() != "high" {
		t.Fatal("sensitivity labels changed")
	}
	if s, err := trustvo.ParseStrategy("suspicious"); err != nil || s != trustvo.Suspicious {
		t.Fatal("ParseStrategy broken through facade")
	}
}

// TestFacadeOntology smoke-tests the semantic layer through the facade.
func TestFacadeOntology(t *testing.T) {
	o := trustvo.NewOntology()
	o.MustAdd(&trustvo.Concept{
		Name:            "gender",
		Attributes:      []string{"gender"},
		Implementations: []trustvo.Implementation{{CredType: "Passport", Attribute: "gender"}},
	})
	prof := trustvo.NewProfile("p")
	ca := trustvo.MustNewAuthority("CA")
	prof.Add(ca.MustIssue(trustvo.IssueRequest{
		Type: "Passport", Holder: "p",
		Attributes: []trustvo.Attribute{{Name: "gender", Value: "F"}},
	}))
	m := &trustvo.Mapper{Ontology: o, Profile: prof}
	got, err := m.MapConcept("gender")
	if err != nil || got.Credential.Type != "Passport" {
		t.Fatalf("MapConcept = %+v, %v", got, err)
	}
}
