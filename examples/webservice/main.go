// Web-service deployment (paper Fig. 5 and §6): the VO Management
// toolkit — with the TN web service integrated — runs as an HTTP server;
// a member-edition client publishes its service description, applies for
// a role, and joins through a trust negotiation transported over the
// StartNegotiation / PolicyExchange / CredentialExchange operations.
//
// The example then re-runs the join WITHOUT the negotiation and prints
// both timings: a one-shot, human-readable version of the Fig. 9
// measurement (cmd/benchjoin produces the full table).
//
//	go run ./examples/webservice
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"trustvo"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()
	ca := trustvo.MustNewAuthority("CertCA")

	// ---- server side: initiator + toolkit + TN service ----
	iniParty := &trustvo.Party{
		Name:     "AircraftCo",
		Profile:  trustvo.NewProfile("AircraftCo"),
		Policies: trustvo.MustPolicySet(),
		Trust:    trustvo.NewTrustStore(ca),
	}
	contract := &trustvo.Contract{
		VOName:    "AircraftOptimizationVO",
		Goal:      "wing optimization",
		Initiator: "AircraftCo",
		Roles: []trustvo.RoleSpec{{
			Name: "DesignWebPortal", Capabilities: []string{"design-db"}, MinMembers: 1,
			AdmissionPolicies: trustvo.MustParsePolicies(
				"M <- WebDesignerQuality(regulation='UNI EN ISO 9000'), AAAMember"),
		}},
		Rules: []trustvo.Rule{{Operation: "select-design", Callers: []string{"DesignWebPortal"}}},
	}
	ini, err := trustvo.NewInitiator(contract, iniParty, trustvo.NewRegistry())
	if err != nil {
		log.Fatal(err)
	}
	if err := ini.VO.StartFormation(); err != nil {
		log.Fatal(err)
	}
	tk := trustvo.NewToolkitService(ini)
	mux := http.NewServeMux()
	tk.Register(mux)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("toolkit + TN service listening on %s\n", base)
	fmt.Println("  TN operations: /tn/start /tn/policyExchange /tn/credentialExchange /tn/status")
	fmt.Println("  toolkit:       /registry/* /vo/*")

	// ---- member side ----
	prof := trustvo.NewProfile("AerospaceCo")
	prof.Add(
		ca.MustIssue(trustvo.IssueRequest{
			Type: "WebDesignerQuality", Holder: "AerospaceCo",
			Attributes: []trustvo.Attribute{{Name: "regulation", Value: "UNI EN ISO 9000"}},
		}),
		ca.MustIssue(trustvo.IssueRequest{Type: "AAAMember", Holder: "AerospaceCo"}),
	)
	member := &trustvo.MemberClient{
		BaseURL: base,
		Party: &trustvo.Party{
			Name:     "AerospaceCo",
			Profile:  prof,
			Policies: trustvo.MustPolicySet(),
			Trust:    trustvo.NewTrustStore(ca),
		},
	}
	if err := member.Publish(ctx, &trustvo.Description{
		Provider: "AerospaceCo", Service: "Design Partner Web Portal",
		Capabilities: []string{"design-db"},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmember published its service description (preparation phase)")

	// Join WITH the integrated trust negotiation.
	t0 := time.Now()
	der, out, err := member.Join(ctx, "DesignWebPortal")
	if err != nil {
		log.Fatal(err)
	}
	withTN := time.Since(t0)
	tok, err := ini.VO.Authority.VerifyMembership(der)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njoin WITH trust negotiation: %v (%d TN rounds)\n", withTN, out.Rounds)
	fmt.Printf("  X.509 membership token: member=%s role=%s vo=%s (%d bytes DER)\n",
		tok.Member, tok.Role, tok.VO, len(der))
	for _, d := range out.Sent {
		fmt.Printf("  disclosed to the initiator: %s\n", d.Credential.Type)
	}

	// Baseline: the pre-integration join (no TN).
	if err := ini.VO.Remove("AerospaceCo"); err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	if _, _, err := member.Apply(ctx, "DesignWebPortal"); err != nil {
		log.Fatal(err)
	}
	if _, err := member.JoinDirect(ctx, "DesignWebPortal"); err != nil {
		log.Fatal(err)
	}
	baseline := time.Since(t0)
	fmt.Printf("\njoin WITHOUT trust negotiation: %v\n", baseline)
	fmt.Printf("\nFig. 9 one-shot: overhead of the integrated TN = %v (%.1fx the baseline join)\n",
		withTN-baseline, float64(withTN)/float64(baseline))

	phase, members, err := member.VOStatus(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VO status: phase=%s members=%d\n", phase, members)
}
