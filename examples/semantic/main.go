// Semantic negotiation (paper §4.3): two VO parties that use different
// local credential naming schemes negotiate through a shared reference
// ontology.
//
// The Aircraft company abstracts its admission policy to the
// quality-certification *concept* instead of naming a credential type —
// hiding which exact document it wants and freeing the counterpart from
// knowing its credential syntax. The Aerospace company's reasoning
// engine runs the paper's Algorithm 1: it maps the concept onto its own
// profile (choosing the least sensitive implementation) and discloses
// that credential.
//
//	go run ./examples/semantic
package main

import (
	"fmt"
	"log"

	"trustvo"
)

// referenceOntology is the common ontology (Fig. 8 sketch): the
// quality-certification concept is implemented by several credential
// formats, and the gender concept by attributes of different documents.
func referenceOntology() *trustvo.Ontology {
	o := trustvo.NewOntology()
	o.MustAdd(&trustvo.Concept{
		Name:       "quality-certification",
		Attributes: []string{"regulation"},
		Implementations: []trustvo.Implementation{
			{CredType: "WebDesignerQuality", Attribute: "regulation"},
			{CredType: "ISO 9000 Certified", Attribute: "QualityRegulation"},
		},
	})
	o.MustAdd(&trustvo.Concept{
		Name:       "gender",
		Attributes: []string{"gender"},
		Implementations: []trustvo.Implementation{
			{CredType: "Passport", Attribute: "gender"},
			{CredType: "DrivingLicense", Attribute: "sex"},
		},
	})
	o.MustAdd(&trustvo.Concept{
		Name:            "Civilian_DriverLicense",
		Implementations: []trustvo.Implementation{{CredType: "DrivingLicense"}},
	})
	o.MustAdd(&trustvo.Concept{
		Name:            "Texas_DriverLicense",
		Implementations: []trustvo.Implementation{{CredType: "TexasDrivingLicense"}},
	})
	o.MustAddIsA("Texas_DriverLicense", "Civilian_DriverLicense")
	return o
}

func main() {
	log.SetFlags(0)
	ca := trustvo.MustNewAuthority("CertCA")

	// ---- Algorithm 1 in isolation ----
	fmt.Println("== Algorithm 1: concept -> credential mapping ==")
	profile := trustvo.NewProfile("AerospaceCo")
	profile.Add(
		ca.MustIssue(trustvo.IssueRequest{
			Type: "ISO 9000 Certified", Holder: "AerospaceCo",
			Sensitivity: trustvo.SensitivityLow,
			Attributes:  []trustvo.Attribute{{Name: "QualityRegulation", Value: "UNI EN ISO 9000"}},
		}),
		ca.MustIssue(trustvo.IssueRequest{
			Type: "Passport", Holder: "AerospaceCo",
			Sensitivity: trustvo.SensitivityHigh,
			Attributes:  []trustvo.Attribute{{Name: "gender", Value: "F"}},
		}),
		ca.MustIssue(trustvo.IssueRequest{
			Type: "DrivingLicense", Holder: "AerospaceCo",
			Sensitivity: trustvo.SensitivityMedium,
			Attributes:  []trustvo.Attribute{{Name: "sex", Value: "F"}},
		}),
	)
	mapper := &trustvo.Mapper{Ontology: referenceOntology(), Profile: profile}

	for _, concept := range []string{"quality-certification", "gender", "QualityCertification"} {
		m, err := mapper.MapConcept(concept)
		if err != nil {
			log.Fatalf("  %s: %v", concept, err)
		}
		fmt.Printf("  concept %-24q -> local concept %-24q (confidence %.2f) -> credential %q (%s)\n",
			concept, m.Matched, m.Confidence, m.Credential.Type, m.Credential.Sensitivity)
	}
	fmt.Println("  note: gender resolved to the DrivingLicense, not the Passport —")
	fmt.Println("        CredCluster prefers the lower-sensitivity implementation.")

	// ---- dictionary (§4.3): exact synonyms skip similarity matching ----
	fmt.Println("\n== dictionary synonyms ==")
	if err := mapper.Ontology.AddSynonym("certificazione-di-qualita", "quality-certification"); err != nil {
		log.Fatal(err)
	}
	syn, err := mapper.MapConcept("certificazione-di-qualita")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %q resolved by dictionary -> %q (confidence %.2f)\n",
		"certificazione-di-qualita", syn.Matched, syn.Confidence)

	// ---- similarity matching across naming schemes ----
	fmt.Println("\n== GLUE-style Jaccard similarity (ComputeSimilarity) ==")
	a := &trustvo.Concept{Name: "quality-certification", Attributes: []string{"regulation"}}
	for _, b := range []*trustvo.Concept{
		{Name: "QualityCertification", Attributes: []string{"regulation"}},
		{Name: "QualityCertificate"},
		{Name: "storage-capacity"},
	} {
		fmt.Printf("  sim(%q, %q) = %.2f\n", a.Name, b.Name, trustvo.ComputeSimilarity(a, b))
	}

	// ---- full concept-level negotiation ----
	fmt.Println("\n== concept-level trust negotiation ==")
	aerospace := &trustvo.Party{
		Name:     "AerospaceCo",
		Profile:  profile,
		Policies: trustvo.MustPolicySet(),
		Trust:    trustvo.NewTrustStore(ca),
		Mapper:   mapper,
	}
	aircraftProfile := trustvo.NewProfile("AircraftCo")
	aircraft := &trustvo.Party{
		Name:    "AircraftCo",
		Profile: aircraftProfile,
		// The concrete policy names WebDesignerQuality, a credential the
		// aerospace company does NOT hold under that name…
		Policies: trustvo.MustPolicySet(trustvo.MustParsePolicies(
			"VoMembership <- WebDesignerQuality(regulation='UNI EN ISO 9000')",
		)...),
		Trust:  trustvo.NewTrustStore(ca),
		Mapper: &trustvo.Mapper{Ontology: referenceOntology(), Profile: aircraftProfile},
		// …but with AbstractLevels the policy is sent as the
		// quality-certification concept, which Algorithm 1 maps onto the
		// aerospace company's ISO 9000 credential.
		AbstractLevels: 1,
		Grant: func(resource, peer string) ([]byte, error) {
			return []byte("membership-for-" + peer), nil
		},
	}

	// Show what actually goes on the wire.
	concrete := aircraft.Policies.For("VoMembership")[0]
	abstracted := trustvo.AbstractPolicy(concrete, aircraft.Mapper.Ontology, 1)
	fmt.Printf("  concrete policy:   %s\n", concrete)
	fmt.Printf("  abstracted policy: %s\n", abstracted)

	out, _, err := trustvo.Negotiate(aerospace, aircraft, "VoMembership")
	if err != nil {
		log.Fatal(err)
	}
	if !out.Succeeded {
		log.Fatalf("  negotiation failed: %s", out.Reason)
	}
	fmt.Printf("  negotiation succeeded in %d rounds; disclosed under the concept: %q\n",
		out.Rounds, out.Sent[0].Credential.Type)
	fmt.Printf("  grant: %s\n", out.Grant)
}
