// Selective disclosure and the suspicious strategies (paper §6.3).
//
// The paper notes that X.509-style credentials "do not support partial
// hiding of the credential contents", so only the standard and trusting
// strategies can be used with them — and sketches the fix: replace each
// attribute with the hash of its name and value, sign the hashed
// content, and open only the attributes a negotiation actually needs.
//
// This example shows all three behaviours:
//
//  1. a suspicious negotiation with plain credentials FAILS with the
//     §6.3 restriction;
//
//  2. the same negotiation with hashed-commitment credentials succeeds,
//     opening ONLY the attribute the counterpart's condition references
//     (the confidential ones stay hidden);
//
//  3. ownership proofs: the suspicious receiver challenges the
//     discloser to sign a nonce with the credential's holder key.
//
//     go run ./examples/selective
package main

import (
	"fmt"
	"log"

	"trustvo"
)

func main() {
	log.SetFlags(0)
	ca := trustvo.MustNewAuthority("FinanceCA")

	// The controller (a bank) requires a balance sheet with year >= 2009
	// before granting a credit line.
	bankKeys := trustvo.MustGenerateKeyPair()
	bankProfile := trustvo.NewProfile("bank")
	bank := &trustvo.Party{
		Name:    "bank",
		Profile: bankProfile,
		Policies: trustvo.MustPolicySet(trustvo.MustParsePolicies(
			"CreditLine <- BalanceSheet(year>='2009')",
		)...),
		Trust: trustvo.NewTrustStore(ca),
		Keys:  bankKeys,
		Grant: func(resource, peer string) ([]byte, error) {
			return []byte("credit-line-for-" + peer), nil
		},
	}

	// ---- 1. suspicious + plain credential: the §6.3 restriction ----
	companyKeys := trustvo.MustGenerateKeyPair()
	plainProfile := trustvo.NewProfile("company")
	plainProfile.Add(ca.MustIssue(trustvo.IssueRequest{
		Type: "BalanceSheet", Holder: "company", HolderKey: companyKeys.Public,
		Attributes: []trustvo.Attribute{
			{Name: "year", Value: "2009"},
			{Name: "revenue", Value: "12,400,000"},
			{Name: "auditNotes", Value: "CONFIDENTIAL: pending litigation"},
		},
	}))
	plainCompany := &trustvo.Party{
		Name:     "company",
		Profile:  plainProfile,
		Policies: trustvo.MustPolicySet(),
		Trust:    trustvo.NewTrustStore(ca),
		Keys:     companyKeys,
		Strategy: trustvo.Suspicious,
	}
	out, _, err := trustvo.Negotiate(plainCompany, bank, "CreditLine")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("1. suspicious strategy with a plain (X.509-style) credential:")
	fmt.Printf("   succeeded=%v\n   reason: %s\n\n", out.Succeeded, out.Reason)

	// ---- 2. suspicious + hashed commitments: partial hiding works ----
	sel, err := ca.IssueSelective(trustvo.IssueRequest{
		Type: "BalanceSheet", Holder: "company", HolderKey: companyKeys.Public,
		Attributes: []trustvo.Attribute{
			{Name: "year", Value: "2009"},
			{Name: "revenue", Value: "12,400,000"},
			{Name: "auditNotes", Value: "CONFIDENTIAL: pending litigation"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	company := &trustvo.Party{
		Name:     "company",
		Profile:  trustvo.NewProfile("company"),
		Policies: trustvo.MustPolicySet(),
		Trust:    trustvo.NewTrustStore(ca),
		Keys:     companyKeys,
		Strategy: trustvo.Suspicious,
		Selective: map[string]*trustvo.SelectiveCredential{
			sel.Committed.ID: sel,
		},
	}
	out, ctlOut, err := trustvo.Negotiate(company, bank, "CreditLine")
	if err != nil {
		log.Fatal(err)
	}
	if !out.Succeeded {
		log.Fatalf("selective negotiation failed: %s", out.Reason)
	}
	fmt.Println("2. suspicious strategy with hashed-commitment credentials:")
	fmt.Printf("   succeeded=%v in %d rounds; grant=%s\n", out.Succeeded, out.Rounds, out.Grant)
	view := ctlOut.Received[0].Credential
	fmt.Println("   what the bank actually saw of the balance sheet:")
	for _, a := range view.Attributes {
		fmt.Printf("     %s = %q\n", a.Name, a.Value)
	}
	if _, leaked := view.Attr("auditNotes"); !leaked {
		fmt.Println("   auditNotes and revenue stayed hidden (only their salted hashes travelled)")
	}

	// ---- 3. ownership proof mechanics ----
	fmt.Println("\n3. ownership proof (challenge/response over the holder key):")
	nonce, err := trustvo.NewNonce()
	if err != nil {
		log.Fatal(err)
	}
	proof := trustvo.ProveOwnership(companyKeys, nonce)
	if err := trustvo.VerifyOwnership(sel.Committed, nonce, proof); err != nil {
		log.Fatal(err)
	}
	fmt.Println("   holder proved possession of the key bound into the credential")
	thief := trustvo.MustGenerateKeyPair()
	if err := trustvo.VerifyOwnership(sel.Committed, nonce, trustvo.ProveOwnership(thief, nonce)); err != nil {
		fmt.Printf("   a stolen credential fails the challenge: %v\n", err)
	}
}
