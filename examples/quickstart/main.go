// Quickstart: two parties that have never met establish mutual trust
// over a protected resource with a Trust-X negotiation.
//
// Alice (a hospital) wants Bob's (a lab's) test-results service. Bob
// releases it only to certified hospitals; Alice discloses her hospital
// certification only to HIPAA-compliant counterparts. The negotiation
// discovers and executes the trust sequence automatically.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"trustvo"
)

func main() {
	log.SetFlags(0)

	// A credential authority both sides trust.
	ca := trustvo.MustNewAuthority("HealthCA")

	// Alice's X-Profile: her hospital certification (sensitive — she
	// discloses it only under policy).
	aliceProfile := trustvo.NewProfile("alice-hospital")
	aliceProfile.Add(ca.MustIssue(trustvo.IssueRequest{
		Type:        "HospitalCertification",
		Holder:      "alice-hospital",
		Sensitivity: trustvo.SensitivityMedium,
		Attributes:  []trustvo.Attribute{{Name: "beds", Value: "450"}},
	}))
	alice := &trustvo.Party{
		Name:    "alice-hospital",
		Profile: aliceProfile,
		// Alice's disclosure policy: her certification is released only
		// to counterparts proving HIPAA compliance.
		Policies: trustvo.MustPolicySet(trustvo.MustParsePolicies(
			"HospitalCertification <- HIPAACompliance",
		)...),
		Trust: trustvo.NewTrustStore(ca),
	}

	// Bob's X-Profile: his HIPAA compliance credential, freely
	// disclosable.
	bobProfile := trustvo.NewProfile("bob-lab")
	bobProfile.Add(ca.MustIssue(trustvo.IssueRequest{
		Type:        "HIPAACompliance",
		Holder:      "bob-lab",
		Sensitivity: trustvo.SensitivityLow,
	}))
	bob := &trustvo.Party{
		Name:    "bob-lab",
		Profile: bobProfile,
		// Bob's policy: the test-results service requires a hospital
		// certification.
		Policies: trustvo.MustPolicySet(trustvo.MustParsePolicies(
			"TestResults <- HospitalCertification(beds>=100)",
		)...),
		Trust: trustvo.NewTrustStore(ca),
		Grant: func(resource, peer string) ([]byte, error) {
			return []byte("access-token-for-" + peer), nil
		},
	}

	// Alice requests Bob's TestResults resource.
	out, _, err := trustvo.Negotiate(alice, bob, "TestResults")
	if err != nil {
		log.Fatal(err)
	}
	if !out.Succeeded {
		log.Fatalf("negotiation failed: %s", out.Reason)
	}

	fmt.Println("negotiation succeeded in", out.Rounds, "rounds")
	fmt.Printf("grant: %s\n", out.Grant)
	fmt.Println("\ntrust sequence executed:")
	for _, d := range out.Received {
		fmt.Printf("  bob  -> alice: %s (issuer %s)\n", d.Credential.Type, d.Credential.Issuer)
	}
	for _, d := range out.Sent {
		fmt.Printf("  alice -> bob:  %s (issuer %s)\n", d.Credential.Type, d.Credential.Issuer)
	}
}
