// The Aircraft Optimization VO — the paper's §3 running example, end to
// end across the whole extended lifecycle (§5, Figs. 1 and 3):
//
//   - Preparation: five service providers publish their capabilities.
//
//   - Identification: the Aircraft company defines the contract and the
//     per-role admission policies.
//
//   - Formation: each candidate joins through a trust negotiation and
//     receives an X.509 membership token (Fig. 4).
//
//   - Operation: the optimize loop of Fig. 1 runs under the
//     collaboration rules; the optimizer re-validates the portal's ISO
//     certification via a fresh TN; the HPC provider violates its
//     contract, its reputation drops, and it is replaced through a new
//     formation-style negotiation.
//
//   - Dissolution.
//
//     go run ./examples/aircraft
package main

import (
	"fmt"
	"log"
	"time"

	"trustvo"
)

func main() {
	log.SetFlags(0)

	qualityCA := trustvo.MustNewAuthority("QualityCA")
	certCA := trustvo.MustNewAuthority("CertCA")
	newTrust := func() *trustvo.TrustStore { return trustvo.NewTrustStore(qualityCA, certCA) }

	// ---- Preparation: providers assemble profiles and publish ----
	fmt.Println("== preparation ==")
	reg := trustvo.NewRegistry()
	mkAgent := func(name, service string, caps []string, creds ...*trustvo.Credential) *trustvo.MemberAgent {
		prof := trustvo.NewProfile(name)
		prof.Add(creds...)
		agent := trustvo.NewMemberAgent(&trustvo.Party{
			Name: name, Profile: prof,
			Policies: trustvo.MustPolicySet(),
			Trust:    newTrust(),
		}, &trustvo.Description{Provider: name, Service: service, Capabilities: caps})
		if err := agent.Publish(reg); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s published %q (capabilities %v)\n", name, service, caps)
		return agent
	}

	aerospace := mkAgent("AerospaceCo", "Design Partner Web Portal", []string{"design-db"},
		qualityCA.MustIssue(trustvo.IssueRequest{
			Type: "WebDesignerQuality", Holder: "AerospaceCo",
			Attributes: []trustvo.Attribute{{Name: "regulation", Value: "UNI EN ISO 9000"}},
		}),
		certCA.MustIssue(trustvo.IssueRequest{
			Type: "ISO 9000 Certified", Holder: "AerospaceCo",
			Attributes: []trustvo.Attribute{{Name: "QualityRegulation", Value: "UNI EN ISO 9000"}},
		}))
	optimizer := mkAgent("OptimizeCo", "Design Optimization Partner Service", []string{"optimization"},
		certCA.MustIssue(trustvo.IssueRequest{Type: "OptimizationLicense", Holder: "OptimizeCo"}),
		certCA.MustIssue(trustvo.IssueRequest{Type: "PrivacyRegulator", Holder: "OptimizeCo"}))
	hpc := mkAgent("HPCCo", "HPC Partner Service", []string{"simulation"},
		certCA.MustIssue(trustvo.IssueRequest{Type: "HPCCertification", Holder: "HPCCo"}))
	storage := mkAgent("StorageCo", "Storage Partner Service", []string{"storage"})

	// ---- Identification: contract + admission policies (§5.1) ----
	fmt.Println("\n== identification ==")
	contract := &trustvo.Contract{
		VOName:    "AircraftOptimizationVO",
		Goal:      "civil aircraft with low emissions and efficient fuel consumption",
		Initiator: "AircraftCo",
		Roles: []trustvo.RoleSpec{
			{Name: "DesignWebPortal", Capabilities: []string{"design-db"}, MinMembers: 1,
				AdmissionPolicies: trustvo.MustParsePolicies(
					"M <- WebDesignerQuality(regulation='UNI EN ISO 9000')")},
			{Name: "DesignOptimization", Capabilities: []string{"optimization"}, MinMembers: 1,
				AdmissionPolicies: trustvo.MustParsePolicies("M <- OptimizationLicense")},
			{Name: "HPC", Capabilities: []string{"simulation"}, MinMembers: 1, MaxMembers: 2,
				AdmissionPolicies: trustvo.MustParsePolicies("M <- HPCCertification")},
			{Name: "Storage", Capabilities: []string{"storage"}, MinMembers: 1,
				AdmissionPolicies: trustvo.MustParsePolicies("M <- DELIV")},
		},
		Rules: []trustvo.Rule{
			{Operation: "select-design", Callers: []string{"DesignWebPortal"}},
			{Operation: "optimize", Callers: []string{"DesignOptimization"}, Target: "HPC"},
			{Operation: "simulate", Callers: []string{"DesignOptimization", "HPC"}, Target: "HPC"},
			{Operation: "store", Target: "Storage"},
		},
	}
	iniParty := &trustvo.Party{
		Name: "AircraftCo", Profile: trustvo.NewProfile("AircraftCo"),
		Policies: trustvo.MustPolicySet(), Trust: newTrust(),
	}
	ini, err := trustvo.NewInitiator(contract, iniParty, reg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  contract %q defined with %d roles and %d collaboration rules\n",
		contract.VOName, len(contract.Roles), len(contract.Rules))

	// ---- Formation: TN-backed joins (Fig. 4) ----
	fmt.Println("\n== formation ==")
	agents := map[string]*trustvo.MemberAgent{
		"AerospaceCo": aerospace, "OptimizeCo": optimizer, "HPCCo": hpc, "StorageCo": storage,
	}
	if err := ini.VO.StartFormation(); err != nil {
		log.Fatal(err)
	}
	for _, role := range contract.Roles {
		descs, err := ini.Discover(role.Name)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range descs {
			agent := agents[d.Provider]
			m, out, err := ini.Join(agent, role.Name, trustvo.JoinOptions{Negotiate: true})
			if err != nil {
				fmt.Printf("  %-12s rejected for %s: %v\n", d.Provider, role.Name, err)
				continue
			}
			rounds := 0
			if out != nil {
				rounds = out.Rounds
			}
			fmt.Printf("  %-12s joined as %-18s (TN: %d rounds, token %d bytes)\n",
				m.Name, m.Role, rounds, len(m.Token.DER))
			break
		}
	}
	if err := ini.VO.StartOperation(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  VO phase: %s with %d members\n", ini.VO.Phase(), len(ini.VO.Members()))

	// ---- Operation: the Fig. 1 optimize loop ----
	fmt.Println("\n== operation ==")
	steps := []struct{ member, op, desc string }{
		{"AerospaceCo", "select-design", "1. engineer selects a wing design on the Design Web Portal"},
		{"OptimizeCo", "optimize", "2-4. optimization service reads the control file, activates"},
		{"OptimizeCo", "simulate", "5. HPC computes the new wing profile and flow solution"},
		{"HPCCo", "store", "6. lift/drag values stored at the storage provider"},
		{"OptimizeCo", "optimize", "7-8. revised design computed; loop repeats"},
	}
	for _, s := range steps {
		if err := ini.VO.Authorize(s.member, s.op); err != nil {
			log.Fatalf("  %s: %v", s.desc, err)
		}
		fmt.Printf("  ok  %s\n", s.desc)
	}

	// Operational TN (§5.1): the optimizer re-checks the portal's ISO
	// certification, which the portal protects behind a privacy-
	// regulator requirement.
	fmt.Println("\n  -- operational trust negotiation (3a): ISO certification re-validation --")
	aerospace.Party.Policies.Add(trustvo.MustParsePolicies("Certification <- PrivacyRegulator")[0])
	out, err := ini.Revalidate(optimizer, aerospace, "Certification")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  revalidation succeeded=%v in %d rounds\n", out.Succeeded, out.Rounds)

	// The optimize loop re-validates repeatedly (steps 5–6 "executed
	// repeatedly until the target result is achieved"); trust tickets
	// collapse the repeats to a two-message exchange.
	aerospace.Party.Keys = trustvo.MustGenerateKeyPair()
	aerospace.Party.TicketTTL = time.Hour
	optimizer.Party.Tickets = trustvo.NewTicketCache()
	prime, err := ini.Revalidate(optimizer, aerospace, "Certification")
	if err != nil {
		log.Fatal(err)
	}
	repeat, err := ini.Revalidate(optimizer, aerospace, "Certification")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  with trust tickets: first %d rounds, repeats %d rounds\n", prime.Rounds, repeat.Rounds)

	// Violation + replacement (§5.1): the HPC provider's reputation
	// drops after a contract violation and it is replaced via TN.
	fmt.Println("\n  -- violation, reputation drop, replacement TN --")
	now := time.Now()
	fmt.Printf("  HPCCo reputation before violation: %.3f\n", ini.VO.Reputation.Score("HPCCo", now))
	ini.VO.ReportViolation("HPCCo", "simulate", "quality-of-service breach", 3)
	fmt.Printf("  HPCCo reputation after violation:  %.3f\n", ini.VO.Reputation.Score("HPCCo", now))

	betterProfile := trustvo.NewProfile("BetterHPCCo")
	betterProfile.Add(certCA.MustIssue(trustvo.IssueRequest{Type: "HPCCertification", Holder: "BetterHPCCo"}))
	better := trustvo.NewMemberAgent(&trustvo.Party{
		Name: "BetterHPCCo", Profile: betterProfile,
		Policies: trustvo.MustPolicySet(), Trust: newTrust(),
	}, &trustvo.Description{Provider: "BetterHPCCo", Service: "HPC v2", Capabilities: []string{"simulation"}})
	better.Publish(reg)
	m, err := ini.Replace("HPCCo", []*trustvo.MemberAgent{better}, trustvo.JoinOptions{Negotiate: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  HPCCo replaced by %s (role %s)\n", m.Name, m.Role)

	// The host edition's monitoring view (§2: "All the interactions must
	// be monitored").
	fmt.Println("\n  -- interaction audit log (last entries) --")
	audit := ini.VO.Audit()
	if len(audit) > 4 {
		audit = audit[len(audit)-4:]
	}
	for _, e := range audit {
		verdict := "allowed"
		if !e.Allowed {
			verdict = "DENIED"
		}
		fmt.Printf("  %-8s %-14s by %-12s %s\n", verdict, e.Operation, e.Member, e.Detail)
	}

	// ---- Dissolution ----
	fmt.Println("\n== dissolution ==")
	if err := ini.VO.Dissolve(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  VO dissolved; contractual bindings nullified (members now: %d)\n",
		len(ini.VO.Members()))
}
