module trustvo

go 1.22
