package trustvo_test

import (
	"fmt"
	"log"

	"trustvo"
)

// Example demonstrates the minimal trust negotiation: Alice requests
// Bob's Report resource; Bob's policy requires an employee badge.
func Example() {
	ca := trustvo.MustNewAuthority("CertCA")

	alice := &trustvo.Party{
		Name:     "alice",
		Profile:  trustvo.NewProfile("alice"),
		Policies: trustvo.MustPolicySet(),
		Trust:    trustvo.NewTrustStore(ca),
	}
	alice.Profile.Add(ca.MustIssue(trustvo.IssueRequest{Type: "EmployeeBadge", Holder: "alice"}))

	bob := &trustvo.Party{
		Name:    "bob",
		Profile: trustvo.NewProfile("bob"),
		Policies: trustvo.MustPolicySet(trustvo.MustParsePolicies(
			"Report <- EmployeeBadge",
		)...),
		Trust: trustvo.NewTrustStore(ca),
	}

	out, _, err := trustvo.Negotiate(alice, bob, "Report")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("succeeded:", out.Succeeded)
	// Output: succeeded: true
}

// ExampleParsePolicies shows the disclosure-policy DSL, including
// alternatives and the k-of-n group-condition extension.
func ExampleParsePolicies() {
	policies, err := trustvo.ParsePolicies(`
# formation-phase policies
VoMembership <- WebDesignerQuality(regulation='UNI EN ISO 9000')
Certification <- AAAccreditation | BalanceSheet(issuer='BBB')
Audit <- 2 of (TaxRecord | BalanceSheet | ISOCert)
PublicCatalog <- DELIV
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(policies), "policies")
	fmt.Println(policies[0])
	// Output:
	// 7 policies
	// VoMembership <- WebDesignerQuality[/credential/content/regulation='UNI EN ISO 9000']
}

// ExampleMapper demonstrates the paper's Algorithm 1: a policy concept
// is mapped onto the least sensitive local credential implementing it.
func ExampleMapper() {
	o := trustvo.NewOntology()
	o.MustAdd(&trustvo.Concept{
		Name:       "gender",
		Attributes: []string{"gender"},
		Implementations: []trustvo.Implementation{
			{CredType: "Passport", Attribute: "gender"},
			{CredType: "DrivingLicense", Attribute: "sex"},
		},
	})
	ca := trustvo.MustNewAuthority("CA")
	profile := trustvo.NewProfile("me")
	profile.Add(
		ca.MustIssue(trustvo.IssueRequest{
			Type: "Passport", Holder: "me", Sensitivity: trustvo.SensitivityHigh,
			Attributes: []trustvo.Attribute{{Name: "gender", Value: "F"}},
		}),
		ca.MustIssue(trustvo.IssueRequest{
			Type: "DrivingLicense", Holder: "me", Sensitivity: trustvo.SensitivityMedium,
			Attributes: []trustvo.Attribute{{Name: "sex", Value: "F"}},
		}),
	)
	m := &trustvo.Mapper{Ontology: o, Profile: profile}
	mapping, err := m.MapConcept("gender")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("disclose:", mapping.Credential.Type)
	// Output: disclose: DrivingLicense
}

// ExampleIssueTicket shows the trust-ticket fast path for repeat
// negotiations.
func ExampleIssueTicket() {
	ca := trustvo.MustNewAuthority("CertCA")
	keys := trustvo.MustGenerateKeyPair()

	requester := &trustvo.Party{
		Name:     "member",
		Profile:  trustvo.NewProfile("member"),
		Policies: trustvo.MustPolicySet(),
		Trust:    trustvo.NewTrustStore(ca),
		Tickets:  trustvo.NewTicketCache(),
	}
	requester.Profile.Add(ca.MustIssue(trustvo.IssueRequest{Type: "WorkPermit", Holder: "member"}))

	controller := &trustvo.Party{
		Name:      "portal",
		Profile:   trustvo.NewProfile("portal"),
		Policies:  trustvo.MustPolicySet(trustvo.MustParsePolicies("Service <- WorkPermit")...),
		Trust:     trustvo.NewTrustStore(ca),
		Keys:      keys,
		TicketTTL: 3600e9, // one hour in nanoseconds
	}

	first, _, _ := trustvo.Negotiate(requester, controller, "Service")
	second, _, _ := trustvo.Negotiate(requester, controller, "Service")
	fmt.Println("full negotiation rounds:", first.Rounds)
	fmt.Println("ticketed rounds:        ", second.Rounds)
	// Output:
	// full negotiation rounds: 6
	// ticketed rounds:         2
}
