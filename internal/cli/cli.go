// Package cli loads and saves the file-based configuration used by the
// command-line tools (cmd/tnserve, cmd/voctl, cmd/xtnl): negotiation
// parties, credential authorities and VO contracts.
//
// A party directory holds:
//
//	party.xml      <party name=… strategy=…><holderKey>b64 ed25519 private</holderKey></party>
//	profile.xml    the X-Profile (credentials)
//	policies.tnl   disclosure policies in DSL form ('#' comments allowed)
//	roots.xml      <trustRoots><root name=… key=b64/></trustRoots>
//	ontology.xml   optional OWL-sketch ontology (enables the semantic layer)
//
// An authority file holds the CA name and its Ed25519 private key.
package cli

import (
	"crypto/ed25519"
	"encoding/base64"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"trustvo/internal/negotiation"
	"trustvo/internal/ontology"
	"trustvo/internal/pki"
	"trustvo/internal/vo"
	"trustvo/internal/xmldom"
	"trustvo/internal/xtnl"
)

// Party directory file names.
const (
	PartyFile    = "party.xml"
	ProfileFile  = "profile.xml"
	PoliciesFile = "policies.tnl"
	RootsFile    = "roots.xml"
	OntologyFile = "ontology.xml"
	ContractFile = "contract.xml"
)

// LoadParty reads a party directory into a negotiation.Party.
func LoadParty(dir string) (*negotiation.Party, error) {
	meta, err := readXML(filepath.Join(dir, PartyFile))
	if err != nil {
		return nil, err
	}
	if meta.Name != "party" {
		return nil, fmt.Errorf("cli: %s: root element <%s>, want <party>", PartyFile, meta.Name)
	}
	p := &negotiation.Party{Name: meta.AttrOr("name", "")}
	if p.Name == "" {
		return nil, fmt.Errorf("cli: %s: party without name", PartyFile)
	}
	if p.Strategy, err = negotiation.ParseStrategy(meta.AttrOr("strategy", "standard")); err != nil {
		return nil, fmt.Errorf("cli: %s: %w", PartyFile, err)
	}
	if hk := meta.ChildText("holderKey"); hk != "" {
		raw, err := base64.StdEncoding.DecodeString(hk)
		if err != nil || len(raw) != ed25519.PrivateKeySize {
			return nil, fmt.Errorf("cli: %s: invalid holderKey", PartyFile)
		}
		priv := ed25519.PrivateKey(raw)
		p.Keys = &pki.KeyPair{Private: priv, Public: priv.Public().(ed25519.PublicKey)}
	}

	profText, err := os.ReadFile(filepath.Join(dir, ProfileFile))
	if err != nil {
		return nil, fmt.Errorf("cli: %w", err)
	}
	if p.Profile, err = xtnl.ParseProfile(string(profText)); err != nil {
		return nil, fmt.Errorf("cli: %s: %w", ProfileFile, err)
	}

	polText, err := os.ReadFile(filepath.Join(dir, PoliciesFile))
	if err != nil {
		return nil, fmt.Errorf("cli: %w", err)
	}
	pols, err := xtnl.ParsePolicies(string(polText))
	if err != nil {
		return nil, fmt.Errorf("cli: %s: %w", PoliciesFile, err)
	}
	if p.Policies, err = xtnl.NewPolicySet(pols...); err != nil {
		return nil, fmt.Errorf("cli: %s: %w", PoliciesFile, err)
	}

	roots, err := readXML(filepath.Join(dir, RootsFile))
	if err != nil {
		return nil, err
	}
	if roots.Name != "trustRoots" {
		return nil, fmt.Errorf("cli: %s: root element <%s>, want <trustRoots>", RootsFile, roots.Name)
	}
	p.Trust = pki.NewTrustStore()
	for _, r := range roots.Childs("root") {
		key, err := base64.StdEncoding.DecodeString(r.AttrOr("key", ""))
		if err != nil || len(key) != ed25519.PublicKeySize {
			return nil, fmt.Errorf("cli: %s: invalid key for root %q", RootsFile, r.AttrOr("name", ""))
		}
		p.Trust.AddRoot(r.AttrOr("name", ""), ed25519.PublicKey(key))
	}

	if ontText, err := os.ReadFile(filepath.Join(dir, OntologyFile)); err == nil {
		o, err := ontology.ParseOntology(string(ontText))
		if err != nil {
			return nil, fmt.Errorf("cli: %s: %w", OntologyFile, err)
		}
		p.Mapper = &ontology.Mapper{Ontology: o, Profile: p.Profile}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("cli: %w", err)
	}
	return p, nil
}

// SaveParty writes a party directory. Trust roots and optional ontology
// are taken from the party's fields.
func SaveParty(dir string, p *negotiation.Party) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cli: %w", err)
	}
	meta := xmldom.NewElement("party").
		SetAttr("name", p.Name).
		SetAttr("strategy", p.Strategy.String())
	if p.Keys != nil {
		hk := xmldom.NewElement("holderKey")
		hk.AppendChild(xmldom.NewText(base64.StdEncoding.EncodeToString(p.Keys.Private)))
		meta.AppendChild(hk)
	}
	if err := writeFile(filepath.Join(dir, PartyFile), meta.Indented()); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(dir, ProfileFile), p.Profile.DOM().Indented()); err != nil {
		return err
	}
	var pol string
	for _, rule := range p.Policies.All() {
		pol += rule.String() + "\n"
	}
	if err := writeFile(filepath.Join(dir, PoliciesFile), pol); err != nil {
		return err
	}
	roots := xmldom.NewElement("trustRoots")
	for _, name := range p.Trust.Roots() {
		key, _ := p.Trust.KeyFor(name)
		roots.AppendChild(xmldom.NewElement("root").
			SetAttr("name", name).
			SetAttr("key", base64.StdEncoding.EncodeToString(key)))
	}
	if err := writeFile(filepath.Join(dir, RootsFile), roots.Indented()); err != nil {
		return err
	}
	if p.Mapper != nil {
		if err := writeFile(filepath.Join(dir, OntologyFile), p.Mapper.Ontology.DOM().Indented()); err != nil {
			return err
		}
	}
	return nil
}

// SaveAuthority persists a credential authority (name + private key).
func SaveAuthority(path string, a *pki.Authority) error {
	root := xmldom.NewElement("authority").SetAttr("name", a.Name)
	priv := xmldom.NewElement("private")
	priv.AppendChild(xmldom.NewText(base64.StdEncoding.EncodeToString(a.Keys.Private)))
	root.AppendChild(priv)
	return writeFile(path, root.Indented())
}

// LoadAuthority restores a credential authority.
func LoadAuthority(path string) (*pki.Authority, error) {
	root, err := readXML(path)
	if err != nil {
		return nil, err
	}
	if root.Name != "authority" {
		return nil, fmt.Errorf("cli: %s: root element <%s>, want <authority>", path, root.Name)
	}
	raw, err := base64.StdEncoding.DecodeString(root.ChildText("private"))
	if err != nil || len(raw) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("cli: %s: invalid private key", path)
	}
	priv := ed25519.PrivateKey(raw)
	return &pki.Authority{
		Name: root.AttrOr("name", ""),
		Keys: &pki.KeyPair{Private: priv, Public: priv.Public().(ed25519.PublicKey)},
	}, nil
}

// LoadContract reads a contract.xml.
func LoadContract(path string) (*vo.Contract, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cli: %w", err)
	}
	return vo.ParseContract(string(text))
}

func readXML(path string) (*xmldom.Node, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cli: %w", err)
	}
	root, err := xmldom.ParseString(string(text))
	if err != nil {
		return nil, fmt.Errorf("cli: %s: %w", path, err)
	}
	return root, nil
}

func writeFile(path, content string) error {
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return fmt.Errorf("cli: %w", err)
	}
	return nil
}
