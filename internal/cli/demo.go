package cli

import (
	"fmt"
	"os"
	"path/filepath"

	"trustvo/internal/negotiation"
	"trustvo/internal/pki"
	"trustvo/internal/vo"
	"trustvo/internal/xtnl"
)

// WriteDemo generates a ready-to-run Aircraft Optimization workspace
// under dir:
//
//	dir/ca.xml          the certification authority
//	dir/initiator/      the Aircraft company (VO Initiator) + contract.xml
//	dir/member/         the Aerospace company (Design Web Portal candidate)
//
// After generation:
//
//	voctl serve -party dir/initiator -contract dir/initiator/contract.xml
//	voctl join  -party dir/member -url http://localhost:8080 -role DesignWebPortal
func WriteDemo(dir string) error {
	ca, err := pki.NewAuthority("CertCA")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cli: %w", err)
	}
	if err := SaveAuthority(filepath.Join(dir, "ca.xml"), ca); err != nil {
		return err
	}

	memberKeys, err := pki.GenerateKeyPair()
	if err != nil {
		return err
	}
	memberProfile := xtnl.NewProfile("AerospaceCo")
	wdq, err := ca.Issue(pki.IssueRequest{
		Type: "WebDesignerQuality", Holder: "AerospaceCo", HolderKey: memberKeys.Public,
		Attributes: []xtnl.Attribute{{Name: "regulation", Value: "UNI EN ISO 9000"}},
	})
	if err != nil {
		return err
	}
	aaa, err := ca.Issue(pki.IssueRequest{
		Type: "AAAMember", Holder: "AerospaceCo", HolderKey: memberKeys.Public,
		Sensitivity: xtnl.SensitivityLow,
	})
	if err != nil {
		return err
	}
	memberProfile.Add(wdq, aaa)
	member := &negotiation.Party{
		Name:     "AerospaceCo",
		Profile:  memberProfile,
		Policies: xtnl.MustPolicySet(), // quality credential freely disclosable in the demo
		Trust:    pki.NewTrustStore(ca),
		Keys:     memberKeys,
	}
	if err := SaveParty(filepath.Join(dir, "member"), member); err != nil {
		return err
	}

	iniKeys, err := pki.GenerateKeyPair()
	if err != nil {
		return err
	}
	iniProfile := xtnl.NewProfile("AircraftCo")
	acc, err := ca.Issue(pki.IssueRequest{
		Type: "AAAccreditation", Holder: "AircraftCo", HolderKey: iniKeys.Public,
		Sensitivity: xtnl.SensitivityLow,
	})
	if err != nil {
		return err
	}
	iniProfile.Add(acc)
	initiator := &negotiation.Party{
		Name:     "AircraftCo",
		Profile:  iniProfile,
		Policies: xtnl.MustPolicySet(),
		Trust:    pki.NewTrustStore(ca),
		Keys:     iniKeys,
	}
	iniDir := filepath.Join(dir, "initiator")
	if err := SaveParty(iniDir, initiator); err != nil {
		return err
	}
	contract := &vo.Contract{
		VOName:    "AircraftOptimizationVO",
		Goal:      "low-emission, fuel-efficient wing design",
		Initiator: "AircraftCo",
		Roles: []vo.RoleSpec{
			{Name: "DesignWebPortal", Capabilities: []string{"design-db"}, MinMembers: 1,
				AdmissionPolicies: xtnl.MustParsePolicies(
					"M <- WebDesignerQuality(regulation='UNI EN ISO 9000'), AAAMember")},
			{Name: "Storage", MinMembers: 0,
				AdmissionPolicies: xtnl.MustParsePolicies("M <- DELIV")},
		},
		Rules: []vo.Rule{
			{Operation: "optimize", Callers: []string{"DesignWebPortal"}},
			{Operation: "store", Target: "Storage"},
		},
	}
	return writeFile(filepath.Join(iniDir, ContractFile), contract.DOM().Indented())
}
