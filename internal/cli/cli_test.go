package cli

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"trustvo/internal/negotiation"
	"trustvo/internal/ontology"
	"trustvo/internal/pki"
	"trustvo/internal/xtnl"
)

func TestPartySaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ca := pki.MustNewAuthority("CertCA")
	keys := pki.MustGenerateKeyPair()
	prof := xtnl.NewProfile("alice")
	prof.Add(ca.MustIssue(pki.IssueRequest{
		Type: "EmployeeBadge", Holder: "alice", HolderKey: keys.Public,
		Attributes: []xtnl.Attribute{{Name: "dept", Value: "R&D"}},
	}))
	o := ontology.New()
	o.MustAdd(&ontology.Concept{Name: "badge",
		Implementations: []ontology.Implementation{{CredType: "EmployeeBadge"}}})
	p := &negotiation.Party{
		Name:     "alice",
		Strategy: negotiation.Trusting,
		Profile:  prof,
		Policies: xtnl.MustPolicySet(xtnl.MustParsePolicies("EmployeeBadge <- CounterpartBadge")...),
		Trust:    pki.NewTrustStore(ca),
		Keys:     keys,
		Mapper:   &ontology.Mapper{Ontology: o, Profile: prof},
	}
	if err := SaveParty(dir, p); err != nil {
		t.Fatal(err)
	}
	re, err := LoadParty(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Name != "alice" || re.Strategy != negotiation.Trusting {
		t.Fatalf("meta lost: %+v", re)
	}
	if re.Profile.Len() != 1 || re.Profile.All()[0].Type != "EmployeeBadge" {
		t.Fatalf("profile lost: %+v", re.Profile.All())
	}
	if re.Policies.Len() != 1 {
		t.Fatalf("policies lost: %d", re.Policies.Len())
	}
	if re.Keys == nil || string(re.Keys.Public) != string(keys.Public) {
		t.Fatal("holder key lost")
	}
	if re.Mapper == nil || re.Mapper.Ontology.Len() != 1 {
		t.Fatal("ontology lost")
	}
	// the reloaded credentials still verify
	if err := re.Trust.Verify(re.Profile.All()[0], time.Now()); err != nil {
		t.Fatalf("reloaded credential does not verify: %v", err)
	}
}

func TestLoadPartyErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := LoadParty(dir); err == nil {
		t.Fatal("empty dir accepted")
	}
	write(PartyFile, "<wrong/>")
	if _, err := LoadParty(dir); err == nil {
		t.Fatal("wrong party root accepted")
	}
	write(PartyFile, `<party/>`)
	if _, err := LoadParty(dir); err == nil {
		t.Fatal("nameless party accepted")
	}
	write(PartyFile, `<party name="a" strategy="bogus"/>`)
	if _, err := LoadParty(dir); err == nil {
		t.Fatal("bogus strategy accepted")
	}
	write(PartyFile, `<party name="a"><holderKey>!!</holderKey></party>`)
	if _, err := LoadParty(dir); err == nil {
		t.Fatal("bad holder key accepted")
	}
	write(PartyFile, `<party name="a"/>`)
	if _, err := LoadParty(dir); err == nil {
		t.Fatal("missing profile accepted")
	}
	write(ProfileFile, `<X-Profile owner="a"/>`)
	write(PoliciesFile, "broken <-")
	if _, err := LoadParty(dir); err == nil {
		t.Fatal("broken policies accepted")
	}
	write(PoliciesFile, "# empty\n")
	write(RootsFile, `<trustRoots><root name="x" key="!!"/></trustRoots>`)
	if _, err := LoadParty(dir); err == nil {
		t.Fatal("bad root key accepted")
	}
	write(RootsFile, `<trustRoots/>`)
	write(OntologyFile, "not xml")
	if _, err := LoadParty(dir); err == nil {
		t.Fatal("broken ontology accepted")
	}
	os.Remove(filepath.Join(dir, OntologyFile))
	if _, err := LoadParty(dir); err != nil {
		t.Fatalf("minimal valid party rejected: %v", err)
	}
}

func TestAuthoritySaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ca.xml")
	ca := pki.MustNewAuthority("CertCA")
	cred := ca.MustIssue(pki.IssueRequest{Type: "T", Holder: "h"})
	if err := SaveAuthority(path, ca); err != nil {
		t.Fatal(err)
	}
	re, err := LoadAuthority(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Name != "CertCA" {
		t.Fatalf("name lost: %q", re.Name)
	}
	// the reloaded authority verifies what the original issued and can
	// itself issue verifiable credentials
	ts := pki.NewTrustStore(re)
	if err := ts.Verify(cred, time.Now()); err != nil {
		t.Fatal(err)
	}
	cred2, err := re.Issue(pki.IssueRequest{Type: "T2", Holder: "h"})
	if err != nil {
		t.Fatal(err)
	}
	if err := pki.NewTrustStore(ca).Verify(cred2, time.Now()); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAuthority(filepath.Join(dir, "missing.xml")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestWriteDemoIsRunnable(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDemo(dir); err != nil {
		t.Fatal(err)
	}
	member, err := LoadParty(filepath.Join(dir, "member"))
	if err != nil {
		t.Fatal(err)
	}
	initiator, err := LoadParty(filepath.Join(dir, "initiator"))
	if err != nil {
		t.Fatal(err)
	}
	contract, err := LoadContract(filepath.Join(dir, "initiator", ContractFile))
	if err != nil {
		t.Fatal(err)
	}
	if contract.VOName != "AircraftOptimizationVO" {
		t.Fatalf("contract = %+v", contract)
	}
	// the generated materials support a successful admission negotiation
	res := "VoMembership/AircraftOptimizationVO/DesignWebPortal"
	for _, p := range contract.Roles[0].AdmissionPolicies {
		cp := *p
		cp.Resource = res
		if err := initiator.Policies.Add(&cp); err != nil {
			t.Fatal(err)
		}
	}
	out, _, err := negotiation.Run(member, initiator, res)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Succeeded {
		t.Fatalf("demo negotiation failed: %s", out.Reason)
	}
}

func TestLoadContractErrors(t *testing.T) {
	if _, err := LoadContract(filepath.Join(t.TempDir(), "nope.xml")); err == nil {
		t.Fatal("missing contract accepted")
	}
}
