// Package reputation tracks VO member reputations.
//
// The paper's lifecycle updates reputation throughout the operation
// phase: "Each member will have an associated reputation, established on
// the basis of past transactions and updated as it interacts with members
// of the VO" (§2); violations lower it and can trigger replacement
// ("during the operational phase one of the members detects that the
// reputation of the HPC service has decreased due to contract's
// violation", §5.1).
//
// The model is a beta reputation: a member's score is
// (decayed positives + 1) / (decayed positives + decayed negatives + 2),
// in (0,1), starting at the neutral prior 0.5. Evidence decays
// exponentially with a configurable half-life, so old behaviour matters
// less than recent behaviour.
package reputation

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Event is one reputation observation about a member.
type Event struct {
	Member   string
	Positive bool
	// Weight scales the observation (default 1 when zero); contract
	// violations typically carry higher weight than routine operations.
	Weight float64
	At     time.Time
	Note   string
}

// System accumulates events and computes scores. It is safe for
// concurrent use.
type System struct {
	// HalfLife is the evidence half-life; zero disables decay.
	HalfLife time.Duration

	mu     sync.RWMutex
	events map[string][]Event
}

// New returns a reputation system with the given evidence half-life
// (zero = no decay).
func New(halfLife time.Duration) *System {
	return &System{HalfLife: halfLife, events: make(map[string][]Event)}
}

// Record stores an observation. Zero Weight defaults to 1; zero At
// defaults to now.
func (s *System) Record(e Event) {
	if e.Weight == 0 {
		e.Weight = 1
	}
	if e.At.IsZero() {
		e.At = time.Now()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events[e.Member] = append(s.events[e.Member], e)
}

// Events returns a copy of the member's history in recording order.
func (s *System) Events(member string) []Event {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Event(nil), s.events[member]...)
}

// Score returns the member's reputation in (0,1) as of now. Members
// without history score the neutral prior 0.5.
func (s *System) Score(member string, now time.Time) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var pos, neg float64
	for _, e := range s.events[member] {
		w := e.Weight * s.decay(e.At, now)
		if e.Positive {
			pos += w
		} else {
			neg += w
		}
	}
	return (pos + 1) / (pos + neg + 2)
}

func (s *System) decay(at, now time.Time) float64 {
	if s.HalfLife <= 0 {
		return 1
	}
	age := now.Sub(at)
	if age <= 0 {
		return 1
	}
	return math.Exp2(-float64(age) / float64(s.HalfLife))
}

// Below reports whether the member's score is under the threshold.
func (s *System) Below(member string, threshold float64, now time.Time) bool {
	return s.Score(member, now) < threshold
}

// MemberScore pairs a member with its score, for rankings.
type MemberScore struct {
	Member string
	Score  float64
}

// Ranking returns all known members ordered by descending score
// (ties broken by name for determinism).
func (s *System) Ranking(now time.Time) []MemberScore {
	s.mu.RLock() //lint:allow nakedlock snapshot member names; scoring below re-locks per member
	members := make([]string, 0, len(s.events))
	for m := range s.events {
		members = append(members, m)
	}
	s.mu.RUnlock()
	out := make([]MemberScore, 0, len(members))
	for _, m := range members {
		out = append(out, MemberScore{Member: m, Score: s.Score(m, now)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Member < out[j].Member
	})
	return out
}
