package reputation

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestNeutralPrior(t *testing.T) {
	s := New(0)
	if got := s.Score("unknown", t0); got != 0.5 {
		t.Fatalf("prior = %v, want 0.5", got)
	}
}

func TestPositiveAndNegativeEvidence(t *testing.T) {
	s := New(0)
	s.Record(Event{Member: "hpc", Positive: true, At: t0})
	up := s.Score("hpc", t0)
	if up <= 0.5 {
		t.Fatalf("score after positive = %v", up)
	}
	s.Record(Event{Member: "hpc", Positive: false, At: t0})
	mid := s.Score("hpc", t0)
	if mid >= up {
		t.Fatalf("negative evidence did not lower score: %v -> %v", up, mid)
	}
	// beta with 1 pos, 1 neg = (1+1)/(2+2) = 0.5
	if math.Abs(mid-0.5) > 1e-9 {
		t.Fatalf("balanced evidence = %v, want 0.5", mid)
	}
}

func TestViolationWeight(t *testing.T) {
	s := New(0)
	s.Record(Event{Member: "a", Positive: false, At: t0})
	s.Record(Event{Member: "b", Positive: false, Weight: 5, At: t0})
	if s.Score("b", t0) >= s.Score("a", t0) {
		t.Fatalf("weighted violation should hurt more: a=%v b=%v", s.Score("a", t0), s.Score("b", t0))
	}
}

func TestDecayForgivesOldViolations(t *testing.T) {
	s := New(24 * time.Hour)
	s.Record(Event{Member: "hpc", Positive: false, Weight: 10, At: t0})
	early := s.Score("hpc", t0)
	late := s.Score("hpc", t0.Add(10*24*time.Hour))
	if late <= early {
		t.Fatalf("decay should raise the score over time: %v -> %v", early, late)
	}
	// after 10 half-lives the evidence is nearly gone
	if math.Abs(late-0.5) > 0.01 {
		t.Fatalf("decayed score = %v, want ≈0.5", late)
	}
	// exact half-life: weight 10 decays to 5 after 24h
	half := s.Score("hpc", t0.Add(24*time.Hour))
	want := 1.0 / (5 + 2)
	if math.Abs(half-want) > 1e-9 {
		t.Fatalf("half-life score = %v, want %v", half, want)
	}
}

func TestNoDecayWhenDisabled(t *testing.T) {
	s := New(0)
	s.Record(Event{Member: "m", Positive: true, At: t0})
	if s.Score("m", t0) != s.Score("m", t0.Add(1000*time.Hour)) {
		t.Fatal("score changed without decay enabled")
	}
}

func TestBelowThreshold(t *testing.T) {
	s := New(0)
	for i := 0; i < 5; i++ {
		s.Record(Event{Member: "hpc", Positive: false, At: t0})
	}
	if !s.Below("hpc", 0.4, t0) {
		t.Fatalf("score = %v, expected below 0.4", s.Score("hpc", t0))
	}
	if s.Below("hpc", 0.1, t0) {
		t.Fatal("score should not be below 0.1")
	}
}

func TestRankingOrderAndTies(t *testing.T) {
	s := New(0)
	s.Record(Event{Member: "good", Positive: true, At: t0})
	s.Record(Event{Member: "bad", Positive: false, At: t0})
	s.Record(Event{Member: "tie1", Positive: true, At: t0})
	s.Record(Event{Member: "tie2", Positive: true, At: t0})
	r := s.Ranking(t0)
	if len(r) != 4 {
		t.Fatalf("ranking size = %d", len(r))
	}
	if r[len(r)-1].Member != "bad" {
		t.Fatalf("worst member = %s", r[len(r)-1].Member)
	}
	// ties broken by name
	var tiePos []string
	for _, ms := range r {
		if ms.Member == "tie1" || ms.Member == "tie2" {
			tiePos = append(tiePos, ms.Member)
		}
	}
	if tiePos[0] != "tie1" || tiePos[1] != "tie2" {
		t.Fatalf("tie order = %v", tiePos)
	}
}

func TestEventsCopied(t *testing.T) {
	s := New(0)
	s.Record(Event{Member: "m", Positive: true, At: t0, Note: "ok"})
	ev := s.Events("m")
	ev[0].Note = "mutated"
	if s.Events("m")[0].Note != "ok" {
		t.Fatal("Events returned a mutable reference")
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := New(0)
	s.Record(Event{Member: "m", Positive: true})
	e := s.Events("m")[0]
	if e.Weight != 1 || e.At.IsZero() {
		t.Fatalf("defaults not applied: %+v", e)
	}
}

func TestConcurrentRecordAndScore(t *testing.T) {
	s := New(time.Hour)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Record(Event{Member: "m", Positive: i%2 == 0, At: t0})
				s.Score("m", t0)
				s.Ranking(t0)
			}
		}(g)
	}
	wg.Wait()
	if got := len(s.Events("m")); got != 800 {
		t.Fatalf("events = %d", got)
	}
}

// Properties: scores stay in (0,1); positive evidence never lowers a
// score; negative never raises it.
func TestQuickScoreProperties(t *testing.T) {
	f := func(outcomes []bool, weights []uint8) bool {
		s := New(0)
		prev := s.Score("m", t0)
		for i, pos := range outcomes {
			w := 1.0
			if i < len(weights) {
				w = float64(weights[i]%8) + 0.5
			}
			s.Record(Event{Member: "m", Positive: pos, Weight: w, At: t0})
			cur := s.Score("m", t0)
			if cur <= 0 || cur >= 1 {
				return false
			}
			if pos && cur < prev {
				return false
			}
			if !pos && cur > prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScore1000Events(b *testing.B) {
	s := New(time.Hour)
	for i := 0; i < 1000; i++ {
		s.Record(Event{Member: "m", Positive: i%3 != 0, At: t0.Add(time.Duration(i) * time.Minute)})
	}
	now := t0.Add(24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Score("m", now)
	}
}
