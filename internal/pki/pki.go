// Package pki provides the credential-authority substrate of the
// reproduction: key pairs, credential issuance and signing, revocation
// lists, trust stores with credential-chain resolution, ownership proofs,
// and the X.509 bridge used for VO membership tokens (paper §6.3).
//
// The paper's prototype verified credentials "using credential issuers'
// public keys", checked "for revocation and validity dates", and
// authenticated "the ownership (for credentials)" (§4.2). Signatures here
// are Ed25519 over the canonical XML bytes of a credential with its
// <signature> element removed (xtnl.Credential.SignedBytes).
package pki

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/base64"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"trustvo/internal/xtnl"
)

// randRead fills b with cryptographic randomness (indirection point for
// the whole package).
func randRead(b []byte) (int, error) { return rand.Read(b) }

// KeyPair is an Ed25519 signing key with its public half.
type KeyPair struct {
	Public  ed25519.PublicKey
	Private ed25519.PrivateKey
}

// GenerateKeyPair creates a fresh random key pair.
func GenerateKeyPair() (*KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pki: generate key: %w", err)
	}
	return &KeyPair{Public: pub, Private: priv}, nil
}

// MustGenerateKeyPair is GenerateKeyPair that panics on failure, for
// fixtures and examples.
func MustGenerateKeyPair() *KeyPair {
	kp, err := GenerateKeyPair()
	if err != nil {
		panic(err)
	}
	return kp
}

// Sign returns the Ed25519 signature of msg.
func (k *KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(k.Private, msg)
}

// Errors reported by verification.
var (
	ErrUnknownIssuer   = errors.New("pki: unknown issuer")
	ErrBadSignature    = errors.New("pki: signature verification failed")
	ErrExpired         = errors.New("pki: credential outside validity window")
	ErrRevoked         = errors.New("pki: credential revoked")
	ErrUnsigned        = errors.New("pki: credential carries no signature")
	ErrOwnershipFailed = errors.New("pki: ownership proof failed")
	ErrNoChain         = errors.New("pki: no trust chain to a trusted root")
)

// Authority is a Credential Authority (CA): it issues signed X-TNL
// credentials, tracks serial numbers, and maintains a revocation list.
// An Authority is safe for concurrent use.
type Authority struct {
	Name string
	Keys *KeyPair

	mu      sync.Mutex
	serial  uint64
	revoked map[string]time.Time // credential ID -> revocation time
}

// nextSerial allocates the next credential serial number.
func (a *Authority) nextSerial() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.serial++
	return a.serial
}

// NewAuthority creates a CA with a fresh key pair.
func NewAuthority(name string) (*Authority, error) {
	kp, err := GenerateKeyPair()
	if err != nil {
		return nil, err
	}
	return &Authority{Name: name, Keys: kp, revoked: make(map[string]time.Time)}, nil
}

// MustNewAuthority is NewAuthority that panics on failure.
func MustNewAuthority(name string) *Authority {
	a, err := NewAuthority(name)
	if err != nil {
		panic(err)
	}
	return a
}

// IssueRequest describes the credential an Authority should mint.
type IssueRequest struct {
	Type        string
	Holder      string
	HolderKey   ed25519.PublicKey // optional, enables ownership proofs
	Attributes  []xtnl.Attribute
	Sensitivity xtnl.Sensitivity
	ValidFrom   time.Time     // zero means now
	Lifetime    time.Duration // zero means one year
}

// Issue mints and signs a credential. The credential ID embeds the
// authority name and a serial number plus random suffix, so IDs are
// unique across authorities.
func (a *Authority) Issue(req IssueRequest) (*xtnl.Credential, error) {
	if req.Type == "" {
		return nil, errors.New("pki: issue: empty credential type")
	}
	from := req.ValidFrom
	if from.IsZero() {
		from = time.Now().UTC().Truncate(time.Second)
	}
	life := req.Lifetime
	if life == 0 {
		life = 365 * 24 * time.Hour
	}
	serial := a.nextSerial()

	var rnd [4]byte
	if _, err := rand.Read(rnd[:]); err != nil {
		return nil, fmt.Errorf("pki: issue: %w", err)
	}
	cred := &xtnl.Credential{
		ID:          fmt.Sprintf("%s-%d-%s", a.Name, serial, hex.EncodeToString(rnd[:])),
		Type:        req.Type,
		Issuer:      a.Name,
		Holder:      req.Holder,
		HolderKey:   append([]byte(nil), req.HolderKey...),
		ValidFrom:   from,
		ValidUntil:  from.Add(life),
		Sensitivity: req.Sensitivity,
		Attributes:  append([]xtnl.Attribute(nil), req.Attributes...),
	}
	cred.Signature = a.Keys.Sign(cred.SignedBytes())
	return cred, nil
}

// MustIssue is Issue that panics on failure, for fixtures.
func (a *Authority) MustIssue(req IssueRequest) *xtnl.Credential {
	c, err := a.Issue(req)
	if err != nil {
		panic(err)
	}
	return c
}

// Revoke adds the credential ID to the authority's revocation list.
func (a *Authority) Revoke(credID string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.revoked == nil {
		a.revoked = make(map[string]time.Time)
	}
	a.revoked[credID] = time.Now().UTC()
}

// CRL returns a signed snapshot of the authority's revocation list.
func (a *Authority) CRL() *RevocationList {
	a.mu.Lock() //lint:allow nakedlock snapshot revoked IDs; signing below runs unlocked
	ids := make([]string, 0, len(a.revoked))
	for id := range a.revoked {
		ids = append(ids, id)
	}
	a.mu.Unlock()
	crl := &RevocationList{Issuer: a.Name, IssuedAt: time.Now().UTC(), Revoked: ids}
	crl.Signature = a.Keys.Sign(crl.signedBytes())
	return crl
}

// RevocationList is a signed list of revoked credential IDs.
type RevocationList struct {
	Issuer    string
	IssuedAt  time.Time
	Revoked   []string
	Signature []byte
}

func (r *RevocationList) signedBytes() []byte {
	s := r.Issuer + "|" + r.IssuedAt.Format(time.RFC3339)
	for _, id := range r.Revoked {
		s += "|" + id
	}
	return []byte(s)
}

// Verify checks the CRL signature against the issuer's public key.
func (r *RevocationList) Verify(pub ed25519.PublicKey) error {
	if !ed25519.Verify(pub, r.signedBytes(), r.Signature) {
		return ErrBadSignature
	}
	return nil
}

// Contains reports whether the credential ID is revoked.
func (r *RevocationList) Contains(credID string) bool {
	for _, id := range r.Revoked {
		if id == credID {
			return true
		}
	}
	return false
}

// DelegationType is the credential type that authority-delegation
// credentials carry. A delegation credential, issued by a trusted (or
// transitively delegated) authority, states the name and public key of
// another authority, extending the trust chain (paper §4.2: credentials
// "not immediately available" are retrieved "through credentials chains").
const DelegationType = "AuthorityDelegation"

// Delegate issues a delegation credential for the target authority,
// binding its name to its public key.
func (a *Authority) Delegate(target *Authority, lifetime time.Duration) (*xtnl.Credential, error) {
	return a.Issue(IssueRequest{
		Type:   DelegationType,
		Holder: target.Name,
		Attributes: []xtnl.Attribute{
			{Name: "authorityName", Value: target.Name},
			{Name: "authorityKey", Value: base64.StdEncoding.EncodeToString(target.Keys.Public)},
		},
		Sensitivity: xtnl.SensitivityLow,
		Lifetime:    lifetime,
	})
}
