package pki

import (
	"errors"
	"testing"
	"time"

	"trustvo/internal/xtnl"
)

func TestX509AttributeRoundTrip(t *testing.T) {
	ca := MustNewAuthority("CertCA")
	holder := MustGenerateKeyPair()
	cred, der, err := ca.IssueX509Attribute(IssueRequest{
		Type: "ISO 9000 Certified", Holder: "AerospaceCo", HolderKey: holder.Public,
		Sensitivity: xtnl.SensitivityLow,
		Attributes:  []xtnl.Attribute{{Name: "QualityRegulation", Value: "UNI EN ISO 9000"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	view, err := DecodeX509Attribute(der)
	if err != nil {
		t.Fatal(err)
	}
	if view.Type != cred.Type || view.ID != cred.ID || view.Holder != cred.Holder || view.Issuer != "CertCA" {
		t.Fatalf("identity lost: %+v", view)
	}
	if view.Sensitivity != xtnl.SensitivityLow {
		t.Fatalf("sensitivity lost: %v", view.Sensitivity)
	}
	if v, ok := view.Attr("QualityRegulation"); !ok || v != "UNI EN ISO 9000" {
		t.Fatalf("attributes lost: %+v", view.Attributes)
	}
	if string(view.HolderKey) != string(holder.Public) {
		t.Fatal("holder key lost")
	}
	// validity mirrors the XML credential (truncated to seconds)
	if !view.ValidFrom.Equal(cred.ValidFrom) || !view.ValidUntil.Equal(cred.ValidUntil) {
		t.Fatalf("validity drifted: %v..%v vs %v..%v",
			view.ValidFrom, view.ValidUntil, cred.ValidFrom, cred.ValidUntil)
	}
}

func TestX509AttributeVerify(t *testing.T) {
	ca := MustNewAuthority("CertCA")
	_, der, err := ca.IssueX509Attribute(IssueRequest{Type: "T", Holder: "h"})
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(ca)
	view, err := ts.VerifyX509Attribute(der, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if view.Type != "T" {
		t.Fatalf("view = %+v", view)
	}
	// untrusted issuer
	other := NewTrustStore(MustNewAuthority("Other"))
	if _, err := other.VerifyX509Attribute(der, time.Now()); !errors.Is(err, ErrUnknownIssuer) {
		t.Fatalf("untrusted: %v", err)
	}
	// tampered DER
	bad := append([]byte(nil), der...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := ts.VerifyX509Attribute(bad, time.Now()); err == nil {
		t.Fatal("tampered certificate accepted")
	}
	// expired
	if _, err := ts.VerifyX509Attribute(der, time.Now().Add(10*365*24*time.Hour)); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired: %v", err)
	}
	// garbage
	if _, err := ts.VerifyX509Attribute([]byte("nope"), time.Now()); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestX509AttributeRevocationSharedWithXML(t *testing.T) {
	ca := MustNewAuthority("CertCA")
	cred, der, err := ca.IssueX509Attribute(IssueRequest{Type: "T", Holder: "h"})
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(ca)
	// revoking the credential ID kills BOTH encodings
	ca.Revoke(cred.ID)
	if err := ts.AddCRL(ca.CRL()); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.VerifyX509Attribute(der, time.Now()); !errors.Is(err, ErrRevoked) {
		t.Fatalf("x509 revocation: %v", err)
	}
	if err := ts.Verify(cred, time.Now()); !errors.Is(err, ErrRevoked) {
		t.Fatalf("xml revocation: %v", err)
	}
}

func TestEncodeX509RejectsForeignCredential(t *testing.T) {
	ca := MustNewAuthority("CertCA")
	other := MustNewAuthority("Other")
	cred := other.MustIssue(IssueRequest{Type: "T"})
	if _, err := ca.EncodeX509Attribute(cred); err == nil {
		t.Fatal("foreign credential encoded")
	}
}

func TestDecodeX509RejectsPlainCertificates(t *testing.T) {
	// a bare CA certificate is an X.509 cert but NOT an attribute
	// credential (no credType extension)
	voa, err := NewVOAuthority("VO")
	if err != nil {
		t.Fatal(err)
	}
	caDER := voa.CACertPEM()
	_ = caDER
	// decode the PEM back to DER via the x509 bridge used in tests
	tok, err := voa.IssueMembership("m", "r", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// membership tokens now DO decode (they double as participation
	// tickets)…
	view, err := DecodeX509Attribute(tok.DER)
	if err != nil {
		t.Fatalf("membership token should decode as a ticket: %v", err)
	}
	if view.Type != ParticipationTicketType {
		t.Fatalf("ticket type = %q", view.Type)
	}
	if v, _ := view.Attr("vo"); v != "VO" {
		t.Fatalf("ticket vo = %q", v)
	}
	if v, _ := view.Attr("role"); v != "r" {
		t.Fatalf("ticket role = %q", v)
	}
}

func TestMembershipTicketVerifiesViaTrustAnchor(t *testing.T) {
	voa, err := NewVOAuthority("AircraftOptimizationVO")
	if err != nil {
		t.Fatal(err)
	}
	tok, err := voa.IssueMembership("AerospaceCo", "DesignWebPortal", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	name, key := voa.TrustAnchor()
	ts := NewTrustStore()
	ts.AddRoot(name, key)
	view, err := ts.VerifyX509Attribute(tok.DER, time.Now())
	if err != nil {
		t.Fatalf("ticket verification: %v", err)
	}
	if v, _ := view.Attr("vo"); v != "AircraftOptimizationVO" {
		t.Fatalf("ticket vo = %q", v)
	}
	// a stranger's trust store rejects it
	other := NewTrustStore(MustNewAuthority("Other"))
	if _, err := other.VerifyX509Attribute(tok.DER, time.Now()); err == nil {
		t.Fatal("ticket accepted without the VO trust anchor")
	}
}

func TestX509OwnershipProof(t *testing.T) {
	ca := MustNewAuthority("CertCA")
	holder := MustGenerateKeyPair()
	_, der, err := ca.IssueX509Attribute(IssueRequest{Type: "T", Holder: "h", HolderKey: holder.Public})
	if err != nil {
		t.Fatal(err)
	}
	view, err := DecodeX509Attribute(der)
	if err != nil {
		t.Fatal(err)
	}
	nonce, _ := NewNonce()
	if err := VerifyOwnership(view, nonce, ProveOwnership(holder, nonce)); err != nil {
		t.Fatalf("ownership over x509 view: %v", err)
	}
}

func BenchmarkEncodeX509Attribute(b *testing.B) {
	ca := MustNewAuthority("CertCA")
	cred := ca.MustIssue(IssueRequest{Type: "T", Holder: "h",
		Attributes: []xtnl.Attribute{{Name: "a", Value: "v"}}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ca.EncodeX509Attribute(cred); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyX509Attribute(b *testing.B) {
	ca := MustNewAuthority("CertCA")
	_, der, err := ca.IssueX509Attribute(IssueRequest{Type: "T", Holder: "h"})
	if err != nil {
		b.Fatal(err)
	}
	ts := NewTrustStore(ca)
	now := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ts.VerifyX509Attribute(der, now); err != nil {
			b.Fatal(err)
		}
	}
}
