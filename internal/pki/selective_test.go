package pki

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"trustvo/internal/xtnl"
)

func newSelectiveFixture(t *testing.T) (*Authority, *SelectiveCredential) {
	t.Helper()
	ca := MustNewAuthority("INFN")
	sc, err := ca.IssueSelective(IssueRequest{
		Type:   "BalanceSheet",
		Holder: "AircraftCo",
		Attributes: []xtnl.Attribute{
			{Name: "year", Value: "2009"},
			{Name: "revenue", Value: "12000000"},
			{Name: "auditor", Value: "BBB"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ca, sc
}

func TestSelectiveDiscloseSubset(t *testing.T) {
	ca, sc := newSelectiveFixture(t)
	ts := NewTrustStore(ca)

	// The committed credential itself verifies like any credential.
	if err := ts.Verify(sc.Committed, time.Now()); err != nil {
		t.Fatalf("committed credential: %v", err)
	}
	if sc.Committed.Type != "BalanceSheet (hashed)" {
		t.Fatalf("committed type = %q", sc.Committed.Type)
	}

	d, err := sc.Disclose("auditor")
	if err != nil {
		t.Fatal(err)
	}
	view, err := VerifyDisclosure(d)
	if err != nil {
		t.Fatal(err)
	}
	if view.Type != "BalanceSheet" {
		t.Fatalf("view type = %q", view.Type)
	}
	if v, ok := view.Attr("auditor"); !ok || v != "BBB" {
		t.Fatalf("opened auditor = %q %v", v, ok)
	}
	// undisclosed attributes stay hidden
	if _, ok := view.Attr("revenue"); ok {
		t.Fatal("revenue leaked into the view")
	}
	// commitments don't reveal values (hash, not plaintext)
	if v, _ := d.Committed.Attr("revenue"); v == "12000000" {
		t.Fatal("committed credential contains plaintext revenue")
	}
}

func TestSelectiveTamperedOpeningRejected(t *testing.T) {
	_, sc := newSelectiveFixture(t)
	d, _ := sc.Disclose("year")
	d.Opened[0].Value = "2024" // lie about the year
	if _, err := VerifyDisclosure(d); !errors.Is(err, ErrCommitmentMismatch) {
		t.Fatalf("tampered opening: err = %v", err)
	}
	// tampered salt also fails
	d2, _ := sc.Disclose("year")
	d2.Opened[0].Salt[0] ^= 1
	if _, err := VerifyDisclosure(d2); !errors.Is(err, ErrCommitmentMismatch) {
		t.Fatalf("tampered salt: err = %v", err)
	}
	// opening an attribute the credential never committed
	d3, _ := sc.Disclose("year")
	d3.Opened[0].Name = "phantom"
	if _, err := VerifyDisclosure(d3); !errors.Is(err, ErrCommitmentMismatch) {
		t.Fatalf("phantom attribute: err = %v", err)
	}
}

func TestSelectiveDiscloseUnknownAttr(t *testing.T) {
	_, sc := newSelectiveFixture(t)
	if _, err := sc.Disclose("nope"); err == nil {
		t.Fatal("disclosing unknown attribute should fail")
	}
}

func TestSelectiveAttributeNames(t *testing.T) {
	_, sc := newSelectiveFixture(t)
	names := sc.AttributeNames()
	sort.Strings(names)
	want := []string{"auditor", "revenue", "year"}
	if len(names) != 3 || names[0] != want[0] || names[1] != want[1] || names[2] != want[2] {
		t.Fatalf("AttributeNames = %v", names)
	}
}

func TestSupportsSelectiveDisclosure(t *testing.T) {
	_, sc := newSelectiveFixture(t)
	if !SupportsSelectiveDisclosure(sc.Committed) {
		t.Fatal("hashed credential should support selective disclosure")
	}
	if SupportsSelectiveDisclosure(&xtnl.Credential{Type: "Plain"}) {
		t.Fatal("plain credential should not support selective disclosure")
	}
}

func TestBaseType(t *testing.T) {
	if got := BaseType("X (hashed)"); got != "X" {
		t.Fatalf("BaseType = %q", got)
	}
	if got := BaseType("X"); got != "X" {
		t.Fatalf("BaseType of plain = %q", got)
	}
	if got := BaseType(" (hashed)"); got != " (hashed)" {
		t.Fatalf("BaseType of bare marker = %q", got)
	}
}

// Property: for arbitrary attribute values, an honest open always
// verifies and a flipped value never does.
func TestQuickSelectiveSoundness(t *testing.T) {
	ca := MustNewAuthority("QA")
	f := func(val string, flip byte) bool {
		sc, err := ca.IssueSelective(IssueRequest{
			Type:       "T",
			Attributes: []xtnl.Attribute{{Name: "a", Value: val}},
		})
		if err != nil {
			return false
		}
		d, err := sc.Disclose("a")
		if err != nil {
			return false
		}
		if _, err := VerifyDisclosure(d); err != nil {
			return false
		}
		d.Opened[0].Value = val + string(rune('A'+flip%26))
		_, err = VerifyDisclosure(d)
		return errors.Is(err, ErrCommitmentMismatch)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
