package pki

import (
	"bytes"
	"testing"
	"time"
)

func TestMembershipIssueAndVerify(t *testing.T) {
	voa, err := NewVOAuthority("AircraftOptimizationVO")
	if err != nil {
		t.Fatal(err)
	}
	tok, err := voa.IssueMembership("AerospaceCo", "DesignWebPortal", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if tok.VO != "AircraftOptimizationVO" || tok.Role != "DesignWebPortal" || tok.Member != "AerospaceCo" {
		t.Fatalf("token fields: %+v", tok)
	}
	got, err := voa.VerifyMembership(tok.DER)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if got.VO != tok.VO || got.Role != tok.Role || got.Member != tok.Member {
		t.Fatalf("decoded token = %+v, want %+v", got, tok)
	}
	// §5.1: the token carries the VO's public key for in-VO authentication.
	if !bytes.Equal(got.VOKey, voa.Keys.Public) {
		t.Fatal("token does not carry the VO public key")
	}
}

func TestMembershipRejectsForeignCA(t *testing.T) {
	voa1, _ := NewVOAuthority("VO1")
	voa2, _ := NewVOAuthority("VO2")
	tok, err := voa1.IssueMembership("m", "r", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := voa2.VerifyMembership(tok.DER); err == nil {
		t.Fatal("membership from foreign VO accepted")
	}
}

func TestMembershipRejectsGarbage(t *testing.T) {
	voa, _ := NewVOAuthority("VO")
	if _, err := voa.VerifyMembership([]byte("not a cert")); err == nil {
		t.Fatal("garbage DER accepted")
	}
}

func TestMembershipValidation(t *testing.T) {
	voa, _ := NewVOAuthority("VO")
	if _, err := voa.IssueMembership("", "r", 0); err == nil {
		t.Fatal("empty member accepted")
	}
	if _, err := voa.IssueMembership("m", "", 0); err == nil {
		t.Fatal("empty role accepted")
	}
}

func TestMembershipPEMEncodes(t *testing.T) {
	voa, _ := NewVOAuthority("VO")
	tok, _ := voa.IssueMembership("m", "r", time.Hour)
	p := tok.PEM()
	if !bytes.Contains(p, []byte("BEGIN CERTIFICATE")) {
		t.Fatalf("PEM output malformed: %s", p)
	}
	if !bytes.Contains(voa.CACertPEM(), []byte("BEGIN CERTIFICATE")) {
		t.Fatal("CA PEM malformed")
	}
}

func BenchmarkIssueMembership(b *testing.B) {
	voa, _ := NewVOAuthority("VO")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := voa.IssueMembership("m", "r", time.Hour); err != nil {
			b.Fatal(err)
		}
	}
}
