package pki

import (
	"sync"
	"testing"
	"time"

	"trustvo/internal/xtnl"
)

func issueTestCred(t *testing.T, ca *Authority, typ string) *xtnl.Credential {
	t.Helper()
	c, err := ca.Issue(IssueRequest{Type: typ, Holder: "Holder"})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestVerifyCacheHitSkipsRecompute(t *testing.T) {
	ca := MustNewAuthority("CA")
	ts := NewTrustStore(ca)
	cred := issueTestCred(t, ca, "Badge")
	now := time.Now()

	if err := ts.Verify(cred, now); err != nil {
		t.Fatal(err)
	}
	if err := ts.Verify(cred, now); err != nil {
		t.Fatal(err)
	}
	st := ts.CacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats after two verifies: %+v", st)
	}
}

func TestVerifyCacheRejectsTamperedContent(t *testing.T) {
	ca := MustNewAuthority("CA")
	ts := NewTrustStore(ca)
	cred := issueTestCred(t, ca, "Badge")
	now := time.Now()
	if err := ts.Verify(cred, now); err != nil {
		t.Fatal(err)
	}
	// Same genuine signature, different content: must NOT ride the
	// cached success past verification.
	tampered := cred.Clone()
	tampered.SetAttr("granted", "everything")
	if err := ts.Verify(tampered, now); err == nil {
		t.Fatal("tampered credential verified via cache")
	}
	// And the original still verifies.
	if err := ts.Verify(cred, now); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCacheInvalidatedByCRL(t *testing.T) {
	ca := MustNewAuthority("CA")
	ts := NewTrustStore(ca)
	cred := issueTestCred(t, ca, "Badge")
	now := time.Now()
	if err := ts.Verify(cred, now); err != nil {
		t.Fatal(err)
	}
	ca.Revoke(cred.ID)
	if err := ts.AddCRL(ca.CRL()); err != nil {
		t.Fatal(err)
	}
	if err := ts.Verify(cred, now); err == nil {
		t.Fatal("revoked credential verified via stale cache")
	}
	if st := ts.CacheStats(); st.Invalidations == 0 {
		t.Fatalf("AddCRL did not invalidate: %+v", st)
	}
}

func TestVerifyCacheRespectsExpiryOnHit(t *testing.T) {
	ca := MustNewAuthority("CA")
	ts := NewTrustStore(ca)
	cred := issueTestCred(t, ca, "Badge")
	now := time.Now()
	if err := ts.Verify(cred, now); err != nil {
		t.Fatal(err)
	}
	// The cached success must not outlive the validity window.
	past := cred.ValidUntil.Add(time.Hour)
	if err := ts.Verify(cred, past); err == nil {
		t.Fatal("expired credential verified via cache")
	}
}

func TestVerifyChainCachedWithChain(t *testing.T) {
	root := MustNewAuthority("Root")
	sub := MustNewAuthority("Sub")
	ts := NewTrustStore(root)
	del, err := root.Delegate(sub, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cred, err := sub.Issue(IssueRequest{Type: "Badge", Holder: "H"})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	pool := []*xtnl.Credential{del}
	chain1, err := ts.VerifyChain(cred, pool, now)
	if err != nil {
		t.Fatal(err)
	}
	// Second call hits the cache and returns the same chain — even with
	// an empty pool, since the chain was already proven.
	chain2, err := ts.VerifyChain(cred, nil, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain1) != 1 || len(chain2) != 1 || chain2[0].ID != chain1[0].ID {
		t.Fatalf("chains differ: %v vs %v", chain1, chain2)
	}
	if st := ts.CacheStats(); st.Hits == 0 {
		t.Fatalf("no cache hit recorded: %+v", st)
	}
}

func TestVerifyCacheDisabled(t *testing.T) {
	ca := MustNewAuthority("CA")
	ts := NewTrustStore(ca)
	ts.DisableCache = true
	cred := issueTestCred(t, ca, "Badge")
	now := time.Now()
	for i := 0; i < 3; i++ {
		if err := ts.Verify(cred, now); err != nil {
			t.Fatal(err)
		}
	}
	if st := ts.CacheStats(); st.Hits != 0 || st.Entries != 0 {
		t.Fatalf("disabled cache recorded activity: %+v", st)
	}
}

func TestVerifyCacheConcurrent(t *testing.T) {
	ca := MustNewAuthority("CA")
	ts := NewTrustStore(ca)
	creds := make([]*xtnl.Credential, 8)
	for i := range creds {
		creds[i] = issueTestCred(t, ca, "Badge")
	}
	now := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := ts.Verify(creds[(g+i)%len(creds)], now); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := ts.CacheStats()
	if st.Hits == 0 || st.Hits+st.Misses != 400 {
		t.Fatalf("stats: %+v", st)
	}
}
