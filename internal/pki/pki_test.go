package pki

import (
	"errors"
	"testing"
	"time"

	"trustvo/internal/xtnl"
)

func TestIssueAndVerify(t *testing.T) {
	ca := MustNewAuthority("INFN")
	cred, err := ca.Issue(IssueRequest{
		Type:       "ISO 9000 Certified",
		Holder:     "AerospaceCo",
		Attributes: []xtnl.Attribute{{Name: "QualityRegulation", Value: "UNI EN ISO 9000"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cred.Issuer != "INFN" || cred.ID == "" || len(cred.Signature) == 0 {
		t.Fatalf("issued credential incomplete: %+v", cred)
	}
	ts := NewTrustStore(ca)
	if err := ts.Verify(cred, time.Now()); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	ca := MustNewAuthority("INFN")
	cred := ca.MustIssue(IssueRequest{Type: "T", Attributes: []xtnl.Attribute{{Name: "level", Value: "3"}}})
	ts := NewTrustStore(ca)

	tampered := cred.Clone()
	tampered.SetAttr("level", "99")
	if err := ts.Verify(tampered, time.Now()); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered credential: err = %v, want ErrBadSignature", err)
	}

	unsigned := cred.Clone()
	unsigned.Signature = nil
	if err := ts.Verify(unsigned, time.Now()); !errors.Is(err, ErrUnsigned) {
		t.Fatalf("unsigned credential: err = %v, want ErrUnsigned", err)
	}
}

func TestVerifyUnknownIssuer(t *testing.T) {
	ca := MustNewAuthority("INFN")
	other := MustNewAuthority("Stranger")
	cred := other.MustIssue(IssueRequest{Type: "T"})
	ts := NewTrustStore(ca)
	if err := ts.Verify(cred, time.Now()); !errors.Is(err, ErrUnknownIssuer) {
		t.Fatalf("err = %v, want ErrUnknownIssuer", err)
	}
}

func TestVerifyExpiry(t *testing.T) {
	ca := MustNewAuthority("INFN")
	cred := ca.MustIssue(IssueRequest{
		Type:      "T",
		ValidFrom: time.Now().Add(-48 * time.Hour),
		Lifetime:  24 * time.Hour,
	})
	ts := NewTrustStore(ca)
	if err := ts.Verify(cred, time.Now()); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired: err = %v, want ErrExpired", err)
	}
	future := ca.MustIssue(IssueRequest{Type: "T", ValidFrom: time.Now().Add(24 * time.Hour)})
	if err := ts.Verify(future, time.Now()); !errors.Is(err, ErrExpired) {
		t.Fatalf("not-yet-valid: err = %v, want ErrExpired", err)
	}
}

func TestRevocation(t *testing.T) {
	ca := MustNewAuthority("INFN")
	cred := ca.MustIssue(IssueRequest{Type: "T"})
	ts := NewTrustStore(ca)
	if err := ts.Verify(cred, time.Now()); err != nil {
		t.Fatal(err)
	}
	ca.Revoke(cred.ID)
	if err := ts.AddCRL(ca.CRL()); err != nil {
		t.Fatal(err)
	}
	if err := ts.Verify(cred, time.Now()); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revoked: err = %v, want ErrRevoked", err)
	}
}

func TestCRLSignatureChecked(t *testing.T) {
	ca := MustNewAuthority("INFN")
	mallory := MustNewAuthority("Mallory")
	ts := NewTrustStore(ca)
	// CRL claimed to be from INFN but signed by Mallory
	crl := mallory.CRL()
	crl.Issuer = "INFN"
	if err := ts.AddCRL(crl); err == nil {
		t.Fatal("forged CRL accepted")
	}
	// CRL from an untrusted issuer
	if err := ts.AddCRL(mallory.CRL()); !errors.Is(err, ErrUnknownIssuer) {
		t.Fatalf("untrusted CRL: err = %v", err)
	}
	// tampered list content
	good := ca.CRL()
	good.Revoked = append(good.Revoked, "extra")
	if err := ts.AddCRL(good); err == nil {
		t.Fatal("tampered CRL accepted")
	}
}

func TestDelegationChain(t *testing.T) {
	root := MustNewAuthority("RootCA")
	mid := MustNewAuthority("RegionalCA")
	leaf := MustNewAuthority("LocalCA")
	delMid, err := root.Delegate(mid, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	delLeaf, err := mid.Delegate(leaf, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cred := leaf.MustIssue(IssueRequest{Type: "T"})
	ts := NewTrustStore(root)

	chain, err := ts.VerifyChain(cred, []*xtnl.Credential{delLeaf, delMid}, time.Now())
	if err != nil {
		t.Fatalf("chain verify: %v", err)
	}
	if len(chain) != 2 {
		t.Fatalf("chain length = %d, want 2", len(chain))
	}
	// chain is root-first
	if got, _ := chain[0].Attr("authorityName"); got != "RegionalCA" {
		t.Fatalf("chain[0] delegates %q", got)
	}
	if got, _ := chain[1].Attr("authorityName"); got != "LocalCA" {
		t.Fatalf("chain[1] delegates %q", got)
	}
}

func TestDelegationChainFailures(t *testing.T) {
	root := MustNewAuthority("RootCA")
	leaf := MustNewAuthority("LocalCA")
	rogue := MustNewAuthority("Rogue")
	cred := leaf.MustIssue(IssueRequest{Type: "T"})
	ts := NewTrustStore(root)

	// no supporting delegation at all
	if _, err := ts.VerifyChain(cred, nil, time.Now()); !errors.Is(err, ErrNoChain) {
		t.Fatalf("no pool: err = %v", err)
	}
	// delegation issued by an untrusted authority
	badDel, _ := rogue.Delegate(leaf, time.Hour)
	if _, err := ts.VerifyChain(cred, []*xtnl.Credential{badDel}, time.Now()); err == nil {
		t.Fatal("rogue delegation accepted")
	}
	// expired delegation
	oldDel, _ := root.Delegate(leaf, time.Hour)
	oldDel.ValidFrom = time.Now().Add(-3 * time.Hour)
	oldDel.ValidUntil = time.Now().Add(-2 * time.Hour)
	oldDel.Signature = root.Keys.Sign(oldDel.SignedBytes())
	if _, err := ts.VerifyChain(cred, []*xtnl.Credential{oldDel}, time.Now()); err == nil {
		t.Fatal("expired delegation accepted")
	}
	// cycle: A delegates B, B delegates A, target issued by B
	a := MustNewAuthority("A")
	b := MustNewAuthority("B")
	dab, _ := a.Delegate(b, time.Hour)
	dba, _ := b.Delegate(a, time.Hour)
	c2 := b.MustIssue(IssueRequest{Type: "T"})
	if _, err := ts.VerifyChain(c2, []*xtnl.Credential{dab, dba}, time.Now()); !errors.Is(err, ErrNoChain) {
		t.Fatalf("cycle: err = %v", err)
	}
	// depth limit
	ts2 := NewTrustStore(root)
	ts2.MaxChainDepth = 1
	mid := MustNewAuthority("Mid")
	dm, _ := root.Delegate(mid, time.Hour)
	dl, _ := mid.Delegate(leaf, time.Hour)
	if _, err := ts2.VerifyChain(cred, []*xtnl.Credential{dm, dl}, time.Now()); !errors.Is(err, ErrNoChain) {
		t.Fatalf("depth limit: err = %v", err)
	}
}

func TestOwnershipProof(t *testing.T) {
	ca := MustNewAuthority("INFN")
	holder := MustGenerateKeyPair()
	cred := ca.MustIssue(IssueRequest{Type: "T", Holder: "me", HolderKey: holder.Public})
	nonce, err := NewNonce()
	if err != nil {
		t.Fatal(err)
	}
	proof := ProveOwnership(holder, nonce)
	if err := VerifyOwnership(cred, nonce, proof); err != nil {
		t.Fatalf("ownership: %v", err)
	}
	// wrong key
	thief := MustGenerateKeyPair()
	if err := VerifyOwnership(cred, nonce, ProveOwnership(thief, nonce)); !errors.Is(err, ErrOwnershipFailed) {
		t.Fatalf("thief proof: err = %v", err)
	}
	// replay with different nonce
	nonce2, _ := NewNonce()
	if err := VerifyOwnership(cred, nonce2, proof); !errors.Is(err, ErrOwnershipFailed) {
		t.Fatalf("replayed proof: err = %v", err)
	}
	// credential without holder key
	plain := ca.MustIssue(IssueRequest{Type: "T"})
	if err := VerifyOwnership(plain, nonce, proof); !errors.Is(err, ErrOwnershipFailed) {
		t.Fatalf("no holder key: err = %v", err)
	}
}

func TestIssueRejectsEmptyType(t *testing.T) {
	ca := MustNewAuthority("INFN")
	if _, err := ca.Issue(IssueRequest{}); err == nil {
		t.Fatal("empty type accepted")
	}
}

func TestIssuedIDsUnique(t *testing.T) {
	ca := MustNewAuthority("INFN")
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		c := ca.MustIssue(IssueRequest{Type: "T"})
		if seen[c.ID] {
			t.Fatalf("duplicate credential ID %s", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestCredentialXMLRoundTripKeepsSignatureValid(t *testing.T) {
	ca := MustNewAuthority("INFN")
	cred := ca.MustIssue(IssueRequest{
		Type:       "ISO 9000 Certified",
		Holder:     "AerospaceCo",
		Attributes: []xtnl.Attribute{{Name: "QualityRegulation", Value: "UNI EN ISO 9000"}},
	})
	re, err := xtnl.ParseCredential(cred.XML())
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(ca)
	if err := ts.Verify(re, time.Now()); err != nil {
		t.Fatalf("signature did not survive XML round trip: %v", err)
	}
}

func BenchmarkIssue(b *testing.B) {
	ca := MustNewAuthority("INFN")
	req := IssueRequest{Type: "T", Attributes: []xtnl.Attribute{{Name: "a", Value: "v"}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ca.Issue(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	ca := MustNewAuthority("INFN")
	cred := ca.MustIssue(IssueRequest{Type: "T", Attributes: []xtnl.Attribute{{Name: "a", Value: "v"}}})
	ts := NewTrustStore(ca)
	now := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ts.Verify(cred, now); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyChainDepth3(b *testing.B) {
	root := MustNewAuthority("Root")
	mid := MustNewAuthority("Mid")
	leaf := MustNewAuthority("Leaf")
	d1, _ := root.Delegate(mid, time.Hour)
	d2, _ := mid.Delegate(leaf, time.Hour)
	cred := leaf.MustIssue(IssueRequest{Type: "T"})
	ts := NewTrustStore(root)
	pool := []*xtnl.Credential{d1, d2}
	now := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ts.VerifyChain(cred, pool, now); err != nil {
			b.Fatal(err)
		}
	}
}
