package pki

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/asn1"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"time"

	"trustvo/internal/xtnl"
)

// X.509 v2-style attribute certificates (§6.3): the paper's prototype
// was "upgraded … to support both our XML proprietary format and the
// X.509 v2 format for attribute certificates". This file gives every
// credential Authority a second encoding: the same logical attribute
// credential carried as a DER X.509 certificate whose extensions hold
// the credential type, ID, holder key and content attributes.
//
// The §6.3 behavioural consequence is preserved: an X.509-encoded
// credential is monolithic — no partial hiding — so the suspicious
// strategies reject it (negotiation.ErrSelectiveRequired).

// Extension OIDs (private arc, distinct from the membership-token arc).
var (
	oidAttrCredType  = asn1.ObjectIdentifier{1, 3, 6, 1, 4, 1, 55555, 2, 1}
	oidAttrCredID    = asn1.ObjectIdentifier{1, 3, 6, 1, 4, 1, 55555, 2, 2}
	oidAttrHolderKey = asn1.ObjectIdentifier{1, 3, 6, 1, 4, 1, 55555, 2, 3}
	oidAttrContent   = asn1.ObjectIdentifier{1, 3, 6, 1, 4, 1, 55555, 2, 4}
	oidAttrSens      = asn1.ObjectIdentifier{1, 3, 6, 1, 4, 1, 55555, 2, 5}
)

// asn1Attr is the wire form of one content attribute.
type asn1Attr struct {
	Name  string
	Value string
}

// x509State holds an authority's lazily created X.509 issuing state.
type x509State struct {
	once   sync.Once
	caCert *x509.Certificate
	caDER  []byte
	err    error
	serial int64
	mu     sync.Mutex
}

// nextSerial allocates the next issued-certificate counter value.
func (st *x509State) nextSerial() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.serial++
	return st.serial
}

var x509States sync.Map // *Authority -> *x509State

func (a *Authority) x509state() (*x509State, error) {
	v, _ := x509States.LoadOrStore(a, &x509State{})
	st := v.(*x509State)
	st.once.Do(func() {
		tmpl := &x509.Certificate{
			SerialNumber:          big.NewInt(1),
			Subject:               pkix.Name{CommonName: a.Name},
			NotBefore:             time.Now().Add(-time.Hour),
			NotAfter:              time.Now().Add(20 * 365 * 24 * time.Hour),
			IsCA:                  true,
			KeyUsage:              x509.KeyUsageCertSign,
			BasicConstraintsValid: true,
		}
		der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, a.Keys.Public, a.Keys.Private)
		if err != nil {
			st.err = fmt.Errorf("pki: x509 CA for %s: %w", a.Name, err)
			return
		}
		st.caDER = der
		st.caCert, st.err = x509.ParseCertificate(der)
	})
	return st, st.err
}

// IssueX509Attribute mints the credential in both encodings: the X-TNL
// credential (as Issue) plus its X.509 attribute-certificate DER. The
// two carry the same credential ID, so revocation covers both.
func (a *Authority) IssueX509Attribute(req IssueRequest) (*xtnl.Credential, []byte, error) {
	cred, err := a.Issue(req)
	if err != nil {
		return nil, nil, err
	}
	der, err := a.EncodeX509Attribute(cred)
	if err != nil {
		return nil, nil, err
	}
	return cred, der, nil
}

// EncodeX509Attribute encodes one of this authority's credentials as an
// X.509 attribute certificate.
func (a *Authority) EncodeX509Attribute(cred *xtnl.Credential) ([]byte, error) {
	if cred.Issuer != a.Name {
		return nil, fmt.Errorf("pki: credential %s issued by %q, not by %q", cred.ID, cred.Issuer, a.Name)
	}
	st, err := a.x509state()
	if err != nil {
		return nil, err
	}
	serial := st.nextSerial() + 1 // serial 1 is the CA certificate itself

	attrs := make([]asn1Attr, len(cred.Attributes))
	for i, at := range cred.Attributes {
		attrs[i] = asn1Attr{Name: at.Name, Value: at.Value}
	}
	contentDER, err := asn1.Marshal(attrs)
	if err != nil {
		return nil, fmt.Errorf("pki: encode attributes: %w", err)
	}
	notBefore := cred.ValidFrom
	if notBefore.IsZero() {
		notBefore = time.Now().Add(-time.Minute)
	}
	notAfter := cred.ValidUntil
	if notAfter.IsZero() {
		notAfter = time.Now().Add(365 * 24 * time.Hour)
	}
	// The subject key: the holder's key when present (enabling ownership
	// proofs), otherwise a throwaway.
	subjectKey := ed25519.PublicKey(cred.HolderKey)
	if len(subjectKey) != ed25519.PublicKeySize {
		kp, err := GenerateKeyPair()
		if err != nil {
			return nil, err
		}
		subjectKey = kp.Public
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(serial),
		Subject:      pkix.Name{CommonName: cred.Holder},
		NotBefore:    notBefore,
		NotAfter:     notAfter,
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtraExtensions: []pkix.Extension{
			{Id: oidAttrCredType, Value: mustASN1(cred.Type)},
			{Id: oidAttrCredID, Value: mustASN1(cred.ID)},
			{Id: oidAttrSens, Value: mustASN1(cred.Sensitivity.String())},
			{Id: oidAttrContent, Value: contentDER},
		},
	}
	if len(cred.HolderKey) == ed25519.PublicKeySize {
		tmpl.ExtraExtensions = append(tmpl.ExtraExtensions,
			pkix.Extension{Id: oidAttrHolderKey, Value: append([]byte(nil), cred.HolderKey...)})
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, st.caCert, subjectKey, a.Keys.Private)
	if err != nil {
		return nil, fmt.Errorf("pki: encode x509 attribute cert: %w", err)
	}
	return der, nil
}

// DecodeX509Attribute parses an X.509 attribute certificate into its
// logical credential view WITHOUT verifying trust (use
// TrustStore.VerifyX509Attribute for that). The returned credential has
// no XML signature — its authenticity is the certificate signature.
func DecodeX509Attribute(der []byte) (*xtnl.Credential, error) {
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("pki: parse x509 attribute cert: %w", err)
	}
	cred := &xtnl.Credential{
		Holder:     cert.Subject.CommonName,
		Issuer:     cert.Issuer.CommonName,
		ValidFrom:  cert.NotBefore.UTC().Truncate(time.Second),
		ValidUntil: cert.NotAfter.UTC().Truncate(time.Second),
	}
	for _, ext := range cert.Extensions {
		switch {
		case ext.Id.Equal(oidAttrCredType):
			asn1.Unmarshal(ext.Value, &cred.Type)
		case ext.Id.Equal(oidAttrCredID):
			asn1.Unmarshal(ext.Value, &cred.ID)
		case ext.Id.Equal(oidAttrSens):
			var s string
			asn1.Unmarshal(ext.Value, &s)
			cred.Sensitivity = xtnl.ParseSensitivity(s)
		case ext.Id.Equal(oidAttrHolderKey):
			cred.HolderKey = append([]byte(nil), ext.Value...)
		case ext.Id.Equal(oidAttrContent):
			var attrs []asn1Attr
			if _, err := asn1.Unmarshal(ext.Value, &attrs); err != nil {
				return nil, fmt.Errorf("pki: decode attributes: %w", err)
			}
			for _, at := range attrs {
				cred.Attributes = append(cred.Attributes, xtnl.Attribute{Name: at.Name, Value: at.Value})
			}
		}
	}
	if cred.Type == "" {
		return nil, errors.New("pki: x509 certificate is not an attribute credential (no credType extension)")
	}
	return cred, nil
}

// VerifyX509Attribute decodes and verifies an X.509 attribute
// certificate: the issuer (from the certificate's issuer CN) must be a
// trusted root, the Ed25519 signature over the TBS certificate must
// verify with that root's key, the validity window must include now, and
// the embedded credential ID must not be revoked.
func (ts *TrustStore) VerifyX509Attribute(der []byte, now time.Time) (*xtnl.Credential, error) {
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("pki: parse x509 attribute cert: %w", err)
	}
	cred, err := DecodeX509Attribute(der)
	if err != nil {
		return nil, err
	}
	key, ok := ts.KeyFor(cred.Issuer)
	if !ok {
		return nil, fmt.Errorf("%w: %q (x509 credential %s)", ErrUnknownIssuer, cred.Issuer, cred.ID)
	}
	if cert.SignatureAlgorithm != x509.PureEd25519 ||
		!ed25519.Verify(key, cert.RawTBSCertificate, cert.Signature) {
		return nil, fmt.Errorf("%w: x509 credential %s from %s", ErrBadSignature, cred.ID, cred.Issuer)
	}
	if now.Before(cert.NotBefore) || now.After(cert.NotAfter) {
		return nil, fmt.Errorf("%w: x509 credential %s", ErrExpired, cred.ID)
	}
	if ts.IsRevoked(cred) {
		return nil, fmt.Errorf("%w: x509 credential %s", ErrRevoked, cred.ID)
	}
	return cred, nil
}
