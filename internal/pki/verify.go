package pki

import (
	"crypto/ed25519"
	"encoding/base64"
	"fmt"
	"sync"
	"time"

	"trustvo/internal/xtnl"
)

// TrustStore holds the issuer public keys a party trusts directly, plus
// the revocation lists it has retrieved. It verifies credentials —
// signature, validity window, revocation — and resolves trust chains
// through AuthorityDelegation credentials. A TrustStore is safe for
// concurrent use.
type TrustStore struct {
	mu    sync.RWMutex
	roots map[string]ed25519.PublicKey
	crls  map[string]*RevocationList

	// cache memoizes successful Verify/VerifyChain results keyed by
	// issuer + signature; see cache.go for the invalidation contract.
	cache verifyCache

	// MaxChainDepth bounds delegation-chain resolution; 0 means the
	// default of 4 hops.
	MaxChainDepth int

	// DisableCache turns the verification cache off (every call does
	// the full signature work). For A/B benchmarks and paranoid
	// deployments; see cmd/benchjoin -baseline.
	DisableCache bool
}

// NewTrustStore builds a store trusting the given authorities as roots.
func NewTrustStore(roots ...*Authority) *TrustStore {
	ts := &TrustStore{
		roots: make(map[string]ed25519.PublicKey),
		crls:  make(map[string]*RevocationList),
	}
	for _, a := range roots {
		ts.AddRoot(a.Name, a.Keys.Public)
	}
	return ts
}

// AddRoot registers a directly trusted issuer key. Changing the anchor
// set invalidates the verification cache: a cached chain may become
// reachable through (or orphaned by) the new root.
func (ts *TrustStore) AddRoot(name string, pub ed25519.PublicKey) {
	defer ts.cache.invalidate()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.roots[name] = append(ed25519.PublicKey(nil), pub...)
}

// Roots returns the names of the directly trusted issuers.
func (ts *TrustStore) Roots() []string {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	out := make([]string, 0, len(ts.roots))
	for n := range ts.roots {
		out = append(out, n)
	}
	return out
}

// KeyFor returns the trusted key of issuer, if any.
func (ts *TrustStore) KeyFor(issuer string) (ed25519.PublicKey, bool) {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	k, ok := ts.roots[issuer]
	return k, ok
}

// AddCRL installs a revocation list after verifying its signature
// against the trusted key of its issuer. Installing a CRL invalidates
// the verification cache (revocation is an input to every cached
// result; the hit path also re-checks IsRevoked defensively).
func (ts *TrustStore) AddCRL(crl *RevocationList) error {
	key, ok := ts.KeyFor(crl.Issuer)
	if !ok {
		return fmt.Errorf("%w: CRL issuer %q", ErrUnknownIssuer, crl.Issuer)
	}
	if err := crl.Verify(key); err != nil {
		return fmt.Errorf("pki: CRL from %s: %w", crl.Issuer, err)
	}
	defer ts.cache.invalidate()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.crls[crl.Issuer] = crl
	return nil
}

// IsRevoked reports whether the credential appears on an installed CRL.
func (ts *TrustStore) IsRevoked(c *xtnl.Credential) bool {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	crl, ok := ts.crls[c.Issuer]
	return ok && crl.Contains(c.ID)
}

// Verify checks the credential at time now: it must be signed by a
// directly trusted issuer, inside its validity window, and absent from
// the issuer's CRL. Successful results are memoized (see cache.go).
func (ts *TrustStore) Verify(c *xtnl.Credential, now time.Time) error {
	if _, ok := ts.cachedVerify(c, now); ok {
		return nil
	}
	key, ok := ts.KeyFor(c.Issuer)
	if !ok {
		return fmt.Errorf("%w: %q (credential %s)", ErrUnknownIssuer, c.Issuer, c.ID)
	}
	if err := ts.verifyWithKey(c, key, now); err != nil {
		return err
	}
	ts.rememberVerify(c, nil)
	return nil
}

func (ts *TrustStore) verifyWithKey(c *xtnl.Credential, key ed25519.PublicKey, now time.Time) error {
	if len(c.Signature) == 0 {
		return fmt.Errorf("%w: credential %s", ErrUnsigned, c.ID)
	}
	if !ed25519.Verify(key, c.SignedBytes(), c.Signature) {
		return fmt.Errorf("%w: credential %s from %s", ErrBadSignature, c.ID, c.Issuer)
	}
	if !c.ValidAt(now) {
		return fmt.Errorf("%w: credential %s (valid %s..%s, now %s)", ErrExpired,
			c.ID, c.ValidFrom.Format(xtnl.TimeLayout), c.ValidUntil.Format(xtnl.TimeLayout), now.UTC().Format(xtnl.TimeLayout))
	}
	if ts.IsRevoked(c) {
		return fmt.Errorf("%w: credential %s", ErrRevoked, c.ID)
	}
	return nil
}

// VerifyChain verifies a credential whose issuer may not be directly
// trusted, using the supporting pool of AuthorityDelegation credentials
// to build a chain up to a trusted root. It returns the chain of
// delegation credentials used (empty when the issuer is a root).
func (ts *TrustStore) VerifyChain(c *xtnl.Credential, pool []*xtnl.Credential, now time.Time) ([]*xtnl.Credential, error) {
	if chain, ok := ts.cachedVerify(c, now); ok {
		return chain, nil
	}
	maxDepth := ts.MaxChainDepth
	if maxDepth == 0 {
		maxDepth = 4
	}
	// Fast path: direct trust.
	if key, ok := ts.KeyFor(c.Issuer); ok {
		if err := ts.verifyWithKey(c, key, now); err != nil {
			return nil, err
		}
		ts.rememberVerify(c, nil)
		return nil, nil
	}
	// Search the pool for a delegation credential naming c.Issuer whose
	// own issuer is trusted (directly or recursively).
	var resolve func(issuer string, depth int, visiting map[string]bool) (ed25519.PublicKey, []*xtnl.Credential, error)
	resolve = func(issuer string, depth int, visiting map[string]bool) (ed25519.PublicKey, []*xtnl.Credential, error) {
		if key, ok := ts.KeyFor(issuer); ok {
			return key, nil, nil
		}
		if depth >= maxDepth {
			return nil, nil, fmt.Errorf("%w: delegation chain deeper than %d", ErrNoChain, maxDepth)
		}
		if visiting[issuer] {
			return nil, nil, fmt.Errorf("%w: delegation cycle at %q", ErrNoChain, issuer)
		}
		visiting[issuer] = true
		defer delete(visiting, issuer)
		var firstErr error
		for _, d := range pool {
			if d.Type != DelegationType {
				continue
			}
			name, _ := d.Attr("authorityName")
			if name != issuer {
				continue
			}
			parentKey, chain, err := resolve(d.Issuer, depth+1, visiting)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if err := ts.verifyWithKey(d, parentKey, now); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			keyB64, _ := d.Attr("authorityKey")
			key, err := base64.StdEncoding.DecodeString(keyB64)
			if err != nil || len(key) != ed25519.PublicKeySize {
				if firstErr == nil {
					firstErr = fmt.Errorf("pki: delegation %s has invalid authorityKey", d.ID)
				}
				continue
			}
			return ed25519.PublicKey(key), append(chain, d), nil
		}
		if firstErr != nil {
			return nil, nil, firstErr
		}
		return nil, nil, fmt.Errorf("%w: no delegation for issuer %q", ErrNoChain, issuer)
	}
	key, chain, err := resolve(c.Issuer, 0, map[string]bool{})
	if err != nil {
		return nil, err
	}
	if err := ts.verifyWithKey(c, key, now); err != nil {
		return nil, err
	}
	ts.rememberVerify(c, chain)
	return chain, nil
}

// ---- ownership proof (challenge/response) ----

// NewNonce returns a fresh 24-byte random challenge.
func NewNonce() ([]byte, error) {
	n := make([]byte, 24)
	if _, err := randRead(n); err != nil {
		return nil, fmt.Errorf("pki: nonce: %w", err)
	}
	return n, nil
}

// ProveOwnership signs the nonce with the holder's private key. The
// counterpart checks the signature against the credential's embedded
// holder key via VerifyOwnership.
func ProveOwnership(holder *KeyPair, nonce []byte) []byte {
	return holder.Sign(append([]byte("trustvo-ownership:"), nonce...))
}

// VerifyOwnership checks an ownership proof for the credential: the
// credential must embed a holder key, and proof must be that key's
// signature over the nonce.
func VerifyOwnership(c *xtnl.Credential, nonce, proof []byte) error {
	if len(c.HolderKey) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: credential %s has no holder key", ErrOwnershipFailed, c.ID)
	}
	msg := append([]byte("trustvo-ownership:"), nonce...)
	if !ed25519.Verify(ed25519.PublicKey(c.HolderKey), msg, proof) {
		return fmt.Errorf("%w: credential %s", ErrOwnershipFailed, c.ID)
	}
	return nil
}
