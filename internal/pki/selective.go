package pki

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"errors"
	"fmt"

	"trustvo/internal/xtnl"
)

// Selective disclosure of credential attributes.
//
// §6.3 of the paper notes that X.509 v2 attribute certificates "do not
// support partial hiding of the credential contents", restricting the
// usable negotiation strategies, and sketches the fix the authors were
// exploring: "substitute the attributes in clear with attributes whose
// content is the hash value of the concatenation of attribute name and
// attribute value. The signature could be computed over the whole hashed
// content."
//
// This file implements that scheme as the paper describes it, plus one
// hardening step the sketch leaves implicit: each attribute hash is
// salted with a fresh random value (disclosed together with the
// attribute), otherwise low-entropy values could be brute-forced from
// the committed credential.

// hashedType marks credentials whose content attributes are commitments.
const hashedSuffix = " (hashed)"

// SelectiveCredential pairs a signed, fully-hashed credential with the
// clear attribute values and salts that allow selective opening.
type SelectiveCredential struct {
	// Committed is the issuer-signed credential whose attribute values
	// are base64(SHA-256(salt || name || value)).
	Committed *xtnl.Credential
	// clear holds the openable values keyed by attribute name.
	clear map[string]clearAttr
}

type clearAttr struct {
	value string
	salt  []byte
}

// Disclosure is what the holder actually sends: the committed credential
// plus the opened subset of attributes.
type Disclosure struct {
	Committed *xtnl.Credential
	Opened    []OpenedAttr
}

// OpenedAttr reveals one attribute of a committed credential.
type OpenedAttr struct {
	Name  string
	Value string
	Salt  []byte
}

// IssueSelective mints a selectively-disclosable credential: the
// authority signs the hashed form; the holder keeps the clear values.
func (a *Authority) IssueSelective(req IssueRequest) (*SelectiveCredential, error) {
	if req.Type == "" {
		return nil, errors.New("pki: issue selective: empty credential type")
	}
	clear := make(map[string]clearAttr, len(req.Attributes))
	hashed := make([]xtnl.Attribute, 0, len(req.Attributes))
	for _, attr := range req.Attributes {
		salt := make([]byte, 16)
		if _, err := randRead(salt); err != nil {
			return nil, fmt.Errorf("pki: issue selective: %w", err)
		}
		clear[attr.Name] = clearAttr{value: attr.Value, salt: salt}
		hashed = append(hashed, xtnl.Attribute{
			Name:  attr.Name,
			Value: commitAttr(attr.Name, attr.Value, salt),
		})
	}
	hreq := req
	hreq.Type = req.Type + hashedSuffix
	hreq.Attributes = hashed
	committed, err := a.Issue(hreq)
	if err != nil {
		return nil, err
	}
	return &SelectiveCredential{Committed: committed, clear: clear}, nil
}

func commitAttr(name, value string, salt []byte) string {
	h := sha256.New()
	h.Write(salt)
	h.Write([]byte(name))
	h.Write([]byte{0}) // unambiguous name/value split
	h.Write([]byte(value))
	return base64.StdEncoding.EncodeToString(h.Sum(nil))
}

// BaseType strips the hashed marker, returning the logical credential
// type ("ISO 9000 Certified (hashed)" → "ISO 9000 Certified").
func BaseType(hashedType string) string {
	if n := len(hashedType) - len(hashedSuffix); n > 0 && hashedType[n:] == hashedSuffix {
		return hashedType[:n]
	}
	return hashedType
}

// Disclose opens only the named attributes. Unknown names are an error —
// the holder should not silently promise attributes it cannot open.
func (s *SelectiveCredential) Disclose(names ...string) (*Disclosure, error) {
	d := &Disclosure{Committed: s.Committed.Clone()}
	for _, n := range names {
		ca, ok := s.clear[n]
		if !ok {
			return nil, fmt.Errorf("pki: credential %s has no attribute %q to disclose", s.Committed.ID, n)
		}
		d.Opened = append(d.Opened, OpenedAttr{Name: n, Value: ca.value, Salt: append([]byte(nil), ca.salt...)})
	}
	return d, nil
}

// View returns the clear, unsigned view of the credential with every
// attribute opened and the logical base type — what the holder itself
// sees. Counterparts never receive this; they receive a Disclosure.
func (s *SelectiveCredential) View() *xtnl.Credential {
	view := &xtnl.Credential{
		ID:          s.Committed.ID,
		Type:        BaseType(s.Committed.Type),
		Issuer:      s.Committed.Issuer,
		Holder:      s.Committed.Holder,
		HolderKey:   append([]byte(nil), s.Committed.HolderKey...),
		ValidFrom:   s.Committed.ValidFrom,
		ValidUntil:  s.Committed.ValidUntil,
		Sensitivity: s.Committed.Sensitivity,
	}
	// preserve committed attribute order
	for _, a := range s.Committed.Attributes {
		if ca, ok := s.clear[a.Name]; ok {
			view.SetAttr(a.Name, ca.value)
		}
	}
	return view
}

// AttributeNames lists the attributes that can be opened.
func (s *SelectiveCredential) AttributeNames() []string {
	out := make([]string, 0, len(s.clear))
	for n := range s.clear {
		out = append(out, n)
	}
	return out
}

// ErrCommitmentMismatch reports an opened value that does not match its
// commitment in the signed credential.
var ErrCommitmentMismatch = errors.New("pki: opened attribute does not match commitment")

// VerifyDisclosure checks that every opened attribute hashes to the
// committed value inside the (separately verified) signed credential,
// and returns the opened attributes as a clear credential view whose
// Type is the logical base type. The caller must first verify
// d.Committed with a TrustStore.
func VerifyDisclosure(d *Disclosure) (*xtnl.Credential, error) {
	view := &xtnl.Credential{
		ID:          d.Committed.ID,
		Type:        BaseType(d.Committed.Type),
		Issuer:      d.Committed.Issuer,
		Holder:      d.Committed.Holder,
		HolderKey:   append([]byte(nil), d.Committed.HolderKey...),
		ValidFrom:   d.Committed.ValidFrom,
		ValidUntil:  d.Committed.ValidUntil,
		Sensitivity: d.Committed.Sensitivity,
	}
	for _, o := range d.Opened {
		want, ok := d.Committed.Attr(o.Name)
		if !ok {
			return nil, fmt.Errorf("%w: attribute %q absent from committed credential %s",
				ErrCommitmentMismatch, o.Name, d.Committed.ID)
		}
		got := commitAttr(o.Name, o.Value, o.Salt)
		if !hmac.Equal([]byte(got), []byte(want)) {
			return nil, fmt.Errorf("%w: attribute %q of credential %s",
				ErrCommitmentMismatch, o.Name, d.Committed.ID)
		}
		view.SetAttr(o.Name, o.Value)
	}
	return view, nil
}

// SupportsSelectiveDisclosure reports whether a credential can partially
// hide its content: true for hashed-commitment credentials, false for
// plain X-TNL and X.509 credentials. The negotiation engine consults
// this to enforce the §6.3 strategy restriction.
func SupportsSelectiveDisclosure(c *xtnl.Credential) bool {
	return BaseType(c.Type) != c.Type
}
