package pki

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/asn1"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"time"
)

// This file is the X.509 bridge of §6.3: the VO Management toolkit
// identifies members with X.509 certificates, so the integration mints a
// VO membership credential as a real X.509 certificate at role-assignment
// time ("we modified the TN service code to allow the VO Initiator to
// create at runtime the VO membership credential: this is an X509
// credential that is released to the VO member when it is assigned a VO
// role").
//
// The §6.3 caveat is modelled too: X.509 cannot partially hide its
// content, so profiles restricted to X.509 credentials support only the
// standard and trusting negotiation strategies — internal/negotiation
// enforces that by consulting SupportsSelectiveDisclosure.

// Membership attribute OIDs (private-arc test OIDs).
var (
	oidVOName = asn1.ObjectIdentifier{1, 3, 6, 1, 4, 1, 55555, 1, 1}
	oidVORole = asn1.ObjectIdentifier{1, 3, 6, 1, 4, 1, 55555, 1, 2}
)

// ParticipationTicketType is the credential type a membership token
// presents when used as a ticket in later trust negotiations.
const ParticipationTicketType = "VOParticipation"

// MembershipToken is a decoded VO membership certificate: the X.509
// credential a member presents during the VO operational phase. It also
// carries the VO public key ("The membership token contains the public
// key of the VO to be used for authentication in the VO", §5.1).
type MembershipToken struct {
	VO     string
	Role   string
	Member string
	// VOKey is the VO authority's Ed25519 public key, from the issuer
	// certificate.
	VOKey []byte
	// NotBefore/NotAfter delimit validity.
	NotBefore, NotAfter time.Time
	// DER is the raw certificate.
	DER []byte
}

// PEM encodes the token's certificate in PEM form.
func (m *MembershipToken) PEM() []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: m.DER})
}

// VOAuthority mints and verifies X.509 membership tokens for one VO.
// It is created by the VO Initiator during the identification phase.
type VOAuthority struct {
	VO   string
	Keys *KeyPair

	mu     sync.Mutex
	serial int64
	caCert *x509.Certificate
	caDER  []byte
}

// nextSerial allocates the next certificate serial number.
func (a *VOAuthority) nextSerial() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.serial++
	return a.serial
}

// NewVOAuthority creates the VO's certificate authority with a
// self-signed CA certificate.
func NewVOAuthority(voName string) (*VOAuthority, error) {
	kp, err := GenerateKeyPair()
	if err != nil {
		return nil, err
	}
	a := &VOAuthority{VO: voName, Keys: kp, serial: 1}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "VO CA " + voName, Organization: []string{voName}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, kp.Public, kp.Private)
	if err != nil {
		return nil, fmt.Errorf("pki: create VO CA: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("pki: parse VO CA: %w", err)
	}
	a.caCert = cert
	a.caDER = der
	return a, nil
}

// CACertPEM returns the CA certificate for distribution to members.
func (a *VOAuthority) CACertPEM() []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: a.caDER})
}

// TrustAnchor returns the issuer name and key under which this VO's
// membership tokens verify as participation tickets: other VOs add it
// to their trust stores to accept "tickets attesting … participation"
// in this VO (§5.1).
func (a *VOAuthority) TrustAnchor() (name string, key []byte) {
	return a.caCert.Subject.CommonName, append([]byte(nil), a.Keys.Public...)
}

// IssueMembership mints an X.509 membership token binding member to role
// within the VO, valid for lifetime (default one year when zero).
func (a *VOAuthority) IssueMembership(member, role string, lifetime time.Duration) (*MembershipToken, error) {
	if member == "" || role == "" {
		return nil, errors.New("pki: membership needs member and role")
	}
	if lifetime == 0 {
		lifetime = 365 * 24 * time.Hour
	}
	serial := a.nextSerial()

	// The member's certificate key: a fresh key pair would normally be
	// provided by the member via CSR; for membership tokens the subject
	// key is the VO key itself since the token is a capability, not a
	// TLS identity. We mint a distinct subject key to keep X.509
	// semantics honest.
	subjKeys, err := GenerateKeyPair()
	if err != nil {
		return nil, err
	}
	now := time.Now().Add(-time.Minute)
	// The token carries both the membership extensions AND the generic
	// attribute-credential extensions, so it doubles as a participation
	// ticket in later trust negotiations (§5.1: policies "can require …
	// tickets attesting their participation to other VOs").
	ticketAttrs, err := asn1.Marshal([]asn1Attr{
		{Name: "vo", Value: a.VO},
		{Name: "role", Value: role},
		{Name: "member", Value: member},
	})
	if err != nil {
		return nil, fmt.Errorf("pki: encode ticket attributes: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(serial),
		Subject: pkix.Name{
			CommonName:   member,
			Organization: []string{a.VO},
		},
		NotBefore: now,
		NotAfter:  now.Add(lifetime),
		KeyUsage:  x509.KeyUsageDigitalSignature,
		ExtraExtensions: []pkix.Extension{
			{Id: oidVOName, Value: mustASN1(a.VO)},
			{Id: oidVORole, Value: mustASN1(role)},
			{Id: oidAttrCredType, Value: mustASN1(ParticipationTicketType)},
			{Id: oidAttrCredID, Value: mustASN1(fmt.Sprintf("%s-ticket-%d", a.VO, serial))},
			{Id: oidAttrContent, Value: ticketAttrs},
		},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, a.caCert, subjKeys.Public, a.Keys.Private)
	if err != nil {
		return nil, fmt.Errorf("pki: issue membership: %w", err)
	}
	return &MembershipToken{
		VO: a.VO, Role: role, Member: member,
		VOKey:     append([]byte(nil), a.Keys.Public...),
		NotBefore: tmpl.NotBefore, NotAfter: tmpl.NotAfter,
		DER: der,
	}, nil
}

// VerifyMembership parses and verifies a membership certificate against
// this VO authority, returning the decoded token.
func (a *VOAuthority) VerifyMembership(der []byte) (*MembershipToken, error) {
	return VerifyMembershipDER(der, a.caDER)
}

// VerifyMembershipDER parses tokenDER and verifies it chains to caDER.
func VerifyMembershipDER(tokenDER, caDER []byte) (*MembershipToken, error) {
	ca, err := x509.ParseCertificate(caDER)
	if err != nil {
		return nil, fmt.Errorf("pki: parse CA cert: %w", err)
	}
	cert, err := x509.ParseCertificate(tokenDER)
	if err != nil {
		return nil, fmt.Errorf("pki: parse membership cert: %w", err)
	}
	roots := x509.NewCertPool()
	roots.AddCert(ca)
	if _, err := cert.Verify(x509.VerifyOptions{
		Roots:     roots,
		KeyUsages: []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
	}); err != nil {
		return nil, fmt.Errorf("pki: membership chain: %w", err)
	}
	tok := &MembershipToken{
		Member:    cert.Subject.CommonName,
		NotBefore: cert.NotBefore,
		NotAfter:  cert.NotAfter,
		DER:       tokenDER,
	}
	if len(cert.Subject.Organization) > 0 {
		tok.VO = cert.Subject.Organization[0]
	}
	for _, ext := range cert.Extensions {
		switch {
		case ext.Id.Equal(oidVOName):
			asn1.Unmarshal(ext.Value, &tok.VO)
		case ext.Id.Equal(oidVORole):
			asn1.Unmarshal(ext.Value, &tok.Role)
		}
	}
	if edKey, ok := ca.PublicKey.(ed25519.PublicKey); ok {
		tok.VOKey = append([]byte(nil), edKey...)
	}
	if tok.Role == "" {
		return nil, errors.New("pki: membership certificate lacks VO role extension")
	}
	return tok, nil
}

func mustASN1(s string) []byte {
	b, err := asn1.Marshal(s)
	if err != nil {
		panic(err)
	}
	return b
}
