package pki

import (
	"bytes"
	"sync"
	"sync/atomic"
	"time"

	"trustvo/internal/xtnl"
)

// Verification memoization.
//
// Concurrent joins verify the same credentials over and over: every
// exchange re-checks the counterpart's signature and, for non-root
// issuers, re-resolves the whole delegation chain. Both are pure
// functions of (credential bytes, trust anchors, CRLs) — so a cache
// keyed by issuer + signature (the signature covers the credential's
// canonical bytes, making it a collision-free fingerprint of the
// content) can skip the ed25519 work entirely on repeat verifications.
//
// Invalidation contract:
//
//   - AddRoot / AddCRL drop the whole cache: trust anchors and
//     revocation state are inputs to every cached result.
//   - Expiry is re-checked on every hit: a cached success stores the
//     credential and its chain, and the hit path re-validates each
//     validity window against the caller's "now" plus the CRL maps, so
//     a credential (or chain link) that expires or is revoked after
//     being cached never verifies again.
//   - Only successes are cached. Failures may be transient (a chain
//     link arriving in a later pool) and are cheap to recompute.

// verifyCacheLimit bounds the cache; past it the map is dropped
// wholesale. Disclosed credentials come from counterparts, so an
// unbounded map would let an adversary grow server memory one signed
// credential at a time.
const verifyCacheLimit = 4096

type verifyCacheEntry struct {
	cred *xtnl.Credential // the verified credential (validity re-check)
	// signedBytes is the canonical content the signature covered when
	// the entry was created. A hit must present identical bytes:
	// otherwise a credential carrying a genuine signature over DIFFERENT
	// content (a tamper attempt that would fail ed25519.Verify) could
	// ride a cache hit past verification.
	signedBytes []byte
	chain       []*xtnl.Credential // delegation chain used; nil for direct trust
}

// CacheStats is a snapshot of the verification cache counters, the
// hit/miss telemetry behind the concurrent-join throughput path (see
// cmd/benchjoin -concurrency).
type CacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Entries       int   `json:"entries"`
	Invalidations int64 `json:"invalidations"`
}

// verifyCache is the memo table embedded in TrustStore. Its mutex is
// separate from the store's so a cache insert never contends with root
// or CRL lookups.
type verifyCache struct {
	mu            sync.RWMutex
	entries       map[string]*verifyCacheEntry
	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
}

func cacheKey(c *xtnl.Credential) string {
	return c.Issuer + "\x00" + string(c.Signature)
}

func (vc *verifyCache) lookup(key string) (*verifyCacheEntry, bool) {
	vc.mu.RLock()
	defer vc.mu.RUnlock()
	e, ok := vc.entries[key]
	return e, ok
}

func (vc *verifyCache) store(key string, e *verifyCacheEntry) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if len(vc.entries) >= verifyCacheLimit {
		vc.entries = nil
		vc.invalidations.Add(1)
	}
	if vc.entries == nil {
		vc.entries = make(map[string]*verifyCacheEntry)
	}
	vc.entries[key] = e
}

// invalidate drops every entry; called whenever trust inputs change.
func (vc *verifyCache) invalidate() {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	vc.entries = nil
	vc.invalidations.Add(1)
}

// cachedVerify returns the memoized chain for c when a previous success
// is still valid at now (validity windows and revocation are re-checked
// on every hit; only the signature work is skipped).
func (ts *TrustStore) cachedVerify(c *xtnl.Credential, now time.Time) ([]*xtnl.Credential, bool) {
	if ts.DisableCache || len(c.Signature) == 0 {
		return nil, false
	}
	e, ok := ts.cache.lookup(cacheKey(c))
	if !ok {
		ts.cache.misses.Add(1)
		return nil, false
	}
	if !bytes.Equal(c.SignedBytes(), e.signedBytes) {
		ts.cache.misses.Add(1)
		return nil, false
	}
	if !e.cred.ValidAt(now) || ts.IsRevoked(e.cred) {
		ts.cache.misses.Add(1)
		return nil, false
	}
	for _, link := range e.chain {
		if !link.ValidAt(now) || ts.IsRevoked(link) {
			ts.cache.misses.Add(1)
			return nil, false
		}
	}
	ts.cache.hits.Add(1)
	return e.chain, true
}

// rememberVerify memoizes a successful verification.
func (ts *TrustStore) rememberVerify(c *xtnl.Credential, chain []*xtnl.Credential) {
	if ts.DisableCache || len(c.Signature) == 0 {
		return
	}
	ts.cache.store(cacheKey(c), &verifyCacheEntry{
		cred:        c,
		signedBytes: c.SignedBytes(),
		chain:       chain,
	})
}

// CacheStats snapshots the verification-cache counters.
func (ts *TrustStore) CacheStats() CacheStats {
	ts.cache.mu.RLock()
	defer ts.cache.mu.RUnlock()
	return CacheStats{
		Hits:          ts.cache.hits.Load(),
		Misses:        ts.cache.misses.Load(),
		Entries:       len(ts.cache.entries),
		Invalidations: ts.cache.invalidations.Load(),
	}
}
