package xtnl

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"trustvo/internal/xpath"
)

func iso9000Credential() *Credential {
	return &Credential{
		ID:          "cred-42",
		Type:        "ISO 9000 Certified",
		Issuer:      "INFN",
		Holder:      "AerospaceCo",
		ValidFrom:   time.Date(2009, 10, 26, 21, 32, 52, 0, time.UTC),
		ValidUntil:  time.Date(2010, 10, 26, 21, 32, 52, 0, time.UTC),
		Sensitivity: SensitivityLow,
		Attributes:  []Attribute{{Name: "QualityRegulation", Value: "UNI EN ISO 9000"}},
	}
}

// TestFig6CredentialGolden reproduces the paper's Fig. 6: the "ISO 9000
// Certified" credential issued by INFN, valid 2009-10-26T21:32:52 to
// 2010-10-26T21:32:52, with the single QualityRegulation attribute, laid
// out as <credential><header/><content/><signature/></credential>.
func TestFig6CredentialGolden(t *testing.T) {
	c := iso9000Credential()
	c.Signature = []byte("issuer-signature")
	got := c.XML()
	for _, frag := range []string{
		`<credential`,
		`type="ISO 9000 Certified"`,
		`<credType>ISO 9000 Certified</credType>`,
		`<issuer>INFN</issuer>`,
		`<issue_Date>2009-10-26T21:32:52</issue_Date>`,
		`<expiration_Date>2010-10-26T21:32:52</expiration_Date>`,
		`<QualityRegulation>UNI EN ISO 9000</QualityRegulation>`,
		`<signature>`,
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("Fig. 6 layout missing %q in:\n%s", frag, got)
		}
	}
	// header precedes content precedes signature, as in the figure
	h, ct, sg := strings.Index(got, "<header>"), strings.Index(got, "<content>"), strings.Index(got, "<signature>")
	if !(h < ct && ct < sg) {
		t.Errorf("element order wrong: header@%d content@%d signature@%d", h, ct, sg)
	}
}

func TestCredentialRoundTrip(t *testing.T) {
	c := iso9000Credential()
	c.Signature = []byte{1, 2, 3, 255}
	c.HolderKey = []byte{9, 9}
	re, err := ParseCredential(c.XML())
	if err != nil {
		t.Fatal(err)
	}
	if re.ID != c.ID || re.Type != c.Type || re.Issuer != c.Issuer || re.Holder != c.Holder {
		t.Fatalf("identity fields lost: %+v", re)
	}
	if !re.ValidFrom.Equal(c.ValidFrom) || !re.ValidUntil.Equal(c.ValidUntil) {
		t.Fatalf("validity lost: %v %v", re.ValidFrom, re.ValidUntil)
	}
	if re.Sensitivity != SensitivityLow {
		t.Fatalf("sensitivity lost: %v", re.Sensitivity)
	}
	if v, ok := re.Attr("QualityRegulation"); !ok || v != "UNI EN ISO 9000" {
		t.Fatalf("attribute lost: %q %v", v, ok)
	}
	if string(re.Signature) != string(c.Signature) {
		t.Fatalf("signature lost")
	}
	if string(re.HolderKey) != string(c.HolderKey) {
		t.Fatalf("holder key lost")
	}
}

func TestSignedBytesExcludeSignature(t *testing.T) {
	c := iso9000Credential()
	unsigned := string(c.SignedBytes())
	c.Signature = []byte("sig")
	signed := string(c.SignedBytes())
	if unsigned != signed {
		t.Fatal("SignedBytes must not depend on the signature value")
	}
	if strings.Contains(unsigned, "<signature>") {
		t.Fatal("SignedBytes must omit the signature element")
	}
}

func TestValidAt(t *testing.T) {
	c := iso9000Credential()
	cases := []struct {
		at   time.Time
		want bool
	}{
		{time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC), true},
		{time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC), false},
		{time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC), false},
		{c.ValidFrom, true},
		{c.ValidUntil, true},
	}
	for _, tc := range cases {
		if got := c.ValidAt(tc.at); got != tc.want {
			t.Errorf("ValidAt(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
	open := &Credential{Type: "T"}
	if !open.ValidAt(time.Now()) {
		t.Error("credential without validity window should always be valid")
	}
}

func TestCredentialSatisfies(t *testing.T) {
	c := iso9000Credential()
	ok := xpath.MustCompile(`/credential/content/QualityRegulation='UNI EN ISO 9000'`)
	bad := xpath.MustCompile(`/credential/content/QualityRegulation='ISO 14000'`)
	if !c.Satisfies([]*xpath.Expr{ok}) {
		t.Fatal("expected condition to hold")
	}
	if c.Satisfies([]*xpath.Expr{ok, bad}) {
		t.Fatal("conjunction with false condition must fail")
	}
	if !c.Satisfies(nil) {
		t.Fatal("no conditions means satisfied")
	}
}

func TestParseCredentialErrors(t *testing.T) {
	cases := []struct {
		name string
		xml  string
	}{
		{"not xml", `<credential`},
		{"wrong root", `<policy/>`},
		{"no header", `<credential type="T"><content/></credential>`},
		{"no type", `<credential><header><issuer>I</issuer></header></credential>`},
		{"type mismatch", `<credential type="A"><header><credType>B</credType></header></credential>`},
		{"bad time", `<credential type="T"><header><credType>T</credType><expiration_Date>nope</expiration_Date></header></credential>`},
		{"bad signature b64", `<credential type="T"><header><credType>T</credType></header><signature>!!</signature></credential>`},
		{"bad holder key b64", `<credential type="T"><header><credType>T</credType><holderKey>!!</holderKey></header></credential>`},
	}
	for _, tc := range cases {
		if _, err := ParseCredential(tc.xml); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestSensitivityParsing(t *testing.T) {
	cases := map[string]Sensitivity{
		"low": SensitivityLow, "LOW": SensitivityLow,
		"medium": SensitivityMedium, "": SensitivityMedium, "weird": SensitivityMedium,
		"high": SensitivityHigh, " High ": SensitivityHigh,
	}
	for in, want := range cases {
		if got := ParseSensitivity(in); got != want {
			t.Errorf("ParseSensitivity(%q) = %v, want %v", in, got, want)
		}
	}
	for _, s := range []Sensitivity{SensitivityLow, SensitivityMedium, SensitivityHigh} {
		if ParseSensitivity(s.String()) != s {
			t.Errorf("String/Parse not inverse for %v", s)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	c := iso9000Credential()
	c.Signature = []byte{1}
	cp := c.Clone()
	cp.SetAttr("QualityRegulation", "changed")
	cp.Signature[0] = 2
	if v, _ := c.Attr("QualityRegulation"); v != "UNI EN ISO 9000" {
		t.Fatal("clone attribute mutation leaked")
	}
	if c.Signature[0] != 1 {
		t.Fatal("clone signature mutation leaked")
	}
}

func TestSetAttrReplaces(t *testing.T) {
	c := &Credential{Type: "T"}
	c.SetAttr("k", "1").SetAttr("k", "2")
	if len(c.Attributes) != 1 {
		t.Fatalf("SetAttr duplicated: %v", c.Attributes)
	}
	if v, _ := c.Attr("k"); v != "2" {
		t.Fatalf("SetAttr did not replace: %v", v)
	}
}

// Property: any credential with printable attribute data round-trips
// through XML without loss.
func TestQuickCredentialRoundTrip(t *testing.T) {
	f := func(id, typ, issuer string, names, values []string, sens uint8) bool {
		if typ == "" || strings.ContainsAny(typ, "\x00") {
			return true // type required; control chars not valid XML
		}
		c := &Credential{
			ID:          sanitize(id),
			Type:        sanitize(typ),
			Issuer:      sanitize(issuer),
			Sensitivity: Sensitivity(sens % 3),
		}
		if c.Type == "" {
			return true
		}
		for i := range names {
			name := "a" + attrSafe(names[i])
			if i < len(values) {
				c.SetAttr(name, sanitize(values[i]))
			} else {
				c.SetAttr(name, "v")
			}
		}
		re, err := ParseCredential(c.XML())
		if err != nil {
			t.Logf("round trip parse failed for %s: %v", c.XML(), err)
			return false
		}
		if re.Type != c.Type || re.Issuer != c.Issuer || re.ID != c.ID || re.Sensitivity != c.Sensitivity {
			return false
		}
		for _, a := range c.Attributes {
			if v, ok := re.Attr(a.Name); !ok || v != a.Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// sanitize strips characters that are not legal in XML 1.0 documents or
// that the whitespace-normalizing parser does not preserve verbatim.
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 0x20 && r != 0x7F && r <= 0xD7FF {
			b.WriteRune(r)
		}
	}
	return strings.TrimSpace(b.String())
}

// attrSafe maps arbitrary strings onto XML-name-safe suffixes.
func attrSafe(s string) string {
	var b strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		}
	}
	if b.Len() > 10 {
		return b.String()[:10]
	}
	return b.String()
}
