package xtnl

import (
	"os"
	"path/filepath"
	"testing"
)

// seedCorpus adds the checked-in X-TNL documents (and a few structural
// mutations) as fuzz seeds.
func seedCorpus(f *testing.F, names ...string) {
	f.Helper()
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
		if err != nil {
			f.Fatalf("seed %s: %v", name, err)
		}
		f.Add(string(data))
	}
	f.Add("")
	f.Add("<credential>")
	f.Add("<policy/>")
	f.Add("<?xml version=\"1.0\"?><credential type=\"t\"><header/></credential>")
}

// FuzzParseCredential checks that ParseCredential never panics and
// that anything it accepts survives an XML round trip.
func FuzzParseCredential(f *testing.F) {
	seedCorpus(f, "credential_iso9000.xml")
	f.Fuzz(func(t *testing.T, xmlText string) {
		c, err := ParseCredential(xmlText)
		if err != nil {
			return
		}
		again, err := ParseCredential(c.XML())
		if err != nil {
			t.Fatalf("accepted credential does not re-parse: %v\noriginal: %q\nrendered: %q", err, xmlText, c.XML())
		}
		if again.ID != c.ID || again.Type != c.Type || again.Issuer != c.Issuer || again.Holder != c.Holder {
			t.Fatalf("round trip changed identity fields: %+v vs %+v", c, again)
		}
	})
}

// FuzzParsePolicy checks that ParsePolicy never panics and that
// accepted policies survive an XML round trip.
func FuzzParsePolicy(f *testing.F) {
	seedCorpus(f, "policy_iso9000.xml", "message_policy.xml")
	f.Fuzz(func(t *testing.T, xmlText string) {
		p, err := ParsePolicy(xmlText)
		if err != nil {
			return
		}
		again, err := ParsePolicy(p.XML())
		if err != nil {
			t.Fatalf("accepted policy does not re-parse: %v\noriginal: %q\nrendered: %q", err, xmlText, p.XML())
		}
		if again.Resource != p.Resource || len(again.Terms) != len(p.Terms) {
			t.Fatalf("round trip changed policy shape: %+v vs %+v", p, again)
		}
	})
}
