package xtnl

import (
	"strings"
	"testing"
)

func TestDSLPaperExamples(t *testing.T) {
	// Example 1 of the paper:
	//   VoMembership <- WebDesignerQuality
	//   QualityCertification <- AAACreditation
	ps, err := ParsePolicies(`
# Example 1, §4.1
VoMembership <- WebDesignerQuality
QualityCertification <- AAACreditation
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("parsed %d policies, want 2", len(ps))
	}
	if ps[0].Resource != "VoMembership" || ps[0].Terms[0].CredType != "WebDesignerQuality" {
		t.Fatalf("policy 0 = %+v", ps[0])
	}
	if ps[1].Resource != "QualityCertification" || ps[1].Terms[0].CredType != "AAACreditation" {
		t.Fatalf("policy 1 = %+v", ps[1])
	}
}

func TestDSLSection5Policies(t *testing.T) {
	// §5.1 formation-phase policies, including the quality-regulation
	// condition "VoMembership <- WebDesignerQuality, {UNI EN ISO 9000}"
	// and the R-term empty-parens form "Certification() <- AAAccreditation()".
	ps, err := ParsePolicies(`
VoMembership <- WebDesignerQuality(regulation='UNI EN ISO 9000')
Certification() <- AAAccreditation()
Certification() <- BalanceSheet(issuer='BBB')
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Fatalf("parsed %d policies", len(ps))
	}
	cond := ps[0].Terms[0].Conditions[0]
	if cond != "/credential/content/regulation='UNI EN ISO 9000'" {
		t.Fatalf("condition = %q", cond)
	}
	// issuer shorthand goes to the header
	if got := ps[2].Terms[0].Conditions[0]; got != "/credential/header/issuer='BBB'" {
		t.Fatalf("issuer condition = %q", got)
	}
}

func TestDSLAlternatives(t *testing.T) {
	// Fig. 2: Certification <- AAACreditation OR BalanceSheet
	ps, err := ParsePolicyRule("Certification <- AAACreditation | BalanceSheet")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("alternatives = %d, want 2", len(ps))
	}
	if ps[0].Resource != "Certification" || ps[1].Resource != "Certification" {
		t.Fatal("alternatives must share resource")
	}
	if ps[0].Terms[0].CredType != "AAACreditation" || ps[1].Terms[0].CredType != "BalanceSheet" {
		t.Fatalf("alternative terms wrong: %v / %v", ps[0].Terms, ps[1].Terms)
	}
}

func TestDSLConjunction(t *testing.T) {
	ps, err := ParsePolicyRule("R <- A(x='1'), B(y>=2, z!='q'), C")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || len(ps[0].Terms) != 3 {
		t.Fatalf("conjunction structure: %+v", ps)
	}
	b := ps[0].Terms[1]
	if len(b.Conditions) != 2 {
		t.Fatalf("B conditions = %v", b.Conditions)
	}
	if b.Conditions[0] != "/credential/content/y>=2" {
		t.Fatalf("y condition = %q", b.Conditions[0])
	}
	if b.Conditions[1] != "/credential/content/z!='q'" {
		t.Fatalf("z condition = %q", b.Conditions[1])
	}
}

func TestDSLDeliver(t *testing.T) {
	ps, err := ParsePolicyRule("PublicInfo <- DELIV")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || !ps[0].Deliver {
		t.Fatalf("DELIV not parsed: %+v", ps)
	}
}

func TestDSLWildcardAndRawXPath(t *testing.T) {
	ps, err := ParsePolicyRule("Service <- $any(country='IT')")
	if err != nil {
		t.Fatal(err)
	}
	if !ps[0].Terms[0].Wildcard() {
		t.Fatalf("wildcard lost: %+v", ps[0].Terms[0])
	}
	ps, err = ParsePolicyRule("Audit <- TaxRecord[/credential/content/year >= 2009]")
	if err != nil {
		t.Fatal(err)
	}
	if got := ps[0].Terms[0].Conditions[0]; got != "/credential/content/year >= 2009" {
		t.Fatalf("raw xpath = %q", got)
	}
	// nested brackets survive
	ps, err = ParsePolicyRule("R <- T[count(/credential/content/*[. = 'x']) > 0]")
	if err != nil {
		t.Fatal(err)
	}
	if got := ps[0].Terms[0].Conditions[0]; !strings.Contains(got, "[. = 'x']") {
		t.Fatalf("nested bracket xpath = %q", got)
	}
}

func TestDSLNumericLiterals(t *testing.T) {
	ps, err := ParsePolicyRule("R <- T(level>=3, score<-1.5)")
	if err != nil {
		t.Fatal(err)
	}
	conds := ps[0].Terms[0].Conditions
	if conds[0] != "/credential/content/level>=3" {
		t.Fatalf("level cond = %q", conds[0])
	}
	if conds[1] != "/credential/content/score<-1.5" {
		t.Fatalf("score cond = %q", conds[1])
	}
}

func TestDSLErrors(t *testing.T) {
	bad := []string{
		"",
		"R",
		"R <-",
		"R <- ",
		"<- T",
		"R <- DELIV, T",
		"R <- T(",
		"R <- T(x)",
		"R <- T(x=)",
		"R <- T(x='unterminated)",
		"R <- T[unclosed",
		"R <- T | ",
		"R <- T trailing",
		"R <- DELIV trailing",
		"R(param) <- T",
		"R <- T(x='1'",
	}
	for _, s := range bad {
		if _, err := ParsePolicyRule(s); err == nil {
			t.Errorf("ParsePolicyRule(%q): expected error", s)
		}
	}
}

func TestDSLRoundTripThroughString(t *testing.T) {
	// The DSL String() form of a parsed policy re-parses to the same
	// structure (for policies without raw-xpath conditions, whose String
	// form uses brackets).
	in := "VoMembership <- WebDesignerQuality(regulation='UNI EN ISO 9000'), AAAccreditation"
	ps, err := ParsePolicyRule(in)
	if err != nil {
		t.Fatal(err)
	}
	s := ps[0].String()
	re, err := ParsePolicyRule(s)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", s, err)
	}
	if re[0].Resource != ps[0].Resource || len(re[0].Terms) != len(ps[0].Terms) {
		t.Fatalf("round trip mismatch: %q vs %q", ps[0], re[0])
	}
}

func TestParsePoliciesLineErrors(t *testing.T) {
	_, err := ParsePolicies("A <- B\nbroken <-\nC <- D")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("expected line-numbered error, got %v", err)
	}
}

// TestDSLGroupConditions covers the §8 extension: threshold policies
// "R <- k of (T1 | ... | Tn)" expand into one alternative per k-subset.
func TestDSLGroupConditions(t *testing.T) {
	ps, err := ParsePolicyRule("VoMembership <- 2 of (AAACreditation | BalanceSheet | ISOCert(regulation='UNI EN ISO 9000'))")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 { // C(3,2)
		t.Fatalf("2-of-3 alternatives = %d, want 3", len(ps))
	}
	for _, p := range ps {
		if p.Resource != "VoMembership" || len(p.Terms) != 2 {
			t.Fatalf("bad alternative: %+v", p)
		}
	}
	// first combination is (AAACreditation, BalanceSheet)
	if ps[0].Terms[0].CredType != "AAACreditation" || ps[0].Terms[1].CredType != "BalanceSheet" {
		t.Fatalf("combo order: %+v", ps[0].Terms)
	}
	// conditions survive into the combos that include the term
	found := false
	for _, p := range ps {
		for _, term := range p.Terms {
			if term.CredType == "ISOCert" && len(term.Conditions) == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("conditions lost in group expansion")
	}

	// 1-of-n behaves like plain alternatives
	ps, err = ParsePolicyRule("R <- 1 of (A | B)")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || len(ps[0].Terms) != 1 {
		t.Fatalf("1-of-2 = %+v", ps)
	}
	// n-of-n behaves like a conjunction
	ps, err = ParsePolicyRule("R <- 3 of (A | B | C)")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || len(ps[0].Terms) != 3 {
		t.Fatalf("3-of-3 = %+v", ps)
	}
}

func TestDSLGroupConditionErrors(t *testing.T) {
	bad := []string{
		"R <- 0 of (A | B)",
		"R <- 3 of (A | B)",
		"R <- 2 of A | B",
		"R <- 2 of (A | B",
		"R <- 2 of ()",
		"R <- 2 of (A | B) trailing",
	}
	for _, s := range bad {
		if _, err := ParsePolicyRule(s); err == nil {
			t.Errorf("ParsePolicyRule(%q): expected error", s)
		}
	}
	// a term named "of" or digits-leading names must still work outside
	// the group syntax
	if _, err := ParsePolicyRule("R <- offer"); err != nil {
		t.Errorf("term starting with 'of' prefix: %v", err)
	}
}
