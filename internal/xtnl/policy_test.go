package xtnl

import (
	"strings"
	"testing"
)

// TestFig7PolicyGolden reproduces the paper's Fig. 7: the disclosure
// policy protecting the "ISO 9000 Certified" credential, requiring an
// Aircraft-Company accreditation credential released by the American
// Aircraft associations, rendered as
// <policy><resource target=…/><properties><certificate targetCertType=…>
// <certCond>XPath</certCond></certificate></properties></policy>.
func TestFig7PolicyGolden(t *testing.T) {
	p := &Policy{
		Resource: "ISO 9000 Certified",
		Terms: []Term{{
			CredType:   "AAAccreditation",
			Conditions: []string{"/credential/header/issuer='American Aircraft Association'"},
		}},
	}
	got := p.XML()
	for _, frag := range []string{
		`<policy`,
		`type="disclosure"`,
		`<resource target="ISO 9000 Certified"/>`,
		`<properties>`,
		`targetCertType="AAAccreditation"`,
		`<certCond>/credential/header/issuer='American Aircraft Association'</certCond>`,
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("Fig. 7 layout missing %q in:\n%s", frag, got)
		}
	}
}

func TestPolicyRoundTrip(t *testing.T) {
	p := &Policy{
		ID:       "pol-1",
		Resource: "VoMembership",
		Terms: []Term{
			{CredType: "WebDesignerQuality", Conditions: []string{"/credential/content/regulation='UNI EN ISO 9000'"}},
			{CredType: "", Conditions: []string{"/credential/header/issuer='X'"}},
		},
		Concepts: []string{"quality-certification"},
	}
	re, err := ParsePolicy(p.XML())
	if err != nil {
		t.Fatal(err)
	}
	if re.ID != p.ID || re.Resource != p.Resource || len(re.Terms) != 2 {
		t.Fatalf("round trip lost structure: %+v", re)
	}
	if re.Terms[0].CredType != "WebDesignerQuality" {
		t.Fatalf("term type lost: %+v", re.Terms[0])
	}
	if len(re.Terms[0].Conditions) != 1 || !strings.Contains(re.Terms[0].Conditions[0], "UNI EN ISO 9000") {
		t.Fatalf("condition lost: %+v", re.Terms[0].Conditions)
	}
	if !re.Terms[1].Wildcard() {
		t.Fatalf("wildcard term lost: %+v", re.Terms[1])
	}
	if len(re.Concepts) != 1 || re.Concepts[0] != "quality-certification" {
		t.Fatalf("concepts lost: %+v", re.Concepts)
	}
}

func TestDeliveryPolicyRoundTrip(t *testing.T) {
	p := &Policy{Resource: "PublicCatalog", Deliver: true}
	re, err := ParsePolicy(p.XML())
	if err != nil {
		t.Fatal(err)
	}
	if !re.Deliver || re.Resource != "PublicCatalog" {
		t.Fatalf("delivery rule lost: %+v", re)
	}
	if got := re.String(); got != "PublicCatalog <- DELIV" {
		t.Fatalf("String() = %q", got)
	}
}

func TestPolicyValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Policy
		ok   bool
	}{
		{"valid", Policy{Resource: "R", Terms: []Term{{CredType: "T"}}}, true},
		{"deliver", Policy{Resource: "R", Deliver: true}, true},
		{"no resource", Policy{Terms: []Term{{CredType: "T"}}}, false},
		{"no terms", Policy{Resource: "R"}, false},
		{"deliver with terms", Policy{Resource: "R", Deliver: true, Terms: []Term{{CredType: "T"}}}, false},
		{"bad condition", Policy{Resource: "R", Terms: []Term{{CredType: "T", Conditions: []string{"/a["}}}}, false},
	}
	for _, tc := range cases {
		err := tc.p.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestTermSatisfiedBy(t *testing.T) {
	cred := iso9000Credential()
	cases := []struct {
		name string
		term Term
		want bool
	}{
		{"type only", Term{CredType: "ISO 9000 Certified"}, true},
		{"wrong type", Term{CredType: "Other"}, false},
		{"type and condition", Term{CredType: "ISO 9000 Certified",
			Conditions: []string{"/credential/content/QualityRegulation='UNI EN ISO 9000'"}}, true},
		{"failing condition", Term{CredType: "ISO 9000 Certified",
			Conditions: []string{"/credential/header/issuer='other'"}}, false},
		{"wildcard with condition", Term{CredType: "$x",
			Conditions: []string{"/credential/header/issuer='INFN'"}}, true},
		{"empty wildcard", Term{}, true},
		{"uncompilable condition", Term{CredType: "ISO 9000 Certified", Conditions: []string{"/["}}, false},
	}
	for _, tc := range cases {
		if got := tc.term.SatisfiedBy(cred); got != tc.want {
			t.Errorf("%s: SatisfiedBy = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestParsePolicyErrors(t *testing.T) {
	cases := []struct {
		name string
		xml  string
	}{
		{"not xml", `<policy`},
		{"wrong root", `<credential/>`},
		{"no resource", `<policy><properties/></policy>`},
		{"no target", `<policy><resource/><properties/></policy>`},
		{"no properties", `<policy><resource target="R"/></policy>`},
		{"empty properties", `<policy><resource target="R"/><properties/></policy>`},
		{"bad xpath", `<policy><resource target="R"/><properties><certificate targetCertType="T"><certCond>/a[</certCond></certificate></properties></policy>`},
	}
	for _, tc := range cases {
		if _, err := ParsePolicy(tc.xml); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestPolicySet(t *testing.T) {
	ps := MustPolicySet(
		&Policy{Resource: "A", Terms: []Term{{CredType: "X"}}},
		&Policy{Resource: "A", Terms: []Term{{CredType: "Y"}}},
		&Policy{Resource: "B", Deliver: true},
	)
	if ps.Len() != 3 {
		t.Fatalf("Len = %d", ps.Len())
	}
	if got := len(ps.For("A")); got != 2 {
		t.Fatalf("alternatives for A = %d, want 2", got)
	}
	if got := len(ps.For("missing")); got != 0 {
		t.Fatalf("policies for unknown resource = %d", got)
	}
	if got := len(ps.Resources()); got != 2 {
		t.Fatalf("Resources = %d", got)
	}
	if err := ps.Add(&Policy{}); err == nil {
		t.Fatal("adding invalid policy should fail")
	}
	var nilSet *PolicySet
	if nilSet.For("A") != nil {
		t.Fatal("nil set should return nil")
	}
}

func TestPolicyString(t *testing.T) {
	p := Policy{Resource: "R", Terms: []Term{
		{CredType: "A"},
		{CredType: "B", Conditions: []string{"x=1", "y=2"}},
		{},
	}}
	got := p.String()
	if !strings.Contains(got, "R <- A, B[x=1][y=2], $any") {
		t.Fatalf("String() = %q", got)
	}
}
