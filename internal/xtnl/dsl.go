package xtnl

import (
	"fmt"
	"strings"
	"unicode"
)

// This file implements the textual disclosure-policy DSL, a hand-rolled
// compact notation for the paper's logic-rule form (§4.1):
//
//	R <- T1, T2, ..., Tn        conjunction of terms
//	R <- DELIV                  delivery rule
//	R <- A | B                  two alternative policies for R (Fig. 2's
//	                            multiedge branches are written this way)
//
// Terms may constrain credential attributes:
//
//	VoMembership <- WebDesignerQuality(regulation='UNI EN ISO 9000')
//	Certification <- AAAccreditation | BalanceSheet(issuer='BBB')
//	Service <- $any(country='IT')                 wildcard credential type
//	Audit <- TaxRecord[/credential/content/year >= 2009]   raw XPath
//
// Attribute shorthand maps to XPath over the credential document:
// issuer/holder/type address the header, everything else the content.

// ParsePolicies parses a DSL document: one policy per line, '#' comments,
// blank lines ignored. Alternatives ("|") expand into separate Policy
// values sharing the resource name.
func ParsePolicies(src string) ([]*Policy, error) {
	var out []*Policy
	for lineNo, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		ps, err := ParsePolicyRule(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		out = append(out, ps...)
	}
	return out, nil
}

// ParsePolicyRule parses a single DSL rule, returning one Policy per
// "|" alternative.
func ParsePolicyRule(src string) ([]*Policy, error) {
	p := &dslParser{src: src}
	return p.parseRule()
}

// MustParsePolicies is ParsePolicies that panics on error, for fixtures.
func MustParsePolicies(src string) []*Policy {
	ps, err := ParsePolicies(src)
	if err != nil {
		panic(err)
	}
	return ps
}

type dslParser struct {
	src string
	pos int
}

func (p *dslParser) errf(format string, args ...any) error {
	return fmt.Errorf("xtnl: policy DSL: %s at offset %d in %q", fmt.Sprintf(format, args...), p.pos, p.src)
}

func (p *dslParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *dslParser) eof() bool {
	p.skipSpace()
	return p.pos >= len(p.src)
}

func (p *dslParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *dslParser) accept(s string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *dslParser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	if p.pos < len(p.src) && p.src[p.pos] == '$' {
		p.pos++
	}
	for p.pos < len(p.src) {
		r := rune(p.src[p.pos])
		// '/' permits hierarchical resource names such as
		// "VoMembership/<vo>/<role>"; ':' permits concept references
		// ("concept:gender").
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.' || r == '/' || r == ':' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start || (p.pos == start+1 && p.src[start] == '$') {
		return "", p.errf("expected identifier")
	}
	return p.src[start:p.pos], nil
}

func (p *dslParser) parseRule() ([]*Policy, error) {
	resource, err := p.ident()
	if err != nil {
		return nil, err
	}
	// optional empty R-term parens: "Certification() <- ..."
	if p.accept("(") {
		if !p.accept(")") {
			return nil, p.errf("R-term parameters are not supported; expected ()")
		}
	}
	if !p.accept("<-") && !p.accept("←") {
		return nil, p.errf("expected <- after resource %q", resource)
	}
	p.skipSpace()
	if p.accept("DELIV") {
		if !p.eof() {
			return nil, p.errf("unexpected input after DELIV")
		}
		return []*Policy{{Resource: resource, Deliver: true}}, nil
	}
	// Group (threshold) condition — the §8 extension "policies with
	// group conditions": "R <- k of (T1 | T2 | ... | Tn)" expands into
	// one alternative policy per k-subset of the terms.
	if k, ok := p.tryThreshold(); ok {
		terms, err := p.parseGroupTerms()
		if err != nil {
			return nil, err
		}
		if !p.eof() {
			return nil, p.errf("unexpected trailing input after group condition")
		}
		if k < 1 || k > len(terms) {
			return nil, p.errf("threshold %d out of range for %d terms", k, len(terms))
		}
		var out []*Policy
		for _, combo := range combinations(len(terms), k) {
			pol := &Policy{Resource: resource}
			for _, idx := range combo {
				pol.Terms = append(pol.Terms, terms[idx])
			}
			if err := pol.Validate(); err != nil {
				return nil, err
			}
			out = append(out, pol)
		}
		return out, nil
	}
	var out []*Policy
	for {
		terms, err := p.parseTermList()
		if err != nil {
			return nil, err
		}
		pol := &Policy{Resource: resource, Terms: terms}
		if err := pol.Validate(); err != nil {
			return nil, err
		}
		out = append(out, pol)
		if p.accept("|") {
			continue
		}
		break
	}
	if !p.eof() {
		return nil, p.errf("unexpected trailing input %q", p.src[p.pos:])
	}
	return out, nil
}

// tryThreshold consumes "<k> of" when present, returning k.
func (p *dslParser) tryThreshold() (int, bool) {
	p.skipSpace()
	start := p.pos
	k := 0
	digits := 0
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		k = k*10 + int(p.src[p.pos]-'0')
		p.pos++
		digits++
	}
	if digits == 0 {
		p.pos = start
		return 0, false
	}
	p.skipSpace()
	// "of" must be a whole word (not a prefix of a term name)
	if !strings.HasPrefix(p.src[p.pos:], "of") ||
		(p.pos+2 < len(p.src) && isIdentChar(rune(p.src[p.pos+2]))) {
		p.pos = start
		return 0, false
	}
	p.pos += 2
	return k, true
}

func isIdentChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.' || r == '/' || r == ':'
}

// parseGroupTerms parses "( term | term | ... )".
func (p *dslParser) parseGroupTerms() ([]Term, error) {
	if !p.accept("(") {
		return nil, p.errf("expected ( after threshold")
	}
	var terms []Term
	for {
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
		if p.accept("|") {
			continue
		}
		if !p.accept(")") {
			return nil, p.errf("expected | or ) in group condition")
		}
		return terms, nil
	}
}

// combinations returns every k-subset of {0..n-1} in lexicographic order.
func combinations(n, k int) [][]int {
	var out [][]int
	combo := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			out = append(out, append([]int(nil), combo...))
			return
		}
		for i := start; i <= n-(k-depth); i++ {
			combo[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return out
}

func (p *dslParser) parseTermList() ([]Term, error) {
	var terms []Term
	for {
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
		if p.accept(",") {
			continue
		}
		return terms, nil
	}
}

func (p *dslParser) parseTerm() (Term, error) {
	var t Term
	name, err := p.ident()
	if err != nil {
		return t, err
	}
	if name == "DELIV" {
		return t, p.errf("DELIV cannot appear inside a term list")
	}
	if strings.HasPrefix(name, "$") {
		t.CredType = name // wildcard variable
	} else {
		t.CredType = name
	}
	if p.accept("(") {
		if !p.accept(")") {
			for {
				cond, err := p.parseCondition()
				if err != nil {
					return t, err
				}
				t.Conditions = append(t.Conditions, cond)
				if p.accept(",") {
					continue
				}
				if !p.accept(")") {
					return t, p.errf("expected , or ) in condition list")
				}
				break
			}
		}
	}
	for p.accept("[") {
		// raw XPath condition, verbatim up to the matching ']'
		depth := 1
		start := p.pos
		for p.pos < len(p.src) && depth > 0 {
			switch p.src[p.pos] {
			case '[':
				depth++
			case ']':
				depth--
			}
			p.pos++
		}
		if depth != 0 {
			return t, p.errf("unterminated [xpath] condition")
		}
		t.Conditions = append(t.Conditions, strings.TrimSpace(p.src[start:p.pos-1]))
	}
	return t, nil
}

// headerFields are the shorthand names that address the credential
// header rather than its content.
var headerFields = map[string]string{
	"issuer": "/credential/header/issuer",
	"holder": "/credential/header/holder",
	"type":   "/credential/header/credType",
}

func (p *dslParser) parseCondition() (string, error) {
	attr, err := p.ident()
	if err != nil {
		return "", err
	}
	p.skipSpace()
	var op string
	for _, cand := range []string{"!=", "<=", ">=", "=", "<", ">"} {
		if strings.HasPrefix(p.src[p.pos:], cand) {
			op = cand
			p.pos += len(cand)
			break
		}
	}
	if op == "" {
		return "", p.errf("expected comparison operator after %q", attr)
	}
	p.skipSpace()
	val, err := p.literal()
	if err != nil {
		return "", err
	}
	path, ok := headerFields[attr]
	if !ok {
		path = "/credential/content/" + attr
	}
	return path + op + val, nil
}

// literal parses a quoted string or a bare number and returns its XPath
// source form.
func (p *dslParser) literal() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return "", p.errf("expected literal")
	}
	c := p.src[p.pos]
	if c == '\'' || c == '"' {
		quote := c
		p.pos++
		j := strings.IndexByte(p.src[p.pos:], quote)
		if j < 0 {
			return "", p.errf("unterminated string literal")
		}
		s := p.src[p.pos : p.pos+j]
		p.pos += j + 1
		return "'" + s + "'", nil
	}
	start := p.pos
	if c == '-' {
		p.pos++
	}
	for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.') {
		p.pos++
	}
	if p.pos == start || (p.pos == start+1 && c == '-') {
		return "", p.errf("expected quoted string or number")
	}
	return p.src[start:p.pos], nil
}
