package xtnl

import (
	"errors"
	"fmt"
	"strings"

	"trustvo/internal/xmldom"
	"trustvo/internal/xpath"
)

// Term is one requirement inside a disclosure policy: "the counterpart
// must disclose a credential of type CredType satisfying Conditions".
//
// CredType may be empty or a variable name starting with '$', expressing
// the paper's unspecified-type terms ("the credential type P can be
// unspecified, and denoted by a variable, so to express constraints on
// the counterpart properties without specifying from which types of
// credential such properties should be obtained"). The receiver then
// chooses any owned credential whose attributes satisfy the conditions.
type Term struct {
	CredType   string
	Conditions []string // XPath expressions over the candidate credential
}

// Wildcard reports whether the term leaves the credential type open.
func (t Term) Wildcard() bool {
	return t.CredType == "" || strings.HasPrefix(t.CredType, "$")
}

// CompiledConditions compiles the term's XPath conditions, memoized
// process-wide by source text (see cache.go).
func (t Term) CompiledConditions() ([]*xpath.Expr, error) {
	out := make([]*xpath.Expr, 0, len(t.Conditions))
	for _, c := range t.Conditions {
		e, err := compileCondition(c)
		if err != nil {
			return nil, fmt.Errorf("xtnl: condition %q: %w", c, err)
		}
		out = append(out, e)
	}
	return out, nil
}

// SatisfiedBy reports whether cred matches the term: type equal (unless
// wildcard) and all conditions true. Compilation errors make the term
// unsatisfied.
func (t Term) SatisfiedBy(cred *Credential) bool {
	if !t.Wildcard() && t.CredType != cred.Type {
		return false
	}
	conds, err := t.CompiledConditions()
	if err != nil {
		return false
	}
	return cred.Satisfies(conds)
}

// String renders the term in DSL form; each condition becomes its own
// raw-XPath bracket so the output re-parses to the same term.
func (t Term) String() string {
	name := t.CredType
	if name == "" {
		name = "$any"
	}
	var b strings.Builder
	b.WriteString(name)
	for _, c := range t.Conditions {
		b.WriteByte('[')
		b.WriteString(c)
		b.WriteByte(']')
	}
	return b.String()
}

// Policy is a single disclosure rule: Resource ← Terms (a conjunction),
// or Resource ← DELIV when Deliver is set. A party usually holds several
// policies for the same resource; each is an alternative way to satisfy
// the release of that resource (the multiedge branches of Fig. 2).
type Policy struct {
	ID       string
	Resource string // R-term name: a credential type, service or resource
	Deliver  bool   // delivery rule: release freely
	Terms    []Term // conjunctive requirements (ignored when Deliver)

	// Concepts optionally names the ontology concepts this policy's terms
	// were abstracted to (paper §4.3.1); empty for concrete policies.
	Concepts []string
}

// String renders the policy in DSL form.
func (p Policy) String() string {
	if p.Deliver {
		return p.Resource + " <- DELIV"
	}
	parts := make([]string, len(p.Terms))
	for i, t := range p.Terms {
		parts[i] = t.String()
	}
	return p.Resource + " <- " + strings.Join(parts, ", ")
}

// Validate checks structural invariants: a resource name, and either
// DELIV or at least one term, each with compilable conditions.
func (p Policy) Validate() error {
	if p.Resource == "" {
		return errors.New("xtnl: policy without resource")
	}
	if p.Deliver {
		if len(p.Terms) > 0 {
			return fmt.Errorf("xtnl: delivery policy for %s must not carry terms", p.Resource)
		}
		return nil
	}
	if len(p.Terms) == 0 {
		return fmt.Errorf("xtnl: policy for %s has no terms and is not DELIV", p.Resource)
	}
	for _, t := range p.Terms {
		if _, err := t.CompiledConditions(); err != nil {
			return err
		}
	}
	return nil
}

// DOM builds the policy XML in the Fig. 7 layout:
//
//	<policy type="disclosure">
//	  <resource target="ISO 9000 Certified"/>
//	  <properties>
//	    <certificate targetCertType="AAAccreditation">
//	      <certCond>/credential/header/issuer='AAA'</certCond>
//	    </certificate>
//	  </properties>
//	</policy>
//
// Delivery rules render as <policy type="delivery"> with no properties.
func (p Policy) DOM() *xmldom.Node {
	root := xmldom.NewElement("policy")
	if p.ID != "" {
		root.SetAttr("polID", p.ID)
	}
	if p.Deliver {
		root.SetAttr("type", "delivery")
	} else {
		root.SetAttr("type", "disclosure")
	}
	res := xmldom.NewElement("resource").SetAttr("target", p.Resource)
	root.AppendChild(res)
	if p.Deliver {
		return root
	}
	props := xmldom.NewElement("properties")
	for _, t := range p.Terms {
		cert := xmldom.NewElement("certificate")
		if !t.Wildcard() {
			cert.SetAttr("targetCertType", t.CredType)
		} else if t.CredType != "" {
			cert.SetAttr("var", t.CredType)
		}
		for _, cond := range t.Conditions {
			cc := xmldom.NewElement("certCond")
			cc.AppendChild(xmldom.NewText(cond))
			cert.AppendChild(cc)
		}
		props.AppendChild(cert)
	}
	root.AppendChild(props)
	for _, cname := range p.Concepts {
		root.AppendChild(xmldom.NewElement("concept").SetAttr("name", cname))
	}
	return root
}

// XML serializes the policy in canonical form.
func (p Policy) XML() string { return p.DOM().XML() }

// ErrBadPolicy reports a malformed policy document.
var ErrBadPolicy = errors.New("xtnl: malformed policy")

// ParsePolicy decodes a Fig. 7-layout policy document.
func ParsePolicy(xmlText string) (*Policy, error) {
	root, err := xmldom.ParseString(xmlText)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadPolicy, err)
	}
	return PolicyFromDOM(root)
}

// PolicyFromDOM decodes a policy from an already-parsed tree.
func PolicyFromDOM(root *xmldom.Node) (*Policy, error) {
	if root.Name != "policy" {
		return nil, fmt.Errorf("%w: root element is <%s>, want <policy>", ErrBadPolicy, root.Name)
	}
	p := &Policy{ID: root.AttrOr("polID", "")}
	res := root.Child("resource")
	if res == nil {
		return nil, fmt.Errorf("%w: missing <resource>", ErrBadPolicy)
	}
	p.Resource = res.AttrOr("target", "")
	if p.Resource == "" {
		return nil, fmt.Errorf("%w: <resource> without target", ErrBadPolicy)
	}
	if root.AttrOr("type", "disclosure") == "delivery" {
		p.Deliver = true
		return p, nil
	}
	props := root.Child("properties")
	if props == nil {
		return nil, fmt.Errorf("%w: disclosure policy for %s without <properties>", ErrBadPolicy, p.Resource)
	}
	for _, cert := range props.Childs("certificate") {
		t := Term{CredType: cert.AttrOr("targetCertType", cert.AttrOr("var", ""))}
		for _, cc := range cert.Childs("certCond") {
			t.Conditions = append(t.Conditions, strings.TrimSpace(cc.Text()))
		}
		p.Terms = append(p.Terms, t)
	}
	for _, cn := range root.Childs("concept") {
		p.Concepts = append(p.Concepts, cn.AttrOr("name", ""))
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadPolicy, err)
	}
	return p, nil
}

// PolicySet is a party's collection of disclosure policies, indexed by
// protected resource. Multiple policies for one resource are disjunctive
// alternatives.
type PolicySet struct {
	policies []*Policy
	byRes    map[string][]*Policy
}

// NewPolicySet builds a set from the given policies. It fails if any
// policy is invalid.
func NewPolicySet(policies ...*Policy) (*PolicySet, error) {
	s := &PolicySet{byRes: make(map[string][]*Policy)}
	for _, p := range policies {
		if err := s.Add(p); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustPolicySet is NewPolicySet that panics on error, for fixtures.
func MustPolicySet(policies ...*Policy) *PolicySet {
	s, err := NewPolicySet(policies...)
	if err != nil {
		panic(err)
	}
	return s
}

// Add validates and inserts a policy.
func (s *PolicySet) Add(p *Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if s.byRes == nil {
		s.byRes = make(map[string][]*Policy)
	}
	s.policies = append(s.policies, p)
	s.byRes[p.Resource] = append(s.byRes[p.Resource], p)
	return nil
}

// For returns all alternative policies protecting resource, nil if the
// resource is unknown (meaning: the party holds no rule releasing it).
func (s *PolicySet) For(resource string) []*Policy {
	if s == nil {
		return nil
	}
	return s.byRes[resource]
}

// All returns every policy in insertion order.
func (s *PolicySet) All() []*Policy { return s.policies }

// Len returns the number of policies.
func (s *PolicySet) Len() int { return len(s.policies) }

// Resources returns the set of protected resource names.
func (s *PolicySet) Resources() []string {
	out := make([]string, 0, len(s.byRes))
	for r := range s.byRes {
		out = append(out, r)
	}
	return out
}
