package xtnl

import (
	"fmt"
	"sort"
	"sync"

	"trustvo/internal/xmldom"
	"trustvo/internal/xpath"
)

// Profile is a party's X-Profile: "All credentials associated with a
// party are collected into a unique XML document, referred to as
// X-Profile" (§4.1). It indexes credentials by type and by sensitivity
// for the Algorithm 1 clustering (ontology.Map).
type Profile struct {
	Owner string
	creds []*Credential

	// domMu guards doms, the per-credential parsed-DOM cache consulted
	// by Satisfying. Policy evaluation runs every term's XPath
	// conditions against the credential document; rebuilding that
	// document for each (term, credential) pair dominated the
	// policy-evaluation phase under concurrent joins. Credentials are
	// treated as immutable once added (they are signed); Add and Remove
	// invalidate their cache entries.
	domMu sync.Mutex
	doms  map[string]*xmldom.Node
}

// NewProfile returns an empty profile for owner.
func NewProfile(owner string) *Profile {
	return &Profile{Owner: owner}
}

// Add appends credentials to the profile.
func (p *Profile) Add(creds ...*Credential) {
	p.creds = append(p.creds, creds...)
	for _, c := range creds {
		p.dropDOM(c.ID)
	}
}

// Remove deletes the credential with the given ID, reporting whether it
// was present.
func (p *Profile) Remove(id string) bool {
	for i, c := range p.creds {
		if c.ID == id {
			p.creds = append(p.creds[:i], p.creds[i+1:]...)
			p.dropDOM(id)
			return true
		}
	}
	return false
}

// credDOM returns the credential's canonical DOM, cached by ID.
func (p *Profile) credDOM(c *Credential) *xmldom.Node {
	if c.ID == "" {
		return c.DOM()
	}
	p.domMu.Lock()
	defer p.domMu.Unlock()
	if dom, ok := p.doms[c.ID]; ok {
		return dom
	}
	dom := c.DOM()
	if p.doms == nil {
		p.doms = make(map[string]*xmldom.Node)
	}
	p.doms[c.ID] = dom
	return dom
}

func (p *Profile) dropDOM(id string) {
	p.domMu.Lock()
	defer p.domMu.Unlock()
	delete(p.doms, id)
}

// All returns the credentials in insertion order.
func (p *Profile) All() []*Credential { return p.creds }

// Len returns the number of credentials held.
func (p *Profile) Len() int { return len(p.creds) }

// ByType returns every credential of the given type.
func (p *Profile) ByType(credType string) []*Credential {
	var out []*Credential
	for _, c := range p.creds {
		if c.Type == credType {
			out = append(out, c)
		}
	}
	return out
}

// ByID returns the credential with the given ID, or nil.
func (p *Profile) ByID(id string) *Credential {
	for _, c := range p.creds {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// Satisfying returns the credentials that satisfy term, least sensitive
// first (the disclosure preference of Algorithm 1: the low cluster is
// consulted before medium before high). Condition evaluation reuses the
// profile's parsed-DOM cache instead of rebuilding each credential
// document per term.
func (p *Profile) Satisfying(term Term) []*Credential {
	conds, err := term.CompiledConditions()
	if err != nil {
		return nil // uncompilable conditions satisfy nothing (as in SatisfiedBy)
	}
	var out []*Credential
	for _, c := range p.creds {
		if !term.Wildcard() && term.CredType != c.Type {
			continue
		}
		if satisfiesDOM(p.credDOM(c), conds) {
			out = append(out, c)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Sensitivity < out[j].Sensitivity })
	return out
}

// satisfiesDOM evaluates compiled conditions against a prebuilt
// credential document.
func satisfiesDOM(dom *xmldom.Node, conds []*xpath.Expr) bool {
	for _, e := range conds {
		if !e.Bool(dom) {
			return false
		}
	}
	return true
}

// Cluster returns the credentials among cands having exactly the given
// sensitivity, in order. This is the paper's CredCluster function.
func Cluster(cands []*Credential, s Sensitivity) []*Credential {
	var out []*Credential
	for _, c := range cands {
		if c.Sensitivity == s {
			out = append(out, c)
		}
	}
	return out
}

// DOM serializes the X-Profile as a single XML document.
func (p *Profile) DOM() *xmldom.Node {
	root := xmldom.NewElement("X-Profile").SetAttr("owner", p.Owner)
	for _, c := range p.creds {
		root.AppendChild(c.DOM())
	}
	return root
}

// XML serializes the profile in canonical form.
func (p *Profile) XML() string { return p.DOM().XML() }

// ParseProfile decodes an X-Profile document.
func ParseProfile(xmlText string) (*Profile, error) {
	root, err := xmldom.ParseString(xmlText)
	if err != nil {
		return nil, fmt.Errorf("xtnl: malformed X-Profile: %w", err)
	}
	if root.Name != "X-Profile" {
		return nil, fmt.Errorf("xtnl: root element is <%s>, want <X-Profile>", root.Name)
	}
	p := NewProfile(root.AttrOr("owner", ""))
	for _, el := range root.Childs("credential") {
		c, err := CredentialFromDOM(el)
		if err != nil {
			return nil, err
		}
		p.Add(c)
	}
	return p, nil
}
