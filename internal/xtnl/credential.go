// Package xtnl implements X-TNL, the XML-based Trust Negotiation Language
// of the Trust-X system (paper §4.1 and §6.2).
//
// X-TNL has two kinds of artifacts:
//
//   - Credentials: sets of attributes about a party, issued and signed by a
//     Credential Authority. All credentials of a party form its X-Profile.
//     The XML layout follows the paper's Fig. 6: a <credential> element
//     with <header> (type, issuer, validity), <content> (the attributes)
//     and <signature> (base64 signature by the issuer over the rest).
//
//   - Disclosure policies: logic rules R ← T1,…,Tn stating which
//     counterpart credentials (terms, possibly with XPath conditions) must
//     be disclosed before resource R is released, or R ← DELIV for freely
//     deliverable resources. The XML layout follows Fig. 7: <policy> with
//     <resource target=…> and <properties>/<certificate targetCertType=…>/
//     <certCond> elements holding XPath conditions.
//
// Policies can also be written in a compact textual DSL (see dsl.go),
// hand-rolled for this reproduction:
//
//	VoMembership <- WebDesignerQuality(regulation='UNI EN ISO 9000')
//	Certification <- AAAccreditation | BalanceSheet(issuer='BBB')
//	PublicInfo <- DELIV
package xtnl

import (
	"encoding/base64"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"trustvo/internal/xmldom"
	"trustvo/internal/xpath"
)

// TimeLayout is the timestamp layout used in credential validity fields.
// It matches the paper's examples ("2009-10-26T21:32:52", no zone; all
// times are interpreted as UTC).
const TimeLayout = "2006-01-02T15:04:05"

// Sensitivity labels a credential's privacy level. Algorithm 1 of the
// paper clusters a party's credentials by this label and discloses the
// least sensitive credential that satisfies a request.
type Sensitivity int

const (
	// SensitivityLow marks freely disclosable credentials.
	SensitivityLow Sensitivity = iota
	// SensitivityMedium marks credentials disclosed only under policy.
	SensitivityMedium
	// SensitivityHigh marks credentials disclosed reluctantly, as a
	// last resort among the alternatives implementing a concept.
	SensitivityHigh
)

// String returns the label used in XML ("low", "medium", "high").
func (s Sensitivity) String() string {
	switch s {
	case SensitivityLow:
		return "low"
	case SensitivityMedium:
		return "medium"
	case SensitivityHigh:
		return "high"
	default:
		return fmt.Sprintf("Sensitivity(%d)", int(s))
	}
}

// ParseSensitivity converts a label to a Sensitivity, defaulting to
// medium for unknown labels (the conservative choice).
func ParseSensitivity(s string) Sensitivity {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "low":
		return SensitivityLow
	case "high":
		return SensitivityHigh
	default:
		return SensitivityMedium
	}
}

// Attribute is a single named property carried by a credential.
type Attribute struct {
	Name  string
	Value string
}

// Credential is an X-TNL attribute credential: a statement by Issuer that
// Holder possesses Attributes, valid within [ValidFrom, ValidUntil].
//
// Signature is the issuer's signature over the canonical XML of the
// credential with the <signature> element removed; internal/pki produces
// and verifies it. HolderKey (base64, in the header) lets the counterpart
// challenge the presenter to prove ownership.
type Credential struct {
	ID          string
	Type        string
	Issuer      string
	Holder      string
	HolderKey   []byte // holder's public key, for ownership proof
	ValidFrom   time.Time
	ValidUntil  time.Time
	Sensitivity Sensitivity
	Attributes  []Attribute
	Signature   []byte // issuer signature; empty until signed
}

// Attr returns the value of the named content attribute and whether it
// is present.
func (c *Credential) Attr(name string) (string, bool) {
	for _, a := range c.Attributes {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// SetAttr sets or replaces a content attribute and returns c.
func (c *Credential) SetAttr(name, value string) *Credential {
	for i := range c.Attributes {
		if c.Attributes[i].Name == name {
			c.Attributes[i].Value = value
			return c
		}
	}
	c.Attributes = append(c.Attributes, Attribute{Name: name, Value: value})
	return c
}

// ValidAt reports whether t falls within the credential's validity window.
func (c *Credential) ValidAt(t time.Time) bool {
	if !c.ValidFrom.IsZero() && t.Before(c.ValidFrom) {
		return false
	}
	if !c.ValidUntil.IsZero() && t.After(c.ValidUntil) {
		return false
	}
	return true
}

// DOM builds the credential's XML tree in the Fig. 6 layout.
func (c *Credential) DOM() *xmldom.Node {
	root := xmldom.NewElement("credential")
	if c.ID != "" {
		root.SetAttr("credID", c.ID)
	}
	root.SetAttr("type", c.Type)
	if c.Sensitivity != SensitivityMedium {
		root.SetAttr("sensitivity", c.Sensitivity.String())
	} else {
		root.SetAttr("sensitivity", "medium")
	}

	header := xmldom.NewElement("header")
	addText := func(parent *xmldom.Node, name, val string) {
		el := xmldom.NewElement(name)
		el.AppendChild(xmldom.NewText(val))
		parent.AppendChild(el)
	}
	addText(header, "credType", c.Type)
	addText(header, "issuer", c.Issuer)
	if c.Holder != "" {
		addText(header, "holder", c.Holder)
	}
	if len(c.HolderKey) > 0 {
		addText(header, "holderKey", base64.StdEncoding.EncodeToString(c.HolderKey))
	}
	if !c.ValidFrom.IsZero() {
		addText(header, "issue_Date", c.ValidFrom.UTC().Format(TimeLayout))
	}
	if !c.ValidUntil.IsZero() {
		addText(header, "expiration_Date", c.ValidUntil.UTC().Format(TimeLayout))
	}
	root.AppendChild(header)

	content := xmldom.NewElement("content")
	for _, a := range c.Attributes {
		addText(content, a.Name, a.Value)
	}
	root.AppendChild(content)

	if len(c.Signature) > 0 {
		sig := xmldom.NewElement("signature")
		sig.AppendChild(xmldom.NewText(base64.StdEncoding.EncodeToString(c.Signature)))
		root.AppendChild(sig)
	}
	return root
}

// XML serializes the credential in canonical form.
func (c *Credential) XML() string { return c.DOM().XML() }

// SignedBytes returns the canonical bytes covered by the issuer's
// signature: the credential XML with the <signature> element omitted.
func (c *Credential) SignedBytes() []byte {
	cp := *c
	cp.Signature = nil
	return []byte(cp.DOM().XML())
}

// ErrBadCredential reports a malformed credential document.
var ErrBadCredential = errors.New("xtnl: malformed credential")

// ParseCredential decodes a Fig. 6-layout credential document.
func ParseCredential(xmlText string) (*Credential, error) {
	root, err := xmldom.ParseString(xmlText)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadCredential, err)
	}
	return CredentialFromDOM(root)
}

// CredentialFromDOM decodes a credential from an already-parsed tree.
func CredentialFromDOM(root *xmldom.Node) (*Credential, error) {
	if root.Name != "credential" {
		return nil, fmt.Errorf("%w: root element is <%s>, want <credential>", ErrBadCredential, root.Name)
	}
	c := &Credential{
		ID:          root.AttrOr("credID", ""),
		Type:        root.AttrOr("type", ""),
		Sensitivity: ParseSensitivity(root.AttrOr("sensitivity", "medium")),
	}
	header := root.Child("header")
	if header == nil {
		return nil, fmt.Errorf("%w: missing <header>", ErrBadCredential)
	}
	if ht := header.ChildText("credType"); ht != "" {
		if c.Type != "" && ht != c.Type {
			return nil, fmt.Errorf("%w: type attribute %q disagrees with credType %q", ErrBadCredential, c.Type, ht)
		}
		c.Type = ht
	}
	if c.Type == "" {
		return nil, fmt.Errorf("%w: no credential type", ErrBadCredential)
	}
	c.Issuer = header.ChildText("issuer")
	c.Holder = header.ChildText("holder")
	if hk := header.ChildText("holderKey"); hk != "" {
		b, err := base64.StdEncoding.DecodeString(hk)
		if err != nil {
			return nil, fmt.Errorf("%w: bad holderKey: %w", ErrBadCredential, err)
		}
		c.HolderKey = b
	}
	var perr error
	parseTime := func(s string) time.Time {
		if s == "" {
			return time.Time{}
		}
		t, err := time.ParseInLocation(TimeLayout, s, time.UTC)
		if err != nil && perr == nil {
			perr = fmt.Errorf("%w: bad timestamp %q", ErrBadCredential, s)
		}
		return t
	}
	c.ValidFrom = parseTime(header.ChildText("issue_Date"))
	c.ValidUntil = parseTime(header.ChildText("expiration_Date"))
	if perr != nil {
		return nil, perr
	}
	if content := root.Child("content"); content != nil {
		for _, el := range content.Elements() {
			c.Attributes = append(c.Attributes, Attribute{Name: el.Name, Value: el.Text()})
		}
	}
	if sig := root.Child("signature"); sig != nil {
		b, err := base64.StdEncoding.DecodeString(strings.TrimSpace(sig.Text()))
		if err != nil {
			return nil, fmt.Errorf("%w: bad signature encoding: %w", ErrBadCredential, err)
		}
		c.Signature = b
	}
	return c, nil
}

// Satisfies reports whether the credential meets every XPath condition.
// Conditions are evaluated with the credential document as context, so
// they may be absolute ("/credential/content/x='1'") or relative
// ("content/x='1'" / "//x='1'").
func (c *Credential) Satisfies(conds []*xpath.Expr) bool {
	if len(conds) == 0 {
		return true
	}
	dom := c.DOM()
	for _, e := range conds {
		if !e.Bool(dom) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the credential.
func (c *Credential) Clone() *Credential {
	cp := *c
	cp.Attributes = append([]Attribute(nil), c.Attributes...)
	cp.Signature = append([]byte(nil), c.Signature...)
	cp.HolderKey = append([]byte(nil), c.HolderKey...)
	return &cp
}

// SortAttributes orders content attributes by name, normalizing
// credentials produced from maps. Signed credentials must not be
// re-sorted (the signature covers attribute order).
func (c *Credential) SortAttributes() {
	sort.Slice(c.Attributes, func(i, j int) bool { return c.Attributes[i].Name < c.Attributes[j].Name })
}
