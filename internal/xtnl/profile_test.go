package xtnl

import (
	"testing"
)

func sampleProfile() *Profile {
	p := NewProfile("AerospaceCo")
	p.Add(
		&Credential{ID: "1", Type: "Passport", Sensitivity: SensitivityHigh,
			Attributes: []Attribute{{Name: "gender", Value: "F"}}},
		&Credential{ID: "2", Type: "DrivingLicense", Sensitivity: SensitivityMedium,
			Attributes: []Attribute{{Name: "sex", Value: "F"}}},
		&Credential{ID: "3", Type: "ISO 9000 Certified", Issuer: "INFN", Sensitivity: SensitivityLow,
			Attributes: []Attribute{{Name: "QualityRegulation", Value: "UNI EN ISO 9000"}}},
		&Credential{ID: "4", Type: "ISO 9000 Certified", Issuer: "Other", Sensitivity: SensitivityHigh},
	)
	return p
}

func TestProfileLookups(t *testing.T) {
	p := sampleProfile()
	if p.Len() != 4 {
		t.Fatalf("Len = %d", p.Len())
	}
	if got := len(p.ByType("ISO 9000 Certified")); got != 2 {
		t.Fatalf("ByType = %d, want 2", got)
	}
	if c := p.ByID("2"); c == nil || c.Type != "DrivingLicense" {
		t.Fatalf("ByID(2) = %+v", c)
	}
	if p.ByID("missing") != nil {
		t.Fatal("ByID of unknown id should be nil")
	}
}

func TestProfileSatisfyingOrdersBySensitivity(t *testing.T) {
	p := sampleProfile()
	got := p.Satisfying(Term{CredType: "ISO 9000 Certified"})
	if len(got) != 2 {
		t.Fatalf("Satisfying = %d creds", len(got))
	}
	if got[0].Sensitivity != SensitivityLow || got[1].Sensitivity != SensitivityHigh {
		t.Fatalf("not ordered by sensitivity: %v, %v", got[0].Sensitivity, got[1].Sensitivity)
	}
	// condition narrows to the INFN one
	got = p.Satisfying(Term{CredType: "ISO 9000 Certified",
		Conditions: []string{"/credential/header/issuer='INFN'"}})
	if len(got) != 1 || got[0].ID != "3" {
		t.Fatalf("conditioned Satisfying = %+v", got)
	}
	// wildcard term matches across types
	got = p.Satisfying(Term{Conditions: []string{"/credential/content/sex='F'"}})
	if len(got) != 1 || got[0].Type != "DrivingLicense" {
		t.Fatalf("wildcard Satisfying = %+v", got)
	}
}

func TestClusterMatchesPaperCredCluster(t *testing.T) {
	p := sampleProfile()
	all := p.All()
	if got := Cluster(all, SensitivityLow); len(got) != 1 || got[0].ID != "3" {
		t.Fatalf("low cluster = %+v", got)
	}
	if got := Cluster(all, SensitivityMedium); len(got) != 1 || got[0].ID != "2" {
		t.Fatalf("medium cluster = %+v", got)
	}
	if got := Cluster(all, SensitivityHigh); len(got) != 2 {
		t.Fatalf("high cluster = %+v", got)
	}
}

func TestProfileRemove(t *testing.T) {
	p := sampleProfile()
	if !p.Remove("2") {
		t.Fatal("Remove existing should report true")
	}
	if p.Remove("2") {
		t.Fatal("Remove twice should report false")
	}
	if p.Len() != 3 {
		t.Fatalf("Len after remove = %d", p.Len())
	}
}

func TestProfileXMLRoundTrip(t *testing.T) {
	p := sampleProfile()
	re, err := ParseProfile(p.XML())
	if err != nil {
		t.Fatal(err)
	}
	if re.Owner != "AerospaceCo" || re.Len() != 4 {
		t.Fatalf("round trip: owner=%q len=%d", re.Owner, re.Len())
	}
	if c := re.ByID("3"); c == nil || c.Issuer != "INFN" {
		t.Fatalf("credential 3 lost: %+v", c)
	}
}

func TestParseProfileErrors(t *testing.T) {
	if _, err := ParseProfile("<wrong/>"); err == nil {
		t.Fatal("wrong root should error")
	}
	if _, err := ParseProfile("<X-Profile><credential/></X-Profile>"); err == nil {
		t.Fatal("bad inner credential should error")
	}
	if _, err := ParseProfile("not xml"); err == nil {
		t.Fatal("non-xml should error")
	}
}
