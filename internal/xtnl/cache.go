package xtnl

import (
	"sync"
	"sync/atomic"

	"trustvo/internal/xpath"
)

// Hot-path memoization for policy evaluation.
//
// Term.SatisfiedBy is called for every (term, credential) pair a party
// considers during negotiation, and before this cache it recompiled the
// term's XPath conditions and rebuilt the credential's DOM on every
// call. Both results are pure functions of their source text, so they
// are memoized process-wide (conditions) and per-profile (DOMs).

// condCacheLimit bounds the compiled-condition memo. Conditions arrive
// in counterpart policies, so an unbounded map would let an adversary
// grow memory one unique XPath string at a time; past the limit new
// conditions are compiled without being retained.
const condCacheLimit = 4096

var (
	condCache     sync.Map // condition source -> *xpath.Expr
	condCacheSize atomic.Int64
)

// compileCondition returns the compiled form of one XPath condition,
// memoizing successes. Compiled expressions are immutable, so sharing
// one across goroutines is safe.
func compileCondition(src string) (*xpath.Expr, error) {
	if v, ok := condCache.Load(src); ok {
		return v.(*xpath.Expr), nil
	}
	e, err := xpath.Compile(src)
	if err != nil {
		return nil, err
	}
	if condCacheSize.Load() < condCacheLimit {
		if _, loaded := condCache.LoadOrStore(src, e); !loaded {
			condCacheSize.Add(1)
		}
	}
	return e, nil
}
