package xmldom

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimple(t *testing.T) {
	root, err := ParseString(`<credential type="ISO9000"><issuer>INFN</issuer></credential>`)
	if err != nil {
		t.Fatal(err)
	}
	if root.Name != "credential" {
		t.Fatalf("root name = %q, want credential", root.Name)
	}
	if got := root.AttrOr("type", ""); got != "ISO9000" {
		t.Fatalf("type attr = %q", got)
	}
	if got := root.ChildText("issuer"); got != "INFN" {
		t.Fatalf("issuer = %q", got)
	}
}

func TestParseDropsInterElementWhitespace(t *testing.T) {
	pretty := "<a>\n  <b>x</b>\n  <c/>\n</a>"
	compact := "<a><b>x</b><c/></a>"
	p, err := ParseString(pretty)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ParseString(compact)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(p, c) {
		t.Fatalf("pretty and compact forms differ:\n%s\n%s", p.XML(), c.XML())
	}
}

func TestParseKeepsMixedContent(t *testing.T) {
	root, err := ParseString(`<p>hello <b>bold</b> world</p>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := root.Text(); got != "hello bold world" {
		t.Fatalf("Text() = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`<a><b></a>`,
		`<a></a><b></b>`,
		`<a>`,
		`plain text`,
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q): expected error", c)
		}
	}
}

func TestXMLCanonicalAttributeOrder(t *testing.T) {
	a, _ := ParseString(`<x b="2" a="1"/>`)
	b, _ := ParseString(`<x a="1" b="2"/>`)
	if a.XML() != b.XML() {
		t.Fatalf("attribute order leaked into canonical form: %q vs %q", a.XML(), b.XML())
	}
	if want := `<x a="1" b="2"/>`; a.XML() != want {
		t.Fatalf("canonical = %q, want %q", a.XML(), want)
	}
}

func TestEscaping(t *testing.T) {
	n := NewElement("e").SetAttr("a", `v"<&`)
	n.AppendChild(NewText("x < y & z"))
	out := n.XML()
	re, err := ParseString(out)
	if err != nil {
		t.Fatalf("round trip parse of %q: %v", out, err)
	}
	if got, _ := re.Attr("a"); got != `v"<&` {
		t.Fatalf("attr round trip = %q", got)
	}
	if got := re.Text(); got != "x < y & z" {
		t.Fatalf("text round trip = %q", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig, _ := ParseString(`<a x="1"><b>t</b></a>`)
	cp := orig.Clone()
	cp.SetAttr("x", "2")
	cp.Child("b").Children[0].Data = "changed"
	if got := orig.AttrOr("x", ""); got != "1" {
		t.Fatalf("clone mutation leaked into original attr: %q", got)
	}
	if got := orig.ChildText("b"); got != "t" {
		t.Fatalf("clone mutation leaked into original text: %q", got)
	}
	if cp.Parent != nil {
		t.Fatal("clone should have nil parent")
	}
}

func TestChildHelpers(t *testing.T) {
	root, _ := ParseString(`<r><c i="1"/><d/><c i="2"/></r>`)
	if n := root.Child("c"); n == nil || n.AttrOr("i", "") != "1" {
		t.Fatal("Child should return first match")
	}
	if got := len(root.Childs("c")); got != 2 {
		t.Fatalf("Childs(c) = %d, want 2", got)
	}
	if root.Child("zzz") != nil {
		t.Fatal("Child of missing name should be nil")
	}
	if got := len(root.Elements()); got != 3 {
		t.Fatalf("Elements = %d, want 3", got)
	}
}

func TestWalkOrderAndStop(t *testing.T) {
	root, _ := ParseString(`<a><b><c/></b><d/></a>`)
	var names []string
	root.Walk(func(n *Node) bool {
		if n.Type == ElementNode {
			names = append(names, n.Name)
		}
		return true
	})
	if got := strings.Join(names, ""); got != "abcd" {
		t.Fatalf("walk order = %q, want abcd", got)
	}
	count := 0
	root.Walk(func(n *Node) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("walk did not stop: visited %d", count)
	}
}

func TestRootAndParentLinks(t *testing.T) {
	root, _ := ParseString(`<a><b><c/></b></a>`)
	c := root.Child("b").Child("c")
	if c.Root() != root {
		t.Fatal("Root() should reach document root")
	}
	if c.Parent.Name != "b" {
		t.Fatalf("parent link broken: %q", c.Parent.Name)
	}
}

func TestCommentsPreserved(t *testing.T) {
	root, err := ParseString(`<a><!--note--><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(root.XML(), "<!--note-->") {
		t.Fatalf("comment lost: %s", root.XML())
	}
}

func TestIndentedRoundTrips(t *testing.T) {
	root, _ := ParseString(`<credential type="t"><header><issuer>INFN</issuer></header><content><q>UNI EN ISO 9000</q></content></credential>`)
	pretty := root.Indented()
	re, err := ParseString(pretty)
	if err != nil {
		t.Fatalf("re-parse of indented output: %v\n%s", err, pretty)
	}
	if !Equal(root, re) {
		t.Fatalf("indented form not equivalent:\n%s\nvs\n%s", root.XML(), re.XML())
	}
}

// randomTree builds a deterministic pseudo-random tree from a seed slice,
// used for the round-trip property below.
func randomTree(seed []byte) *Node {
	root := NewElement("r")
	cur := root
	for i, b := range seed {
		switch b % 5 {
		case 0:
			child := NewElement("e" + string(rune('a'+int(b%26))))
			cur.AppendChild(child)
			cur = child
		case 1:
			if cur.Parent != nil {
				cur = cur.Parent
			}
		case 2:
			cur.SetAttr("a"+string(rune('a'+int(b%26))), string(rune('0'+i%10)))
		case 3:
			cur.AppendChild(NewText("t<&>" + string(rune('a'+int(b%26)))))
		case 4:
			cur.AppendChild(&Node{Type: CommentNode, Data: "c"})
		}
	}
	return root
}

func TestQuickSerializeParseRoundTrip(t *testing.T) {
	f := func(seed []byte) bool {
		if len(seed) > 64 {
			seed = seed[:64]
		}
		tree := randomTree(seed)
		out := tree.XML()
		re, err := ParseString(out)
		if err != nil {
			t.Logf("parse error on %q: %v", out, err)
			return false
		}
		return Equal(tree, re)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTextOfNestedElements(t *testing.T) {
	root, _ := ParseString(`<a><b>x</b><c><d>y</d>z</c></a>`)
	if got := root.Text(); got != "xyz" {
		t.Fatalf("Text = %q, want xyz", got)
	}
}

func TestSetAttrReplaces(t *testing.T) {
	n := NewElement("e").SetAttr("k", "1").SetAttr("k", "2")
	if len(n.Attrs) != 1 || n.Attrs[0].Value != "2" {
		t.Fatalf("SetAttr did not replace: %+v", n.Attrs)
	}
}

func TestNamespacedNamesUseClarkNotation(t *testing.T) {
	root, err := ParseString(`<owl:Class xmlns:owl="http://www.w3.org/2002/07/owl#" rdf:ID="gender" xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"/>`)
	if err != nil {
		t.Fatal(err)
	}
	if root.Name != "{http://www.w3.org/2002/07/owl#}Class" {
		t.Fatalf("namespaced element name = %q", root.Name)
	}
	if v, ok := root.Attr("{http://www.w3.org/1999/02/22-rdf-syntax-ns#}ID"); !ok || v != "gender" {
		t.Fatalf("namespaced attribute = %q %v", v, ok)
	}
}
