// Package xmldom provides a small document object model for XML.
//
// The Trust-X stack stores credentials, disclosure policies and ontologies
// as XML documents and evaluates XPath conditions against them (paper §6.2:
// each <certCond> element stores an XPath expression over the counterpart
// credential). encoding/xml only offers struct mapping and token streams,
// so this package builds the node tree that the XPath evaluator
// (internal/xpath) walks.
//
// The model is deliberately compact: elements, attributes, text and
// comments. Namespace prefixes are preserved verbatim in names (the X-TNL
// formats in the paper are prefix-free), and documents round-trip through
// Parse and (*Node).XML in canonical form — attributes sorted by name,
// no insignificant whitespace — which is also the form that gets signed
// by internal/pki.
package xmldom

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// NodeType discriminates the kinds of nodes in a document tree.
type NodeType int

const (
	// ElementNode is an XML element with a name, attributes and children.
	ElementNode NodeType = iota
	// TextNode holds character data.
	TextNode
	// CommentNode holds an XML comment.
	CommentNode
)

func (t NodeType) String() string {
	switch t {
	case ElementNode:
		return "element"
	case TextNode:
		return "text"
	case CommentNode:
		return "comment"
	default:
		return fmt.Sprintf("NodeType(%d)", int(t))
	}
}

// Attr is a single name="value" attribute on an element.
type Attr struct {
	Name  string
	Value string
}

// Node is a node in a parsed XML document. The zero value is an empty
// element with no name; use NewElement or Parse to build trees.
type Node struct {
	Type     NodeType
	Name     string // element name (ElementNode only)
	Data     string // character data (TextNode, CommentNode)
	Attrs    []Attr
	Children []*Node
	Parent   *Node
}

// NewElement returns a new element node with the given name.
func NewElement(name string) *Node {
	return &Node{Type: ElementNode, Name: name}
}

// NewText returns a new text node holding data.
func NewText(data string) *Node {
	return &Node{Type: TextNode, Data: data}
}

// AppendChild adds c as the last child of n and sets c.Parent.
// It returns n to permit chaining.
func (n *Node) AppendChild(c *Node) *Node {
	c.Parent = n
	n.Children = append(n.Children, c)
	return n
}

// SetAttr sets (or replaces) the named attribute and returns n.
func (n *Node) SetAttr(name, value string) *Node {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return n
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
	return n
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrOr returns the named attribute's value, or def when absent.
func (n *Node) AttrOr(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// Text returns the concatenated character data of n and all descendants,
// in document order. This matches the XPath string-value of an element.
func (n *Node) Text() string {
	var b strings.Builder
	n.appendText(&b)
	return b.String()
}

func (n *Node) appendText(b *strings.Builder) {
	switch n.Type {
	case TextNode:
		b.WriteString(n.Data)
	case ElementNode:
		for _, c := range n.Children {
			c.appendText(b)
		}
	}
}

// Elements returns the element children of n, in document order.
func (n *Node) Elements() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Type == ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// Child returns the first element child named name, or nil.
func (n *Node) Child(name string) *Node {
	for _, c := range n.Children {
		if c.Type == ElementNode && c.Name == name {
			return c
		}
	}
	return nil
}

// ChildText returns the string-value of the first element child named
// name, or "" when there is no such child.
func (n *Node) ChildText(name string) string {
	if c := n.Child(name); c != nil {
		return c.Text()
	}
	return ""
}

// Childs returns all element children named name, in document order.
func (n *Node) Childs(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Type == ElementNode && c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// Walk visits n and every descendant in document order. If fn returns
// false the walk stops.
func (n *Node) Walk(fn func(*Node) bool) bool {
	if !fn(n) {
		return false
	}
	for _, c := range n.Children {
		if !c.Walk(fn) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of n with a nil Parent.
func (n *Node) Clone() *Node {
	cp := &Node{Type: n.Type, Name: n.Name, Data: n.Data}
	if len(n.Attrs) > 0 {
		cp.Attrs = make([]Attr, len(n.Attrs))
		copy(cp.Attrs, n.Attrs)
	}
	for _, c := range n.Children {
		cp.AppendChild(c.Clone())
	}
	return cp
}

// Root returns the topmost ancestor of n (n itself if parentless).
func (n *Node) Root() *Node {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}

// ErrNoRoot is returned by Parse when the input holds no root element.
var ErrNoRoot = errors.New("xmldom: document has no root element")

// Parse reads an XML document from r and returns its root element.
// Character data consisting entirely of whitespace between elements is
// dropped; mixed content keeps its text verbatim. Comments are preserved.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var cur *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldom: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := NewElement(qname(t.Name))
			for _, a := range t.Attr {
				// xmlns declarations are carried through as plain
				// attributes so serialized output stays faithful.
				el.Attrs = append(el.Attrs, Attr{Name: qname(a.Name), Value: a.Value})
			}
			if cur == nil {
				if root != nil {
					return nil, errors.New("xmldom: multiple root elements")
				}
				root = el
			} else {
				cur.AppendChild(el)
			}
			cur = el
		case xml.EndElement:
			if cur == nil {
				return nil, errors.New("xmldom: unbalanced end element")
			}
			cur = cur.Parent
		case xml.CharData:
			if cur == nil {
				continue // prolog whitespace
			}
			s := string(t)
			if strings.TrimSpace(s) == "" && !hasTextChildren(cur) {
				// Indentation between elements; drop it so that
				// pretty-printed and compact documents compare equal.
				continue
			}
			cur.AppendChild(NewText(s))
		case xml.Comment:
			if cur != nil {
				cur.AppendChild(&Node{Type: CommentNode, Data: string(t)})
			}
		case xml.ProcInst, xml.Directive:
			// Prolog; not modelled.
		}
	}
	if cur != nil {
		return nil, errors.New("xmldom: unexpected EOF inside element " + cur.Name)
	}
	if root == nil {
		return nil, ErrNoRoot
	}
	return root, nil
}

func hasTextChildren(n *Node) bool {
	for _, c := range n.Children {
		if c.Type == TextNode && strings.TrimSpace(c.Data) != "" {
			return true
		}
	}
	return false
}

// ParseString is Parse over a string.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s))
}

func qname(n xml.Name) string {
	// encoding/xml resolves prefixes to namespace URLs in Name.Space.
	// The X-TNL documents in the paper are prefix-free; when a namespace
	// does appear we keep it in Clark notation so names stay unambiguous.
	if n.Space == "" {
		return n.Local
	}
	return "{" + n.Space + "}" + n.Local
}

// xmlBufPool recycles serialization buffers across XML calls. Encoding
// is the per-message hot path of the wsrpc envelope plumbing (every
// request, reply and replay-cache entry serializes a tree), so buffer
// growth churn is worth avoiding; only the final string copy allocates.
var xmlBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBuf caps the capacity of buffers returned to the pool, so
// one huge document doesn't pin its buffer for the process lifetime.
const maxPooledBuf = 1 << 16

// XML serializes the subtree rooted at n in canonical form: attributes
// sorted by name, text escaped, no added whitespace. The output of XML is
// what internal/pki signs, so two structurally equal documents always
// produce identical bytes.
func (n *Node) XML() string {
	b := xmlBufPool.Get().(*bytes.Buffer)
	b.Reset()
	n.writeXML(b)
	s := b.String()
	if b.Cap() <= maxPooledBuf {
		xmlBufPool.Put(b)
	}
	return s
}

// sortedAttrs returns the attributes in name order, reusing the node's
// own slice when it is already sorted (the common case: trees built via
// SetAttr in order, or parsed from canonical output).
func (n *Node) sortedAttrs() []Attr {
	for i := 1; i < len(n.Attrs); i++ {
		if n.Attrs[i].Name < n.Attrs[i-1].Name {
			attrs := make([]Attr, len(n.Attrs))
			copy(attrs, n.Attrs)
			sort.Slice(attrs, func(a, b int) bool { return attrs[a].Name < attrs[b].Name })
			return attrs
		}
	}
	return n.Attrs
}

func (n *Node) writeXML(b *bytes.Buffer) {
	switch n.Type {
	case TextNode:
		textEscaper.WriteString(b, n.Data)
	case CommentNode:
		b.WriteString("<!--")
		b.WriteString(n.Data)
		b.WriteString("-->")
	case ElementNode:
		b.WriteByte('<')
		b.WriteString(n.Name)
		for _, a := range n.sortedAttrs() {
			b.WriteByte(' ')
			b.WriteString(a.Name)
			b.WriteString(`="`)
			attrEscaper.WriteString(b, a.Value)
			b.WriteByte('"')
		}
		if len(n.Children) == 0 {
			b.WriteString("/>")
			return
		}
		b.WriteByte('>')
		for _, c := range n.Children {
			c.writeXML(b)
		}
		b.WriteString("</")
		b.WriteString(n.Name)
		b.WriteByte('>')
	}
}

// Indented serializes the subtree with two-space indentation, for human
// consumption (the cmd/xtnl formatter and example output). Text content
// is kept inline when an element has only text children.
func (n *Node) Indented() string {
	var b strings.Builder
	n.writeIndented(&b, 0)
	b.WriteByte('\n')
	return b.String()
}

func (n *Node) writeIndented(b *strings.Builder, depth int) {
	ind := strings.Repeat("  ", depth)
	switch n.Type {
	case TextNode:
		b.WriteString(ind)
		b.WriteString(escapeText(strings.TrimSpace(n.Data)))
	case CommentNode:
		b.WriteString(ind)
		b.WriteString("<!--")
		b.WriteString(n.Data)
		b.WriteString("-->")
	case ElementNode:
		b.WriteString(ind)
		b.WriteByte('<')
		b.WriteString(n.Name)
		for _, a := range n.sortedAttrs() {
			b.WriteByte(' ')
			b.WriteString(a.Name)
			b.WriteString(`="`)
			b.WriteString(escapeAttr(a.Value))
			b.WriteByte('"')
		}
		if len(n.Children) == 0 {
			b.WriteString("/>")
			return
		}
		b.WriteByte('>')
		if onlyText(n) {
			b.WriteString(escapeText(n.Text()))
			b.WriteString("</")
			b.WriteString(n.Name)
			b.WriteByte('>')
			return
		}
		for _, c := range n.Children {
			b.WriteByte('\n')
			c.writeIndented(b, depth+1)
		}
		b.WriteByte('\n')
		b.WriteString(ind)
		b.WriteString("</")
		b.WriteString(n.Name)
		b.WriteByte('>')
	}
}

func onlyText(n *Node) bool {
	for _, c := range n.Children {
		if c.Type != TextNode {
			return false
		}
	}
	return len(n.Children) > 0
}

// Shared escapers: building a strings.Replacer per call allocated on
// every text and attribute write; Replacer is safe for concurrent use.
var (
	textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	attrEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
)

func escapeText(s string) string { return textEscaper.Replace(s) }

func escapeAttr(s string) string { return attrEscaper.Replace(s) }

// Equal reports whether two subtrees are structurally identical:
// same node types, names, attribute sets and (whitespace-trimmed for
// pure-text elements) character data.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.XML() == b.XML()
}
