package ontology

import (
	"fmt"
	"sort"

	"trustvo/internal/xmldom"
)

// OWL-sketch serialization (paper Fig. 8).
//
// The prototype stored its common credential-attribute ontology in OWL,
// authored with Protégé and matched with Falcon-AO. This reproduction
// serializes ontologies in an OWL-flavoured XML sketch — Class /
// subClassOf / implementation elements — that round-trips through this
// package. The structure mirrors Fig. 8's shape: one Class per concept,
// subClassOf for is_a, and one element per credential implementation.
//
//	<Ontology about="trustvo">
//	  <Class ID="gender">
//	    <attribute name="gender"/>
//	    <implementation credType="Passport" attribute="gender"/>
//	    <implementation credType="DrivingLicense" attribute="sex"/>
//	  </Class>
//	  <Class ID="Texas_DriverLicense">
//	    <subClassOf resource="Civilian_DriverLicense"/>
//	  </Class>
//	</Ontology>

// DOM serializes the ontology as an OWL-sketch document with concepts
// sorted by name.
func (o *Ontology) DOM() *xmldom.Node {
	root := xmldom.NewElement("Ontology").SetAttr("about", "trustvo")
	for _, name := range o.Names() {
		c, _ := o.Concept(name)
		cls := xmldom.NewElement("Class").SetAttr("ID", c.Name)
		for _, p := range o.Parents(c.Name) {
			cls.AppendChild(xmldom.NewElement("subClassOf").SetAttr("resource", p))
		}
		for _, a := range c.Attributes {
			cls.AppendChild(xmldom.NewElement("attribute").SetAttr("name", a))
		}
		for _, im := range c.Implementations {
			el := xmldom.NewElement("implementation").SetAttr("credType", im.CredType)
			if im.Attribute != "" {
				el.SetAttr("attribute", im.Attribute)
			}
			cls.AppendChild(el)
		}
		root.AppendChild(cls)
	}
	syns := o.Synonyms()
	aliases := make([]string, 0, len(syns))
	for a := range syns {
		aliases = append(aliases, a)
	}
	sort.Strings(aliases)
	for _, a := range aliases {
		root.AppendChild(xmldom.NewElement("synonym").
			SetAttr("alias", a).SetAttr("concept", syns[a]))
	}
	return root
}

// XML serializes the ontology in canonical form.
func (o *Ontology) XML() string { return o.DOM().XML() }

// ParseOntology decodes an OWL-sketch document.
func ParseOntology(xmlText string) (*Ontology, error) {
	root, err := xmldom.ParseString(xmlText)
	if err != nil {
		return nil, fmt.Errorf("ontology: parse: %w", err)
	}
	if root.Name != "Ontology" {
		return nil, fmt.Errorf("ontology: root element is <%s>, want <Ontology>", root.Name)
	}
	o := New()
	type edge struct{ child, parent string }
	var edges []edge
	for _, cls := range root.Childs("Class") {
		c := &Concept{Name: cls.AttrOr("ID", "")}
		for _, a := range cls.Childs("attribute") {
			c.Attributes = append(c.Attributes, a.AttrOr("name", ""))
		}
		for _, im := range cls.Childs("implementation") {
			c.Implementations = append(c.Implementations, Implementation{
				CredType:  im.AttrOr("credType", ""),
				Attribute: im.AttrOr("attribute", ""),
			})
		}
		if err := o.Add(c); err != nil {
			return nil, err
		}
		for _, sc := range cls.Childs("subClassOf") {
			edges = append(edges, edge{child: c.Name, parent: sc.AttrOr("resource", "")})
		}
	}
	// edges are applied after all classes exist, in stable order
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].child != edges[j].child {
			return edges[i].child < edges[j].child
		}
		return edges[i].parent < edges[j].parent
	})
	for _, e := range edges {
		if err := o.AddIsA(e.child, e.parent); err != nil {
			return nil, err
		}
	}
	for _, syn := range root.Childs("synonym") {
		if err := o.AddSynonym(syn.AttrOr("alias", ""), syn.AttrOr("concept", "")); err != nil {
			return nil, err
		}
	}
	return o, nil
}
