// Package ontology implements the semantic layer of Trust-X (paper §4.3):
// reference ontologies of credential concepts, the is_a hierarchy, the
// GLUE-style Jaccard similarity matcher, and the Algorithm 1 mapping from
// policy concepts to disclosable credentials.
//
// A concept bundles a name with the credential attributes that implement
// it — the paper's example is ⟨gender; Passport.gender; DrivingLicense.sex⟩:
// the "gender" concept can be implemented by the gender attribute of a
// Passport credential or the sex attribute of a DrivingLicense credential.
// Concepts are hierarchically organized by is_a: if Ci is_a Ck, the
// information conveyed by Ci can be used to infer Ck (a Texas_DriverLicense
// holder has a Civilian_DriverLicense).
package ontology

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"unicode"
)

// Implementation identifies one concrete way a concept materializes:
// an attribute of a credential type, or a whole credential type when
// Attribute is empty.
type Implementation struct {
	CredType  string
	Attribute string
}

// String renders "CredType.Attribute" or just "CredType".
func (im Implementation) String() string {
	if im.Attribute == "" {
		return im.CredType
	}
	return im.CredType + "." + im.Attribute
}

// Concept is a node of the ontology.
type Concept struct {
	Name string
	// Attributes are the generic property names associated with the
	// concept (used for similarity matching).
	Attributes []string
	// Implementations are the credential types/attributes that realize
	// the concept.
	Implementations []Implementation
}

// Ontology is a set of concepts related by is_a edges. Each negotiation
// party maintains a local ontology and "adds more concepts to it as
// needed" (§4.3). An Ontology is safe for concurrent reads; writers must
// not race with readers (build it up front, or hold external locks).
//
// Besides concepts, an ontology carries a dictionary: the paper's
// lighter-weight companion mechanism ("dictionaries … provide a way to
// disambiguate similar names and assign a clear semantics to these
// names", §4.3). A dictionary entry maps a synonym directly onto a
// concept, short-circuiting similarity matching.
type Ontology struct {
	mu       sync.RWMutex
	concepts map[string]*Concept
	parents  map[string][]string // child -> is_a parents
	children map[string][]string // parent -> children
	byImpl   map[string][]string // credType -> concept names implemented
	synonyms map[string]string   // dictionary: alias -> concept name
}

// New returns an empty ontology.
func New() *Ontology {
	return &Ontology{
		concepts: make(map[string]*Concept),
		parents:  make(map[string][]string),
		children: make(map[string][]string),
		byImpl:   make(map[string][]string),
		synonyms: make(map[string]string),
	}
}

// Errors returned by ontology mutation and lookup.
var (
	ErrDuplicateConcept = errors.New("ontology: concept already defined")
	ErrUnknownConcept   = errors.New("ontology: unknown concept")
	ErrCycle            = errors.New("ontology: is_a edge would create a cycle")
)

// Add inserts a concept.
func (o *Ontology) Add(c *Concept) error {
	if c.Name == "" {
		return errors.New("ontology: concept without name")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.concepts[c.Name]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateConcept, c.Name)
	}
	cp := &Concept{
		Name:            c.Name,
		Attributes:      append([]string(nil), c.Attributes...),
		Implementations: append([]Implementation(nil), c.Implementations...),
	}
	o.concepts[c.Name] = cp
	for _, im := range cp.Implementations {
		o.byImpl[im.CredType] = append(o.byImpl[im.CredType], c.Name)
	}
	return nil
}

// MustAdd is Add that panics on error, for fixtures.
func (o *Ontology) MustAdd(c *Concept) *Ontology {
	if err := o.Add(c); err != nil {
		panic(err)
	}
	return o
}

// AddIsA records that child is_a parent. Both concepts must exist and
// the edge must not create a cycle.
func (o *Ontology) AddIsA(child, parent string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.concepts[child]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownConcept, child)
	}
	if _, ok := o.concepts[parent]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownConcept, parent)
	}
	if child == parent || o.reachable(child, parent, o.children) {
		return fmt.Errorf("%w: %s is_a %s", ErrCycle, child, parent)
	}
	o.parents[child] = append(o.parents[child], parent)
	o.children[parent] = append(o.children[parent], child)
	return nil
}

// MustAddIsA is AddIsA that panics on error.
func (o *Ontology) MustAddIsA(child, parent string) *Ontology {
	if err := o.AddIsA(child, parent); err != nil {
		panic(err)
	}
	return o
}

// reachable reports whether `to` is reachable from `from` over edges.
// Callers hold o.mu.
func (o *Ontology) reachable(from, to string, edges map[string][]string) bool {
	if from == to {
		return true
	}
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range edges[n] {
			if next == to {
				return true
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// Concept returns the named concept.
func (o *Ontology) Concept(name string) (*Concept, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	c, ok := o.concepts[name]
	return c, ok
}

// AddSynonym records a dictionary entry: alias resolves to the named
// concept (which must exist).
func (o *Ontology) AddSynonym(alias, concept string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.concepts[concept]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownConcept, concept)
	}
	if _, clash := o.concepts[alias]; clash {
		return fmt.Errorf("ontology: synonym %q shadows an existing concept", alias)
	}
	o.synonyms[alias] = concept
	return nil
}

// Resolve applies the dictionary: it returns the canonical concept name
// for an alias, or the input unchanged when no entry exists.
func (o *Ontology) Resolve(name string) string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if canon, ok := o.synonyms[name]; ok {
		return canon
	}
	return name
}

// Synonyms returns the dictionary as a copy.
func (o *Ontology) Synonyms() map[string]string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make(map[string]string, len(o.synonyms))
	for k, v := range o.synonyms {
		out[k] = v
	}
	return out
}

// Len returns the number of concepts.
func (o *Ontology) Len() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.concepts)
}

// Names returns all concept names, sorted.
func (o *Ontology) Names() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]string, 0, len(o.concepts))
	for n := range o.concepts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Ancestors returns every concept transitively reachable via is_a from
// name (excluding name itself), in BFS order.
func (o *Ontology) Ancestors(name string) []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.closure(name, o.parents)
}

// Descendants returns every concept that transitively is_a name
// (excluding name itself), in BFS order.
func (o *Ontology) Descendants(name string) []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.closure(name, o.children)
}

func (o *Ontology) closure(name string, edges map[string][]string) []string {
	var out []string
	seen := map[string]bool{name: true}
	queue := []string{name}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, next := range edges[n] {
			if !seen[next] {
				seen[next] = true
				out = append(out, next)
				queue = append(queue, next)
			}
		}
	}
	return out
}

// IsA reports whether child transitively is_a ancestor (true when equal).
func (o *Ontology) IsA(child, ancestor string) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.reachable(child, ancestor, o.parents)
}

// Parents returns the direct is_a parents of name.
func (o *Ontology) Parents(name string) []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return append([]string(nil), o.parents[name]...)
}

// ImplementationsOf returns all implementations that satisfy the named
// concept: its own and those of every descendant (a Texas license
// implements the civilian-license concept).
func (o *Ontology) ImplementationsOf(name string) []Implementation {
	c, ok := o.Concept(name)
	if !ok {
		return nil
	}
	out := append([]Implementation(nil), c.Implementations...)
	for _, d := range o.Descendants(name) {
		if dc, ok := o.Concept(d); ok {
			out = append(out, dc.Implementations...)
		}
	}
	return out
}

// ConceptsFor returns the concepts directly implemented by the given
// credential type, sorted.
func (o *Ontology) ConceptsFor(credType string) []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := append([]string(nil), o.byImpl[credType]...)
	sort.Strings(out)
	return out
}

// ---- GLUE-style similarity matching (§4.3.1, ComputeSimilarity) ----

// Tokens decomposes an identifier into lowercase word tokens: camelCase,
// snake_case, kebab-case, dots and spaces all split.
func Tokens(s string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	runes := []rune(s)
	for i, r := range runes {
		switch {
		case r == '_' || r == '-' || r == '.' || r == ' ' || r == '/':
			flush()
		case unicode.IsUpper(r):
			// split at lower->Upper boundaries (camelCase) but keep
			// acronym runs together (ABCDef splits before Def)
			if i > 0 && (unicode.IsLower(runes[i-1]) ||
				(i+1 < len(runes) && unicode.IsLower(runes[i+1]) && unicode.IsUpper(runes[i-1]))) {
				flush()
			}
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

// featureSet builds the token set the Jaccard coefficient runs over:
// name tokens and attribute tokens. Implementations are deliberately
// excluded — they describe credential formats, not the meaning of the
// concept, and two ontologies mapping the same concept onto different
// local formats must still match.
func featureSet(c *Concept) map[string]bool {
	fs := make(map[string]bool)
	for _, t := range Tokens(c.Name) {
		fs[t] = true
	}
	for _, a := range c.Attributes {
		for _, t := range Tokens(a) {
			fs[t] = true
		}
	}
	return fs
}

// ComputeSimilarity returns the Jaccard coefficient of the two concepts'
// feature sets — the matching measure the paper adopts from the GLUE
// mapping tool: |A ∩ B| / |A ∪ B|, in [0,1].
func ComputeSimilarity(a, b *Concept) float64 {
	fa, fb := featureSet(a), featureSet(b)
	if len(fa) == 0 && len(fb) == 0 {
		return 0
	}
	inter := 0
	for t := range fa {
		if fb[t] {
			inter++
		}
	}
	union := len(fa) + len(fb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Match is one row of an ontology mapping M(O1←O2): a local concept with
// its confidence against a foreign concept.
type Match struct {
	Concept    string
	Confidence float64
}

// BestMatch finds the local concept most similar to the foreign one,
// scanning every concept as the paper prescribes ("taking C and matching
// it with every concept in ontology O2"). It returns a zero Match when
// the ontology is empty.
func (o *Ontology) BestMatch(foreign *Concept) Match {
	o.mu.RLock() //lint:allow nakedlock snapshot names only; the O(n) matching below runs unlocked
	names := make([]string, 0, len(o.concepts))
	for n := range o.concepts {
		names = append(names, n)
	}
	o.mu.RUnlock()
	sort.Strings(names) // deterministic tie-breaking
	best := Match{}
	for _, n := range names {
		c, _ := o.Concept(n)
		if sim := ComputeSimilarity(foreign, c); sim > best.Confidence {
			best = Match{Concept: n, Confidence: sim}
		}
	}
	return best
}

// BestMatchName is BestMatch for a bare concept name, building a
// name-only pseudo-concept.
func (o *Ontology) BestMatchName(name string) Match {
	return o.BestMatch(&Concept{Name: name})
}
