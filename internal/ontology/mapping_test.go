package ontology

import (
	"errors"
	"testing"

	"trustvo/internal/xtnl"
)

func mapperFixture(t testing.TB) *Mapper {
	t.Helper()
	o := paperOntology(t)
	p := xtnl.NewProfile("AerospaceCo")
	p.Add(
		&xtnl.Credential{ID: "pp", Type: "Passport", Sensitivity: xtnl.SensitivityHigh,
			Attributes: []xtnl.Attribute{{Name: "gender", Value: "F"}}},
		&xtnl.Credential{ID: "dl", Type: "DrivingLicense", Sensitivity: xtnl.SensitivityMedium,
			Attributes: []xtnl.Attribute{{Name: "sex", Value: "F"}}},
		&xtnl.Credential{ID: "iso", Type: "ISO 9000 Certified", Issuer: "INFN", Sensitivity: xtnl.SensitivityLow,
			Attributes: []xtnl.Attribute{{Name: "QualityRegulation", Value: "UNI EN ISO 9000"}}},
		&xtnl.Credential{ID: "tx", Type: "TexasDrivingLicense", Sensitivity: xtnl.SensitivityLow},
	)
	return &Mapper{Ontology: o, Profile: p}
}

// TestAlgorithm1SensitivityPreference checks the CredCluster behaviour of
// Algorithm 1: among the credentials implementing "gender" (a high-
// sensitivity Passport and a medium-sensitivity DrivingLicense), the
// less sensitive DrivingLicense is disclosed.
func TestAlgorithm1SensitivityPreference(t *testing.T) {
	m := mapperFixture(t)
	got, err := m.MapConcept("gender")
	if err != nil {
		t.Fatal(err)
	}
	if got.Credential.ID != "dl" {
		t.Fatalf("selected %s, want dl (lowest sensitivity cluster)", got.Credential.ID)
	}
	if got.Confidence != 1 || got.Matched != "gender" {
		t.Fatalf("direct hit should have confidence 1: %+v", got)
	}
}

// TestAlgorithm1SimilarityFallback checks lines 20–29: a concept missing
// from the local ontology resolves through ComputeSimilarity.
func TestAlgorithm1SimilarityFallback(t *testing.T) {
	m := mapperFixture(t)
	got, err := m.MapConcept("QualityCertification")
	if err != nil {
		t.Fatal(err)
	}
	if got.Matched != "quality-certification" {
		t.Fatalf("matched %q", got.Matched)
	}
	if got.Confidence >= 1 || got.Confidence < m.minConfidence() {
		t.Fatalf("confidence = %.2f", got.Confidence)
	}
	if got.Credential.ID != "iso" {
		t.Fatalf("selected %s, want iso", got.Credential.ID)
	}
}

func TestAlgorithm1NoMatch(t *testing.T) {
	m := mapperFixture(t)
	if _, err := m.MapConcept("completely-unrelated-thing"); !errors.Is(err, ErrNoMatch) {
		t.Fatalf("err = %v, want ErrNoMatch", err)
	}
}

func TestAlgorithm1NoCredential(t *testing.T) {
	m := mapperFixture(t)
	m.Profile = xtnl.NewProfile("empty")
	if _, err := m.MapConcept("gender"); !errors.Is(err, ErrNoCredential) {
		t.Fatalf("err = %v, want ErrNoCredential", err)
	}
}

func TestAlgorithm1DescendantImplementation(t *testing.T) {
	// Civilian_DriverLicense is implemented by DrivingLicense AND, via
	// is_a, by TexasDrivingLicense; the Texas credential is sensitivity
	// low so it wins.
	m := mapperFixture(t)
	got, err := m.MapConcept("Civilian_DriverLicense")
	if err != nil {
		t.Fatal(err)
	}
	if got.Credential.ID != "tx" {
		t.Fatalf("selected %s, want tx", got.Credential.ID)
	}
}

func TestAlgorithm1ImplementationAttributeRequired(t *testing.T) {
	o := New()
	o.MustAdd(&Concept{Name: "gender",
		Implementations: []Implementation{{CredType: "Passport", Attribute: "gender"}}})
	p := xtnl.NewProfile("x")
	p.Add(&xtnl.Credential{ID: "pp", Type: "Passport"}) // lacks the gender attribute
	m := &Mapper{Ontology: o, Profile: p}
	if _, err := m.MapConcept("gender"); !errors.Is(err, ErrNoCredential) {
		t.Fatalf("err = %v, want ErrNoCredential", err)
	}
}

func TestMapConjunction(t *testing.T) {
	m := mapperFixture(t)
	got, err := m.Map([]string{"gender", "quality-certification"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("mappings = %d", len(got))
	}
	if _, err := m.Map([]string{"gender", "nope-nope-nope"}); err == nil {
		t.Fatal("conjunction with unresolvable concept must fail")
	}
}

func TestAbstractPolicy(t *testing.T) {
	o := paperOntology(t)
	concrete := &xtnl.Policy{
		Resource: "VoMembership",
		Terms: []xtnl.Term{
			{CredType: "WebDesignerQuality", Conditions: []string{"/credential/content/regulation='UNI EN ISO 9000'"}},
			{CredType: "UnmappedType"},
		},
	}
	abs := Abstract(concrete, o, 1)
	if got, ok := AsConceptRef(abs.Terms[0].CredType); !ok || got != "quality-certification" {
		t.Fatalf("term 0 not abstracted: %+v", abs.Terms[0])
	}
	// conditions preserved
	if len(abs.Terms[0].Conditions) != 1 {
		t.Fatalf("conditions lost: %+v", abs.Terms[0])
	}
	// unmapped types stay concrete
	if _, ok := AsConceptRef(abs.Terms[1].CredType); ok {
		t.Fatalf("unmapped term abstracted: %+v", abs.Terms[1])
	}
	if len(abs.Concepts) != 1 || abs.Concepts[0] != "quality-certification" {
		t.Fatalf("Concepts = %v", abs.Concepts)
	}
}

func TestAbstractClimbsAncestors(t *testing.T) {
	o := paperOntology(t)
	p := &xtnl.Policy{Resource: "R", Terms: []xtnl.Term{{CredType: "TexasDrivingLicense"}}}
	abs1 := Abstract(p, o, 1)
	if got, _ := AsConceptRef(abs1.Terms[0].CredType); got != "Texas_DriverLicense" {
		t.Fatalf("level 1 = %q", got)
	}
	abs2 := Abstract(p, o, 2)
	if got, _ := AsConceptRef(abs2.Terms[0].CredType); got != "Civilian_DriverLicense" {
		t.Fatalf("level 2 = %q", got)
	}
	// climbing past the root saturates
	abs9 := Abstract(p, o, 9)
	if got, _ := AsConceptRef(abs9.Terms[0].CredType); got != "Civilian_DriverLicense" {
		t.Fatalf("level 9 = %q", got)
	}
}

func TestResolveTermConcrete(t *testing.T) {
	m := mapperFixture(t)
	creds, err := m.ResolveTerm(xtnl.Term{CredType: "Passport"})
	if err != nil || len(creds) != 1 || creds[0].ID != "pp" {
		t.Fatalf("concrete resolve = %v, %v", creds, err)
	}
}

func TestResolveTermConcept(t *testing.T) {
	m := mapperFixture(t)
	creds, err := m.ResolveTerm(xtnl.Term{CredType: ConceptRef("gender")})
	if err != nil || len(creds) == 0 {
		t.Fatalf("concept resolve = %v, %v", creds, err)
	}
	if creds[0].ID != "dl" {
		t.Fatalf("concept resolve picked %s, want dl", creds[0].ID)
	}
}

func TestResolveTermConceptWithConditions(t *testing.T) {
	m := mapperFixture(t)
	// the mapped (least sensitive) credential fails the condition, but a
	// sibling implementation satisfies it
	creds, err := m.ResolveTerm(xtnl.Term{
		CredType:   ConceptRef("quality-certification"),
		Conditions: []string{"/credential/header/issuer='INFN'"},
	})
	if err != nil || len(creds) != 1 || creds[0].ID != "iso" {
		t.Fatalf("conditioned concept resolve = %v, %v", creds, err)
	}
	// unsatisfiable condition
	_, err = m.ResolveTerm(xtnl.Term{
		CredType:   ConceptRef("gender"),
		Conditions: []string{"/credential/header/issuer='nobody'"},
	})
	if !errors.Is(err, ErrNoCredential) {
		t.Fatalf("err = %v, want ErrNoCredential", err)
	}
}

func TestConceptRefHelpers(t *testing.T) {
	ref := ConceptRef("gender")
	name, ok := AsConceptRef(ref)
	if !ok || name != "gender" {
		t.Fatalf("AsConceptRef = %q %v", name, ok)
	}
	if _, ok := AsConceptRef("Passport"); ok {
		t.Fatal("plain type treated as concept ref")
	}
	if _, ok := AsConceptRef("concept:"); ok {
		t.Fatal("empty concept ref accepted")
	}
}

func BenchmarkMapConceptDirect(b *testing.B) {
	m := mapperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MapConcept("gender"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapConceptMiss(b *testing.B) {
	m := mapperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MapConcept("QualityCertification"); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDictionarySynonyms covers the §4.3 dictionary mechanism: exact
// synonyms resolve to their canonical concept without similarity
// matching, with confidence 1.
func TestDictionarySynonyms(t *testing.T) {
	m := mapperFixture(t)
	if err := m.Ontology.AddSynonym("sesso", "gender"); err != nil {
		t.Fatal(err)
	}
	got, err := m.MapConcept("sesso")
	if err != nil {
		t.Fatal(err)
	}
	if got.Matched != "gender" || got.Confidence != 1 {
		t.Fatalf("synonym mapping = %+v", got)
	}
	if got.Credential.ID != "dl" {
		t.Fatalf("synonym selected %s", got.Credential.ID)
	}
	// dictionary errors
	if err := m.Ontology.AddSynonym("x", "missing-concept"); err == nil {
		t.Fatal("synonym to unknown concept accepted")
	}
	if err := m.Ontology.AddSynonym("gender", "quality-certification"); err == nil {
		t.Fatal("synonym shadowing a concept accepted")
	}
	// Resolve of unknown name is identity
	if got := m.Ontology.Resolve("whatever"); got != "whatever" {
		t.Fatalf("Resolve = %q", got)
	}
}

func TestSynonymsSurviveOWLRoundTrip(t *testing.T) {
	o := paperOntology(t)
	o.AddSynonym("sesso", "gender")
	o.AddSynonym("qualitaet", "quality-certification")
	re, err := ParseOntology(o.XML())
	if err != nil {
		t.Fatal(err)
	}
	if re.Resolve("sesso") != "gender" || re.Resolve("qualitaet") != "quality-certification" {
		t.Fatalf("synonyms lost: %v", re.Synonyms())
	}
	// broken synonym entries rejected on parse
	if _, err := ParseOntology(`<Ontology><Class ID="a"/><synonym alias="x" concept="nope"/></Ontology>`); err == nil {
		t.Fatal("dangling synonym accepted")
	}
}
