package ontology

import (
	"errors"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// paperOntology builds the ontology of the paper's running examples:
// the gender concept ⟨gender; Passport.gender; DrivingLicense.sex⟩ and
// the Texas_DriverLicense is_a Civilian_DriverLicense hierarchy, plus
// the aircraft-scenario concepts.
func paperOntology(t testing.TB) *Ontology {
	t.Helper()
	o := New()
	o.MustAdd(&Concept{
		Name:       "gender",
		Attributes: []string{"gender"},
		Implementations: []Implementation{
			{CredType: "Passport", Attribute: "gender"},
			{CredType: "DrivingLicense", Attribute: "sex"},
		},
	})
	o.MustAdd(&Concept{
		Name:            "Civilian_DriverLicense",
		Implementations: []Implementation{{CredType: "DrivingLicense"}},
	})
	o.MustAdd(&Concept{
		Name:            "Texas_DriverLicense",
		Implementations: []Implementation{{CredType: "TexasDrivingLicense"}},
	})
	o.MustAddIsA("Texas_DriverLicense", "Civilian_DriverLicense")
	o.MustAdd(&Concept{
		Name:       "quality-certification",
		Attributes: []string{"regulation"},
		Implementations: []Implementation{
			{CredType: "ISO 9000 Certified", Attribute: "QualityRegulation"},
			{CredType: "WebDesignerQuality"},
		},
	})
	return o
}

func TestIsAHierarchy(t *testing.T) {
	o := paperOntology(t)
	if !o.IsA("Texas_DriverLicense", "Civilian_DriverLicense") {
		t.Fatal("Texas is_a Civilian should hold")
	}
	if !o.IsA("gender", "gender") {
		t.Fatal("is_a is reflexive")
	}
	if o.IsA("Civilian_DriverLicense", "Texas_DriverLicense") {
		t.Fatal("is_a must not be symmetric")
	}
	if got := o.Ancestors("Texas_DriverLicense"); len(got) != 1 || got[0] != "Civilian_DriverLicense" {
		t.Fatalf("Ancestors = %v", got)
	}
	if got := o.Descendants("Civilian_DriverLicense"); len(got) != 1 || got[0] != "Texas_DriverLicense" {
		t.Fatalf("Descendants = %v", got)
	}
}

func TestAddErrors(t *testing.T) {
	o := paperOntology(t)
	if err := o.Add(&Concept{Name: "gender"}); !errors.Is(err, ErrDuplicateConcept) {
		t.Fatalf("duplicate: %v", err)
	}
	if err := o.Add(&Concept{}); err == nil {
		t.Fatal("nameless concept accepted")
	}
	if err := o.AddIsA("gender", "missing"); !errors.Is(err, ErrUnknownConcept) {
		t.Fatalf("unknown parent: %v", err)
	}
	if err := o.AddIsA("missing", "gender"); !errors.Is(err, ErrUnknownConcept) {
		t.Fatalf("unknown child: %v", err)
	}
	if err := o.AddIsA("Civilian_DriverLicense", "Texas_DriverLicense"); !errors.Is(err, ErrCycle) {
		t.Fatalf("cycle: %v", err)
	}
	if err := o.AddIsA("gender", "gender"); !errors.Is(err, ErrCycle) {
		t.Fatalf("self-loop: %v", err)
	}
}

func TestImplementationsOfIncludesDescendants(t *testing.T) {
	o := paperOntology(t)
	impls := o.ImplementationsOf("Civilian_DriverLicense")
	var types []string
	for _, im := range impls {
		types = append(types, im.CredType)
	}
	sort.Strings(types)
	want := []string{"DrivingLicense", "TexasDrivingLicense"}
	if !reflect.DeepEqual(types, want) {
		t.Fatalf("implementations = %v, want %v", types, want)
	}
	if got := o.ImplementationsOf("missing"); got != nil {
		t.Fatalf("implementations of missing = %v", got)
	}
}

func TestConceptsFor(t *testing.T) {
	o := paperOntology(t)
	if got := o.ConceptsFor("Passport"); len(got) != 1 || got[0] != "gender" {
		t.Fatalf("ConceptsFor(Passport) = %v", got)
	}
	if got := o.ConceptsFor("Unknown"); len(got) != 0 {
		t.Fatalf("ConceptsFor(Unknown) = %v", got)
	}
}

func TestTokens(t *testing.T) {
	cases := map[string][]string{
		"WebDesignerQuality":    {"web", "designer", "quality"},
		"quality-certification": {"quality", "certification"},
		"Texas_DriverLicense":   {"texas", "driver", "license"},
		"Passport.gender":       {"passport", "gender"},
		"ISO 9000 Certified":    {"iso", "9000", "certified"},
		"AAAccreditation":       {"aa", "accreditation"},
		"":                      nil,
	}
	for in, want := range cases {
		if got := Tokens(in); !reflect.DeepEqual(got, want) {
			t.Errorf("Tokens(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestComputeSimilarity(t *testing.T) {
	a := &Concept{Name: "quality-certification", Attributes: []string{"regulation"}}
	b := &Concept{Name: "QualityCertification"}
	sim := ComputeSimilarity(a, b)
	if sim <= 0.5 {
		t.Fatalf("similar concepts scored %.2f", sim)
	}
	c := &Concept{Name: "storage-capacity"}
	if s := ComputeSimilarity(a, c); s != 0 {
		t.Fatalf("disjoint concepts scored %.2f", s)
	}
	// identical concepts score 1
	if s := ComputeSimilarity(a, a); s != 1 {
		t.Fatalf("self similarity = %.2f", s)
	}
	// empty concepts score 0, not NaN
	if s := ComputeSimilarity(&Concept{}, &Concept{}); s != 0 {
		t.Fatalf("empty similarity = %.2f", s)
	}
}

func TestSimilarityProperties(t *testing.T) {
	gen := func(name string, attrs []string) *Concept {
		return &Concept{Name: name, Attributes: attrs}
	}
	f := func(n1, n2 string, a1, a2 []string) bool {
		c1, c2 := gen(n1, a1), gen(n2, a2)
		s12 := ComputeSimilarity(c1, c2)
		s21 := ComputeSimilarity(c2, c1)
		// symmetric, bounded
		return s12 == s21 && s12 >= 0 && s12 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBestMatch(t *testing.T) {
	o := paperOntology(t)
	m := o.BestMatch(&Concept{Name: "QualityCertification", Attributes: []string{"regulation"}})
	if m.Concept != "quality-certification" {
		t.Fatalf("BestMatch = %+v", m)
	}
	if m.Confidence <= 0.4 {
		t.Fatalf("confidence too low: %.2f", m.Confidence)
	}
	if got := New().BestMatchName("anything"); got.Concept != "" || got.Confidence != 0 {
		t.Fatalf("BestMatch on empty ontology = %+v", got)
	}
}

func TestNamesSortedAndLen(t *testing.T) {
	o := paperOntology(t)
	names := o.Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names not sorted: %v", names)
	}
	if o.Len() != len(names) || o.Len() != 4 {
		t.Fatalf("Len = %d, names = %d", o.Len(), len(names))
	}
}

func TestOWLRoundTrip(t *testing.T) {
	o := paperOntology(t)
	re, err := ParseOntology(o.XML())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(re.Names(), o.Names()) {
		t.Fatalf("names differ: %v vs %v", re.Names(), o.Names())
	}
	if !re.IsA("Texas_DriverLicense", "Civilian_DriverLicense") {
		t.Fatal("is_a edge lost in round trip")
	}
	c, ok := re.Concept("gender")
	if !ok || len(c.Implementations) != 2 {
		t.Fatalf("gender concept lost: %+v", c)
	}
	if c.Implementations[0].CredType != "Passport" || c.Implementations[0].Attribute != "gender" {
		t.Fatalf("implementation lost: %+v", c.Implementations)
	}
}

// TestFig8OntologySketch checks the OWL-sketch shape of Fig. 8: a class
// per concept with implementations mapping different credential formats.
func TestFig8OntologySketch(t *testing.T) {
	o := paperOntology(t)
	xml := o.XML()
	for _, frag := range []string{
		`<Ontology`,
		`<Class ID="gender">`,
		`<implementation attribute="gender" credType="Passport"/>`,
		`<implementation attribute="sex" credType="DrivingLicense"/>`,
		`<subClassOf resource="Civilian_DriverLicense"/>`,
	} {
		if !contains(xml, frag) {
			t.Errorf("OWL sketch missing %q in:\n%s", frag, xml)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestParseOntologyErrors(t *testing.T) {
	cases := []string{
		`not xml`,
		`<Wrong/>`,
		`<Ontology><Class ID=""/></Ontology>`,
		`<Ontology><Class ID="a"/><Class ID="a"/></Ontology>`,
		`<Ontology><Class ID="a"><subClassOf resource="missing"/></Class></Ontology>`,
	}
	for _, c := range cases {
		if _, err := ParseOntology(c); err == nil {
			t.Errorf("ParseOntology(%q): expected error", c)
		}
	}
}

func BenchmarkComputeSimilarity(b *testing.B) {
	a := &Concept{Name: "quality-certification", Attributes: []string{"regulation", "standard", "level"}}
	c := &Concept{Name: "QualityCertificate", Attributes: []string{"regulation"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeSimilarity(a, c)
	}
}

// BenchmarkBestMatch measures the Algorithm 1 miss path as the local
// ontology grows (EXT-4).
func benchmarkBestMatch(b *testing.B, n int) {
	o := New()
	for i := 0; i < n; i++ {
		o.MustAdd(&Concept{
			Name:       concatName("concept", i),
			Attributes: []string{concatName("attr", i), concatName("prop", i%7)},
		})
	}
	foreign := &Concept{Name: "ConceptQuality", Attributes: []string{"prop3"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.BestMatch(foreign)
	}
}

func concatName(p string, i int) string {
	return p + "-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
}

func BenchmarkBestMatch32(b *testing.B)   { benchmarkBestMatch(b, 32) }
func BenchmarkBestMatch256(b *testing.B)  { benchmarkBestMatch(b, 256) }
func BenchmarkBestMatch2048(b *testing.B) { benchmarkBestMatch(b, 2048) }
