package ontology

import (
	"errors"
	"fmt"
	"strings"

	"trustvo/internal/xtnl"
)

// This file implements Algorithm 1 of the paper ("Mapping algorithm"):
// given a disclosure policy expressed as a list of concepts, find for
// each concept a local credential to disclose. The concept is first
// looked up in the local ontology; if absent, the most similar local
// concept is selected via ComputeSimilarity; then the candidate
// credentials implementing the concept are clustered by sensitivity
// (CredCluster) and the least sensitive available credential wins.

// Mapper resolves policy concepts against a party's local ontology and
// X-Profile.
type Mapper struct {
	Ontology *Ontology
	Profile  *xtnl.Profile
	// MinConfidence is the similarity floor below which a foreign
	// concept is considered unmatchable. Zero means the default 0.34
	// (at least a third of the feature tokens shared).
	MinConfidence float64
}

// Mapping is the result for one requested concept.
type Mapping struct {
	// Requested is the concept named in the counterpart's policy.
	Requested string
	// Matched is the local concept that answered it (== Requested when
	// the concept exists locally).
	Matched string
	// Confidence is 1 for direct hits, otherwise the Jaccard similarity
	// of the chosen local concept.
	Confidence float64
	// Credential is the selected local credential.
	Credential *xtnl.Credential
}

// Errors reported by mapping.
var (
	ErrNoMatch      = errors.New("ontology: no local concept matches")
	ErrNoCredential = errors.New("ontology: no local credential implements concept")
)

func (m *Mapper) minConfidence() float64 {
	if m.MinConfidence > 0 {
		return m.MinConfidence
	}
	return 0.34
}

// MapConcept resolves a single concept name (Algorithm 1, lines 1–29 for
// one Ci).
func (m *Mapper) MapConcept(name string) (Mapping, error) {
	// Dictionary first (§4.3): an exact synonym resolves without any
	// similarity computation.
	name = m.Ontology.Resolve(name)
	matched := name
	confidence := 1.0
	if _, ok := m.Ontology.Concept(name); !ok {
		// Lines 20–29: find the most similar local concept.
		best := m.Ontology.BestMatchName(name)
		if best.Concept == "" || best.Confidence < m.minConfidence() {
			return Mapping{}, fmt.Errorf("%w: %q (best %q at %.2f)",
				ErrNoMatch, name, best.Concept, best.Confidence)
		}
		matched = best.Concept
		confidence = best.Confidence
	}
	cred, err := m.selectCredential(matched)
	if err != nil {
		return Mapping{}, err
	}
	return Mapping{Requested: name, Matched: matched, Confidence: confidence, Credential: cred}, nil
}

// selectCredential implements lines 4–18: collect the credentials
// associated with the concept, cluster them by sensitivity, and return
// one from the lowest non-empty cluster.
func (m *Mapper) selectCredential(concept string) (*xtnl.Credential, error) {
	impls := m.Ontology.ImplementationsOf(concept)
	var cands []*xtnl.Credential
	seen := make(map[string]bool)
	for _, im := range impls {
		for _, c := range m.Profile.ByType(im.CredType) {
			if im.Attribute != "" {
				if _, ok := c.Attr(im.Attribute); !ok {
					continue // implementation names an attribute the credential lacks
				}
			}
			if !seen[c.ID] {
				seen[c.ID] = true
				cands = append(cands, c)
			}
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoCredential, concept)
	}
	for _, s := range []xtnl.Sensitivity{xtnl.SensitivityLow, xtnl.SensitivityMedium, xtnl.SensitivityHigh} {
		if cluster := xtnl.Cluster(cands, s); len(cluster) > 0 {
			return cluster[0], nil
		}
	}
	// unreachable: every credential belongs to one of the three clusters
	return cands[0], nil
}

// Map resolves every concept of a policy (Algorithm 1's outer loop).
// It fails on the first unresolvable concept — a concept-level policy is
// a conjunction, so a single miss means the policy cannot be satisfied.
func (m *Mapper) Map(concepts []string) ([]Mapping, error) {
	out := make([]Mapping, 0, len(concepts))
	for _, c := range concepts {
		mp, err := m.MapConcept(c)
		if err != nil {
			return nil, err
		}
		out = append(out, mp)
	}
	return out, nil
}

// ---- policy abstraction (§4.3.1, first case) ----

// Abstract rewrites a concrete disclosure policy into a concept-level
// one: each term's credential type is replaced by a concept it
// implements, "which [is] more generic and disclose[s] less information".
// levels > 1 climbs the is_a hierarchy that many extra steps ("the
// process can be iterated so as to hide even more information, if the
// ancestor concept is used").
//
// Terms whose credential type implements no known concept are left
// concrete. Conditions are preserved: they still constrain whatever
// credential the counterpart eventually maps the concept back to.
func Abstract(p *xtnl.Policy, o *Ontology, levels int) *xtnl.Policy {
	if levels < 1 {
		levels = 1
	}
	out := &xtnl.Policy{
		ID:       p.ID,
		Resource: p.Resource,
		Deliver:  p.Deliver,
	}
	for _, t := range p.Terms {
		nt := xtnl.Term{CredType: t.CredType, Conditions: append([]string(nil), t.Conditions...)}
		if !t.Wildcard() {
			if concepts := o.ConceptsFor(t.CredType); len(concepts) > 0 {
				name := concepts[0]
				for i := 1; i < levels; i++ {
					parents := o.Parents(name)
					if len(parents) == 0 {
						break
					}
					name = parents[0]
				}
				nt.CredType = ConceptRef(name)
				// Conditions are re-phrased against the concept's
				// canonical attribute so the receiver can map them onto
				// its own implementation's attribute names.
				nt.Conditions = o.ToConceptConditions(name, t.CredType, t.Conditions)
				out.Concepts = append(out.Concepts, name)
			}
		}
		out.Terms = append(out.Terms, nt)
	}
	return out
}

// Condition translation between naming schemes (§4.3): a concept-level
// policy phrases its XPath conditions against the concept's canonical
// attribute (the first entry of Concept.Attributes); each side rewrites
// them to/from the attribute name of its own implementation. The
// rewrite replaces "content/<name>" references at identifier boundaries.

// canonicalAttr returns the concept's canonical attribute name, "" when
// the concept declares none.
func (o *Ontology) canonicalAttr(concept string) string {
	c, ok := o.Concept(concept)
	if !ok || len(c.Attributes) == 0 {
		return ""
	}
	return c.Attributes[0]
}

// implAttrFor returns the implementation attribute that realizes the
// concept for the given credential type ("" when the implementation
// binds the whole credential or is unknown).
func (o *Ontology) implAttrFor(concept, credType string) string {
	for _, im := range o.ImplementationsOf(concept) {
		if im.CredType == credType {
			return im.Attribute
		}
	}
	return ""
}

// replaceAttrRef rewrites "content/<from>" into "content/<to>" at
// identifier boundaries, leaving longer attribute names intact.
func replaceAttrRef(cond, from, to string) string {
	if from == "" || to == "" || from == to {
		return cond
	}
	marker := "content/" + from
	var b strings.Builder
	for {
		i := strings.Index(cond, marker)
		if i < 0 {
			b.WriteString(cond)
			return b.String()
		}
		end := i + len(marker)
		boundary := end >= len(cond) || !isIdentByte(cond[end])
		b.WriteString(cond[:i])
		if boundary {
			b.WriteString("content/" + to)
		} else {
			b.WriteString(marker)
		}
		cond = cond[end:]
	}
}

func isIdentByte(c byte) bool {
	return c == '_' || c == '-' || c == '.' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// ToConceptConditions rewrites conditions phrased against credType's
// implementation attribute into the concept's canonical attribute.
func (o *Ontology) ToConceptConditions(concept, credType string, conds []string) []string {
	canon := o.canonicalAttr(concept)
	impl := o.implAttrFor(concept, credType)
	if canon == "" || impl == "" || canon == impl {
		return append([]string(nil), conds...)
	}
	out := make([]string, len(conds))
	for i, c := range conds {
		out[i] = replaceAttrRef(c, impl, canon)
	}
	return out
}

// ToImplConditions rewrites concept-level conditions into the attribute
// naming of the given credential type's implementation.
func (o *Ontology) ToImplConditions(concept, credType string, conds []string) []string {
	canon := o.canonicalAttr(concept)
	impl := o.implAttrFor(concept, credType)
	if canon == "" || impl == "" || canon == impl {
		return append([]string(nil), conds...)
	}
	out := make([]string, len(conds))
	for i, c := range conds {
		out[i] = replaceAttrRef(c, canon, impl)
	}
	return out
}

// conceptPrefix marks a term credential-type as a concept reference
// rather than a concrete credential type.
const conceptPrefix = "concept:"

// ConceptRef builds a concept-reference term type.
func ConceptRef(concept string) string { return conceptPrefix + concept }

// AsConceptRef reports whether a term type is a concept reference, and
// returns the concept name.
func AsConceptRef(termType string) (string, bool) {
	if len(termType) > len(conceptPrefix) && termType[:len(conceptPrefix)] == conceptPrefix {
		return termType[len(conceptPrefix):], true
	}
	return "", false
}

// ResolveTerm interprets a possibly concept-level term against the local
// ontology and profile (the receiving side of §4.3.1): for a concept
// reference it runs Algorithm 1 and returns the concrete credentials the
// term may be satisfied with; for a concrete term it defers to the
// profile. The returned credentials also satisfy the term's conditions.
func (m *Mapper) ResolveTerm(t xtnl.Term) ([]*xtnl.Credential, error) {
	concept, isConcept := AsConceptRef(t.CredType)
	if !isConcept {
		return m.Profile.Satisfying(t), nil
	}
	mp, err := m.MapConcept(concept)
	if err != nil {
		return nil, err
	}
	// The mapped credential must additionally satisfy the term's
	// conditions — translated into the implementation's own attribute
	// naming; fall back to any other implementation that does.
	check := func(c *xtnl.Credential) bool {
		conds := m.Ontology.ToImplConditions(mp.Matched, c.Type, t.Conditions)
		return xtnl.Term{Conditions: conds}.SatisfiedBy(c)
	}
	if check(mp.Credential) {
		return []*xtnl.Credential{mp.Credential}, nil
	}
	var out []*xtnl.Credential
	for _, im := range m.Ontology.ImplementationsOf(mp.Matched) {
		for _, c := range m.Profile.ByType(im.CredType) {
			if check(c) {
				out = append(out, c)
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: %q with conditions %v", ErrNoCredential, concept, t.Conditions)
	}
	return out, nil
}
