package registry

import (
	"testing"

	"trustvo/internal/xmldom"
)

func TestPublishLookupWithdraw(t *testing.T) {
	r := New()
	d := &Description{
		Provider:     "HPCServiceCo",
		Service:      "NumericalSimulation",
		Capabilities: []string{"simulation", "cfd"},
		Endpoint:     "http://hpc.example/tn",
		Quality:      "ISO 9000",
	}
	if err := r.Publish(d); err != nil {
		t.Fatal(err)
	}
	got := r.Lookup("HPCServiceCo")
	if got == nil || got.Service != "NumericalSimulation" {
		t.Fatalf("Lookup = %+v", got)
	}
	// stored copy is isolated from the caller's value
	d.Capabilities[0] = "mutated"
	if r.Lookup("HPCServiceCo").Capabilities[0] != "simulation" {
		t.Fatal("registry stored a shared slice")
	}
	if !r.Withdraw("HPCServiceCo") {
		t.Fatal("withdraw failed")
	}
	if r.Withdraw("HPCServiceCo") {
		t.Fatal("double withdraw reported success")
	}
	if r.Lookup("HPCServiceCo") != nil {
		t.Fatal("lookup after withdraw")
	}
}

func TestPublishValidation(t *testing.T) {
	r := New()
	if err := r.Publish(&Description{Service: "s"}); err == nil {
		t.Fatal("provider-less description accepted")
	}
	if err := r.Publish(&Description{Provider: "p"}); err == nil {
		t.Fatal("service-less description accepted")
	}
}

func TestFindByCapabilities(t *testing.T) {
	r := New()
	r.Publish(&Description{Provider: "a", Service: "s", Capabilities: []string{"Design-DB", "viz"}})
	r.Publish(&Description{Provider: "b", Service: "s", Capabilities: []string{"design-db"}})
	r.Publish(&Description{Provider: "c", Service: "s", Capabilities: []string{"storage"}})

	got := r.FindByCapabilities([]string{"design-db"})
	if len(got) != 2 || got[0].Provider != "a" || got[1].Provider != "b" {
		t.Fatalf("find = %+v", got)
	}
	got = r.FindByCapabilities([]string{"design-db", "viz"})
	if len(got) != 1 || got[0].Provider != "a" {
		t.Fatalf("conjunctive find = %+v", got)
	}
	if got := r.FindByCapabilities(nil); len(got) != 3 {
		t.Fatalf("empty requirement = %d", len(got))
	}
	if got := r.FindByCapabilities([]string{"nope"}); len(got) != 0 {
		t.Fatalf("impossible requirement = %d", len(got))
	}
}

func TestPublishReplaces(t *testing.T) {
	r := New()
	r.Publish(&Description{Provider: "p", Service: "v1"})
	r.Publish(&Description{Provider: "p", Service: "v2"})
	if len(r.All()) != 1 || r.Lookup("p").Service != "v2" {
		t.Fatal("publish did not replace")
	}
}

func TestDOMRoundTrip(t *testing.T) {
	d := &Description{
		Provider:     "StorageCo",
		Service:      "IndustrialStorage",
		Capabilities: []string{"storage", "backup"},
		Endpoint:     "http://storage.example",
		Quality:      "tier-3",
	}
	re, err := FromDOM(d.DOM())
	if err != nil {
		t.Fatal(err)
	}
	if re.Provider != d.Provider || re.Service != d.Service || re.Endpoint != d.Endpoint || re.Quality != d.Quality {
		t.Fatalf("round trip = %+v", re)
	}
	if len(re.Capabilities) != 2 || re.Capabilities[1] != "backup" {
		t.Fatalf("capabilities = %v", re.Capabilities)
	}
	if _, err := FromDOM(xmldom.NewElement("wrong")); err == nil {
		t.Fatal("wrong root accepted")
	}
	if _, err := FromDOM(xmldom.NewElement("serviceDescription")); err == nil {
		t.Fatal("invalid description accepted")
	}
}
