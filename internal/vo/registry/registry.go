// Package registry is the public resource repository of the preparation
// phase (paper §2): "SPs publish their resources' functionalities in a
// public repository. The resources' description provides detailed
// information about resources' capabilities, the resources' interaction
// means and other information like the resource quality. This
// information allows one to select a SP for inclusion in the VO."
//
// The VO Initiator queries it during formation to shortlist candidates
// whose capabilities match a role's requirements.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"trustvo/internal/xmldom"
)

// Description is one published service description.
type Description struct {
	// Provider is the service provider's name (unique key).
	Provider string
	// Service names the offered service.
	Service string
	// Capabilities the service offers, matched against role requirements.
	Capabilities []string
	// Endpoint is where the provider's TN/VO agent listens (URL).
	Endpoint string
	// Quality is the advertised quality level (free-form, e.g. an ISO
	// regulation identifier).
	Quality string
}

// Validate checks the description is publishable.
func (d *Description) Validate() error {
	if d.Provider == "" {
		return errors.New("registry: description without provider")
	}
	if d.Service == "" {
		return fmt.Errorf("registry: %s publishes a service without name", d.Provider)
	}
	return nil
}

// DOM serializes the description for storage and transport.
func (d *Description) DOM() *xmldom.Node {
	root := xmldom.NewElement("serviceDescription").
		SetAttr("provider", d.Provider).
		SetAttr("service", d.Service)
	if d.Endpoint != "" {
		root.SetAttr("endpoint", d.Endpoint)
	}
	if d.Quality != "" {
		root.SetAttr("quality", d.Quality)
	}
	for _, c := range d.Capabilities {
		root.AppendChild(xmldom.NewElement("capability").SetAttr("name", c))
	}
	return root
}

// FromDOM decodes a description.
func FromDOM(root *xmldom.Node) (*Description, error) {
	if root.Name != "serviceDescription" {
		return nil, fmt.Errorf("registry: root element <%s>", root.Name)
	}
	d := &Description{
		Provider: root.AttrOr("provider", ""),
		Service:  root.AttrOr("service", ""),
		Endpoint: root.AttrOr("endpoint", ""),
		Quality:  root.AttrOr("quality", ""),
	}
	for _, c := range root.Childs("capability") {
		d.Capabilities = append(d.Capabilities, c.AttrOr("name", ""))
	}
	return d, d.Validate()
}

// Registry is the public repository. Safe for concurrent use.
type Registry struct {
	mu   sync.RWMutex
	desc map[string]*Description // by provider
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{desc: make(map[string]*Description)}
}

// Publish inserts or replaces a provider's description.
func (r *Registry) Publish(d *Description) error {
	if err := d.Validate(); err != nil {
		return err
	}
	cp := *d
	cp.Capabilities = append([]string(nil), d.Capabilities...)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.desc[d.Provider] = &cp
	return nil
}

// Withdraw removes a provider's description.
func (r *Registry) Withdraw(provider string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.desc[provider]; !ok {
		return false
	}
	delete(r.desc, provider)
	return true
}

// Lookup returns the description of one provider, or nil.
func (r *Registry) Lookup(provider string) *Description {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.desc[provider]
}

// All returns every description, sorted by provider.
func (r *Registry) All() []*Description {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Description, 0, len(r.desc))
	for _, d := range r.desc {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Provider < out[j].Provider })
	return out
}

// FindByCapabilities returns the providers offering every required
// capability (case-insensitive), sorted by provider name. An empty
// requirement matches everyone.
func (r *Registry) FindByCapabilities(required []string) []*Description {
	all := r.All()
	if len(required) == 0 {
		return all
	}
	var out []*Description
	for _, d := range all {
		if hasAll(d.Capabilities, required) {
			out = append(out, d)
		}
	}
	return out
}

func hasAll(have, want []string) bool {
	set := make(map[string]bool, len(have))
	for _, h := range have {
		set[strings.ToLower(h)] = true
	}
	for _, w := range want {
		if !set[strings.ToLower(w)] {
			return false
		}
	}
	return true
}
