package vo

import (
	"errors"
	"testing"
	"time"

	"trustvo/internal/xtnl"
)

func aircraftContract() *Contract {
	return &Contract{
		VOName:    "AircraftOptimizationVO",
		Goal:      "low-emission wing design",
		Initiator: "AircraftCo",
		Roles: []RoleSpec{
			{Name: "DesignWebPortal", Capabilities: []string{"design-db"}, MinMembers: 1,
				AdmissionPolicies: xtnl.MustParsePolicies(
					"VoMembership/AircraftOptimizationVO/DesignWebPortal <- WebDesignerQuality(regulation='UNI EN ISO 9000')")},
			{Name: "HPC", Capabilities: []string{"simulation"}, MinMembers: 1, MaxMembers: 2},
			{Name: "Storage", MinMembers: 0},
		},
		Rules: []Rule{
			{Operation: "optimize", Callers: []string{"DesignWebPortal"}, Target: "HPC"},
			{Operation: "store", Target: "Storage"},
		},
	}
}

func TestContractValidate(t *testing.T) {
	if err := aircraftContract().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Contract)
	}{
		{"no name", func(c *Contract) { c.VOName = "" }},
		{"no initiator", func(c *Contract) { c.Initiator = "" }},
		{"no roles", func(c *Contract) { c.Roles = nil }},
		{"unnamed role", func(c *Contract) { c.Roles[0].Name = "" }},
		{"duplicate role", func(c *Contract) { c.Roles[1].Name = c.Roles[0].Name }},
		{"bad bounds", func(c *Contract) { c.Roles[0].MinMembers = 5; c.Roles[0].MaxMembers = 2 }},
		{"bad policy", func(c *Contract) { c.Roles[0].AdmissionPolicies = []*xtnl.Policy{{}} }},
		{"rule without op", func(c *Contract) { c.Rules[0].Operation = "" }},
		{"rule unknown target", func(c *Contract) { c.Rules[0].Target = "Nope" }},
		{"rule unknown caller", func(c *Contract) { c.Rules[0].Callers = []string{"Nope"} }},
	}
	for _, tc := range cases {
		c := aircraftContract()
		tc.mut(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestLifecycleHappyPath(t *testing.T) {
	v, err := New(aircraftContract())
	if err != nil {
		t.Fatal(err)
	}
	if v.Phase() != Identification {
		t.Fatalf("initial phase = %v", v.Phase())
	}
	if err := v.StartFormation(); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Admit("AerospaceCo", "DesignWebPortal"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Admit("HPCServiceCo", "HPC"); err != nil {
		t.Fatal(err)
	}
	if err := v.StartOperation(); err != nil {
		t.Fatal(err)
	}
	if v.Phase() != Operation {
		t.Fatalf("phase = %v", v.Phase())
	}
	if err := v.Dissolve(); err != nil {
		t.Fatal(err)
	}
	if len(v.Members()) != 0 {
		t.Fatal("dissolution should nullify memberships")
	}
}

func TestPhaseGuards(t *testing.T) {
	v, _ := New(aircraftContract())
	if _, err := v.Admit("x", "HPC"); !errors.Is(err, ErrPhase) {
		t.Fatalf("admit in identification: %v", err)
	}
	if err := v.StartOperation(); !errors.Is(err, ErrPhase) {
		t.Fatalf("operation from identification: %v", err)
	}
	if err := v.Dissolve(); !errors.Is(err, ErrPhase) {
		t.Fatalf("dissolve from identification: %v", err)
	}
	v.StartFormation()
	if err := v.StartFormation(); !errors.Is(err, ErrPhase) {
		t.Fatalf("double formation: %v", err)
	}
	if err := v.Authorize("x", "optimize"); !errors.Is(err, ErrPhase) {
		t.Fatalf("authorize during formation: %v", err)
	}
}

func TestStartOperationRequiresMinMembers(t *testing.T) {
	v, _ := New(aircraftContract())
	v.StartFormation()
	if err := v.StartOperation(); !errors.Is(err, ErrRolesUncovered) {
		t.Fatalf("expected ErrRolesUncovered, got %v", err)
	}
}

func TestAdmitConstraints(t *testing.T) {
	v, _ := New(aircraftContract())
	v.StartFormation()
	if _, err := v.Admit("x", "NoSuchRole"); !errors.Is(err, ErrUnknownRole) {
		t.Fatalf("unknown role: %v", err)
	}
	if _, err := v.Admit("a", "DesignWebPortal"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Admit("b", "DesignWebPortal"); !errors.Is(err, ErrRoleFull) {
		t.Fatalf("role capacity: %v", err)
	}
	if _, err := v.Admit("a", "HPC"); err == nil {
		t.Fatal("duplicate member admitted")
	}
	// HPC allows two members
	if _, err := v.Admit("h1", "HPC"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Admit("h2", "HPC"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Admit("h3", "HPC"); !errors.Is(err, ErrRoleFull) {
		t.Fatalf("HPC capacity: %v", err)
	}
	if got := len(v.MembersInRole("HPC")); got != 2 {
		t.Fatalf("HPC members = %d", got)
	}
}

func TestMembershipTokenVerifies(t *testing.T) {
	v, _ := New(aircraftContract())
	v.StartFormation()
	m, err := v.Admit("AerospaceCo", "DesignWebPortal")
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.VerifyMembership(m.Token.DER)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "AerospaceCo" || got.Role != "DesignWebPortal" {
		t.Fatalf("verified member = %+v", got)
	}
	// expelled members fail verification even with a valid token
	v.Remove("AerospaceCo")
	if _, err := v.VerifyMembership(m.Token.DER); !errors.Is(err, ErrNotMember) {
		t.Fatalf("expelled member token: %v", err)
	}
}

func opReadyVO(t *testing.T) *VO {
	t.Helper()
	v, err := New(aircraftContract())
	if err != nil {
		t.Fatal(err)
	}
	v.SetClock(func() time.Time { return time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC) })
	v.StartFormation()
	v.Admit("AerospaceCo", "DesignWebPortal")
	v.Admit("HPCServiceCo", "HPC")
	v.Admit("StorageCo", "Storage")
	if err := v.StartOperation(); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestAuthorizeCollaborationRules(t *testing.T) {
	v := opReadyVO(t)
	if err := v.Authorize("AerospaceCo", "optimize"); err != nil {
		t.Fatalf("allowed operation rejected: %v", err)
	}
	// role not in callers list
	if err := v.Authorize("HPCServiceCo", "optimize"); !errors.Is(err, ErrRuleViolation) {
		t.Fatalf("disallowed caller: %v", err)
	}
	// operation with no caller restriction: any member
	if err := v.Authorize("HPCServiceCo", "store"); err != nil {
		t.Fatalf("open operation rejected: %v", err)
	}
	// unknown operation
	if err := v.Authorize("AerospaceCo", "exfiltrate"); !errors.Is(err, ErrRuleViolation) {
		t.Fatalf("unknown operation: %v", err)
	}
	// non-member
	if err := v.Authorize("Stranger", "optimize"); !errors.Is(err, ErrNotMember) {
		t.Fatalf("non-member: %v", err)
	}
	if got := len(v.Violations()); got != 2 {
		t.Fatalf("violations logged = %d, want 2", got)
	}
}

func TestReputationTracksOperations(t *testing.T) {
	v := opReadyVO(t)
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	base := v.Reputation.Score("AerospaceCo", now)
	v.Authorize("AerospaceCo", "optimize")
	if v.Reputation.Score("AerospaceCo", now) <= base {
		t.Fatal("successful operation should raise reputation")
	}
	hpcBase := v.Reputation.Score("HPCServiceCo", now)
	if err := v.ReportViolation("HPCServiceCo", "simulate", "missed deadline", 3); err != nil {
		t.Fatal(err)
	}
	if v.Reputation.Score("HPCServiceCo", now) >= hpcBase {
		t.Fatal("violation should lower reputation")
	}
	if err := v.ReportViolation("Stranger", "x", "y", 1); !errors.Is(err, ErrNotMember) {
		t.Fatalf("violation for non-member: %v", err)
	}
}

func TestReplacementDuringOperation(t *testing.T) {
	v := opReadyVO(t)
	if err := v.Remove("HPCServiceCo"); err != nil {
		t.Fatal(err)
	}
	// admission of a replacement is allowed during operation
	if _, err := v.Admit("BetterHPCCo", "HPC"); err != nil {
		t.Fatal(err)
	}
	if v.Member("BetterHPCCo") == nil {
		t.Fatal("replacement not admitted")
	}
	if err := v.Remove("HPCServiceCo"); !errors.Is(err, ErrNotMember) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestContractLookups(t *testing.T) {
	c := aircraftContract()
	if c.Role("HPC") == nil || c.Role("Nope") != nil {
		t.Fatal("Role lookup broken")
	}
	if c.RuleFor("optimize") == nil || c.RuleFor("nope") != nil {
		t.Fatal("RuleFor lookup broken")
	}
	if MembershipResource("V", "R") != "VoMembership/V/R" {
		t.Fatal("membership resource format changed")
	}
}

func TestAuditLogRecordsInteractions(t *testing.T) {
	v := opReadyVO(t)
	v.Authorize("AerospaceCo", "optimize")  // allowed
	v.Authorize("HPCServiceCo", "optimize") // rule violation
	v.Authorize("Stranger", "optimize")     // not a member
	v.ReportViolation("StorageCo", "store", "slow", 1)

	audit := v.Audit()
	if len(audit) != 4 {
		t.Fatalf("audit entries = %d, want 4", len(audit))
	}
	if !audit[0].Allowed || audit[0].Member != "AerospaceCo" {
		t.Fatalf("entry 0: %+v", audit[0])
	}
	if audit[1].Allowed || audit[1].Member != "HPCServiceCo" {
		t.Fatalf("entry 1: %+v", audit[1])
	}
	if audit[2].Allowed || audit[2].Detail != "not a member" {
		t.Fatalf("entry 2: %+v", audit[2])
	}
	if audit[3].Allowed || audit[3].Member != "StorageCo" {
		t.Fatalf("entry 3: %+v", audit[3])
	}
	// returned slice is a copy
	audit[0].Member = "mutated"
	if v.Audit()[0].Member != "AerospaceCo" {
		t.Fatal("Audit returned a mutable reference")
	}
}

func TestAuthorizeRequiresTargetRoleFilled(t *testing.T) {
	v := opReadyVO(t)
	// expel the HPC provider: 'optimize' targets the HPC role
	if err := v.Remove("HPCServiceCo"); err != nil {
		t.Fatal(err)
	}
	err := v.Authorize("AerospaceCo", "optimize")
	if !errors.Is(err, ErrRolesUncovered) {
		t.Fatalf("vacant target: %v", err)
	}
	// refilling the role restores the operation
	if _, err := v.Admit("NewHPCCo", "HPC"); err != nil {
		t.Fatal(err)
	}
	if err := v.Authorize("AerospaceCo", "optimize"); err != nil {
		t.Fatalf("after refill: %v", err)
	}
}

func TestDissolutionInvalidatesTokens(t *testing.T) {
	v := opReadyVO(t)
	m := v.Member("AerospaceCo")
	if err := v.Dissolve(); err != nil {
		t.Fatal(err)
	}
	// the X.509 token still verifies cryptographically but the member
	// binding is nullified (§2: "final operations are performed to
	// nullify all contractual binding of the VO's members")
	if _, err := v.VerifyMembership(m.Token.DER); !errors.Is(err, ErrNotMember) {
		t.Fatalf("token after dissolution: %v", err)
	}
}
