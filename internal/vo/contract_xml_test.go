package vo

import (
	"strings"
	"testing"
)

func TestContractXMLRoundTrip(t *testing.T) {
	c := aircraftContract()
	re, err := ParseContract(c.XML())
	if err != nil {
		t.Fatal(err)
	}
	if re.VOName != c.VOName || re.Initiator != c.Initiator || re.Goal != c.Goal {
		t.Fatalf("header lost: %+v", re)
	}
	if len(re.Roles) != len(c.Roles) || len(re.Rules) != len(c.Rules) {
		t.Fatalf("structure lost: %d roles, %d rules", len(re.Roles), len(re.Rules))
	}
	dwp := re.Role("DesignWebPortal")
	if dwp == nil || dwp.MinMembers != 1 || len(dwp.Capabilities) != 1 {
		t.Fatalf("role lost: %+v", dwp)
	}
	if len(dwp.AdmissionPolicies) != 1 {
		t.Fatalf("admission policies lost: %+v", dwp.AdmissionPolicies)
	}
	cond := dwp.AdmissionPolicies[0].Terms[0].Conditions[0]
	if !strings.Contains(cond, "UNI EN ISO 9000") {
		t.Fatalf("admission condition lost: %q", cond)
	}
	hpc := re.Role("HPC")
	if hpc == nil || hpc.MaxMembers != 2 {
		t.Fatalf("HPC bounds lost: %+v", hpc)
	}
	rule := re.RuleFor("optimize")
	if rule == nil || rule.Target != "HPC" || len(rule.Callers) != 1 {
		t.Fatalf("rule lost: %+v", rule)
	}
}

func TestParseContractErrors(t *testing.T) {
	cases := []struct {
		name string
		xml  string
	}{
		{"not xml", "<contract"},
		{"wrong root", "<x/>"},
		{"invalid contract", `<contract vo="V"/>`},
		{"bad min", `<contract vo="V" initiator="I"><role name="R" min="x"/></contract>`},
		{"bad max", `<contract vo="V" initiator="I"><role name="R" max="x"/></contract>`},
		{"bad admission", `<contract vo="V" initiator="I"><role name="R"><admission>broken</admission></role></contract>`},
		{"bad rule", `<contract vo="V" initiator="I"><role name="R"/><rule operation="op" target="Nope"/></contract>`},
	}
	for _, tc := range cases {
		if _, err := ParseContract(tc.xml); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}
