package vo

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"trustvo/internal/pki"
	"trustvo/internal/reputation"
)

// Phase is the lifecycle phase of a VO (§2). Preparation is a
// member-side activity (publishing to the registry) and precedes VO
// creation, so the VO itself starts at Identification.
type Phase int

const (
	// Identification: the Initiator has defined the contract.
	Identification Phase = iota
	// Formation: candidates are being selected, invited and admitted.
	Formation
	// Operation: the VO is running under its collaboration rules.
	Operation
	// Dissolution: the VO has fulfilled its objectives and is dissolved.
	Dissolution
)

func (p Phase) String() string {
	switch p {
	case Identification:
		return "identification"
	case Formation:
		return "formation"
	case Operation:
		return "operation"
	case Dissolution:
		return "dissolution"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Member is an admitted VO participant.
type Member struct {
	Name  string
	Role  string
	Token *pki.MembershipToken // X.509 membership credential (§6.3)
	Since time.Time
}

// Violation records a detected breach of the collaboration rules.
type Violation struct {
	Member    string
	Operation string
	Detail    string
	At        time.Time
}

// AuditEntry records one monitored interaction (§2: "All the
// interactions must be monitored, ruled by security policies and any
// violation must be notified").
type AuditEntry struct {
	Member    string
	Operation string
	Allowed   bool
	Detail    string
	At        time.Time
}

// Errors reported by lifecycle operations.
var (
	ErrPhase          = errors.New("vo: operation not allowed in current phase")
	ErrUnknownRole    = errors.New("vo: unknown role")
	ErrRoleFull       = errors.New("vo: role already filled")
	ErrNotMember      = errors.New("vo: not a member")
	ErrRuleViolation  = errors.New("vo: collaboration rule violation")
	ErrRolesUncovered = errors.New("vo: mandatory roles not covered")
)

// VO is a live Virtual Organization: contract, phase, members, the
// membership certificate authority and the reputation system. All
// methods are safe for concurrent use.
type VO struct {
	Contract   *Contract
	Authority  *pki.VOAuthority
	Reputation *reputation.System

	mu         sync.RWMutex
	phase      Phase
	members    map[string]*Member // by member name
	violations []Violation
	audit      []AuditEntry
	clock      func() time.Time
}

// New creates a VO in the identification phase from a validated
// contract, minting the VO's certificate authority.
func New(c *Contract) (*VO, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	auth, err := pki.NewVOAuthority(c.VOName)
	if err != nil {
		return nil, err
	}
	return &VO{
		Contract:   c,
		Authority:  auth,
		Reputation: reputation.New(30 * 24 * time.Hour),
		phase:      Identification,
		members:    make(map[string]*Member),
		clock:      time.Now,
	}, nil
}

// SetClock overrides the time source (tests).
func (v *VO) SetClock(fn func() time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.clock = fn
}

// Phase returns the current lifecycle phase.
func (v *VO) Phase() Phase {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.phase
}

// StartFormation moves identification → formation.
func (v *VO) StartFormation() error {
	return v.transition(Identification, Formation)
}

// StartOperation moves formation → operation; every role must have at
// least MinMembers members.
func (v *VO) StartOperation() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.phase != Formation {
		return fmt.Errorf("%w: %s -> operation", ErrPhase, v.phase)
	}
	for _, r := range v.Contract.Roles {
		if v.countRoleLocked(r.Name) < r.MinMembers {
			return fmt.Errorf("%w: role %s has %d members, needs %d",
				ErrRolesUncovered, r.Name, v.countRoleLocked(r.Name), r.MinMembers)
		}
	}
	v.phase = Operation
	return nil
}

// Dissolve moves operation → dissolution, nullifying contractual
// bindings: all memberships are cleared.
func (v *VO) Dissolve() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.phase != Operation {
		return fmt.Errorf("%w: %s -> dissolution", ErrPhase, v.phase)
	}
	v.phase = Dissolution
	v.members = make(map[string]*Member)
	return nil
}

func (v *VO) transition(from, to Phase) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.phase != from {
		return fmt.Errorf("%w: %s -> %s", ErrPhase, v.phase, to)
	}
	v.phase = to
	return nil
}

// Admit adds a member to a role, minting its X.509 membership token.
// Allowed during formation (initial members) and operation (replacement
// members, §5.1: "A TN is also executed in case of a VO member
// replacement").
func (v *VO) Admit(memberName, role string) (*Member, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.phase != Formation && v.phase != Operation {
		return nil, fmt.Errorf("%w: admit during %s", ErrPhase, v.phase)
	}
	spec := v.Contract.Role(role)
	if spec == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownRole, role)
	}
	if v.countRoleLocked(role) >= spec.maxMembers() {
		return nil, fmt.Errorf("%w: %s", ErrRoleFull, role)
	}
	if _, dup := v.members[memberName]; dup {
		return nil, fmt.Errorf("vo: %s is already a member", memberName)
	}
	tok, err := v.Authority.IssueMembership(memberName, role, 0)
	if err != nil {
		return nil, err
	}
	m := &Member{Name: memberName, Role: role, Token: tok, Since: v.clock()}
	v.members[memberName] = m
	return m, nil
}

// Remove expels a member (contract violation or replacement).
func (v *VO) Remove(memberName string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.members[memberName]; !ok {
		return fmt.Errorf("%w: %s", ErrNotMember, memberName)
	}
	delete(v.members, memberName)
	return nil
}

// Member returns the named member, or nil.
func (v *VO) Member(name string) *Member {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.members[name]
}

// Members returns all members sorted by name.
func (v *VO) Members() []*Member {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]*Member, 0, len(v.members))
	for _, m := range v.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MembersInRole returns the members filling a role, sorted by name.
func (v *VO) MembersInRole(role string) []*Member {
	v.mu.RLock()
	defer v.mu.RUnlock()
	var out []*Member
	for _, m := range v.members {
		if m.Role == role {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (v *VO) countRoleLocked(role string) int {
	n := 0
	for _, m := range v.members {
		if m.Role == role {
			n++
		}
	}
	return n
}

// Authorize checks a member's invocation of an operation against the
// collaboration rules: the caller must be a member, the operation must
// be in the contract, and the caller's role must be permitted. On
// success the caller earns a positive reputation event; a rule breach
// is recorded as a violation with a negative event ("All the
// interactions must be monitored, ruled by security policies and any
// violation must be notified", §2).
func (v *VO) Authorize(memberName, operation string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.phase != Operation {
		return fmt.Errorf("%w: %s during %s", ErrPhase, operation, v.phase)
	}
	m, ok := v.members[memberName]
	if !ok {
		v.audit = append(v.audit, AuditEntry{Member: memberName, Operation: operation,
			Allowed: false, Detail: "not a member", At: v.clock()})
		return fmt.Errorf("%w: %s", ErrNotMember, memberName)
	}
	rule := v.Contract.RuleFor(operation)
	if rule == nil {
		v.recordViolationLocked(memberName, operation, "operation not in contract")
		return fmt.Errorf("%w: operation %s not in contract", ErrRuleViolation, operation)
	}
	if len(rule.Callers) > 0 {
		allowed := false
		for _, r := range rule.Callers {
			if r == m.Role {
				allowed = true
				break
			}
		}
		if !allowed {
			v.recordViolationLocked(memberName, operation, "role "+m.Role+" not permitted")
			return fmt.Errorf("%w: role %s may not invoke %s", ErrRuleViolation, m.Role, operation)
		}
	}
	if rule.Target != "" && v.countRoleLocked(rule.Target) == 0 {
		// Not a violation by the caller: the providing role is vacant
		// (e.g. its member was expelled and not yet replaced).
		v.audit = append(v.audit, AuditEntry{Member: memberName, Operation: operation,
			Allowed: false, Detail: "target role " + rule.Target + " vacant", At: v.clock()})
		return fmt.Errorf("%w: role %s providing %s is vacant", ErrRolesUncovered, rule.Target, operation)
	}
	v.audit = append(v.audit, AuditEntry{Member: memberName, Operation: operation,
		Allowed: true, At: v.clock()})
	v.Reputation.Record(reputation.Event{Member: memberName, Positive: true, At: v.clock(), Note: operation})
	return nil
}

// ReportViolation records an out-of-band violation (e.g. quality-of-
// service breach detected by another member) with the given weight.
func (v *VO) ReportViolation(memberName, operation, detail string, weight float64) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.members[memberName]; !ok {
		return fmt.Errorf("%w: %s", ErrNotMember, memberName)
	}
	v.violations = append(v.violations, Violation{Member: memberName, Operation: operation, Detail: detail, At: v.clock()})
	v.audit = append(v.audit, AuditEntry{Member: memberName, Operation: operation,
		Allowed: false, Detail: detail, At: v.clock()})
	v.Reputation.Record(reputation.Event{Member: memberName, Positive: false, Weight: weight, At: v.clock(), Note: detail})
	return nil
}

func (v *VO) recordViolationLocked(member, operation, detail string) {
	v.violations = append(v.violations, Violation{Member: member, Operation: operation, Detail: detail, At: v.clock()})
	v.audit = append(v.audit, AuditEntry{Member: member, Operation: operation,
		Allowed: false, Detail: detail, At: v.clock()})
	v.Reputation.Record(reputation.Event{Member: member, Positive: false, Weight: 2, At: v.clock(), Note: detail})
}

// Violations returns a copy of the violation log.
func (v *VO) Violations() []Violation {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return append([]Violation(nil), v.violations...)
}

// Audit returns a copy of the interaction audit log.
func (v *VO) Audit() []AuditEntry {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return append([]AuditEntry(nil), v.audit...)
}

// VerifyMembership checks a presented X.509 membership token against
// this VO's authority and current member list.
func (v *VO) VerifyMembership(tokenDER []byte) (*Member, error) {
	tok, err := v.Authority.VerifyMembership(tokenDER)
	if err != nil {
		return nil, err
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	m, ok := v.members[tok.Member]
	if !ok {
		return nil, fmt.Errorf("%w: %s (token valid but member expelled)", ErrNotMember, tok.Member)
	}
	if m.Role != tok.Role {
		return nil, fmt.Errorf("vo: token role %s does not match member role %s", tok.Role, m.Role)
	}
	return m, nil
}
