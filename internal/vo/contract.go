// Package vo models Virtual Organizations and their lifecycle (paper §2):
// identification (a VO Initiator defines a business goal and a contract
// with roles, requirements and collaboration rules), formation (potential
// members are selected and invited), operation (members cooperate under
// the collaboration rules, monitored for violations, with reputation
// updates and replacement) and dissolution.
//
// Trust negotiation hooks into this lifecycle in internal/core; this
// package is the TN-free substrate — the "VO Management toolkit" state
// the paper integrates against.
package vo

import (
	"errors"
	"fmt"

	"trustvo/internal/xtnl"
)

// RoleSpec describes one role of the VO contract: what the member must
// provide and what it must prove to be admitted.
type RoleSpec struct {
	Name        string
	Description string
	// Capabilities the candidate's published service description must
	// offer (matched against the registry during formation).
	Capabilities []string
	// AdmissionPolicies are the disclosure policies, in X-TNL DSL form,
	// that protect this role's membership; the resource name of each
	// policy is the membership resource (see MembershipResource).
	// Defined by the Initiator during identification (§5.1:
	// "Policies are created for the specific VO and in particular for
	// the roles the VO potential members will play").
	AdmissionPolicies []*xtnl.Policy
	// MinMembers/MaxMembers bound how many members may fill the role
	// (0 MaxMembers = 1).
	MinMembers, MaxMembers int
}

// MembershipResource is the TN resource name protecting admission to a
// role of a VO.
func MembershipResource(voName, role string) string {
	return "VoMembership/" + voName + "/" + role
}

// Rule is one collaboration rule of the contract: which roles may invoke
// which operation during the operation phase.
type Rule struct {
	Operation string
	// Callers are the roles allowed to invoke the operation; empty
	// means any member.
	Callers []string
	// Target is the role providing the operation.
	Target string
}

// Contract is the formal collaboration contract established by the VO
// Initiator during identification (§2: "The contract states the roles
// and the requirements that each member has to fulfill in order to be
// part of the VO. In addition, the contract specifies the collaboration
// rules").
type Contract struct {
	VOName    string
	Goal      string
	Initiator string
	Roles     []RoleSpec
	Rules     []Rule
}

// Validate checks contract well-formedness.
func (c *Contract) Validate() error {
	if c.VOName == "" {
		return errors.New("vo: contract without VO name")
	}
	if c.Initiator == "" {
		return errors.New("vo: contract without initiator")
	}
	if len(c.Roles) == 0 {
		return fmt.Errorf("vo: contract %s has no roles", c.VOName)
	}
	seen := make(map[string]bool)
	for _, r := range c.Roles {
		if r.Name == "" {
			return fmt.Errorf("vo: contract %s has an unnamed role", c.VOName)
		}
		if seen[r.Name] {
			return fmt.Errorf("vo: contract %s defines role %s twice", c.VOName, r.Name)
		}
		seen[r.Name] = true
		if r.MaxMembers < 0 || r.MinMembers < 0 || (r.MaxMembers > 0 && r.MinMembers > r.MaxMembers) {
			return fmt.Errorf("vo: role %s has invalid member bounds [%d,%d]", r.Name, r.MinMembers, r.MaxMembers)
		}
		for _, p := range r.AdmissionPolicies {
			if err := p.Validate(); err != nil {
				return fmt.Errorf("vo: role %s: %w", r.Name, err)
			}
		}
	}
	for _, rule := range c.Rules {
		if rule.Operation == "" {
			return fmt.Errorf("vo: contract %s has a rule without operation", c.VOName)
		}
		if rule.Target != "" && !seen[rule.Target] {
			return fmt.Errorf("vo: rule %s targets unknown role %s", rule.Operation, rule.Target)
		}
		for _, caller := range rule.Callers {
			if !seen[caller] {
				return fmt.Errorf("vo: rule %s allows unknown role %s", rule.Operation, caller)
			}
		}
	}
	return nil
}

// Role returns the named role spec, or nil.
func (c *Contract) Role(name string) *RoleSpec {
	for i := range c.Roles {
		if c.Roles[i].Name == name {
			return &c.Roles[i]
		}
	}
	return nil
}

// RuleFor returns the collaboration rule for an operation, or nil.
func (c *Contract) RuleFor(operation string) *Rule {
	for i := range c.Rules {
		if c.Rules[i].Operation == operation {
			return &c.Rules[i]
		}
	}
	return nil
}

// maxMembers returns the effective member capacity of a role.
func (r *RoleSpec) maxMembers() int {
	if r.MaxMembers <= 0 {
		return 1
	}
	return r.MaxMembers
}
