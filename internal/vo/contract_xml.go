package vo

import (
	"fmt"
	"strconv"

	"trustvo/internal/xmldom"
	"trustvo/internal/xtnl"
)

// Contract XML codec, used by the toolkit tools (cmd/voctl) to load the
// collaboration contract the Initiator defines during identification.
//
//	<contract vo="AircraftOptimizationVO" initiator="AircraftCo" goal="…">
//	  <role name="DesignWebPortal" min="1" max="1">
//	    <capability name="design-db"/>
//	    <admission>M &lt;- WebDesignerQuality(regulation='UNI EN ISO 9000')</admission>
//	  </role>
//	  <rule operation="optimize" target="HPC">
//	    <caller role="DesignWebPortal"/>
//	  </rule>
//	</contract>

// DOM serializes the contract.
func (c *Contract) DOM() *xmldom.Node {
	root := xmldom.NewElement("contract").
		SetAttr("vo", c.VOName).
		SetAttr("initiator", c.Initiator)
	if c.Goal != "" {
		root.SetAttr("goal", c.Goal)
	}
	for _, r := range c.Roles {
		re := xmldom.NewElement("role").SetAttr("name", r.Name)
		if r.Description != "" {
			re.SetAttr("description", r.Description)
		}
		if r.MinMembers > 0 {
			re.SetAttr("min", strconv.Itoa(r.MinMembers))
		}
		if r.MaxMembers > 0 {
			re.SetAttr("max", strconv.Itoa(r.MaxMembers))
		}
		for _, cap := range r.Capabilities {
			re.AppendChild(xmldom.NewElement("capability").SetAttr("name", cap))
		}
		for _, p := range r.AdmissionPolicies {
			adm := xmldom.NewElement("admission")
			adm.AppendChild(xmldom.NewText(p.String()))
			re.AppendChild(adm)
		}
		root.AppendChild(re)
	}
	for _, rule := range c.Rules {
		re := xmldom.NewElement("rule").SetAttr("operation", rule.Operation)
		if rule.Target != "" {
			re.SetAttr("target", rule.Target)
		}
		for _, caller := range rule.Callers {
			re.AppendChild(xmldom.NewElement("caller").SetAttr("role", caller))
		}
		root.AppendChild(re)
	}
	return root
}

// XML serializes the contract in canonical form.
func (c *Contract) XML() string { return c.DOM().XML() }

// ParseContract decodes and validates a contract document.
func ParseContract(xmlText string) (*Contract, error) {
	root, err := xmldom.ParseString(xmlText)
	if err != nil {
		return nil, fmt.Errorf("vo: parse contract: %w", err)
	}
	return ContractFromDOM(root)
}

// ContractFromDOM decodes a contract from a parsed tree and validates it.
func ContractFromDOM(root *xmldom.Node) (*Contract, error) {
	if root.Name != "contract" {
		return nil, fmt.Errorf("vo: root element <%s>, want <contract>", root.Name)
	}
	c := &Contract{
		VOName:    root.AttrOr("vo", ""),
		Initiator: root.AttrOr("initiator", ""),
		Goal:      root.AttrOr("goal", ""),
	}
	atoi := func(s string) (int, error) {
		if s == "" {
			return 0, nil
		}
		return strconv.Atoi(s)
	}
	for _, re := range root.Childs("role") {
		r := RoleSpec{
			Name:        re.AttrOr("name", ""),
			Description: re.AttrOr("description", ""),
		}
		var err error
		if r.MinMembers, err = atoi(re.AttrOr("min", "")); err != nil {
			return nil, fmt.Errorf("vo: role %s: bad min: %w", r.Name, err)
		}
		if r.MaxMembers, err = atoi(re.AttrOr("max", "")); err != nil {
			return nil, fmt.Errorf("vo: role %s: bad max: %w", r.Name, err)
		}
		for _, cap := range re.Childs("capability") {
			r.Capabilities = append(r.Capabilities, cap.AttrOr("name", ""))
		}
		for _, adm := range re.Childs("admission") {
			ps, err := xtnl.ParsePolicyRule(adm.Text())
			if err != nil {
				return nil, fmt.Errorf("vo: role %s admission: %w", r.Name, err)
			}
			r.AdmissionPolicies = append(r.AdmissionPolicies, ps...)
		}
		c.Roles = append(c.Roles, r)
	}
	for _, re := range root.Childs("rule") {
		rule := Rule{Operation: re.AttrOr("operation", ""), Target: re.AttrOr("target", "")}
		for _, caller := range re.Childs("caller") {
			rule.Callers = append(rule.Callers, caller.AttrOr("role", ""))
		}
		c.Rules = append(c.Rules, rule)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
