package wsrpc

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"trustvo/internal/core"
	"trustvo/internal/vo"
	"trustvo/internal/vo/registry"
	"trustvo/internal/xmldom"
)

// ToolkitService exposes a VO Initiator (internal/core) as the VO
// Management toolkit of §6.1. It bundles the three editions:
//
//   - Host edition (member registration and VO monitoring):
//     POST /registry/publish, GET /registry/list, GET /registry/find,
//     GET /vo/status, GET /vo/members
//   - Initiator edition (create/invite/assign):
//     POST /vo/invite, POST /vo/start-formation, POST /vo/start-operation,
//     POST /vo/dissolve, POST /vo/join-direct (pre-integration baseline)
//   - Member edition (mailbox, participation):
//     GET /vo/mailbox, POST /vo/apply
//
// plus the integrated TN service mounted under /tn/ for membership
// negotiations ("the TN system is integrated as part of the VO
// Management tool, and invoked as a web service when needed", §6).
type ToolkitService struct {
	Initiator *core.Initiator
	TN        *TNService

	agents map[string]*core.MemberAgent // server-side mailboxes by provider
}

// NewToolkitService wraps an initiator. The TN service negotiates as the
// initiator's party, so successful membership negotiations admit the
// peer via the initiator's Grant hook.
func NewToolkitService(ini *core.Initiator) *ToolkitService {
	return &ToolkitService{
		Initiator: ini,
		TN:        NewTNService(ini.Party),
		agents:    make(map[string]*core.MemberAgent),
	}
}

// Register mounts all operations on mux. Toolkit routes share the TN
// service's metrics registry, so one /metrics scrape covers the whole
// deployment.
func (t *ToolkitService) Register(mux *http.ServeMux) {
	t.TN.Register(mux)
	reg := t.TN.Metrics
	handle := func(route string, h http.HandlerFunc) {
		mux.HandleFunc(route, instrument(reg, route, h))
	}
	handle("/registry/publish", t.handlePublish)
	handle("/registry/list", t.handleList)
	handle("/registry/find", t.handleFind)
	handle("/vo/apply", t.handleApply)
	handle("/vo/mailbox", t.handleMailbox)
	handle("/vo/join-direct", t.handleJoinDirect)
	handle("/vo/members", t.handleMembers)
	handle("/vo/status", t.handleStatus)
	handle("/vo/start-formation", t.lifecycleHandler(func() error { return t.Initiator.VO.StartFormation() }))
	handle("/vo/start-operation", t.lifecycleHandler(func() error { return t.Initiator.VO.StartOperation() }))
	handle("/vo/dissolve", t.lifecycleHandler(func() error { return t.Initiator.VO.Dissolve() }))
	handle("/vo/operate", t.handleOperate)
	handle("/vo/violation", t.handleViolation)
	handle("/vo/reputation", t.handleReputation)
	handle("/vo/audit", t.handleAudit)
}

// agentFor returns (creating on demand) the server-side mailbox agent
// for a published provider.
func (t *ToolkitService) agentFor(provider string) (*core.MemberAgent, error) {
	desc := t.Initiator.Registry.Lookup(provider)
	if desc == nil {
		return nil, fmt.Errorf("provider %q has not published a service description", provider)
	}
	if a, ok := t.agents[provider]; ok {
		return a, nil
	}
	a := core.NewMemberAgent(nil, desc)
	t.agents[provider] = a
	return a, nil
}

func (t *ToolkitService) handlePublish(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeFault(w, http.StatusMethodNotAllowed, "method", "POST required")
		return
	}
	body, err := readBodyDOM(r)
	if err != nil {
		writeFault(w, http.StatusBadRequest, "parse", err.Error())
		return
	}
	desc, err := registry.FromDOM(body)
	if err != nil {
		writeFault(w, http.StatusBadRequest, "schema", err.Error())
		return
	}
	if err := t.Initiator.Registry.Publish(desc); err != nil {
		writeFault(w, http.StatusBadRequest, "registry", err.Error())
		return
	}
	writeDOM(w, xmldom.NewElement("published").SetAttr("provider", desc.Provider))
}

func (t *ToolkitService) handleList(w http.ResponseWriter, r *http.Request) {
	out := xmldom.NewElement("descriptions")
	for _, d := range t.Initiator.Registry.All() {
		out.AppendChild(d.DOM())
	}
	writeDOM(w, out)
}

func (t *ToolkitService) handleFind(w http.ResponseWriter, r *http.Request) {
	caps := r.URL.Query()["capability"]
	out := xmldom.NewElement("descriptions")
	for _, d := range t.Initiator.Registry.FindByCapabilities(caps) {
		out.AppendChild(d.DOM())
	}
	writeDOM(w, out)
}

// handleApply lets a published provider request an invitation for a role
// ("the list of services that … are waiting for an invitation", §6.1).
// The invitation lands in the provider's server-side mailbox and is
// returned; the provider then either joins directly or negotiates for
// the returned membership resource via /tn/.
func (t *ToolkitService) handleApply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeFault(w, http.StatusMethodNotAllowed, "method", "POST required")
		return
	}
	provider := r.URL.Query().Get("provider")
	role := r.URL.Query().Get("role")
	if provider == "" || role == "" {
		writeFault(w, http.StatusBadRequest, "params", "provider and role required")
		return
	}
	if t.Initiator.VO.Contract.Role(role) == nil {
		writeFault(w, http.StatusNotFound, "role", "unknown role "+role)
		return
	}
	agent, err := t.agentFor(provider)
	if err != nil {
		writeFault(w, http.StatusNotFound, "registry", err.Error())
		return
	}
	inv := t.Initiator.Invite(agent, role)
	resource := vo.MembershipResource(t.Initiator.VO.Contract.VOName, role)
	out := invitationDOM(inv)
	out.SetAttr("resource", resource)
	writeDOM(w, out)
}

func invitationDOM(inv *core.Invitation) *xmldom.Node {
	n := xmldom.NewElement("invitation").
		SetAttr("vo", inv.VO).
		SetAttr("role", inv.Role).
		SetAttr("from", inv.From)
	if inv.Goal != "" {
		n.SetAttr("goal", inv.Goal)
	}
	n.AppendChild(xmldom.NewText(inv.Text))
	return n
}

func (t *ToolkitService) handleMailbox(w http.ResponseWriter, r *http.Request) {
	provider := r.URL.Query().Get("provider")
	agent, err := t.agentFor(provider)
	if err != nil {
		writeFault(w, http.StatusNotFound, "registry", err.Error())
		return
	}
	out := xmldom.NewElement("mailbox").SetAttr("provider", provider)
	for _, inv := range agent.Mailbox() {
		out.AppendChild(invitationDOM(inv))
	}
	writeDOM(w, out)
}

// handleJoinDirect is the pre-integration baseline join (no TN): the
// Fig. 9 "Join" bar.
func (t *ToolkitService) handleJoinDirect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeFault(w, http.StatusMethodNotAllowed, "method", "POST required")
		return
	}
	provider := r.URL.Query().Get("provider")
	role := r.URL.Query().Get("role")
	if t.Initiator.Registry.Lookup(provider) == nil {
		writeFault(w, http.StatusNotFound, "registry", "provider not published")
		return
	}
	m, err := t.Initiator.VO.Admit(provider, role)
	if err != nil {
		writeFault(w, http.StatusConflict, "admit", err.Error())
		return
	}
	out := xmldom.NewElement("joined").
		SetAttr("member", m.Name).
		SetAttr("role", m.Role)
	tok := xmldom.NewElement("token")
	tok.AppendChild(xmldom.NewText(b64(m.Token.DER)))
	out.AppendChild(tok)
	writeDOM(w, out)
}

func (t *ToolkitService) handleMembers(w http.ResponseWriter, r *http.Request) {
	out := xmldom.NewElement("members")
	for _, m := range t.Initiator.VO.Members() {
		out.AppendChild(xmldom.NewElement("member").
			SetAttr("name", m.Name).
			SetAttr("role", m.Role))
	}
	writeDOM(w, out)
}

func (t *ToolkitService) handleStatus(w http.ResponseWriter, r *http.Request) {
	v := t.Initiator.VO
	writeDOM(w, xmldom.NewElement("voStatus").
		SetAttr("name", v.Contract.VOName).
		SetAttr("phase", v.Phase().String()).
		SetAttr("members", strconv.Itoa(len(v.Members()))).
		SetAttr("violations", strconv.Itoa(len(v.Violations()))))
}

func (t *ToolkitService) lifecycleHandler(fn func() error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeFault(w, http.StatusMethodNotAllowed, "method", "POST required")
			return
		}
		if err := fn(); err != nil {
			writeFault(w, http.StatusConflict, "phase", err.Error())
			return
		}
		writeDOM(w, xmldom.NewElement("ok").SetAttr("phase", t.Initiator.VO.Phase().String()))
	}
}

func (t *ToolkitService) handleOperate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeFault(w, http.StatusMethodNotAllowed, "method", "POST required")
		return
	}
	member := r.URL.Query().Get("member")
	op := r.URL.Query().Get("operation")
	if err := t.Initiator.VO.Authorize(member, op); err != nil {
		writeFault(w, http.StatusForbidden, "authorize", err.Error())
		return
	}
	writeDOM(w, xmldom.NewElement("authorized").
		SetAttr("member", member).SetAttr("operation", op))
}

func (t *ToolkitService) handleViolation(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeFault(w, http.StatusMethodNotAllowed, "method", "POST required")
		return
	}
	q := r.URL.Query()
	weight := 1.0
	if ws := q.Get("weight"); ws != "" {
		f, err := strconv.ParseFloat(ws, 64)
		if err != nil {
			writeFault(w, http.StatusBadRequest, "params", "bad weight")
			return
		}
		weight = f
	}
	if err := t.Initiator.VO.ReportViolation(q.Get("member"), q.Get("operation"), q.Get("detail"), weight); err != nil {
		writeFault(w, http.StatusNotFound, "member", err.Error())
		return
	}
	writeDOM(w, xmldom.NewElement("recorded"))
}

// handleAudit exposes the monitoring log of §2 (VO monitoring is a Host-
// edition feature).
func (t *ToolkitService) handleAudit(w http.ResponseWriter, r *http.Request) {
	out := xmldom.NewElement("audit")
	for _, e := range t.Initiator.VO.Audit() {
		el := xmldom.NewElement("entry").
			SetAttr("member", e.Member).
			SetAttr("operation", e.Operation).
			SetAttr("allowed", boolStr(e.Allowed)).
			SetAttr("at", e.At.UTC().Format(time.RFC3339))
		if e.Detail != "" {
			el.SetAttr("detail", e.Detail)
		}
		out.AppendChild(el)
	}
	writeDOM(w, out)
}

func (t *ToolkitService) handleReputation(w http.ResponseWriter, r *http.Request) {
	member := r.URL.Query().Get("member")
	score := t.Initiator.VO.Reputation.Score(member, timeNow())
	writeDOM(w, xmldom.NewElement("reputation").
		SetAttr("member", member).
		SetAttr("score", strconv.FormatFloat(score, 'f', 4, 64)))
}
