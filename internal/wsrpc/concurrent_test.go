package wsrpc

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"trustvo/internal/negotiation"
	"trustvo/internal/pki"
	"trustvo/internal/store"
	"trustvo/internal/xtnl"
)

// concurrentTN hosts one standalone TN service whose policy demands a
// WorkPermit, plus n requester parties each holding their own.
func concurrentTN(t *testing.T, n int) (*TNService, *httptest.Server, []*negotiation.Party) {
	t.Helper()
	ca := pki.MustNewAuthority("CertCA")
	ctl := &negotiation.Party{
		Name:     "Ctl",
		Profile:  xtnl.NewProfile("Ctl"),
		Policies: xtnl.MustPolicySet(xtnl.MustParsePolicies("R <- WorkPermit")...),
		Trust:    pki.NewTrustStore(ca),
		Grant:    func(resource, peer string) ([]byte, error) { return []byte("ok"), nil },
	}
	svc := NewTNService(ctl)
	mux := http.NewServeMux()
	svc.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	members := make([]*negotiation.Party, n)
	for i := range members {
		name := fmt.Sprintf("worker-%02d", i)
		prof := xtnl.NewProfile(name)
		prof.Add(ca.MustIssue(pki.IssueRequest{Type: "WorkPermit", Holder: name}))
		members[i] = &negotiation.Party{
			Name: name, Profile: prof,
			Policies: xtnl.MustPolicySet(), Trust: pki.NewTrustStore(ca),
		}
	}
	return svc, srv, members
}

// TestConcurrentJoinThroughput is the tentpole's regression: 32 members
// negotiate admission against ONE live TN service simultaneously (twice
// each, so the second round re-verifies already-seen credentials).
// Every join must succeed, the verification cache must have been hit,
// and the session lifecycle counters must reconcile exactly — with the
// striped session table, created == completed + expired + evicted and a
// zero active gauge prove no session was lost or double-retired. Run
// under -race in CI.
func TestConcurrentJoinThroughput(t *testing.T) {
	const members, rounds = 32, 2
	svc, srv, parties := concurrentTN(t, members)

	errs := make(chan error, members)
	for _, p := range parties {
		go func(p *negotiation.Party) {
			cli := &TNClient{BaseURL: srv.URL, Party: p}
			for r := 0; r < rounds; r++ {
				out, err := cli.Negotiate(bg, "R")
				if err != nil {
					errs <- fmt.Errorf("%s round %d: %w", p.Name, r, err)
					return
				}
				if !out.Succeeded || string(out.Grant) != "ok" {
					errs <- fmt.Errorf("%s round %d: outcome %+v", p.Name, r, out)
					return
				}
			}
			errs <- nil
		}(p)
	}
	for i := 0; i < members; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	stats := svc.Party.Trust.CacheStats()
	if stats.Hits == 0 {
		t.Fatalf("verification cache never hit across %d joins: %+v", members*rounds, stats)
	}
	reg := svc.Metrics
	created := reg.Counter("tn_sessions_created_total").Value()
	completed := reg.Counter("tn_sessions_completed_total", "result", "success").Value() +
		reg.Counter("tn_sessions_completed_total", "result", "failure").Value()
	expired := reg.Counter("tn_sessions_swept_total", "reason", "expired").Value()
	evicted := reg.Counter("tn_sessions_swept_total", "reason", "evicted").Value()
	active := reg.Gauge("tn_sessions_active").Value()
	if created != int64(members*rounds) {
		t.Fatalf("created = %d, want %d", created, members*rounds)
	}
	if created != completed+expired+evicted {
		t.Fatalf("lifecycle counters do not reconcile: created %d != completed %d + expired %d + evicted %d",
			created, completed, expired, evicted)
	}
	if active != 0 {
		t.Fatalf("tn_sessions_active = %d after all joins drained, want 0", active)
	}
}

// TestSuspendDuringSweepSingleRetire races SuspendSessions against the
// expiry sweep over the striped table. Before retire()'s CAS, a session
// caught by both a sweep and a concurrent completion/suspend path could
// be retired twice, double-decrementing the active gauge. Here every
// stale session must be counted expired exactly once, the gauge must
// land on exactly zero (an underflow exposes a double retire), and the
// suspended copies must restore cleanly into a fresh service.
func TestSuspendDuringSweepSingleRetire(t *testing.T) {
	const sessions = 8
	svc, srv, parties := concurrentTN(t, sessions)
	svc.MaxSessionAge = 20 * time.Millisecond

	// Open one mid-negotiation session per party: started, one message
	// exchanged (a session with no state is skipped by suspend), never
	// finished.
	for _, p := range parties {
		cli := &TNClient{BaseURL: srv.URL, Party: p}
		id, err := cli.Start(bg, "R")
		if err != nil {
			t.Fatal(err)
		}
		ep := negotiation.NewRequester(p, "R")
		msg, err := ep.Start()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Exchange(bg, id, msg); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(60 * time.Millisecond) // all sessions now stale

	db := store.New()
	var (
		wg        sync.WaitGroup
		suspended int
		susErr    error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		suspended, susErr = svc.SuspendSessions(db)
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			svc.Sessions() // sweeps every stripe
		}
	}()
	wg.Wait()
	if susErr != nil {
		t.Fatal(susErr)
	}

	reg := svc.Metrics
	expired := reg.Counter("tn_sessions_swept_total", "reason", "expired").Value()
	if expired != sessions {
		t.Fatalf("expired = %d, want exactly %d (double retire inflates, lost retire deflates)", expired, sessions)
	}
	if active := reg.Gauge("tn_sessions_active").Value(); active != 0 {
		t.Fatalf("tn_sessions_active = %d after sweep, want 0", active)
	}
	if svc.Sessions() != 0 {
		t.Fatal("stale sessions still in the table")
	}

	// The suspended snapshots restore into a fresh service and claim
	// fresh capacity slots — once each.
	svc2, _, _ := concurrentTN(t, 0)
	svc2.Party = svc.Party
	resumed, err := svc2.ResumeSessions(db)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != suspended {
		t.Fatalf("resumed %d of %d suspended sessions", resumed, suspended)
	}
	if active := svc2.Metrics.Gauge("tn_sessions_active").Value(); active != int64(resumed) {
		t.Fatalf("restored service gauge = %d, want %d", active, resumed)
	}
	if got := svc2.Sessions(); got != resumed {
		t.Fatalf("restored service holds %d sessions, want %d", got, resumed)
	}
}

// BenchmarkConcurrentJoin measures one full standalone negotiation over
// live HTTP per iteration, with the service's caches warm — the unit the
// cmd/benchjoin -concurrency harness aggregates.
func BenchmarkConcurrentJoin(b *testing.B) {
	ca := pki.MustNewAuthority("CertCA")
	ctl := &negotiation.Party{
		Name:     "Ctl",
		Profile:  xtnl.NewProfile("Ctl"),
		Policies: xtnl.MustPolicySet(xtnl.MustParsePolicies("R <- WorkPermit")...),
		Trust:    pki.NewTrustStore(ca),
		Grant:    func(resource, peer string) ([]byte, error) { return []byte("ok"), nil },
	}
	svc := NewTNService(ctl)
	mux := http.NewServeMux()
	svc.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	prof := xtnl.NewProfile("Req")
	prof.Add(ca.MustIssue(pki.IssueRequest{Type: "WorkPermit", Holder: "Req"}))
	req := &negotiation.Party{
		Name: "Req", Profile: prof,
		Policies: xtnl.MustPolicySet(), Trust: pki.NewTrustStore(ca),
	}
	cli := &TNClient{BaseURL: srv.URL, Party: req}
	if out, err := cli.Negotiate(bg, "R"); err != nil || !out.Succeeded {
		b.Fatalf("warm-up: %v %+v", err, out)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := cli.Negotiate(bg, "R")
		if err != nil || !out.Succeeded {
			b.Fatalf("join %d: %v %+v", i, err, out)
		}
	}
}
