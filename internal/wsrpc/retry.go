package wsrpc

import (
	"context"
	"math/rand"
	"sync/atomic"
	"time"
)

// RetryPolicy controls the exponential-backoff retry loop of the hardened
// transport. Retries only ever fire for idempotent routes on Temporary
// errors; everything else surfaces after the first attempt. The zero value
// means "use defaults" (4 attempts, 25ms base, 1s cap, x2 growth, 50%
// jitter); set MaxAttempts to 1 to disable retries entirely.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 4; 1 disables retries; negative values behave like 1).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 25ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 1s).
	MaxDelay time.Duration
	// Multiplier grows the delay per retry (default 2).
	Multiplier float64
	// Jitter randomizes each delay by ±Jitter/2 of its value (default 0.5,
	// i.e. a delay d is drawn from [0.75d, 1.25d]).
	Jitter float64

	// Seed, when nonzero, makes the jitter sequence deterministic for
	// seeded fault-injection tests. A RetryPolicy is shared by every
	// request a client retries, across goroutines — an earlier revision
	// kept a *rand.Rand here, which is not goroutine-safe and either
	// corrupted its state under concurrent joins or (mutex-guarded)
	// serialized all retrying requests on one lock. Instead each call
	// derives its value lock-free from Seed and an atomic call counter
	// (SplitMix64, whose increment 0x9E3779B97F4A7C15 decorrelates
	// consecutive counter values).
	Seed uint64

	calls atomic.Uint64
}

func (p *RetryPolicy) attempts() int {
	if p == nil || p.MaxAttempts == 0 {
		return 4
	}
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// delay computes the backoff before retry number retry (0-based), honoring
// a server Retry-After hint as a floor — but never sleeping past MaxDelay,
// so an overloaded server advertising a long recovery horizon makes the
// client give up quickly instead of stalling the caller.
func (p *RetryPolicy) delay(retry int, hint time.Duration) time.Duration {
	base, maxd, mult, jit := 25*time.Millisecond, time.Second, 2.0, 0.5
	if p != nil {
		if p.BaseDelay > 0 {
			base = p.BaseDelay
		}
		if p.MaxDelay > 0 {
			maxd = p.MaxDelay
		}
		if p.Multiplier > 1 {
			mult = p.Multiplier
		}
		if p.Jitter > 0 {
			jit = p.Jitter
		}
	}
	d := float64(base)
	for i := 0; i < retry; i++ {
		d *= mult
		if d >= float64(maxd) {
			d = float64(maxd)
			break
		}
	}
	// spread d over [d*(1-jit/2), d*(1+jit/2)] so synchronized clients
	// don't re-collide on the same tick
	d *= 1 + jit*(p.rand()-0.5)
	out := time.Duration(d)
	if out > maxd {
		out = maxd
	}
	if hint > out {
		out = hint
	}
	if out > maxd {
		out = maxd
	}
	return out
}

// rand returns the next jitter value in [0, 1). Unseeded policies use
// the global math/rand source (goroutine-safe); seeded ones walk a
// lock-free deterministic sequence.
func (p *RetryPolicy) rand() float64 {
	if p == nil || p.Seed == 0 {
		return rand.Float64()
	}
	x := p.Seed + p.calls.Add(1)*0x9E3779B97F4A7C15
	return float64(splitmix64(x)>>11) / (1 << 53)
}

// splitmix64 is the finalizer of Vigna's SplitMix64 generator: a cheap,
// allocation-free bijective mixer good enough for backoff jitter.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// sleepCtx waits for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
