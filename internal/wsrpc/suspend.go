package wsrpc

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"trustvo/internal/negotiation"
	"trustvo/internal/store"
	"trustvo/internal/xmldom"
)

// Server-side negotiation suspend/resume.
//
// On graceful shutdown, a TNService can persist its live, unfinished
// sessions into the WAL-backed store — the negotiation tree snapshot
// plus the reply cache — and a restarted service restores them, so a
// client retrying (or resuming from its own ticket) continues the same
// negotiation instead of getting "unknown negotiation". This is the
// server half of the Trust-X interruption-recovery mechanism; the
// client half is TNClient.Resume.

// KindTNSession is the store kind for suspended negotiation sessions.
const KindTNSession = "tnsession"

// suspendDoc snapshots one session into its store document under the
// session lock, reporting ok=false when there is nothing to resume.
func (sess *tnSession) suspendDoc(id string) (doc *xmldom.Node, ok bool) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.suspendDocLocked(id)
}

// suspendDocLocked is suspendDoc for callers already holding sess.mu
// (the per-message standby ship runs inside the exchange handler's
// critical section).
func (sess *tnSession) suspendDocLocked(id string) (doc *xmldom.Node, ok bool) {
	state, err := sess.endpoint.SnapshotDOM()
	if err != nil {
		return nil, false
	}
	doc = xmldom.NewElement("tnSession").
		SetAttr("id", id).
		SetAttr("lastSeq", strconv.FormatInt(sess.lastSeq, 10)).
		SetAttr("lastStatus", strconv.Itoa(sess.lastReplyStatus))
	doc.AppendChild(state)
	if sess.lastReply != "" {
		lr := xmldom.NewElement("lastReply")
		lr.AppendChild(xmldom.NewText(sess.lastReply))
		doc.AppendChild(lr)
	}
	return doc, true
}

// SuspendSessions persists every live, unfinished session to db and
// returns how many were written. Sessions that never processed a
// message carry no state worth saving and are skipped. Call after the
// HTTP server has drained (no in-flight handlers).
func (s *TNService) SuspendSessions(db *store.Store) (int, error) {
	if db == nil {
		return 0, fmt.Errorf("wsrpc: suspend requires a store")
	}
	suspended := 0
	for _, sh := range s.shardTable() {
		// Snapshot the stripe under its lock, then serialize outside it:
		// suspendDoc takes sess.mu and db.Put hits the WAL, neither of
		// which belongs inside a stripe critical section. A session the
		// snapshot caught that a concurrent sweep then expires is still
		// safe to persist — retire() guarantees the slot was released
		// exactly once, and the restored copy claims a fresh slot.
		sh.mu.Lock() //lint:allow nakedlock snapshot per stripe inside a loop; defer would hold the lock across stripes
		live := make(map[string]*tnSession, len(sh.m))
		for id, sess := range sh.m {
			if !sess.done.Load() {
				live[id] = sess
			}
		}
		sh.mu.Unlock()
		for id, sess := range live {
			doc, ok := sess.suspendDoc(id)
			if !ok {
				// e.g. a session created by /tn/start that never saw a
				// message: nothing to resume
				continue
			}
			if err := db.Put(KindTNSession, id, doc); err != nil {
				return suspended, err
			}
			suspended++
		}
	}
	if m := s.Metrics; m != nil && suspended > 0 {
		m.Counter("tn_sessions_suspended_total").Add(int64(suspended))
	}
	return suspended, db.Sync()
}

// ResumeSessions restores sessions previously written by SuspendSessions
// and deletes their records. Unrestorable records (e.g. a credential no
// longer held) are logged, removed, and skipped — they must not wedge
// startup.
func (s *TNService) ResumeSessions(db *store.Store) (int, error) {
	if db == nil {
		return 0, fmt.Errorf("wsrpc: resume requires a store")
	}
	resumed := 0
	for _, rec := range db.List(KindTNSession) {
		id := rec.Key
		doc, err := rec.Doc()
		if err != nil {
			s.logf("wsrpc: dropping unreadable suspended session %s: %v", id, err)
			db.Delete(KindTNSession, id)
			continue
		}
		sess, err := s.restoreSession(doc)
		if err != nil {
			s.logf("wsrpc: dropping unrestorable suspended session %s: %v", id, err)
			db.Delete(KindTNSession, id)
			continue
		}
		s.shard(id).put(id, sess)
		s.active.Add(1)
		if m := s.Metrics; m != nil {
			m.Counter("tn_sessions_resumed_total").Inc()
			m.Gauge("tn_sessions_active").Inc()
		}
		db.Delete(KindTNSession, id)
		resumed++
	}
	return resumed, db.Sync()
}

func (s *TNService) restoreSession(doc *xmldom.Node) (*tnSession, error) {
	if doc.Name != "tnSession" {
		return nil, fmt.Errorf("expected <tnSession>, got <%s>", doc.Name)
	}
	party, err := s.sessionParty()
	if err != nil {
		return nil, err
	}
	ep, err := negotiation.RestoreEndpoint(party, doc.Child("negotiationState"))
	if err != nil {
		return nil, err
	}
	sess := &tnSession{endpoint: ep, lastUsed: time.Now()}
	// A malformed lastSeq or lastStatus must not be collapsed to 0: seq 0
	// disables the replay cache, so a corrupt record would silently lose
	// the session's at-most-once protection. Reject it; the caller logs
	// and drops the record.
	if raw := doc.AttrOr("lastSeq", ""); raw != "" {
		var err error
		sess.lastSeq, err = strconv.ParseInt(raw, 10, 64)
		if err != nil || sess.lastSeq < 0 {
			s.countBadEnvelope()
			return nil, &Error{
				Op:     "resume",
				Status: http.StatusBadRequest,
				Code:   "envelope",
				Err:    fmt.Errorf("wsrpc: malformed lastSeq %q in suspended session", raw),
			}
		}
	}
	if raw := doc.AttrOr("lastStatus", ""); raw != "" {
		var err error
		sess.lastReplyStatus, err = strconv.Atoi(raw)
		if err != nil || sess.lastReplyStatus < 0 {
			s.countBadEnvelope()
			return nil, &Error{
				Op:     "resume",
				Status: http.StatusBadRequest,
				Code:   "envelope",
				Err:    fmt.Errorf("wsrpc: malformed lastStatus %q in suspended session", raw),
			}
		}
	}
	if lr := doc.Child("lastReply"); lr != nil {
		sess.lastReply = lr.Text()
	}
	return sess, nil
}
