package wsrpc

import (
	"testing"
	"time"

	"trustvo/internal/negotiation"
	"trustvo/internal/partydb"
	"trustvo/internal/pki"
	"trustvo/internal/store"
	"trustvo/internal/store/cacher"
	"trustvo/internal/xtnl"
)

// partyCacheFixture builds a DB-backed TNService whose store holds one
// credential and one policy for the controller.
func partyCacheFixture(t *testing.T) (*TNService, *store.Store) {
	t.Helper()
	ca := pki.MustNewAuthority("CertCA")
	db := store.New()
	full := &negotiation.Party{
		Name:    "AircraftCo",
		Profile: xtnl.NewProfile("AircraftCo"),
		Policies: xtnl.MustPolicySet(xtnl.MustParsePolicies(
			"Certification <- AAAMember")...),
		Trust: pki.NewTrustStore(ca),
	}
	full.Profile.Add(ca.MustIssue(pki.IssueRequest{Type: "ISOCert", Holder: "AircraftCo"}))
	if err := partydb.SaveParty(db, full); err != nil {
		t.Fatal(err)
	}
	template := &negotiation.Party{
		Name:     "AircraftCo",
		Profile:  xtnl.NewProfile("AircraftCo"),
		Policies: xtnl.MustPolicySet(),
		Trust:    pki.NewTrustStore(ca),
	}
	svc := NewTNService(template)
	svc.DB = db
	return svc, db
}

// reloads reads the tn_party_reloads_total counter.
func reloads(s *TNService) int64 {
	return s.Metrics.Counter("tn_party_reloads_total").Value()
}

// TestPartyReloadScopedInvalidation is the regression test for the memo
// key bug: loadPartyCached used to key on the store's GLOBAL generation,
// so every resume-ticket or replicated-session write (which the chaos
// and suspend paths produce constantly) invalidated the memo and forced
// a full re-parse of all credentials and policies. The memo must only
// turn over when a kind the party is built from changes.
func TestPartyReloadScopedInvalidation(t *testing.T) {
	svc, db := partyCacheFixture(t)

	p1, err := svc.loadPartyCached()
	if err != nil {
		t.Fatal(err)
	}
	if got := reloads(svc); got != 1 {
		t.Fatalf("reloads after first load = %d, want 1", got)
	}

	// Writes to kinds the party does NOT read: resume tickets and
	// replicated session documents.
	tkt := &negotiation.ResumeTicket{NegID: "n1", Expires: time.Now().Add(time.Hour)}
	if err := partydb.SaveResumeTicket(db, "AircraftCo", tkt); err != nil {
		t.Fatal(err)
	}
	if err := db.PutXML(KindTNSession, "s1", `<tnSession id="s1"/>`); err != nil {
		t.Fatal(err)
	}

	p2, err := svc.loadPartyCached()
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p1 {
		t.Error("unrelated-kind writes invalidated the party memo")
	}
	if got := reloads(svc); got != 1 {
		t.Errorf("reloads after unrelated writes = %d, want 1 (no thrash)", got)
	}

	// A write to a party kind must invalidate.
	ca := pki.MustNewAuthority("OtherCA")
	cred := ca.MustIssue(pki.IssueRequest{Type: "AAAMember", Holder: "AircraftCo"})
	if err := db.Put("credential", "AircraftCo/"+cred.ID, cred.DOM()); err != nil {
		t.Fatal(err)
	}
	p3, err := svc.loadPartyCached()
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p2 {
		t.Error("credential write did not invalidate the party memo")
	}
	if got := reloads(svc); got != 2 {
		t.Errorf("reloads after credential write = %d, want 2", got)
	}
}

// TestPartyReloadThroughCache routes the reload through a cacher.Cache
// and checks both that it works and that its invalidation is scoped the
// same way.
func TestPartyReloadThroughCache(t *testing.T) {
	svc, db := partyCacheFixture(t)
	c := cacher.New(db, time.Minute)
	svc.PartyReader = c

	p1, err := svc.loadPartyCached()
	if err != nil {
		t.Fatal(err)
	}
	if p1.Profile.Len() == 0 {
		t.Fatal("cache-routed reload returned an empty profile")
	}
	if st := c.Stats(); st.Misses == 0 {
		t.Fatalf("reload did not go through the cache: %+v", st)
	}

	// Unrelated write: neither the memo nor the party-kind cache slots
	// turn over.
	if err := db.PutXML(KindTNSession, "s1", `<tnSession id="s1"/>`); err != nil {
		t.Fatal(err)
	}
	p2, err := svc.loadPartyCached()
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p1 {
		t.Error("session write invalidated the cache-routed memo")
	}

	// Party-kind write: memo turns over and the fresh load sees the new
	// record through the cache (the commit observer invalidated it).
	ca := pki.MustNewAuthority("OtherCA")
	cred := ca.MustIssue(pki.IssueRequest{Type: "AAAMember", Holder: "AircraftCo"})
	if err := db.Put("credential", "AircraftCo/"+cred.ID, cred.DOM()); err != nil {
		t.Fatal(err)
	}
	p3, err := svc.loadPartyCached()
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p2 {
		t.Fatal("credential write did not invalidate the cache-routed memo")
	}
	if p3.Profile.Len() != p2.Profile.Len()+1 {
		t.Errorf("reloaded profile has %d credentials, want %d (stale cache?)",
			p3.Profile.Len(), p2.Profile.Len()+1)
	}
}
