package wsrpc

import (
	"fmt"
	"net/http"
	"time"

	"trustvo/internal/negotiation"
	"trustvo/internal/xmldom"
)

// Cluster-facing session-table operations. internal/cluster routes
// sessions across nodes by hashing their ids onto a ring; these methods
// are the service-side primitives failover and migration build on:
// adopt a shipped session, materialize an externally-assigned id, drain
// sessions off a node, and answer ownership probes.

// HasSession reports whether id maps to a live session, without
// refreshing its idle clock.
func (s *TNService) HasSession(id string) bool {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m[id] != nil
}

// AdoptSessionDoc restores one suspended-session document (the
// <tnSession> produced by the suspend/standby path) into the live table
// under its embedded id, claiming a capacity slot. When a live session
// already holds the id the adoption is skipped — the live copy is at
// least as fresh as any shipped snapshot, so a duplicate or stale
// delivery must not clobber it.
func (s *TNService) AdoptSessionDoc(doc *xmldom.Node) (string, error) {
	id := doc.AttrOr("id", "")
	if id == "" {
		return "", &Error{
			Op:     "adopt",
			Status: http.StatusBadRequest,
			Code:   "schema",
			Err:    fmt.Errorf("wsrpc: session document without id"),
		}
	}
	sess, err := s.restoreSession(doc)
	if err != nil {
		return "", err
	}
	sh := s.shard(id)
	sh.mu.Lock() //lint:allow nakedlock metrics below must run outside the stripe lock
	if _, exists := sh.m[id]; exists {
		sh.mu.Unlock()
		return id, nil
	}
	sh.m[id] = sess
	sh.mu.Unlock()
	s.active.Add(1)
	if m := s.Metrics; m != nil {
		m.Counter("tn_sessions_adopted_total").Inc()
		m.Gauge("tn_sessions_active").Inc()
	}
	return id, nil
}

// EnsureSession materializes a fresh session under an externally
// assigned id when none exists (idempotent). The cluster router uses
// this when the first message of a negotiation arrives for an id whose
// /tn/start was served by a node that died before any state shipped:
// start assigns an id and nothing more, so a fresh endpoint loses
// nothing.
func (s *TNService) EnsureSession(id string) error {
	if s.HasSession(id) {
		return nil
	}
	party, err := s.sessionParty()
	if err != nil {
		return err
	}
	sh := s.shard(id)
	s.sweepShard(sh)
	if !s.reserveActive() {
		for _, other := range s.shardTable() {
			s.sweepShard(other)
		}
		s.evictForCapacity()
		if !s.reserveActive() {
			return &capacityError{active: int(s.active.Load()), retryAfter: s.capacityRetry()}
		}
	}
	sh.mu.Lock() //lint:allow nakedlock slot release on the exists path must run outside the stripe lock
	if _, exists := sh.m[id]; exists {
		sh.mu.Unlock()
		s.active.Add(-1) // lost the race: the winner holds the slot
		return nil
	}
	sh.m[id] = &tnSession{
		endpoint: negotiation.NewController(party),
		lastUsed: time.Now(),
	}
	sh.mu.Unlock()
	if m := s.Metrics; m != nil {
		m.Counter("tn_sessions_created_total").Inc()
		m.Gauge("tn_sessions_active").Inc()
	}
	return nil
}

// DrainSessions snapshots and removes live, unfinished sessions,
// returning their suspended-state documents keyed by id. A nil filter
// drains everything; otherwise only ids the filter accepts move.
// Sessions with nothing to snapshot (no message processed yet) are
// dropped from the table but returned with a nil document, so the
// caller can still count them. Each removed session's capacity slot is
// released.
func (s *TNService) DrainSessions(filter func(id string) bool) map[string]*xmldom.Node {
	out := make(map[string]*xmldom.Node)
	for _, sh := range s.shardTable() {
		sh.mu.Lock() //lint:allow nakedlock snapshot per stripe inside a loop; defer would hold the lock across stripes
		drained := make(map[string]*tnSession)
		for id, sess := range sh.m {
			if sess.done.Load() {
				continue
			}
			if filter != nil && !filter(id) {
				continue
			}
			drained[id] = sess
			delete(sh.m, id)
		}
		sh.mu.Unlock()
		for id, sess := range drained {
			s.retire(sess)
			doc, ok := sess.suspendDoc(id)
			if !ok {
				out[id] = nil
				continue
			}
			out[id] = doc
		}
	}
	return out
}
