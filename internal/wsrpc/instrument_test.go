package wsrpc

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestMetricsEndpointAfterNegotiation drives one full membership
// negotiation through the HTTP service and asserts the /metrics scrape
// reflects it: per-route HTTP series, session lifecycle counters, and
// the negotiation-level series recorded by the controller endpoint.
func TestMetricsEndpointAfterNegotiation(t *testing.T) {
	f := newWSFixture(t)
	f.publishMember(t)
	var debug []string
	f.tk.TN.Debugf = func(format string, args ...any) {
		debug = append(debug, fmt.Sprintf(format, args...))
	}

	if _, out, err := f.member.Join(bg, "DesignWebPortal"); err != nil || !out.Succeeded {
		t.Fatalf("join: %v %+v", err, out)
	}

	resp, err := http.Get(f.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content-type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`http_requests_total{code="200",route="/tn/start"} 1`,
		`http_request_seconds_bucket{route="/tn/start",le="+Inf"} 1`,
		`http_request_seconds_count{route="/tn/start"} 1`,
		`http_requests_total{code="200",route="/vo/apply"} 1`,
		"# TYPE http_requests_in_flight gauge",
		"tn_sessions_created_total 1",
		`tn_sessions_completed_total{result="success"} 1`,
		"tn_sessions_active 0",
		`tn_negotiations_total{result="success",role="controller"} 1`,
		`tn_phase_seconds_count{phase="policy-evaluation",role="controller"} 1`,
		`tn_phase_seconds_count{phase="credential-exchange",role="controller"} 1`,
		`tn_disclosures_received_total{role="controller"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", body)
	}

	// one debug line per negotiation message handled
	if len(debug) == 0 {
		t.Fatal("no debug lines recorded")
	}
	for _, line := range debug {
		if !strings.Contains(line, "session=") || !strings.Contains(line, "type=") ||
			!strings.Contains(line, "dur=") {
			t.Fatalf("debug line missing fields: %q", line)
		}
	}
}

func TestHealthz(t *testing.T) {
	f := newWSFixture(t)
	resp, err := http.Get(f.srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(raw) != "ok\n" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, raw)
	}
}

// TestCapacityEvictsIdleLiveSessions exercises the pressure valve: at
// MaxSessions, a live session idle for more than half of MaxSessionAge
// is evicted (with a log line and a counted reason) instead of the new
// negotiation being refused. Fresh sessions — as in TestSessionCapacity
// — still produce a capacity fault.
func TestCapacityEvictsIdleLiveSessions(t *testing.T) {
	f := newWSFixture(t)
	f.tk.TN.MaxSessions = 2
	f.tk.TN.MaxSessionAge = 200 * time.Millisecond
	var logged []string
	f.tk.TN.Logf = func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}
	tn := &TNClient{BaseURL: f.srv.URL, Party: f.member.Party}
	first, err := tn.Start(bg, "R")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Start(bg, "R"); err != nil {
		t.Fatal(err)
	}
	// past half the session age, but well before expiry
	time.Sleep(120 * time.Millisecond)
	if _, err := tn.Start(bg, "R"); err != nil {
		t.Fatalf("idle live session not evicted: %v", err)
	}
	if got := f.tk.TN.Metrics.Counter("tn_sessions_swept_total", "reason", "evicted").Value(); got != 1 {
		t.Fatalf("evicted counter = %d", got)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "evicted live negotiation "+first) {
		t.Fatalf("eviction log = %q", logged)
	}
	if _, _, _, err := tn.Status(bg, first); err == nil {
		t.Fatal("evicted session still served")
	}
}
