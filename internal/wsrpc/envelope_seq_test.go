package wsrpc

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"trustvo/internal/negotiation"
	"trustvo/internal/store"
	"trustvo/internal/xmldom"
)

func TestOpenEnvelopeSeqStrict(t *testing.T) {
	msg := &negotiation.Message{Type: negotiation.MsgRequest, Resource: "R"}

	// Absent seq: pre-sequence client, decodes to 0.
	env := envelope("n1", msg)
	id, seq, _, err := openEnvelopeSeq(env)
	if err != nil || id != "n1" || seq != 0 {
		t.Fatalf("plain envelope: id=%q seq=%d err=%v", id, seq, err)
	}

	// Well-formed seq round-trips.
	env = envelopeSeq("n1", 42, msg)
	if _, seq, _, err = openEnvelopeSeq(env); err != nil || seq != 42 {
		t.Fatalf("seq envelope: seq=%d err=%v", seq, err)
	}

	// Malformed or non-positive seq must be rejected, not collapsed to 0 —
	// 0 disables the replay cache.
	for _, raw := range []string{"abc", "-3", "0", "1e3", "42x", "99999999999999999999"} {
		env = envelope("n1", msg)
		env.SetAttr("seq", raw)
		_, _, _, err := openEnvelopeSeq(env)
		if err == nil {
			t.Fatalf("seq=%q accepted", raw)
		}
		var werr *Error
		if !errors.As(err, &werr) || werr.Code != "envelope" {
			t.Fatalf("seq=%q: err = %v, want *Error with code %q", raw, err, "envelope")
		}
	}
}

// TestMalformedSeqFaultAndCounter posts an envelope whose seq attribute
// is garbage: the service must answer a 400 "envelope" fault, bump
// tn_bad_envelope_total, and leave the negotiation usable.
func TestMalformedSeqFaultAndCounter(t *testing.T) {
	svc, _, req := standaloneTN(t)
	mux := http.NewServeMux()
	svc.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	client := &TNClient{BaseURL: srv.URL, Party: req}
	negID, err := client.Start(bg, "R")
	if err != nil {
		t.Fatal(err)
	}
	ep := negotiation.NewRequester(req, "R")
	msg, err := ep.Start()
	if err != nil {
		t.Fatal(err)
	}

	bad := envelopeSeq(negID, 7, msg)
	bad.SetAttr("seq", "forty-two")
	resp, err := http.Post(srv.URL+"/tn/policyExchange", ContentType, strings.NewReader(bad.XML()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	root, err := xmldom.Parse(resp.Body)
	if err != nil || root.Name != "fault" || root.AttrOr("code", "") != "envelope" {
		t.Fatalf("fault body: %v %s", err, root.XML())
	}
	if got := svc.Metrics.Counter("tn_bad_envelope_total").Value(); got != 1 {
		t.Fatalf("tn_bad_envelope_total = %d, want 1", got)
	}

	// The rejected envelope was never applied: the same message with its
	// real sequence number still advances the negotiation.
	good, err := http.Post(srv.URL+"/tn/policyExchange", ContentType, strings.NewReader(envelopeSeq(negID, 7, msg).XML()))
	if err != nil {
		t.Fatal(err)
	}
	defer good.Body.Close()
	if good.StatusCode != http.StatusOK {
		t.Fatalf("valid envelope after rejected one: status = %d", good.StatusCode)
	}
}

// TestResumeDropsCorruptSessionRecord corrupts a suspended session's
// lastSeq on disk: the restarted service must drop (and delete) the
// record, count it, and keep starting up — never restore it with the
// replay cache silently disabled.
func TestResumeDropsCorruptSessionRecord(t *testing.T) {
	svc1, ctl, req := standaloneTN(t)
	mux1 := http.NewServeMux()
	svc1.Register(mux1)
	srv1 := httptest.NewServer(mux1)
	defer srv1.Close()

	gate := &gateTransport{after: 2}
	client := &TNClient{
		BaseURL: srv1.URL, Party: req,
		Transport: &Transport{
			HTTP:  &http.Client{Transport: gate},
			Retry: RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		},
	}
	_, err := client.Negotiate(bg, "R")
	var se *SuspendedError
	if !errors.As(err, &se) {
		t.Fatalf("expected SuspendedError, got %v", err)
	}

	db := store.New()
	if n, err := svc1.SuspendSessions(db); err != nil || n != 1 {
		t.Fatalf("suspend: n=%d err=%v", n, err)
	}
	srv1.Close()

	rec := db.List(KindTNSession)[0]
	doc, err := rec.Doc()
	if err != nil {
		t.Fatal(err)
	}
	tampered := doc.Clone()
	tampered.SetAttr("lastSeq", "forty-two")
	if err := db.Put(KindTNSession, rec.Key, tampered); err != nil {
		t.Fatal(err)
	}

	svc2 := NewTNService(ctl)
	n, err := svc2.ResumeSessions(db)
	if err != nil {
		t.Fatalf("resume must not wedge on a corrupt record: %v", err)
	}
	if n != 0 {
		t.Fatalf("resumed %d sessions from corrupt records, want 0", n)
	}
	if left := db.List(KindTNSession); len(left) != 0 {
		t.Fatalf("corrupt session record not deleted: %d left", len(left))
	}
	if got := svc2.Metrics.Counter("tn_bad_envelope_total").Value(); got != 1 {
		t.Fatalf("tn_bad_envelope_total = %d, want 1", got)
	}
}
