package wsrpc

import (
	"log"
	"net/http"
	"strconv"
	"time"

	"trustvo/internal/telemetry"
)

// statusWriter captures the response status code for per-route metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the service's HTTP metrics: request
// count by route and status code, request latency by route, and a global
// in-flight gauge. With no registry the handler is returned untouched —
// the uninstrumented service serves at full speed.
func instrument(reg *telemetry.Registry, route string, h http.HandlerFunc) http.HandlerFunc {
	if reg == nil {
		return h
	}
	inFlight := reg.Gauge("http_requests_in_flight")
	latency := reg.LatencyHistogram("http_request_seconds", "route", route)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inFlight.Inc()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		inFlight.Dec()
		latency.ObserveSince(start)
		reg.Counter("http_requests_total", "route", route, "code", strconv.Itoa(sw.code)).Inc()
	}
}

// instrument applies the service's registry to one route.
func (s *TNService) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return instrument(s.Metrics, route, h)
}

// handleHealthz answers liveness probes.
func handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

// logf reports operational events (session eviction under pressure);
// defaults to the standard logger so evictions are never silent.
func (s *TNService) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// debugf reports per-message debug lines; silent unless Debugf is set.
func (s *TNService) debugf(format string, args ...any) {
	if s.Debugf != nil {
		s.Debugf(format, args...)
	}
}

func (k phaseKind) String() string {
	if k == policyPhase {
		return "policy"
	}
	return "credential"
}
