package wsrpc

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Error is the typed transport error of the hardened client path. It
// classifies every failed call so the retry layer can decide mechanically:
// Temporary errors on idempotent routes are retried with backoff, anything
// else surfaces immediately. A served <fault> payload stays reachable
// through errors.As(err, **Fault) via the Unwrap chain.
type Error struct {
	// Op is "METHOD route", e.g. "POST /tn/start".
	Op string
	// Status is the HTTP status code (0 when the request never completed:
	// connection failure, timeout, dropped response).
	Status int
	// Code is the wsrpc fault code when the server answered with a
	// parseable <fault> ("" otherwise).
	Code string
	// Temporary marks transient failures — connection errors, per-request
	// timeouts, 429/502/503/504, truncated or malformed response bodies —
	// that a retry on an idempotent route may cure.
	Temporary bool
	// RetryAfter is the server-suggested backoff (from a 503 Retry-After
	// header), 0 when absent.
	RetryAfter time.Duration
	// Err is the underlying cause (*Fault, a net error, a parse error).
	Err error
}

// Error implements error.
func (e *Error) Error() string {
	kind := "permanent"
	if e.Temporary {
		kind = "temporary"
	}
	if e.Status != 0 {
		return fmt.Sprintf("wsrpc: %s: status %d (%s): %v", e.Op, e.Status, kind, e.Err)
	}
	return fmt.Sprintf("wsrpc: %s: %s transport failure: %v", e.Op, kind, e.Err)
}

// Unwrap exposes the cause for errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Err }

// IsTemporary reports whether err is a transient wsrpc transport error
// (retry may cure it).
func IsTemporary(err error) bool {
	var te *Error
	return errors.As(err, &te) && te.Temporary
}

// transientStatus reports whether an HTTP status signals a transient
// server condition worth retrying.
func transientStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, // 429
		http.StatusBadGateway,         // 502
		http.StatusServiceUnavailable, // 503
		http.StatusGatewayTimeout:     // 504
		return true
	}
	return false
}

// parseRetryAfter reads a delay-seconds Retry-After header (the HTTP-date
// form is not used by this service).
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// suspendable reports whether a mid-negotiation error warrants writing a
// resume ticket: the transport failed (we cannot know how far the message
// got) or the negotiation deadline expired. Protocol faults — the server
// answered — are not suspendable; the protocol already resolved them.
func suspendable(err error) bool {
	if IsTemporary(err) {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}
