package wsrpc

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"trustvo/internal/telemetry"
	"trustvo/internal/xmldom"
)

// Transport is the hardened call path shared by TNClient and
// MemberClient: per-request deadlines, exponential-backoff retries on
// idempotent routes, and a per-endpoint circuit breaker. The zero value
// works (defaults below); a single Transport may be shared by many
// clients — the breaker state is per (base URL, route).
type Transport struct {
	// HTTP performs the requests (a 30s-timeout default client when nil).
	HTTP *http.Client
	// RequestTimeout bounds each individual attempt (default 10s; set
	// negative to disable).
	RequestTimeout time.Duration
	// Retry controls the backoff loop (zero value = defaults).
	Retry RetryPolicy
	// BreakerThreshold is the consecutive-failure count that trips an
	// endpoint's breaker (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before
	// half-opening for a probe (default 2s).
	BreakerCooldown time.Duration
	// Metrics receives retry/breaker counters (nil disables).
	Metrics *telemetry.Registry

	mu       sync.Mutex
	breakers map[string]*breaker
}

// DefaultTransport is used by clients that configure neither Transport
// nor HTTP; it keeps breaker state process-wide like http.DefaultClient.
var DefaultTransport = &Transport{}

func (t *Transport) httpClient() *http.Client {
	if t.HTTP != nil {
		return t.HTTP
	}
	return defaultHTTP
}

func (t *Transport) requestTimeout() time.Duration {
	if t.RequestTimeout < 0 {
		return 0
	}
	if t.RequestTimeout == 0 {
		return 10 * time.Second
	}
	return t.RequestTimeout
}

// breakerFor returns (lazily creating) the breaker guarding one endpoint.
func (t *Transport) breakerFor(endpoint string) *breaker {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.breakers == nil {
		t.breakers = make(map[string]*breaker)
	}
	b := t.breakers[endpoint]
	if b == nil {
		b = newBreaker(t.BreakerThreshold, t.BreakerCooldown, nil)
		t.breakers[endpoint] = b
	}
	return b
}

func (t *Transport) count(name string, labels ...string) {
	if t.Metrics != nil {
		//lint:allow metricname forwarding helper; every call site passes a literal name
		t.Metrics.Counter(name, labels...).Inc()
	}
}

// Call exposes the hardened call path to sibling packages — the cluster
// layer routes forwarding, standby shipping, migration and replication
// RPCs through it so every cross-node hop gets the same deadlines,
// retries and breaker as client traffic. Semantics are those of call.
func (t *Transport) Call(ctx context.Context, method, base, route, query, body string, idempotent bool) (*xmldom.Node, error) {
	return t.call(ctx, method, base, route, query, body, idempotent)
}

// call performs one logical request: POST body (or GET when body is "")
// to base+route, with retries when idempotent. It returns the parsed XML
// root of a 2xx response; every failure is a *Error.
func (t *Transport) call(ctx context.Context, method, base, route, query, body string, idempotent bool) (*xmldom.Node, error) {
	if ctx == nil {
		ctx = context.Background() //lint:allow ctxpropagate defensive default for nil-ctx callers
	}
	url := strings.TrimRight(base, "/") + route + query
	op := method + " " + route
	br := t.breakerFor(strings.TrimRight(base, "/") + route)
	attempts := 1
	if idempotent {
		attempts = t.Retry.attempts()
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			t.count("wsrpc_client_retries_total", "route", route)
			hint := time.Duration(0)
			if te, ok := lastErr.(*Error); ok {
				hint = te.RetryAfter
			}
			if err := sleepCtx(ctx, t.Retry.delay(attempt-1, hint)); err != nil {
				return nil, &Error{Op: op, Err: err}
			}
		}
		if !br.allow() {
			t.count("wsrpc_client_breaker_rejected_total", "route", route)
			lastErr = &Error{Op: op, Code: "breaker-open", Temporary: true, Err: ErrCircuitOpen}
			continue // the backoff may outlast the cooldown
		}
		root, err := t.once(ctx, method, url, op, body)
		if err == nil {
			br.success()
			return root, nil
		}
		lastErr = err
		te, _ := err.(*Error)
		if te != nil && te.Temporary {
			if br.failure() {
				t.count("wsrpc_client_breaker_tripped_total", "route", route)
			}
		} else {
			// the server answered with a definitive protocol response:
			// the endpoint is alive even though the call failed
			br.success()
		}
		if te == nil || !te.Temporary || ctx.Err() != nil {
			return nil, err
		}
	}
	t.count("wsrpc_client_gaveup_total", "route", route)
	return nil, lastErr
}

// once performs a single attempt under the per-request timeout.
func (t *Transport) once(ctx context.Context, method, url, op, body string) (*xmldom.Node, error) {
	reqCtx := ctx
	cancel := func() {}
	if rt := t.requestTimeout(); rt > 0 {
		reqCtx, cancel = context.WithTimeout(ctx, rt)
	}
	defer cancel()
	var rd io.Reader
	if method == http.MethodPost {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequestWithContext(reqCtx, method, url, rd)
	if err != nil {
		return nil, &Error{Op: op, Err: err}
	}
	if method == http.MethodPost {
		req.Header.Set("Content-Type", ContentType)
	}
	resp, err := t.httpClient().Do(req)
	if err != nil {
		// a request that never completed is transient — unless the
		// caller's own context ended it
		return nil, &Error{Op: op, Temporary: ctx.Err() == nil, Err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return nil, &Error{Op: op, Status: resp.StatusCode, Temporary: ctx.Err() == nil, Err: err}
	}
	root, perr := xmldom.Parse(bytes.NewReader(data))
	if resp.StatusCode >= 400 {
		e := &Error{
			Op:         op,
			Status:     resp.StatusCode,
			Temporary:  transientStatus(resp.StatusCode),
			RetryAfter: parseRetryAfter(resp.Header),
		}
		if perr == nil && root.Name == "fault" {
			f := faultFromDOM(root)
			e.Code = f.Code
			e.Err = f
		} else {
			e.Err = fmt.Errorf("server returned %s", resp.Status)
		}
		return nil, e
	}
	if perr != nil {
		// truncated or garbled body on a 2xx: the reply was lost in
		// transit — safe to retry on idempotent routes
		return nil, &Error{Op: op, Status: resp.StatusCode, Code: "malformed-response", Temporary: true, Err: perr}
	}
	if root.Name == "fault" {
		// defensive: a fault served with a 2xx status
		f := faultFromDOM(root)
		return nil, &Error{Op: op, Status: resp.StatusCode, Code: f.Code, Err: f}
	}
	return root, nil
}

// expectRoot asserts the root element name of a successful call.
func expectRoot(root *xmldom.Node, want string) (*xmldom.Node, error) {
	if root.Name != want {
		return nil, fmt.Errorf("wsrpc: expected <%s> response, got <%s>", want, root.Name)
	}
	return root, nil
}
