package wsrpc

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"trustvo/internal/faultinject"
	"trustvo/internal/negotiation"
	"trustvo/internal/pki"
	"trustvo/internal/store"
	"trustvo/internal/telemetry"
	"trustvo/internal/xmldom"
	"trustvo/internal/xtnl"
)

// faultRetry is an aggressive retry budget for fault-injected loopback
// tests: convergence matters, latency does not.
func faultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond}
}

// TestJoinUnderFaultModes runs the full VO join under each injected
// fault mode (and the mixed profile) with a fixed seed, requiring every
// join to converge — directly via retries or through a suspend/resume
// round — and the fault machinery to actually fire.
func TestJoinUnderFaultModes(t *testing.T) {
	const joins = 5
	modes := []struct {
		name string
		cfg  faultinject.Config
	}{
		{"drop", faultinject.Config{Seed: 3, Drop: 0.20}},
		{"delay", faultinject.Config{Seed: 3, Delay: 0.50, MaxDelay: 2 * time.Millisecond}},
		{"duplicate", faultinject.Config{Seed: 3, Duplicate: 0.50}},
		{"truncate", faultinject.Config{Seed: 3, Truncate: 0.30}},
		{"mixed", faultinject.Config{Seed: 3, Drop: 0.15, Delay: 0.30, MaxDelay: 2 * time.Millisecond,
			Duplicate: 0.05, Truncate: 0.05}},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			f := newWSFixture(t)
			f.publishMember(t)
			reg := f.tk.TN.Metrics
			ft := faultinject.New(mode.cfg, nil)
			ft.Metrics = reg
			f.member.Transport = &Transport{
				HTTP:    &http.Client{Transport: ft},
				Retry:   faultRetry(),
				Metrics: reg,
			}
			for i := 0; i < joins; i++ {
				if f.tk.Initiator.VO.Member("AerospaceCo") != nil {
					if err := f.tk.Initiator.VO.Remove("AerospaceCo"); err != nil {
						t.Fatal(err)
					}
				}
				der, out, err := f.member.Join(bg, "DesignWebPortal")
				for resumed := 0; err != nil; resumed++ {
					var se *SuspendedError
					if !errors.As(err, &se) {
						t.Fatalf("join %d failed unrecoverably: %v", i, err)
					}
					if resumed >= 10 {
						t.Fatalf("join %d did not converge after %d resumes: %v", i, resumed, err)
					}
					der, out, err = f.member.ResumeJoin(bg, se.Ticket)
				}
				if !out.Succeeded || len(der) == 0 {
					t.Fatalf("join %d: %+v", i, out)
				}
			}
			if got := ft.Stats.Requests.Load(); got == 0 {
				t.Fatal("fault transport saw no requests")
			}
			injected := ft.Stats.DropsPre.Load() + ft.Stats.DropsPost.Load() +
				ft.Stats.Delays.Load() + ft.Stats.Duplicates.Load() + ft.Stats.Truncations.Load()
			if injected == 0 {
				t.Fatalf("seed %d injected no faults over %d requests", mode.cfg.Seed, ft.Stats.Requests.Load())
			}
			// lossy modes must exercise the retry loop; duplication must
			// exercise the server's replay cache
			switch mode.name {
			case "drop", "truncate", "mixed":
				if sumRouteCounter(reg, "wsrpc_client_retries_total") == 0 {
					t.Fatal("no client retries recorded under a lossy fault mode")
				}
			case "duplicate":
				if reg.Counter("tn_replays_total").Value() == 0 {
					t.Fatal("no server replays recorded under duplicated delivery")
				}
			}
		})
	}
}

func sumRouteCounter(reg *telemetry.Registry, name string) int64 {
	var total int64
	for _, route := range []string{
		"/tn/start", "/tn/policyExchange", "/tn/credentialExchange", "/vo/apply",
	} {
		total += reg.Counter(name, "route", route).Value()
	}
	return total
}

// gateTransport passes requests through until `after` of them have been
// made, then fails everything at the connection level until reopened.
type gateTransport struct {
	after int64
	n     atomic.Int64
	open  atomic.Bool
}

func (g *gateTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if !g.open.Load() && g.n.Add(1) > g.after {
		return nil, errors.New("link down")
	}
	return http.DefaultTransport.RoundTrip(r)
}

// TestJoinSuspendsAndResumes cuts the link hard mid-negotiation: the
// join must fail with a SuspendedError carrying a signed resume ticket,
// and once the link is back, ResumeJoin completes the admission from the
// last acknowledged tree state.
func TestJoinSuspendsAndResumes(t *testing.T) {
	f := newWSFixture(t)
	f.publishMember(t)
	reg := f.tk.TN.Metrics
	// 3 clean requests: /vo/apply, /tn/start, first exchange (the policy
	// reply builds the requester's tree); then the link goes down
	gate := &gateTransport{after: 3}
	f.member.Transport = &Transport{
		HTTP:    &http.Client{Transport: gate},
		Retry:   RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		Metrics: reg,
	}
	f.member.Party.Keys = pki.MustGenerateKeyPair() // tickets get signed

	_, _, err := f.member.Join(bg, "DesignWebPortal")
	var se *SuspendedError
	if !errors.As(err, &se) {
		t.Fatalf("expected SuspendedError, got %v", err)
	}
	if se.Ticket == nil || se.Ticket.NegID == "" || se.Ticket.State == nil || se.Ticket.LastSent == nil {
		t.Fatalf("incomplete resume ticket: %+v", se.Ticket)
	}
	if len(se.Ticket.Signature) == 0 {
		t.Fatal("ticket not signed despite party keys")
	}
	if got := reg.Counter("tn_suspends_total").Value(); got != 1 {
		t.Fatalf("tn_suspends_total = %d", got)
	}

	// round-trip the ticket through its DOM, as a persisted ticket would
	doc, err := xmldom.ParseString(se.Ticket.DOM().XML())
	if err != nil {
		t.Fatal(err)
	}
	ticket, err := negotiation.ResumeTicketFromDOM(doc)
	if err != nil {
		t.Fatal(err)
	}

	gate.open.Store(true)
	der, out, err := f.member.ResumeJoin(bg, ticket)
	if err != nil || !out.Succeeded {
		t.Fatalf("resume: %v %+v", err, out)
	}
	if _, err := f.tk.Initiator.VO.Authority.VerifyMembership(der); err != nil {
		t.Fatalf("membership token after resume: %v", err)
	}
	if got := reg.Counter("tn_resumes_total").Value(); got != 1 {
		t.Fatalf("tn_resumes_total = %d", got)
	}
	// the interrupted negotiation finished; it did not restart
	if got := reg.Counter("tn_sessions_created_total").Value(); got != 1 {
		t.Fatalf("tn_sessions_created_total = %d, want 1 (no restart)", got)
	}
}

// TestExpiredResumeTicketRejected pins the ticket TTL contract: the
// rejection is the typed, counted 410 — distinguishable by a caller and
// visible in telemetry — and still matches the sentinel error.
func TestExpiredResumeTicketRejected(t *testing.T) {
	f := newWSFixture(t)
	f.publishMember(t)
	reg := telemetry.NewRegistry()
	gate := &gateTransport{after: 3}
	f.member.Transport = &Transport{
		HTTP:    &http.Client{Transport: gate},
		Retry:   RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		Metrics: reg,
	}
	f.member.ResumeTTL = time.Nanosecond
	_, _, err := f.member.Join(bg, "DesignWebPortal")
	var se *SuspendedError
	if !errors.As(err, &se) {
		t.Fatalf("expected SuspendedError, got %v", err)
	}
	gate.open.Store(true)
	time.Sleep(time.Millisecond)
	_, _, err = f.member.ResumeJoin(bg, se.Ticket)
	if !errors.Is(err, negotiation.ErrBadResumeTicket) {
		t.Fatalf("expired ticket accepted: %v", err)
	}
	var we *Error
	if !errors.As(err, &we) {
		t.Fatalf("expiry not a typed *Error: %v", err)
	}
	if we.Status != http.StatusGone || we.Code != "ticket-expired" {
		t.Fatalf("expiry error = status %d code %q, want 410 ticket-expired", we.Status, we.Code)
	}
	if we.Temporary {
		t.Fatal("ticket expiry marked temporary; it must not be retried")
	}
	if got := reg.Counter("tn_ticket_expired_total").Value(); got != 1 {
		t.Fatalf("tn_ticket_expired_total = %d, want 1", got)
	}
}

// splitTransport triggers a one-shot network partition after `after`
// requests have passed through, simulating a link that goes down
// mid-negotiation rather than before it.
type splitTransport struct {
	inner http.RoundTripper
	after int64
	n     atomic.Int64
	split func()
}

func (s *splitTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if s.n.Add(1) == s.after {
		s.split()
	}
	return s.inner.RoundTrip(r)
}

// TestJoinThroughPartitionWindow cuts the member off from the toolkit
// at the partition board mid-join: the fault transport refuses the
// partitioned requests (counted), and the join converges through
// retries or a suspend/resume round once the window closes.
func TestJoinThroughPartitionWindow(t *testing.T) {
	f := newWSFixture(t)
	f.publishMember(t)
	reg := telemetry.NewRegistry()
	net := faultinject.NewNet()
	serverEP := f.srv.Listener.Addr().String()

	ft := faultinject.New(faultinject.Config{}, nil)
	ft.Net = net
	ft.LocalEndpoint = "member-client"
	ft.Metrics = reg
	f.member.Transport = &Transport{
		HTTP: &http.Client{Transport: &splitTransport{
			inner: ft,
			after: 3, // partition lands mid-negotiation, after the handshake started
			split: func() {
				net.SplitFor([]string{"member-client"}, []string{serverEP}, 25*time.Millisecond)
			},
		}},
		Retry:           faultRetry(),
		BreakerCooldown: 20 * time.Millisecond,
		Metrics:         reg,
	}

	der, out, err := f.member.Join(bg, "DesignWebPortal")
	for resumed := 0; err != nil; resumed++ {
		var se *SuspendedError
		if !errors.As(err, &se) {
			t.Fatalf("join failed unrecoverably: %v", err)
		}
		if resumed >= 10 {
			t.Fatalf("join did not converge after %d resumes: %v", resumed, err)
		}
		time.Sleep(10 * time.Millisecond)
		der, out, err = f.member.ResumeJoin(bg, se.Ticket)
	}
	if !out.Succeeded || len(der) == 0 {
		t.Fatalf("join through partition: %+v", out)
	}
	if got := ft.Stats.Partitioned.Load(); got == 0 {
		t.Fatal("partition window injected no refusals")
	}
	if got := net.Splits(); got != 1 {
		t.Fatalf("net recorded %d splits, want 1", got)
	}
}

// standaloneTN builds a plain TN service (opaque grant, no VO toolkit)
// plus a requester party holding the credential its policy demands.
func standaloneTN(t *testing.T) (*TNService, *negotiation.Party, *negotiation.Party) {
	t.Helper()
	ca := pki.MustNewAuthority("CertCA")
	ctl := &negotiation.Party{
		Name:     "Ctl",
		Profile:  xtnl.NewProfile("Ctl"),
		Policies: xtnl.MustPolicySet(xtnl.MustParsePolicies("R <- WebDesignerQuality")...),
		Trust:    pki.NewTrustStore(ca),
		Grant:    func(resource, peer string) ([]byte, error) { return []byte("ok"), nil },
	}
	prof := xtnl.NewProfile("Req")
	prof.Add(ca.MustIssue(pki.IssueRequest{Type: "WebDesignerQuality", Holder: "Req"}))
	req := &negotiation.Party{
		Name: "Req", Profile: prof,
		Policies: xtnl.MustPolicySet(), Trust: pki.NewTrustStore(ca),
	}
	return NewTNService(ctl), ctl, req
}

// TestServerSuspendResumeSessions restarts the service mid-negotiation:
// live sessions are persisted to the store, a fresh service restores
// them, and the client's resume ticket completes against the new
// process.
func TestServerSuspendResumeSessions(t *testing.T) {
	svc1, ctl, req := standaloneTN(t)
	mux1 := http.NewServeMux()
	svc1.Register(mux1)
	srv1 := httptest.NewServer(mux1)
	defer srv1.Close()

	gate := &gateTransport{after: 2} // /tn/start + first exchange succeed
	client := &TNClient{
		BaseURL: srv1.URL, Party: req,
		Transport: &Transport{
			HTTP:  &http.Client{Transport: gate},
			Retry: RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		},
	}
	_, err := client.Negotiate(bg, "R")
	var se *SuspendedError
	if !errors.As(err, &se) {
		t.Fatalf("expected SuspendedError, got %v", err)
	}

	db := store.New()
	n, err := svc1.SuspendSessions(db)
	if err != nil || n != 1 {
		t.Fatalf("suspend: n=%d err=%v", n, err)
	}
	srv1.Close()

	// a fresh service — the "restarted" process — restores the session
	svc2 := NewTNService(ctl)
	if n, err := svc2.ResumeSessions(db); err != nil || n != 1 {
		t.Fatalf("resume sessions: n=%d err=%v", n, err)
	}
	if len(db.List(KindTNSession)) != 0 {
		t.Fatal("resumed session records not deleted from the store")
	}
	mux2 := http.NewServeMux()
	svc2.Register(mux2)
	srv2 := httptest.NewServer(mux2)
	defer srv2.Close()

	gate.open.Store(true)
	client.BaseURL = srv2.URL
	out, err := client.Resume(bg, se.Ticket)
	if err != nil || !out.Succeeded {
		t.Fatalf("resume against restarted service: %v %+v", err, out)
	}
	if string(out.Grant) != "ok" {
		t.Fatalf("grant = %q", out.Grant)
	}
}

// TestDuplicateEnvelopeReplayed posts the same sequenced envelope twice
// and requires byte-identical responses plus a replay counter hit — the
// at-most-once guarantee duplicated deliveries rely on.
func TestDuplicateEnvelopeReplayed(t *testing.T) {
	svc, _, req := standaloneTN(t)
	mux := http.NewServeMux()
	svc.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	client := &TNClient{BaseURL: srv.URL, Party: req}
	negID, err := client.Start(bg, "R")
	if err != nil {
		t.Fatal(err)
	}
	ep := negotiation.NewRequester(req, "R")
	msg, err := ep.Start()
	if err != nil {
		t.Fatal(err)
	}
	env := envelopeSeq(negID, 7, msg).XML()
	post := func() (int, string) {
		resp, err := http.Post(srv.URL+"/tn/policyExchange", ContentType, strings.NewReader(env))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}
	s1, b1 := post()
	s2, b2 := post()
	if s1 != s2 || b1 != b2 {
		t.Fatalf("replay not byte-identical: %d %d\n%s\n---\n%s", s1, s2, b1, b2)
	}
	if got := svc.Metrics.Counter("tn_replays_total").Value(); got != 1 {
		t.Fatalf("tn_replays_total = %d, want 1", got)
	}
}

// TestCapacity503RetryAfter: a full service answers 503 with a concrete
// Retry-After and a counted rejection instead of an unexplained failure.
func TestCapacity503RetryAfter(t *testing.T) {
	f := newWSFixture(t)
	f.tk.TN.MaxSessions = 1
	tn := &TNClient{BaseURL: f.srv.URL, Party: f.member.Party}
	if _, err := tn.Start(bg, "R"); err != nil {
		t.Fatal(err)
	}
	req := xmldom.NewElement("startNegotiationRequest").
		SetAttr("strategy", f.member.Party.Strategy.String()).
		SetAttr("resource", "R")
	resp, err := http.Post(f.srv.URL+"/tn/start", ContentType, strings.NewReader(req.XML()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("503 without Retry-After")
	}
	root, err := xmldom.Parse(resp.Body)
	if err != nil || root.Name != "fault" || root.AttrOr("code", "") != "capacity" {
		t.Fatalf("capacity fault body: %v %s", err, root.XML())
	}
	if got := f.tk.TN.Metrics.Counter("tn_start_rejected_total", "reason", "capacity").Value(); got != 1 {
		t.Fatalf("tn_start_rejected_total = %d", got)
	}
}
