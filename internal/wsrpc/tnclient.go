package wsrpc

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"trustvo/internal/negotiation"
	"trustvo/internal/xmldom"
)

// TNClient drives a requester-side negotiation against a remote
// TNService, mirroring the paper's ClientWS.java ("A client application
// has also been developed … implementing the negotiation protocol by
// invoking the Web service's operations").
//
// All calls go through the hardened Transport: per-request deadlines,
// retries with backoff on transient failures, and a per-endpoint circuit
// breaker. Every exchange envelope carries a client sequence number; the
// service replays its cached reply for a repeated number, so retries and
// duplicated deliveries are applied at most once. When the transport
// fails for good (or the negotiation deadline expires) mid-negotiation,
// Negotiate returns a *SuspendedError carrying a resume ticket;
// Resume continues from it.
type TNClient struct {
	// BaseURL of the counterpart's TN service, e.g. "http://host:8080".
	BaseURL string
	// Party is the local (requester) negotiation identity.
	Party *negotiation.Party
	// HTTP overrides the transport's HTTP client (shorthand; ignored when
	// Transport is set).
	HTTP *http.Client
	// Transport is the hardened call path; nil uses an owned default.
	Transport *Transport
	// NegotiationTimeout bounds one whole Negotiate/Resume run (all
	// rounds); 0 means no per-negotiation deadline.
	NegotiationTimeout time.Duration
	// ResumeTTL is the validity of suspend tickets (default 5m).
	ResumeTTL time.Duration

	seq     atomic.Int64
	ownedMu sync.Mutex
	owned   *Transport
}

// transport returns the effective transport, lazily creating an owned
// one (so breaker state persists across calls) when none was injected.
func (c *TNClient) transport() *Transport {
	if c.Transport != nil {
		return c.Transport
	}
	c.ownedMu.Lock()
	defer c.ownedMu.Unlock()
	if c.owned == nil {
		c.owned = &Transport{HTTP: c.HTTP}
	}
	return c.owned
}

// nextSeq issues a fresh envelope sequence number.
func (c *TNClient) nextSeq() int64 { return c.seq.Add(1) }

// bumpSeq ensures future sequence numbers stay above n (used when
// resuming from a ticket minted by an earlier client instance).
func (c *TNClient) bumpSeq(n int64) {
	for {
		cur := c.seq.Load()
		if cur >= n || c.seq.CompareAndSwap(cur, n) {
			return
		}
	}
}

// negotiationCtx applies the per-negotiation deadline.
func (c *TNClient) negotiationCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background() //lint:allow ctxpropagate defensive default for nil-ctx callers
	}
	if c.NegotiationTimeout > 0 {
		return context.WithTimeout(ctx, c.NegotiationTimeout)
	}
	return ctx, func() {}
}

// Start invokes StartNegotiation and returns the negotiation id.
func (c *TNClient) Start(ctx context.Context, resource string) (string, error) {
	req := xmldom.NewElement("startNegotiationRequest").
		SetAttr("strategy", c.Party.Strategy.String()).
		SetAttr("resource", resource)
	// Starting is idempotent in effect: a retried start at worst leaves an
	// orphan session that the service sweeps out.
	root, err := c.transport().call(ctx, http.MethodPost, c.BaseURL, "/tn/start", "", req.XML(), true)
	if err != nil {
		return "", err
	}
	if _, err := expectRoot(root, "startNegotiationResponse"); err != nil {
		return "", err
	}
	id := root.AttrOr("negotiation", "")
	if id == "" {
		return "", fmt.Errorf("wsrpc: start response without negotiation id")
	}
	return id, nil
}

// Exchange posts one TN message and returns the counterpart's reply
// (nil when the response was a terminal status acknowledgment).
func (c *TNClient) Exchange(ctx context.Context, negID string, msg *negotiation.Message) (*negotiation.Message, error) {
	return c.exchangeSeq(ctx, negID, msg, c.nextSeq())
}

// exchangeSeq is Exchange under an explicit sequence number; retries
// (and ticket resumption) reuse the number so the service's reply cache
// deduplicates.
func (c *TNClient) exchangeSeq(ctx context.Context, negID string, msg *negotiation.Message, seq int64) (*negotiation.Message, error) {
	path := "/tn/credentialExchange"
	if phaseOf(msg.Type) == policyPhase {
		path = "/tn/policyExchange"
	}
	root, err := c.transport().call(ctx, http.MethodPost, c.BaseURL, path, "",
		envelopeSeq(negID, seq, msg).XML(), true)
	if err != nil {
		return nil, err
	}
	switch root.Name {
	case "status":
		return nil, nil // server consumed a terminal message
	case "envelope":
		_, reply, err := openEnvelope(root)
		return reply, err
	default:
		return nil, fmt.Errorf("wsrpc: unexpected response <%s>", root.Name)
	}
}

// Negotiate runs a complete negotiation for resource against the remote
// controller and returns the local outcome. This is the standalone-TN
// path measured by Fig. 9's "trust negotiation" bar.
//
// On an unrecoverable transport failure (or expiry of the negotiation
// deadline) mid-negotiation, the error is a *SuspendedError whose Ticket
// resumes the negotiation via Resume.
func (c *TNClient) Negotiate(ctx context.Context, resource string) (*negotiation.Outcome, error) {
	ctx, cancel := c.negotiationCtx(ctx)
	defer cancel()
	negID, err := c.Start(ctx, resource)
	if err != nil {
		return nil, err
	}
	ep := negotiation.NewRequester(c.Party, resource)
	msg, err := ep.Start()
	if err != nil {
		return nil, err
	}
	return c.drive(ctx, negID, ep, msg, 0)
}

// Resume continues a negotiation from a suspend ticket: the endpoint is
// restored from the snapshot and the unacknowledged message is re-sent
// under its original sequence number — the service's reply cache turns
// that into "deliver once", whether or not the first delivery arrived.
func (c *TNClient) Resume(ctx context.Context, t *negotiation.ResumeTicket) (*negotiation.Outcome, error) {
	if err := c.verifyTicket(t); err != nil {
		return nil, err
	}
	ep, err := negotiation.RestoreEndpoint(c.Party, t.State)
	if err != nil {
		return nil, err
	}
	c.bumpSeq(t.Seq)
	if tr := c.transport(); tr.Metrics != nil {
		tr.Metrics.Counter("tn_resumes_total").Inc()
	}
	ctx, cancel := c.negotiationCtx(ctx)
	defer cancel()
	return c.drive(ctx, t.NegID, ep, t.LastSent, t.Seq)
}

func (c *TNClient) verifyTicket(t *negotiation.ResumeTicket) error {
	if t == nil {
		return fmt.Errorf("wsrpc: nil resume ticket")
	}
	now := time.Now()
	// Explicit not-after check, before signature verification: an
	// expired ticket is a distinct, typed condition (410 Gone, not
	// retryable) rather than a generic verification failure, and it is
	// counted — a fleet resuming from stale tickets after an outage
	// shows up in telemetry instead of as silent generic errors.
	if now.After(t.Expires) {
		if tr := c.transport(); tr.Metrics != nil {
			tr.Metrics.Counter("tn_ticket_expired_total").Inc()
		}
		return &Error{
			Op:     "resume",
			Status: http.StatusGone,
			Code:   "ticket-expired",
			Err:    fmt.Errorf("%w: expired %s", negotiation.ErrBadResumeTicket, t.Expires.Format(time.RFC3339)),
		}
	}
	if c.Party.Keys != nil {
		return t.Verify(c.Party.Keys.Public, now)
	}
	return t.Verify(nil, now)
}

// drive is the shared request loop: send msg, feed the reply to the
// endpoint, repeat. seq carries the pre-assigned sequence number of the
// first send (0 = assign fresh); replies always get fresh numbers.
func (c *TNClient) drive(ctx context.Context, negID string, ep *negotiation.Endpoint, msg *negotiation.Message, seq int64) (*negotiation.Outcome, error) {
	for msg != nil {
		if seq == 0 {
			seq = c.nextSeq()
		}
		reply, err := c.exchangeSeq(ctx, negID, msg, seq)
		if err != nil {
			if suspendable(err) && !ep.Done() {
				return nil, c.suspend(negID, ep, msg, seq, err)
			}
			return nil, err
		}
		seq = 0
		if reply == nil {
			break // server acknowledged our terminal message
		}
		msg, err = ep.Handle(reply)
		if err != nil {
			return nil, err
		}
	}
	if !ep.Done() {
		return nil, fmt.Errorf("wsrpc: negotiation %s ended without outcome", negID)
	}
	return ep.Outcome(), nil
}

// suspend converts a transport failure into a *SuspendedError carrying a
// resume ticket; when snapshotting is impossible the original error is
// returned unchanged.
func (c *TNClient) suspend(negID string, ep *negotiation.Endpoint, pending *negotiation.Message, seq int64, cause error) error {
	t, err := negotiation.NewResumeTicket(ep, negID, seq, pending, c.ResumeTTL)
	if err != nil {
		return cause
	}
	if tr := c.transport(); tr.Metrics != nil {
		tr.Metrics.Counter("tn_suspends_total").Inc()
	}
	return &SuspendedError{Ticket: t, Err: cause}
}

// Status queries the remote side's view of a negotiation.
func (c *TNClient) Status(ctx context.Context, negID string) (done, succeeded bool, reason string, err error) {
	root, err := c.transport().call(ctx, http.MethodGet, c.BaseURL, "/tn/status",
		"?negotiation="+negID, "", true)
	if err != nil {
		return false, false, "", err
	}
	if _, err := expectRoot(root, "status"); err != nil {
		return false, false, "", err
	}
	return root.AttrOr("done", "") == "true",
		root.AttrOr("succeeded", "") == "true",
		root.AttrOr("reason", ""), nil
}

// SuspendedError reports a negotiation interrupted by transport failure
// or deadline expiry; Ticket resumes it (TNClient.Resume /
// MemberClient.ResumeJoin).
type SuspendedError struct {
	Ticket *negotiation.ResumeTicket
	Err    error
}

// Error implements error.
func (e *SuspendedError) Error() string {
	return fmt.Sprintf("wsrpc: negotiation %s suspended (resumable): %v", e.Ticket.NegID, e.Err)
}

// Unwrap exposes the cause.
func (e *SuspendedError) Unwrap() error { return e.Err }
