package wsrpc

import (
	"fmt"
	"net/http"
	"strings"

	"trustvo/internal/negotiation"
	"trustvo/internal/xmldom"
)

// TNClient drives a requester-side negotiation against a remote
// TNService, mirroring the paper's ClientWS.java ("A client application
// has also been developed … implementing the negotiation protocol by
// invoking the Web service's operations").
type TNClient struct {
	// BaseURL of the counterpart's TN service, e.g. "http://host:8080".
	BaseURL string
	// Party is the local (requester) negotiation identity.
	Party *negotiation.Party
	// HTTP is the transport (http.DefaultClient when nil).
	HTTP *http.Client
}

func (c *TNClient) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTP
}

func (c *TNClient) post(path, body string) (*http.Response, error) {
	url := strings.TrimRight(c.BaseURL, "/") + path
	resp, err := c.client().Post(url, ContentType, strings.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("wsrpc: POST %s: %w", path, err)
	}
	return resp, nil
}

// Start invokes StartNegotiation and returns the negotiation id.
func (c *TNClient) Start(resource string) (string, error) {
	req := xmldom.NewElement("startNegotiationRequest").
		SetAttr("strategy", c.Party.Strategy.String()).
		SetAttr("resource", resource)
	resp, err := c.post("/tn/start", req.XML())
	if err != nil {
		return "", err
	}
	root, err := decodeResponse(resp, "startNegotiationResponse")
	if err != nil {
		return "", err
	}
	id := root.AttrOr("negotiation", "")
	if id == "" {
		return "", fmt.Errorf("wsrpc: start response without negotiation id")
	}
	return id, nil
}

// Exchange posts one TN message and returns the counterpart's reply
// (nil when the response was a terminal status acknowledgment).
func (c *TNClient) Exchange(negID string, msg *negotiation.Message) (*negotiation.Message, error) {
	path := "/tn/credentialExchange"
	if phaseOf(msg.Type) == policyPhase {
		path = "/tn/policyExchange"
	}
	resp, err := c.post(path, envelope(negID, msg).XML())
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	root, err := xmldom.Parse(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("wsrpc: bad exchange response: %w", err)
	}
	switch root.Name {
	case "fault":
		return nil, faultFromDOM(root)
	case "status":
		return nil, nil // server consumed a terminal message
	case "envelope":
		_, reply, err := openEnvelope(root)
		return reply, err
	default:
		return nil, fmt.Errorf("wsrpc: unexpected response <%s>", root.Name)
	}
}

// Negotiate runs a complete negotiation for resource against the remote
// controller and returns the local outcome. This is the standalone-TN
// path measured by Fig. 9's "trust negotiation" bar.
func (c *TNClient) Negotiate(resource string) (*negotiation.Outcome, error) {
	negID, err := c.Start(resource)
	if err != nil {
		return nil, err
	}
	ep := negotiation.NewRequester(c.Party, resource)
	msg, err := ep.Start()
	if err != nil {
		return nil, err
	}
	for msg != nil {
		reply, err := c.Exchange(negID, msg)
		if err != nil {
			return nil, err
		}
		if reply == nil {
			break // server acknowledged our terminal message
		}
		msg, err = ep.Handle(reply)
		if err != nil {
			return nil, err
		}
	}
	if !ep.Done() {
		return nil, fmt.Errorf("wsrpc: negotiation %s ended without outcome", negID)
	}
	return ep.Outcome(), nil
}

// Status queries the remote side's view of a negotiation.
func (c *TNClient) Status(negID string) (done, succeeded bool, reason string, err error) {
	url := strings.TrimRight(c.BaseURL, "/") + "/tn/status?negotiation=" + negID
	resp, err := c.client().Get(url)
	if err != nil {
		return false, false, "", err
	}
	root, err := decodeResponse(resp, "status")
	if err != nil {
		return false, false, "", err
	}
	return root.AttrOr("done", "") == "true",
		root.AttrOr("succeeded", "") == "true",
		root.AttrOr("reason", ""), nil
}
