package wsrpc

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"trustvo/internal/negotiation"
	"trustvo/internal/partydb"
	"trustvo/internal/store"
	"trustvo/internal/telemetry"
	"trustvo/internal/xmldom"
)

// TNService exposes a controller party as the paper's TN web service
// (§6.2): "The TN Web service provides three different operations,
// StartNegotiation, PolicyExchange and CredentialExchange, each
// corresponding to one of the main phases of the negotiation process."
//
//   - POST /tn/start            <startNegotiationRequest strategy=… resource=…/>
//     → <startNegotiationResponse negotiation=…/>
//     ("StartNegotiation assigns a unique id to the negotiation process")
//   - POST /tn/policyExchange   <envelope negotiation=…><tnMessage…/></envelope>
//     for request/policy/continue messages
//   - POST /tn/credentialExchange  same envelope, for sequence/credential/
//     ack messages ("verifies the validity of the counterpart's
//     credential … then selects the next credential to be sent")
//   - GET  /tn/status?negotiation=… → <status done=… succeeded=… reason=…/>
//
// Each negotiation id maps to one controller Endpoint; idle sessions
// expire after MaxSessionAge.
type TNService struct {
	// Party is the controller identity the service negotiates as.
	Party *negotiation.Party
	// DB, when set, is the document store holding the party's
	// disclosure policies and credentials; StartNegotiation then
	// rebuilds the negotiating party from it for every session, exactly
	// as the paper's operation "opens the connection with [the] Oracle
	// database containing the disclosure policies and credentials of
	// the invoker" (§6.2). Party then only supplies identity, trust
	// anchors, keys and hooks.
	DB *store.Store
	// MaxSessionAge bounds idle session lifetime (default 5 minutes).
	MaxSessionAge time.Duration
	// MaxSessions bounds concurrently ACTIVE negotiations (default
	// 1024); finished sessions do not count and are retired after
	// DoneRetention.
	MaxSessions int
	// DoneRetention is how long a finished negotiation stays queryable
	// via /tn/status (default 30 seconds).
	DoneRetention time.Duration
	// Metrics collects the service's HTTP and session telemetry and backs
	// GET /metrics. NewTNService installs a fresh registry; set nil to
	// disable collection, or share one registry across services to expose
	// a single scrape endpoint.
	Metrics *telemetry.Registry
	// Logf reports operational events such as live-session eviction under
	// capacity pressure (default log.Printf).
	Logf func(format string, args ...any)
	// Debugf, when set, receives one key=value line per negotiation
	// message handled (session id, operation, message type, duration).
	Debugf func(format string, args ...any)

	mu       sync.Mutex
	sessions map[string]*tnSession
}

type tnSession struct {
	endpoint *negotiation.Endpoint
	mu       sync.Mutex // one in-flight message per session
	lastUsed time.Time
	outcome  *negotiation.Outcome
	done     atomic.Bool

	// Reply cache (at-most-once exchange): the last envelope sequence
	// number applied and the exact response it produced. A duplicate
	// delivery — client retry after a lost response, or a network-level
	// duplicate — replays the cached bytes instead of advancing the
	// endpoint twice. One entry suffices because a client sends one
	// message at a time and only ever retries the newest. Guarded by mu.
	lastSeq         int64
	lastReplyStatus int
	lastReply       string
}

// NewTNService creates a service negotiating as party, collecting
// telemetry into a fresh registry.
func NewTNService(party *negotiation.Party) *TNService {
	return &TNService{
		Party:    party,
		Metrics:  telemetry.NewRegistry(),
		sessions: make(map[string]*tnSession),
	}
}

// Register mounts the TN operations on mux under /tn/, plus /metrics
// (when the service has a registry) and /healthz.
func (s *TNService) Register(mux *http.ServeMux) {
	mux.HandleFunc("/tn/start", s.instrument("/tn/start", s.handleStart))
	mux.HandleFunc("/tn/policyExchange", s.instrument("/tn/policyExchange", s.exchangeHandler(policyPhase)))
	mux.HandleFunc("/tn/credentialExchange", s.instrument("/tn/credentialExchange", s.exchangeHandler(credentialPhase)))
	mux.HandleFunc("/tn/status", s.instrument("/tn/status", s.handleStatus))
	if s.Metrics != nil {
		mux.Handle("/metrics", s.Metrics.Handler())
	}
	mux.HandleFunc("/healthz", handleHealthz)
}

func (s *TNService) maxAge() time.Duration {
	if s.MaxSessionAge > 0 {
		return s.MaxSessionAge
	}
	return 5 * time.Minute
}

func (s *TNService) maxSessions() int {
	if s.MaxSessions > 0 {
		return s.MaxSessions
	}
	return 1024
}

func (s *TNService) doneRetention() time.Duration {
	if s.DoneRetention > 0 {
		return s.DoneRetention
	}
	return 30 * time.Second
}

func (s *TNService) handleStart(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeFault(w, http.StatusMethodNotAllowed, "method", "POST required")
		return
	}
	body, err := readBodyDOM(r)
	if err != nil {
		writeFault(w, http.StatusBadRequest, "parse", err.Error())
		return
	}
	if body.Name != "startNegotiationRequest" {
		writeFault(w, http.StatusBadRequest, "schema", "expected <startNegotiationRequest>")
		return
	}
	if _, err := negotiation.ParseStrategy(body.AttrOr("strategy", "standard")); err != nil {
		writeFault(w, http.StatusBadRequest, "strategy", err.Error())
		return
	}
	id, err := s.newSession()
	if err != nil {
		var ce *capacityError
		if errors.As(err, &ce) {
			// Honest backpressure: tell the client when capacity is
			// expected to free up instead of silently evicting live
			// negotiations beyond what the half-age policy allows.
			w.Header().Set("Retry-After", strconv.Itoa(int(ce.retryAfter/time.Second)))
			if m := s.Metrics; m != nil {
				m.Counter("tn_start_rejected_total", "reason", "capacity").Inc()
			}
		}
		writeFault(w, http.StatusServiceUnavailable, "capacity", err.Error())
		return
	}
	writeDOM(w, xmldom.NewElement("startNegotiationResponse").SetAttr("negotiation", id))
}

// capacityError reports MaxSessions pressure that half-age eviction could
// not relieve; retryAfter estimates when the oldest live session becomes
// evictable.
type capacityError struct {
	active     int
	retryAfter time.Duration
}

func (e *capacityError) Error() string {
	return fmt.Sprintf("wsrpc: %d concurrent negotiations", e.active)
}

// capacityRetryLocked estimates how long until the oldest live session
// crosses the half-age eviction threshold. Caller holds s.mu.
func (s *TNService) capacityRetryLocked() time.Duration {
	var oldest time.Time
	for _, sess := range s.sessions {
		if sess.done.Load() {
			continue
		}
		if oldest.IsZero() || sess.lastUsed.Before(oldest) {
			oldest = sess.lastUsed
		}
	}
	wait := s.maxAge() / 2
	if !oldest.IsZero() {
		wait = time.Until(oldest.Add(s.maxAge() / 2))
	}
	if wait < time.Second {
		wait = time.Second
	}
	return wait
}

func (s *TNService) newSession() (string, error) {
	var raw [12]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return "", err
	}
	id := hex.EncodeToString(raw[:])
	party, err := s.sessionParty()
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	active := 0
	for _, sess := range s.sessions {
		if !sess.done.Load() {
			active++
		}
	}
	if active >= s.maxSessions() {
		active = s.evictForCapacityLocked(active)
	}
	if active >= s.maxSessions() {
		return "", &capacityError{active: active, retryAfter: s.capacityRetryLocked()}
	}
	s.sessions[id] = &tnSession{
		endpoint: negotiation.NewController(party),
		lastUsed: time.Now(),
	}
	if m := s.Metrics; m != nil {
		m.Counter("tn_sessions_created_total").Inc()
		m.Gauge("tn_sessions_active").Inc()
	}
	return id, nil
}

// sessionParty prepares the negotiating identity for one session: the
// DB-backed reload of §6.2 when a store is attached, plus the metrics
// clone so endpoints record into the service registry without mutating
// the caller's Party.
func (s *TNService) sessionParty() (*negotiation.Party, error) {
	party := s.Party
	if s.DB != nil {
		loaded, err := partydb.LoadParty(s.DB, s.Party)
		if err != nil {
			return nil, fmt.Errorf("wsrpc: load party from store: %w", err)
		}
		party = loaded
	}
	if party.Metrics == nil && s.Metrics != nil {
		clone := *party
		clone.Metrics = s.Metrics
		party = &clone
	}
	return party, nil
}

// sweepLocked drops idle sessions — unfinished ones after MaxSessionAge
// ("expired"), finished ones after the (shorter) DoneRetention
// ("retired") — and returns how many of each were dropped. Caller holds
// s.mu.
func (s *TNService) sweepLocked() (expired, retired int) {
	now := time.Now()
	cutoff := now.Add(-s.maxAge())
	doneCutoff := now.Add(-s.doneRetention())
	for id, sess := range s.sessions {
		switch {
		case sess.done.Load() && (sess.lastUsed.Before(doneCutoff) || sess.lastUsed.Before(cutoff)):
			delete(s.sessions, id)
			retired++
		case !sess.done.Load() && sess.lastUsed.Before(cutoff):
			delete(s.sessions, id)
			expired++
		}
	}
	if m := s.Metrics; m != nil {
		if expired > 0 {
			m.Counter("tn_sessions_swept_total", "reason", "expired").Add(int64(expired))
			m.Gauge("tn_sessions_active").Add(int64(-expired))
		}
		if retired > 0 {
			m.Counter("tn_sessions_swept_total", "reason", "retired").Add(int64(retired))
		}
	}
	return expired, retired
}

// evictForCapacityLocked relieves session pressure: when the table is at
// MaxSessions, live sessions idle for more than half of MaxSessionAge
// are evicted, oldest first, each with a log line — the deployment gets
// signal instead of silent capacity errors, while fresh negotiations are
// never sacrificed. Returns the remaining active count. Caller holds
// s.mu. The half-age floor also means an evicted session cannot be
// mid-message: handlers refresh lastUsed on lookup.
func (s *TNService) evictForCapacityLocked(active int) int {
	idleCutoff := time.Now().Add(-s.maxAge() / 2)
	for active >= s.maxSessions() {
		var oldestID string
		var oldest *tnSession
		for id, sess := range s.sessions {
			if sess.done.Load() || !sess.lastUsed.Before(idleCutoff) {
				continue
			}
			if oldest == nil || sess.lastUsed.Before(oldest.lastUsed) {
				oldestID, oldest = id, sess
			}
		}
		if oldest == nil {
			return active
		}
		delete(s.sessions, oldestID)
		active--
		s.logf("wsrpc: evicted live negotiation %s idle=%s under session pressure (%d/%d active)",
			oldestID, time.Since(oldest.lastUsed).Round(time.Millisecond), active, s.maxSessions())
		if m := s.Metrics; m != nil {
			m.Counter("tn_sessions_swept_total", "reason", "evicted").Inc()
			m.Gauge("tn_sessions_active").Dec()
		}
	}
	return active
}

func (s *TNService) session(id string) *tnSession {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[id]
	if sess != nil {
		sess.lastUsed = time.Now()
	}
	return sess
}

// phaseKind partitions message types over the two exchange operations.
type phaseKind int

const (
	policyPhase phaseKind = iota
	credentialPhase
)

func phaseOf(t negotiation.MsgType) phaseKind {
	switch t {
	case negotiation.MsgRequest, negotiation.MsgPolicy, negotiation.MsgContinue:
		return policyPhase
	default:
		return credentialPhase
	}
}

func (s *TNService) exchangeHandler(phase phaseKind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeFault(w, http.StatusMethodNotAllowed, "method", "POST required")
			return
		}
		body, err := readBodyDOM(r)
		if err != nil {
			writeFault(w, http.StatusBadRequest, "parse", err.Error())
			return
		}
		id, seq, msg, err := openEnvelopeSeq(body)
		if err != nil {
			writeFault(w, http.StatusBadRequest, "schema", err.Error())
			return
		}
		// Terminal messages (success/fail) may land on either operation;
		// other types must match their phase's operation.
		if msg.Type != negotiation.MsgSuccess && msg.Type != negotiation.MsgFail && phaseOf(msg.Type) != phase {
			writeFault(w, http.StatusBadRequest, "phase",
				fmt.Sprintf("message %s does not belong to this operation", msg.Type))
			return
		}
		sess := s.session(id)
		if sess == nil {
			writeFault(w, http.StatusNotFound, "negotiation", "unknown or expired negotiation "+id)
			return
		}
		sess.mu.Lock()
		defer sess.mu.Unlock()
		if seq > 0 && seq == sess.lastSeq {
			// Duplicate delivery (client retry after a lost response, or a
			// duplicated message): replay the cached response unchanged.
			if m := s.Metrics; m != nil {
				m.Counter("tn_replays_total").Inc()
			}
			s.debugf("tn-message session=%s op=%s type=%s seq=%d replayed", id, phase, msg.Type, seq)
			writeRaw(w, sess.lastReplyStatus, sess.lastReply)
			return
		}
		if sess.endpoint.Done() {
			writeFault(w, http.StatusConflict, "done", "negotiation already finished")
			return
		}
		start := time.Now()
		reply, err := sess.endpoint.Handle(msg)
		s.debugf("tn-message session=%s op=%s type=%s dur=%s err=%v",
			id, phase, msg.Type, time.Since(start).Round(time.Microsecond), err != nil)
		if sess.endpoint.Done() && !sess.done.Swap(true) {
			sess.outcome = sess.endpoint.Outcome()
			result := "failure"
			if sess.outcome != nil && sess.outcome.Succeeded {
				result = "success"
			}
			if m := s.Metrics; m != nil {
				m.Counter("tn_sessions_completed_total", "result", result).Inc()
				m.Gauge("tn_sessions_active").Dec()
			}
		}
		status, respBody := http.StatusOK, ""
		switch {
		case err != nil:
			status = http.StatusInternalServerError
			respBody = (&Fault{Code: "internal", Detail: err.Error()}).DOM().XML()
		case reply == nil:
			// Terminal message consumed; acknowledge with the outcome.
			respBody = statusDOM(id, sess.endpoint).XML()
		default:
			respBody = envelope(id, reply).XML()
		}
		if seq > 0 {
			sess.lastSeq, sess.lastReplyStatus, sess.lastReply = seq, status, respBody
		}
		writeRaw(w, status, respBody)
	}
}

// writeRaw emits a pre-serialized XML response (the replay path must be
// byte-identical to the original).
func writeRaw(w http.ResponseWriter, status int, body string) {
	w.Header().Set("Content-Type", ContentType)
	if status != http.StatusOK {
		w.WriteHeader(status)
	}
	io.WriteString(w, body)
}

func (s *TNService) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("negotiation")
	sess := s.session(id)
	if sess == nil {
		writeFault(w, http.StatusNotFound, "negotiation", "unknown or expired negotiation "+id)
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	writeDOM(w, statusDOM(id, sess.endpoint))
}

func statusDOM(id string, e *negotiation.Endpoint) *xmldom.Node {
	n := xmldom.NewElement("status").
		SetAttr("negotiation", id).
		SetAttr("done", boolStr(e.Done()))
	if out := e.Outcome(); out != nil {
		n.SetAttr("succeeded", boolStr(out.Succeeded))
		if out.Reason != "" {
			n.SetAttr("reason", out.Reason)
		}
	}
	return n
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// Sessions returns the number of live sessions (monitoring).
func (s *TNService) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	return len(s.sessions)
}
