package wsrpc

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"trustvo/internal/negotiation"
	"trustvo/internal/partydb"
	"trustvo/internal/store"
	"trustvo/internal/telemetry"
	"trustvo/internal/xmldom"
)

// TNService exposes a controller party as the paper's TN web service
// (§6.2): "The TN Web service provides three different operations,
// StartNegotiation, PolicyExchange and CredentialExchange, each
// corresponding to one of the main phases of the negotiation process."
//
//   - POST /tn/start            <startNegotiationRequest strategy=… resource=…/>
//     → <startNegotiationResponse negotiation=…/>
//     ("StartNegotiation assigns a unique id to the negotiation process")
//   - POST /tn/policyExchange   <envelope negotiation=…><tnMessage…/></envelope>
//     for request/policy/continue messages
//   - POST /tn/credentialExchange  same envelope, for sequence/credential/
//     ack messages ("verifies the validity of the counterpart's
//     credential … then selects the next credential to be sent")
//   - GET  /tn/status?negotiation=… → <status done=… succeeded=… reason=…/>
//
// Each negotiation id maps to one controller Endpoint; idle sessions
// expire after MaxSessionAge.
type TNService struct {
	// Party is the controller identity the service negotiates as.
	Party *negotiation.Party
	// DB, when set, is the document store holding the party's
	// disclosure policies and credentials; StartNegotiation then
	// rebuilds the negotiating party from it for every session, exactly
	// as the paper's operation "opens the connection with [the] Oracle
	// database containing the disclosure policies and credentials of
	// the invoker" (§6.2). Party then only supplies identity, trust
	// anchors, keys and hooks.
	DB *store.Store
	// PartyReader, when set, is the read path used for the party reload —
	// typically a *cacher.Cache over DB, so N concurrent StartNegotiation
	// calls coalesce onto one store fetch per kind. When nil, reads go to
	// DB directly. Writes (resume tickets, session docs) always go to DB.
	PartyReader partydb.Reader
	// MaxSessionAge bounds idle session lifetime (default 5 minutes).
	MaxSessionAge time.Duration
	// MaxSessions bounds concurrently ACTIVE negotiations (default
	// 1024); finished sessions do not count and are retired after
	// DoneRetention.
	MaxSessions int
	// DoneRetention is how long a finished negotiation stays queryable
	// via /tn/status (default 30 seconds).
	DoneRetention time.Duration
	// Metrics collects the service's HTTP and session telemetry and backs
	// GET /metrics. NewTNService installs a fresh registry; set nil to
	// disable collection, or share one registry across services to expose
	// a single scrape endpoint.
	Metrics *telemetry.Registry
	// Logf reports operational events such as live-session eviction under
	// capacity pressure (default log.Printf).
	Logf func(format string, args ...any)
	// Debugf, when set, receives one key=value line per negotiation
	// message handled (session id, operation, message type, duration).
	Debugf func(format string, args ...any)
	// Shards is the number of lock stripes the session table is split
	// into (default 16). Every session id is hashed to one stripe, so
	// concurrent joins on different stripes never contend on a lock.
	// Set 1 to recover the single-mutex behaviour (the benchjoin
	// -baseline configuration). Must be set before the service handles
	// its first request.
	Shards int
	// NewSessionID, when set, mints session ids in place of the default
	// 12 random bytes. internal/cluster installs a minter that draws ids
	// the local node owns on the hash ring, so a session's messages land
	// where it started without forwarding.
	NewSessionID func() (string, error)
	// OnSessionUpdate, when set, receives each session's suspended-state
	// document after a message is handled (reply cache included) and
	// BEFORE the reply is released to the client. An error withholds the
	// reply and fails the exchange with a retryable 503, so a client
	// holding reply k implies the hook accepted state k — the invariant
	// cluster standby shipping needs for zero lost acked sessions. The
	// context is the request's.
	OnSessionUpdate func(ctx context.Context, id string, doc *xmldom.Node) error

	shardOnce sync.Once
	shards    []*sessionShard
	// active counts sessions holding a capacity slot: created or resumed,
	// not yet completed/expired/evicted. The slot is released by retire(),
	// whose CAS guarantees exactly one release per session however many
	// paths (completion, sweep, eviction) race for it.
	active atomic.Int64

	// partyMu guards the memoized partydb.LoadParty result, revalidated
	// against the per-kind generation of the kinds the party actually
	// reads (credential, policy, ontology) so a store write to those still
	// forces the §6.2 "reload from the database" semantics on the next
	// session — while unrelated writes (resume tickets, cluster session
	// docs) no longer throw the memo away. Keying on the global
	// Generation() was a bug: every suspended-session save invalidated the
	// party and forced a full re-parse of all credentials and policies.
	partyMu    sync.Mutex
	partyGen   uint64
	partyCache *negotiation.Party
}

// sessionShard is one lock stripe of the session table.
type sessionShard struct {
	mu sync.Mutex
	m  map[string]*tnSession
}

// DefaultSessionShards is the stripe count used when Shards is unset,
// sized for tens of concurrent joiners: with 16 stripes the probability
// of two of k simultaneous requests colliding on a stripe stays low
// while the per-stripe sweep cost stays trivial.
const DefaultSessionShards = 16

// shardTable lazily builds the stripe array, honouring Shards.
func (s *TNService) shardTable() []*sessionShard {
	s.shardOnce.Do(func() {
		n := s.Shards
		if n <= 0 {
			n = DefaultSessionShards
		}
		s.shards = make([]*sessionShard, n)
		for i := range s.shards {
			s.shards[i] = &sessionShard{m: make(map[string]*tnSession)}
		}
	})
	return s.shards
}

// shard maps a session id to its stripe (FNV-1a over the id).
func (s *TNService) shard(id string) *sessionShard {
	shards := s.shardTable()
	if len(shards) == 1 {
		return shards[0]
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return shards[h%uint32(len(shards))]
}

type tnSession struct {
	endpoint *negotiation.Endpoint
	mu       sync.Mutex // one in-flight message per session
	lastUsed time.Time
	outcome  *negotiation.Outcome
	done     atomic.Bool
	// deactivated records that the session's capacity slot (and its
	// tn_sessions_active increment) has been released; see
	// TNService.retire.
	deactivated atomic.Bool

	// Reply cache (at-most-once exchange): the last envelope sequence
	// number applied and the exact response it produced. A duplicate
	// delivery — client retry after a lost response, or a network-level
	// duplicate — replays the cached bytes instead of advancing the
	// endpoint twice. One entry suffices because a client sends one
	// message at a time and only ever retries the newest. Guarded by mu.
	lastSeq         int64
	lastReplyStatus int
	lastReply       string
}

// NewTNService creates a service negotiating as party, collecting
// telemetry into a fresh registry.
func NewTNService(party *negotiation.Party) *TNService {
	return &TNService{
		Party:   party,
		Metrics: telemetry.NewRegistry(),
	}
}

// Register mounts the TN operations on mux under /tn/, plus /metrics
// (when the service has a registry) and /healthz.
func (s *TNService) Register(mux *http.ServeMux) {
	mux.HandleFunc("/tn/start", s.instrument("/tn/start", s.handleStart))
	mux.HandleFunc("/tn/policyExchange", s.instrument("/tn/policyExchange", s.exchangeHandler(policyPhase)))
	mux.HandleFunc("/tn/credentialExchange", s.instrument("/tn/credentialExchange", s.exchangeHandler(credentialPhase)))
	mux.HandleFunc("/tn/status", s.instrument("/tn/status", s.handleStatus))
	if s.Metrics != nil {
		mux.Handle("/metrics", s.Metrics.Handler())
	}
	mux.HandleFunc("/healthz", handleHealthz)
}

func (s *TNService) maxAge() time.Duration {
	if s.MaxSessionAge > 0 {
		return s.MaxSessionAge
	}
	return 5 * time.Minute
}

func (s *TNService) maxSessions() int {
	if s.MaxSessions > 0 {
		return s.MaxSessions
	}
	return 1024
}

func (s *TNService) doneRetention() time.Duration {
	if s.DoneRetention > 0 {
		return s.DoneRetention
	}
	return 30 * time.Second
}

func (s *TNService) handleStart(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeFault(w, http.StatusMethodNotAllowed, "method", "POST required")
		return
	}
	body, err := readBodyDOM(r)
	if err != nil {
		writeFault(w, http.StatusBadRequest, "parse", err.Error())
		return
	}
	if body.Name != "startNegotiationRequest" {
		writeFault(w, http.StatusBadRequest, "schema", "expected <startNegotiationRequest>")
		return
	}
	if _, err := negotiation.ParseStrategy(body.AttrOr("strategy", "standard")); err != nil {
		writeFault(w, http.StatusBadRequest, "strategy", err.Error())
		return
	}
	id, err := s.newSession()
	if err != nil {
		var ce *capacityError
		if errors.As(err, &ce) {
			// Honest backpressure: tell the client when capacity is
			// expected to free up instead of silently evicting live
			// negotiations beyond what the half-age policy allows.
			w.Header().Set("Retry-After", strconv.Itoa(int(ce.retryAfter/time.Second)))
			if m := s.Metrics; m != nil {
				m.Counter("tn_start_rejected_total", "reason", "capacity").Inc()
			}
		}
		writeFault(w, http.StatusServiceUnavailable, "capacity", err.Error())
		return
	}
	writeDOM(w, xmldom.NewElement("startNegotiationResponse").SetAttr("negotiation", id))
}

// capacityError reports MaxSessions pressure that half-age eviction could
// not relieve; retryAfter estimates when the oldest live session becomes
// evictable.
type capacityError struct {
	active     int
	retryAfter time.Duration
}

func (e *capacityError) Error() string {
	return fmt.Sprintf("wsrpc: %d concurrent negotiations", e.active)
}

// capacityRetry estimates how long until the oldest live session
// crosses the half-age eviction threshold.
func (s *TNService) capacityRetry() time.Duration {
	var oldest time.Time
	for _, sh := range s.shardTable() {
		if t := sh.oldestLive(); !t.IsZero() && (oldest.IsZero() || t.Before(oldest)) {
			oldest = t
		}
	}
	wait := s.maxAge() / 2
	if !oldest.IsZero() {
		wait = time.Until(oldest.Add(s.maxAge() / 2))
	}
	if wait < time.Second {
		wait = time.Second
	}
	return wait
}

// put inserts a session into the stripe.
func (sh *sessionShard) put(id string, sess *tnSession) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.m[id] = sess
}

// oldestLive returns the lastUsed time of the shard's oldest unfinished
// session (zero when it has none).
func (sh *sessionShard) oldestLive() time.Time {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var oldest time.Time
	for _, sess := range sh.m {
		if sess.done.Load() {
			continue
		}
		if oldest.IsZero() || sess.lastUsed.Before(oldest) {
			oldest = sess.lastUsed
		}
	}
	return oldest
}

// retire releases sess's capacity slot, reporting whether this caller is
// the one that retired it. Completion (exchangeHandler), expiry sweeps
// and capacity eviction can all reach a session concurrently — under the
// striped table even from different callers at once — and the CAS makes
// the release (and the tn_sessions_active decrement) happen exactly
// once, so the gauge can never underflow and a session is never
// double-retired.
func (s *TNService) retire(sess *tnSession) bool {
	if !sess.deactivated.CompareAndSwap(false, true) {
		return false
	}
	s.active.Add(-1)
	if m := s.Metrics; m != nil {
		m.Gauge("tn_sessions_active").Dec()
	}
	return true
}

// reserveActive claims one capacity slot, failing when the service is at
// MaxSessions. CAS instead of a blind Add keeps the bound exact under
// concurrent joins.
func (s *TNService) reserveActive() bool {
	max := int64(s.maxSessions())
	for {
		n := s.active.Load()
		if n >= max {
			return false
		}
		if s.active.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// mintSessionID draws a fresh session id, via the NewSessionID hook
// when installed.
func (s *TNService) mintSessionID() (string, error) {
	if s.NewSessionID != nil {
		return s.NewSessionID()
	}
	var raw [12]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(raw[:]), nil
}

func (s *TNService) newSession() (string, error) {
	id, err := s.mintSessionID()
	if err != nil {
		return "", err
	}
	party, err := s.sessionParty()
	if err != nil {
		return "", err
	}
	sh := s.shard(id)
	// Amortized cleanup: each new session sweeps only its own stripe.
	// The full-table sweep is reserved for capacity pressure below.
	s.sweepShard(sh)
	if !s.reserveActive() {
		for _, other := range s.shardTable() {
			s.sweepShard(other)
		}
		s.evictForCapacity()
		if !s.reserveActive() {
			return "", &capacityError{active: int(s.active.Load()), retryAfter: s.capacityRetry()}
		}
	}
	sh.put(id, &tnSession{
		endpoint: negotiation.NewController(party),
		lastUsed: time.Now(),
	})
	if m := s.Metrics; m != nil {
		m.Counter("tn_sessions_created_total").Inc()
		m.Gauge("tn_sessions_active").Inc()
	}
	return id, nil
}

// sessionParty prepares the negotiating identity for one session: the
// DB-backed reload of §6.2 when a store is attached, plus the metrics
// clone so endpoints record into the service registry without mutating
// the caller's Party.
func (s *TNService) sessionParty() (*negotiation.Party, error) {
	party := s.Party
	if s.DB != nil {
		loaded, err := s.loadPartyCached()
		if err != nil {
			return nil, fmt.Errorf("wsrpc: load party from store: %w", err)
		}
		party = loaded
	}
	if party.Metrics == nil && s.Metrics != nil {
		clone := *party
		clone.Metrics = s.Metrics
		party = &clone
	}
	return party, nil
}

// partyKinds are the store kinds a party reload reads — the memo key and
// invalidation scope of loadPartyCached.
var partyKinds = []string{partydb.KindCredential, partydb.KindPolicy, partydb.KindOntology}

// loadPartyCached memoizes partydb.LoadParty across sessions, keyed by
// the summed per-kind generation of the kinds a party is built from: a
// Put/Delete of a credential, policy or ontology bumps that sum and
// forces a reload, so the paper's per-StartNegotiation database reload
// semantics are preserved without reparsing every policy and credential
// document for each of N concurrent joins — and, unlike the old global
// Generation() key, a resume-ticket or replicated-session write leaves
// the memo intact. Sharing the loaded Party across sessions mirrors the
// non-DB path, which shares s.Party directly.
func (s *TNService) loadPartyCached() (*negotiation.Party, error) {
	gen := s.DB.KindGeneration(partyKinds...)
	s.partyMu.Lock()
	defer s.partyMu.Unlock()
	if s.partyCache != nil && s.partyGen == gen {
		return s.partyCache, nil
	}
	var reader partydb.Reader = s.DB
	if s.PartyReader != nil {
		reader = s.PartyReader
	}
	loaded, err := partydb.LoadParty(reader, s.Party)
	if err != nil {
		return nil, err
	}
	if m := s.Metrics; m != nil {
		m.Counter("tn_party_reloads_total").Inc()
	}
	s.partyGen, s.partyCache = gen, loaded
	return loaded, nil
}

// stale reports whether a session has outlived its lifetime: unfinished
// past MaxSessionAge, finished past the (shorter) DoneRetention.
func (s *TNService) stale(sess *tnSession, now time.Time) bool {
	cutoff := now.Add(-s.maxAge())
	if sess.done.Load() {
		return sess.lastUsed.Before(now.Add(-s.doneRetention())) || sess.lastUsed.Before(cutoff)
	}
	return sess.lastUsed.Before(cutoff)
}

// retireStale accounts for one stale session already removed from its
// stripe, reporting whether it counted as an expiry. An unfinished
// session can complete concurrently (exchangeHandler holds only sess.mu,
// never the stripe lock), so accounting routes through retire():
// whichever of sweep and completion wins the CAS releases the capacity
// slot — sweep then counts "expired", and the loser's copy is an
// ordinary "retired" map cleanup of a completed session. This keeps
// created == completed + expired + evicted exact.
func (s *TNService) retireStale(sess *tnSession) bool {
	expired := s.retire(sess)
	if m := s.Metrics; m != nil {
		reason := "retired"
		if expired {
			reason = "expired"
		}
		m.Counter("tn_sessions_swept_total", "reason", reason).Inc()
	}
	return expired
}

// sweepShard drops one stripe's stale sessions and returns how many
// expired (unfinished past MaxSessionAge) vs. retired (finished past
// DoneRetention).
func (s *TNService) sweepShard(sh *sessionShard) (expired, retired int) {
	now := time.Now()
	var stale []*tnSession
	sh.mu.Lock() //lint:allow nakedlock retireStale below must run outside the stripe lock; see its comment
	for id, sess := range sh.m {
		if s.stale(sess, now) {
			delete(sh.m, id)
			stale = append(stale, sess)
		}
	}
	sh.mu.Unlock()
	// retireStale touches the shared active counter and gauge; running it
	// after unlocking keeps stripe critical sections map-only.
	for _, sess := range stale {
		if s.retireStale(sess) {
			expired++
		} else {
			retired++
		}
	}
	return expired, retired
}

// evictForCapacity relieves session pressure: when the table is at
// MaxSessions, live sessions idle for more than half of MaxSessionAge
// are evicted, oldest first, each with a log line — the deployment gets
// signal instead of silent capacity errors, while fresh negotiations are
// never sacrificed. The half-age floor also means an evicted session
// cannot be mid-message: handlers refresh lastUsed on lookup.
//
// The globally-oldest candidate is found by scanning stripes one lock at
// a time, then re-verified under its own stripe lock before removal — it
// may have completed, been swept, or been refreshed in between. A failed
// re-verify just rescans; the candidate that invalidated itself can no
// longer be returned, so the loop terminates.
func (s *TNService) evictForCapacity() {
	idleCutoff := time.Now().Add(-s.maxAge() / 2)
	max := int64(s.maxSessions())
	for s.active.Load() >= max {
		sh, id, oldest := s.oldestIdle(idleCutoff)
		if oldest == nil {
			return
		}
		if !sh.remove(id, oldest, idleCutoff) {
			continue
		}
		if s.retire(oldest) {
			s.logf("wsrpc: evicted live negotiation %s idle=%s under session pressure (%d/%d active)",
				id, time.Since(oldest.lastUsed).Round(time.Millisecond), s.active.Load(), s.maxSessions())
			if m := s.Metrics; m != nil {
				m.Counter("tn_sessions_swept_total", "reason", "evicted").Inc()
			}
		} else if m := s.Metrics; m != nil {
			// Completed between the scan and the removal: an ordinary
			// retirement, already counted as completed.
			m.Counter("tn_sessions_swept_total", "reason", "retired").Inc()
		}
	}
}

// oldestIdle scans all stripes for the oldest unfinished session idle
// since before cutoff, returning its stripe, id and session (nil when no
// stripe has one).
func (s *TNService) oldestIdle(cutoff time.Time) (*sessionShard, string, *tnSession) {
	var (
		bestShard *sessionShard
		bestID    string
		best      *tnSession
		bestUsed  time.Time
	)
	for _, sh := range s.shardTable() {
		sh.mu.Lock() //lint:allow nakedlock per-stripe scan inside a loop; defer would hold the lock across stripes
		for id, sess := range sh.m {
			if sess.done.Load() || !sess.lastUsed.Before(cutoff) {
				continue
			}
			if best == nil || sess.lastUsed.Before(bestUsed) {
				bestShard, bestID, best, bestUsed = sh, id, sess, sess.lastUsed
			}
		}
		sh.mu.Unlock()
	}
	return bestShard, bestID, best
}

// remove deletes id from the stripe iff it still maps to sess and sess
// is still an eviction candidate (unfinished, idle past cutoff).
func (sh *sessionShard) remove(id string, sess *tnSession, cutoff time.Time) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur, ok := sh.m[id]
	if !ok || cur != sess || cur.done.Load() || !cur.lastUsed.Before(cutoff) {
		return false
	}
	delete(sh.m, id)
	return true
}

// session looks up id, refreshing its idle clock. Expiry is enforced
// lazily here as well as by the sweeps: amortized per-stripe sweeping
// means a stale session may still sit in an untouched stripe, and it
// must read as gone the moment its lifetime is over, not when a sweep
// happens to visit it.
func (s *TNService) session(id string) *tnSession {
	sh := s.shard(id)
	now := time.Now()
	var stale bool
	sh.mu.Lock() //lint:allow nakedlock retireStale below must run outside the stripe lock; see its comment
	sess := sh.m[id]
	if sess != nil {
		if stale = s.stale(sess, now); stale {
			delete(sh.m, id)
		} else {
			sess.lastUsed = now
		}
	}
	sh.mu.Unlock()
	if stale {
		s.retireStale(sess)
		return nil
	}
	return sess
}

// phaseKind partitions message types over the two exchange operations.
type phaseKind int

const (
	policyPhase phaseKind = iota
	credentialPhase
)

func phaseOf(t negotiation.MsgType) phaseKind {
	switch t {
	case negotiation.MsgRequest, negotiation.MsgPolicy, negotiation.MsgContinue:
		return policyPhase
	default:
		return credentialPhase
	}
}

// countBadEnvelope records a rejected envelope — undecodable schema,
// malformed sequence number, or a corrupt suspended-session record.
func (s *TNService) countBadEnvelope() {
	if m := s.Metrics; m != nil {
		m.Counter("tn_bad_envelope_total").Inc()
	}
}

func (s *TNService) exchangeHandler(phase phaseKind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeFault(w, http.StatusMethodNotAllowed, "method", "POST required")
			return
		}
		body, err := readBodyDOM(r)
		if err != nil {
			writeFault(w, http.StatusBadRequest, "parse", err.Error())
			return
		}
		id, seq, msg, err := openEnvelopeSeq(body)
		if err != nil {
			s.countBadEnvelope()
			code := "schema"
			var werr *Error
			if errors.As(err, &werr) && werr.Code != "" {
				code = werr.Code
			}
			writeFault(w, http.StatusBadRequest, code, err.Error())
			return
		}
		// Terminal messages (success/fail) may land on either operation;
		// other types must match their phase's operation.
		if msg.Type != negotiation.MsgSuccess && msg.Type != negotiation.MsgFail && phaseOf(msg.Type) != phase {
			writeFault(w, http.StatusBadRequest, "phase",
				fmt.Sprintf("message %s does not belong to this operation", msg.Type))
			return
		}
		sess := s.session(id)
		if sess == nil {
			writeFault(w, http.StatusNotFound, "negotiation", "unknown or expired negotiation "+id)
			return
		}
		sess.mu.Lock()
		defer sess.mu.Unlock()
		if seq > 0 && seq == sess.lastSeq {
			// Duplicate delivery (client retry after a lost response, or a
			// duplicated message): replay the cached response unchanged.
			// The replay must clear the standby gate too — the retry may
			// exist precisely because the first ship attempt failed and
			// withheld the reply.
			if err := s.shipSessionUpdate(r.Context(), id, sess); err != nil {
				writeShipFault(w, err)
				return
			}
			if m := s.Metrics; m != nil {
				m.Counter("tn_replays_total").Inc()
			}
			s.debugf("tn-message session=%s op=%s type=%s seq=%d replayed", id, phase, msg.Type, seq)
			writeRaw(w, sess.lastReplyStatus, sess.lastReply)
			return
		}
		if sess.endpoint.Done() {
			writeFault(w, http.StatusConflict, "done", "negotiation already finished")
			return
		}
		start := time.Now()
		reply, err := sess.endpoint.Handle(msg)
		s.debugf("tn-message session=%s op=%s type=%s dur=%s err=%v",
			id, phase, msg.Type, time.Since(start).Round(time.Microsecond), err != nil)
		if sess.endpoint.Done() && !sess.done.Swap(true) {
			sess.outcome = sess.endpoint.Outcome()
			// retire() may lose to a concurrent expiry sweep or capacity
			// eviction that already released this session's slot; the
			// completed counter follows the same winner so a session is
			// counted exactly once across completed/expired/evicted.
			if s.retire(sess) {
				result := "failure"
				if sess.outcome != nil && sess.outcome.Succeeded {
					result = "success"
				}
				if m := s.Metrics; m != nil {
					m.Counter("tn_sessions_completed_total", "result", result).Inc()
				}
			}
		}
		status, respBody := http.StatusOK, ""
		switch {
		case err != nil:
			status = http.StatusInternalServerError
			respBody = (&Fault{Code: "internal", Detail: err.Error()}).DOM().XML()
		case reply == nil:
			// Terminal message consumed; acknowledge with the outcome.
			respBody = statusDOM(id, sess.endpoint).XML()
		default:
			respBody = envelope(id, reply).XML()
		}
		if seq > 0 {
			sess.lastSeq, sess.lastReplyStatus, sess.lastReply = seq, status, respBody
		}
		// Standby gate: the updated state (endpoint tree + reply cache)
		// must be accepted by the hook before the reply leaves. On
		// failure the client retries the same sequence number and lands
		// on the replay path above, which re-attempts the ship.
		if err := s.shipSessionUpdate(r.Context(), id, sess); err != nil {
			writeShipFault(w, err)
			return
		}
		writeRaw(w, status, respBody)
	}
}

// shipSessionUpdate pushes the session's suspended-state document
// through the OnSessionUpdate hook (caller holds sess.mu). Sessions
// with nothing to snapshot — no message processed yet, or already
// finished — ship nothing: a finished negotiation's outcome is in the
// client's hands, so its loss costs no acked state.
func (s *TNService) shipSessionUpdate(ctx context.Context, id string, sess *tnSession) error {
	ship := s.OnSessionUpdate
	if ship == nil {
		return nil
	}
	doc, ok := sess.suspendDocLocked(id)
	if !ok {
		return nil
	}
	return ship(ctx, id, doc)
}

// writeShipFault reports a failed standby ship as honest backpressure:
// retryable, with the reply withheld so the acked-implies-shipped
// invariant holds.
func writeShipFault(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", "1")
	writeFault(w, http.StatusServiceUnavailable, "standby", err.Error())
}

// writeRaw emits a pre-serialized XML response (the replay path must be
// byte-identical to the original).
func writeRaw(w http.ResponseWriter, status int, body string) {
	w.Header().Set("Content-Type", ContentType)
	if status != http.StatusOK {
		w.WriteHeader(status)
	}
	io.WriteString(w, body)
}

func (s *TNService) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("negotiation")
	sess := s.session(id)
	if sess == nil {
		writeFault(w, http.StatusNotFound, "negotiation", "unknown or expired negotiation "+id)
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	writeDOM(w, statusDOM(id, sess.endpoint))
}

func statusDOM(id string, e *negotiation.Endpoint) *xmldom.Node {
	n := xmldom.NewElement("status").
		SetAttr("negotiation", id).
		SetAttr("done", boolStr(e.Done()))
	if out := e.Outcome(); out != nil {
		n.SetAttr("succeeded", boolStr(out.Succeeded))
		if out.Reason != "" {
			n.SetAttr("reason", out.Reason)
		}
	}
	return n
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// Sessions returns the number of live sessions (monitoring).
func (s *TNService) Sessions() int {
	n := 0
	for _, sh := range s.shardTable() {
		s.sweepShard(sh)
		sh.mu.Lock() //lint:allow nakedlock per-stripe length inside a loop; defer would hold the lock across stripes
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}
