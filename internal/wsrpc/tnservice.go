package wsrpc

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"trustvo/internal/negotiation"
	"trustvo/internal/partydb"
	"trustvo/internal/store"
	"trustvo/internal/xmldom"
)

// TNService exposes a controller party as the paper's TN web service
// (§6.2): "The TN Web service provides three different operations,
// StartNegotiation, PolicyExchange and CredentialExchange, each
// corresponding to one of the main phases of the negotiation process."
//
//   - POST /tn/start            <startNegotiationRequest strategy=… resource=…/>
//     → <startNegotiationResponse negotiation=…/>
//     ("StartNegotiation assigns a unique id to the negotiation process")
//   - POST /tn/policyExchange   <envelope negotiation=…><tnMessage…/></envelope>
//     for request/policy/continue messages
//   - POST /tn/credentialExchange  same envelope, for sequence/credential/
//     ack messages ("verifies the validity of the counterpart's
//     credential … then selects the next credential to be sent")
//   - GET  /tn/status?negotiation=… → <status done=… succeeded=… reason=…/>
//
// Each negotiation id maps to one controller Endpoint; idle sessions
// expire after MaxSessionAge.
type TNService struct {
	// Party is the controller identity the service negotiates as.
	Party *negotiation.Party
	// DB, when set, is the document store holding the party's
	// disclosure policies and credentials; StartNegotiation then
	// rebuilds the negotiating party from it for every session, exactly
	// as the paper's operation "opens the connection with [the] Oracle
	// database containing the disclosure policies and credentials of
	// the invoker" (§6.2). Party then only supplies identity, trust
	// anchors, keys and hooks.
	DB *store.Store
	// MaxSessionAge bounds idle session lifetime (default 5 minutes).
	MaxSessionAge time.Duration
	// MaxSessions bounds concurrently ACTIVE negotiations (default
	// 1024); finished sessions do not count and are retired after
	// DoneRetention.
	MaxSessions int
	// DoneRetention is how long a finished negotiation stays queryable
	// via /tn/status (default 30 seconds).
	DoneRetention time.Duration

	mu       sync.Mutex
	sessions map[string]*tnSession
}

type tnSession struct {
	endpoint *negotiation.Endpoint
	mu       sync.Mutex // one in-flight message per session
	lastUsed time.Time
	outcome  *negotiation.Outcome
	done     atomic.Bool
}

// NewTNService creates a service negotiating as party.
func NewTNService(party *negotiation.Party) *TNService {
	return &TNService{Party: party, sessions: make(map[string]*tnSession)}
}

// Register mounts the TN operations on mux under /tn/.
func (s *TNService) Register(mux *http.ServeMux) {
	mux.HandleFunc("/tn/start", s.handleStart)
	mux.HandleFunc("/tn/policyExchange", s.exchangeHandler(policyPhase))
	mux.HandleFunc("/tn/credentialExchange", s.exchangeHandler(credentialPhase))
	mux.HandleFunc("/tn/status", s.handleStatus)
}

func (s *TNService) maxAge() time.Duration {
	if s.MaxSessionAge > 0 {
		return s.MaxSessionAge
	}
	return 5 * time.Minute
}

func (s *TNService) maxSessions() int {
	if s.MaxSessions > 0 {
		return s.MaxSessions
	}
	return 1024
}

func (s *TNService) doneRetention() time.Duration {
	if s.DoneRetention > 0 {
		return s.DoneRetention
	}
	return 30 * time.Second
}

func (s *TNService) handleStart(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeFault(w, http.StatusMethodNotAllowed, "method", "POST required")
		return
	}
	body, err := readBodyDOM(r)
	if err != nil {
		writeFault(w, http.StatusBadRequest, "parse", err.Error())
		return
	}
	if body.Name != "startNegotiationRequest" {
		writeFault(w, http.StatusBadRequest, "schema", "expected <startNegotiationRequest>")
		return
	}
	if _, err := negotiation.ParseStrategy(body.AttrOr("strategy", "standard")); err != nil {
		writeFault(w, http.StatusBadRequest, "strategy", err.Error())
		return
	}
	id, err := s.newSession()
	if err != nil {
		writeFault(w, http.StatusServiceUnavailable, "capacity", err.Error())
		return
	}
	writeDOM(w, xmldom.NewElement("startNegotiationResponse").SetAttr("negotiation", id))
}

func (s *TNService) newSession() (string, error) {
	var raw [12]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return "", err
	}
	id := hex.EncodeToString(raw[:])
	party := s.Party
	if s.DB != nil {
		loaded, err := partydb.LoadParty(s.DB, s.Party)
		if err != nil {
			return "", fmt.Errorf("wsrpc: load party from store: %w", err)
		}
		party = loaded
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	active := 0
	for _, sess := range s.sessions {
		if !sess.done.Load() {
			active++
		}
	}
	if active >= s.maxSessions() {
		return "", fmt.Errorf("wsrpc: %d concurrent negotiations", active)
	}
	s.sessions[id] = &tnSession{
		endpoint: negotiation.NewController(party),
		lastUsed: time.Now(),
	}
	return id, nil
}

// sweepLocked drops idle sessions: unfinished ones after MaxSessionAge,
// finished ones after the (shorter) DoneRetention. Caller holds s.mu.
func (s *TNService) sweepLocked() {
	now := time.Now()
	cutoff := now.Add(-s.maxAge())
	doneCutoff := now.Add(-s.doneRetention())
	for id, sess := range s.sessions {
		if sess.lastUsed.Before(cutoff) ||
			(sess.done.Load() && sess.lastUsed.Before(doneCutoff)) {
			delete(s.sessions, id)
		}
	}
}

func (s *TNService) session(id string) *tnSession {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[id]
	if sess != nil {
		sess.lastUsed = time.Now()
	}
	return sess
}

// phaseKind partitions message types over the two exchange operations.
type phaseKind int

const (
	policyPhase phaseKind = iota
	credentialPhase
)

func phaseOf(t negotiation.MsgType) phaseKind {
	switch t {
	case negotiation.MsgRequest, negotiation.MsgPolicy, negotiation.MsgContinue:
		return policyPhase
	default:
		return credentialPhase
	}
}

func (s *TNService) exchangeHandler(phase phaseKind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeFault(w, http.StatusMethodNotAllowed, "method", "POST required")
			return
		}
		body, err := readBodyDOM(r)
		if err != nil {
			writeFault(w, http.StatusBadRequest, "parse", err.Error())
			return
		}
		id, msg, err := openEnvelope(body)
		if err != nil {
			writeFault(w, http.StatusBadRequest, "schema", err.Error())
			return
		}
		// Terminal messages (success/fail) may land on either operation;
		// other types must match their phase's operation.
		if msg.Type != negotiation.MsgSuccess && msg.Type != negotiation.MsgFail && phaseOf(msg.Type) != phase {
			writeFault(w, http.StatusBadRequest, "phase",
				fmt.Sprintf("message %s does not belong to this operation", msg.Type))
			return
		}
		sess := s.session(id)
		if sess == nil {
			writeFault(w, http.StatusNotFound, "negotiation", "unknown or expired negotiation "+id)
			return
		}
		sess.mu.Lock()
		defer sess.mu.Unlock()
		if sess.endpoint.Done() {
			writeFault(w, http.StatusConflict, "done", "negotiation already finished")
			return
		}
		reply, err := sess.endpoint.Handle(msg)
		if sess.endpoint.Done() {
			sess.outcome = sess.endpoint.Outcome()
			sess.done.Store(true)
		}
		if err != nil {
			writeFault(w, http.StatusInternalServerError, "internal", err.Error())
			return
		}
		if reply == nil {
			// Terminal message consumed; acknowledge with the outcome.
			writeDOM(w, statusDOM(id, sess.endpoint))
			return
		}
		writeDOM(w, envelope(id, reply))
	}
}

func (s *TNService) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("negotiation")
	sess := s.session(id)
	if sess == nil {
		writeFault(w, http.StatusNotFound, "negotiation", "unknown or expired negotiation "+id)
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	writeDOM(w, statusDOM(id, sess.endpoint))
}

func statusDOM(id string, e *negotiation.Endpoint) *xmldom.Node {
	n := xmldom.NewElement("status").
		SetAttr("negotiation", id).
		SetAttr("done", boolStr(e.Done()))
	if out := e.Outcome(); out != nil {
		n.SetAttr("succeeded", boolStr(out.Succeeded))
		if out.Reason != "" {
			n.SetAttr("reason", out.Reason)
		}
	}
	return n
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// Sessions returns the number of live sessions (monitoring).
func (s *TNService) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	return len(s.sessions)
}
