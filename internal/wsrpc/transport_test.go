package wsrpc

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"trustvo/internal/telemetry"
)

// fastRetry keeps transport tests quick while still exercising the loop.
func fastRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}
}

// TestRetryOnTransientStatus: two 503s then a success converge through
// the backoff loop, counting the retries.
func TestRetryOnTransientStatus(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			writeFault(w, http.StatusServiceUnavailable, "overloaded", "try later")
			return
		}
		fmt.Fprint(w, "<ok/>")
	}))
	defer srv.Close()
	reg := telemetry.NewRegistry()
	tr := &Transport{Retry: fastRetry(), Metrics: reg}
	root, err := tr.call(bg, http.MethodPost, srv.URL, "/x", "", "<req/>", true)
	if err != nil {
		t.Fatal(err)
	}
	if root.Name != "ok" {
		t.Fatalf("root = %s", root.Name)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server hits = %d, want 3", got)
	}
	if got := reg.Counter("wsrpc_client_retries_total", "route", "/x").Value(); got != 2 {
		t.Fatalf("retries counter = %d, want 2", got)
	}
}

// TestNoRetryOnNonIdempotent: a transient failure on a non-idempotent
// route surfaces immediately.
func TestNoRetryOnNonIdempotent(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		writeFault(w, http.StatusServiceUnavailable, "overloaded", "try later")
	}))
	defer srv.Close()
	tr := &Transport{Retry: fastRetry()}
	_, err := tr.call(bg, http.MethodPost, srv.URL, "/x", "", "<req/>", false)
	if !IsTemporary(err) {
		t.Fatalf("expected temporary error, got %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server hits = %d, want 1 (no retries)", got)
	}
}

// TestNoRetryOnDefinitiveError: a 400-class protocol fault is final even
// on an idempotent route, and unwraps to the typed *Fault.
func TestNoRetryOnDefinitiveError(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		writeFault(w, http.StatusBadRequest, "bad-envelope", "unparseable")
	}))
	defer srv.Close()
	tr := &Transport{Retry: fastRetry()}
	_, err := tr.call(bg, http.MethodPost, srv.URL, "/x", "", "<req/>", true)
	if IsTemporary(err) {
		t.Fatalf("400 classified as temporary: %v", err)
	}
	var fault *Fault
	if !errors.As(err, &fault) || fault.Code != "bad-envelope" {
		t.Fatalf("fault not surfaced: %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server hits = %d, want 1", got)
	}
}

// TestMalformedResponseIsTemporary: a truncated 2xx body means the reply
// was lost in transit — transient, so idempotent routes retry it.
func TestMalformedResponseIsTemporary(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			fmt.Fprint(w, "<ok") // cut mid-tag
			return
		}
		fmt.Fprint(w, "<ok/>")
	}))
	defer srv.Close()
	tr := &Transport{Retry: fastRetry()}
	root, err := tr.call(bg, http.MethodPost, srv.URL, "/x", "", "<req/>", true)
	if err != nil {
		t.Fatal(err)
	}
	if root.Name != "ok" || hits.Load() != 2 {
		t.Fatalf("root=%s hits=%d", root.Name, hits.Load())
	}
}

// TestRetryAfterHintIsCapped: a server advertising a huge Retry-After
// must not stall the client past the policy's MaxDelay per retry.
func TestRetryAfterHintIsCapped(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3600")
		writeFault(w, http.StatusServiceUnavailable, "capacity", "full")
	}))
	defer srv.Close()
	tr := &Transport{Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond}}
	t0 := time.Now()
	_, err := tr.call(bg, http.MethodPost, srv.URL, "/x", "", "<req/>", true)
	if err == nil {
		t.Fatal("expected failure")
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("Retry-After hint not capped: call took %v", elapsed)
	}
	var te *Error
	if !errors.As(err, &te) || te.RetryAfter != 3600*time.Second {
		t.Fatalf("Retry-After not parsed into the typed error: %v", err)
	}
}

// TestBreakerStateMachine drives the breaker directly with a fake clock:
// threshold failures open it, the cooldown half-opens it for one probe,
// and the probe's outcome closes or re-opens it.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := newBreaker(3, time.Second, clock)
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		if b.failure() {
			t.Fatalf("breaker tripped before threshold at failure %d", i)
		}
	}
	if !b.allow() {
		t.Fatal("closed breaker rejected the threshold call")
	}
	if !b.failure() {
		t.Fatal("threshold failure did not trip the breaker")
	}
	if b.snapshot() != breakerOpen {
		t.Fatalf("state = %s, want open", b.snapshot())
	}
	if b.allow() {
		t.Fatal("open breaker admitted a call inside the cooldown")
	}
	now = now.Add(1100 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker did not half-open after the cooldown")
	}
	if b.snapshot() != breakerHalfOpen {
		t.Fatalf("state = %s, want half-open", b.snapshot())
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// failed probe: straight back to open
	if !b.failure() {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if b.allow() {
		t.Fatal("re-opened breaker admitted a call")
	}
	now = now.Add(1100 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker did not half-open for the second probe")
	}
	b.success()
	if b.snapshot() != breakerClosed {
		t.Fatalf("state = %s, want closed after successful probe", b.snapshot())
	}
	if !b.allow() {
		t.Fatal("closed breaker rejected a call")
	}
}

// errTransport always fails at the connection level.
type errTransport struct{ hits atomic.Int64 }

func (e *errTransport) RoundTrip(*http.Request) (*http.Response, error) {
	e.hits.Add(1)
	return nil, errors.New("connection refused")
}

// TestBreakerTripsOnTransportFailures: consecutive connection failures
// trip the endpoint breaker, and further attempts are rejected without
// touching the network.
func TestBreakerTripsOnTransportFailures(t *testing.T) {
	et := &errTransport{}
	reg := telemetry.NewRegistry()
	tr := &Transport{
		HTTP:             &http.Client{Transport: et},
		Retry:            RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		Metrics:          reg,
	}
	_, err := tr.call(bg, http.MethodPost, "http://unreachable.invalid", "/x", "", "<req/>", true)
	if !IsTemporary(err) {
		t.Fatalf("expected temporary failure, got %v", err)
	}
	if got := et.hits.Load(); got != 2 {
		t.Fatalf("network attempts = %d, want 2 (breaker open afterwards)", got)
	}
	if got := reg.Counter("wsrpc_client_breaker_tripped_total", "route", "/x").Value(); got != 1 {
		t.Fatalf("tripped counter = %d, want 1", got)
	}
	if reg.Counter("wsrpc_client_breaker_rejected_total", "route", "/x").Value() == 0 {
		t.Fatal("no rejected attempts counted while open")
	}
	if reg.Counter("wsrpc_client_gaveup_total", "route", "/x").Value() != 1 {
		t.Fatal("gave-up counter not incremented")
	}
	// a breaker-open failure still reports as temporary and wraps the
	// sentinel, so callers can distinguish it
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("final error does not wrap ErrCircuitOpen: %v", err)
	}
}
