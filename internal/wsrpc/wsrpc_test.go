package wsrpc

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"trustvo/internal/core"
	"trustvo/internal/negotiation"
	"trustvo/internal/partydb"
	"trustvo/internal/pki"
	"trustvo/internal/store"
	"trustvo/internal/vo"
	"trustvo/internal/vo/registry"
	"trustvo/internal/xtnl"
)

// bg is the context for test client calls.
var bg = context.Background()

// wsFixture hosts an initiator's toolkit (TN included) on an httptest
// server and provides a capable member client.
type wsFixture struct {
	srv    *httptest.Server
	tk     *ToolkitService
	member *MemberClient
	ca     *pki.Authority
}

func newWSFixture(t testing.TB) *wsFixture {
	t.Helper()
	ca := pki.MustNewAuthority("CertCA")
	iniParty := &negotiation.Party{
		Name:     "AircraftCo",
		Profile:  xtnl.NewProfile("AircraftCo"),
		Policies: xtnl.MustPolicySet(),
		Trust:    pki.NewTrustStore(ca),
	}
	contract := &vo.Contract{
		VOName:    "AircraftOptimizationVO",
		Goal:      "wing optimization",
		Initiator: "AircraftCo",
		Roles: []vo.RoleSpec{
			{Name: "DesignWebPortal", Capabilities: []string{"design-db"}, MinMembers: 1,
				AdmissionPolicies: xtnl.MustParsePolicies("M <- WebDesignerQuality(regulation='UNI EN ISO 9000')")},
			{Name: "Storage", MinMembers: 0,
				AdmissionPolicies: xtnl.MustParsePolicies("M <- DELIV")},
		},
		Rules: []vo.Rule{{Operation: "optimize", Callers: []string{"DesignWebPortal"}}},
	}
	ini, err := core.NewInitiator(contract, iniParty, registry.New())
	if err != nil {
		t.Fatal(err)
	}
	if err := ini.VO.StartFormation(); err != nil {
		t.Fatal(err)
	}
	tk := NewToolkitService(ini)
	mux := http.NewServeMux()
	tk.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	memberProfile := xtnl.NewProfile("AerospaceCo")
	memberProfile.Add(ca.MustIssue(pki.IssueRequest{
		Type: "WebDesignerQuality", Holder: "AerospaceCo",
		Attributes: []xtnl.Attribute{{Name: "regulation", Value: "UNI EN ISO 9000"}},
	}))
	member := &MemberClient{
		BaseURL: srv.URL,
		Party: &negotiation.Party{
			Name:     "AerospaceCo",
			Profile:  memberProfile,
			Policies: xtnl.MustPolicySet(),
			Trust:    pki.NewTrustStore(ca),
		},
	}
	return &wsFixture{srv: srv, tk: tk, member: member, ca: ca}
}

func (f *wsFixture) publishMember(t testing.TB) {
	t.Helper()
	err := f.member.Publish(bg, &registry.Description{
		Provider: "AerospaceCo", Service: "DesignPortal", Capabilities: []string{"design-db"},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestJoinWithNegotiationOverHTTP(t *testing.T) {
	f := newWSFixture(t)
	f.publishMember(t)

	der, out, err := f.member.Join(bg, "DesignWebPortal")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Succeeded || out.Rounds == 0 {
		t.Fatalf("outcome: %+v", out)
	}
	// the grant verifies as an X.509 membership token
	tok, err := f.tk.Initiator.VO.Authority.VerifyMembership(der)
	if err != nil {
		t.Fatal(err)
	}
	if tok.Member != "AerospaceCo" || tok.Role != "DesignWebPortal" {
		t.Fatalf("token: %+v", tok)
	}
	// toolkit views agree
	members, err := f.member.Members(bg)
	if err != nil {
		t.Fatal(err)
	}
	if members["AerospaceCo"] != "DesignWebPortal" {
		t.Fatalf("members = %v", members)
	}
	phase, n, err := f.member.VOStatus(bg)
	if err != nil || phase != "formation" || n != 1 {
		t.Fatalf("status = %s %d %v", phase, n, err)
	}
	// the mailbox recorded the invitation
	inbox, err := f.member.Mailbox(bg)
	if err != nil || len(inbox) != 1 || inbox[0].Role != "DesignWebPortal" {
		t.Fatalf("mailbox = %+v (%v)", inbox, err)
	}
}

func TestJoinDirectBaselineOverHTTP(t *testing.T) {
	f := newWSFixture(t)
	f.publishMember(t)
	der, err := f.member.JoinDirect(bg, "DesignWebPortal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.tk.Initiator.VO.Authority.VerifyMembership(der); err != nil {
		t.Fatal(err)
	}
	// joining again conflicts
	if _, err := f.member.JoinDirect(bg, "DesignWebPortal"); err == nil {
		t.Fatal("duplicate direct join accepted")
	}
}

func TestJoinFailsWithoutCredentialOverHTTP(t *testing.T) {
	f := newWSFixture(t)
	f.publishMember(t)
	f.member.Party.Profile = xtnl.NewProfile("AerospaceCo") // drop credentials
	_, out, err := f.member.Join(bg, "DesignWebPortal")
	if err == nil {
		t.Fatal("credential-less join succeeded")
	}
	if out == nil || out.Succeeded {
		t.Fatalf("outcome = %+v", out)
	}
	if f.tk.Initiator.VO.Member("AerospaceCo") != nil {
		t.Fatal("failed negotiator admitted")
	}
}

func TestOperateAndReputationOverHTTP(t *testing.T) {
	f := newWSFixture(t)
	f.publishMember(t)
	if _, _, err := f.member.Join(bg, "DesignWebPortal"); err != nil {
		t.Fatal(err)
	}
	// move to operation via the lifecycle endpoints
	resp, err := http.Post(f.srv.URL+"/vo/start-operation", ContentType, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeResponse(resp, "ok"); err != nil {
		t.Fatal(err)
	}
	if err := f.member.Operate(bg, "optimize"); err != nil {
		t.Fatal(err)
	}
	// a rule violation is rejected and reported
	if err := f.member.Operate(bg, "exfiltrate"); err == nil {
		t.Fatal("illegal operation authorized")
	}
	if err := f.member.ReportViolation(bg, "AerospaceCo", "optimize", "late delivery", 2); err != nil {
		t.Fatal(err)
	}
	score, err := f.member.Reputation(bg, "AerospaceCo")
	if err != nil {
		t.Fatal(err)
	}
	if score <= 0 || score >= 1 {
		t.Fatalf("score = %v", score)
	}
}

func TestApplyFaults(t *testing.T) {
	f := newWSFixture(t)
	// unpublished provider
	if _, _, err := f.member.Apply(bg, "DesignWebPortal"); err == nil {
		t.Fatal("apply without publication accepted")
	}
	var fault *Fault
	_, _, err := f.member.Apply(bg, "DesignWebPortal")
	if !errors.As(err, &fault) || fault.Code != "registry" {
		t.Fatalf("fault = %v", err)
	}
	// unknown role
	f.publishMember(t)
	if _, _, err := f.member.Apply(bg, "NoSuchRole"); err == nil {
		t.Fatal("unknown role accepted")
	}
}

func TestTNServiceProtocolFaults(t *testing.T) {
	f := newWSFixture(t)
	f.publishMember(t)
	post := func(path, body string) (*http.Response, error) {
		return http.Post(f.srv.URL+path, ContentType, strings.NewReader(body))
	}
	// bad XML
	resp, _ := post("/tn/start", "<broken")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad xml status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// wrong root
	resp, _ = post("/tn/start", "<wrong/>")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong root status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// bad strategy
	resp, _ = post("/tn/start", `<startNegotiationRequest strategy="bogus"/>`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad strategy status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// GET on POST endpoint
	resp, _ = http.Get(f.srv.URL + "/tn/start")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// unknown negotiation id
	env := envelope("deadbeef", &negotiation.Message{Type: negotiation.MsgRequest, From: "x", Resource: "R"})
	resp, _ = post("/tn/policyExchange", env.XML())
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown negotiation status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// phase mismatch: a request message on the credentialExchange
	// operation is rejected (§6.2's operation/phase correspondence)
	tn := &TNClient{BaseURL: f.srv.URL, Party: f.member.Party}
	id, err := tn.Start(bg, "whatever")
	if err != nil {
		t.Fatal(err)
	}
	env = envelope(id, &negotiation.Message{Type: negotiation.MsgRequest, From: "x", Resource: "R"})
	resp, _ = post("/tn/credentialExchange", env.XML())
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("phase mismatch status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestTNStatusEndpoint(t *testing.T) {
	f := newWSFixture(t)
	f.publishMember(t)
	tn := &TNClient{BaseURL: f.srv.URL, Party: f.member.Party}
	_, resource, err := f.member.Apply(bg, "DesignWebPortal")
	if err != nil {
		t.Fatal(err)
	}
	id, err := tn.Start(bg, resource)
	if err != nil {
		t.Fatal(err)
	}
	done, _, _, err := tn.Status(bg, id)
	if err != nil || done {
		t.Fatalf("fresh status: done=%v err=%v", done, err)
	}
	// run the negotiation manually against this id
	ep := negotiation.NewRequester(f.member.Party, resource)
	msg, _ := ep.Start()
	for msg != nil {
		reply, err := tn.Exchange(bg, id, msg)
		if err != nil {
			t.Fatal(err)
		}
		if reply == nil {
			break
		}
		if msg, err = ep.Handle(reply); err != nil {
			t.Fatal(err)
		}
	}
	done, succeeded, _, err := tn.Status(bg, id)
	if err != nil || !done || !succeeded {
		t.Fatalf("final status: done=%v ok=%v err=%v", done, succeeded, err)
	}
	if _, _, _, err := tn.Status(bg, "nope"); err == nil {
		t.Fatal("status of unknown negotiation should fault")
	}
}

func TestSessionExpiry(t *testing.T) {
	f := newWSFixture(t)
	f.tk.TN.MaxSessionAge = time.Millisecond
	tn := &TNClient{BaseURL: f.srv.URL, Party: f.member.Party}
	id, err := tn.Start(bg, "R")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	// sweeping happens on the next session creation
	if _, err := tn.Start(bg, "R"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := tn.Status(bg, id); err == nil {
		t.Fatal("expired session still served")
	}
}

func TestSessionCapacity(t *testing.T) {
	f := newWSFixture(t)
	f.tk.TN.MaxSessions = 2
	tn := &TNClient{BaseURL: f.srv.URL, Party: f.member.Party}
	for i := 0; i < 2; i++ {
		if _, err := tn.Start(bg, "R"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tn.Start(bg, "R"); err == nil {
		t.Fatal("capacity limit not enforced")
	}
	if got := f.tk.TN.Sessions(); got != 2 {
		t.Fatalf("sessions = %d", got)
	}
}

func TestRegistryEndpoints(t *testing.T) {
	f := newWSFixture(t)
	f.publishMember(t)
	resp, err := http.Get(f.srv.URL + "/registry/list")
	if err != nil {
		t.Fatal(err)
	}
	root, err := decodeResponse(resp, "descriptions")
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Childs("serviceDescription")) != 1 {
		t.Fatalf("list = %s", root.XML())
	}
	resp, err = http.Get(f.srv.URL + "/registry/find?capability=design-db")
	if err != nil {
		t.Fatal(err)
	}
	root, err = decodeResponse(resp, "descriptions")
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Childs("serviceDescription")) != 1 {
		t.Fatalf("find = %s", root.XML())
	}
	resp, err = http.Get(f.srv.URL + "/registry/find?capability=nope")
	if err != nil {
		t.Fatal(err)
	}
	root, err = decodeResponse(resp, "descriptions")
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Childs("serviceDescription")) != 0 {
		t.Fatalf("impossible find = %s", root.XML())
	}
}

func TestDelivRoleJoinOverHTTP(t *testing.T) {
	f := newWSFixture(t)
	err := f.member.Publish(bg, &registry.Description{Provider: "AerospaceCo", Service: "S"})
	if err != nil {
		t.Fatal(err)
	}
	der, out, err := f.member.Join(bg, "Storage")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Succeeded || der == nil {
		t.Fatalf("DELIV join: %+v", out)
	}
}

func TestDBBackedSessions(t *testing.T) {
	// The controller's profile and policies live in the document store;
	// the service party is only an identity template. StartNegotiation
	// must rebuild the party from the DB (§6.2).
	ca := pki.MustNewAuthority("CertCA")
	db := store.New()
	full := &negotiation.Party{
		Name:    "AircraftCo",
		Profile: xtnl.NewProfile("AircraftCo"),
		Policies: xtnl.MustPolicySet(xtnl.MustParsePolicies(
			"Certification <- AAAMember")...),
		Trust: pki.NewTrustStore(ca),
	}
	full.Profile.Add(ca.MustIssue(pki.IssueRequest{Type: "ISOCert", Holder: "AircraftCo"}))
	if err := partydb.SaveParty(db, full); err != nil {
		t.Fatal(err)
	}
	template := &negotiation.Party{
		Name:     "AircraftCo",
		Profile:  xtnl.NewProfile("AircraftCo"), // empty: must come from DB
		Policies: xtnl.MustPolicySet(),
		Trust:    pki.NewTrustStore(ca),
		Grant:    func(resource, peer string) ([]byte, error) { return []byte("ok"), nil },
	}
	svc := NewTNService(template)
	svc.DB = db
	mux := http.NewServeMux()
	svc.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	reqProf := xtnl.NewProfile("AerospaceCo")
	reqProf.Add(ca.MustIssue(pki.IssueRequest{Type: "AAAMember", Holder: "AerospaceCo"}))
	tn := &TNClient{BaseURL: srv.URL, Party: &negotiation.Party{
		Name: "AerospaceCo", Profile: reqProf,
		Policies: xtnl.MustPolicySet(), Trust: pki.NewTrustStore(ca),
	}}
	out, err := tn.Negotiate(bg, "Certification")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Succeeded {
		t.Fatalf("DB-backed negotiation failed: %s", out.Reason)
	}

	// Without the DB the template has no policies: the resource is not
	// offered.
	svc2 := NewTNService(template)
	mux2 := http.NewServeMux()
	svc2.Register(mux2)
	srv2 := httptest.NewServer(mux2)
	defer srv2.Close()
	tn2 := &TNClient{BaseURL: srv2.URL, Party: tn.Party}
	out, err = tn2.Negotiate(bg, "Certification")
	if err != nil {
		t.Fatal(err)
	}
	if out.Succeeded {
		t.Fatal("template-only service should not offer the resource")
	}
}

// TestConcurrentJoinsOverHTTP stresses the service with many members
// negotiating admission in parallel (distinct identities, shared role
// with ample capacity).
func TestConcurrentJoinsOverHTTP(t *testing.T) {
	ca := pki.MustNewAuthority("CertCA")
	iniParty := &negotiation.Party{
		Name:     "AircraftCo",
		Profile:  xtnl.NewProfile("AircraftCo"),
		Policies: xtnl.MustPolicySet(),
		Trust:    pki.NewTrustStore(ca),
	}
	const members = 16
	contract := &vo.Contract{
		VOName: "BigVO", Initiator: "AircraftCo",
		Roles: []vo.RoleSpec{{
			Name: "Worker", MinMembers: 1, MaxMembers: members,
			AdmissionPolicies: xtnl.MustParsePolicies("M <- WorkPermit"),
		}},
	}
	ini, err := core.NewInitiator(contract, iniParty, registry.New())
	if err != nil {
		t.Fatal(err)
	}
	ini.VO.StartFormation()
	tk := NewToolkitService(ini)
	mux := http.NewServeMux()
	tk.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	errs := make(chan error, members)
	for i := 0; i < members; i++ {
		go func(i int) {
			name := fmt.Sprintf("worker-%02d", i)
			prof := xtnl.NewProfile(name)
			prof.Add(ca.MustIssue(pki.IssueRequest{Type: "WorkPermit", Holder: name}))
			mc := &MemberClient{
				BaseURL: srv.URL,
				Party: &negotiation.Party{
					Name: name, Profile: prof,
					Policies: xtnl.MustPolicySet(), Trust: pki.NewTrustStore(ca),
				},
			}
			if err := mc.Publish(bg, &registry.Description{Provider: name, Service: "work"}); err != nil {
				errs <- err
				return
			}
			der, out, err := mc.Join(bg, "Worker")
			if err != nil {
				errs <- fmt.Errorf("%s: %w", name, err)
				return
			}
			if !out.Succeeded || der == nil {
				errs <- fmt.Errorf("%s: outcome %+v", name, out)
				return
			}
			if _, err := ini.VO.Authority.VerifyMembership(der); err != nil {
				errs <- fmt.Errorf("%s: token: %w", name, err)
				return
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < members; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := len(ini.VO.Members()); got != members {
		t.Fatalf("admitted %d of %d", got, members)
	}
}

func TestAuditEndpoint(t *testing.T) {
	f := newWSFixture(t)
	f.publishMember(t)
	if _, _, err := f.member.Join(bg, "DesignWebPortal"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(f.srv.URL+"/vo/start-operation", ContentType, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	f.member.Operate(bg, "optimize")   // allowed
	f.member.Operate(bg, "exfiltrate") // violation
	entries, err := f.member.Audit(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("audit = %d entries: %+v", len(entries), entries)
	}
	if !entries[0].Allowed || entries[0].Operation != "optimize" {
		t.Fatalf("entry 0: %+v", entries[0])
	}
	if entries[1].Allowed || entries[1].Operation != "exfiltrate" {
		t.Fatalf("entry 1: %+v", entries[1])
	}
	if entries[0].At.IsZero() {
		t.Fatal("timestamps lost")
	}
}

func TestDoneSessionsRetiredAndDontCountAgainstCapacity(t *testing.T) {
	f := newWSFixture(t)
	f.publishMember(t)
	f.tk.TN.MaxSessions = 2
	f.tk.TN.DoneRetention = time.Millisecond

	// complete two negotiations; their sessions finish
	for i := 0; i < 2; i++ {
		if _, _, err := f.member.Join(bg, "DesignWebPortal"); err != nil {
			t.Fatal(err)
		}
		f.tk.Initiator.VO.Remove("AerospaceCo")
	}
	time.Sleep(5 * time.Millisecond)
	// finished sessions neither block new ones nor linger past retention
	tn := &TNClient{BaseURL: f.srv.URL, Party: f.member.Party}
	if _, err := tn.Start(bg, "R"); err != nil {
		t.Fatalf("capacity blocked by finished sessions: %v", err)
	}
	if got := f.tk.TN.Sessions(); got != 1 {
		t.Fatalf("sessions after retirement = %d, want 1", got)
	}
}
