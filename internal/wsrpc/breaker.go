package wsrpc

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned (wrapped in *Error, Temporary=true) when the
// per-endpoint circuit breaker is open and the call was not attempted.
var ErrCircuitOpen = errors.New("wsrpc: circuit breaker open")

// breakerState is the classic three-state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-endpoint circuit breaker: it trips open after
// Threshold consecutive transport failures, rejects calls for Cooldown,
// then half-opens and lets a single probe through; the probe's outcome
// closes or re-opens it.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    breakerState
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether a call may proceed. In the open state it flips to
// half-open once the cooldown has elapsed and admits exactly one probe.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a completed call (any response from the server, even a
// protocol fault, proves the endpoint is alive).
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
}

// failure records a transport-level failure; returns true when this
// failure tripped the breaker open.
func (b *breaker) failure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		// failed probe: straight back to open
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
		return true
	}
	b.failures++
	if b.state == breakerClosed && b.failures >= b.threshold {
		b.state = breakerOpen
		b.openedAt = b.now()
		return true
	}
	return false
}

// snapshot returns the current state name (for tests and debugging).
func (b *breaker) snapshot() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
