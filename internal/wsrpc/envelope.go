// Package wsrpc is the service layer of the paper's architecture
// (Fig. 5): the TN web service with its three operations —
// StartNegotiation, PolicyExchange and CredentialExchange (§6.2) — and
// the VO Management toolkit services (Host/Initiator/Member editions,
// §6.1), all speaking XML envelopes over HTTP.
//
// The paper's prototype used Tomcat + Axis SOAP; this reproduction keeps
// the same operation set, message schema and round-trip structure on
// net/http (see DESIGN.md §3 for the substitution rationale).
package wsrpc

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"trustvo/internal/negotiation"
	"trustvo/internal/xmldom"
)

// ContentType is the media type of all wsrpc payloads.
const ContentType = "application/xml"

// maxBody bounds request bodies (1 MiB is generous for TN messages).
const maxBody = 1 << 20

// defaultHTTP is the client used when callers do not supply one: a
// bounded timeout beats http.DefaultClient's unbounded waits.
var defaultHTTP = &http.Client{Timeout: 30 * time.Second}

// Fault is the error payload: <fault code="...">detail</fault>.
type Fault struct {
	Code   string
	Detail string
}

// Error implements error.
func (f *Fault) Error() string { return "wsrpc: fault " + f.Code + ": " + f.Detail }

// DOM serializes the fault.
func (f *Fault) DOM() *xmldom.Node {
	n := xmldom.NewElement("fault").SetAttr("code", f.Code)
	n.AppendChild(xmldom.NewText(f.Detail))
	return n
}

func faultFromDOM(n *xmldom.Node) *Fault {
	return &Fault{Code: n.AttrOr("code", "unknown"), Detail: n.Text()}
}

// writeFault emits a fault response with the HTTP status.
func writeFault(w http.ResponseWriter, status int, code, detail string) {
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(status)
	io.WriteString(w, (&Fault{Code: code, Detail: detail}).DOM().XML())
}

// writeDOM emits a 200 XML response.
func writeDOM(w http.ResponseWriter, n *xmldom.Node) {
	w.Header().Set("Content-Type", ContentType)
	io.WriteString(w, n.XML())
}

// readBodyDOM parses the request body as an XML document.
func readBodyDOM(r *http.Request) (*xmldom.Node, error) {
	defer r.Body.Close()
	return xmldom.Parse(io.LimitReader(r.Body, maxBody))
}

// envelope wraps a TN message with its negotiation id:
//
//	<envelope negotiation="id"><tnMessage .../></envelope>
func envelope(negID string, m *negotiation.Message) *xmldom.Node {
	return envelopeSeq(negID, 0, m)
}

// envelopeSeq additionally stamps a client sequence number, giving
// exchange requests at-most-once semantics: the service caches the reply
// per sequence number, so a retried or duplicated envelope replays the
// cached reply instead of being applied twice.
//
//	<envelope negotiation="id" seq="7"><tnMessage .../></envelope>
func envelopeSeq(negID string, seq int64, m *negotiation.Message) *xmldom.Node {
	env := xmldom.NewElement("envelope").SetAttr("negotiation", negID)
	if seq > 0 {
		env.SetAttr("seq", strconv.FormatInt(seq, 10))
	}
	env.AppendChild(m.DOM())
	return env
}

// openEnvelope decodes an envelope into (id, message).
func openEnvelope(root *xmldom.Node) (string, *negotiation.Message, error) {
	id, _, m, err := openEnvelopeSeq(root)
	return id, m, err
}

// openEnvelopeSeq decodes an envelope into (id, seq, message); seq is 0
// for envelopes from pre-sequence clients (no seq attribute at all).
//
// A present-but-malformed seq is rejected with a typed *Error (code
// "envelope") rather than silently collapsed to 0: seq 0 means "no
// at-most-once protection", so swallowing the parse error would let a
// corrupted retry bypass the reply cache and be applied twice.
func openEnvelopeSeq(root *xmldom.Node) (string, int64, *negotiation.Message, error) {
	if root.Name != "envelope" {
		return "", 0, nil, fmt.Errorf("wsrpc: expected <envelope>, got <%s>", root.Name)
	}
	id := root.AttrOr("negotiation", "")
	if id == "" {
		return "", 0, nil, fmt.Errorf("wsrpc: envelope without negotiation id")
	}
	var seq int64
	if raw := root.AttrOr("seq", ""); raw != "" {
		var err error
		seq, err = strconv.ParseInt(raw, 10, 64)
		if err != nil || seq <= 0 {
			return "", 0, nil, &Error{
				Op:     "envelope",
				Status: http.StatusBadRequest,
				Code:   "envelope",
				Err:    fmt.Errorf("wsrpc: malformed envelope seq %q", raw),
			}
		}
	}
	tm := root.Child("tnMessage")
	if tm == nil {
		return "", 0, nil, fmt.Errorf("wsrpc: envelope without tnMessage")
	}
	m, err := negotiation.MessageFromDOM(tm)
	if err != nil {
		return "", 0, nil, err
	}
	return id, seq, m, nil
}

// decodeResponse interprets an HTTP response body as either a fault or
// the expected root element.
func decodeResponse(resp *http.Response, wantRoot string) (*xmldom.Node, error) {
	defer resp.Body.Close()
	root, err := xmldom.Parse(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return nil, fmt.Errorf("wsrpc: bad response (%s): %w", resp.Status, err)
	}
	if root.Name == "fault" {
		return nil, faultFromDOM(root)
	}
	if root.Name != wantRoot {
		return nil, fmt.Errorf("wsrpc: expected <%s> response, got <%s>", wantRoot, root.Name)
	}
	return root, nil
}
