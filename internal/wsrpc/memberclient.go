package wsrpc

import (
	"encoding/base64"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"trustvo/internal/core"
	"trustvo/internal/negotiation"
	"trustvo/internal/vo/registry"
)

// timeNow is the package clock (overridable in tests).
var timeNow = time.Now

func b64(b []byte) string { return base64.StdEncoding.EncodeToString(b) }

// MemberClient is the member-edition client of the toolkit service: it
// publishes the member's description, polls its mailbox, and joins VOs —
// directly (baseline) or through the integrated trust negotiation.
type MemberClient struct {
	BaseURL string
	Party   *negotiation.Party
	HTTP    *http.Client
}

func (c *MemberClient) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTP
}

func (c *MemberClient) url(path string, q url.Values) string {
	u := strings.TrimRight(c.BaseURL, "/") + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	return u
}

func (c *MemberClient) post(path string, q url.Values, body string) (*http.Response, error) {
	resp, err := c.client().Post(c.url(path, q), ContentType, strings.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("wsrpc: POST %s: %w", path, err)
	}
	return resp, nil
}

// Publish registers the member's service description with the host
// edition (the preparation phase over the wire).
func (c *MemberClient) Publish(d *registry.Description) error {
	resp, err := c.post("/registry/publish", nil, d.DOM().XML())
	if err != nil {
		return err
	}
	_, err = decodeResponse(resp, "published")
	return err
}

// Apply requests an invitation for a role. It returns the invitation
// and the membership resource to negotiate for.
func (c *MemberClient) Apply(role string) (*core.Invitation, string, error) {
	q := url.Values{"provider": {c.Party.Name}, "role": {role}}
	resp, err := c.post("/vo/apply", q, "")
	if err != nil {
		return nil, "", err
	}
	root, err := decodeResponse(resp, "invitation")
	if err != nil {
		return nil, "", err
	}
	inv := &core.Invitation{
		VO:   root.AttrOr("vo", ""),
		Role: root.AttrOr("role", ""),
		From: root.AttrOr("from", ""),
		Goal: root.AttrOr("goal", ""),
		Text: root.Text(),
	}
	return inv, root.AttrOr("resource", ""), nil
}

// Mailbox fetches the member's pending invitations.
func (c *MemberClient) Mailbox() ([]*core.Invitation, error) {
	q := url.Values{"provider": {c.Party.Name}}
	resp, err := c.client().Get(c.url("/vo/mailbox", q))
	if err != nil {
		return nil, err
	}
	root, err := decodeResponse(resp, "mailbox")
	if err != nil {
		return nil, err
	}
	var out []*core.Invitation
	for _, n := range root.Childs("invitation") {
		out = append(out, &core.Invitation{
			VO:   n.AttrOr("vo", ""),
			Role: n.AttrOr("role", ""),
			From: n.AttrOr("from", ""),
			Goal: n.AttrOr("goal", ""),
			Text: n.Text(),
		})
	}
	return out, nil
}

// JoinDirect performs the baseline join (no TN) and returns the X.509
// membership token DER.
func (c *MemberClient) JoinDirect(role string) ([]byte, error) {
	q := url.Values{"provider": {c.Party.Name}, "role": {role}}
	resp, err := c.post("/vo/join-direct", q, "")
	if err != nil {
		return nil, err
	}
	root, err := decodeResponse(resp, "joined")
	if err != nil {
		return nil, err
	}
	tok := root.Child("token")
	if tok == nil {
		return nil, fmt.Errorf("wsrpc: join response without token")
	}
	der, err := base64.StdEncoding.DecodeString(strings.TrimSpace(tok.Text()))
	if err != nil {
		return nil, fmt.Errorf("wsrpc: bad token encoding: %w", err)
	}
	return der, nil
}

// Join performs the integrated join: apply for the role, then negotiate
// trust for the returned membership resource. On success the grant is
// the X.509 membership token DER (the Fig. 9 "Join with trust
// negotiation" path).
func (c *MemberClient) Join(role string) ([]byte, *negotiation.Outcome, error) {
	_, resource, err := c.Apply(role)
	if err != nil {
		return nil, nil, err
	}
	if resource == "" {
		return nil, nil, fmt.Errorf("wsrpc: apply response without membership resource")
	}
	tn := &TNClient{BaseURL: c.BaseURL, Party: c.Party, HTTP: c.HTTP}
	out, err := tn.Negotiate(resource)
	if err != nil {
		return nil, nil, err
	}
	if !out.Succeeded {
		return nil, out, fmt.Errorf("wsrpc: admission negotiation failed: %s", out.Reason)
	}
	return out.Grant, out, nil
}

// VOStatus fetches the VO's phase and member count.
func (c *MemberClient) VOStatus() (phase string, members int, err error) {
	resp, err := c.client().Get(c.url("/vo/status", nil))
	if err != nil {
		return "", 0, err
	}
	root, err := decodeResponse(resp, "voStatus")
	if err != nil {
		return "", 0, err
	}
	n := 0
	fmt.Sscanf(root.AttrOr("members", "0"), "%d", &n)
	return root.AttrOr("phase", ""), n, nil
}

// Members lists the admitted members.
func (c *MemberClient) Members() (map[string]string, error) {
	resp, err := c.client().Get(c.url("/vo/members", nil))
	if err != nil {
		return nil, err
	}
	root, err := decodeResponse(resp, "members")
	if err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for _, m := range root.Childs("member") {
		out[m.AttrOr("name", "")] = m.AttrOr("role", "")
	}
	return out, nil
}

// Operate asks the toolkit to authorize an operation invocation.
func (c *MemberClient) Operate(operation string) error {
	q := url.Values{"member": {c.Party.Name}, "operation": {operation}}
	resp, err := c.post("/vo/operate", q, "")
	if err != nil {
		return err
	}
	_, err = decodeResponse(resp, "authorized")
	return err
}

// ReportViolation reports another member's violation.
func (c *MemberClient) ReportViolation(member, operation, detail string, weight float64) error {
	q := url.Values{
		"member": {member}, "operation": {operation},
		"detail": {detail}, "weight": {fmt.Sprintf("%g", weight)},
	}
	resp, err := c.post("/vo/violation", q, "")
	if err != nil {
		return err
	}
	_, err = decodeResponse(resp, "recorded")
	return err
}

// AuditEntry mirrors vo.AuditEntry for the client side.
type AuditEntry struct {
	Member    string
	Operation string
	Allowed   bool
	Detail    string
	At        time.Time
}

// Audit fetches the VO's interaction log (monitoring, §2).
func (c *MemberClient) Audit() ([]AuditEntry, error) {
	resp, err := c.client().Get(c.url("/vo/audit", nil))
	if err != nil {
		return nil, err
	}
	root, err := decodeResponse(resp, "audit")
	if err != nil {
		return nil, err
	}
	var out []AuditEntry
	for _, e := range root.Childs("entry") {
		at, _ := time.Parse(time.RFC3339, e.AttrOr("at", ""))
		out = append(out, AuditEntry{
			Member:    e.AttrOr("member", ""),
			Operation: e.AttrOr("operation", ""),
			Allowed:   e.AttrOr("allowed", "") == "true",
			Detail:    e.AttrOr("detail", ""),
			At:        at,
		})
	}
	return out, nil
}

// Reputation fetches a member's reputation score.
func (c *MemberClient) Reputation(member string) (float64, error) {
	q := url.Values{"member": {member}}
	resp, err := c.client().Get(c.url("/vo/reputation", q))
	if err != nil {
		return 0, err
	}
	root, err := decodeResponse(resp, "reputation")
	if err != nil {
		return 0, err
	}
	var f float64
	fmt.Sscanf(root.AttrOr("score", ""), "%g", &f)
	return f, nil
}
