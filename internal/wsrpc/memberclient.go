package wsrpc

import (
	"context"
	"encoding/base64"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"trustvo/internal/core"
	"trustvo/internal/negotiation"
	"trustvo/internal/vo/registry"
	"trustvo/internal/xmldom"
)

// timeNow is the package clock (overridable in tests).
var timeNow = time.Now

func b64(b []byte) string { return base64.StdEncoding.EncodeToString(b) }

// MemberClient is the member-edition client of the toolkit service: it
// publishes the member's description, polls its mailbox, and joins VOs —
// directly (baseline) or through the integrated trust negotiation.
//
// Calls go through the hardened Transport (deadlines, retries on
// idempotent routes, circuit breaker); Join inherits the negotiation
// suspend/resume machinery of TNClient.
type MemberClient struct {
	BaseURL string
	Party   *negotiation.Party
	// HTTP overrides the transport's HTTP client (shorthand; ignored when
	// Transport is set).
	HTTP *http.Client
	// Transport is the hardened call path; nil uses an owned default.
	Transport *Transport
	// NegotiationTimeout bounds a whole Join negotiation (0 = none).
	NegotiationTimeout time.Duration
	// ResumeTTL is the validity of Join suspend tickets (default 5m).
	ResumeTTL time.Duration

	ownedMu sync.Mutex
	owned   *Transport
}

func (c *MemberClient) transport() *Transport {
	if c.Transport != nil {
		return c.Transport
	}
	c.ownedMu.Lock()
	defer c.ownedMu.Unlock()
	if c.owned == nil {
		c.owned = &Transport{HTTP: c.HTTP}
	}
	return c.owned
}

// tnClient builds the negotiation client sharing this client's transport
// (so breaker state and metrics are common).
func (c *MemberClient) tnClient() *TNClient {
	return &TNClient{
		BaseURL:            c.BaseURL,
		Party:              c.Party,
		Transport:          c.transport(),
		NegotiationTimeout: c.NegotiationTimeout,
		ResumeTTL:          c.ResumeTTL,
	}
}

// call performs one toolkit request and asserts the response root.
func (c *MemberClient) call(ctx context.Context, method, path string, q url.Values, body, wantRoot string, idempotent bool) (*xmldom.Node, error) {
	query := ""
	if len(q) > 0 {
		query = "?" + q.Encode()
	}
	root, err := c.transport().call(ctx, method, c.BaseURL, path, query, body, idempotent)
	if err != nil {
		return nil, err
	}
	return expectRoot(root, wantRoot)
}

// Publish registers the member's service description with the host
// edition (the preparation phase over the wire). Publishing is an
// upsert, hence retried freely.
func (c *MemberClient) Publish(ctx context.Context, d *registry.Description) error {
	_, err := c.call(ctx, http.MethodPost, "/registry/publish", nil, d.DOM().XML(), "published", true)
	return err
}

// Apply requests an invitation for a role. It returns the invitation
// and the membership resource to negotiate for. Re-applying reissues
// the same invitation, so retries are safe.
func (c *MemberClient) Apply(ctx context.Context, role string) (*core.Invitation, string, error) {
	q := url.Values{"provider": {c.Party.Name}, "role": {role}}
	root, err := c.call(ctx, http.MethodPost, "/vo/apply", q, "", "invitation", true)
	if err != nil {
		return nil, "", err
	}
	inv := &core.Invitation{
		VO:   root.AttrOr("vo", ""),
		Role: root.AttrOr("role", ""),
		From: root.AttrOr("from", ""),
		Goal: root.AttrOr("goal", ""),
		Text: root.Text(),
	}
	return inv, root.AttrOr("resource", ""), nil
}

// Mailbox fetches the member's pending invitations.
func (c *MemberClient) Mailbox(ctx context.Context) ([]*core.Invitation, error) {
	q := url.Values{"provider": {c.Party.Name}}
	root, err := c.call(ctx, http.MethodGet, "/vo/mailbox", q, "", "mailbox", true)
	if err != nil {
		return nil, err
	}
	var out []*core.Invitation
	for _, n := range root.Childs("invitation") {
		out = append(out, &core.Invitation{
			VO:   n.AttrOr("vo", ""),
			Role: n.AttrOr("role", ""),
			From: n.AttrOr("from", ""),
			Goal: n.AttrOr("goal", ""),
			Text: n.Text(),
		})
	}
	return out, nil
}

// JoinDirect performs the baseline join (no TN) and returns the X.509
// membership token DER. Admission mutates VO state, so it is never
// retried automatically.
func (c *MemberClient) JoinDirect(ctx context.Context, role string) ([]byte, error) {
	q := url.Values{"provider": {c.Party.Name}, "role": {role}}
	root, err := c.call(ctx, http.MethodPost, "/vo/join-direct", q, "", "joined", false)
	if err != nil {
		return nil, err
	}
	tok := root.Child("token")
	if tok == nil {
		return nil, fmt.Errorf("wsrpc: join response without token")
	}
	der, err := base64.StdEncoding.DecodeString(strings.TrimSpace(tok.Text()))
	if err != nil {
		return nil, fmt.Errorf("wsrpc: bad token encoding: %w", err)
	}
	return der, nil
}

// Join performs the integrated join: apply for the role, then negotiate
// trust for the returned membership resource. On success the grant is
// the X.509 membership token DER (the Fig. 9 "Join with trust
// negotiation" path).
//
// A *SuspendedError (transport failure / deadline mid-negotiation)
// carries a ticket that ResumeJoin completes later.
func (c *MemberClient) Join(ctx context.Context, role string) ([]byte, *negotiation.Outcome, error) {
	_, resource, err := c.Apply(ctx, role)
	if err != nil {
		return nil, nil, err
	}
	if resource == "" {
		return nil, nil, fmt.Errorf("wsrpc: apply response without membership resource")
	}
	out, err := c.tnClient().Negotiate(ctx, resource)
	return grantOf(out, err)
}

// ResumeJoin continues a Join that was suspended mid-negotiation.
func (c *MemberClient) ResumeJoin(ctx context.Context, t *negotiation.ResumeTicket) ([]byte, *negotiation.Outcome, error) {
	out, err := c.tnClient().Resume(ctx, t)
	return grantOf(out, err)
}

func grantOf(out *negotiation.Outcome, err error) ([]byte, *negotiation.Outcome, error) {
	if err != nil {
		return nil, nil, err
	}
	if !out.Succeeded {
		return nil, out, fmt.Errorf("wsrpc: admission negotiation failed: %s", out.Reason)
	}
	return out.Grant, out, nil
}

// VOStatus fetches the VO's phase and member count.
func (c *MemberClient) VOStatus(ctx context.Context) (phase string, members int, err error) {
	root, err := c.call(ctx, http.MethodGet, "/vo/status", nil, "", "voStatus", true)
	if err != nil {
		return "", 0, err
	}
	n := 0
	fmt.Sscanf(root.AttrOr("members", "0"), "%d", &n)
	return root.AttrOr("phase", ""), n, nil
}

// Members lists the admitted members.
func (c *MemberClient) Members(ctx context.Context) (map[string]string, error) {
	root, err := c.call(ctx, http.MethodGet, "/vo/members", nil, "", "members", true)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for _, m := range root.Childs("member") {
		out[m.AttrOr("name", "")] = m.AttrOr("role", "")
	}
	return out, nil
}

// Operate asks the toolkit to authorize an operation invocation. Each
// call lands in the audit log, so it is not retried automatically.
func (c *MemberClient) Operate(ctx context.Context, operation string) error {
	q := url.Values{"member": {c.Party.Name}, "operation": {operation}}
	_, err := c.call(ctx, http.MethodPost, "/vo/operate", q, "", "authorized", false)
	return err
}

// ReportViolation reports another member's violation (never retried:
// a duplicate report would double the reputation penalty).
func (c *MemberClient) ReportViolation(ctx context.Context, member, operation, detail string, weight float64) error {
	q := url.Values{
		"member": {member}, "operation": {operation},
		"detail": {detail}, "weight": {fmt.Sprintf("%g", weight)},
	}
	_, err := c.call(ctx, http.MethodPost, "/vo/violation", q, "", "recorded", false)
	return err
}

// Phase asks the toolkit to advance the VO lifecycle; target is
// "formation", "operation" or "dissolution". Lifecycle transitions are
// one-shot, so the call is not retried automatically.
func (c *MemberClient) Phase(ctx context.Context, target string) error {
	path := map[string]string{
		"formation":   "/vo/start-formation",
		"operation":   "/vo/start-operation",
		"dissolution": "/vo/dissolve",
	}[target]
	if path == "" {
		return fmt.Errorf("wsrpc: unknown phase %q", target)
	}
	_, err := c.call(ctx, http.MethodPost, path, nil, "", "ok", false)
	return err
}

// AuditEntry mirrors vo.AuditEntry for the client side.
type AuditEntry struct {
	Member    string
	Operation string
	Allowed   bool
	Detail    string
	At        time.Time
}

// Audit fetches the VO's interaction log (monitoring, §2).
func (c *MemberClient) Audit(ctx context.Context) ([]AuditEntry, error) {
	root, err := c.call(ctx, http.MethodGet, "/vo/audit", nil, "", "audit", true)
	if err != nil {
		return nil, err
	}
	var out []AuditEntry
	for _, e := range root.Childs("entry") {
		at, _ := time.Parse(time.RFC3339, e.AttrOr("at", ""))
		out = append(out, AuditEntry{
			Member:    e.AttrOr("member", ""),
			Operation: e.AttrOr("operation", ""),
			Allowed:   e.AttrOr("allowed", "") == "true",
			Detail:    e.AttrOr("detail", ""),
			At:        at,
		})
	}
	return out, nil
}

// Reputation fetches a member's reputation score.
func (c *MemberClient) Reputation(ctx context.Context, member string) (float64, error) {
	q := url.Values{"member": {member}}
	root, err := c.call(ctx, http.MethodGet, "/vo/reputation", q, "", "reputation", true)
	if err != nil {
		return 0, err
	}
	var f float64
	fmt.Sscanf(root.AttrOr("score", ""), "%g", &f)
	return f, nil
}
