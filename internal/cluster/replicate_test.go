package cluster

import (
	"encoding/base64"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"trustvo/internal/store"
	"trustvo/internal/store/cacher"
	"trustvo/internal/xmldom"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func chaosDoc(i int) string { return fmt.Sprintf("<doc n=\"%d\"/>", i) }

// TestSyncReplicationGatesAcks: with SyncRepl, a Put acknowledged by the
// leader is already on the follower, so killing the leader right after
// the ack loses nothing.
func TestSyncReplicationGatesAcks(t *testing.T) {
	c := newTestCluster(t, true, 0)
	defer c.shutdown()
	c.addNode("n1")
	c.addNode("n2")
	c.setLeader("n1")

	leaderDB := c.get("n1").db
	for i := 0; i < 20; i++ {
		if err := leaderDB.PutXML("chaos", fmt.Sprintf("k%02d", i), chaosDoc(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Sync mode: the ack already implies follower possession — no wait.
	follower := c.get("n2").db
	for i := 0; i < 20; i++ {
		rec, err := follower.Get("chaos", fmt.Sprintf("k%02d", i))
		if err != nil {
			t.Fatalf("acked k%02d missing on follower: %v", i, err)
		}
		if rec.XML != chaosDoc(i) {
			t.Fatalf("k%02d content %q", i, rec.XML)
		}
	}
	// The follower survives a leader kill with everything acked.
	c.kill("n1")
	c.failover()
	if got := len(c.get("n2").db.Keys("chaos")); got != 20 {
		t.Fatalf("promoted follower has %d/20 records", got)
	}
}

// TestSnapshotCatchupMidStream: a follower joining after the leader's
// in-memory log was trimmed catches up from a full store snapshot, and
// the reconcile deletes stray local records absent from the leader.
func TestSnapshotCatchupMidStream(t *testing.T) {
	c := newTestCluster(t, false, 8) // tiny log: 30 writes overflow it
	defer c.shutdown()
	c.addNode("n1")
	c.setLeader("n1")
	leaderDB := c.get("n1").db
	for i := 0; i < 30; i++ {
		if err := leaderDB.PutXML("chaos", fmt.Sprintf("k%02d", i), chaosDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	catchupsBefore := c.reg.Counter("cluster_repl_catchups_total").Value()

	n2 := c.addNode("n2")
	// A stray record the leader never had must not survive the reconcile.
	if err := n2.db.PutXML("chaos", "stray", "<doc stray=\"yes\"/>"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "follower catch-up", func() bool {
		return n2.node.Applied() >= c.get("n1").node.Head()
	})
	// Poll rather than assert once: the follower's applied position (what
	// the wait above sees) advances inside the leader's catch-up call,
	// a moment before the leader increments the counter on return.
	waitUntil(t, 5*time.Second, "snapshot catch-up counter", func() bool {
		return c.reg.Counter("cluster_repl_catchups_total").Value() > catchupsBefore
	})
	if _, err := n2.db.Get("chaos", "stray"); err == nil {
		t.Fatal("stray record survived snapshot reconcile")
	}
	for i := 0; i < 30; i++ {
		rec, err := n2.db.Get("chaos", fmt.Sprintf("k%02d", i))
		if err != nil || rec.XML != chaosDoc(i) {
			t.Fatalf("k%02d after catch-up: %v", i, err)
		}
	}
}

// postReplicate drives /cluster/replicate directly with a raw payload,
// returning the follower's reported applied position.
func postReplicate(t *testing.T, base string, epoch, from uint64, payload []byte) uint64 {
	t.Helper()
	req := fmt.Sprintf(`<replicate epoch="%d" from="%d">%s</replicate>`,
		epoch, from, base64.StdEncoding.EncodeToString(payload))
	resp, err := http.Post(base+"/cluster/replicate", "application/xml", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	root, err := xmldom.Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replicate: status %d, %s", resp.StatusCode, root.XML())
	}
	if root.Name != "replicated" {
		t.Fatalf("replicate: unexpected <%s>", root.Name)
	}
	return parseU64(root.AttrOr("applied", "0"))
}

func makeEntries(lo, hi int) []store.Entry {
	out := make([]store.Entry, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, store.Entry{Op: store.OpPut, Kind: "chaos", Key: fmt.Sprintf("k%02d", i), Doc: chaosDoc(i)})
	}
	return out
}

// TestTornTailOverWire: a frame stream truncated mid-frame applies its
// good prefix — the store's torn-tail WAL recovery rule, applied to the
// wire — and the follower's reported position makes the sender resend
// exactly the rest.
func TestTornTailOverWire(t *testing.T) {
	c := newTestCluster(t, false, 0)
	defer c.shutdown()
	follower := c.addNode("n1") // never promoted: pure follower

	full, err := store.EncodeEntries(makeEntries(0, 6))
	if err != nil {
		t.Fatal(err)
	}
	three, err := store.EncodeEntries(makeEntries(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Truncate inside the fourth frame (frames 4..6 are equal-sized).
	frameLen := (len(full) - len(three)) / 3
	torn := full[:len(three)+frameLen/2]
	if applied := postReplicate(t, follower.srv.URL, 1, 0, torn); applied != 3 {
		t.Fatalf("torn stream applied %d, want the 3-frame good prefix", applied)
	}
	// Sender rewinds to the reported position and resends the remainder.
	rest, err := store.EncodeEntries(makeEntries(3, 6))
	if err != nil {
		t.Fatal(err)
	}
	if applied := postReplicate(t, follower.srv.URL, 1, 3, rest); applied != 6 {
		t.Fatalf("resend applied %d, want 6", applied)
	}
	for i := 0; i < 6; i++ {
		rec, err := follower.db.Get("chaos", fmt.Sprintf("k%02d", i))
		if err != nil || rec.XML != chaosDoc(i) {
			t.Fatalf("k%02d after torn-tail recovery: %v", i, err)
		}
	}
}

// TestDuplicateFramesIdempotent: redelivered and overlapping windows are
// skipped by position, so retries of replication RPCs are harmless.
func TestDuplicateFramesIdempotent(t *testing.T) {
	c := newTestCluster(t, false, 0)
	defer c.shutdown()
	follower := c.addNode("n1")

	batch, err := store.EncodeEntries(makeEntries(0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if applied := postReplicate(t, follower.srv.URL, 1, 0, batch); applied != 5 {
		t.Fatalf("first delivery applied %d", applied)
	}
	// Exact duplicate: no change.
	if applied := postReplicate(t, follower.srv.URL, 1, 0, batch); applied != 5 {
		t.Fatalf("duplicate delivery applied %d, want 5", applied)
	}
	// Overlapping window [2,7): only the new tail applies.
	overlap, err := store.EncodeEntries(makeEntries(2, 7))
	if err != nil {
		t.Fatal(err)
	}
	if applied := postReplicate(t, follower.srv.URL, 1, 2, overlap); applied != 7 {
		t.Fatalf("overlapping delivery applied %d, want 7", applied)
	}
	// A gap (from beyond applied) applies nothing and reports position.
	gap, err := store.EncodeEntries(makeEntries(9, 10))
	if err != nil {
		t.Fatal(err)
	}
	if applied := postReplicate(t, follower.srv.URL, 1, 9, gap); applied != 7 {
		t.Fatalf("gap delivery applied %d, want 7", applied)
	}
	if got := len(follower.db.Keys("chaos")); got != 7 {
		t.Fatalf("follower has %d records, want 7", got)
	}
	// Stale epoch after adopting a newer one is fenced off.
	if applied := postReplicate(t, follower.srv.URL, 3, 7, nil); applied != 7 {
		t.Fatalf("epoch bump delivery applied %d", applied)
	}
	resp, err := http.Post(follower.srv.URL+"/cluster/replicate", "application/xml",
		strings.NewReader(`<replicate epoch="2" from="7"></replicate>`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale epoch accepted: status %d", resp.StatusCode)
	}
}

// TestFollowerApplyInvalidatesCache: replicated applies on a follower go
// through the store's normal write path, so a cacher.Cache layered over
// the follower's DB must see its entries invalidated by remote commits —
// a follower serving cached reads never serves a record from before an
// applied batch.
func TestFollowerApplyInvalidatesCache(t *testing.T) {
	c := newTestCluster(t, true, 0) // sync: leader acks imply follower apply
	defer c.shutdown()
	c.addNode("n1")
	c.addNode("n2")
	c.setLeader("n1")

	followerCache := cacher.New(c.get("n2").db, time.Hour) // TTL out of the picture
	leaderDB := c.get("n1").db

	if err := leaderDB.PutXML("chaos", "hot", chaosDoc(1)); err != nil {
		t.Fatal(err)
	}
	rec, err := followerCache.Get("chaos", "hot")
	if err != nil {
		t.Fatalf("follower cached read: %v", err)
	}
	if rec.XML != chaosDoc(1) {
		t.Fatalf("follower cache = %q", rec.XML)
	}
	// Warm hit before the next replicated write.
	if _, err := followerCache.Get("chaos", "hot"); err != nil {
		t.Fatal(err)
	}
	st := followerCache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("warm-up stats = %+v", st)
	}

	// Leader overwrite: the sync ack means the follower applied it, and the
	// apply must have dropped the follower's cached entry.
	if err := leaderDB.PutXML("chaos", "hot", chaosDoc(2)); err != nil {
		t.Fatal(err)
	}
	if got := followerCache.Stats().Invalidations; got == 0 {
		t.Fatal("replicated apply did not invalidate the follower cache")
	}
	rec, err = followerCache.Get("chaos", "hot")
	if err != nil {
		t.Fatal(err)
	}
	if rec.XML != chaosDoc(2) {
		t.Fatalf("follower cache served stale record after replicated apply: %q", rec.XML)
	}
}
