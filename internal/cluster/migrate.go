package cluster

import (
	"context"
	"crypto/ed25519"
	"encoding/base64"
	"errors"
	"fmt"
	"net/http"
	"time"

	"trustvo/internal/xmldom"
)

// Live session migration: a draining (or rebalancing) node removes its
// sessions from the service table, wraps each suspended-state document
// in a signed, expiring session ticket, and posts it to the session's
// current ring owner, which adopts it. The signature — the shared
// cluster key standing in for a cluster-internal CA — keeps a forged or
// replayed-from-backup snapshot from hijacking a negotiation, and the
// expiry bounds how stale an adopted state can be.

// sessionTicketBytes is the byte string the migration signature covers.
func sessionTicketBytes(id, notAfter, docXML string) []byte {
	return []byte("trustvo-session|" + id + "|" + notAfter + "|" + docXML)
}

// standbyTicketBytes is the byte string a standby-ship signature
// covers; the distinct prefix domain-separates it from migration
// tickets so one can never be replayed as the other.
func standbyTicketBytes(id, notAfter, docXML string) []byte {
	return []byte("trustvo-standby|" + id + "|" + notAfter + "|" + docXML)
}

// Standby rejection taxonomy, mirroring the migration-ticket rules:
// expiry is a typed, counted 410; a bad signature is a 403.
var (
	errStandbyExpired   = errors.New("standby snapshot expired")
	errStandbySignature = errors.New("standby snapshot signature verification failed")
)

// signedStandbyShip wraps one session snapshot in a signed, expiring
// standbyShip document. The expiry matches the standby table TTL: a
// snapshot too old for the table is also too old to adopt.
func (n *Node) signedStandbyShip(id string, doc *xmldom.Node) (*xmldom.Node, error) {
	if n.keys == nil {
		return nil, fmt.Errorf("cluster: node %s has no standby signing key", n.cfg.Name)
	}
	notAfter := time.Now().Add(n.standbyTTL()).UTC().Format(time.RFC3339)
	sig := n.keys.Sign(standbyTicketBytes(id, notAfter, doc.XML()))
	ship := xmldom.NewElement("standbyShip").
		SetAttr("id", id).
		SetAttr("node", n.cfg.Name).
		SetAttr("notAfter", notAfter)
	ship.AppendChild(doc)
	sigEl := xmldom.NewElement("signature")
	sigEl.AppendChild(xmldom.NewText(base64.StdEncoding.EncodeToString(sig)))
	ship.AppendChild(sigEl)
	return ship, nil
}

// verifyStandbyShip validates a standbyShip — expiry before signature,
// the same order handleAdopt enforces for migration tickets — and
// returns the embedded session document. Every path that turns a
// standby snapshot into a live session goes through here: the POST
// ingress, local takeStandby, and the remote fetchStandby.
func (n *Node) verifyStandbyShip(ship *xmldom.Node) (*xmldom.Node, error) {
	id := ship.AttrOr("id", "")
	doc := ship.Child("tnSession")
	sigEl := ship.Child("signature")
	if id == "" || doc == nil || sigEl == nil {
		return nil, fmt.Errorf("cluster: standbyShip missing id, session or signature")
	}
	notAfter := ship.AttrOr("notAfter", "")
	exp, err := time.Parse(time.RFC3339, notAfter)
	if err != nil {
		return nil, fmt.Errorf("cluster: standbyShip notAfter: %w", err)
	}
	if time.Now().After(exp) {
		return nil, fmt.Errorf("cluster: %w (notAfter %s)", errStandbyExpired, notAfter)
	}
	if n.keys == nil {
		return nil, fmt.Errorf("cluster: node %s has no standby verification key", n.cfg.Name)
	}
	sig, err := base64.StdEncoding.DecodeString(sigEl.Text())
	if err != nil {
		return nil, fmt.Errorf("cluster: standbyShip signature not base64: %w", err)
	}
	if !ed25519.Verify(n.keys.Public, standbyTicketBytes(id, notAfter, doc.XML()), sig) {
		return nil, fmt.Errorf("cluster: %w", errStandbySignature)
	}
	return doc, nil
}

// sessionTicket wraps one suspended session in a signed migration
// ticket.
func (n *Node) sessionTicket(id string, doc *xmldom.Node) (*xmldom.Node, error) {
	if n.keys == nil {
		return nil, fmt.Errorf("cluster: node %s has no migration signing key", n.cfg.Name)
	}
	notAfter := time.Now().Add(n.ticketTTL()).UTC().Format(time.RFC3339)
	sig := n.keys.Sign(sessionTicketBytes(id, notAfter, doc.XML()))
	t := xmldom.NewElement("sessionTicket").
		SetAttr("id", id).
		SetAttr("node", n.cfg.Name).
		SetAttr("notAfter", notAfter)
	t.AppendChild(doc)
	sigEl := xmldom.NewElement("signature")
	sigEl.AppendChild(xmldom.NewText(base64.StdEncoding.EncodeToString(sig)))
	t.AppendChild(sigEl)
	return t, nil
}

// Drain migrates every live, unfinished session to its current ring
// owner. Remove the node from the ring first, so "current owner" is a
// survivor. Sessions with no snapshottable state (no message handled
// yet) are dropped — their clients restart from /tn/start, losing
// nothing acked. Returns how many sessions moved; the first send error
// is reported after all sessions were attempted.
func (n *Node) Drain(ctx context.Context) (int, error) {
	return n.drain(ctx, nil)
}

// MigrateMisowned migrates only sessions the ring no longer assigns to
// this node — the rebalancing pass every survivor runs after membership
// changes (a kill, a revival), so sessions follow their arcs.
func (n *Node) MigrateMisowned(ctx context.Context) (int, error) {
	return n.drain(ctx, func(id string) bool {
		owner := n.ring.Owner(id)
		return owner != "" && owner != n.cfg.Name
	})
}

func (n *Node) drain(ctx context.Context, filter func(id string) bool) (int, error) {
	moved := 0
	var firstErr error
	for id, doc := range n.tn.DrainSessions(filter) {
		if doc == nil {
			continue // nothing to resume; client restarts from /tn/start
		}
		target := n.ring.Owner(id)
		if target == "" || target == n.cfg.Name {
			// Still ours (drain without ring removal): put it back.
			if _, err := n.tn.AdoptSessionDoc(doc); err != nil && firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := n.sendAdopt(ctx, target, id, doc); err != nil {
			n.logf("cluster: migrating session %s to %s: %v", id, target, err)
			if firstErr == nil {
				firstErr = err
			}
			// Park the snapshot locally as standby state: if the target is
			// the node adopting this id later, its retry path (or a
			// subsequent migration pass) can still find it here. The
			// standby table only holds signed ships now, so sign it.
			if ship, serr := n.signedStandbyShip(id, doc); serr == nil {
				n.putStandby(id, ship.XML())
			} else {
				n.logf("cluster: parking standby for %s: %v", id, serr)
			}
			continue
		}
		moved++
	}
	if m := n.metrics; m != nil && moved > 0 {
		m.Counter("cluster_migrations_total").Add(int64(moved))
	}
	return moved, firstErr
}

// sendAdopt posts one signed session ticket to the target node.
func (n *Node) sendAdopt(ctx context.Context, target, id string, doc *xmldom.Node) error {
	base := n.peerURL(target)
	if base == "" {
		return fmt.Errorf("cluster: no address for migration target %s", target)
	}
	ticket, err := n.sessionTicket(id, doc)
	if err != nil {
		return err
	}
	_, err = n.transport.Call(ctx, http.MethodPost, base, "/cluster/adopt", "", ticket.XML(), true)
	return err
}

// handleAdopt verifies and adopts a migrated session. Expiry is checked
// before the signature: an expired ticket is a distinct, typed, counted
// condition (410, not retryable), mirroring the client-side resume
// ticket rule.
func (n *Node) handleAdopt(w http.ResponseWriter, r *http.Request) {
	root, ok := readClusterBody(w, r, "sessionTicket")
	if !ok {
		return
	}
	id := root.AttrOr("id", "")
	doc := root.Child("tnSession")
	sigEl := root.Child("signature")
	if id == "" || doc == nil || sigEl == nil {
		writeClusterFault(w, http.StatusBadRequest, "schema", "sessionTicket missing id, session or signature")
		return
	}
	notAfter := root.AttrOr("notAfter", "")
	exp, err := time.Parse(time.RFC3339, notAfter)
	if err != nil {
		writeClusterFault(w, http.StatusBadRequest, "schema", "sessionTicket notAfter: "+err.Error())
		return
	}
	if time.Now().After(exp) {
		if m := n.metrics; m != nil {
			m.Counter("tn_ticket_expired_total").Inc()
		}
		writeClusterFault(w, http.StatusGone, "ticket-expired", "session ticket expired "+notAfter)
		return
	}
	if n.keys == nil {
		writeClusterFault(w, http.StatusServiceUnavailable, "no-key", "node has no migration verification key")
		return
	}
	sig, err := base64.StdEncoding.DecodeString(sigEl.Text())
	if err != nil {
		writeClusterFault(w, http.StatusBadRequest, "schema", "sessionTicket signature not base64")
		return
	}
	if !ed25519.Verify(n.keys.Public, sessionTicketBytes(id, notAfter, doc.XML()), sig) {
		writeClusterFault(w, http.StatusForbidden, "ticket-signature", "session ticket signature verification failed")
		return
	}
	if _, err := n.tn.AdoptSessionDoc(doc); err != nil {
		writeWsrpcError(w, err)
		return
	}
	if m := n.metrics; m != nil {
		m.Counter("cluster_adoptions_total", "source", "migration").Inc()
	}
	writeClusterDOM(w, xmldom.NewElement("adopted").SetAttr("id", id))
}
