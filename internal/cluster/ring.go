// Package cluster shards the trust-negotiation service across nodes: a
// consistent-hash ring routes each negotiation session to one owner,
// per-message standby shipping plus signed session tickets migrate
// sessions off dying or draining nodes, and WAL-shipping replication
// keeps follower copies of the document store so a follower can be
// promoted with no acknowledged write lost. Every cross-node call runs
// through the wsrpc hardened transport (deadlines, retries, breaker),
// and the whole package is driven deterministically by the chaos
// harness in chaos_test.go.
package cluster

import (
	"sort"
	"sync"
)

// Ring is a consistent-hash ring mapping keys (session ids, store keys)
// to node names. Each node projects VirtualNodes points onto the ring;
// a key is owned by the first node point at or clockwise of the key's
// hash. Removing a node hands each of its arcs to the next point — the
// successor — which is exactly the failover rule: the node that held a
// dead owner's standby state is the node that now owns its sessions.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	hashes []uint64
	owner  map[uint64]string
	nodes  map[string]bool
}

// DefaultVirtualNodes balances arc variance against lookup table size.
const DefaultVirtualNodes = 64

// NewRing creates an empty ring with vnodes points per node
// (DefaultVirtualNodes when <= 0).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{
		vnodes: vnodes,
		owner:  make(map[uint64]string),
		nodes:  make(map[string]bool),
	}
}

// hash64 is FNV-1a over s with an avalanche finalizer. Bare FNV maps
// strings that differ only in a trailing counter to nearby values, which
// on a ring means sequential keys pile into one arc; the mix spreads
// them uniformly.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func vnodeKey(node string, i int) string {
	// node + '#' + decimal index, avoiding fmt on a hot rebuild path
	buf := make([]byte, 0, len(node)+8)
	buf = append(buf, node...)
	buf = append(buf, '#')
	if i == 0 {
		buf = append(buf, '0')
	}
	var digits [8]byte
	n := 0
	for i > 0 {
		digits[n] = byte('0' + i%10)
		i /= 10
		n++
	}
	for n > 0 {
		n--
		buf = append(buf, digits[n])
	}
	return string(buf)
}

// Add inserts a node (idempotent).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	r.rebuild()
}

// Remove deletes a node (idempotent); its arcs fall to the successors.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	r.rebuild()
}

// rebuild recomputes the point table. Caller holds r.mu. Rebuilding
// from scratch keeps hash collisions deterministic: points are inserted
// in sorted node order, and on a collision the first (lexicographically
// smallest) node wins on every view of the same membership.
func (r *Ring) rebuild() {
	r.owner = make(map[uint64]string, len(r.nodes)*r.vnodes)
	r.hashes = r.hashes[:0]
	names := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for i := 0; i < r.vnodes; i++ {
			h := hash64(vnodeKey(n, i))
			if _, taken := r.owner[h]; taken {
				continue
			}
			r.owner[h] = n
			r.hashes = append(r.hashes, h)
		}
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
}

// Nodes returns the member names, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Has reports membership.
func (r *Ring) Has(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.nodes[node]
}

// Owner returns the node owning key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	owners := r.OwnerN(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Successor returns the next distinct node clockwise of key's owner —
// the standby target for a session ("" with fewer than two nodes).
func (r *Ring) Successor(key string) string {
	owners := r.OwnerN(key, 2)
	if len(owners) < 2 {
		return ""
	}
	return owners[1]
}

// OwnerN returns the first n distinct nodes clockwise from key's hash:
// owner first, then its successors in ring order.
func (r *Ring) OwnerN(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.hashes) && len(out) < n; i++ {
		node := r.owner[r.hashes[(start+i)%len(r.hashes)]]
		if seen[node] {
			continue
		}
		seen[node] = true
		out = append(out, node)
	}
	return out
}
