package cluster

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"trustvo/internal/negotiation"
	"trustvo/internal/wsrpc"
	"trustvo/internal/xmldom"
)

// maxClusterBody bounds cluster RPC bodies. Replication snapshots carry
// a whole store, so the bound is far above the TN envelope limit.
const maxClusterBody = 64 << 20

// Register mounts the node's routed TN operations and its cluster RPCs
// on mux. The TN routes wrap the service's own handlers with ring
// routing (forward or redirect misrouted sessions), failover adoption,
// and the capacity gate.
func (n *Node) Register(mux *http.ServeMux) {
	inner := http.NewServeMux()
	n.tn.Register(inner)
	mux.HandleFunc("/tn/start", func(w http.ResponseWriter, r *http.Request) {
		// Start is always local: the id minter only issues ids this node
		// owns, so the session is born routed.
		n.gateServe(inner, w, r)
	})
	mux.HandleFunc("/tn/policyExchange", n.routeExchange(inner, "/tn/policyExchange"))
	mux.HandleFunc("/tn/credentialExchange", n.routeExchange(inner, "/tn/credentialExchange"))
	mux.HandleFunc("/tn/status", n.routeStatus(inner))
	mux.HandleFunc("/cluster/standby", n.handleStandby)
	mux.HandleFunc("/cluster/adopt", n.handleAdopt)
	mux.HandleFunc("/cluster/replicate", n.handleReplicate)
	mux.HandleFunc("/cluster/catchup", n.handleCatchup)
	mux.HandleFunc("/cluster/status", n.handleClusterStatus)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	if n.metrics != nil {
		mux.Handle("/metrics", n.metrics.Handler())
	}
}

// gateServe runs a local TN handler under the node's capacity model:
// acquire a slot (honest 503 backpressure when the request dies waiting)
// and hold it for at least ServiceFloor.
func (n *Node) gateServe(h http.Handler, w http.ResponseWriter, r *http.Request) {
	if n.gate != nil {
		select {
		case n.gate <- struct{}{}:
			defer func() { <-n.gate }()
		case <-r.Context().Done():
			w.Header().Set("Retry-After", "1")
			writeClusterFault(w, http.StatusServiceUnavailable, "capacity", "node at capacity")
			return
		}
	}
	start := time.Now()
	h.ServeHTTP(w, r)
	if floor := n.cfg.ServiceFloor; floor > 0 {
		if rem := floor - time.Since(start); rem > 0 {
			t := time.NewTimer(rem)
			defer t.Stop()
			select {
			case <-t.C:
			case <-r.Context().Done():
			}
		}
	}
}

// routeExchange routes one TN exchange operation by the envelope's
// session id: the ring owner serves it (adopting standby state or
// materializing a fresh session when failover moved the id here), other
// owners get the request forwarded or the client redirected.
func (n *Node) routeExchange(inner http.Handler, path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		raw, err := io.ReadAll(io.LimitReader(r.Body, maxClusterBody))
		if err != nil {
			writeClusterFault(w, http.StatusBadRequest, "parse", err.Error())
			return
		}
		id, msgType := peekEnvelope(raw)
		if id != "" {
			owner := n.ring.Owner(id)
			if owner != "" && owner != n.cfg.Name {
				n.forwardOrRedirect(w, r, owner, path, r.URL.RawQuery, raw)
				return
			}
			if !n.tn.HasSession(id) {
				if !n.materializeSession(w, r, id, msgType) {
					return
				}
			}
		}
		r2 := r.Clone(r.Context())
		r2.Body = io.NopCloser(bytes.NewReader(raw))
		r2.ContentLength = int64(len(raw))
		n.gateServe(inner, w, r2)
	}
}

// materializeSession makes an owned-but-absent session serveable:
// adopt the standby snapshot when one is held locally or by the ring
// successor (the designated standby holder — a revived owner finds
// sessions that moved nowhere during its outage there); otherwise a
// first message ("request") gets a fresh endpoint — /tn/start assigns an
// id and nothing more, so nothing is lost when the starting node died
// before any exchange. Anything else is answered with a retryable 503:
// by the acked-implies-shipped invariant the standby copy exists
// somewhere and migration or a later ship will surface it. Reports
// whether the request should proceed to the local service.
func (n *Node) materializeSession(w http.ResponseWriter, r *http.Request, id, msgType string) bool {
	doc, ok := n.takeStandby(id)
	if !ok {
		doc, ok = n.fetchStandby(r.Context(), id)
	}
	if ok {
		if _, err := n.tn.AdoptSessionDoc(doc); err != nil {
			writeWsrpcError(w, err)
			return false
		}
		if m := n.metrics; m != nil {
			m.Counter("cluster_adoptions_total", "source", "standby").Inc()
		}
		n.logf("cluster: node %s adopted session %s from standby", n.cfg.Name, id)
		return true
	}
	if msgType == negotiation.MsgRequest.String() {
		if err := n.tn.EnsureSession(id); err != nil {
			writeWsrpcError(w, err)
			return false
		}
		return true
	}
	w.Header().Set("Retry-After", "1")
	writeClusterFault(w, http.StatusServiceUnavailable, "session-unavailable",
		"session "+id+" not yet available on this node")
	return false
}

// routeStatus routes GET /tn/status by its negotiation query parameter.
func (n *Node) routeStatus(inner http.Handler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("negotiation")
		if id != "" {
			owner := n.ring.Owner(id)
			if owner != "" && owner != n.cfg.Name {
				n.forwardOrRedirect(w, r, owner, "/tn/status", r.URL.RawQuery, nil)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}
}

// forwardOrRedirect hands a misrouted request to its owner: server-side
// proxying through the hardened transport by default, or a 307 redirect
// when the node is configured to push the hop back to the client (the
// client re-POSTs the identical body, and the at-most-once envelope
// sequence makes the extra delivery safe either way).
func (n *Node) forwardOrRedirect(w http.ResponseWriter, r *http.Request, owner, path, rawQuery string, body []byte) {
	base := n.peerURL(owner)
	if base == "" {
		w.Header().Set("Retry-After", "1")
		writeClusterFault(w, http.StatusServiceUnavailable, "no-route", "no address for session owner "+owner)
		return
	}
	target := base + path
	if rawQuery != "" {
		target += "?" + rawQuery
	}
	if n.cfg.Redirect {
		if m := n.metrics; m != nil {
			m.Counter("cluster_redirects_total", "route", path).Inc()
		}
		http.Redirect(w, r, target, http.StatusTemporaryRedirect)
		return
	}
	if m := n.metrics; m != nil {
		m.Counter("cluster_forwards_total", "route", path).Inc()
	}
	query := ""
	if rawQuery != "" {
		query = "?" + rawQuery
	}
	root, err := n.transport.Call(r.Context(), r.Method, base, path, query, string(body), true)
	if err != nil {
		writeWsrpcError(w, err)
		return
	}
	writeClusterDOM(w, root)
}

// --- cluster RPC handlers ---

// fetchStandby asks the ring successor — the designated standby holder
// — for its snapshot of session id. The miss path (404) is cheap and
// non-retried.
func (n *Node) fetchStandby(ctx context.Context, id string) (*xmldom.Node, bool) {
	succ := n.ring.Successor(id)
	if succ == "" || succ == n.cfg.Name {
		return nil, false
	}
	base := n.peerURL(succ)
	if base == "" {
		return nil, false
	}
	root, err := n.transport.Call(ctx, http.MethodGet, base, "/cluster/standby", "?negotiation="+id, "", true)
	if err != nil {
		return nil, false
	}
	doc, err := n.verifyStandbyShip(root)
	if err != nil {
		n.countStandbyReject(err)
		n.logf("cluster: refusing fetched standby snapshot %s: %v", id, err)
		return nil, false
	}
	return doc, true
}

// handleStandby accepts a predecessor's per-message session snapshot
// (POST), and surrenders a held snapshot to the session's owner (GET) —
// the recovery path for a revived owner whose sessions saw no traffic
// while it was down.
func (n *Node) handleStandby(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		id := r.URL.Query().Get("negotiation")
		now := time.Now()
		n.mu.Lock() //lint:allow nakedlock response write below must run outside the lock
		d, held := n.standby[id]
		if held {
			delete(n.standby, id)
		}
		n.mu.Unlock()
		// A snapshot past the table TTL is surrendered to no one: the TTL
		// bounds how stale an adopted state can be, the same rule
		// takeStandby applies to the local adoption path.
		if id == "" || !held || now.Sub(d.at) > n.standbyTTL() {
			writeClusterFault(w, http.StatusNotFound, "standby", "no standby snapshot for "+id)
			return
		}
		// The table holds the ship exactly as shipped — signature,
		// expiry and all — so the requester re-verifies what we stored.
		ship, err := xmldom.ParseString(d.xml)
		if err != nil {
			writeClusterFault(w, http.StatusInternalServerError, "standby", err.Error())
			return
		}
		writeClusterDOM(w, ship)
		return
	}
	root, ok := readClusterBody(w, r, "standbyShip")
	if !ok {
		return
	}
	id := root.AttrOr("id", "")
	if _, err := n.verifyStandbyShip(root); err != nil {
		n.countStandbyReject(err)
		status, code := http.StatusBadRequest, "schema"
		switch {
		case errors.Is(err, errStandbyExpired):
			status, code = http.StatusGone, "standby-expired"
		case errors.Is(err, errStandbySignature):
			status, code = http.StatusForbidden, "standby-signature"
		}
		writeClusterFault(w, status, code, err.Error())
		return
	}
	n.putStandby(id, root.XML())
	writeClusterDOM(w, xmldom.NewElement("standbyAck").SetAttr("id", id))
}

// handleReplicate applies one window of the leader's log.
func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	root, ok := readClusterBody(w, r, "replicate")
	if !ok {
		return
	}
	if err := n.checkEpoch(parseU64(root.AttrOr("epoch", "0"))); err != nil {
		writeClusterFault(w, http.StatusConflict, "stale-epoch", err.Error())
		return
	}
	entries, err := decodePayload(root.Text())
	if err != nil {
		writeClusterFault(w, http.StatusBadRequest, "payload", err.Error())
		return
	}
	applied, err := n.applyEntriesAt(parseU64(root.AttrOr("from", "0")), entries)
	if err != nil {
		writeClusterFault(w, http.StatusInternalServerError, "apply", err.Error())
		return
	}
	writeClusterDOM(w, replicatedDOM(applied, n.repl.epoch.Load()))
}

// handleCatchup reconciles the local store to a leader snapshot.
func (n *Node) handleCatchup(w http.ResponseWriter, r *http.Request) {
	root, ok := readClusterBody(w, r, "catchup")
	if !ok {
		return
	}
	if err := n.checkEpoch(parseU64(root.AttrOr("epoch", "0"))); err != nil {
		writeClusterFault(w, http.StatusConflict, "stale-epoch", err.Error())
		return
	}
	entries, err := decodePayload(root.Text())
	if err != nil {
		writeClusterFault(w, http.StatusBadRequest, "payload", err.Error())
		return
	}
	applied, err := n.applySnapshotAt(parseU64(root.AttrOr("pos", "0")), entries)
	if err != nil {
		writeClusterFault(w, http.StatusInternalServerError, "apply", err.Error())
		return
	}
	writeClusterDOM(w, replicatedDOM(applied, n.repl.epoch.Load()))
}

// handleClusterStatus reports the node's replication state.
func (n *Node) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	writeClusterDOM(w, xmldom.NewElement("clusterStatus").
		SetAttr("node", n.cfg.Name).
		SetAttr("epoch", strconv.FormatUint(n.repl.epoch.Load(), 10)).
		SetAttr("leader", boolAttr(n.repl.leader.Load())).
		SetAttr("pos", strconv.FormatUint(n.Head(), 10)).
		SetAttr("applied", strconv.FormatUint(n.repl.appliedPos(), 10)))
}

func replicatedDOM(applied, epoch uint64) *xmldom.Node {
	return xmldom.NewElement("replicated").
		SetAttr("applied", strconv.FormatUint(applied, 10)).
		SetAttr("epoch", strconv.FormatUint(epoch, 10))
}

func boolAttr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// peekEnvelope extracts the session id and message type from a TN
// exchange envelope without consuming it; malformed bodies return empty
// values and fall through to the service's own error handling.
func peekEnvelope(raw []byte) (id, msgType string) {
	root, err := xmldom.Parse(bytes.NewReader(raw))
	if err != nil || root.Name != "envelope" {
		return "", ""
	}
	id = root.AttrOr("negotiation", "")
	if msg := root.Child("tnMessage"); msg != nil {
		msgType = msg.AttrOr("type", "")
	}
	return id, msgType
}

// readClusterBody parses and shape-checks a POSTed cluster RPC body,
// writing the fault itself when the request is unusable.
func readClusterBody(w http.ResponseWriter, r *http.Request, want string) (*xmldom.Node, bool) {
	if r.Method != http.MethodPost {
		writeClusterFault(w, http.StatusMethodNotAllowed, "method", "POST required")
		return nil, false
	}
	root, err := xmldom.Parse(io.LimitReader(r.Body, maxClusterBody))
	if err != nil {
		writeClusterFault(w, http.StatusBadRequest, "parse", err.Error())
		return nil, false
	}
	if root.Name != want {
		writeClusterFault(w, http.StatusBadRequest, "schema", "expected <"+want+">, got <"+root.Name+">")
		return nil, false
	}
	return root, true
}

// writeClusterFault emits a wsrpc <fault> with the given status.
func writeClusterFault(w http.ResponseWriter, status int, code, detail string) {
	w.Header().Set("Content-Type", wsrpc.ContentType)
	w.WriteHeader(status)
	io.WriteString(w, (&wsrpc.Fault{Code: code, Detail: detail}).DOM().XML())
}

// writeClusterDOM emits an XML document with status 200.
func writeClusterDOM(w http.ResponseWriter, doc *xmldom.Node) {
	w.Header().Set("Content-Type", wsrpc.ContentType)
	io.WriteString(w, doc.XML())
}

// writeWsrpcError relays a typed transport or service error to the
// client, preserving status, fault code and retry hints so the caller's
// retry/suspend machinery classifies the failure exactly as a direct hit
// would. Untyped errors become a retryable 502.
func writeWsrpcError(w http.ResponseWriter, err error) {
	var werr *wsrpc.Error
	if errors.As(err, &werr) {
		if werr.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(int(werr.RetryAfter/time.Second)))
		} else if werr.Temporary {
			w.Header().Set("Retry-After", "1")
		}
		status := werr.Status
		if status == 0 {
			status = http.StatusBadGateway
		}
		code := werr.Code
		if code == "" {
			code = "forward"
		}
		writeClusterFault(w, status, code, err.Error())
		return
	}
	w.Header().Set("Retry-After", "1")
	writeClusterFault(w, http.StatusBadGateway, "forward", err.Error())
}
