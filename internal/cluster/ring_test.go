package cluster

import (
	"fmt"
	"testing"
)

func TestRingOwnershipDeterministicAndTotal(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"n1", "n2", "n3"} {
		r.Add(n)
	}
	keys := make([]string, 200)
	owners := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("session-%03d", i)
		owners[i] = r.Owner(keys[i])
		if owners[i] == "" {
			t.Fatalf("key %s unowned", keys[i])
		}
	}
	// A second ring with the same membership agrees on every key.
	r2 := NewRing(0)
	for _, n := range []string{"n3", "n1", "n2"} { // insertion order must not matter
		r2.Add(n)
	}
	for i, k := range keys {
		if got := r2.Owner(k); got != owners[i] {
			t.Fatalf("rings disagree on %s: %s vs %s", k, owners[i], got)
		}
	}
	// Each node owns a nontrivial share (virtual nodes balance arcs).
	byOwner := map[string]int{}
	for _, o := range owners {
		byOwner[o]++
	}
	for _, n := range []string{"n1", "n2", "n3"} {
		if byOwner[n] < 20 {
			t.Fatalf("node %s owns only %d/200 keys: %v", n, byOwner[n], byOwner)
		}
	}
}

func TestRingSuccessorBecomesOwnerOnRemoval(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"n1", "n2", "n3"} {
		r.Add(n)
	}
	type pair struct{ owner, succ string }
	before := map[string]pair{}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%03d", i)
		before[k] = pair{r.Owner(k), r.Successor(k)}
		if before[k].owner == before[k].succ {
			t.Fatalf("successor equals owner for %s", k)
		}
	}
	r.Remove("n2")
	for k, p := range before {
		if p.owner != "n2" {
			// Keys not owned by the removed node keep their owner.
			if got := r.Owner(k); got != p.owner {
				t.Fatalf("unrelated key %s moved: %s -> %s", k, p.owner, got)
			}
			continue
		}
		// The failover rule: the old successor is the new owner, so the
		// node holding the standby copy is the node that takes over.
		if got := r.Owner(k); got != p.succ {
			t.Fatalf("key %s: owner n2 removed, expected successor %s, got %s", k, p.succ, got)
		}
	}
	// Removal is idempotent; re-adding restores the original assignment.
	r.Remove("n2")
	r.Add("n2")
	for k, p := range before {
		if got := r.Owner(k); got != p.owner {
			t.Fatalf("key %s not restored after re-add: %s vs %s", k, got, p.owner)
		}
	}
}

func TestRingOwnerNDistinct(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"a", "b", "c", "d"} {
		r.Add(n)
	}
	owners := r.OwnerN("some-key", 4)
	if len(owners) != 4 {
		t.Fatalf("OwnerN returned %v", owners)
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("duplicate node in OwnerN: %v", owners)
		}
		seen[o] = true
	}
	if more := r.OwnerN("some-key", 10); len(more) != 4 {
		t.Fatalf("OwnerN beyond membership: %v", more)
	}
	if empty := NewRing(0).OwnerN("k", 2); empty != nil {
		t.Fatalf("empty ring OwnerN = %v", empty)
	}
}
