package cluster

import (
	"encoding/base64"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trustvo/internal/negotiation"
	"trustvo/internal/wsrpc"
	"trustvo/internal/xmldom"
)

// TestClusterChaosTorture is the deterministic node-kill torture test:
// three nodes under continuous join and put traffic while the harness
// kills and revives every node in rotation (some on a fresh disk,
// forcing snapshot catch-up), fails the leader over to the most
// advanced survivor, and injects network partitions and a slow-follower
// window. The invariant checked at the end is the headline guarantee of
// the cluster: no acknowledged join and no acknowledged put is ever
// lost.
func TestClusterChaosTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos torture skipped in -short")
	}
	c := newTestCluster(t, true /* sync repl: acks gated on quorum */, 64)
	c.floor = 4 * time.Millisecond // stretch joins so kills land mid-negotiation
	defer c.shutdown()
	names := []string{"n1", "n2", "n3"}
	for _, n := range names {
		c.addNode(n)
	}
	c.setLeader("n1")

	const (
		joinWorkers = 4
		kills       = 12
		// resumeGrace bounds how long a suspended negotiation may keep
		// resuming after the cluster healed; a session that cannot
		// converge within it is lost. Sized for a starved CI host: when
		// the whole suite shares one core the test runs ~7× slower than
		// alone, and breaker-cooldown windows stretch with it. A healthy
		// run converges in milliseconds and never waits this long.
		resumeGrace = 90 * time.Second
	)
	var (
		stop         = make(chan struct{})
		wg           sync.WaitGroup
		joins        atomic.Int64
		startRetries atomic.Int64
		ackedMu      sync.Mutex
		acked        []string
		errCh        = make(chan error, joinWorkers+2)
	)

	// Join workers: negotiate in a loop against whatever node is alive.
	// A suspension (transport failure mid-negotiation) is resumed against
	// a live node — possibly many times as the chaos moves state around —
	// and must eventually converge: once the controller has acked
	// progress, the session is recoverable by design, so running out of
	// resume budget or hitting a non-resumable error mid-session is a
	// lost acked session and fails the test.
	for w := 0; w < joinWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			party := c.memberParty(fmt.Sprintf("ChaosMember%d", w))
			cli := &wsrpc.TNClient{
				Party: party,
				Transport: &wsrpc.Transport{
					RequestTimeout:  2 * time.Second,
					Retry:           clientRetry(),
					BreakerCooldown: 100 * time.Millisecond,
					Metrics:         c.reg,
				},
				NegotiationTimeout: 20 * time.Second,
				ResumeTTL:          time.Minute,
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				cli.BaseURL = c.liveBase()
				out, err := cli.Negotiate(bg, chaosResource)
				resumes := 0
				var graceUntil time.Time
				for err != nil {
					var se *wsrpc.SuspendedError
					if !errors.As(err, &se) {
						break
					}
					resumes++
					// While the chaos is running a session may suspend over
					// and over; once it stops, convergence is bounded.
					select {
					case <-stop:
						if graceUntil.IsZero() {
							graceUntil = time.Now().Add(resumeGrace)
						}
						if time.Now().After(graceUntil) {
							errCh <- fmt.Errorf("worker %d: acked session lost, no convergence after heal: %w", w, err)
							return
						}
					default:
					}
					time.Sleep(10 * time.Millisecond)
					cli.BaseURL = c.liveBase()
					out, err = cli.Resume(bg, se.Ticket)
				}
				if err != nil {
					if resumes > 0 {
						// The session had acked progress (it suspended) and then
						// failed non-resumably: that is a lost session.
						errCh <- fmt.Errorf("worker %d: resumed session failed non-resumably: %w", w, err)
						return
					}
					// Failed before anything was acked (e.g. start hit a node
					// mid-kill): nothing lost, start over.
					startRetries.Add(1)
					time.Sleep(5 * time.Millisecond)
					continue
				}
				if !out.Succeeded {
					errCh <- fmt.Errorf("worker %d: negotiation denied: %s", w, out.Reason)
					return
				}
				joins.Add(1)
			}
		}(w)
	}

	// Put worker: writes through the current leader and records every
	// acknowledged key. With sync replication an ack means a quorum
	// follower already holds the write, so each recorded key must survive
	// any sequence of failovers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			ld := c.leaderNode()
			if ld == nil {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			key := fmt.Sprintf("acked-%06d", i)
			i++
			if err := ld.db.PutXML("chaos", key, chaosDoc(i)); err == nil {
				ackedMu.Lock()
				acked = append(acked, key)
				ackedMu.Unlock()
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// The chaos schedule: kill every node in rotation, fail the leader
	// over when it dies, revive (every third revival on a fresh disk to
	// force a snapshot catch-up), and salt in two partitions and one
	// slow-follower window. One node is down at a time, matching the
	// standby invariant's single-failure design point.
	endpoints := func() []string {
		var eps []string
		for _, tn := range c.liveNodes() {
			eps = append(eps, tn.srv.Listener.Addr().String())
		}
		return eps
	}
	for k := 0; k < kills; k++ {
		victim := names[k%len(names)]
		time.Sleep(150 * time.Millisecond)
		c.mu.Lock()
		wasLeader := c.leader == victim
		c.mu.Unlock()
		c.kill(victim)
		if wasLeader {
			c.failover()
		}
		// Survivors rebalance sessions off the dead node's arcs.
		for _, tn := range c.liveNodes() {
			tn.node.MigrateMisowned(bg)
		}
		time.Sleep(80 * time.Millisecond)
		c.revive(victim, (k+1)%3 == 0)
		switch k {
		case 3, 7:
			// Partition two live nodes from each other for a window.
			if eps := endpoints(); len(eps) >= 2 {
				c.net.SplitFor(eps[:1], eps[1:2], 80*time.Millisecond)
				time.Sleep(120 * time.Millisecond)
			}
		case 5:
			// Slow-follower window: delay one node's inbound traffic.
			if eps := endpoints(); len(eps) >= 2 {
				c.net.SetDelay(eps[1], 10*time.Millisecond)
				time.Sleep(100 * time.Millisecond)
				c.net.SetDelay(eps[1], 0)
			}
		}
	}
	c.net.Heal()
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Zero lost acked puts: promote the most advanced survivor (the real
	// failover rule) and require every acknowledged key on it.
	final := c.get(c.failover())
	ackedMu.Lock()
	defer ackedMu.Unlock()
	for _, key := range acked {
		if _, err := final.db.Get("chaos", key); err != nil {
			t.Errorf("acked put %s lost after failover to %s: %v", key, final.name, err)
		}
	}
	t.Logf("chaos: %d joins, %d fresh-start retries, %d acked puts, %d kills, %d splits",
		joins.Load(), startRetries.Load(), len(acked), kills, c.net.Splits())

	if joins.Load() == 0 {
		t.Error("no join ever completed under chaos")
	}
	if got := c.net.Splits(); got < 2 {
		t.Errorf("chaos ran %d partitions, want >= 2", got)
	}
	if got := c.reg.Counter("cluster_promotions_total").Value(); got < 2 {
		t.Errorf("cluster_promotions_total = %d, want >= 2 (initial + failovers)", got)
	}
	if got := c.reg.Counter("cluster_repl_catchups_total").Value(); got < 1 {
		t.Errorf("cluster_repl_catchups_total = %d, want >= 1 (fresh-disk revivals)", got)
	}
	adoptions := c.reg.Counter("cluster_adoptions_total", "source", "standby").Value() +
		c.reg.Counter("cluster_adoptions_total", "source", "migration").Value()
	if adoptions == 0 {
		t.Error("no session was ever adopted from standby or migration under chaos")
	}
}

// ownedID finds an id string the ring assigns to the wanted node.
func ownedID(t *testing.T, r *Ring, prefix, want string) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		id := fmt.Sprintf("%s-%d", prefix, i)
		if r.Owner(id) == want {
			return id
		}
	}
	t.Fatalf("no id with prefix %s owned by %s", prefix, want)
	return ""
}

// firstEnvelope wraps a genuine first requester message for id in a
// wire envelope, as the client would send it.
func firstEnvelope(t *testing.T, c *testCluster, member, id string) string {
	t.Helper()
	req := negotiation.NewRequester(c.memberParty(member), chaosResource)
	first, err := req.Start()
	if err != nil {
		t.Fatal(err)
	}
	env := xmldom.NewElement("envelope").SetAttr("negotiation", id).SetAttr("seq", "1")
	env.AppendChild(first.DOM())
	return env.XML()
}

// TestForwardMisroutedExchange: an exchange for a session owned
// elsewhere is proxied to its owner through the hardened transport, and
// counted.
func TestForwardMisroutedExchange(t *testing.T) {
	c := newTestCluster(t, false, 0)
	defer c.shutdown()
	c.addNode("n1")
	c.addNode("n2")

	id := ownedID(t, c.ring, "fwd", "n2")
	before := c.reg.Counter("cluster_forwards_total", "route", "/tn/policyExchange").Value()
	resp, err := http.Post(c.get("n1").srv.URL+"/tn/policyExchange", wsrpc.ContentType,
		strings.NewReader(firstEnvelope(t, c, "FwdMember", id)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded exchange status %d", resp.StatusCode)
	}
	if got := c.reg.Counter("cluster_forwards_total", "route", "/tn/policyExchange").Value(); got != before+1 {
		t.Fatalf("cluster_forwards_total = %d, want %d", got, before+1)
	}
	// The owner materialized the session for the first ("request")
	// message before serving it.
	if !c.get("n2").tn.HasSession(id) {
		t.Fatalf("owner n2 did not materialize session %s", id)
	}
}

// TestRedirectMisroutedExchange: in redirect mode the misrouted client
// gets a 307 pointing at the owner and re-POSTs there itself.
func TestRedirectMisroutedExchange(t *testing.T) {
	c := newTestCluster(t, false, 0)
	c.redirect = true
	defer c.shutdown()
	c.addNode("n1")
	c.addNode("n2")

	id := ownedID(t, c.ring, "redir", "n2")
	noFollow := &http.Client{
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}
	body := firstEnvelope(t, c, "RedirMember", id)
	resp, err := noFollow.Post(c.get("n1").srv.URL+"/tn/policyExchange", wsrpc.ContentType,
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("status %d, want 307", resp.StatusCode)
	}
	want := c.get("n2").srv.URL + "/tn/policyExchange"
	if loc := resp.Header.Get("Location"); loc != want {
		t.Fatalf("Location %q, want %q", loc, want)
	}
	if got := c.reg.Counter("cluster_redirects_total", "route", "/tn/policyExchange").Value(); got < 1 {
		t.Fatalf("cluster_redirects_total = %d", got)
	}
	// A client that follows the redirect lands on the owner. net/http
	// re-POSTs the body on 307 via GetBody.
	resp2, err := http.Post(c.get("n1").srv.URL+"/tn/policyExchange", wsrpc.ContentType,
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if !c.get("n2").tn.HasSession(id) {
		t.Fatalf("owner n2 never saw redirected session %s", id)
	}
}

// TestMigrationTicketExpiredRejected: an expired session ticket is
// refused with the typed 410 before any signature work, and counted.
func TestMigrationTicketExpiredRejected(t *testing.T) {
	c := newTestCluster(t, false, 0)
	defer c.shutdown()
	c.addNode("n1")

	doc := xmldom.NewElement("tnSession").SetAttr("id", "stale-1")
	notAfter := time.Now().Add(-time.Minute).UTC().Format(time.RFC3339)
	sig := c.keys.Sign(sessionTicketBytes("stale-1", notAfter, doc.XML()))
	ticket := xmldom.NewElement("sessionTicket").
		SetAttr("id", "stale-1").
		SetAttr("node", "ghost").
		SetAttr("notAfter", notAfter)
	ticket.AppendChild(doc)
	sigEl := xmldom.NewElement("signature")
	sigEl.AppendChild(xmldom.NewText(base64.StdEncoding.EncodeToString(sig)))
	ticket.AppendChild(sigEl)

	before := c.reg.Counter("tn_ticket_expired_total").Value()
	resp, err := http.Post(c.get("n1").srv.URL+"/cluster/adopt", wsrpc.ContentType,
		strings.NewReader(ticket.XML()))
	if err != nil {
		t.Fatal(err)
	}
	root, perr := xmldom.Parse(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("expired ticket: status %d, want 410", resp.StatusCode)
	}
	if perr != nil {
		t.Fatal(perr)
	}
	if code := root.AttrOr("code", ""); code != "ticket-expired" {
		t.Fatalf("fault code %q, want ticket-expired", code)
	}
	if got := c.reg.Counter("tn_ticket_expired_total").Value(); got != before+1 {
		t.Fatalf("tn_ticket_expired_total = %d, want %d", got, before+1)
	}
	if c.get("n1").tn.HasSession("stale-1") {
		t.Fatal("expired ticket was adopted")
	}
}

// TestDrainMigratesSessionsWithTickets: after a ring change, a node's
// mid-flight session follows its arc to the new owner via a signed
// ticket, and the adopted copy keeps the negotiation state.
func TestDrainMigratesSessionsWithTickets(t *testing.T) {
	c := newTestCluster(t, false, 0)
	defer c.shutdown()
	c.addNode("n1")

	// Pick an id that the two-node ring will assign to n2, while the
	// current one-node ring assigns everything to n1.
	tmp := NewRing(0)
	tmp.Add("n1")
	tmp.Add("n2")
	id := ownedID(t, tmp, "drain", "n2")

	// Drive a genuine first negotiation message through n1 so the session
	// is mid-flight with snapshottable state (a fresh empty session has
	// nothing to migrate and is dropped by design).
	req := negotiation.NewRequester(c.memberParty("DrainMember"), chaosResource)
	first, err := req.Start()
	if err != nil {
		t.Fatal(err)
	}
	env := xmldom.NewElement("envelope").SetAttr("negotiation", id).SetAttr("seq", "1")
	env.AppendChild(first.DOM())
	resp, err := http.Post(c.get("n1").srv.URL+"/tn/policyExchange", wsrpc.ContentType,
		strings.NewReader(env.XML()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first exchange status %d", resp.StatusCode)
	}
	if !c.get("n1").tn.HasSession(id) {
		t.Fatal("session not live on n1 after first exchange")
	}

	// Ring change: n2 joins, the session's arc moves, migration follows.
	c.addNode("n2")
	if owner := c.ring.Owner(id); owner != "n2" {
		t.Fatalf("expected two-node ring to assign %s to n2, got %s", id, owner)
	}
	moved, err := c.get("n1").node.MigrateMisowned(bg)
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if moved != 1 {
		t.Fatalf("migrated %d sessions, want 1", moved)
	}
	if c.get("n1").tn.HasSession(id) {
		t.Fatal("source still holds migrated session")
	}
	if !c.get("n2").tn.HasSession(id) {
		t.Fatal("owner did not adopt migrated session")
	}
	if got := c.reg.Counter("cluster_adoptions_total", "source", "migration").Value(); got != 1 {
		t.Fatalf("cluster_adoptions_total{migration} = %d", got)
	}
}
