package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"trustvo/internal/pki"
	"trustvo/internal/store"
	"trustvo/internal/telemetry"
	"trustvo/internal/wsrpc"
	"trustvo/internal/xmldom"
)

// Config wires one cluster node.
type Config struct {
	// Name is the node's ring identity (must be unique in the cluster).
	Name string
	// Ring is the shared membership view. Nodes of one cluster may share
	// a *Ring in-process (tests) or maintain equal copies (deployments);
	// routing only needs every node to agree on the member set.
	Ring *Ring
	// TN is the local trust-negotiation service; NewNode installs its
	// cluster hooks (owned-id minting and per-message standby shipping).
	TN *wsrpc.TNService
	// Transport carries every cluster RPC (forwarding, standby shipping,
	// migration, replication) through the hardened client path: per-call
	// deadlines, retries with backoff, and per-endpoint breakers.
	Transport *wsrpc.Transport
	// Metrics receives the node's cluster telemetry (nil disables).
	Metrics *telemetry.Registry
	// Keys signs session migration tickets. All nodes of a cluster share
	// the key pair, standing in for a deployment's cluster-internal CA.
	Keys *pki.KeyPair
	// Redirect answers misrouted joins with 307 + the owner's URL instead
	// of forwarding server-side. Clients following redirects spare the
	// cluster a proxy hop per message.
	Redirect bool
	// SyncRepl gates every store commit acknowledgment on SyncQuorum
	// follower acknowledgments, so promoting the most advanced survivor
	// loses no acked write.
	SyncRepl bool
	// SyncQuorum is the follower-ack count SyncRepl waits for (default 1).
	SyncQuorum int
	// TicketTTL bounds session migration ticket validity (default 2m).
	TicketTTL time.Duration
	// StandbyTTL bounds how long an unclaimed standby snapshot is kept
	// (default 10m, matching the session idle limit's order of magnitude).
	StandbyTTL time.Duration
	// MaxReplLog caps the in-memory replication log; followers further
	// behind than the cap catch up from a store snapshot (default 4096).
	MaxReplLog int
	// Capacity bounds concurrently serviced TN messages on this node
	// (0 = unlimited). With ServiceFloor it forms the benchmark capacity
	// model; in deployments it is per-node admission control.
	Capacity int
	// ServiceFloor is a minimum per-message service time enforced while
	// holding a capacity slot, making per-node throughput Capacity/Floor
	// even when the handler itself is faster (benchmark scaling model).
	ServiceFloor time.Duration
	// ReplInterval paces the background replication pusher (default 25ms).
	ReplInterval time.Duration
	// Logf reports operational events (default: discard).
	Logf func(format string, args ...any)
}

// Node is one member of a sharded TN cluster: it owns the sessions the
// ring assigns it, keeps standby snapshots for its predecessors'
// sessions, and participates in store replication as leader or follower.
type Node struct {
	cfg       Config
	ring      *Ring
	tn        *wsrpc.TNService
	transport *wsrpc.Transport
	metrics   *telemetry.Registry
	keys      *pki.KeyPair

	mu      sync.Mutex
	db      *store.Store
	peers   map[string]string // node name → base URL
	standby map[string]standbyDoc
	ships   int // standby inserts since the last expiry sweep

	gate chan struct{} // capacity semaphore (nil = unlimited)

	ctxMu  sync.Mutex
	runCtx context.Context

	// applyMu serializes follower-side application of replicated entries
	// and snapshots with the applied-position bookkeeping.
	applyMu sync.Mutex
	repl    replState
}

// standbyDoc is one unclaimed standby session snapshot.
type standbyDoc struct {
	xml string
	at  time.Time
}

// NewNode builds a node and installs the TN cluster hooks. The
// replicated store is attached separately (AttachDB) because its
// OnCommit option must point at the node being constructed:
//
//	n := cluster.NewNode(cfg)
//	db := store.NewWithOptions(store.Options{OnCommit: n.OnCommit})
//	n.AttachDB(db)
func NewNode(cfg Config) (*Node, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("cluster: node needs a name")
	}
	if cfg.Ring == nil {
		return nil, fmt.Errorf("cluster: node %s needs a ring", cfg.Name)
	}
	if cfg.TN == nil {
		return nil, fmt.Errorf("cluster: node %s needs a TN service", cfg.Name)
	}
	if cfg.Transport == nil {
		cfg.Transport = &wsrpc.Transport{}
	}
	n := &Node{
		cfg:       cfg,
		ring:      cfg.Ring,
		tn:        cfg.TN,
		transport: cfg.Transport,
		metrics:   cfg.Metrics,
		keys:      cfg.Keys,
		peers:     make(map[string]string),
		standby:   make(map[string]standbyDoc),
	}
	if cfg.Capacity > 0 {
		n.gate = make(chan struct{}, cfg.Capacity)
	}
	n.repl.followers = make(map[string]uint64)
	n.repl.sendMu = make(map[string]*sync.Mutex)
	n.tn.NewSessionID = n.mintOwnedID
	n.tn.OnSessionUpdate = n.shipStandby
	return n, nil
}

// Name returns the node's ring identity.
func (n *Node) Name() string { return n.cfg.Name }

// Ring returns the shared membership ring (for the host process to
// mutate on membership changes, e.g. removing itself before a drain).
func (n *Node) Ring() *Ring { return n.ring }

// AttachDB attaches the replicated document store. The store should have
// been built with Options.OnCommit = n.OnCommit so leader commits enter
// the replication log.
func (n *Node) AttachDB(db *store.Store) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.db = db
}

// DB returns the attached replicated store (nil before AttachDB).
func (n *Node) DB() *store.Store {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.db
}

// SetPeer records (or updates) the base URL for a peer node.
func (n *Node) SetPeer(name, baseURL string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[name] = baseURL
}

// peerURL resolves a node name to its base URL ("" when unknown).
func (n *Node) peerURL(name string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.peers[name]
}

// Start launches the node's background replication pusher; ctx cancels
// it. Cluster-initiated RPCs (sync replication pushes from commit hooks)
// also run under this context. Call before serving traffic.
func (n *Node) Start(ctx context.Context) {
	n.ctxMu.Lock() //lint:allow nakedlock short set; replication loop launch below runs unlocked
	n.runCtx = ctx
	n.ctxMu.Unlock()
	go n.replLoop(ctx)
}

// runContext returns the Start context (nil before Start).
func (n *Node) runContext() context.Context {
	n.ctxMu.Lock()
	defer n.ctxMu.Unlock()
	return n.runCtx
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

func (n *Node) ticketTTL() time.Duration {
	if n.cfg.TicketTTL > 0 {
		return n.cfg.TicketTTL
	}
	return 2 * time.Minute
}

func (n *Node) standbyTTL() time.Duration {
	if n.cfg.StandbyTTL > 0 {
		return n.cfg.StandbyTTL
	}
	return 10 * time.Minute
}

func (n *Node) maxReplLog() int {
	if n.cfg.MaxReplLog > 0 {
		return n.cfg.MaxReplLog
	}
	return 4096
}

func (n *Node) syncQuorum() int {
	if n.cfg.SyncQuorum > 0 {
		return n.cfg.SyncQuorum
	}
	return 1
}

func (n *Node) replInterval() time.Duration {
	if n.cfg.ReplInterval > 0 {
		return n.cfg.ReplInterval
	}
	return 25 * time.Millisecond
}

// mintOwnedID draws random session ids until one lands on this node's
// ring arc, so a session's messages are served where it started without
// a forwarding hop. With k nodes a draw hits the local arc with
// probability ~1/k; 128 draws make failure astronomically unlikely.
func (n *Node) mintOwnedID() (string, error) {
	for i := 0; i < 128; i++ {
		var raw [12]byte
		if _, err := rand.Read(raw[:]); err != nil {
			return "", err
		}
		id := hex.EncodeToString(raw[:])
		owner := n.ring.Owner(id)
		if owner == "" || owner == n.cfg.Name {
			return id, nil
		}
	}
	return "", fmt.Errorf("cluster: node %s could not mint an owned session id in 128 draws", n.cfg.Name)
}

// shipStandby is the TNService OnSessionUpdate hook: after each handled
// message — before the reply is released — the session's suspended state
// ships to its ring successor. An error here withholds the reply, so a
// client holding reply k implies the standby holds state ≥ k: the
// invariant that makes failover adoption lossless for acked traffic.
func (n *Node) shipStandby(ctx context.Context, id string, doc *xmldom.Node) error {
	target := n.ring.Successor(id)
	if target == "" || target == n.cfg.Name {
		return nil // single-node ring: no standby to keep
	}
	base := n.peerURL(target)
	if base == "" {
		n.countShip("error")
		return fmt.Errorf("cluster: no address for standby target %s", target)
	}
	// Ships are signed with the cluster key: the receiving node refuses
	// to hold — and, later, to adopt — a snapshot the cluster did not
	// vouch for, so a forged POST cannot hijack a negotiation via the
	// failover path the way it never could via the migration path.
	ship, err := n.signedStandbyShip(id, doc)
	if err != nil {
		n.countShip("error")
		return fmt.Errorf("cluster: standby ship of %s to %s: %w", id, target, err)
	}
	_, err = n.transport.Call(ctx, "POST", base, "/cluster/standby", "", ship.XML(), true)
	if err != nil {
		n.countShip("error")
		return fmt.Errorf("cluster: standby ship of %s to %s: %w", id, target, err)
	}
	n.countShip("ok")
	return nil
}

func (n *Node) countShip(result string) {
	if m := n.metrics; m != nil {
		m.Counter("cluster_standby_ships_total", "result", result).Inc()
	}
}

// putStandby stores an unclaimed standby snapshot (last write wins: the
// shipper serializes per-session under the session lock, so a later
// write is a later state). Every 256 inserts expired snapshots are
// swept, bounding the table under churn.
func (n *Node) putStandby(id, xml string) {
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	n.standby[id] = standbyDoc{xml: xml, at: now}
	n.ships++
	if n.ships%256 == 0 {
		cutoff := now.Add(-n.standbyTTL())
		for k, v := range n.standby {
			if v.at.Before(cutoff) {
				delete(n.standby, k)
			}
		}
	}
}

// takeStandby removes, re-verifies, and unwraps the standby ship for
// id, if one is held and still fresh. Verification happens again at
// the point of use — not just at POST ingress — so the table itself is
// never trusted: the signature and expiry travel with the snapshot.
func (n *Node) takeStandby(id string) (*xmldom.Node, bool) {
	n.mu.Lock() //lint:allow nakedlock XML parse below must run outside the lock
	d, ok := n.standby[id]
	if ok {
		delete(n.standby, id)
	}
	n.mu.Unlock()
	if !ok || time.Since(d.at) > n.standbyTTL() {
		return nil, false
	}
	ship, err := xmldom.ParseString(d.xml)
	if err != nil {
		n.logf("cluster: dropping unparseable standby snapshot %s: %v", id, err)
		return nil, false
	}
	doc, err := n.verifyStandbyShip(ship)
	if err != nil {
		n.countStandbyReject(err)
		n.logf("cluster: dropping standby snapshot %s: %v", id, err)
		return nil, false
	}
	return doc, true
}

// countStandbyReject counts a refused standby snapshot by reason.
func (n *Node) countStandbyReject(err error) {
	if m := n.metrics; m != nil {
		reason := "schema"
		switch {
		case errors.Is(err, errStandbyExpired):
			reason = "expired"
		case errors.Is(err, errStandbySignature):
			reason = "signature"
		}
		m.Counter("cluster_standby_rejects_total", "reason", reason).Inc()
	}
}

// StandbyCount reports held, unclaimed standby snapshots (monitoring).
func (n *Node) StandbyCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.standby)
}
