package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"trustvo/internal/faultinject"
	"trustvo/internal/negotiation"
	"trustvo/internal/pki"
	"trustvo/internal/store"
	"trustvo/internal/telemetry"
	"trustvo/internal/vo"
	"trustvo/internal/wsrpc"
	"trustvo/internal/xtnl"
)

// bg is the context for test client calls.
var bg = context.Background()

// chaosResource is the membership resource every harness join targets.
var chaosResource = vo.MembershipResource("AircraftOptimizationVO", "DesignWebPortal")

// testCluster is the in-process multi-node fixture: N tnserve-shaped
// nodes on httptest servers, one shared ring, one shared fault-injection
// network board, one shared telemetry registry (so per-node counters
// aggregate), and a deterministic controller for kills, revivals,
// partitions and promotions.
type testCluster struct {
	t        *testing.T
	ring     *Ring
	net      *faultinject.Net
	keys     *pki.KeyPair
	ca       *pki.Authority
	trust    *pki.TrustStore
	reg      *telemetry.Registry
	baseDir  string
	sync     bool
	replLog  int
	floor    time.Duration // per-message service floor (chaos widens kill windows)
	redirect bool          // 307-redirect misrouted requests instead of forwarding

	mu     sync.Mutex
	nodes  map[string]*testNode
	leader string
	gen    int // store-dir generation per revival, for fresh-disk revivals
}

// testNode is one live node of the fixture.
type testNode struct {
	name   string
	node   *Node
	tn     *wsrpc.TNService
	db     *store.Store
	srv    *httptest.Server
	cancel context.CancelFunc
	dir    string
}

func newTestCluster(t *testing.T, syncRepl bool, replLog int) *testCluster {
	t.Helper()
	ca, err := pki.NewAuthority("CertCA")
	if err != nil {
		t.Fatal(err)
	}
	return &testCluster{
		t:       t,
		ring:    NewRing(0),
		net:     faultinject.NewNet(),
		keys:    pki.MustGenerateKeyPair(),
		ca:      ca,
		trust:   pki.NewTrustStore(ca),
		reg:     telemetry.NewRegistry(),
		baseDir: t.TempDir(),
		sync:    syncRepl,
		replLog: replLog,
		nodes:   make(map[string]*testNode),
	}
}

// controllerParty builds one node's controller identity. Each node gets
// its own Party value (they are mutated with a metrics clone per
// session) sharing the CA trust store.
func (c *testCluster) controllerParty() *negotiation.Party {
	return &negotiation.Party{
		Name:    "AircraftCo",
		Profile: xtnl.NewProfile("AircraftCo"),
		Policies: xtnl.MustPolicySet(xtnl.MustParsePolicies(
			chaosResource + " <- WebDesignerQuality(regulation='UNI EN ISO 9000')")...),
		Trust: c.trust,
		Grant: func(resource, peer string) ([]byte, error) { return []byte("granted"), nil },
	}
}

// memberParty issues a credentialed requester identity.
func (c *testCluster) memberParty(name string) *negotiation.Party {
	c.t.Helper()
	prof := xtnl.NewProfile(name)
	cred, err := c.ca.Issue(pki.IssueRequest{
		Type: "WebDesignerQuality", Holder: name,
		Attributes: []xtnl.Attribute{{Name: "regulation", Value: "UNI EN ISO 9000"}},
	})
	if err != nil {
		c.t.Fatal(err)
	}
	prof.Add(cred)
	return &negotiation.Party{
		Name: name, Profile: prof,
		Policies: xtnl.MustPolicySet(), Trust: pki.NewTrustStore(c.ca),
	}
}

// clientRetry is the aggressive retry budget for chaos loopback tests.
func clientRetry() wsrpc.RetryPolicy {
	return wsrpc.RetryPolicy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond}
}

// startNode boots (or reboots) a node: TN service, durable store wired
// into the replication hook, routed HTTP server, fault-net-aware
// transport. The caller adds it to the ring.
func (c *testCluster) startNode(name, dir string) *testNode {
	c.t.Helper()
	tnsvc := wsrpc.NewTNService(c.controllerParty())
	tnsvc.Metrics = c.reg
	tnsvc.Logf = func(string, ...any) {}

	mux := http.NewServeMux()
	srv := httptest.NewServer(mux)
	endpoint := srv.Listener.Addr().String()

	ft := faultinject.New(faultinject.Config{}, nil)
	ft.Net = c.net
	ft.LocalEndpoint = endpoint
	ft.Metrics = c.reg
	transport := &wsrpc.Transport{
		HTTP:            &http.Client{Transport: ft},
		RequestTimeout:  2 * time.Second,
		Retry:           clientRetry(),
		BreakerCooldown: 100 * time.Millisecond, // chaos windows are short; reprobe fast
		Metrics:         c.reg,
	}

	node, err := NewNode(Config{
		Name:         name,
		Ring:         c.ring,
		TN:           tnsvc,
		Transport:    transport,
		Metrics:      c.reg,
		Keys:         c.keys,
		SyncRepl:     c.sync,
		MaxReplLog:   c.replLog,
		TicketTTL:    time.Minute,
		Capacity:     8,
		ServiceFloor: c.floor,
		Redirect:     c.redirect,
		Logf:         func(string, ...any) {},
	})
	if err != nil {
		srv.Close()
		c.t.Fatal(err)
	}
	db, err := store.OpenWithOptions(dir, store.Options{OnCommit: node.OnCommit})
	if err != nil {
		srv.Close()
		c.t.Fatal(err)
	}
	node.AttachDB(db)
	node.Register(mux)

	ctx, cancel := context.WithCancel(bg)
	node.Start(ctx)

	tn := &testNode{name: name, node: node, tn: tnsvc, db: db, srv: srv, cancel: cancel, dir: dir}
	c.mu.Lock()
	c.nodes[name] = tn
	peers := make(map[string]string, len(c.nodes))
	for n2, other := range c.nodes {
		peers[n2] = other.srv.URL
	}
	c.mu.Unlock()
	// Full-mesh peer exchange: everyone learns the newcomer, the
	// newcomer learns everyone.
	c.mu.Lock()
	for _, other := range c.nodes {
		other.node.SetPeer(name, srv.URL)
		tn.node.SetPeer(other.name, peers[other.name])
	}
	c.mu.Unlock()
	return tn
}

// addNode starts a node and joins it to the ring.
func (c *testCluster) addNode(name string) *testNode {
	tn := c.startNode(name, filepath.Join(c.baseDir, name+"-0"))
	c.ring.Add(name)
	return tn
}

// get returns a live node (nil if dead).
func (c *testCluster) get(name string) *testNode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[name]
}

// kill simulates an abrupt node death: off the ring, HTTP refused,
// store closed, background loops cancelled. State on disk survives for
// a same-disk revival.
func (c *testCluster) kill(name string) {
	c.t.Helper()
	c.ring.Remove(name)
	c.mu.Lock()
	tn := c.nodes[name]
	delete(c.nodes, name)
	c.mu.Unlock()
	if tn == nil {
		return
	}
	tn.cancel()
	tn.srv.CloseClientConnections()
	tn.srv.Close()
	tn.db.Close()
}

// revive reboots a previously killed node, optionally on a fresh disk
// (forcing a snapshot catch-up), and rebalances sessions onto it.
func (c *testCluster) revive(name string, freshDisk bool) *testNode {
	c.t.Helper()
	c.mu.Lock()
	c.gen++
	gen := c.gen
	c.mu.Unlock()
	dir := filepath.Join(c.baseDir, fmt.Sprintf("%s-0", name))
	if freshDisk {
		dir = filepath.Join(c.baseDir, fmt.Sprintf("%s-%d", name, gen))
	}
	tn := c.startNode(name, dir)
	c.ring.Add(name)
	// Sessions whose arcs moved back to the revived node follow it.
	for _, other := range c.liveNodes() {
		if other.name == name {
			continue
		}
		other.node.MigrateMisowned(bg)
	}
	return tn
}

// liveNodes snapshots the live node set.
func (c *testCluster) liveNodes() []*testNode {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*testNode, 0, len(c.nodes))
	for _, tn := range c.nodes {
		out = append(out, tn)
	}
	return out
}

// liveBase returns some live node's base URL for client traffic.
func (c *testCluster) liveBase() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, tn := range c.nodes {
		return tn.srv.URL
	}
	return ""
}

// setLeader promotes name and records it.
func (c *testCluster) setLeader(name string) {
	tn := c.get(name)
	if tn == nil {
		c.t.Fatalf("cannot promote dead node %s", name)
	}
	tn.node.Promote()
	c.mu.Lock()
	c.leader = name
	c.mu.Unlock()
}

// leaderNode returns the current leader (nil while dead/unset).
func (c *testCluster) leaderNode() *testNode {
	c.mu.Lock()
	name := c.leader
	tn := c.nodes[name]
	c.mu.Unlock()
	return tn
}

// failover promotes the most advanced survivor — the promotion rule that
// keeps every acked write — and returns its name.
func (c *testCluster) failover() string {
	c.t.Helper()
	var best *testNode
	var bestPos uint64
	for _, tn := range c.liveNodes() {
		if pos := tn.node.Applied(); best == nil || pos > bestPos {
			best, bestPos = tn, pos
		}
	}
	if best == nil {
		c.t.Fatal("failover with no survivors")
	}
	c.setLeader(best.name)
	return best.name
}

// shutdown closes every live node.
func (c *testCluster) shutdown() {
	for _, tn := range c.liveNodes() {
		c.kill(tn.name)
	}
}
