package cluster

import (
	"bytes"
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"trustvo/internal/store"
	"trustvo/internal/wsrpc"
	"trustvo/internal/xmldom"
)

// Store replication: the leader ships committed WAL entries — in the
// store's own CRC-framed segment encoding — to every follower, each of
// which applies a strict prefix of the leader's log. Positions are
// global log offsets that survive leader changes because promotion
// always picks the most advanced reachable survivor: its applied prefix
// is a superset of every other follower's, so numbering simply continues
// where the old leader's log left off. Epochs fence deposed leaders; a
// follower too far behind the leader's trimmed in-memory log catches up
// from a full store snapshot instead.

// replState is one node's view of the replicated log.
type replState struct {
	leader atomic.Bool
	epoch  atomic.Uint64

	mu sync.Mutex
	// base is the global position of log[0]; base+len(log) is the head.
	base uint64
	log  []store.Entry
	// applied is the length of the global log prefix applied to the
	// local store (leader: always the head).
	applied   uint64
	followers map[string]uint64
	sendMu    map[string]*sync.Mutex
}

func (r *replState) head() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.base + uint64(len(r.log))
}

func (r *replState) appliedPos() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

func (r *replState) followerPos(name string) (uint64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	pos, ok := r.followers[name]
	return pos, ok
}

func (r *replState) setFollower(name string, pos uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.followers[name] = pos
}

// forget drops a follower's cached position so the next push reprobes it
// — the recovery path for followers that restarted with an empty store.
func (r *replState) forget(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.followers, name)
}

// sendLock returns the per-follower mutex serializing pushes, so the
// background pusher and sync-commit pushes never interleave one
// follower's stream.
func (r *replState) sendLock(name string) *sync.Mutex {
	r.mu.Lock()
	defer r.mu.Unlock()
	mu, ok := r.sendMu[name]
	if !ok {
		mu = &sync.Mutex{}
		r.sendMu[name] = mu
	}
	return mu
}

// window copies log entries covering [pos, head). A nil slice with
// ok=false means pos has been trimmed out of the log and the follower
// needs a snapshot.
func (r *replState) window(pos, head uint64) ([]store.Entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if pos < r.base {
		return nil, false
	}
	lo := pos - r.base
	hi := head - r.base
	if hi > uint64(len(r.log)) {
		hi = uint64(len(r.log))
	}
	if lo >= hi {
		return []store.Entry{}, true
	}
	return append([]store.Entry(nil), r.log[lo:hi]...), true
}

// IsLeader reports whether this node currently leads store replication.
func (n *Node) IsLeader() bool { return n.repl.leader.Load() }

// Epoch returns the node's replication epoch.
func (n *Node) Epoch() uint64 { return n.repl.epoch.Load() }

// Head returns the global log head (leader) / applied prefix (follower).
func (n *Node) Head() uint64 {
	if n.repl.leader.Load() {
		return n.repl.head()
	}
	return n.repl.appliedPos()
}

// Applied returns the applied prefix length of the local store.
func (n *Node) Applied() uint64 { return n.repl.appliedPos() }

// Promote makes this node the replication leader under a fresh epoch.
// Call it on the most advanced reachable survivor after a leader death:
// because followers apply strict prefixes and sync commits required a
// follower ack, the max-applied survivor holds every acked write. The
// log restarts at the local applied position; follower positions are
// reprobed lazily on the first push.
func (n *Node) Promote() {
	r := &n.repl
	r.mu.Lock() //lint:allow nakedlock metrics below must run outside the repl lock
	r.epoch.Add(1)
	r.leader.Store(true)
	r.base = r.applied
	r.log = nil
	r.followers = make(map[string]uint64)
	r.mu.Unlock()
	if m := n.metrics; m != nil {
		m.Counter("cluster_promotions_total").Inc()
		m.Gauge("cluster_is_leader").Set(1)
	}
	n.logf("cluster: node %s promoted to leader, epoch %d", n.cfg.Name, r.epoch.Load())
}

// stepDown demotes a deposed leader, adopting newEpoch when it is ahead.
func (n *Node) stepDown(newEpoch uint64) {
	r := &n.repl
	for {
		cur := r.epoch.Load()
		if newEpoch <= cur || r.epoch.CompareAndSwap(cur, newEpoch) {
			break
		}
	}
	if r.leader.CompareAndSwap(true, false) {
		if m := n.metrics; m != nil {
			m.Gauge("cluster_is_leader").Set(0)
		}
		n.logf("cluster: node %s deposed, epoch now %d", n.cfg.Name, r.epoch.Load())
	}
}

// OnCommit is the store commit hook: install it as Options.OnCommit on
// the node's replicated store. On a follower it is a no-op (entries
// arriving via replication are already counted by the applied position).
// On the leader it appends the committed entries to the replication log
// and — in sync mode — withholds the writer's acknowledgment until a
// follower quorum holds them, so a leader can die the instant after an
// ack without losing the write.
//
//lint:allow ctxpropagate store commit-hook signature; sync pushes run under the Start context
func (n *Node) OnCommit(entries []store.Entry) error {
	r := &n.repl
	if !r.leader.Load() {
		return nil
	}
	r.mu.Lock() //lint:allow nakedlock quorum wait below must run outside the repl lock
	r.log = append(r.log, entries...)
	if max := n.maxReplLog(); len(r.log) > max {
		drop := len(r.log) - max
		r.base += uint64(drop)
		r.log = append([]store.Entry(nil), r.log[drop:]...)
	}
	r.applied = r.base + uint64(len(r.log))
	head := r.applied
	r.mu.Unlock()
	if m := n.metrics; m != nil {
		m.Counter("cluster_repl_entries_total").Add(int64(len(entries)))
	}
	if !n.cfg.SyncRepl {
		return nil
	}
	ctx := n.runContext()
	if ctx == nil {
		return fmt.Errorf("cluster: node %s not started; cannot replicate synchronously", n.cfg.Name)
	}
	return n.pushQuorum(ctx, head)
}

// replPeers lists current ring members (other than self) with known
// addresses — the replication targets.
func (n *Node) replPeers() []string {
	var out []string
	for _, name := range n.ring.Nodes() {
		if name == n.cfg.Name {
			continue
		}
		if n.peerURL(name) != "" {
			out = append(out, name)
		}
	}
	return out
}

// pushQuorum pushes the log through head to every follower and fails
// unless at least SyncQuorum of them confirmed.
func (n *Node) pushQuorum(ctx context.Context, head uint64) error {
	peers := n.replPeers()
	acks := 0
	var lastErr error
	for _, p := range peers {
		if err := n.replicateTo(ctx, p, head); err != nil {
			lastErr = err
			continue
		}
		acks++
	}
	n.updateLagGauge(head)
	if q := n.syncQuorum(); acks < q {
		if lastErr == nil {
			lastErr = fmt.Errorf("no followers registered")
		}
		return fmt.Errorf("cluster: sync replication quorum not met (%d/%d acks): %w", acks, n.syncQuorum(), lastErr)
	}
	return nil
}

// replLoop is the background pusher: on the leader it periodically
// drives every follower to the current head, which is the entire
// replication path in async mode and the revived-follower catch-up path
// in sync mode. It also refreshes the replication lag gauge.
func (n *Node) replLoop(ctx context.Context) {
	t := time.NewTicker(n.replInterval())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if !n.repl.leader.Load() {
			continue
		}
		head := n.repl.head()
		for _, p := range n.replPeers() {
			if pos, ok := n.repl.followerPos(p); ok && pos >= head {
				continue
			}
			if err := n.replicateTo(ctx, p, head); err != nil {
				n.logf("cluster: background replication to %s: %v", p, err)
			}
		}
		n.updateLagGauge(head)
	}
}

// updateLagGauge publishes head minus the slowest known follower.
func (n *Node) updateLagGauge(head uint64) {
	m := n.metrics
	if m == nil {
		return
	}
	r := &n.repl
	r.mu.Lock() //lint:allow nakedlock gauge write below must run outside the repl lock
	lag := uint64(0)
	for _, pos := range r.followers {
		if pos < head && head-pos > lag {
			lag = head - pos
		}
	}
	r.mu.Unlock()
	m.Gauge("cluster_repl_lag").Set(int64(lag))
}

// replicateTo drives one follower from its last known position to head:
// probe the position when unknown, then ship log windows (or a full
// snapshot once the follower is behind the trimmed log) until it
// confirms the head. The follower's reply always carries its applied
// position, so a torn frame on the wire — the follower applies the good
// prefix and reports short — simply makes the next window start earlier;
// duplicate frames are skipped by position on the follower.
func (n *Node) replicateTo(ctx context.Context, peer string, head uint64) error {
	lock := n.repl.sendLock(peer)
	lock.Lock()
	defer lock.Unlock()
	r := &n.repl
	pos, known := r.followerPos(peer)
	if !known {
		st, err := n.peerStatus(ctx, peer)
		if err != nil {
			return err
		}
		if st.epoch > r.epoch.Load() {
			n.stepDown(st.epoch)
			return fmt.Errorf("cluster: deposed by epoch %d at %s", st.epoch, peer)
		}
		pos = st.applied
		r.setFollower(peer, pos)
	}
	stalls := 0
	for pos < head {
		var (
			applied uint64
			err     error
		)
		if entries, ok := r.window(pos, head); !ok {
			applied, err = n.sendCatchup(ctx, peer)
		} else {
			applied, err = n.sendEntries(ctx, peer, pos, entries)
		}
		if err != nil {
			r.forget(peer)
			return err
		}
		if applied <= pos {
			// No forward progress: a gap reply (follower behind where we
			// thought) makes progress on the next pass by lowering pos, but
			// repeated stalls mean the stream is wedged.
			if stalls++; stalls >= 3 && applied == pos {
				r.forget(peer)
				return fmt.Errorf("cluster: replication to %s stalled at position %d", peer, applied)
			}
		} else {
			stalls = 0
		}
		pos = applied
		r.setFollower(peer, pos)
	}
	return nil
}

// peerStatusInfo is a parsed /cluster/status reply.
type peerStatusInfo struct {
	node    string
	epoch   uint64
	leader  bool
	pos     uint64
	applied uint64
}

// PeerStatus probes a peer's replication state over the wire.
func (n *Node) PeerStatus(ctx context.Context, peer string) (epoch, applied uint64, leader bool, err error) {
	st, err := n.peerStatus(ctx, peer)
	if err != nil {
		return 0, 0, false, err
	}
	return st.epoch, st.applied, st.leader, nil
}

func (n *Node) peerStatus(ctx context.Context, peer string) (peerStatusInfo, error) {
	base := n.peerURL(peer)
	if base == "" {
		return peerStatusInfo{}, fmt.Errorf("cluster: no address for peer %s", peer)
	}
	root, err := n.transport.Call(ctx, http.MethodGet, base, "/cluster/status", "", "", true)
	if err != nil {
		return peerStatusInfo{}, err
	}
	if root.Name != "clusterStatus" {
		return peerStatusInfo{}, fmt.Errorf("cluster: unexpected status response <%s>", root.Name)
	}
	return peerStatusInfo{
		node:    root.AttrOr("node", ""),
		epoch:   parseU64(root.AttrOr("epoch", "0")),
		leader:  root.AttrOr("leader", "") == "true",
		pos:     parseU64(root.AttrOr("pos", "0")),
		applied: parseU64(root.AttrOr("applied", "0")),
	}, nil
}

func parseU64(s string) uint64 {
	v, _ := strconv.ParseUint(s, 10, 64)
	return v
}

// sendEntries ships one log window; returns the follower's applied
// position.
func (n *Node) sendEntries(ctx context.Context, peer string, from uint64, entries []store.Entry) (uint64, error) {
	base := n.peerURL(peer)
	if base == "" {
		return 0, fmt.Errorf("cluster: no address for peer %s", peer)
	}
	payload, err := store.EncodeEntries(entries)
	if err != nil {
		return 0, fmt.Errorf("cluster: encode replication window: %w", err)
	}
	req := xmldom.NewElement("replicate").
		SetAttr("epoch", strconv.FormatUint(n.repl.epoch.Load(), 10)).
		SetAttr("from", strconv.FormatUint(from, 10)).
		SetAttr("count", strconv.Itoa(len(entries)))
	req.AppendChild(xmldom.NewText(base64.StdEncoding.EncodeToString(payload)))
	root, err := n.transport.Call(ctx, http.MethodPost, base, "/cluster/replicate", "", req.XML(), true)
	if err != nil {
		n.noteReplicateError(err)
		return 0, err
	}
	return parseReplicated(root)
}

// sendCatchup ships a full store snapshot, for followers behind the
// trimmed log. The head position is captured before the snapshot is
// read: entries committed in between are in the snapshot too, and
// resending them later is harmless (applies are idempotent by position
// and content).
func (n *Node) sendCatchup(ctx context.Context, peer string) (uint64, error) {
	base := n.peerURL(peer)
	if base == "" {
		return 0, fmt.Errorf("cluster: no address for peer %s", peer)
	}
	db := n.DB()
	if db == nil {
		return 0, fmt.Errorf("cluster: node %s has no store to snapshot", n.cfg.Name)
	}
	head := n.repl.head()
	payload, err := store.EncodeEntries(db.SnapshotEntries())
	if err != nil {
		return 0, fmt.Errorf("cluster: encode snapshot: %w", err)
	}
	req := xmldom.NewElement("catchup").
		SetAttr("epoch", strconv.FormatUint(n.repl.epoch.Load(), 10)).
		SetAttr("pos", strconv.FormatUint(head, 10))
	req.AppendChild(xmldom.NewText(base64.StdEncoding.EncodeToString(payload)))
	root, err := n.transport.Call(ctx, http.MethodPost, base, "/cluster/catchup", "", req.XML(), true)
	if err != nil {
		n.noteReplicateError(err)
		return 0, err
	}
	if m := n.metrics; m != nil {
		m.Counter("cluster_repl_catchups_total").Inc()
	}
	return parseReplicated(root)
}

// noteReplicateError steps the leader down when a follower fenced us off
// with a stale-epoch fault.
func (n *Node) noteReplicateError(err error) {
	var werr *wsrpc.Error
	if errors.As(err, &werr) && werr.Code == "stale-epoch" {
		// The follower knows a higher epoch but the fault doesn't carry it;
		// epoch adoption happens on the next status probe.
		n.stepDown(n.repl.epoch.Load())
	}
}

func parseReplicated(root *xmldom.Node) (uint64, error) {
	if root.Name != "replicated" {
		return 0, fmt.Errorf("cluster: unexpected replication response <%s>", root.Name)
	}
	return parseU64(root.AttrOr("applied", "0")), nil
}

// --- follower side ---

// checkEpoch applies the fencing rule to an incoming replication epoch:
// lower than ours → reject (a deposed leader must not write); higher →
// adopt it and step down if we were leader. Equal epochs from another
// leader are a split brain the deterministic promotion rule never
// produces; refuse them too.
func (n *Node) checkEpoch(epoch uint64) error {
	r := &n.repl
	for {
		cur := r.epoch.Load()
		if epoch < cur {
			return fmt.Errorf("cluster: stale epoch %d (current %d)", epoch, cur)
		}
		if epoch == cur {
			if r.leader.Load() {
				return fmt.Errorf("cluster: conflicting leader at epoch %d", epoch)
			}
			return nil
		}
		if r.epoch.CompareAndSwap(cur, epoch) {
			if r.leader.CompareAndSwap(true, false) {
				if m := n.metrics; m != nil {
					m.Gauge("cluster_is_leader").Set(0)
				}
				n.logf("cluster: node %s deposed by replication epoch %d", n.cfg.Name, epoch)
			}
			return nil
		}
	}
}

// applyEntriesAt applies a replicated window starting at global position
// from, returning the new applied position. Entries already applied
// (duplicates of an earlier delivery) are skipped by position; a gap —
// from beyond our applied prefix — applies nothing and reports where we
// are, so the sender rewinds.
func (n *Node) applyEntriesAt(from uint64, entries []store.Entry) (uint64, error) {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	r := &n.repl
	r.mu.Lock() //lint:allow nakedlock position snapshot; store apply below runs outside the repl lock
	applied := r.applied
	r.mu.Unlock()
	if from > applied {
		return applied, nil
	}
	skip := applied - from
	if skip >= uint64(len(entries)) {
		return applied, nil // pure duplicate
	}
	db := n.DB()
	if db == nil {
		return applied, fmt.Errorf("cluster: node %s has no store attached", n.cfg.Name)
	}
	if err := db.ApplyEntries(entries[skip:]); err != nil {
		return applied, err
	}
	newPos := from + uint64(len(entries))
	r.mu.Lock() //lint:allow nakedlock short position advance; no early return before Unlock
	if newPos > r.applied {
		r.applied = newPos
	}
	applied = r.applied
	r.mu.Unlock()
	return applied, nil
}

// applySnapshotAt reconciles the local store to a full snapshot standing
// at global position pos: snapshot entries are applied and local records
// absent from the snapshot are deleted, so a revived follower with stale
// or divergent state converges to the leader's exact content.
func (n *Node) applySnapshotAt(pos uint64, entries []store.Entry) (uint64, error) {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	db := n.DB()
	if db == nil {
		return 0, fmt.Errorf("cluster: node %s has no store attached", n.cfg.Name)
	}
	want := make(map[string]bool, len(entries))
	for _, e := range entries {
		if e.Op == store.OpPut {
			want[e.Kind+"\x00"+e.Key] = true
		}
	}
	for _, kind := range db.Kinds() {
		for _, key := range db.Keys(kind) {
			if !want[kind+"\x00"+key] {
				if err := db.Delete(kind, key); err != nil {
					return 0, err
				}
			}
		}
	}
	if err := db.ApplyEntries(entries); err != nil {
		return 0, err
	}
	r := &n.repl
	r.mu.Lock() //lint:allow nakedlock short position advance; no early return before Unlock
	if pos > r.applied {
		r.applied = pos
	}
	applied := r.applied
	r.mu.Unlock()
	return applied, nil
}

// decodePayload decodes the base64 CRC-framed entry stream of a
// replication request body. Decoding is torn-tail tolerant — exactly the
// store's WAL recovery rule — so a truncated frame yields the good
// prefix and the sender retransmits the rest.
func decodePayload(text string) ([]store.Entry, error) {
	raw, err := base64.StdEncoding.DecodeString(text)
	if err != nil {
		return nil, fmt.Errorf("cluster: replication payload not base64: %w", err)
	}
	entries, _ := store.DecodeFrames(bytes.NewReader(raw))
	return entries, nil
}
