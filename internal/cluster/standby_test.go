package cluster

import (
	"encoding/base64"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"trustvo/internal/pki"
	"trustvo/internal/xmldom"
)

// Regression tests for the standby authentication gap vetvo's credtaint
// analyzer surfaced: standby ships used to travel and be adopted
// unsigned, so a forged POST to /cluster/standby could hijack a
// negotiation through the failover path. Ships are now signed with the
// cluster key and verified — expiry before signature — at POST
// ingress, at local takeStandby, and at remote fetchStandby.

// postStandby POSTs a raw standbyShip body and returns the status code.
func postStandby(t *testing.T, base, body string) int {
	t.Helper()
	resp, err := http.Post(base+"/cluster/standby", "application/xml", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

func TestStandbyShipRejectsUnsignedAndForged(t *testing.T) {
	c := newTestCluster(t, false, 0)
	defer c.shutdown()
	c.addNode("a")
	b := c.addNode("b")

	doc := xmldom.NewElement("tnSession").SetAttr("id", "sess-1")

	// No signature at all: schema rejection.
	bare := xmldom.NewElement("standbyShip").SetAttr("id", "sess-1")
	bare.AppendChild(doc)
	if got := postStandby(t, b.srv.URL, bare.XML()); got != http.StatusBadRequest {
		t.Fatalf("unsigned ship: got %d, want %d", got, http.StatusBadRequest)
	}

	// Signed by a key the cluster does not hold: signature rejection.
	intruder := pki.MustGenerateKeyPair()
	notAfter := time.Now().Add(time.Hour).UTC().Format(time.RFC3339)
	sig := intruder.Sign(standbyTicketBytes("sess-1", notAfter, doc.XML()))
	forged := xmldom.NewElement("standbyShip").
		SetAttr("id", "sess-1").
		SetAttr("notAfter", notAfter)
	forged.AppendChild(doc)
	sigEl := xmldom.NewElement("signature")
	sigEl.AppendChild(xmldom.NewText(base64.StdEncoding.EncodeToString(sig)))
	forged.AppendChild(sigEl)
	if got := postStandby(t, b.srv.URL, forged.XML()); got != http.StatusForbidden {
		t.Fatalf("forged ship: got %d, want %d", got, http.StatusForbidden)
	}

	// Nothing above may have entered the standby table.
	if n := b.node.StandbyCount(); n != 0 {
		t.Fatalf("rejected ships left %d standby entries", n)
	}
}

func TestStandbyShipRejectsExpired(t *testing.T) {
	c := newTestCluster(t, false, 0)
	defer c.shutdown()
	b := c.addNode("b")

	doc := xmldom.NewElement("tnSession").SetAttr("id", "sess-2")
	notAfter := time.Now().Add(-time.Minute).UTC().Format(time.RFC3339)
	sig := c.keys.Sign(standbyTicketBytes("sess-2", notAfter, doc.XML()))
	ship := xmldom.NewElement("standbyShip").
		SetAttr("id", "sess-2").
		SetAttr("notAfter", notAfter)
	ship.AppendChild(doc)
	sigEl := xmldom.NewElement("signature")
	sigEl.AppendChild(xmldom.NewText(base64.StdEncoding.EncodeToString(sig)))
	ship.AppendChild(sigEl)
	if got := postStandby(t, b.srv.URL, ship.XML()); got != http.StatusGone {
		t.Fatalf("expired ship: got %d, want %d", got, http.StatusGone)
	}
}

func TestStandbySignedRoundTrip(t *testing.T) {
	c := newTestCluster(t, false, 0)
	defer c.shutdown()
	c.addNode("a")
	b := c.addNode("b")

	doc := xmldom.NewElement("tnSession").SetAttr("id", "sess-3")
	ship, err := b.node.signedStandbyShip("sess-3", doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := postStandby(t, b.srv.URL, ship.XML()); got != http.StatusOK {
		t.Fatalf("legitimate ship: got %d, want %d", got, http.StatusOK)
	}
	adopted, ok := b.node.takeStandby("sess-3")
	if !ok {
		t.Fatal("takeStandby refused a legitimately signed ship")
	}
	if adopted.AttrOr("id", "") != "sess-3" {
		t.Fatalf("takeStandby returned wrong doc: %s", adopted.XML())
	}
}

func TestTakeStandbyRefusesTamperedTable(t *testing.T) {
	c := newTestCluster(t, false, 0)
	defer c.shutdown()
	b := c.addNode("b")

	doc := xmldom.NewElement("tnSession").SetAttr("id", "sess-4")
	ship, err := b.node.signedStandbyShip("sess-4", doc)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the stored snapshot after signing: the signature no
	// longer covers what would be adopted.
	tampered := strings.Replace(ship.XML(), "sess-4", "sess-x", 1)
	b.node.putStandby("sess-4", tampered)
	if _, ok := b.node.takeStandby("sess-4"); ok {
		t.Fatal("takeStandby adopted a tampered snapshot")
	}
}

func TestHandleStandbyGetRefusesStale(t *testing.T) {
	c := newTestCluster(t, false, 0)
	defer c.shutdown()
	b := c.addNode("b")

	doc := xmldom.NewElement("tnSession").SetAttr("id", "sess-5")
	ship, err := b.node.signedStandbyShip("sess-5", doc)
	if err != nil {
		t.Fatal(err)
	}
	// Plant a snapshot far past the table TTL; the GET surrender path
	// must apply the same staleness rule takeStandby does.
	b.node.mu.Lock()
	b.node.standby["sess-5"] = standbyDoc{xml: ship.XML(), at: time.Now().Add(-24 * time.Hour)}
	b.node.mu.Unlock()

	resp, err := http.Get(b.srv.URL + "/cluster/standby?negotiation=sess-5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stale standby GET: got %d, want %d", resp.StatusCode, http.StatusNotFound)
	}
	if n := b.node.StandbyCount(); n != 0 {
		t.Fatalf("stale snapshot still held after GET (%d entries)", n)
	}
}
