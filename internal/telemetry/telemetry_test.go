package telemetry

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.LatencyHistogram("h_seconds")
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Inc()
	g.Dec()
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatalf("nil metrics accumulated: c=%d g=%d", c.Value(), g.Value())
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil histogram observed: %+v", s)
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if rep := r.Report(); len(rep.Counters) != 0 {
		t.Fatalf("nil registry report: %+v", rep)
	}
}

func TestSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "route", "/x", "code", "200")
	// same labels, different order → same series
	b := r.Counter("hits_total", "code", "200", "route", "/x")
	if a != b {
		t.Fatal("label order changed series identity")
	}
	a.Inc()
	if got := r.Counter("hits_total", "route", "/x", "code", "200").Value(); got != 1 {
		t.Fatalf("value = %d", got)
	}
	if c := r.Counter("hits_total", "route", "/y", "code", "200"); c == a {
		t.Fatal("distinct labels collided")
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// bounds are upper-inclusive: 0.5,1 → ≤1; 1.5 → ≤2; 3 → ≤4; 100 → +Inf
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Sum-106) > 1e-9 {
		t.Fatalf("sum = %v", s.Sum)
	}
	if math.Abs(s.Mean()-21.2) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d", []float64{10, 20, 30, 40})
	// 100 observations spread uniformly 1..100 conceptually: put 25 in each
	// of the four buckets by observing midpoints repeatedly.
	for i := 0; i < 25; i++ {
		h.Observe(5)
		h.Observe(15)
		h.Observe(25)
		h.Observe(35)
	}
	s := h.Snapshot()
	// p50 rank = 50 → falls exactly at the end of bucket 2 (cum 25,50):
	// interpolation within (10,20] with frac (50-25)/25 = 1 → 20.
	if got := s.Quantile(0.50); math.Abs(got-20) > 1e-9 {
		t.Fatalf("p50 = %v, want 20", got)
	}
	// p95 rank = 95 → bucket (30,40], frac (95-75)/25 = 0.8 → 38.
	if got := s.Quantile(0.95); math.Abs(got-38) > 1e-9 {
		t.Fatalf("p95 = %v, want 38", got)
	}
	// p0 → lower edge of first non-empty bucket
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("p0 = %v", got)
	}
	// p100 → top of last occupied bucket
	if got := s.Quantile(1); math.Abs(got-40) > 1e-9 {
		t.Fatalf("p100 = %v", got)
	}
	// overflow values clamp to the highest finite bound
	h.Observe(10000)
	if got := h.Snapshot().Quantile(1); math.Abs(got-40) > 1e-9 {
		t.Fatalf("overflow quantile = %v", got)
	}
	// empty histogram
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("a", []float64{1, 2})
	b := r.Histogram("b", []float64{1, 2})
	a.Observe(0.5)
	a.Observe(1.5)
	b.Observe(1.5)
	b.Observe(5)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 4 || math.Abs(m.Sum-8.5) > 1e-9 {
		t.Fatalf("merged count=%d sum=%v", m.Count, m.Sum)
	}
	want := []int64{1, 2, 1}
	for i, w := range want {
		if m.Counts[i] != w {
			t.Fatalf("merged bucket %d = %d, want %d", i, m.Counts[i], w)
		}
	}
}

func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("par_total")
			h := r.Histogram("par_seconds", []float64{1})
			g := r.Gauge("par_gauge")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.5)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("par_total").Value(); got != 8000 {
		t.Fatalf("counter = %d", got)
	}
	if s := r.Histogram("par_seconds", nil).Snapshot(); s.Count != 8000 || s.Counts[0] != 8000 {
		t.Fatalf("histogram = %+v", s)
	}
	if got := r.Gauge("par_gauge").Value(); got != 8000 {
		t.Fatalf("gauge = %d", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "route", "/tn/start").Add(3)
	r.Counter("req_total", "route", "/tn/status").Add(1)
	r.Gauge("in_flight").Set(2)
	h := r.Histogram("lat_seconds", []float64{0.1, 1}, "route", "/tn/start")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE req_total counter",
		`req_total{route="/tn/start"} 3`,
		`req_total{route="/tn/status"} 1`,
		"# TYPE in_flight gauge",
		"in_flight 2",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{route="/tn/start",le="0.1"} 1`,
		`lat_seconds_bucket{route="/tn/start",le="1"} 2`,
		`lat_seconds_bucket{route="/tn/start",le="+Inf"} 3`,
		`lat_seconds_sum{route="/tn/start"} 5.55`,
		`lat_seconds_count{route="/tn/start"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// the TYPE header appears once per family, not per series
	if strings.Count(out, "# TYPE req_total counter") != 1 {
		t.Fatalf("duplicated TYPE header:\n%s", out)
	}

	// and over HTTP
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
}

func TestReport(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(7)
	r.Gauge("g").Set(-2)
	h := r.Histogram("h_seconds", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	rep := r.Report()
	if rep.Counters["c_total"] != 7 || rep.Gauges["g"] != -2 {
		t.Fatalf("report scalars: %+v", rep)
	}
	hr, ok := rep.Histograms["h_seconds"]
	if !ok || hr.Count != 2 || math.Abs(hr.Sum-2) > 1e-9 {
		t.Fatalf("report histogram: %+v", hr)
	}
	if hr.P50 <= 0 || hr.P99 > 2 {
		t.Fatalf("percentiles: %+v", hr)
	}
	var b strings.Builder
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"p95"`) {
		t.Fatalf("json: %s", b.String())
	}
}
