package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	s := tr.StartSpan("x")
	s.SetAttr("k", "v").End()
	s.StartChild("y").End()
	if s.Duration() != 0 || s.Attrs() != nil {
		t.Fatal("nil span leaked state")
	}
	if tr.Spans() != nil || tr.String() != "" {
		t.Fatal("nil trace has content")
	}
}

func TestStackParenting(t *testing.T) {
	tr := NewTrace()
	root := tr.StartSpan("root")
	a := tr.StartSpan("a")
	aa := tr.StartSpan("aa")
	aa.End()
	ab := tr.StartSpan("ab")
	ab.End()
	a.End()
	b := tr.StartSpan("b")
	b.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 5 {
		t.Fatalf("spans = %d", len(spans))
	}
	wantParents := map[string]string{"root": "", "a": "root", "aa": "a", "ab": "a", "b": "root"}
	byID := map[int]*Span{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		wantParent := wantParents[s.Name]
		got := ""
		if s.ParentID != 0 {
			got = byID[s.ParentID].Name
		}
		if got != wantParent {
			t.Fatalf("span %s parent = %q, want %q", s.Name, got, wantParent)
		}
		if s.Finish.IsZero() {
			t.Fatalf("span %s not ended", s.Name)
		}
	}
}

func TestExplicitChildDoesNotDisturbStack(t *testing.T) {
	tr := NewTrace()
	root := tr.StartSpan("root")
	phase := root.StartChild("phase") // not pushed on the stack
	msg := tr.StartSpan("msg")        // stack parent is still root
	if msg.ParentID != root.ID {
		t.Fatalf("msg parent = %d, want root %d", msg.ParentID, root.ID)
	}
	if phase.ParentID != root.ID {
		t.Fatalf("phase parent = %d, want root %d", phase.ParentID, root.ID)
	}
	msg.End()
	phase.End()
	root.End()
}

func TestEndOutOfOrderPopsNested(t *testing.T) {
	tr := NewTrace()
	root := tr.StartSpan("root")
	inner := tr.StartSpan("inner")
	root.End() // ends root while inner is still open on the stack
	next := tr.StartSpan("next")
	if next.ParentID != 0 {
		t.Fatalf("next parent = %d, want root-level", next.ParentID)
	}
	inner.End() // double-bookkeeping must not panic
	next.End()
	root.End() // double End is a no-op
	if n := len(tr.Spans()); n != 3 {
		t.Fatalf("spans = %d", n)
	}
}

func TestSpanDurationAndAttrs(t *testing.T) {
	tr := NewTrace()
	s := tr.StartSpan("work").SetAttr("resource", "R")
	time.Sleep(2 * time.Millisecond)
	s.End()
	if d := s.Duration(); d < time.Millisecond {
		t.Fatalf("duration = %v", d)
	}
	fin := s.Finish
	s.End()
	if !s.Finish.Equal(fin) {
		t.Fatal("double End moved finish time")
	}
	attrs := s.Attrs()
	if len(attrs) != 2 || attrs[0] != "resource" || attrs[1] != "R" {
		t.Fatalf("attrs = %v", attrs)
	}
}

func TestTraceString(t *testing.T) {
	tr := NewTrace()
	root := tr.StartSpan("negotiation").SetAttr("resource", "R")
	phase := root.StartChild("phase:policy-evaluation")
	msg := phase.StartChild("recv:policy")
	msg.End()
	phase.End()
	root.End()
	out := tr.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "negotiation ") || !strings.Contains(lines[0], "resource=R") {
		t.Fatalf("root line: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  phase:policy-evaluation ") {
		t.Fatalf("phase line: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "    recv:policy ") {
		t.Fatalf("msg line: %q", lines[2])
	}
}
