package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4), hand-rolled per the
// stdlib-only constraint: counters and gauges as single samples,
// histograms as cumulative _bucket/_sum/_count families. Series are
// emitted in sorted order so scrapes are diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	cs, gs, hs := r.snapshot()

	var lastName string
	for _, c := range cs {
		if c.name != lastName {
			fmt.Fprintf(w, "# TYPE %s counter\n", c.name)
			lastName = c.name
		}
		fmt.Fprintf(w, "%s %d\n", c.key(), c.c.Value())
	}
	lastName = ""
	for _, g := range gs {
		if g.name != lastName {
			fmt.Fprintf(w, "# TYPE %s gauge\n", g.name)
			lastName = g.name
		}
		fmt.Fprintf(w, "%s %d\n", g.key(), g.g.Value())
	}
	lastName = ""
	for _, h := range hs {
		if h.name != lastName {
			fmt.Fprintf(w, "# TYPE %s histogram\n", h.name)
			lastName = h.name
		}
		snap := h.h.Snapshot()
		var cum int64
		for i, bound := range snap.Bounds {
			cum += snap.Counts[i]
			fmt.Fprintf(w, "%s %d\n",
				seriesWithLabel(h.name+"_bucket", h.labels, "le", formatFloat(bound)), cum)
		}
		if len(snap.Counts) > 0 {
			cum += snap.Counts[len(snap.Counts)-1]
		}
		fmt.Fprintf(w, "%s %d\n", seriesWithLabel(h.name+"_bucket", h.labels, "le", "+Inf"), cum)
		fmt.Fprintf(w, "%s %s\n", series{name: h.name + "_sum", labels: h.labels}.key(), formatFloat(snap.Sum))
		fmt.Fprintf(w, "%s %d\n", series{name: h.name + "_count", labels: h.labels}.key(), snap.Count)
	}
	return nil
}

// seriesWithLabel renders name{labels...,extraK="extraV"}.
func seriesWithLabel(name string, labels []string, extraK, extraV string) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	writeLabels(&b, labels)
	if len(labels) > 0 {
		b.WriteByte(',')
	}
	b.WriteString(extraK)
	b.WriteString(`="`)
	b.WriteString(escapeLabel(extraV))
	b.WriteString(`"}`)
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the exposition over HTTP (mount at GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
