package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// LatencyBuckets are the default histogram bounds for request and phase
// latencies, in seconds: 100µs to 10s, roughly exponential. The paper's
// Fig. 9 operations sit in the 1ms–4s band on 2008 hardware; this range
// keeps both the reproduction's sub-millisecond in-process negotiations
// and slow cross-network deployments resolvable.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// CountBuckets are the default bounds for small-integer distributions
// (protocol rounds, tree nodes, disclosures per negotiation).
var CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Histogram is a fixed-bucket histogram with atomic observation. The
// bounds are upper bounds; an implicit +Inf bucket catches overflow.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, cumulative only at snapshot
	total  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed time since t0, in seconds.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Snapshot captures a consistent-enough view for rendering (individual
// fields are atomic; cross-field skew under concurrent writes is at most
// a few in-flight observations).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.total.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram, mergeable
// with snapshots of identically-bucketed histograms.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds; Counts has one extra +Inf slot
	Counts []int64
	Count  int64
	Sum    float64
}

// Merge adds other into a copy of s and returns it. Snapshots must share
// bucket bounds (the result keeps s's bounds; mismatched counts beyond
// the shared length are folded into the overflow bucket).
func (s HistogramSnapshot) Merge(other HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count + other.Count,
		Sum:    s.Sum + other.Sum,
	}
	copy(out.Counts, s.Counts)
	for i, c := range other.Counts {
		j := i
		if j >= len(out.Counts) {
			j = len(out.Counts) - 1
		}
		if j >= 0 {
			out.Counts[j] += c
		}
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the containing bucket, the standard Prometheus histogram
// estimate. Values in the +Inf bucket report the highest finite bound.
// Returns 0 for an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank && c > 0 {
			if i >= len(s.Bounds) {
				// overflow bucket: no upper bound to interpolate toward
				if len(s.Bounds) == 0 {
					return 0
				}
				return s.Bounds[len(s.Bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			upper := s.Bounds[i]
			// position of the rank within this bucket
			frac := (rank - float64(cum-c)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lower + (upper-lower)*frac
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the arithmetic mean of all observations (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
