package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace is an ordered collection of spans describing one logical
// operation (here: one trust negotiation). Spans form a tree through
// parent links; StartSpan parents to the innermost open span, while
// Span.StartChild parents explicitly. A nil *Trace is a valid no-op
// recorder whose StartSpan returns a nil (no-op) *Span.
//
// Trace is safe for concurrent use, though negotiation endpoints drive
// it from a single goroutine.
type Trace struct {
	mu    sync.Mutex
	spans []*Span
	stack []*Span // open spans, innermost last
	next  int
}

// NewTrace creates an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Span is one timed region. ParentID is 0 for roots (IDs start at 1).
type Span struct {
	ID       int
	ParentID int
	Name     string
	Begin    time.Time
	Finish   time.Time // zero while open

	trace *Trace
	attrs []string // alternating key, value
}

func (t *Trace) newSpanLocked(name string, parent int) *Span {
	t.next++
	s := &Span{ID: t.next, ParentID: parent, Name: name, Begin: time.Now(), trace: t}
	t.spans = append(t.spans, s)
	return s
}

// StartSpan opens a span parented to the innermost open span (a root
// span when none is open) and makes it the innermost.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	parent := 0
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1].ID
	}
	s := t.newSpanLocked(name, parent)
	t.stack = append(t.stack, s)
	return s
}

// StartChild opens a span explicitly parented to s, without touching the
// open-span stack. Used where the parent is known (phase spans under the
// negotiation root) so interleaved spans cannot mis-nest.
func (s *Span) StartChild(name string) *Span {
	if s == nil || s.trace == nil {
		return nil
	}
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.newSpanLocked(name, s.ID)
}

// SetAttr attaches a key=value annotation, returning s for chaining.
func (s *Span) SetAttr(k, v string) *Span {
	if s == nil {
		return nil
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	s.attrs = append(s.attrs, k, v)
	return s
}

// End closes the span, recording its finish time. Ending a span that sits
// on the open-span stack pops it (and anything opened after it). Double
// End is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	if !s.Finish.IsZero() {
		return
	}
	s.Finish = time.Now()
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s {
			t.stack = t.stack[:i]
			break
		}
	}
}

// Duration returns Finish−Begin for a closed span, and the time elapsed
// so far for an open one.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	if s.Finish.IsZero() {
		return time.Since(s.Begin)
	}
	return s.Finish.Sub(s.Begin)
}

// Attrs returns the span's annotations as alternating key/value pairs.
func (s *Span) Attrs() []string {
	if s == nil {
		return nil
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	out := make([]string, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Spans returns the recorded spans in start order.
func (t *Trace) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// String renders the trace as an indented tree with per-span durations
// and annotations — the human-readable negotiation trace:
//
//	negotiation 1.24ms resource=R role=requester
//	  phase:policy-evaluation 0.91ms
//	    recv:policy 0.30ms
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	spans := t.Spans()

	children := make(map[int][]*Span)
	var roots []*Span
	for _, s := range spans {
		if s.ParentID == 0 {
			roots = append(roots, s)
		} else {
			children[s.ParentID] = append(children[s.ParentID], s)
		}
	}
	var b strings.Builder
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(s.Name)
		fmt.Fprintf(&b, " %.3fms", float64(s.Duration().Microseconds())/1000)
		attrs := s.Attrs()
		for i := 0; i+1 < len(attrs); i += 2 {
			fmt.Fprintf(&b, " %s=%s", attrs[i], attrs[i+1])
		}
		b.WriteByte('\n')
		kids := children[s.ID]
		sort.SliceStable(kids, func(i, j int) bool { return kids[i].ID < kids[j].ID })
		for _, c := range kids {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}
