// Package telemetry is the reproduction's stdlib-only observability
// layer: atomic counters, gauges and fixed-bucket latency histograms
// collected in a Registry, a lightweight span tracer for per-negotiation
// traces, a hand-rendered Prometheus text exposition, and a structured
// JSON run report with per-series percentiles.
//
// Everything is nil-tolerant by design: a nil *Registry hands out nil
// metrics, and every method on a nil *Counter, *Gauge, *Histogram,
// *Trace or *Span is a no-op. Instrumented hot paths therefore pay a
// single pointer comparison when telemetry is disabled (see the
// BenchmarkTelemetryCounterDisabled guard in the repository root).
package telemetry

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores n. No-op on a nil gauge.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds n (negative to subtract). No-op on a nil gauge.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// series identifies one registered time series: a metric name plus its
// sorted label pairs.
type series struct {
	name   string
	labels []string // alternating key, value; sorted by key
}

// key renders the canonical series identity: name{k="v",...}.
func (s series) key() string {
	if len(s.labels) == 0 {
		return s.name
	}
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteByte('{')
	writeLabels(&b, s.labels)
	b.WriteByte('}')
	return b.String()
}

func writeLabels(b *strings.Builder, labels []string) {
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\"\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func makeSeries(name string, labels []string) series {
	if len(labels)%2 != 0 {
		labels = labels[:len(labels)-1] // drop a dangling key
	}
	if len(labels) > 2 {
		// sort pairs by key for a canonical identity
		type kv struct{ k, v string }
		pairs := make([]kv, 0, len(labels)/2)
		for i := 0; i+1 < len(labels); i += 2 {
			pairs = append(pairs, kv{labels[i], labels[i+1]})
		}
		sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
		labels = labels[:0:0]
		for _, p := range pairs {
			labels = append(labels, p.k, p.v)
		}
	}
	return series{name: name, labels: labels}
}

// Registry is a named collection of metrics. The zero value is not
// usable; call NewRegistry. A nil *Registry is valid everywhere and
// hands out nil (no-op) metrics, so telemetry can be switched off by
// leaving the registry unset.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*counterSeries
	gauges    map[string]*gaugeSeries
	histories map[string]*histogramSeries
}

type counterSeries struct {
	series
	c *Counter
}

type gaugeSeries struct {
	series
	g *Gauge
}

type histogramSeries struct {
	series
	h *Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*counterSeries),
		gauges:    make(map[string]*gaugeSeries),
		histories: make(map[string]*histogramSeries),
	}
}

// Counter returns (registering on first use) the counter for name and
// the alternating key/value label pairs. nil registry → nil counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	s := makeSeries(name, labels)
	k := s.key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if cs, ok := r.counters[k]; ok {
		return cs.c
	}
	cs := &counterSeries{series: s, c: &Counter{}}
	r.counters[k] = cs
	return cs.c
}

// Gauge returns (registering on first use) the gauge for name/labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	s := makeSeries(name, labels)
	k := s.key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if gs, ok := r.gauges[k]; ok {
		return gs.g
	}
	gs := &gaugeSeries{series: s, g: &Gauge{}}
	r.gauges[k] = gs
	return gs.g
}

// Histogram returns (registering on first use) the histogram for
// name/labels with the given bucket upper bounds. Buckets are fixed at
// registration; later calls with different buckets return the existing
// histogram unchanged.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	s := makeSeries(name, labels)
	k := s.key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if hs, ok := r.histories[k]; ok {
		return hs.h
	}
	hs := &histogramSeries{series: s, h: newHistogram(buckets)}
	r.histories[k] = hs
	return hs.h
}

// LatencyHistogram is Histogram with the default latency buckets
// (seconds, 100µs…10s).
func (r *Registry) LatencyHistogram(name string, labels ...string) *Histogram {
	return r.Histogram(name, LatencyBuckets, labels...)
}

// snapshot takes the registry lock just long enough to copy the series
// lists; rendering happens outside the lock.
func (r *Registry) snapshot() (cs []*counterSeries, gs []*gaugeSeries, hs []*histogramSeries) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

// snapshotSeries returns sorted copies of all series for rendering.
func (r *Registry) snapshotLocked() (cs []*counterSeries, gs []*gaugeSeries, hs []*histogramSeries) {
	for _, c := range r.counters {
		cs = append(cs, c)
	}
	for _, g := range r.gauges {
		gs = append(gs, g)
	}
	for _, h := range r.histories {
		hs = append(hs, h)
	}
	// Sort by (name, key) so every family is contiguous: the exposition
	// emits one TYPE header per family.
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].name != cs[j].name {
			return cs[i].name < cs[j].name
		}
		return cs[i].key() < cs[j].key()
	})
	sort.Slice(gs, func(i, j int) bool {
		if gs[i].name != gs[j].name {
			return gs[i].name < gs[j].name
		}
		return gs[i].key() < gs[j].key()
	})
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].name != hs[j].name {
			return hs[i].name < hs[j].name
		}
		return hs[i].key() < hs[j].key()
	})
	return cs, gs, hs
}
