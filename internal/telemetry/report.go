package telemetry

import (
	"encoding/json"
	"io"
	"time"
)

// Report is the machine-readable run summary: every counter and gauge by
// series, and per-histogram percentiles derived from the bucket counts.
// Perf PRs diff these against a stored baseline instead of eyeballing
// log output.
type Report struct {
	GeneratedAt time.Time                  `json:"generated_at"`
	Counters    map[string]int64           `json:"counters,omitempty"`
	Gauges      map[string]int64           `json:"gauges,omitempty"`
	Histograms  map[string]HistogramReport `json:"histograms,omitempty"`
}

// HistogramReport summarizes one histogram series. Latency histograms
// are in seconds; count histograms (rounds, tree nodes) in units.
type HistogramReport struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Report snapshots the registry into a Report. nil registry → empty
// report (still marshalable).
func (r *Registry) Report() *Report {
	rep := &Report{GeneratedAt: time.Now().UTC()}
	if r == nil {
		return rep
	}
	cs, gs, hs := r.snapshot()
	if len(cs) > 0 {
		rep.Counters = make(map[string]int64, len(cs))
		for _, c := range cs {
			rep.Counters[c.key()] = c.c.Value()
		}
	}
	if len(gs) > 0 {
		rep.Gauges = make(map[string]int64, len(gs))
		for _, g := range gs {
			rep.Gauges[g.key()] = g.g.Value()
		}
	}
	if len(hs) > 0 {
		rep.Histograms = make(map[string]HistogramReport, len(hs))
		for _, h := range hs {
			snap := h.h.Snapshot()
			rep.Histograms[h.key()] = HistogramReport{
				Count: snap.Count,
				Sum:   snap.Sum,
				Mean:  snap.Mean(),
				P50:   snap.Quantile(0.50),
				P95:   snap.Quantile(0.95),
				P99:   snap.Quantile(0.99),
			}
		}
	}
	return rep
}

// WriteJSON marshals the report, indented, to w.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
