package store

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"trustvo/internal/xmldom"
)

// Read-path aliasing regression tests. Get/List/Query/ByTypeAttr used to
// return the store's live *Record — whose lazily-parsed *xmldom.Node is
// the live index the XPath queries run over — so a caller mutating a
// returned record's document (or XML field) silently corrupted the
// store for every later reader. The read path now returns defensive
// views; these tests mutate what they are handed and assert the store is
// unaffected. Against the old read path they fail.

// TestGetReturnsDefensiveCopy mutates both the XML field and the parsed
// document of a Get result.
func TestGetReturnsDefensiveCopy(t *testing.T) {
	s := New()
	const orig = `<credential type="ISOCert"><f v="1"/></credential>`
	if err := s.PutXML("cred", "a", orig); err != nil {
		t.Fatal(err)
	}
	want := mustGetXML(t, s, "cred", "a")

	rec, err := s.Get("cred", "a")
	if err != nil {
		t.Fatal(err)
	}
	rec.XML = `<poisoned/>`
	doc, err := rec.Doc()
	if err != nil {
		t.Fatal(err)
	}
	doc.SetAttr("type", "Forged")

	if got := mustGetXML(t, s, "cred", "a"); got != want {
		t.Fatalf("store mutated through a Get result:\n got: %s\nwant: %s", got, want)
	}
	// The typed index still sees the original type attribute.
	if recs := s.ByTypeAttr("cred", "ISOCert"); len(recs) != 1 {
		t.Fatalf("ByTypeAttr(ISOCert) = %d records after aliased mutation, want 1", len(recs))
	}
	if recs := s.ByTypeAttr("cred", "Forged"); len(recs) != 0 {
		t.Fatal("mutation of a returned record leaked into the type index")
	}
}

// TestListAndByTypeAttrReturnDefensiveCopies does the same through the
// bulk read paths, including a fresh reader's parse being unaffected.
func TestListAndByTypeAttrReturnDefensiveCopies(t *testing.T) {
	s := New()
	if err := s.PutXML("cred", "a", `<credential type="ISOCert"/>`); err != nil {
		t.Fatal(err)
	}
	want := mustGetXML(t, s, "cred", "a")

	for _, recs := range [][]*Record{s.List("cred"), s.ByTypeAttr("cred", "ISOCert")} {
		if len(recs) != 1 {
			t.Fatalf("read returned %d records, want 1", len(recs))
		}
		doc, err := recs[0].Doc()
		if err != nil {
			t.Fatal(err)
		}
		doc.SetAttr("type", "Forged")
		recs[0].XML = "<junk/>"
	}
	if got := mustGetXML(t, s, "cred", "a"); got != want {
		t.Fatalf("store mutated through a bulk read:\n got: %s\nwant: %s", got, want)
	}
	// A fresh read parses from the pristine XML, not the mutated DOM.
	fresh, err := s.Get("cred", "a")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := fresh.Doc()
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.AttrOr("type", ""); got != "ISOCert" {
		t.Fatalf("fresh read sees mutated document: type=%q", got)
	}
}

// TestQueryReturnsDefensiveCopies covers the XPath read path.
func TestQueryReturnsDefensiveCopies(t *testing.T) {
	s := New()
	if err := s.PutXML("cred", "a", `<credential type="ISOCert"><issuer>CA</issuer></credential>`); err != nil {
		t.Fatal(err)
	}
	recs, err := s.QueryString("cred", `//issuer[text()="CA"]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("query = %d records, want 1", len(recs))
	}
	doc, err := recs[0].Doc()
	if err != nil {
		t.Fatal(err)
	}
	doc.Child("issuer").SetAttr("forged", "yes").AppendChild(&xmldom.Node{Name: "evil"})

	again, err := s.QueryString("cred", `//issuer[@forged="yes"]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatal("mutation of a query result leaked into the queried index")
	}
}

func mustGetXML(t *testing.T, s *Store, kind, key string) string {
	t.Helper()
	rec, err := s.Get(kind, key)
	if err != nil {
		t.Fatal(err)
	}
	return rec.XML
}

// TestDestroyCloseRace is the regression test for the shutdown race:
// Destroy (and a bare Close) used to return while the committer goroutine
// could still be flushing, so Destroy could race file removal against an
// in-flight segment append or snapshot write. Close now always waits for
// the committer to exit, and Destroy additionally fences on the
// checkpoint mutex. Run under -race with writers and a checkpoint in
// flight while Destroy fires.
func TestDestroyCloseRace(t *testing.T) {
	for _, backend := range []string{BackendFSWAL, BackendDirKind} {
		backend := backend
		t.Run("backend="+backend, func(t *testing.T) {
			for iter := 0; iter < 20; iter++ {
				base := filepath.Join(t.TempDir(), "t.wal")
				s, err := OpenWithOptions(base, Options{
					Backend: backend, Durability: DurabilityGroup, SegmentSize: tortureSegmentSize,
				})
				if err != nil {
					t.Fatal(err)
				}
				var wg sync.WaitGroup
				start := make(chan struct{})
				for w := 0; w < 4; w++ {
					w := w
					wg.Add(1)
					go func() {
						defer wg.Done()
						<-start
						for i := 0; ; i++ {
							if err := s.PutXML("doc", keyFor(w, i), `<d pad="xxxxxxxxxxxxxxxx"/>`); err != nil {
								// ErrWALClosed (or poison after it) is the only
								// legal failure once Destroy has begun.
								if !errors.Is(err, ErrWALClosed) {
									t.Errorf("writer %d: %v", w, err)
								}
								return
							}
						}
					}()
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					<-start
					s.Compact() // may lose the race to Destroy; error is fine
				}()
				close(start)
				if err := s.Destroy(); err != nil {
					t.Fatalf("destroy under load: %v", err)
				}
				wg.Wait()
			}
		})
	}
}

func keyFor(w, i int) string { return string(rune('a'+w)) + "-" + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for ; i > 0; i /= 10 {
		b = append([]byte{byte('0' + i%10)}, b...)
	}
	return string(b)
}
