package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"trustvo/internal/faultinject"
)

// Snapshot file format (base + ".snap"):
//
//	magic    [4]byte  "TVS1"
//	coverSeq uint64   first segment sequence NOT covered by this snapshot
//	count    uint64   number of record frames that follow
//	crc      uint32   CRC-32 (IEEE) over the 20 header bytes above
//	frames   count standard WAL put-frames (see wal.go), one per record
//
// A snapshot is written to base+".snap.tmp", fsynced, renamed into place
// and the directory fsynced — so on disk it is either absent, the
// complete previous snapshot, or the complete new one. Unlike a log
// segment, a snapshot has no torn-tail tolerance: recovery demands
// exactly count valid frames, because the segments it summarizes are
// deleted after it lands and a partial snapshot would silently drop
// records. A snapshot that fails validation is a hard open error.

var snapMagic = [4]byte{'T', 'V', 'S', '1'}

const snapHeaderLen = 4 + 8 + 8 + 4

// writeSnapshot writes entries as the snapshot covering segments below
// coverSeq, atomically replacing any previous snapshot.
func writeSnapshot(fs faultinject.FS, base string, coverSeq uint64, entries []walEntry) error {
	tmpPath := snapshotTmpPath(base)
	f, err := fs.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("store: create snapshot tmp: %w", err)
	}
	cleanup := func(err error) error {
		f.Close()
		fs.Remove(tmpPath)
		return err
	}
	hdr := make([]byte, snapHeaderLen)
	copy(hdr[:4], snapMagic[:])
	binary.BigEndian.PutUint64(hdr[4:12], coverSeq)
	binary.BigEndian.PutUint64(hdr[12:20], uint64(len(entries)))
	binary.BigEndian.PutUint32(hdr[20:24], crc32.ChecksumIEEE(hdr[:20]))
	buf := hdr
	for _, e := range entries {
		if buf, err = appendFrame(buf, e); err != nil {
			return cleanup(err)
		}
		// Flush in chunks so a huge store does not hold its whole image
		// in one contiguous buffer.
		if len(buf) >= 1<<20 {
			if _, err := f.Write(buf); err != nil {
				return cleanup(fmt.Errorf("store: write snapshot: %w", err))
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := f.Write(buf); err != nil {
			return cleanup(fmt.Errorf("store: write snapshot: %w", err))
		}
	}
	// Durability order (do not reorder): contents fsynced before the
	// rename publishes them, directory fsynced after so the new name
	// survives a crash. Only then may the caller delete the segments this
	// snapshot covers.
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("store: sync snapshot: %w", err))
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmpPath)
		return fmt.Errorf("store: close snapshot: %w", err)
	}
	if err := fs.Rename(tmpPath, snapshotPath(base)); err != nil {
		fs.Remove(tmpPath)
		return fmt.Errorf("store: publish snapshot: %w", err)
	}
	if err := fs.SyncDir(snapshotPath(base)); err != nil {
		return fmt.Errorf("store: sync dir after snapshot: %w", err)
	}
	return nil
}

// loadSnapshot reads the snapshot for base. Returns (nil, 0, nil) when no
// snapshot exists.
func loadSnapshot(base string) ([]walEntry, uint64, error) {
	f, err := os.Open(snapshotPath(base))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("store: open snapshot: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	hdr := make([]byte, snapHeaderLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, 0, fmt.Errorf("store: snapshot header: %w", err)
	}
	if !bytes.Equal(hdr[:4], snapMagic[:]) {
		return nil, 0, fmt.Errorf("store: snapshot has bad magic")
	}
	if crc32.ChecksumIEEE(hdr[:20]) != binary.BigEndian.Uint32(hdr[20:24]) {
		return nil, 0, fmt.Errorf("store: snapshot header CRC mismatch")
	}
	coverSeq := binary.BigEndian.Uint64(hdr[4:12])
	count := binary.BigEndian.Uint64(hdr[12:20])
	entries, _, err := replayFrames(br)
	if err != nil {
		return nil, 0, err
	}
	if uint64(len(entries)) != count {
		return nil, 0, fmt.Errorf("store: snapshot truncated or corrupt: %d of %d records valid", len(entries), count)
	}
	return entries, coverSeq, nil
}
