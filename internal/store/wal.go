package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Write-ahead log framing.
//
// Each frame:
//
//	magic   [2]byte  "TV"
//	op      byte     'P' (put) | 'D' (delete)
//	kindLen uint16
//	keyLen  uint16
//	docLen  uint32
//	kind, key, doc bytes
//	crc     uint32   CRC-32 (IEEE) over everything above
//
// A frame whose bytes run past EOF or whose CRC fails marks the torn
// tail of the log: replay stops there and the file is truncated to the
// last good frame, which is the standard crash-recovery contract of a
// WAL (committed writes survive, the torn write disappears).

type walOp byte

const (
	opPut    walOp = 'P'
	opDelete walOp = 'D'
)

var walMagic = [2]byte{'T', 'V'}

type walEntry struct {
	op   walOp
	kind string
	key  string
	doc  string
}

type wal struct {
	f *os.File
}

// ErrWALClosed is returned for writes after Close.
var ErrWALClosed = errors.New("store: WAL closed")

func openWAL(path string) (*wal, []walEntry, error) {
	_, statErr := os.Stat(path)
	created := os.IsNotExist(statErr)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open WAL: %w", err)
	}
	if created {
		// Durability invariant: a file is only durably *named* once its
		// parent directory entry is fsynced. Without this, a crash
		// shortly after creating the store could leave an empty
		// directory — and every subsequent append would be fsyncing a
		// file that vanishes on recovery.
		if err := syncDir(path); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	entries, good, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Truncate a torn tail so future appends start at a frame boundary.
	if fi, err := f.Stat(); err == nil && fi.Size() > good {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: truncate torn WAL tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &wal{f: f}, entries, nil
}

// replay reads frames until EOF or corruption, returning the decoded
// entries and the offset of the end of the last good frame.
func replay(f *os.File) ([]walEntry, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	var entries []walEntry
	var good int64
	hdr := make([]byte, 2+1+2+2+4)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			// io.EOF: clean end. ErrUnexpectedEOF: torn header.
			return entries, good, nil
		}
		if hdr[0] != walMagic[0] || hdr[1] != walMagic[1] {
			return entries, good, nil // garbage: stop at last good frame
		}
		op := walOp(hdr[2])
		kindLen := binary.BigEndian.Uint16(hdr[3:5])
		keyLen := binary.BigEndian.Uint16(hdr[5:7])
		docLen := binary.BigEndian.Uint32(hdr[7:11])
		if docLen > 1<<30 {
			return entries, good, nil
		}
		body := make([]byte, int(kindLen)+int(keyLen)+int(docLen)+4)
		if _, err := io.ReadFull(f, body); err != nil {
			return entries, good, nil // torn body
		}
		crc := crc32.NewIEEE()
		crc.Write(hdr)
		payload := body[:len(body)-4]
		crc.Write(payload)
		want := binary.BigEndian.Uint32(body[len(body)-4:])
		if crc.Sum32() != want {
			return entries, good, nil // corrupted frame
		}
		if op != opPut && op != opDelete {
			return entries, good, nil
		}
		e := walEntry{
			op:   op,
			kind: string(payload[:kindLen]),
			key:  string(payload[kindLen : int(kindLen)+int(keyLen)]),
			doc:  string(payload[int(kindLen)+int(keyLen):]),
		}
		entries = append(entries, e)
		good += int64(len(hdr) + len(body))
	}
}

func encodeFrame(e walEntry) ([]byte, error) {
	if len(e.kind) > 0xFFFF || len(e.key) > 0xFFFF {
		return nil, errors.New("store: kind or key too long for WAL frame")
	}
	hdr := make([]byte, 2+1+2+2+4)
	hdr[0], hdr[1] = walMagic[0], walMagic[1]
	hdr[2] = byte(e.op)
	binary.BigEndian.PutUint16(hdr[3:5], uint16(len(e.kind)))
	binary.BigEndian.PutUint16(hdr[5:7], uint16(len(e.key)))
	binary.BigEndian.PutUint32(hdr[7:11], uint32(len(e.doc)))
	frame := make([]byte, 0, len(hdr)+len(e.kind)+len(e.key)+len(e.doc)+4)
	frame = append(frame, hdr...)
	frame = append(frame, e.kind...)
	frame = append(frame, e.key...)
	frame = append(frame, e.doc...)
	crc := crc32.ChecksumIEEE(frame)
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], crc)
	frame = append(frame, tail[:]...)
	return frame, nil
}

// append logs one frame and returns the number of bytes written.
func (w *wal) append(e walEntry) (int, error) {
	if w.f == nil {
		return 0, ErrWALClosed
	}
	frame, err := encodeFrame(e)
	if err != nil {
		return 0, err
	}
	if _, err := w.f.Write(frame); err != nil {
		return 0, fmt.Errorf("store: WAL append: %w", err)
	}
	return len(frame), nil
}

// rewrite atomically replaces the log contents with the given entries
// (used by Compact). It writes to a sibling temp file and renames over.
func (w *wal) rewrite(entries []walEntry) error {
	if w.f == nil {
		return ErrWALClosed
	}
	path := w.f.Name()
	tmp, err := os.CreateTemp(filepathDir(path), ".wal-compact-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	for _, e := range entries {
		frame, err := encodeFrame(e)
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
			return err
		}
		if _, err := tmp.Write(frame); err != nil {
			tmp.Close()
			os.Remove(tmpName)
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Durability invariant (do not remove): rename(tmp, wal) only
	// becomes durable once the parent DIRECTORY is fsynced. The tmp
	// file's own Sync above persists its *contents*; on ext4/xfs-like
	// filesystems the directory entry swap lives in the directory
	// inode, so a crash right after compaction could otherwise recover
	// to a directory pointing at the unlinked pre-compaction file — or
	// at nothing — losing the entire log.
	if err := syncDir(path); err != nil {
		return err
	}
	old := w.f
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	return old.Close()
}

// syncDir fsyncs the directory containing path, making a just-created
// or just-renamed directory entry durable. Some platforms refuse fsync
// on directories; those report a PathError we treat as "the platform
// gives no stronger guarantee" rather than a WAL failure.
func syncDir(path string) error {
	d, err := os.Open(filepathDir(path))
	if err != nil {
		return fmt.Errorf("store: open WAL dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		var pe *os.PathError
		if errors.As(err, &pe) {
			return nil
		}
		return fmt.Errorf("store: sync WAL dir: %w", err)
	}
	return nil
}

func (w *wal) sync() error {
	if w.f == nil {
		return ErrWALClosed
	}
	return w.f.Sync()
}

func (w *wal) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// filepathDir is filepath.Dir without importing path/filepath for one
// call site... actually import it; kept as a helper for clarity.
func filepathDir(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			if i == 0 {
				return "/"
			}
			return p[:i]
		}
	}
	return "."
}
