package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
)

// Write-ahead log framing, shared by log segments and snapshot bodies.
//
// Each frame:
//
//	magic   [2]byte  "TV"
//	op      byte     'P' (put) | 'D' (delete)
//	kindLen uint16
//	keyLen  uint16
//	docLen  uint32
//	kind, key, doc bytes
//	crc     uint32   CRC-32 (IEEE) over everything above
//
// A frame whose bytes run past EOF or whose CRC fails marks the torn
// tail of the log: replay stops there, which is the standard
// crash-recovery contract of a WAL (committed writes survive, the torn
// write disappears). Segments are append-only and sealed by rotation, so
// a tear can only ever sit at the tail of the newest segment that was
// active when the process died.

type walOp byte

const (
	opPut    walOp = 'P'
	opDelete walOp = 'D'
)

var walMagic = [2]byte{'T', 'V'}

const walHeaderLen = 2 + 1 + 2 + 2 + 4

type walEntry struct {
	op   walOp
	kind string
	key  string
	doc  string
}

// ErrWALClosed is returned for writes after Close.
var ErrWALClosed = errors.New("store: WAL closed")

// replayFrames decodes frames from r until EOF or the first corrupt or
// torn frame, returning the decoded entries and the offset of the end of
// the last good frame.
func replayFrames(r io.Reader) ([]walEntry, int64, error) {
	br := bufio.NewReader(r)
	var entries []walEntry
	var good int64
	hdr := make([]byte, walHeaderLen)
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			// io.EOF: clean end. ErrUnexpectedEOF: torn header.
			return entries, good, nil
		}
		if hdr[0] != walMagic[0] || hdr[1] != walMagic[1] {
			return entries, good, nil // garbage: stop at last good frame
		}
		op := walOp(hdr[2])
		kindLen := binary.BigEndian.Uint16(hdr[3:5])
		keyLen := binary.BigEndian.Uint16(hdr[5:7])
		docLen := binary.BigEndian.Uint32(hdr[7:11])
		if docLen > 1<<30 {
			return entries, good, nil
		}
		body := make([]byte, int(kindLen)+int(keyLen)+int(docLen)+4)
		if _, err := io.ReadFull(br, body); err != nil {
			return entries, good, nil // torn body
		}
		crc := crc32.NewIEEE()
		crc.Write(hdr)
		payload := body[:len(body)-4]
		crc.Write(payload)
		want := binary.BigEndian.Uint32(body[len(body)-4:])
		if crc.Sum32() != want {
			return entries, good, nil // corrupted frame
		}
		if op != opPut && op != opDelete {
			return entries, good, nil
		}
		e := walEntry{
			op:   op,
			kind: string(payload[:kindLen]),
			key:  string(payload[kindLen : int(kindLen)+int(keyLen)]),
			doc:  string(payload[int(kindLen)+int(keyLen):]),
		}
		entries = append(entries, e)
		good += int64(len(hdr) + len(body))
	}
}

// appendFrame encodes one frame onto buf and returns the extended slice.
func appendFrame(buf []byte, e walEntry) ([]byte, error) {
	if len(e.kind) > 0xFFFF || len(e.key) > 0xFFFF {
		return nil, errors.New("store: kind or key too long for WAL frame")
	}
	start := len(buf)
	var hdr [walHeaderLen]byte
	hdr[0], hdr[1] = walMagic[0], walMagic[1]
	hdr[2] = byte(e.op)
	binary.BigEndian.PutUint16(hdr[3:5], uint16(len(e.kind)))
	binary.BigEndian.PutUint16(hdr[5:7], uint16(len(e.key)))
	binary.BigEndian.PutUint32(hdr[7:11], uint32(len(e.doc)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, e.kind...)
	buf = append(buf, e.key...)
	buf = append(buf, e.doc...)
	crc := crc32.ChecksumIEEE(buf[start:])
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], crc)
	return append(buf, tail[:]...), nil
}

// encodeFrame encodes one frame as a fresh slice.
func encodeFrame(e walEntry) ([]byte, error) { return appendFrame(nil, e) }
