package store

import (
	"fmt"
	"time"
)

// Group commit. All durable mutations funnel through one committer
// goroutine: writers submit their frame and block; the committer
// coalesces everything queued into a batch, hands the batch to the
// Backend as ONE Append (which pays one write and — per policy — one
// fsync for the whole batch), and only then applies the batch to the
// in-memory maps and releases the writers. N concurrent writers
// therefore share one disk flush instead of paying one each, while
// keeping the contract that a nil return from Put/Delete means "on
// stable storage" (under DurabilityGroup and DurabilityEveryOp).
//
// The committer is also the only goroutine that calls into the backend's
// append path (Append/Sync/Rotate/Close) or touches the poison state,
// which removes a whole class of lost-handle bugs: any append-path
// failure poisons the log with a sticky error — later writes fail loudly
// instead of landing on a dead file.

type commitKind int

const (
	ckPut commitKind = iota
	ckDelete
	ckSync
	ckRotate
)

type commitReq struct {
	kind  commitKind
	entry walEntry
	rec   *Record // pre-validated record for ckPut
	done  chan commitResult
}

type commitResult struct {
	err error
	// coverSeq and entries answer a ckRotate: the backend's checkpoint
	// token (for the segmented WAL, the first segment NOT summarized by a
	// snapshot taken now) and the consistent record set as of the
	// rotation point.
	coverSeq uint64
	entries  []walEntry
}

// submit hands a request to the committer and waits for its result.
func (s *Store) submit(req commitReq) commitResult {
	s.closeMu.RLock() //lint:allow nakedlock must release before blocking on done, or Close deadlocks
	ch := s.commitCh
	if ch == nil {
		s.closeMu.RUnlock()
		return commitResult{err: ErrWALClosed}
	}
	ch <- req
	s.closeMu.RUnlock()
	return <-req.done
}

// committer is the group-commit loop. It exits when the request channel
// is closed (Store.Close), after draining every queued request. The
// channel is passed in rather than read from the struct because Close
// nils the field before closing the channel.
func (s *Store) committer(ch chan commitReq) {
	defer s.commitWG.Done()
	for {
		req, ok := <-ch
		if !ok {
			s.sealLog()
			return
		}
		s.processBatch(s.collectBatch(ch, req))
	}
}

// collectBatch gathers queued requests behind first, up to MaxBatch.
// Coalescing is primarily "natural": whatever queued while the previous
// batch was fsyncing is taken without waiting. A positive MaxDelay
// additionally holds the batch open for stragglers, trading put latency
// for fewer fsyncs.
func (s *Store) collectBatch(ch chan commitReq, first commitReq) []commitReq {
	batch := append(make([]commitReq, 0, s.opts.MaxBatch), first)
	for len(batch) < s.opts.MaxBatch {
		select {
		case r, ok := <-ch:
			if !ok {
				return batch
			}
			batch = append(batch, r)
		default:
			if s.opts.MaxDelay <= 0 || s.opts.Durability != DurabilityGroup {
				return batch
			}
			timer := time.NewTimer(s.opts.MaxDelay)
			defer timer.Stop()
			for len(batch) < s.opts.MaxBatch {
				select {
				case r, ok := <-ch:
					if !ok {
						return batch
					}
					batch = append(batch, r)
				case <-timer.C:
					return batch
				}
			}
			return batch
		}
	}
	return batch
}

// processBatch walks the batch in order. Puts and deletes accumulate and
// flush together; sync and rotate requests act as barriers (everything
// before them commits first).
func (s *Store) processBatch(batch []commitReq) {
	var pending []commitReq
	for _, r := range batch {
		switch r.kind {
		case ckPut, ckDelete:
			pending = append(pending, r)
		case ckSync:
			s.flush(pending)
			pending = nil
			r.done <- commitResult{err: s.syncActive()}
		case ckRotate:
			s.flush(pending)
			pending = nil
			r.done <- s.rotateForCheckpoint()
		}
	}
	s.flush(pending)
}

// poisonErr wraps the sticky failure for reporting.
func (s *Store) poisonErr() error {
	return fmt.Errorf("store: WAL poisoned by earlier write failure: %w", s.poison)
}

// syncActive forces the backend to stable storage on demand (Store.Sync).
func (s *Store) syncActive() error {
	if s.poison != nil {
		return s.poisonErr()
	}
	if err := s.backend.Sync(); err != nil {
		s.poison = err
		return s.poisonErr()
	}
	return nil
}

// flush commits pending mutations: under DurabilityEveryOp each op is
// written and fsynced alone (the pre-group-commit baseline, kept for the
// EXT-12 A/B); otherwise the whole group shares one write and one fsync.
func (s *Store) flush(pending []commitReq) {
	if len(pending) == 0 {
		return
	}
	if s.opts.Durability == DurabilityEveryOp {
		for _, r := range pending {
			s.flushGroup([]commitReq{r})
		}
		return
	}
	s.flushGroup(pending)
}

// flushGroup hands the group's entries to the backend as one Append
// (which writes and fsyncs per the durability policy), applies the group
// to the in-memory maps in log order, and acknowledges each writer. On
// an append failure the log is poisoned and every unacknowledged writer
// in the group gets the error — no write is ever silently dropped.
func (s *Store) flushGroup(group []commitReq) {
	if s.poison != nil {
		err := s.poisonErr()
		for _, r := range group {
			r.done <- commitResult{err: err}
		}
		return
	}
	// Resolve deletes against the committed state plus this group's own
	// earlier effects, so a delete of a missing key is rejected without
	// logging a frame (replay stays an exact record of applied changes).
	accepted := group[:0:len(group)]
	overlay := make(map[string]bool, len(group))
	batch := make([]walEntry, 0, len(group))
	for _, r := range group {
		ck := composite(r.entry.kind, r.entry.key)
		if r.kind == ckDelete {
			exists, seen := overlay[ck]
			if !seen {
				s.mu.RLock() //lint:allow nakedlock single map lookup; defer would pin the read lock per group entry
				_, exists = s.byKey[ck]
				s.mu.RUnlock()
			}
			if !exists {
				r.done <- commitResult{err: fmt.Errorf("%w: %s/%s", ErrNotFound, r.entry.kind, r.entry.key)}
				continue
			}
			overlay[ck] = false
		} else {
			overlay[ck] = true
		}
		// Reject what no backend can frame here, per writer, so Append
		// never fails on one entry and poisons the whole batch.
		if err := validateEntry(r.entry); err != nil {
			r.done <- commitResult{err: err}
			continue
		}
		batch = append(batch, r.entry)
		accepted = append(accepted, r)
	}
	if len(accepted) == 0 {
		return
	}
	if err := s.backend.Append(batch); err != nil {
		s.poison = err
		perr := s.poisonErr()
		for _, r := range accepted {
			r.done <- commitResult{err: perr}
		}
		return
	}
	m := s.met()
	m.appends.Add(int64(len(accepted)))
	m.batchSize.Observe(float64(len(accepted)))
	s.mu.Lock() //lint:allow nakedlock apply loop then ack outside the lock; no early return
	for _, r := range accepted {
		if r.kind == ckPut {
			s.applyRecord(r.rec)
		} else {
			s.applyDelete(r.entry.kind, r.entry.key)
		}
		s.gen.Add(1)
		s.kindGens[r.entry.kind]++
	}
	m.records.Set(int64(len(s.byKey)))
	s.mu.Unlock()
	// The replication gate: the batch is durable and applied locally;
	// OnCommit decides whether the writers may treat it as acknowledged.
	// A hook failure is NOT poison — the local log is intact — but every
	// writer in the batch sees the error instead of a nil ack. Observers
	// (cache invalidation) fire regardless: the local view did change.
	entries := make([]Entry, len(accepted))
	for i, r := range accepted {
		entries[i] = exportEntry(r.entry)
	}
	hookErr := s.commitHook(entries)
	for _, r := range accepted {
		r.done <- commitResult{err: hookErr}
	}
}

// commitHook invokes the OnCommit gate and then the non-gating observers
// for one committed batch (both write paths end here).
func (s *Store) commitHook(entries []Entry) error {
	var err error
	if hook := s.opts.OnCommit; hook != nil {
		err = hook(entries)
	}
	s.notifyObservers(entries)
	return err
}

// rotateForCheckpoint asks the backend to begin a checkpoint and captures
// the consistent record set at that boundary: everything the checkpoint
// token covers is exactly the returned entries, which is what makes
// snapshot + later-log replay recovery exact.
func (s *Store) rotateForCheckpoint() commitResult {
	if s.poison != nil {
		return commitResult{err: s.poisonErr()}
	}
	coverSeq, err := s.backend.Rotate()
	if err != nil {
		s.poison = err
		return commitResult{err: s.poisonErr()}
	}
	return commitResult{coverSeq: coverSeq, entries: s.liveEntries()}
}

// liveEntries captures every live record as a put frame, in sorted
// (kind, key) order for deterministic snapshots.
func (s *Store) liveEntries() []walEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries := make([]walEntry, 0, len(s.byKey))
	for _, kind := range sortedKeys(s.byKind) {
		km := s.byKind[kind]
		for _, key := range sortedKeys(km) {
			entries = append(entries, walEntry{op: opPut, kind: kind, key: key, doc: km[key].XML})
		}
	}
	return entries
}

// sealLog runs at shutdown, after the request channel has drained: flush
// the backend per policy and release its handles. Errors are reported
// through Store.Close.
func (s *Store) sealLog() {
	if s.backend == nil {
		return
	}
	if s.poison == nil && s.opts.Durability != DurabilityOS {
		if err := s.backend.Sync(); err != nil {
			s.closeErr = fmt.Errorf("store: final WAL fsync: %w", err)
		}
	}
	if err := s.backend.Close(); err != nil && s.closeErr == nil {
		s.closeErr = fmt.Errorf("store: close WAL: %w", err)
	}
}
