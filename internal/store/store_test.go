package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"trustvo/internal/xmldom"
	"trustvo/internal/xpath"
)

func el(t testing.TB, s string) *xmldom.Node {
	t.Helper()
	n, err := xmldom.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPutGetDelete(t *testing.T) {
	s := New()
	if err := s.Put("credential", "c1", el(t, `<credential type="ISO"><header/></credential>`)); err != nil {
		t.Fatal(err)
	}
	rec, err := s.Get("credential", "c1")
	if err != nil {
		t.Fatal(err)
	}
	if rec.TypeAttr() != "ISO" {
		t.Fatalf("TypeAttr = %q", rec.TypeAttr())
	}
	if err := s.Delete("credential", "c1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("credential", "c1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
	if err := s.Delete("credential", "c1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestPutValidation(t *testing.T) {
	s := New()
	doc := el(t, `<d/>`)
	if err := s.Put("", "k", doc); err == nil {
		t.Fatal("empty kind accepted")
	}
	if err := s.Put("k", "", doc); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.Put("a\x00b", "k", doc); err == nil {
		t.Fatal("NUL kind accepted")
	}
	if err := s.PutXML("k", "k", "<broken"); err == nil {
		t.Fatal("broken XML accepted")
	}
}

func TestOverwriteUpdatesTypeIndex(t *testing.T) {
	s := New()
	s.Put("c", "k", el(t, `<credential type="A"/>`))
	s.Put("c", "k", el(t, `<credential type="B"/>`))
	if got := len(s.ByTypeAttr("c", "A")); got != 0 {
		t.Fatalf("stale type index A: %d", got)
	}
	if got := len(s.ByTypeAttr("c", "B")); got != 1 {
		t.Fatalf("type index B: %d", got)
	}
	if s.Count("c") != 1 {
		t.Fatalf("Count = %d", s.Count("c"))
	}
}

func TestListSorted(t *testing.T) {
	s := New()
	for _, k := range []string{"z", "a", "m"} {
		s.Put("p", k, el(t, `<p/>`))
	}
	recs := s.List("p")
	if len(recs) != 3 || recs[0].Key != "a" || recs[2].Key != "z" {
		t.Fatalf("List order: %v", []string{recs[0].Key, recs[1].Key, recs[2].Key})
	}
	if got := s.List("missing"); len(got) != 0 {
		t.Fatalf("List of unknown kind = %d", len(got))
	}
}

func TestQueryXPath(t *testing.T) {
	s := New()
	s.PutXML("credential", "c1", `<credential type="ISO"><content><level>3</level></content></credential>`)
	s.PutXML("credential", "c2", `<credential type="ISO"><content><level>1</level></content></credential>`)
	s.PutXML("credential", "c3", `<credential type="Other"><content><level>9</level></content></credential>`)

	recs, err := s.QueryString("credential", `/credential[@type='ISO']/content/level >= 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Key != "c1" {
		t.Fatalf("query result: %+v", recs)
	}
	if _, err := s.QueryString("credential", "/["); err == nil {
		t.Fatal("bad xpath accepted")
	}
	pred := xpath.MustCompile(`//level`)
	recs, err = s.Query("credential", pred)
	if err != nil || len(recs) != 3 {
		t.Fatalf("broad query = %d, %v", len(recs), err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.PutXML("policy", "p1", `<policy type="disclosure"><resource target="R"/><properties><certificate targetCertType="T"/></properties></policy>`)
	s.PutXML("policy", "p2", `<policy type="delivery"><resource target="S"/></policy>`)
	s.Delete("policy", "p2")
	s.PutXML("policy", "p1", `<policy type="delivery"><resource target="R2"/></policy>`) // overwrite
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Count("policy") != 1 {
		t.Fatalf("replayed count = %d", re.Count("policy"))
	}
	rec, err := re.Get("policy", "p1")
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := rec.Doc()
	if doc.Child("resource").AttrOr("target", "") != "R2" {
		t.Fatalf("overwrite lost on replay: %s", rec.XML)
	}
}

// newestSegment returns the path of the highest-numbered segment file.
func newestSegment(t testing.TB, base string) string {
	t.Helper()
	refs, err := listSegments(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) == 0 {
		t.Fatal("no segments on disk")
	}
	return refs[len(refs)-1].path
}

// diskFootprint sums the sizes of every file the store owns at base.
func diskFootprint(t testing.TB, base string) int64 {
	t.Helper()
	var total int64
	paths := []string{base, snapshotPath(base)}
	refs, err := listSegments(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range refs {
		paths = append(paths, ref.path)
	}
	for _, p := range paths {
		if fi, err := os.Stat(p); err == nil {
			total += fi.Size()
		}
	}
	return total
}

func TestTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.PutXML("k", "good1", `<d n="1"/>`)
	s.PutXML("k", "good2", `<d n="2"/>`)
	s.Close()

	// simulate a crash mid-write: append a partial frame to the segment
	// that was active when the "crash" hit
	seg := newestSegment(t, path)
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{'T', 'V', 'P', 0, 3}) // header cut short
	f.Close()
	before, _ := os.Stat(seg)

	re, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	if re.Count("k") != 2 {
		t.Fatalf("count after torn tail = %d", re.Count("k"))
	}
	// torn tail was truncated
	after, _ := os.Stat(seg)
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d", before.Size(), after.Size())
	}
	// and the store keeps working
	if err := re.PutXML("k", "good3", `<d n="3"/>`); err != nil {
		t.Fatal(err)
	}
	re.Close()
	re2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Count("k") != 3 {
		t.Fatalf("post-recovery write lost: %d", re2.Count("k"))
	}
}

func TestCorruptedFrameStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.wal")
	s, _ := Open(path)
	s.PutXML("k", "a", `<d/>`)
	s.PutXML("k", "b", `<d/>`)
	s.Close()

	// flip a byte in the middle of the second frame
	seg := newestSegment(t, path)
	data, _ := os.ReadFile(seg)
	data[len(data)-6] ^= 0xFF
	os.WriteFile(seg, data, 0o644)

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Count("k") != 1 {
		t.Fatalf("replay past corruption: count = %d", re.Count("k"))
	}
}

func TestCompactShrinksLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact.wal")
	s, _ := Open(path)
	for i := 0; i < 50; i++ {
		s.PutXML("k", "same", fmt.Sprintf(`<d n="%d"/>`, i))
	}
	s.Sync()
	before := diskFootprint(t, path)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := diskFootprint(t, path)
	if after >= before {
		t.Fatalf("compact did not shrink: %d -> %d", before, after)
	}
	// the checkpoint deleted the sealed pre-compaction segments
	if refs, _ := listSegments(path); len(refs) != 1 {
		t.Fatalf("sealed segments not reclaimed: %d left", len(refs))
	}
	// post-compact writes and replay still work
	s.PutXML("k", "extra", `<d/>`)
	s.Close()
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Count("k") != 2 {
		t.Fatalf("count after compact+reopen = %d", re.Count("k"))
	}
	rec, _ := re.Get("k", "same")
	doc, _ := rec.Doc()
	if doc.AttrOr("n", "") != "49" {
		t.Fatalf("latest version lost: %s", rec.XML)
	}
}

func TestInMemoryNoWALOps(t *testing.T) {
	s := New()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Path() != "" {
		t.Fatal("in-memory path should be empty")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k-%d-%d", g, i)
				if err := s.PutXML("c", key, fmt.Sprintf(`<credential type="T%d"/>`, g)); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get("c", key); err != nil {
					t.Error(err)
					return
				}
				s.List("c")
				s.ByTypeAttr("c", fmt.Sprintf("T%d", g))
			}
		}(g)
	}
	wg.Wait()
	if s.Count("c") != 400 {
		t.Fatalf("Count = %d", s.Count("c"))
	}
}

// Property: WAL frames round-trip arbitrary kind/key/doc strings.
func TestQuickWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(keyRaw, val string) bool {
		i++
		path := filepath.Join(dir, fmt.Sprintf("q%d.wal", i))
		s, err := Open(path)
		if err != nil {
			return false
		}
		key := "k" + fmt.Sprintf("%x", keyRaw) // printable, non-empty
		doc := xmldom.NewElement("d")
		doc.AppendChild(xmldom.NewText(sanitizeXML(val)))
		if err := s.Put("kind", key, doc); err != nil {
			return false
		}
		want := doc.XML()
		s.Close()
		re, err := Open(path)
		if err != nil {
			return false
		}
		defer re.Close()
		rec, err := re.Get("kind", key)
		if err != nil {
			return false
		}
		return rec.XML == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func sanitizeXML(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r >= 0x20 && r != 0x7F && r <= 0xD7FF {
			out = append(out, r)
		}
	}
	return string(out)
}

func BenchmarkPut(b *testing.B) {
	s := New()
	doc := el(b, `<credential type="ISO"><content><level>3</level></content></credential>`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put("c", fmt.Sprintf("k%d", i), doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutWAL(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.wal")
	s, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	doc := el(b, `<credential type="ISO"><content><level>3</level></content></credential>`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put("c", fmt.Sprintf("k%d", i), doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	s := New()
	for i := 0; i < 1000; i++ {
		s.PutXML("c", fmt.Sprintf("k%d", i), `<credential type="ISO"/>`)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get("c", fmt.Sprintf("k%d", i%1000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryXPath1000(b *testing.B) {
	s := New()
	for i := 0; i < 1000; i++ {
		s.PutXML("c", fmt.Sprintf("k%d", i), fmt.Sprintf(`<credential type="T%d"><content><level>%d</level></content></credential>`, i%10, i%5))
	}
	pred := xpath.MustCompile(`/credential[@type='T3']/content/level >= 3`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query("c", pred); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkByTypeAttr1000(b *testing.B) {
	s := New()
	for i := 0; i < 1000; i++ {
		s.PutXML("c", fmt.Sprintf("k%d", i), fmt.Sprintf(`<credential type="T%d"/>`, i%10))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.ByTypeAttr("c", "T3"); len(got) != 100 {
			b.Fatalf("index result = %d", len(got))
		}
	}
}

func TestOpenDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "durable.wal")
	s, err := OpenDurable(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutXML("k", "a", `<d/>`); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k", "a"); err != nil {
		t.Fatal(err)
	}
	if err := s.PutXML("k", "b", `<d/>`); err != nil {
		t.Fatal(err)
	}
	s.Close()
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Count("k") != 1 {
		t.Fatalf("count = %d", re.Count("k"))
	}
}

func BenchmarkPutWALDurable(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench-durable.wal")
	s, err := OpenDurable(path)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	doc := el(b, `<credential type="ISO"><content><level>3</level></content></credential>`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put("c", fmt.Sprintf("k%d", i), doc); err != nil {
			b.Fatal(err)
		}
	}
}
