package store

import (
	"bytes"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"trustvo/internal/faultinject"
)

// dirBackend stores one record file per document under one directory per
// kind — the directory-per-kind durable backend:
//
//	P.d/                         backend root for a store at base path P
//	P.d/<esc(kind)>/             one directory per document kind
//	P.d/<esc(kind)>/<esc(key)>.rec    one CRC-framed put frame (wal.go)
//	P.d/<esc(kind)>/<esc(key)>.rec.tmp   in-flight write (garbage on open)
//
// A put writes the frame to the .tmp sibling, fsyncs it, renames it into
// place and fsyncs the kind directory; a delete unlinks the record and
// fsyncs the directory. The layout is therefore always compact — there is
// no log to checkpoint, Rotate/Snapshot only sweep stray tmp files — and
// an overwrite never exposes a torn record: the old file stays intact
// until the rename. Group commit coalesces the directory fsyncs: a batch
// pays one dirsync per touched kind, not one per record.
//
// Durability note vs the segmented WAL: record content is fsynced before
// the rename publishes it, but rename durability itself rides the
// directory fsync, so a crash between rename and dirsync may surface the
// in-flight (unacknowledged) record whole. Acknowledged writes — which
// have completed their dirsync — always survive. File names are
// url.PathEscape'd for path safety; the frame inside each file is the
// authoritative (kind, key), so names are only locators.
type dirBackend struct {
	dir  string
	opts Options
	fs   faultinject.FS
	met  func() *storeMetrics

	// made caches which kind directories exist. Committer-owned.
	made map[string]bool
}

const (
	dirRootSuffix = ".d"
	recSuffix     = ".rec"
	recTmpSuffix  = ".rec.tmp"
)

func newDirBackend(path string, opts Options, fs faultinject.FS, met func() *storeMetrics) (*dirBackend, error) {
	if path == "" {
		return nil, fmt.Errorf("store: %s backend requires a base path", BackendDirKind)
	}
	return &dirBackend{dir: path + dirRootSuffix, opts: opts, fs: fs, met: met, made: make(map[string]bool)}, nil
}

func (b *dirBackend) kindDir(kind string) string {
	return filepath.Join(b.dir, url.PathEscape(kind))
}

func (b *dirBackend) recPath(e walEntry) string {
	return filepath.Join(b.kindDir(e.kind), url.PathEscape(e.key)+recSuffix)
}

// syncDirOf fsyncs the directory dir (SyncDir flushes the parent of the
// path it is given).
func (b *dirBackend) syncDirOf(dir string) error {
	return b.fs.SyncDir(filepath.Join(dir, "entry"))
}

// Recover implements Backend: ensure the root exists, drop unpublished
// tmp files and damaged record files (a torn record can only be the
// single unacknowledged in-flight write, or OS-durability write-back
// loss), and apply every valid record. Reading is plain os I/O: recovery
// happens before any write is acknowledged, so it sits outside the
// crash-injection surface — but the root creation goes through the FS
// hooks so torture runs cover it.
func (b *dirBackend) Recover(apply func(entries []walEntry, source string) error) error {
	if _, err := os.Stat(b.dir); os.IsNotExist(err) {
		if err := b.fs.MkdirAll(b.dir); err != nil {
			return fmt.Errorf("store: create %s root: %w", BackendDirKind, err)
		}
		if err := b.syncDirOf(filepath.Dir(b.dir)); err != nil {
			return fmt.Errorf("store: sync parent of %s root: %w", BackendDirKind, err)
		}
		return nil
	}
	kinds, err := os.ReadDir(b.dir)
	if err != nil {
		return fmt.Errorf("store: list %s root: %w", BackendDirKind, err)
	}
	var entries []walEntry
	for _, kd := range kinds {
		if !kd.IsDir() {
			continue
		}
		kdPath := filepath.Join(b.dir, kd.Name())
		b.made[kdPath] = true
		files, err := os.ReadDir(kdPath)
		if err != nil {
			return fmt.Errorf("store: list kind dir %s: %w", kd.Name(), err)
		}
		for _, f := range files {
			p := filepath.Join(kdPath, f.Name())
			if strings.HasSuffix(f.Name(), recTmpSuffix) {
				// Unpublished in-flight write from a previous run.
				if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
					return fmt.Errorf("store: remove stale tmp %s: %w", f.Name(), err)
				}
				continue
			}
			if !strings.HasSuffix(f.Name(), recSuffix) {
				continue // not one of ours
			}
			raw, err := os.ReadFile(p)
			if err != nil {
				return fmt.Errorf("store: read record %s: %w", f.Name(), err)
			}
			recs, _, err := replayFrames(bytes.NewReader(raw))
			if err != nil || len(recs) != 1 || recs[0].op != opPut {
				// Torn or corrupt: the frame never carried an
				// acknowledged write (acks follow the fsync+dirsync), so
				// dropping it is the directory analogue of truncating a
				// torn WAL tail.
				if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
					return fmt.Errorf("store: drop damaged record %s: %w", f.Name(), err)
				}
				continue
			}
			entries = append(entries, recs[0])
		}
	}
	sortEntries(entries)
	return apply(entries, b.dir)
}

// Append implements Backend: publish each record (or removal), then pay
// one directory fsync per touched kind for the whole batch.
func (b *dirBackend) Append(batch []walEntry) error {
	durable := b.opts.Durability != DurabilityOS
	m := b.met()
	touched := make(map[string]bool, 1)
	for _, e := range batch {
		kd := b.kindDir(e.kind)
		switch e.op {
		case opPut:
			if !b.made[kd] {
				if err := b.fs.MkdirAll(kd); err != nil {
					return fmt.Errorf("store: create kind dir: %w", err)
				}
				if durable {
					if err := b.syncDirOf(b.dir); err != nil {
						return fmt.Errorf("store: sync root after kind dir: %w", err)
					}
					m.fsyncs.Inc()
				}
				b.made[kd] = true
			}
			final := b.recPath(e)
			tmp := filepath.Join(kd, url.PathEscape(e.key)+recTmpSuffix)
			frame, err := encodeFrame(e)
			if err != nil {
				return err
			}
			f, err := b.fs.Create(tmp)
			if err != nil {
				return fmt.Errorf("store: create record tmp: %w", err)
			}
			if _, err := f.Write(frame); err != nil {
				f.Close()
				return fmt.Errorf("store: write record: %w", err)
			}
			if durable {
				if err := f.Sync(); err != nil {
					f.Close()
					return fmt.Errorf("store: fsync record: %w", err)
				}
				m.fsyncs.Inc()
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("store: close record: %w", err)
			}
			if err := b.fs.Rename(tmp, final); err != nil {
				return fmt.Errorf("store: publish record: %w", err)
			}
			m.appendedBytes.Add(int64(len(frame)))
		case opDelete:
			if err := b.fs.Remove(b.recPath(e)); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("store: remove record: %w", err)
			}
		}
		touched[kd] = true
	}
	if durable {
		for kd := range touched {
			if err := b.syncDirOf(kd); err != nil {
				return fmt.Errorf("store: sync kind dir: %w", err)
			}
			m.fsyncs.Inc()
		}
	}
	return nil
}

// Sync implements Backend. Every acknowledged append is already as
// durable as the policy allows (the fsyncs happen inside Append), so
// there is nothing left to flush; under DurabilityOS the handles are
// closed and a retroactive flush is impossible — Sync is then only the
// commit barrier Store.Sync documents.
func (b *dirBackend) Sync() error { return nil }

// Rotate implements Backend: there is no log unit to seal.
func (b *dirBackend) Rotate() (uint64, error) { return 0, nil }

// Snapshot implements Backend: the layout is always compact, so a
// checkpoint only sweeps stray tmp files left by failed publishes.
func (b *dirBackend) Snapshot(uint64, []walEntry) error {
	kinds, err := os.ReadDir(b.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: checkpoint sweep: %w", err)
	}
	for _, kd := range kinds {
		if !kd.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(b.dir, kd.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if strings.HasSuffix(f.Name(), recTmpSuffix) {
				b.fs.Remove(filepath.Join(b.dir, kd.Name(), f.Name()))
			}
		}
	}
	return nil
}

// Close implements Backend: no handles survive an Append.
func (b *dirBackend) Close() error { return nil }

// Destroy implements Backend.
func (b *dirBackend) Destroy() error { return os.RemoveAll(b.dir) }

// sortEntries orders recovered entries by (kind, key) for deterministic
// replay.
func sortEntries(entries []walEntry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].kind != entries[j].kind {
			return entries[i].kind < entries[j].kind
		}
		return entries[i].key < entries[j].key
	})
}
