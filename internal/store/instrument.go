package store

import "trustvo/internal/telemetry"

// storeMetrics is the store's counter set. Every field is nil until
// Instrument is called, and nil metrics are no-ops, so uninstrumented
// stores pay nothing beyond a nil check inside each telemetry call.
type storeMetrics struct {
	appends       *telemetry.Counter // store_wal_appends_total
	appendedBytes *telemetry.Counter // store_wal_appended_bytes_total
	replayed      *telemetry.Counter // store_wal_replayed_frames_total
	compactions   *telemetry.Counter // store_wal_compactions_total
	records       *telemetry.Gauge   // store_records
}

// Instrument registers the store's WAL and record metrics in reg:
// append counts and byte totals, frames replayed at Open, compactions,
// and a live-record gauge. The replay count observed when the store was
// opened is credited immediately; the record gauge is seeded from the
// current contents. Instrumenting with a nil registry disables
// collection again.
func (s *Store) Instrument(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = storeMetrics{
		appends:       reg.Counter("store_wal_appends_total"),
		appendedBytes: reg.Counter("store_wal_appended_bytes_total"),
		replayed:      reg.Counter("store_wal_replayed_frames_total"),
		compactions:   reg.Counter("store_wal_compactions_total"),
		records:       reg.Gauge("store_records"),
	}
	s.metrics.replayed.Add(int64(s.replayedFrames))
	s.metrics.records.Set(int64(len(s.byKey)))
}
