package store

import "trustvo/internal/telemetry"

// storeMetrics is the store's counter set. Every field is nil until
// Instrument is called, and nil metrics are no-ops, so uninstrumented
// stores pay nothing beyond a nil check inside each telemetry call.
type storeMetrics struct {
	appends       *telemetry.Counter   // store_wal_appends_total
	appendedBytes *telemetry.Counter   // store_wal_appended_bytes_total
	replayed      *telemetry.Counter   // store_wal_replayed_frames_total
	compactions   *telemetry.Counter   // store_wal_compactions_total (checkpoints)
	fsyncs        *telemetry.Counter   // store_fsync_total
	rotations     *telemetry.Counter   // store_segment_rotations_total
	batchSize     *telemetry.Histogram // store_commit_batch_size
	records       *telemetry.Gauge     // store_records
}

// zeroMetrics is the shared all-nil set returned before Instrument.
var zeroMetrics storeMetrics

// met returns the active metric set (never nil; fields may be nil, which
// the telemetry calls treat as no-ops). The pointer is atomic because the
// committer goroutine records metrics outside the store mutex.
func (s *Store) met() *storeMetrics {
	if m := s.metrics.Load(); m != nil {
		return m
	}
	return &zeroMetrics
}

// Instrument registers the store's WAL and record metrics in reg: append
// counts and byte totals, frames replayed at Open, checkpoints, fsyncs,
// segment rotations, the group-commit batch-size distribution, and a
// live-record gauge. The replay count observed when the store was opened
// is credited immediately; the record gauge is seeded from the current
// contents. Instrumenting with a nil registry disables collection again.
func (s *Store) Instrument(reg *telemetry.Registry) {
	m := &storeMetrics{
		appends:       reg.Counter("store_wal_appends_total"),
		appendedBytes: reg.Counter("store_wal_appended_bytes_total"),
		replayed:      reg.Counter("store_wal_replayed_frames_total"),
		compactions:   reg.Counter("store_wal_compactions_total"),
		fsyncs:        reg.Counter("store_fsync_total"),
		rotations:     reg.Counter("store_segment_rotations_total"),
		batchSize:     reg.Histogram("store_commit_batch_size", telemetry.CountBuckets),
		records:       reg.Gauge("store_records"),
	}
	s.metrics.Store(m)
	m.replayed.Add(int64(s.replayedFrames))
	s.mu.RLock() //lint:allow nakedlock single length read to seed the gauge
	n := len(s.byKey)
	s.mu.RUnlock()
	m.records.Set(int64(n))
}
