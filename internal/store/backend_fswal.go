package store

import (
	"fmt"
	"os"

	"trustvo/internal/faultinject"
)

// fswalBackend is the crash-safe filesystem engine from PR 5 behind the
// Backend seam: a segmented write-ahead log of CRC-checked frames plus
// checkpoint snapshots (see segment.go, snapshot.go, wal.go for the
// formats). Append goes to the newest segment, Rotate seals it and opens
// the next, Snapshot writes the live set atomically and deletes sealed
// segments the image covers, and Recover is newest-snapshot + ascending
// segment replay with torn-tail truncation.
type fswalBackend struct {
	path string
	opts Options
	fs   faultinject.FS
	met  func() *storeMetrics

	// active is the segment receiving appends. Owned by the committer
	// goroutine once the store is open.
	active *activeSegment
}

// Recover implements Backend: remove a stale snapshot tmp, load the
// newest snapshot, replay the legacy v1 file when no snapshot covers it,
// then replay every segment at or above the snapshot's cover sequence.
// It finishes by creating a fresh active segment above everything seen,
// so appends never touch a file that might carry a torn tail.
func (b *fswalBackend) Recover(apply func(entries []walEntry, source string) error) error {
	// A crash mid-checkpoint may leave a half-written snapshot tmp; it
	// was never published, so it is garbage.
	if err := os.Remove(snapshotTmpPath(b.path)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: remove stale snapshot tmp: %w", err)
	}
	snapEntries, coverSeq, err := loadSnapshot(b.path)
	if err != nil {
		return err
	}
	if err := apply(snapEntries, "snapshot"); err != nil {
		return err
	}
	if coverSeq == 0 {
		legacy, err := replaySegmentFile(b.path)
		if err != nil {
			return err
		}
		if err := apply(legacy, b.path); err != nil {
			return err
		}
	}
	refs, err := listSegments(b.path)
	if err != nil {
		return err
	}
	maxSeq := coverSeq
	for _, ref := range refs {
		if ref.seq > maxSeq {
			maxSeq = ref.seq
		}
		if ref.seq < coverSeq {
			continue // summarized by the snapshot; awaiting deletion
		}
		entries, err := replaySegmentFile(ref.path)
		if err != nil {
			return err
		}
		if err := apply(entries, ref.path); err != nil {
			return err
		}
	}
	active, err := createSegment(b.fs, b.path, maxSeq+1)
	if err != nil {
		return err
	}
	b.active = active
	return nil
}

// Append implements Backend: the batch's frames share one write and —
// under a synchronous durability policy — one fsync.
func (b *fswalBackend) Append(batch []walEntry) error {
	var buf []byte
	for _, e := range batch {
		frame, err := appendFrame(buf, e)
		if err != nil {
			return err
		}
		buf = frame
	}
	// Rotate before the write when the batch would overflow the segment
	// (a batch larger than a whole segment goes into one oversized
	// segment rather than being split).
	if b.active.size > 0 && b.active.size+int64(len(buf)) > b.opts.SegmentSize {
		if err := b.rotate(); err != nil {
			return err
		}
	}
	if _, err := b.active.f.Write(buf); err != nil {
		return fmt.Errorf("store: WAL append: %w", err)
	}
	b.active.size += int64(len(buf))
	m := b.met()
	m.appendedBytes.Add(int64(len(buf)))
	if b.opts.Durability != DurabilityOS {
		if err := b.active.f.Sync(); err != nil {
			return fmt.Errorf("store: WAL fsync: %w", err)
		}
		m.fsyncs.Inc()
	}
	return nil
}

// Sync implements Backend: fsync the active segment on demand.
func (b *fswalBackend) Sync() error {
	if err := b.active.f.Sync(); err != nil {
		return err
	}
	b.met().fsyncs.Inc()
	return nil
}

// rotate seals the active segment and switches appends to the next one.
// The old handle is kept until the new segment is durably created — if
// creation fails, appends continue on the still-valid old segment and
// the error surfaces to the batch (this is the fix for the v1
// wal.rewrite bug, where a failed swap left the log writing to an
// unlinked inode while Put kept returning nil).
func (b *fswalBackend) rotate() error {
	next, err := createSegment(b.fs, b.path, b.active.seq+1)
	if err != nil {
		return err
	}
	old := b.active.f
	// Seal the outgoing segment: its bytes must be as durable as the
	// policy promises before the handle is abandoned.
	if err := old.Sync(); err != nil {
		next.f.Close()
		b.fs.Remove(segmentPath(b.path, next.seq))
		return fmt.Errorf("store: seal segment %d: %w", b.active.seq, err)
	}
	b.active = next
	b.met().rotations.Inc()
	if err := old.Close(); err != nil {
		return fmt.Errorf("store: close sealed segment: %w", err)
	}
	return nil
}

// Rotate implements Backend: everything in segments below the returned
// sequence is exactly the live set captured at this boundary, which is
// what makes snapshot + later-segment replay recovery exact.
func (b *fswalBackend) Rotate() (uint64, error) {
	if err := b.rotate(); err != nil {
		return 0, err
	}
	return b.active.seq, nil
}

// Snapshot implements Backend: write the checkpoint image covering
// segments below coverSeq (atomically published via rename), then delete
// the legacy v1 file and the sealed segments the image supersedes. Runs
// concurrently with Appends into the post-rotation segment.
func (b *fswalBackend) Snapshot(coverSeq uint64, live []walEntry) error {
	if err := writeSnapshot(b.fs, b.path, coverSeq, live); err != nil {
		return err
	}
	// The snapshot now owns everything below coverSeq: the legacy v1
	// file and sealed old segments are garbage. A failed delete is
	// retried by the next checkpoint (recovery skips them by sequence),
	// but still reported.
	var firstErr error
	if err := b.fs.Remove(b.path); err != nil && !os.IsNotExist(err) {
		firstErr = fmt.Errorf("store: remove legacy WAL: %w", err)
	}
	refs, err := listSegments(b.path)
	if err != nil {
		return err
	}
	for _, ref := range refs {
		if ref.seq >= coverSeq {
			continue
		}
		if err := b.fs.Remove(ref.path); err != nil && !os.IsNotExist(err) && firstErr == nil {
			firstErr = fmt.Errorf("store: remove sealed segment %d: %w", ref.seq, err)
		}
	}
	return firstErr
}

// Close implements Backend.
func (b *fswalBackend) Close() error {
	if b.active == nil {
		return nil
	}
	return b.active.f.Close()
}

// Destroy implements Backend.
func (b *fswalBackend) Destroy() error {
	paths := []string{b.path, snapshotPath(b.path), snapshotTmpPath(b.path)}
	if refs, err := listSegments(b.path); err == nil {
		for _, ref := range refs {
			paths = append(paths, ref.path)
		}
	}
	for _, p := range paths {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}
