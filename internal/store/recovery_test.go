package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// tornFixture builds a multi-frame segment image and its frame boundary
// offsets: boundaries[i] is the byte offset where frame i ends, so the
// state after replaying an image cut at offset c must be exactly the
// frames wholly below c.
func tornFixture(t *testing.T, n int) (pristine []byte, boundaries []int) {
	t.Helper()
	var buf []byte
	boundaries = []int{}
	for i := 0; i < n; i++ {
		var err error
		buf, err = appendFrame(buf, walEntry{op: opPut, kind: "doc", key: fmt.Sprintf("k%d", i), doc: fmt.Sprintf(`<d n="%d"/>`, i)})
		if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, len(buf))
	}
	return buf, boundaries
}

// framesBelow returns how many frames end at or before offset c.
func framesBelow(boundaries []int, c int) int {
	n := 0
	for _, b := range boundaries {
		if b <= c {
			n++
		}
	}
	return n
}

// checkRecovered opens base and asserts exactly the first want frames
// are visible, with their exact documents.
func checkRecovered(t *testing.T, base string, want int, context string) {
	t.Helper()
	s, err := Open(base)
	if err != nil {
		t.Fatalf("%s: open must never fail on a damaged tail: %v", context, err)
	}
	defer s.Close()
	if got := s.Count("doc"); got != want {
		t.Fatalf("%s: recovered %d records, want %d", context, got, want)
	}
	for i := 0; i < want; i++ {
		rec, err := s.Get("doc", fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatalf("%s: committed record k%d lost: %v", context, i, err)
		}
		if wantDoc := fmt.Sprintf(`<d n="%d"/>`, i); rec.XML != wantDoc {
			t.Fatalf("%s: k%d corrupted: %q", context, i, rec.XML)
		}
	}
}

// TestExhaustiveTornTail truncates a segment at EVERY byte offset and
// separately flips EVERY byte: recovery must always succeed and always
// yield exactly the committed prefix (frames before the damage).
func TestExhaustiveTornTail(t *testing.T) {
	pristine, boundaries := tornFixture(t, 5)

	for cut := 0; cut <= len(pristine); cut++ {
		base := filepath.Join(t.TempDir(), "t.wal")
		if err := os.WriteFile(segmentPath(base, 1), pristine[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		checkRecovered(t, base, framesBelow(boundaries, cut), fmt.Sprintf("truncate@%d", cut))
	}

	for flip := 0; flip < len(pristine); flip++ {
		base := filepath.Join(t.TempDir(), "t.wal")
		img := append([]byte(nil), pristine...)
		img[flip] ^= 0xFF
		if err := os.WriteFile(segmentPath(base, 1), img, 0o644); err != nil {
			t.Fatal(err)
		}
		// The CRC (or magic/length check) rejects the frame containing the
		// flipped byte; replay keeps everything before it and distrusts
		// everything after.
		want := framesBelow(boundaries, flip)
		checkRecovered(t, base, want, fmt.Sprintf("flip@%d", flip))
	}
}

// TestCompactConcurrentPuts checkpoints repeatedly while writers commit —
// the online-checkpoint claim, meant to run under -race. Every
// acknowledged write must survive the churn and a reopen.
func TestCompactConcurrentPuts(t *testing.T) {
	base := filepath.Join(t.TempDir(), "t.wal")
	s, err := OpenWithOptions(base, Options{Durability: DurabilityGroup, SegmentSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	counts := make([]int, writers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.PutXML("doc", fmt.Sprintf("w%d-%d", w, i), fmt.Sprintf(`<d n="%d"/>`, i)); err != nil {
					t.Errorf("writer %d: put %d: %v", w, i, err)
					return
				}
				counts[w] = i + 1
			}
		}()
	}
	for i := 0; i < 8; i++ {
		if err := s.Compact(); err != nil {
			t.Fatalf("compact %d under write load: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	total := 0
	for w, n := range counts {
		total += n
		if n == 0 {
			t.Fatalf("writer %d never committed; test proves nothing", w)
		}
		for i := 0; i < n; i++ {
			if _, err := re.Get("doc", fmt.Sprintf("w%d-%d", w, i)); err != nil {
				t.Fatalf("acked write w%d-%d lost across compaction: %v", w, i, err)
			}
		}
	}
	if got := re.Count("doc"); got < total {
		t.Fatalf("recovered %d records, acked %d", got, total)
	}
}

// TestLegacyV1Migration: a v1 single-file WAL (frames straight at the
// base path, no segments, no snapshot) must open under the v2 engine,
// and the first checkpoint must retire the legacy file.
func TestLegacyV1Migration(t *testing.T) {
	base := filepath.Join(t.TempDir(), "legacy.wal")
	var buf []byte
	for _, e := range []walEntry{
		{op: opPut, kind: "cred", key: "a", doc: `<c n="1"/>`},
		{op: opPut, kind: "cred", key: "b", doc: `<c n="2"/>`},
		{op: opPut, kind: "cred", key: "a", doc: `<c n="3"/>`}, // overwrite
		{op: opDelete, kind: "cred", key: "b"},
		{op: opPut, kind: "pol", key: "p", doc: `<p/>`},
	} {
		var err error
		if buf, err = appendFrame(buf, e); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(base, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(base)
	if err != nil {
		t.Fatalf("open v1 WAL under v2 engine: %v", err)
	}
	rec, err := s.Get("cred", "a")
	if err != nil || rec.XML != `<c n="3"/>` {
		t.Fatalf("v1 replay: a = %v, %v", rec, err)
	}
	if _, err := s.Get("cred", "b"); err == nil {
		t.Fatal("v1 replay resurrected deleted record b")
	}
	if err := s.PutXML("cred", "c", `<c n="4"/>`); err != nil {
		t.Fatalf("write to migrated store: %v", err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// The checkpoint owns the legacy file's contents now.
	if _, err := os.Stat(base); !os.IsNotExist(err) {
		t.Fatalf("legacy v1 file survived first checkpoint: %v", err)
	}
	if _, err := os.Stat(snapshotPath(base)); err != nil {
		t.Fatalf("checkpoint snapshot missing: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Count("cred") != 2 || re.Count("pol") != 1 {
		t.Fatalf("post-migration counts: cred=%d pol=%d", re.Count("cred"), re.Count("pol"))
	}
}

// TestLegacyV1TornTail: a v1 file with a torn final frame (the crash mode
// the v1 engine itself tolerated) still recovers its committed prefix.
func TestLegacyV1TornTail(t *testing.T) {
	base := filepath.Join(t.TempDir(), "legacy.wal")
	var buf []byte
	var err error
	if buf, err = appendFrame(buf, walEntry{op: opPut, kind: "doc", key: "k0", doc: `<d n="0"/>`}); err != nil {
		t.Fatal(err)
	}
	if buf, err = appendFrame(buf, walEntry{op: opPut, kind: "doc", key: "k1", doc: `<d n="1"/>`}); err != nil {
		t.Fatal(err)
	}
	buf = append(buf, walMagic[0], walMagic[1], byte(opPut), 0) // torn header
	if err := os.WriteFile(base, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	checkRecovered(t, base, 2, "legacy torn tail")
}

// TestDirKindDamagedRecords is the directory-per-kind analogue of the
// torn-tail sweeps: every byte-level truncation and every byte flip of a
// record file must leave the store openable, with the damaged record
// dropped (it can only be the unacknowledged in-flight write or
// OS-durability write-back loss) and every other record intact.
func TestDirKindDamagedRecords(t *testing.T) {
	write := func(t *testing.T, base string, n int) {
		t.Helper()
		s, err := OpenWithOptions(base, Options{Backend: BackendDirKind, Durability: DurabilityGroup})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := s.PutXML("doc", fmt.Sprintf("k%d", i), fmt.Sprintf(`<d n="%d"/>`, i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	recPathFor := func(base, key string) string {
		return filepath.Join(base+dirRootSuffix, "doc", key+recSuffix)
	}
	checkSurvivors := func(t *testing.T, base string, n, dropped int, context string) {
		t.Helper()
		s, err := OpenWithOptions(base, Options{Backend: BackendDirKind})
		if err != nil {
			t.Fatalf("%s: open must never fail on a damaged record: %v", context, err)
		}
		defer s.Close()
		if got := s.Count("doc"); got != n-1 {
			t.Fatalf("%s: recovered %d records, want %d", context, got, n-1)
		}
		for i := 0; i < n; i++ {
			rec, err := s.Get("doc", fmt.Sprintf("k%d", i))
			if i == dropped {
				if err == nil {
					t.Fatalf("%s: damaged record k%d survived with %q", context, i, rec.XML)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s: undamaged record k%d lost: %v", context, i, err)
			}
			if want := fmt.Sprintf(`<d n="%d"/>`, i); rec.XML != want {
				t.Fatalf("%s: k%d corrupted: %q", context, i, rec.XML)
			}
		}
	}

	const n, victim = 4, 2
	probe := filepath.Join(t.TempDir(), "probe.wal")
	write(t, probe, n)
	pristine, err := os.ReadFile(recPathFor(probe, fmt.Sprintf("k%d", victim)))
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut < len(pristine); cut++ {
		base := filepath.Join(t.TempDir(), "t.wal")
		write(t, base, n)
		if err := os.WriteFile(recPathFor(base, fmt.Sprintf("k%d", victim)), pristine[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		checkSurvivors(t, base, n, victim, fmt.Sprintf("truncate@%d", cut))
	}
	for flip := 0; flip < len(pristine); flip++ {
		base := filepath.Join(t.TempDir(), "t.wal")
		write(t, base, n)
		img := append([]byte(nil), pristine...)
		img[flip] ^= 0xFF
		if err := os.WriteFile(recPathFor(base, fmt.Sprintf("k%d", victim)), img, 0o644); err != nil {
			t.Fatal(err)
		}
		checkSurvivors(t, base, n, victim, fmt.Sprintf("flip@%d", flip))
	}

	// A stray .rec.tmp (in-flight publish at crash time) is swept on open.
	base := filepath.Join(t.TempDir(), "t.wal")
	write(t, base, n)
	tmp := filepath.Join(base+dirRootSuffix, "doc", "k9"+recTmpSuffix)
	if err := os.WriteFile(tmp, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenWithOptions(base, Options{Backend: BackendDirKind})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Count("doc"); got != n {
		t.Fatalf("stray tmp changed recovered count: %d, want %d", got, n)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stray tmp not swept on open: %v", err)
	}
}
