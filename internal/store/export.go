package store

import (
	"errors"
	"fmt"
	"io"
	"sort"
)

// Exported WAL-frame surface for replication (internal/cluster).
//
// The segmented log's CRC-checked frames double as a replication wire
// format: a leader streams the frames its commit path produced, and a
// follower decodes them with the same torn-tail tolerance recovery uses
// — a transfer cut mid-frame yields the good prefix, and the sender
// resumes from the receiver's applied position. Snapshot catch-up
// reuses the same frames (SnapshotEntries is the live record set as
// put-frames, exactly what checkpoint snapshots store).

// OpPut and OpDelete are the exported Entry operation codes.
const (
	OpPut    = byte(opPut)
	OpDelete = byte(opDelete)
)

// Entry is one exported WAL mutation.
type Entry struct {
	// Op is OpPut or OpDelete.
	Op byte
	// Kind and Key address the record.
	Kind string
	Key  string
	// Doc is the record XML for puts ("" for deletes).
	Doc string
}

func exportEntry(e walEntry) Entry {
	return Entry{Op: byte(e.op), Kind: e.kind, Key: e.key, Doc: e.doc}
}

func importEntry(e Entry) walEntry {
	return walEntry{op: walOp(e.Op), kind: e.Kind, key: e.Key, doc: e.Doc}
}

// EncodeEntries renders entries as a run of CRC-framed WAL bytes.
func EncodeEntries(entries []Entry) ([]byte, error) {
	var buf []byte
	for _, e := range entries {
		var err error
		if buf, err = appendFrame(buf, importEntry(e)); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeFrames decodes WAL frames from r until EOF or the first torn or
// corrupt frame, returning the decoded entries and how many bytes of
// good frames were consumed. A truncated transfer is not an error — the
// caller sees the valid prefix, the same contract crash recovery gives
// a torn segment tail.
func DecodeFrames(r io.Reader) ([]Entry, int64) {
	raw, good, _ := replayFrames(r)
	out := make([]Entry, len(raw))
	for i, e := range raw {
		out[i] = exportEntry(e)
	}
	return out, good
}

// SnapshotEntries returns every live record as a put entry in sorted
// (kind, key) order — a consistent full-state image suitable for
// follower catch-up.
func (s *Store) SnapshotEntries() []Entry {
	raw := s.liveEntries()
	out := make([]Entry, len(raw))
	for i, e := range raw {
		out[i] = exportEntry(e)
	}
	return out
}

// ApplyEntries applies replicated entries through the normal write path,
// idempotently: a put overwrites any existing record and a delete of a
// missing record is a no-op, so re-delivered frames converge instead of
// erroring.
func (s *Store) ApplyEntries(entries []Entry) error {
	for _, e := range entries {
		switch e.Op {
		case OpPut:
			if err := s.PutXML(e.Kind, e.Key, e.Doc); err != nil {
				return err
			}
		case OpDelete:
			if err := s.Delete(e.Kind, e.Key); err != nil && !errors.Is(err, ErrNotFound) {
				return err
			}
		default:
			return fmt.Errorf("store: unknown replicated op %q", e.Op)
		}
	}
	return nil
}

// Keys returns the keys of a kind, sorted (reconciliation scans).
func (s *Store) Keys(kind string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sortedKeys(s.byKind[kind])
}

// Kinds returns every kind holding at least one record, sorted.
func (s *Store) Kinds() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	kinds := make([]string, 0, len(s.byKind))
	for kind, km := range s.byKind {
		if len(km) > 0 {
			kinds = append(kinds, kind)
		}
	}
	sort.Strings(kinds)
	return kinds
}
