package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"trustvo/internal/faultinject"
)

// Segmented log layout. A store opened at base path P owns these files,
// all siblings in P's directory:
//
//	P               v1 single-file WAL (legacy; replayed as segment 0,
//	                never appended to again, removed by the first
//	                checkpoint that covers it)
//	P.snap          newest checkpoint snapshot (see snapshot.go)
//	P.snap.tmp      in-flight snapshot (ignored and removed on open)
//	P.NNNNNN.seg    log segments, NNNNNN = decimal sequence number
//
// Appends go only to the newest segment; rotation seals it and opens the
// next. Recovery = load P.snap, then replay segments with seq >= the
// snapshot's cover sequence in ascending order. Sealed segments below the
// cover sequence are garbage and deleted by Compact.

const (
	segSuffix  = ".seg"
	snapSuffix = ".snap"
	tmpSuffix  = ".snap.tmp"
)

func segmentPath(base string, seq uint64) string {
	return fmt.Sprintf("%s.%06d%s", base, seq, segSuffix)
}

func snapshotPath(base string) string    { return base + snapSuffix }
func snapshotTmpPath(base string) string { return base + tmpSuffix }

// segmentRef names one on-disk segment.
type segmentRef struct {
	seq  uint64
	path string
}

// listSegments returns the numbered segments for base, ascending by
// sequence number. The legacy v1 file is NOT included (its existence is
// checked separately; it sorts as sequence 0).
func listSegments(base string) ([]segmentRef, error) {
	dir := filepath.Dir(base)
	prefix := filepath.Base(base) + "."
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: list segments: %w", err)
	}
	var refs []segmentRef
	for _, de := range des {
		name := de.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		numPart := name[len(prefix) : len(name)-len(segSuffix)]
		seq, err := strconv.ParseUint(numPart, 10, 64)
		if err != nil || seq == 0 {
			continue // not one of ours
		}
		refs = append(refs, segmentRef{seq: seq, path: filepath.Join(dir, name)})
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].seq < refs[j].seq })
	return refs, nil
}

// activeSegment is the segment currently receiving appends. Owned by the
// committer goroutine after Open returns.
type activeSegment struct {
	f    faultinject.File
	seq  uint64
	size int64
}

// createSegment creates and durably names the segment for seq.
func createSegment(fs faultinject.FS, base string, seq uint64) (*activeSegment, error) {
	path := segmentPath(base, seq)
	f, err := fs.Create(path)
	if err != nil {
		return nil, fmt.Errorf("store: create segment %d: %w", seq, err)
	}
	// A file is only durably *named* once its parent directory entry is
	// fsynced; without this, a crash shortly after rotation could leave
	// acknowledged frames in a file recovery never finds.
	if err := fs.SyncDir(path); err != nil {
		f.Close()
		fs.Remove(path)
		return nil, fmt.Errorf("store: sync dir for segment %d: %w", seq, err)
	}
	return &activeSegment{f: f, seq: seq}, nil
}

// replaySegmentFile replays the frames of one on-disk segment (or the
// legacy v1 file) and truncates a torn tail so the file never re-tears at
// the same spot. Reading is plain os I/O: recovery happens before any
// write is acknowledged, so it sits outside the crash-injection surface.
func replaySegmentFile(path string) ([]walEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: open segment: %w", err)
	}
	defer f.Close()
	entries, good, err := replayFrames(f)
	if err != nil {
		return nil, fmt.Errorf("store: replay %s: %w", path, err)
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > good {
		if err := os.Truncate(path, good); err != nil {
			return nil, fmt.Errorf("store: truncate torn tail of %s: %w", path, err)
		}
	}
	return entries, nil
}
