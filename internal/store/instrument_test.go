package store

import (
	"path/filepath"
	"testing"

	"trustvo/internal/telemetry"
	"trustvo/internal/xmldom"
)

func TestWALCounters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "docs.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reg := telemetry.NewRegistry()
	s.Instrument(reg)

	for _, key := range []string{"a", "b", "c"} {
		doc := xmldom.NewElement("credential").SetAttr("type", "T").SetAttr("id", key)
		if err := s.Put("credentials", key, doc); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("credentials", "b"); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("store_wal_appends_total").Value(); got != 4 {
		t.Fatalf("appends = %d, want 4", got)
	}
	bytes := reg.Counter("store_wal_appended_bytes_total").Value()
	if bytes <= 0 {
		t.Fatalf("appended bytes = %d", bytes)
	}
	if got := reg.Gauge("store_records").Value(); got != 2 {
		t.Fatalf("records gauge = %d, want 2", got)
	}
	if got := reg.Counter("store_wal_compactions_total").Value(); got != 0 {
		t.Fatalf("compactions = %d before Compact", got)
	}

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("store_wal_compactions_total").Value(); got != 1 {
		t.Fatalf("compactions = %d, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// reopening replays the compacted log: two live put frames
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	reg2 := telemetry.NewRegistry()
	s2.Instrument(reg2)
	if got := reg2.Counter("store_wal_replayed_frames_total").Value(); got != 2 {
		t.Fatalf("replayed frames = %d, want 2", got)
	}
	if got := reg2.Gauge("store_records").Value(); got != 2 {
		t.Fatalf("records gauge after reopen = %d, want 2", got)
	}
}

func TestUninstrumentedStoreWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "docs.wal")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.PutXML("k", "x", `<d type="T"/>`); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k", "x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
}
