package store

import "fmt"

// Backend is the persistence engine beneath a Store. The Store owns the
// in-memory view (typed indexes, XPath queries, generation counters) and
// the group-commit choreography; a Backend owns bytes on (or off) disk.
// Extracting this seam is what lets the same negotiation-facing store run
// over the segmented filesystem WAL, a pure in-memory image (tests,
// benches, cluster followers) or a directory-per-kind record layout — and
// later over cloud object stores — without touching the committer or any
// caller.
//
// Concurrency contract: Recover is called once, before the committer
// starts. Append, Sync, Rotate and Close are called only from the
// committer goroutine, strictly serialized. Snapshot may run concurrently
// with later Appends (the online-checkpoint path): a backend that cannot
// tolerate that must do its checkpoint work inside Rotate and make
// Snapshot a no-op. Destroy is called only after Close has returned.
type Backend interface {
	// Recover rebuilds state from storage, handing batches of entries to
	// apply in commit order. source labels where a batch came from for
	// error reports.
	Recover(apply func(entries []walEntry, source string) error) error
	// Append commits one mutation batch. When the configured durability
	// demands it, the batch must be on stable storage before Append
	// returns; an error poisons the log (the committer never retries).
	Append(batch []walEntry) error
	// Sync forces every appended batch so far to stable storage
	// (Store.Sync and the final flush at Close).
	Sync() error
	// Rotate begins a checkpoint: it seals the current log unit and
	// returns an opaque token identifying the checkpoint boundary, which
	// the Store hands to Snapshot together with the live record set as of
	// this call.
	Rotate() (token uint64, err error)
	// Snapshot persists live as the checkpoint image for token and
	// garbage-collects log units the image supersedes. Backends with no
	// log to truncate may no-op.
	Snapshot(token uint64, live []walEntry) error
	// Close releases handles. The committer calls Sync first when the
	// durability policy requires it.
	Close() error
	// Destroy removes everything the backend ever wrote.
	Destroy() error
}

// Backend kind names, accepted in Options.Backend and on the tnserve /
// benchjoin command lines.
const (
	// BackendFSWAL is the default: the crash-safe segmented write-ahead
	// log with checkpoint snapshots (PR 5).
	BackendFSWAL = "fswal"
	// BackendMemory keeps nothing on disk. Writes still flow through the
	// group-commit path (batching, OnCommit gating, observers), which is
	// what cluster followers and benches want; durability is explicitly
	// none.
	BackendMemory = "memory"
	// BackendDirKind stores one CRC-framed record file per document under
	// one directory per kind, published atomically (write tmp, fsync,
	// rename, dirsync). No log, no checkpoints: the layout is always
	// compact, and a record costs one fsync to persist.
	BackendDirKind = "dirkind"
)

// BackendKinds lists the selectable backend names.
func BackendKinds() []string { return []string{BackendFSWAL, BackendMemory, BackendDirKind} }

// newBackend constructs the backend opts selects for a store at path.
func (s *Store) newBackend(path string) (Backend, error) {
	switch s.opts.Backend {
	case "", BackendFSWAL:
		return &fswalBackend{path: path, opts: s.opts, fs: s.fs, met: s.met}, nil
	case BackendMemory:
		return memBackend{}, nil
	case BackendDirKind:
		return newDirBackend(path, s.opts, s.fs, s.met)
	default:
		return nil, fmt.Errorf("store: unknown backend %q (have %v)", s.opts.Backend, BackendKinds())
	}
}

// validateEntry rejects mutations no backend can frame (the committer
// fails the one writer instead of poisoning the batch): kind and key must
// fit the uint16 length fields and the document must stay below the 1 GiB
// bound replay enforces.
func validateEntry(e walEntry) error {
	if len(e.kind) > 0xFFFF || len(e.key) > 0xFFFF {
		return fmt.Errorf("store: kind or key too long for WAL frame")
	}
	if len(e.doc) > 1<<30 {
		return fmt.Errorf("store: document too large for WAL frame")
	}
	return nil
}

// memBackend is the in-memory Backend: every method is a no-op. The
// Store's maps ARE the state; a reopen starts empty. Torture suites run
// it through the same schedules as the durable backends but exempt it
// from the durability-only assertions.
type memBackend struct{}

func (memBackend) Recover(func([]walEntry, string) error) error { return nil }
func (memBackend) Append([]walEntry) error                      { return nil }
func (memBackend) Sync() error                                  { return nil }
func (memBackend) Rotate() (uint64, error)                      { return 0, nil }
func (memBackend) Snapshot(uint64, []walEntry) error            { return nil }
func (memBackend) Close() error                                 { return nil }
func (memBackend) Destroy() error                               { return nil }
