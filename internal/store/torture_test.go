package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"trustvo/internal/faultinject"
)

// Crash-point torture harness. A fixed workload runs against a store
// whose every file operation goes through a faultinject.CrashFS; the
// harness kills the engine at EVERY file-operation index the clean run
// performs, materializes a legal post-crash disk image, reopens with the
// real filesystem and checks the two durability invariants:
//
//   - every acknowledged write survives (no lost acks), and
//   - every unacknowledged write either vanished or is the single
//     in-flight operation the crash interrupted (no phantoms).

// tortureStep is one workload action.
type tortureStep struct {
	op   string // "put", "del", "compact", "sync"
	kind string
	key  string
	doc  string
}

// tortureSchedule exercises puts, overwrites, deletes, forced segment
// rotations (via a tiny SegmentSize) and online checkpoints.
func tortureSchedule() []tortureStep {
	var steps []tortureStep
	for i := 0; i < 6; i++ {
		steps = append(steps, tortureStep{op: "put", kind: "cred", key: fmt.Sprintf("c%d", i), doc: fmt.Sprintf(`<c n="%d"/>`, i)})
	}
	steps = append(steps,
		tortureStep{op: "sync"},
		tortureStep{op: "del", kind: "cred", key: "c3"},
		tortureStep{op: "put", kind: "pol", key: "p0", doc: `<p v="0"/>`},
		tortureStep{op: "compact"},
		tortureStep{op: "put", kind: "cred", key: "c1", doc: `<c n="1" u="y"/>`}, // overwrite
		tortureStep{op: "del", kind: "cred", key: "c0"},
		tortureStep{op: "put", kind: "pol", key: "p1", doc: `<p v="1"/>`},
		tortureStep{op: "put", kind: "pol", key: "p2", doc: `<p v="2"/>`},
		tortureStep{op: "compact"},
		tortureStep{op: "put", kind: "cred", key: "c6", doc: `<c n="6"/>`},
		tortureStep{op: "del", kind: "pol", key: "p0"},
		tortureStep{op: "put", kind: "cred", key: "c7", doc: `<c n="7"/>`},
	)
	return steps
}

// tortureState is the logical store content: composite key -> doc XML.
type tortureState map[string]string

func (st tortureState) clone() tortureState {
	out := make(tortureState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

func statesEqual(a, b tortureState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// prefixStates returns the logical state after each prefix of the
// schedule's put/del operations: prefix[i] is the state once i logical
// ops have been applied. Compact and sync do not change logical state.
func prefixStates(steps []tortureStep) []tortureState {
	states := []tortureState{{}}
	cur := tortureState{}
	for _, s := range steps {
		switch s.op {
		case "put":
			cur = cur.clone()
			cur[composite(s.kind, s.key)] = s.doc
			states = append(states, cur)
		case "del":
			cur = cur.clone()
			delete(cur, composite(s.kind, s.key))
			states = append(states, cur)
		}
	}
	return states
}

// runSteps applies the schedule until the first error (the simulated
// process stops when its storage dies). It returns how many logical ops
// were acknowledged and how many were attempted (acked, or acked+1 when
// the failing step was itself a put/del whose frame may be in flight).
func runSteps(s *Store, steps []tortureStep) (acked, attempted int) {
	for _, step := range steps {
		var err error
		logical := false
		switch step.op {
		case "put":
			logical = true
			err = s.PutXML(step.kind, step.key, step.doc)
		case "del":
			logical = true
			err = s.Delete(step.kind, step.key)
		case "compact":
			err = s.Compact()
		case "sync":
			err = s.Sync()
		}
		if err != nil {
			if logical {
				return acked, acked + 1
			}
			return acked, acked
		}
		if logical {
			acked++
		}
	}
	return acked, acked
}

// storeState reads the reopened store's logical content.
func storeState(s *Store, kinds ...string) tortureState {
	out := tortureState{}
	for _, kind := range kinds {
		for _, r := range s.List(kind) {
			out[composite(r.Kind, r.Key)] = r.XML
		}
	}
	return out
}

const tortureSegmentSize = 192 // tiny: forces rotation every few frames

// backendCase describes one durable backend's torture-matrix traits.
type backendCase struct {
	backend string
	// strictKeepTail0: with the adversarial crash image (keepTail=0) the
	// recovered state must equal EXACTLY the acknowledged prefix. True for
	// fswal, whose in-flight frame lives un-fsynced in the page cache and
	// always vanishes. False for dirkind, which publishes via rename — the
	// CrashFS models rename as durable once executed, so a crash between
	// the rename and the directory fsync may legally surface the in-flight
	// (unacknowledged) record whole; both adjacent prefixes are legal.
	strictKeepTail0 bool
}

// durableBackendMatrix lists the backends that participate in the
// crash-image sweeps. BackendMemory is deliberately absent: it keeps no
// bytes on disk, so the durability-only assertions do not apply to it —
// its leg of the matrix (TestCrashTortureSweep/memory) instead checks
// that the same schedule runs cleanly and that a reopen starts empty.
func durableBackendMatrix() []backendCase {
	return []backendCase{
		{backend: BackendFSWAL, strictKeepTail0: true},
		{backend: BackendDirKind, strictKeepTail0: false},
	}
}

// countCleanOps runs the schedule with no crash point and returns the
// total file-operation count — the crash-point space to sweep.
func countCleanOps(t *testing.T, backend string, d Durability) int {
	t.Helper()
	cfs := faultinject.NewCrashFS()
	s, err := OpenWithOptions(filepath.Join(t.TempDir(), "t.wal"), Options{
		Backend: backend, Durability: d, SegmentSize: tortureSegmentSize, FS: cfs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acked, _ := runSteps(s, tortureSchedule()); acked == 0 {
		t.Fatal("clean run acknowledged nothing")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return cfs.Ops()
}

// runCrashCase kills the engine at file operation crashAt, reopens from
// the keepTail crash image and checks the durability invariants.
func runCrashCase(t *testing.T, bc backendCase, d Durability, crashAt int, keepTail float64) {
	t.Helper()
	steps := tortureSchedule()
	prefixes := prefixStates(steps)
	base := filepath.Join(t.TempDir(), "t.wal")
	cfs := faultinject.NewCrashFS()
	cfs.CrashAt = crashAt

	acked, attempted := 0, 0
	s, err := OpenWithOptions(base, Options{Backend: bc.backend, Durability: d, SegmentSize: tortureSegmentSize, FS: cfs})
	if err == nil {
		acked, attempted = runSteps(s, steps)
		s.Close() // the crash may fire here too; descriptors are released regardless
	} else if !errors.Is(err, faultinject.ErrCrashed) {
		t.Fatalf("crashAt=%d: open failed with non-crash error: %v", crashAt, err)
	}
	if err := cfs.CrashImage(keepTail); err != nil {
		t.Fatal(err)
	}

	re, err := OpenWithOptions(base, Options{Backend: bc.backend})
	if err != nil {
		t.Fatalf("crashAt=%d keepTail=%v: reopen after crash: %v", crashAt, keepTail, err)
	}
	defer re.Close()
	got := storeState(re, "cred", "pol")

	want := prefixes[acked]
	if keepTail == 0 && bc.strictKeepTail0 {
		// Adversarial image: exactly the acknowledged state — acked writes
		// survived, the in-flight one (never fsynced) vanished.
		if !statesEqual(got, want) {
			t.Fatalf("crashAt=%d keepTail=0 (backend=%s durability=%d): state diverged\n got: %v\nwant: %v",
				crashAt, bc.backend, d, got, want)
		}
		return
	}
	// Lucky write-back (or a rename-publishing backend): the in-flight
	// (unacknowledged) operation may also have reached disk whole, or its
	// frame may be torn and discarded. Both adjacent prefix states are
	// legal; anything else is corruption.
	if statesEqual(got, want) {
		return
	}
	if attempted > acked && statesEqual(got, prefixes[attempted]) {
		return
	}
	t.Fatalf("crashAt=%d keepTail=%v (backend=%s durability=%d): state matches no legal prefix\n   got: %v\n acked: %v",
		crashAt, keepTail, bc.backend, d, got, want)
}

func TestCrashTortureSweep(t *testing.T) {
	for _, bc := range durableBackendMatrix() {
		bc := bc
		for _, d := range []Durability{DurabilityGroup, DurabilityEveryOp} {
			d := d
			t.Run(fmt.Sprintf("backend=%s/durability=%d", bc.backend, d), func(t *testing.T) {
				ops := countCleanOps(t, bc.backend, d)
				if ops < 40 {
					t.Fatalf("schedule too small to be interesting: %d file ops", ops)
				}
				stride := 1
				if testing.Short() {
					stride = 5
				}
				for crashAt := 1; crashAt <= ops; crashAt += stride {
					runCrashCase(t, bc, d, crashAt, 0)
					runCrashCase(t, bc, d, crashAt, 1)
					if crashAt%5 == 0 {
						// Partial write-back: tears the in-flight frame.
						runCrashCase(t, bc, d, crashAt, 0.5)
					}
				}
			})
		}
	}

	// The memory backend's leg: EXEMPT from the durability-only
	// assertions above (it keeps nothing on disk by design). The same
	// schedule must still run cleanly through the full group-commit
	// machinery, the live state must match the schedule, and a "reopen"
	// of the same path must start empty — memory loss is the contract,
	// not a bug.
	t.Run("backend=memory", func(t *testing.T) {
		steps := tortureSchedule()
		prefixes := prefixStates(steps)
		base := filepath.Join(t.TempDir(), "t.wal")
		s, err := OpenWithOptions(base, Options{Backend: BackendMemory, Durability: DurabilityGroup})
		if err != nil {
			t.Fatal(err)
		}
		acked, attempted := runSteps(s, steps)
		if acked != attempted || acked != len(prefixes)-1 {
			t.Fatalf("memory backend rejected schedule ops: acked=%d attempted=%d", acked, attempted)
		}
		if got := storeState(s, "cred", "pol"); !statesEqual(got, prefixes[acked]) {
			t.Fatalf("live state diverged\n got: %v\nwant: %v", got, prefixes[acked])
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := OpenWithOptions(base, Options{Backend: BackendMemory})
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		if got := storeState(re, "cred", "pol"); len(got) != 0 {
			t.Fatalf("memory backend persisted %d records across reopen", len(got))
		}
	})
}

// TestCrashTortureConcurrent crashes the engine under concurrent group
// committers, once per durable backend. Keys are distinct per write, so
// the invariants are set-shaped: every acknowledged key survives with its
// exact document, and every recovered key is one the workload actually
// wrote.
func TestCrashTortureConcurrent(t *testing.T) {
	for _, bc := range durableBackendMatrix() {
		bc := bc
		t.Run("backend="+bc.backend, func(t *testing.T) { runConcurrentTorture(t, bc.backend) })
	}
}

func runConcurrentTorture(t *testing.T, backend string) {
	const writers, perWriter = 8, 6
	// Attributes in canonical (sorted) order so the stored XML round-trips
	// byte-identical through the serializer.
	docFor := func(w, i int) string { return fmt.Sprintf(`<d i="%d" w="%d"/>`, i, w) }

	// Learn the clean run's op count once (approximate — concurrency makes
	// it vary slightly, which only shifts where the sampled points land).
	cleanFS := faultinject.NewCrashFS()
	clean, err := OpenWithOptions(filepath.Join(t.TempDir(), "c.wal"), Options{
		Backend: backend, Durability: DurabilityGroup, SegmentSize: tortureSegmentSize, FS: cleanFS,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				clean.PutXML("doc", fmt.Sprintf("w%d-%d", w, i), docFor(w, i))
			}
		}()
	}
	wg.Wait()
	clean.Close()
	totalOps := cleanFS.Ops()

	for crashAt := 2; crashAt <= totalOps; crashAt += 3 {
		base := filepath.Join(t.TempDir(), "t.wal")
		cfs := faultinject.NewCrashFS()
		cfs.CrashAt = crashAt
		s, err := OpenWithOptions(base, Options{Backend: backend, Durability: DurabilityGroup, SegmentSize: tortureSegmentSize, FS: cfs})
		if err != nil {
			if errors.Is(err, faultinject.ErrCrashed) {
				continue
			}
			t.Fatal(err)
		}
		var mu sync.Mutex
		ackedKeys := map[string]string{}
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					key := fmt.Sprintf("w%d-%d", w, i)
					if err := s.PutXML("doc", key, docFor(w, i)); err != nil {
						return // storage died; this writer stops
					}
					mu.Lock()
					ackedKeys[key] = docFor(w, i)
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		s.Close()
		if err := cfs.CrashImage(0); err != nil {
			t.Fatal(err)
		}

		re, err := OpenWithOptions(base, Options{Backend: backend})
		if err != nil {
			t.Fatalf("crashAt=%d: reopen: %v", crashAt, err)
		}
		got := storeState(re, "doc")
		re.Close()
		for key, doc := range ackedKeys {
			if got[composite("doc", key)] != doc {
				t.Fatalf("crashAt=%d: acknowledged write %s lost or corrupt (got %q)",
					crashAt, key, got[composite("doc", key)])
			}
		}
		for ck, doc := range got {
			_, key, _ := strings.Cut(ck, "\x00")
			var w, i int
			if _, err := fmt.Sscanf(key, "w%d-%d", &w, &i); err != nil {
				t.Fatalf("crashAt=%d: phantom key %q", crashAt, key)
			}
			if doc != docFor(w, i) {
				t.Fatalf("crashAt=%d: key %s recovered with wrong doc %q", crashAt, key, doc)
			}
		}
	}
}

// TestRotateFailurePoisonsLog is the regression test for the v1
// wal.rewrite bug: when switching segments fails, the engine must fail
// the write loudly and stay failed — never keep acknowledging writes
// against a dead or unlinked file.
func TestRotateFailurePoisonsLog(t *testing.T) {
	base := filepath.Join(t.TempDir(), "t.wal")
	cfs := faultinject.NewCrashFS()
	boom := errors.New("disk full")
	armed := false
	cfs.Hook = func(op faultinject.Op) error {
		if armed && op.Kind == "create" && strings.HasSuffix(op.Path, segSuffix) {
			return boom
		}
		return nil
	}
	s, err := OpenWithOptions(base, Options{Durability: DurabilityGroup, SegmentSize: tortureSegmentSize, FS: cfs})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutXML("k", "before", `<d n="0"/>`); err != nil {
		t.Fatal(err)
	}
	armed = true // next segment creation (the rotation) fails
	var putErr error
	for i := 0; i < 32 && putErr == nil; i++ {
		putErr = s.PutXML("k", fmt.Sprintf("fill%d", i), `<d pad="xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"/>`)
	}
	if !errors.Is(putErr, boom) {
		t.Fatalf("put across failed rotation: err = %v, want wrapped %v", putErr, boom)
	}
	// The failure is sticky: no later write may be silently acknowledged.
	if err := s.PutXML("k", "after", `<d/>`); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("put after poison: err = %v, want sticky poison error", err)
	}
	if err := s.Sync(); err == nil {
		t.Fatal("sync after poison: err = nil")
	}
	s.Close()

	// Everything acknowledged before the failure is still recoverable.
	re, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := re.Get("k", "before"); err != nil {
		t.Fatalf("acked pre-failure write lost: %v", err)
	}
	if _, err := re.Get("k", "after"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rejected write resurrected: %v", err)
	}
}

// TestSnapshotFailureLeavesStoreUsable: a failed checkpoint is reported
// but must not poison the log — the segments it would have replaced are
// still intact, so writes keep committing and recovery still works.
func TestSnapshotFailureLeavesStoreUsable(t *testing.T) {
	base := filepath.Join(t.TempDir(), "t.wal")
	cfs := faultinject.NewCrashFS()
	boom := errors.New("rename refused")
	cfs.Hook = func(op faultinject.Op) error {
		if op.Kind == "rename" && strings.HasSuffix(op.Path, tmpSuffix) {
			return boom
		}
		return nil
	}
	s, err := OpenWithOptions(base, Options{Durability: DurabilityGroup, FS: cfs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.PutXML("k", fmt.Sprintf("r%d", i), `<d/>`); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); !errors.Is(err, boom) {
		t.Fatalf("compact with failing snapshot publish: err = %v, want wrapped %v", err, boom)
	}
	// The failed snapshot's tmp file was cleaned up and no snapshot exists.
	if _, err := os.Stat(snapshotTmpPath(base)); !os.IsNotExist(err) {
		t.Fatalf("stale snapshot tmp left behind: %v", err)
	}
	if _, err := os.Stat(snapshotPath(base)); !os.IsNotExist(err) {
		t.Fatalf("snapshot published despite failed rename: %v", err)
	}
	// The store is NOT poisoned: writes continue and everything recovers.
	if err := s.PutXML("k", "post", `<d/>`); err != nil {
		t.Fatalf("put after failed compact: %v", err)
	}
	s.Close()
	re, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Count("k") != 6 {
		t.Fatalf("count after failed compact + reopen = %d, want 6", re.Count("k"))
	}
}
