// Package cacher layers a request-coalescing read-through TTL cache over
// a *store.Store. It exists for the hot reads of a trust-negotiation
// server — party profiles, disclosure policies, ontologies — where many
// concurrent sessions ask for the same records: with singleflight
// semantics, N concurrent readers of one key share ONE store fetch
// (O(keys) instead of O(requests) backend load, the coalescing argument
// GEM makes for distributed goal evaluation), and a fill is parsed once
// so every consumer gets a ready DOM.
//
// Consistency comes from three cooperating mechanisms:
//
//   - invalidation: the cache registers a store.Observe listener, so every
//     committed batch — including cluster replication applies, which go
//     through the normal write path — drops the affected kinds' entries
//     before the writer is even acknowledged to the replication gate's
//     caller. A fill that was in flight when the invalidation arrived is
//     delivered to the readers already waiting on it (they raced the
//     write and may see either side) but is NOT installed: a stale fill
//     always loses to a newer invalidation.
//   - generation check: each entry records store.KindGeneration for its
//     kind at fill time and a hit revalidates it with one counter read,
//     so even a hypothetically missed invalidation cannot serve a record
//     from before a committed write.
//   - TTL: entries expire after a configurable age, bounding memory and
//     acting as the outermost safety net. An expired hit refetches;
//     concurrent readers at the expiry edge coalesce onto the refetch.
//
// The returned records are shared between all consumers of a fill and
// must be treated as read-only — including their parsed documents. The
// store's own read path hands out defensive copies precisely so that a
// mutating caller cannot corrupt it; the cache trades that isolation for
// zero-copy hits and documents the contract instead.
package cacher

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"trustvo/internal/store"
	"trustvo/internal/telemetry"
)

// Cache is a read-through singleflight cache over one store. Safe for
// concurrent use. The zero value is not usable; call New.
type Cache struct {
	db  *store.Store
	ttl time.Duration

	// now is the clock (replaced in tests to drive expiry).
	now func() time.Time

	mu      sync.Mutex
	entries map[string]*entry

	hits          atomic.Uint64
	misses        atomic.Uint64
	coalesced     atomic.Uint64
	invalidations atomic.Uint64

	metrics atomic.Pointer[cacheMetrics]
}

// entry is one cache slot: in flight until ready is closed, then filled.
type entry struct {
	kind string

	ready chan struct{} // closed when the fill completes

	// Everything below is written once by the filling goroutine before
	// ready is closed, and only read afterwards.
	recs    []*store.Record
	err     error
	gen     uint64
	expires time.Time
}

// DefaultTTL is the TTL applied when New is given a non-positive one.
const DefaultTTL = time.Second

// New builds a cache over db and registers its invalidation listener.
// A cache is permanently attached to its store (store observers cannot
// be removed); create it once per store, next to Open.
func New(db *store.Store, ttl time.Duration) *Cache {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	c := &Cache{
		db:      db,
		ttl:     ttl,
		now:     time.Now,
		entries: make(map[string]*entry),
	}
	db.Observe(c.onCommit)
	return c
}

// onCommit is the store.Observe listener: drop every entry of a kind the
// batch touched. Removing an in-flight entry detaches its fill — the
// readers already waiting on it are served, but the fill is never
// consulted by a later lookup.
func (c *Cache) onCommit(entries []store.Entry) {
	kinds := make(map[string]bool, 1)
	for _, e := range entries {
		kinds[e.Kind] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, e := range c.entries {
		if kinds[e.kind] {
			delete(c.entries, key)
			c.invalidations.Add(1)
			c.met().invalidations.Inc()
		}
	}
}

// Invalidate drops every cached entry (all kinds). Mostly for tests and
// operational resets; normal invalidation is automatic via the store's
// commit feed.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key := range c.entries {
		delete(c.entries, key)
		c.invalidations.Add(1)
		c.met().invalidations.Inc()
	}
}

const (
	opGet  = "g"
	opList = "l"
)

func slotKey(op, kind, key string) string { return op + "\x00" + kind + "\x00" + key }

// lookup implements the singleflight read-through protocol for one slot.
// fetch runs at most once per concurrent group, outside every lock.
func (c *Cache) lookup(slot, kind string, fetch func() ([]*store.Record, error)) ([]*store.Record, error) {
	c.mu.Lock() //lint:allow nakedlock every branch unlocks before blocking on the fill
	if e, ok := c.entries[slot]; ok {
		select {
		case <-e.ready:
			// Filled: a hit must still be younger than the TTL and the
			// kind's current generation (one counter read).
			if c.now().Before(e.expires) && c.db.KindGeneration(kind) == e.gen {
				c.mu.Unlock()
				c.hits.Add(1)
				c.met().hits.Inc()
				return e.recs, e.err
			}
			// Expired or superseded: this goroutine becomes the refetcher;
			// concurrent readers arriving behind it coalesce onto the
			// fresh in-flight entry it installs below (no dogpile at the
			// TTL edge).
			delete(c.entries, slot)
		default:
			// In flight: wait for the filler. The fill observed a state no
			// older than this reader's arrival, so sharing it is
			// linearizable even if the entry is invalidated while we wait
			// (the reader raced the write).
			c.mu.Unlock()
			c.coalesced.Add(1)
			c.met().coalesced.Inc()
			<-e.ready
			return e.recs, e.err
		}
	}
	e := &entry{kind: kind, ready: make(chan struct{})}
	c.entries[slot] = e
	c.mu.Unlock()

	// Yield between publishing the in-flight entry and running the fetch:
	// readers that arrived together with this one get to register on the
	// fill (the whole point of singleflight) instead of serializing behind
	// it, which is otherwise what happens on a saturated or single-P
	// scheduler where a CPU-bound fetch is never preempted.
	runtime.Gosched()

	c.misses.Add(1)
	c.met().misses.Inc()
	// Order matters: read the generation BEFORE the fetch. If a write
	// commits in between, the recorded generation is outdated and the
	// next hit's revalidation refetches — fail-safe, never stale.
	e.gen = c.db.KindGeneration(kind)
	e.recs, e.err = fetch()
	e.expires = c.now().Add(c.ttl)

	// An invalidation that arrived while the fetch ran removed the slot
	// (or a later reader already installed a fresh entry in it): the fill
	// is delivered to the waiters coalesced on it, but stays uncached — a
	// stale fill loses to a newer invalidation. Nothing to do here: the
	// slot is only still ours if no invalidation fired.
	close(e.ready)
	return e.recs, e.err
}

// Get is a read-through store.Get. The record is shared — read-only.
func (c *Cache) Get(kind, key string) (*store.Record, error) {
	recs, err := c.lookup(slotKey(opGet, kind, key), kind, func() ([]*store.Record, error) {
		rec, err := c.db.Get(kind, key)
		if err != nil {
			return nil, err
		}
		// Parse once on the filling goroutine: consumers share the record,
		// and Record.Doc memoizes, so a pre-parsed fill is safe to read
		// concurrently while an unparsed one would be a data race.
		if _, err := rec.Doc(); err != nil {
			return nil, err
		}
		return []*store.Record{rec}, nil
	})
	if err != nil {
		return nil, err
	}
	return recs[0], nil
}

// List is a read-through store.List. The records are shared — read-only.
func (c *Cache) List(kind string) []*store.Record {
	recs, _ := c.lookup(slotKey(opList, kind, ""), kind, func() ([]*store.Record, error) {
		recs := c.db.List(kind)
		for _, r := range recs {
			if _, err := r.Doc(); err != nil {
				// Skip pre-parsing the unparsable record; a consumer that
				// needs its DOM sees the same error from Doc.
				continue
			}
		}
		return recs, nil
	})
	return recs
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits served from a filled entry; Misses ran the store fetch;
	// Coalesced waited on another reader's in-flight fetch instead of
	// running their own; Invalidations dropped entries on commits.
	Hits, Misses, Coalesced, Invalidations uint64
}

// Stats returns the current counter values.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Coalesced:     c.coalesced.Load(),
		Invalidations: c.invalidations.Load(),
	}
}

// Len returns how many slots are currently cached or in flight.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// cacheMetrics is the telemetry counter set (nil-safe, like the store's).
type cacheMetrics struct {
	hits          *telemetry.Counter // store_cache_hits_total
	misses        *telemetry.Counter // store_cache_misses_total
	coalesced     *telemetry.Counter // store_cache_coalesced_total
	invalidations *telemetry.Counter // store_cache_invalidations_total
}

var zeroMetrics cacheMetrics

func (c *Cache) met() *cacheMetrics {
	if m := c.metrics.Load(); m != nil {
		return m
	}
	return &zeroMetrics
}

// Instrument registers the cache counters in reg: hits, misses, coalesced
// waits and invalidations.
func (c *Cache) Instrument(reg *telemetry.Registry) {
	c.metrics.Store(&cacheMetrics{
		hits:          reg.Counter("store_cache_hits_total"),
		misses:        reg.Counter("store_cache_misses_total"),
		coalesced:     reg.Counter("store_cache_coalesced_total"),
		invalidations: reg.Counter("store_cache_invalidations_total"),
	})
}
