package cacher

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trustvo/internal/store"
	"trustvo/internal/telemetry"
)

func doc(i int) string {
	return fmt.Sprintf(`<credential type="t%d"><field name="v">%d</field></credential>`, i%3, i)
}

func newCachedStore(t *testing.T, ttl time.Duration) (*store.Store, *Cache) {
	t.Helper()
	db := store.New()
	return db, New(db, ttl)
}

func TestGetReadThrough(t *testing.T) {
	db, c := newCachedStore(t, time.Minute)
	if err := db.PutXML("credential", "a", doc(1)); err != nil {
		t.Fatal(err)
	}
	r1, err := c.Get("credential", "a")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Get("credential", "a")
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("second Get did not serve the cached record")
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit 1 miss", st)
	}
	if _, err := c.Get("credential", "missing"); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("missing key error = %v, want ErrNotFound", err)
	}
}

func TestInvalidationOnWrite(t *testing.T) {
	db, c := newCachedStore(t, time.Minute)
	if err := db.PutXML("credential", "a", doc(1)); err != nil {
		t.Fatal(err)
	}
	before, err := c.Get("credential", "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.PutXML("credential", "a", doc(2)); err != nil {
		t.Fatal(err)
	}
	after, err := c.Get("credential", "a")
	if err != nil {
		t.Fatal(err)
	}
	if after == before || after.XML == before.XML {
		t.Error("Get after a write served the pre-write record")
	}
	if st := c.Stats(); st.Invalidations == 0 {
		t.Error("commit did not invalidate")
	}
}

// TestInvalidationScopedByKind: a write to one kind must not drop cached
// entries of other kinds.
func TestInvalidationScopedByKind(t *testing.T) {
	db, c := newCachedStore(t, time.Minute)
	if err := db.PutXML("credential", "a", doc(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("credential", "a"); err != nil {
		t.Fatal(err)
	}
	if err := db.PutXML("resume", "r1", doc(9)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("credential", "a"); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits != 1 {
		t.Errorf("hits = %d, want 1 (unrelated-kind write must not invalidate)", st.Hits)
	}
	if st.Invalidations != 0 {
		t.Errorf("invalidations = %d, want 0", st.Invalidations)
	}
}

func TestListReadThroughAndExpiry(t *testing.T) {
	db, c := newCachedStore(t, time.Minute)
	now := time.Now()
	var clock atomic.Int64 // seconds offset
	c.now = func() time.Time { return now.Add(time.Duration(clock.Load()) * time.Second) }
	for i := 0; i < 4; i++ {
		if err := db.PutXML("policy", fmt.Sprintf("p%d", i), doc(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(c.List("policy")); got != 4 {
		t.Fatalf("List = %d records, want 4", got)
	}
	c.List("policy")
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit 1 miss", st)
	}
	clock.Store(int64(2 * time.Minute / time.Second))
	c.List("policy")
	if st := c.Stats(); st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (TTL expiry must refetch)", st.Misses)
	}
}

// TestSingleflightCoalescing: N concurrent readers of one cold key share
// one store fetch.
func TestSingleflightCoalescing(t *testing.T) {
	db, c := newCachedStore(t, time.Minute)
	if err := db.PutXML("credential", "hot", doc(1)); err != nil {
		t.Fatal(err)
	}
	const readers = 32
	var (
		start = make(chan struct{})
		wg    sync.WaitGroup
	)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := c.Get("credential", "hot"); err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses+st.Coalesced != readers {
		t.Errorf("stats %+v do not account for %d readers", st, readers)
	}
	// Every reader that did not hit an already-filled entry must have
	// either run THE fetch or coalesced onto it: with one key there can
	// be at most one miss.
	if st.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 for one cold key", st.Misses)
	}
}

// TestStaleFillLosesToInvalidation pins the ordering contract: a fetch
// that was in flight when a write committed must not be installed, so
// the first read AFTER the write refetches and sees the new value.
func TestStaleFillLosesToInvalidation(t *testing.T) {
	db := store.New()
	c := New(db, time.Minute)
	if err := db.PutXML("credential", "a", doc(1)); err != nil {
		t.Fatal(err)
	}

	// Start a fill and hold it mid-flight: the fetch reads the store,
	// then blocks before installing, while a write commits.
	fetchStarted := make(chan struct{})
	writeDone := make(chan struct{})
	var once sync.Once
	slot := slotKey(opGet, "credential", "a")
	fillResult := make(chan *store.Record, 1)
	go func() {
		recs, err := c.lookup(slot, "credential", func() ([]*store.Record, error) {
			rec, err := db.Get("credential", "a")
			if err != nil {
				return nil, err
			}
			once.Do(func() {
				close(fetchStarted)
				<-writeDone // invalidation lands while this fill is in flight
			})
			return []*store.Record{rec}, nil
		})
		if err != nil {
			t.Error(err)
		}
		fillResult <- recs[0]
	}()
	<-fetchStarted
	if err := db.PutXML("credential", "a", doc(2)); err != nil {
		t.Fatal(err)
	}
	close(writeDone)

	// The in-flight reader gets the value it raced for (the old one).
	got := <-fillResult
	if got.XML != mustXML(t, doc(1)) {
		t.Errorf("in-flight reader saw %q, want the pre-write record", got.XML)
	}
	// A reader arriving after the write must NOT see the stale fill.
	after, err := c.Get("credential", "a")
	if err != nil {
		t.Fatal(err)
	}
	if after.XML != mustXML(t, doc(2)) {
		t.Errorf("post-write Get = %q, want the new record (stale fill must lose)", after.XML)
	}
	st := c.Stats()
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (stale fill must not be cached)", st.Misses)
	}
}

// mustXML canonicalizes a document the way the store does (Put stores
// doc.XML(), not the input string).
func mustXML(t *testing.T, raw string) string {
	t.Helper()
	db := store.New()
	if err := db.PutXML("k", "k", raw); err != nil {
		t.Fatal(err)
	}
	rec, err := db.Get("k", "k")
	if err != nil {
		t.Fatal(err)
	}
	return rec.XML
}

// TestConcurrentGetInvalidateExpiry is the race-enabled soak: readers,
// writers (driving invalidations) and an expiring clock all running
// against one hot key plus a rotating cold set. The assertions are the
// cache's safety net: no reader ever errors, and every read returns
// either the current value or one that was current during the read.
func TestConcurrentGetInvalidateExpiry(t *testing.T) {
	db := store.New()
	c := New(db, time.Minute)
	base := time.Now()
	var fakeNow atomic.Int64
	c.now = func() time.Time { return base.Add(time.Duration(fakeNow.Load())) }

	if err := db.PutXML("credential", "hot", doc(0)); err != nil {
		t.Fatal(err)
	}
	var (
		stop    = make(chan struct{})
		wg      sync.WaitGroup
		version atomic.Int64
	)
	// Writer: bumps the hot key (each write invalidates).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			version.Store(int64(i))
			if err := db.PutXML("credential", "hot", doc(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Clock driver: jumps time past the TTL repeatedly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				fakeNow.Add(int64(2 * time.Minute))
			}
		}
	}()
	// Readers on the hot key: must never error and never read a version
	// older than one that was already committed when the read STARTED.
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				floor := version.Load() // committed before this read started? not necessarily — see below
				rec, err := c.Get("credential", "hot")
				if err != nil {
					t.Errorf("hot Get: %v", err)
					return
				}
				// floor was read before the Get, but the writer may have
				// been mid-Put of floor when we sampled it; floor-1 is
				// the newest version guaranteed committed. Anything older
				// than that is a staleness violation.
				var got int
				if _, err := fmt.Sscanf(rec.TypeAttr(), "t%d", &got); err != nil {
					t.Errorf("unparsable record type %q", rec.TypeAttr())
					return
				}
				var v int
				fmt.Sscanf(findField(rec), "%d", &v)
				if int64(v) < floor-1 {
					t.Errorf("read version %d, floor was %d: stale beyond the race window", v, floor)
					return
				}
			}
		}()
	}
	// Cold-set readers keep the map churning alongside the invalidator.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("cold-%d-%d", r, i%5)
				if err := db.PutXML("policy", key, doc(i)); err != nil {
					t.Error(err)
					return
				}
				c.List("policy")
			}
		}(r)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	st := c.Stats()
	if st.Misses == 0 || st.Invalidations == 0 {
		t.Errorf("soak exercised nothing: %+v", st)
	}
	t.Logf("soak stats: %+v", st)
}

// findField extracts the <field name="v"> text of a cached record.
func findField(rec *store.Record) string {
	d, err := rec.Doc()
	if err != nil {
		return ""
	}
	f := d.Child("field")
	if f == nil {
		return ""
	}
	return f.Text()
}

func TestInstrument(t *testing.T) {
	db, c := newCachedStore(t, time.Minute)
	reg := telemetry.NewRegistry()
	c.Instrument(reg)
	if err := db.PutXML("credential", "a", doc(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("credential", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("credential", "a"); err != nil {
		t.Fatal(err)
	}
	if err := db.PutXML("credential", "a", doc(2)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("store_cache_hits_total").Value(); got != 1 {
		t.Errorf("store_cache_hits_total = %d, want 1", got)
	}
	if got := reg.Counter("store_cache_misses_total").Value(); got != 1 {
		t.Errorf("store_cache_misses_total = %d, want 1", got)
	}
	if got := reg.Counter("store_cache_invalidations_total").Value(); got != 1 {
		t.Errorf("store_cache_invalidations_total = %d, want 1", got)
	}
}

// TestDurableStoreInvalidation wires the cache over a WAL-backed store:
// the committer-goroutine write path must feed the same invalidation
// hook as the in-memory path.
func TestDurableStoreInvalidation(t *testing.T) {
	db, err := store.OpenDurable(t.TempDir() + "/db")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Destroy()
	c := New(db, time.Minute)
	if err := db.PutXML("credential", "a", doc(1)); err != nil {
		t.Fatal(err)
	}
	r1, err := c.Get("credential", "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.PutXML("credential", "a", doc(2)); err != nil {
		t.Fatal(err)
	}
	r2, err := c.Get("credential", "a")
	if err != nil {
		t.Fatal(err)
	}
	if r1.XML == r2.XML {
		t.Error("durable-store write did not invalidate the cache")
	}
}
