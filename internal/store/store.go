// Package store is an embedded XML document store: the reproduction's
// substitute for the Oracle/MySQL databases the paper's prototype used to
// hold disclosure policies, credentials and ontologies (§6.2–6.3).
//
// The paper's StartNegotiation operation "opens the connection with [the]
// Oracle database containing the disclosure policies and credentials of
// the invoker"; PolicyExchange "checks if the database contains disclosure
// policies protecting the credentials requested"; and policy conditions
// are "XPath queries" over stored XML. This store preserves exactly those
// code paths:
//
//   - documents are stored by (kind, key) and indexed by kind and by the
//     root element's "type" attribute (credential/policy lookup by type);
//   - Query evaluates a compiled XPath predicate over every document of a
//     kind;
//   - durability comes from a write-ahead log of length-prefixed,
//     CRC-checked frames that is replayed on open; a torn tail (partial
//     last write after a crash) is detected and truncated.
package store

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"trustvo/internal/xmldom"
	"trustvo/internal/xpath"
)

// Record is one stored document.
type Record struct {
	Kind string
	Key  string
	// XML is the canonical serialized form (authoritative).
	XML string

	doc *xmldom.Node // lazily parsed cache
}

// Doc returns the parsed document tree (cached). The returned node must
// be treated as read-only; Clone it before mutating.
func (r *Record) Doc() (*xmldom.Node, error) {
	if r.doc == nil {
		n, err := xmldom.ParseString(r.XML)
		if err != nil {
			return nil, fmt.Errorf("store: record %s/%s: %w", r.Kind, r.Key, err)
		}
		r.doc = n
	}
	return r.doc, nil
}

// TypeAttr returns the root element's "type" attribute, the secondary
// index key ("" when absent).
func (r *Record) TypeAttr() string {
	doc, err := r.Doc()
	if err != nil {
		return ""
	}
	return doc.AttrOr("type", "")
}

// Store is the document store. All methods are safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	byKey  map[string]*Record            // composite kind\x00key -> record
	byKind map[string]map[string]*Record // kind -> key -> record
	byType map[string]map[string][]*Record

	wal  *wal
	path string
	// syncEveryPut forces an fsync after every logged write (OpenDurable).
	syncEveryPut bool

	// replayedFrames is how many WAL frames Open replayed, credited to
	// the replay counter when the store is instrumented.
	replayedFrames int
	metrics        storeMetrics

	// gen counts committed mutations (Put/Delete), letting callers cache
	// derived views (e.g. a party loaded from the store) and revalidate
	// with a single atomic load instead of re-reading every document.
	// WAL replay during Open does not bump it: generation 0 plus N
	// replayed frames is still one consistent snapshot.
	gen atomic.Uint64
}

// Generation returns the store's mutation counter. It changes on every
// successful Put or Delete, so two equal readings with the same Store
// bracket an interval in which no document changed.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// ErrNotFound is returned by Get and Delete for missing records.
var ErrNotFound = errors.New("store: record not found")

// New creates an in-memory store with no durability.
func New() *Store {
	return &Store{
		byKey:  make(map[string]*Record),
		byKind: make(map[string]map[string]*Record),
		byType: make(map[string]map[string][]*Record),
	}
}

// OpenDurable is Open with synchronous durability: every Put/Delete is
// fsynced before returning. Slower, but a crash can lose at most the
// in-flight write (Open's default risks the OS write-back window).
func OpenDurable(path string) (*Store, error) {
	s, err := Open(path)
	if err != nil {
		return nil, err
	}
	s.syncEveryPut = true
	return s, nil
}

// Open creates (or reopens) a WAL-backed store at path. Existing log
// contents are replayed; a torn final frame is truncated away.
func Open(path string) (*Store, error) {
	s := New()
	s.path = path
	w, entries, err := openWAL(path)
	if err != nil {
		return nil, err
	}
	s.wal = w
	s.replayedFrames = len(entries)
	for _, e := range entries {
		switch e.op {
		case opPut:
			if err := s.applyPut(e.kind, e.key, e.doc); err != nil {
				// Documents in the log were validated before being
				// appended; a parse failure here means on-disk
				// corruption that crc32 did not catch. Surface it.
				w.Close()
				return nil, fmt.Errorf("store: replay %s/%s: %w", e.kind, e.key, err)
			}
		case opDelete:
			s.applyDelete(e.kind, e.key)
		}
	}
	return s, nil
}

// Close releases the WAL file handle. The in-memory view stays usable
// but further writes fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		err := s.wal.Close()
		s.wal = nil
		return err
	}
	return nil
}

func composite(kind, key string) string { return kind + "\x00" + key }

// Put validates, stores and (when WAL-backed) logs a document.
func (s *Store) Put(kind, key string, doc *xmldom.Node) error {
	if kind == "" || key == "" {
		return errors.New("store: kind and key required")
	}
	if strings.ContainsRune(kind, 0) || strings.ContainsRune(key, 0) {
		return errors.New("store: kind and key must not contain NUL")
	}
	xml := doc.XML()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		n, err := s.wal.append(walEntry{op: opPut, kind: kind, key: key, doc: xml})
		if err != nil {
			return err
		}
		s.metrics.appends.Inc()
		s.metrics.appendedBytes.Add(int64(n))
		if s.syncEveryPut {
			if err := s.wal.sync(); err != nil {
				return err
			}
		}
	}
	if err := s.applyPut(kind, key, xml); err != nil {
		return err
	}
	s.gen.Add(1)
	s.metrics.records.Set(int64(len(s.byKey)))
	return nil
}

// PutXML stores a pre-serialized document after validating it parses.
func (s *Store) PutXML(kind, key, xml string) error {
	doc, err := xmldom.ParseString(xml)
	if err != nil {
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	return s.Put(kind, key, doc)
}

// applyPut inserts into the in-memory maps. Caller holds s.mu (write).
func (s *Store) applyPut(kind, key, xml string) error {
	rec := &Record{Kind: kind, Key: key, XML: xml}
	if _, err := rec.Doc(); err != nil {
		return err
	}
	ck := composite(kind, key)
	if old, exists := s.byKey[ck]; exists {
		s.removeFromTypeIndex(old)
	}
	s.byKey[ck] = rec
	km := s.byKind[kind]
	if km == nil {
		km = make(map[string]*Record)
		s.byKind[kind] = km
	}
	km[key] = rec
	if ta := rec.TypeAttr(); ta != "" {
		tm := s.byType[kind]
		if tm == nil {
			tm = make(map[string][]*Record)
			s.byType[kind] = tm
		}
		tm[ta] = append(tm[ta], rec)
	}
	return nil
}

func (s *Store) removeFromTypeIndex(rec *Record) {
	ta := rec.TypeAttr()
	if ta == "" {
		return
	}
	lst := s.byType[rec.Kind][ta]
	for i, r := range lst {
		if r == rec {
			s.byType[rec.Kind][ta] = append(lst[:i], lst[i+1:]...)
			return
		}
	}
}

// Get returns the record stored under (kind, key).
func (s *Store) Get(kind, key string) (*Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.byKey[composite(kind, key)]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, kind, key)
	}
	return rec, nil
}

// Delete removes a record, logging the removal when WAL-backed.
func (s *Store) Delete(kind, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byKey[composite(kind, key)]; !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, kind, key)
	}
	if s.wal != nil {
		n, err := s.wal.append(walEntry{op: opDelete, kind: kind, key: key})
		if err != nil {
			return err
		}
		s.metrics.appends.Inc()
		s.metrics.appendedBytes.Add(int64(n))
		if s.syncEveryPut {
			if err := s.wal.sync(); err != nil {
				return err
			}
		}
	}
	s.applyDelete(kind, key)
	s.gen.Add(1)
	s.metrics.records.Set(int64(len(s.byKey)))
	return nil
}

func (s *Store) applyDelete(kind, key string) {
	ck := composite(kind, key)
	rec, ok := s.byKey[ck]
	if !ok {
		return
	}
	s.removeFromTypeIndex(rec)
	delete(s.byKey, ck)
	delete(s.byKind[kind], key)
}

// List returns the records of a kind, sorted by key.
func (s *Store) List(kind string) []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	km := s.byKind[kind]
	out := make([]*Record, 0, len(km))
	for _, r := range km {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Count returns the number of records of a kind.
func (s *Store) Count(kind string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byKind[kind])
}

// ByTypeAttr returns the records of a kind whose root "type" attribute
// equals typ, using the secondary index.
func (s *Store) ByTypeAttr(kind, typ string) []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lst := s.byType[kind][typ]
	out := make([]*Record, len(lst))
	copy(out, lst)
	return out
}

// Query returns the records of a kind whose document satisfies the
// XPath predicate, sorted by key.
func (s *Store) Query(kind string, pred *xpath.Expr) ([]*Record, error) {
	recs := s.List(kind)
	out := make([]*Record, 0, len(recs))
	for _, r := range recs {
		doc, err := r.Doc()
		if err != nil {
			return nil, err
		}
		if pred.Bool(doc) {
			out = append(out, r)
		}
	}
	return out, nil
}

// QueryString compiles expr and runs Query.
func (s *Store) QueryString(kind, expr string) ([]*Record, error) {
	e, err := xpath.Compile(expr)
	if err != nil {
		return nil, err
	}
	return s.Query(kind, e)
}

// Compact rewrites the WAL to contain exactly the live records,
// reclaiming space from overwrites and deletions. No-op for in-memory
// stores.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	var entries []walEntry
	kinds := make([]string, 0, len(s.byKind))
	for k := range s.byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		keys := make([]string, 0, len(s.byKind[kind]))
		for k := range s.byKind[kind] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			r := s.byKind[kind][key]
			entries = append(entries, walEntry{op: opPut, kind: kind, key: key, doc: r.XML})
		}
	}
	if err := s.wal.rewrite(entries); err != nil {
		return err
	}
	s.metrics.compactions.Inc()
	return nil
}

// Path returns the WAL path ("" for in-memory stores).
func (s *Store) Path() string { return s.path }

// Sync forces the WAL to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	return s.wal.sync()
}

// Destroy closes the store and removes its WAL file. For tests.
func (s *Store) Destroy() error {
	if err := s.Close(); err != nil {
		return err
	}
	if s.path != "" {
		if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}
