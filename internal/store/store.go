// Package store is an embedded XML document store: the reproduction's
// substitute for the Oracle/MySQL databases the paper's prototype used to
// hold disclosure policies, credentials and ontologies (§6.2–6.3).
//
// The paper's StartNegotiation operation "opens the connection with [the]
// Oracle database containing the disclosure policies and credentials of
// the invoker"; PolicyExchange "checks if the database contains disclosure
// policies protecting the credentials requested"; and policy conditions
// are "XPath queries" over stored XML. This store preserves exactly those
// code paths:
//
//   - documents are stored by (kind, key) and indexed by kind and by the
//     root element's "type" attribute (credential/policy lookup by type);
//   - Query evaluates a compiled XPath predicate over every document of a
//     kind;
//   - durability comes from a pluggable Backend (backend.go) beneath the
//     group-commit committer (commit.go). The default is the crash-safe
//     segmented-WAL engine (v2): a log of CRC-checked frames plus
//     checkpoint snapshots — concurrent writers share one fsync per
//     commit batch, the log rotates into sealed segments at a size
//     threshold (segment.go), and Compact is an online checkpoint that
//     snapshots the live records and deletes only sealed segments
//     (snapshot.go); recovery = newest valid snapshot + replay of later
//     segments, with a torn tail (partial last write after a crash)
//     detected, truncated and never costing an acknowledged write. The
//     alternative backends are a directory-per-kind record layout
//     (backend_dir.go) and a pure in-memory image (tests, benches,
//     cluster followers). Every durable backend routes its mutation
//     surface through internal/faultinject's FS hook layer so a
//     crash-point torture harness can kill the engine at every file
//     operation and verify those guarantees.
package store

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"trustvo/internal/faultinject"
	"trustvo/internal/xmldom"
	"trustvo/internal/xpath"
)

// Record is one stored document.
type Record struct {
	Kind string
	Key  string
	// XML is the canonical serialized form (authoritative).
	XML string

	doc *xmldom.Node // lazily parsed cache
}

// Doc returns the parsed document tree (cached). The returned node must
// be treated as read-only; Clone it before mutating.
func (r *Record) Doc() (*xmldom.Node, error) {
	if r.doc == nil {
		n, err := xmldom.ParseString(r.XML)
		if err != nil {
			return nil, fmt.Errorf("store: record %s/%s: %w", r.Kind, r.Key, err)
		}
		r.doc = n
	}
	return r.doc, nil
}

// TypeAttr returns the root element's "type" attribute, the secondary
// index key ("" when absent).
func (r *Record) TypeAttr() string {
	doc, err := r.Doc()
	if err != nil {
		return ""
	}
	return doc.AttrOr("type", "")
}

// view returns the caller-facing copy of an indexed record. The read path
// hands out views instead of the internal record: the XML string stays
// authoritative (strings are immutable), while the DOM cache is NOT
// shared — a caller that parses and then mutates its copy's tree cannot
// corrupt the type index or the next snapshot, which is exactly what
// happened when Get returned the live record (the aliasing bug this PR
// fixes). The copy's Doc() re-parses on first use; hot readers should sit
// behind store/cacher, which amortizes that.
func (r *Record) view() *Record {
	return &Record{Kind: r.Kind, Key: r.Key, XML: r.XML}
}

// Durability selects when a logged write is fsynced.
type Durability int

const (
	// DurabilityOS leaves flushing to the OS write-back cache: fastest,
	// and a crash can lose the write-back window (Open's default, the v1
	// behavior).
	DurabilityOS Durability = iota
	// DurabilityGroup fsyncs once per commit batch: every acknowledged
	// write is on stable storage, and N concurrent writers share one
	// flush (OpenDurable's default).
	DurabilityGroup
	// DurabilityEveryOp fsyncs after every single op: the v1 OpenDurable
	// behavior, kept as the group-commit A/B baseline (EXT-12).
	DurabilityEveryOp
)

// Options tunes a WAL-backed store opened with OpenWithOptions.
type Options struct {
	// Backend selects the persistence engine: BackendFSWAL (the default,
	// also chosen by ""), BackendDirKind or BackendMemory. See backend.go.
	Backend string
	// Durability is the fsync policy (default DurabilityOS).
	Durability Durability
	// MaxBatch caps how many mutations one commit batch may carry
	// (default 128).
	MaxBatch int
	// MaxDelay, when positive, holds a batch open that long waiting for
	// more writers before fsyncing (DurabilityGroup only). The default 0
	// coalesces only what queued naturally during the previous flush,
	// adding no latency.
	MaxDelay time.Duration
	// SegmentSize is the rotation threshold for log segments
	// (default 4 MiB).
	SegmentSize int64
	// FS is the filesystem hook layer; nil means the real filesystem.
	// Torture tests inject a faultinject.CrashFS here.
	FS faultinject.FS
	// OnCommit, when set, observes every committed mutation batch in log
	// order, after the batch is durably written (per the durability
	// policy) and applied to the in-memory view, but before the writers
	// are acknowledged. A non-nil return is handed to every writer in
	// the batch — their Put/Delete returns the error — WITHOUT poisoning
	// the log: the local write stands, but the caller must not treat it
	// as acknowledged. This is the synchronous-replication gate of
	// internal/cluster ("acked implies replicated"); replay during Open
	// does not invoke it.
	OnCommit func(entries []Entry) error
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 128
	}
	if o.SegmentSize <= 0 {
		o.SegmentSize = 4 << 20
	}
	if o.FS == nil {
		o.FS = faultinject.OSFS{}
	}
	return o
}

// Store is the document store. All methods are safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	byKey  map[string]*Record            // composite kind\x00key -> record
	byKind map[string]map[string]*Record // kind -> key -> record
	byType map[string]map[string][]*Record

	// kindGens counts committed mutations per kind (guarded by mu), so a
	// caller caching a view derived from some kinds can revalidate without
	// being thrashed by writes to unrelated kinds. See KindGeneration.
	kindGens map[string]uint64

	// path is the backend base path ("" for stores built with New).
	path string
	opts Options
	fs   faultinject.FS

	// backend is the persistence engine; nil marks a pure in-memory store
	// built with New/NewWithOptions (no committer).
	backend      Backend
	hasCommitter bool

	// Committer plumbing (see commit.go). commitCh is nil once closed;
	// closeMu serializes submission against Close. poison and closeErr
	// are owned by the committer goroutine after Open.
	commitCh chan commitReq
	closeMu  sync.RWMutex
	commitWG sync.WaitGroup
	poison   error
	closeErr error

	// ckptMu serializes checkpoints (Compact) and fences Destroy against
	// an in-flight snapshot write.
	ckptMu sync.Mutex

	// observers are non-gating commit listeners (see Observe); obsMu
	// guards registration.
	obsMu     sync.RWMutex
	observers []func(entries []Entry)

	// replayedFrames is how many snapshot records plus WAL frames Open
	// replayed, credited to the replay counter when instrumented.
	replayedFrames int
	metrics        atomic.Pointer[storeMetrics]

	// gen counts committed mutations (Put/Delete), letting callers cache
	// derived views (e.g. a party loaded from the store) and revalidate
	// with a single atomic load instead of re-reading every document.
	// WAL replay during Open does not bump it: generation 0 plus N
	// replayed frames is still one consistent snapshot.
	gen atomic.Uint64
}

// Generation returns the store's mutation counter. It changes on every
// successful Put or Delete, so two equal readings with the same Store
// bracket an interval in which no document changed.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// KindGeneration returns the sum of the per-kind mutation counters for
// kinds. It changes on every successful Put or Delete touching one of
// those kinds and is stable across writes to every other kind — the
// revalidation token for caches scoped to a subset of the store (a
// resume-ticket write must not thrash a memoized party built from
// credentials, policies and ontologies). Like Generation, replay during
// Open does not bump it.
func (s *Store) KindGeneration(kinds ...string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sum uint64
	for _, k := range kinds {
		sum += s.kindGens[k]
	}
	return sum
}

// Observe registers a commit listener: fn receives every committed
// mutation batch in log order, after the batch is durable (per the
// policy) and applied to the in-memory view. Unlike Options.OnCommit it
// cannot withhold acknowledgement — it is the invalidation feed for
// read-through caches, and it fires for every write path including
// cluster replication applies (which go through Put/Delete). fn runs on
// the committer goroutine outside the store locks and must not block;
// replay during Open is not observed. Listeners cannot be removed.
func (s *Store) Observe(fn func(entries []Entry)) {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	s.observers = append(s.observers, fn)
}

// notifyObservers fans a committed batch out to every listener.
func (s *Store) notifyObservers(entries []Entry) {
	s.obsMu.RLock() //lint:allow nakedlock snapshot only; listeners run unlocked below
	obs := s.observers
	s.obsMu.RUnlock()
	for _, fn := range obs {
		fn(entries)
	}
}

// ErrNotFound is returned by Get and Delete for missing records.
var ErrNotFound = errors.New("store: record not found")

// New creates an in-memory store with no durability.
func New() *Store {
	return &Store{
		byKey:    make(map[string]*Record),
		byKind:   make(map[string]map[string]*Record),
		byType:   make(map[string]map[string][]*Record),
		kindGens: make(map[string]uint64),
	}
}

// NewWithOptions creates an in-memory store honouring the subset of
// Options that applies without a WAL (currently OnCommit). Cluster
// tests replicate from memory-backed leaders through this.
func NewWithOptions(opts Options) *Store {
	s := New()
	s.opts = opts
	return s
}

// Open creates (or reopens) a WAL-backed store at path. Existing state is
// recovered (snapshot, then segment replay); a torn final frame is
// truncated away. Writes are logged but fsync is left to the OS.
func Open(path string) (*Store, error) {
	return OpenWithOptions(path, Options{})
}

// OpenDurable is Open with synchronous durability: every Put/Delete is on
// stable storage before it returns. Concurrent writers share one fsync
// per commit batch (group commit), so this no longer costs one flush per
// write as it did in v1.
func OpenDurable(path string) (*Store, error) {
	return OpenWithOptions(path, Options{Durability: DurabilityGroup})
}

// OpenWithOptions opens a backend-backed store with explicit tuning:
// construct the selected backend, recover its persisted state into the
// in-memory view, then start the group-commit committer.
func OpenWithOptions(path string, opts Options) (*Store, error) {
	s := New()
	s.path = path
	s.opts = opts.withDefaults()
	s.fs = s.opts.FS
	b, err := s.newBackend(path)
	if err != nil {
		return nil, err
	}
	if err := b.Recover(s.applyReplay); err != nil {
		return nil, err
	}
	s.backend = b
	s.hasCommitter = true
	s.commitCh = make(chan commitReq, 4*s.opts.MaxBatch)
	s.commitWG.Add(1)
	go s.committer(s.commitCh)
	return s, nil
}

// applyReplay applies recovered entries to the in-memory maps.
func (s *Store) applyReplay(entries []walEntry, source string) error {
	for _, e := range entries {
		switch e.op {
		case opPut:
			rec := &Record{Kind: e.kind, Key: e.key, XML: e.doc}
			if _, err := rec.Doc(); err != nil {
				// Documents were validated before being logged; a parse
				// failure here means on-disk corruption that crc32 did
				// not catch. Surface it.
				return fmt.Errorf("store: replay %s from %s: %w", composite(e.kind, e.key), source, err)
			}
			s.applyRecord(rec)
		case opDelete:
			s.applyDelete(e.kind, e.key)
		}
		s.replayedFrames++
	}
	return nil
}

// Close stops the committer (draining queued writes), seals the backend
// and releases its handles. The in-memory view stays readable but further
// writes fail with ErrWALClosed. Concurrent and repeated Closes are safe:
// every call waits until the committer has fully shut down, so when any
// Close returns, no goroutine is still writing to the backend — the fence
// Destroy relies on. (Previously a second Close returned immediately
// while the first was still draining, and a Destroy sequenced after it
// could unlink segments the committer was mid-write on.)
func (s *Store) Close() error {
	s.closeMu.Lock() //lint:allow nakedlock must release before commitWG.Wait, or the committer deadlocks
	ch := s.commitCh
	s.commitCh = nil
	s.closeMu.Unlock()
	if ch != nil {
		close(ch)
	}
	// Always wait, even when another Close already took the channel: the
	// WaitGroup is a no-op for in-memory stores and otherwise blocks until
	// the committer has sealed the backend.
	s.commitWG.Wait()
	return s.closeErr
}

func composite(kind, key string) string { return kind + "\x00" + key }

// Put validates, stores and (when WAL-backed) durably logs a document.
func (s *Store) Put(kind, key string, doc *xmldom.Node) error {
	if kind == "" || key == "" {
		return errors.New("store: kind and key required")
	}
	if strings.ContainsRune(kind, 0) || strings.ContainsRune(key, 0) {
		return errors.New("store: kind and key must not contain NUL")
	}
	rec := &Record{Kind: kind, Key: key, XML: doc.XML()}
	if _, err := rec.Doc(); err != nil {
		return err
	}
	if !s.hasCommitter {
		s.mu.Lock() //lint:allow nakedlock commitHook below must run outside the lock (it may do I/O)
		s.applyRecord(rec)
		s.gen.Add(1)
		s.kindGens[kind]++
		s.met().records.Set(int64(len(s.byKey)))
		s.mu.Unlock()
		return s.commitHook([]Entry{{Op: OpPut, Kind: kind, Key: key, Doc: rec.XML}})
	}
	res := s.submit(commitReq{
		kind:  ckPut,
		entry: walEntry{op: opPut, kind: kind, key: key, doc: rec.XML},
		rec:   rec,
		done:  make(chan commitResult, 1),
	})
	return res.err
}

// PutXML stores a pre-serialized document after validating it parses.
func (s *Store) PutXML(kind, key, xml string) error {
	doc, err := xmldom.ParseString(xml)
	if err != nil {
		return fmt.Errorf("store: put %s/%s: %w", kind, key, err)
	}
	return s.Put(kind, key, doc)
}

// applyRecord inserts into the in-memory maps. Caller holds s.mu (write).
func (s *Store) applyRecord(rec *Record) {
	ck := composite(rec.Kind, rec.Key)
	if old, exists := s.byKey[ck]; exists {
		s.removeFromTypeIndex(old)
	}
	s.byKey[ck] = rec
	km := s.byKind[rec.Kind]
	if km == nil {
		km = make(map[string]*Record)
		s.byKind[rec.Kind] = km
	}
	km[rec.Key] = rec
	if ta := rec.TypeAttr(); ta != "" {
		tm := s.byType[rec.Kind]
		if tm == nil {
			tm = make(map[string][]*Record)
			s.byType[rec.Kind] = tm
		}
		tm[ta] = append(tm[ta], rec)
	}
}

func (s *Store) removeFromTypeIndex(rec *Record) {
	ta := rec.TypeAttr()
	if ta == "" {
		return
	}
	lst := s.byType[rec.Kind][ta]
	for i, r := range lst {
		if r == rec {
			s.byType[rec.Kind][ta] = append(lst[:i], lst[i+1:]...)
			return
		}
	}
}

// Get returns the record stored under (kind, key). The result is the
// caller's copy: mutating its parsed document does not touch the store.
func (s *Store) Get(kind, key string) (*Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.byKey[composite(kind, key)]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, kind, key)
	}
	return rec.view(), nil
}

// Delete removes a record, durably logging the removal when WAL-backed.
func (s *Store) Delete(kind, key string) error {
	if !s.hasCommitter {
		s.mu.Lock() //lint:allow nakedlock commitHook below must run outside the lock (it may do I/O)
		if _, ok := s.byKey[composite(kind, key)]; !ok {
			s.mu.Unlock()
			return fmt.Errorf("%w: %s/%s", ErrNotFound, kind, key)
		}
		s.applyDelete(kind, key)
		s.gen.Add(1)
		s.kindGens[kind]++
		s.met().records.Set(int64(len(s.byKey)))
		s.mu.Unlock()
		return s.commitHook([]Entry{{Op: OpDelete, Kind: kind, Key: key}})
	}
	res := s.submit(commitReq{
		kind:  ckDelete,
		entry: walEntry{op: opDelete, kind: kind, key: key},
		done:  make(chan commitResult, 1),
	})
	return res.err
}

func (s *Store) applyDelete(kind, key string) {
	ck := composite(kind, key)
	rec, ok := s.byKey[ck]
	if !ok {
		return
	}
	s.removeFromTypeIndex(rec)
	delete(s.byKey, ck)
	delete(s.byKind[kind], key)
}

// List returns the records of a kind, sorted by key. The results are the
// caller's copies (see Get).
func (s *Store) List(kind string) []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	km := s.byKind[kind]
	out := make([]*Record, 0, len(km))
	for _, r := range km {
		out = append(out, r.view())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Count returns the number of records of a kind.
func (s *Store) Count(kind string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byKind[kind])
}

// ByTypeAttr returns the records of a kind whose root "type" attribute
// equals typ, using the secondary index. The results are the caller's
// copies (see Get).
func (s *Store) ByTypeAttr(kind, typ string) []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lst := s.byType[kind][typ]
	out := make([]*Record, 0, len(lst))
	for _, r := range lst {
		out = append(out, r.view())
	}
	return out
}

// listInternal snapshots the live records of a kind, sorted by key. The
// returned records are the indexed ones — internal use only, never to be
// handed to callers.
func (s *Store) listInternal(kind string) []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	km := s.byKind[kind]
	out := make([]*Record, 0, len(km))
	for _, r := range km {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Query returns the records of a kind whose document satisfies the
// XPath predicate, sorted by key. The results are the caller's copies
// (see Get); the predicate itself runs over the store's pre-parsed trees,
// so matching does not re-parse.
func (s *Store) Query(kind string, pred *xpath.Expr) ([]*Record, error) {
	recs := s.listInternal(kind)
	out := make([]*Record, 0, len(recs))
	for _, r := range recs {
		doc, err := r.Doc()
		if err != nil {
			return nil, err
		}
		if pred.Bool(doc) {
			out = append(out, r.view())
		}
	}
	return out, nil
}

// QueryString compiles expr and runs Query.
func (s *Store) QueryString(kind, expr string) ([]*Record, error) {
	e, err := xpath.Compile(expr)
	if err != nil {
		return nil, err
	}
	return s.Query(kind, e)
}

// Compact is the online checkpoint: a Rotate barrier through the
// committer captures the live record set and a checkpoint token, then the
// backend persists the snapshot and garbage-collects what it supersedes —
// all while concurrent Puts keep committing into the post-rotation log.
// Backends with nothing to truncate (memory, dirkind) make this a cheap
// sweep. No-op for in-memory stores built with New.
func (s *Store) Compact() error {
	if !s.hasCommitter {
		return nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	res := s.submit(commitReq{kind: ckRotate, done: make(chan commitResult, 1)})
	if res.err != nil {
		return res.err
	}
	if err := s.backend.Snapshot(res.coverSeq, res.entries); err != nil {
		return err
	}
	s.met().compactions.Inc()
	return nil
}

// Path returns the backend base path ("" for in-memory stores).
func (s *Store) Path() string { return s.path }

// Sync forces everything logged so far to stable storage.
func (s *Store) Sync() error {
	if !s.hasCommitter {
		return nil
	}
	res := s.submit(commitReq{kind: ckSync, done: make(chan commitResult, 1)})
	return res.err
}

// Destroy closes the store and removes every file it owns. For tests.
// Close waits for the committer to shut down and ckptMu fences an
// in-flight Compact, so nothing is still writing to the files Destroy
// unlinks — the other half of the Destroy/Close race fix.
func (s *Store) Destroy() error {
	if err := s.Close(); err != nil {
		return err
	}
	if s.backend == nil {
		return nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return s.backend.Destroy()
}

// sortedKeys returns m's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
