package faultinject

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestCrashAtStopsExecution(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	c := NewCrashFS()
	c.CrashAt = 3 // create=1, write=2, sync=3 <- crash fires here

	f, err := c.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync at crash point: err = %v, want ErrCrashed", err)
	}
	if !c.Crashed() {
		t.Fatal("Crashed() = false after crash point fired")
	}
	// Every operation after the crash fails too, and is not counted.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: err = %v", err)
	}
	if err := c.Remove(path); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash remove: err = %v", err)
	}
	if got := c.Ops(); got != 3 {
		t.Fatalf("Ops() = %d, want 3 (post-crash ops not counted)", got)
	}
	// The crashed sync never executed: the bytes are still volatile and
	// the adversarial crash image discards them.
	if err := c.CrashImage(0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("unsynced bytes survived keepTail=0: %q", data)
	}
}

func TestCrashImageKeepTail(t *testing.T) {
	for _, tc := range []struct {
		keepTail float64
		want     int64
	}{
		{0, 100},   // only the fsynced prefix
		{0.5, 125}, // half the volatile tail
		{1, 150},   // write-back finished just in time
	} {
		t.Run(fmt.Sprintf("keepTail=%v", tc.keepTail), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "f")
			c := NewCrashFS()
			f, err := c.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			f.Write(make([]byte, 100))
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			f.Write(make([]byte, 50))
			if err := c.CrashImage(tc.keepTail); err != nil {
				t.Fatal(err)
			}
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size() != tc.want {
				t.Fatalf("size after crash = %d, want %d", fi.Size(), tc.want)
			}
		})
	}
}

func TestHookTargetedFault(t *testing.T) {
	dir := t.TempDir()
	c := NewCrashFS()
	boom := errors.New("boom")
	c.Hook = func(op Op) error {
		if op.Kind == "rename" {
			return boom
		}
		return nil
	}
	f, err := c.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("x"))
	f.Sync()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, boom) {
		t.Fatalf("hooked rename: err = %v, want boom", err)
	}
	// A hook fault is targeted, not sticky: other operations still work.
	if err := c.SyncDir(filepath.Join(dir, "a")); err != nil {
		t.Fatalf("syncdir after hook fault: %v", err)
	}
	if err := c.Remove(filepath.Join(dir, "a")); err != nil {
		t.Fatalf("remove after hook fault: %v", err)
	}
	if c.Crashed() {
		t.Fatal("hook fault must not set the crashed state")
	}
}

func TestRenameCarriesDurability(t *testing.T) {
	dir := t.TempDir()
	old, next := filepath.Join(dir, "old"), filepath.Join(dir, "new")
	c := NewCrashFS()
	f, err := c.Create(old)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("synced"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("+tail"))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename(old, next); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashImage(0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(next)
	if err != nil {
		t.Fatal(err)
	}
	// The fsynced prefix follows the rename; the unsynced tail (close does
	// not flush) is lost.
	if string(data) != "synced" {
		t.Fatalf("renamed file after crash = %q, want %q", data, "synced")
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	var fs OSFS
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if f.Name() != path {
		t.Fatalf("Name() = %q", f.Name())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(path); err != nil {
		t.Fatal(err)
	}
	moved := filepath.Join(dir, "b")
	if err := fs.Rename(path, moved); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(moved)
	if err != nil || string(data) != "data" {
		t.Fatalf("read after rename: %q, %v", data, err)
	}
	if err := fs.Remove(moved); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(moved); !os.IsNotExist(err) {
		t.Fatalf("file survived Remove: %v", err)
	}
}
