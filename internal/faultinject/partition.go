package faultinject

import (
	"strings"
	"sync"
	"time"
)

// Net is a shared, mutable network-condition board for a set of
// in-process endpoints: partitions (all traffic between two endpoint
// sets fails at the connection level) and slow links (added latency
// toward a destination — the slow-follower chaos mode). One Net is
// shared by every Transport in a simulated cluster; each Transport
// names its own side with LocalEndpoint, so the board can tell which
// flows cross the cut.
//
// Endpoints are host:port strings; URL schemes and trailing slashes are
// tolerated and stripped, so "http://127.0.0.1:8080/" and
// "127.0.0.1:8080" name the same endpoint.
type Net struct {
	mu    sync.Mutex
	a, b  map[string]bool
	until time.Time // zero = until Heal
	slow  map[string]time.Duration

	// Splits counts partitions installed (telemetry for harnesses).
	splits int
}

// NewNet returns a board with no conditions installed.
func NewNet() *Net {
	return &Net{slow: make(map[string]time.Duration)}
}

func endpointKey(s string) string {
	s = strings.TrimPrefix(s, "https://")
	s = strings.TrimPrefix(s, "http://")
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return s
}

func endpointSet(eps []string) map[string]bool {
	m := make(map[string]bool, len(eps))
	for _, e := range eps {
		m[endpointKey(e)] = true
	}
	return m
}

// Split installs a partition: every request from an endpoint in a to
// one in b (or vice versa) fails until Heal is called.
func (n *Net) Split(a, b []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.a, n.b = endpointSet(a), endpointSet(b)
	n.until = time.Time{}
	n.splits++
}

// SplitFor installs a partition that heals itself after window — the
// "fail all traffic between two sets for a window" mode. A later Split,
// SplitFor or Heal overrides it.
func (n *Net) SplitFor(a, b []string, window time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.a, n.b = endpointSet(a), endpointSet(b)
	n.until = time.Now().Add(window)
	n.splits++
}

// Heal removes any partition (slow links are untouched).
func (n *Net) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.a, n.b = nil, nil
	n.until = time.Time{}
}

// Splits returns how many partitions have been installed on this board.
func (n *Net) Splits() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.splits
}

// Blocks reports whether a request from -> to crosses an active
// partition boundary.
func (n *Net) Blocks(from, to string) bool {
	if n == nil {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.a == nil {
		return false
	}
	if !n.until.IsZero() && time.Now().After(n.until) {
		n.a, n.b = nil, nil // window elapsed: self-heal
		return false
	}
	f, t := endpointKey(from), endpointKey(to)
	return (n.a[f] && n.b[t]) || (n.b[f] && n.a[t])
}

// SetDelay adds fixed latency to every request toward endpoint (0
// removes it). This is the slow-follower mode: a replication target
// that is alive but lagging.
func (n *Net) SetDelay(endpoint string, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if d <= 0 {
		delete(n.slow, endpointKey(endpoint))
		return
	}
	n.slow[endpointKey(endpoint)] = d
}

// DelayTo returns the installed latency toward endpoint.
func (n *Net) DelayTo(endpoint string) time.Duration {
	if n == nil {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.slow[endpointKey(endpoint)]
}
