package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

const payload = "0123456789abcdefghijklmnopqrstuvwxyz0123456789abcdefghijklmnopqrstuvwxyz"

func newBackend(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		io.WriteString(w, payload)
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func do(t *testing.T, tr *Transport, url string) (*http.Response, error) {
	t.Helper()
	client := &http.Client{Transport: tr}
	return client.Post(url, "text/plain", strings.NewReader("ping"))
}

// outcome flattens one request's result for comparison across runs.
type outcome struct {
	err     string
	bodyLen int
}

func runSequence(t *testing.T, cfg Config, url string, n int) []outcome {
	t.Helper()
	tr := New(cfg, nil)
	out := make([]outcome, 0, n)
	for i := 0; i < n; i++ {
		resp, err := do(t, tr, url)
		o := outcome{}
		if err != nil {
			o.err = err.Error()
		} else {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			o.bodyLen = len(body)
		}
		out = append(out, o)
	}
	return out
}

// TestDeterministicBySeed pins the core contract: the same seed over the
// same request sequence produces the identical fault pattern, and a
// different seed produces a different one.
func TestDeterministicBySeed(t *testing.T) {
	srv, _ := newBackend(t)
	cfg := Config{Seed: 42, Drop: 0.3, Delay: 0.4, MaxDelay: time.Millisecond, Duplicate: 0.2, Truncate: 0.2}
	a := runSequence(t, cfg, srv.URL, 60)
	b := runSequence(t, cfg, srv.URL, 60)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d diverged across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	cfg.Seed = 43
	c := runSequence(t, cfg, srv.URL, 60)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 60-request fault pattern")
	}
}

// TestDropModes forces drops and checks both halves: pre-send drops
// never reach the server, post-send drops do (the response is lost after
// the server processed the request).
func TestDropModes(t *testing.T) {
	srv, hits := newBackend(t)
	tr := New(Config{Seed: 7, Drop: 1}, nil)
	const n = 40
	for i := 0; i < n; i++ {
		_, err := do(t, tr, srv.URL)
		var de *DroppedError
		if !errors.As(err, &de) {
			t.Fatalf("request %d: expected DroppedError, got %v", i, err)
		}
		if de.Where != "pre-send" && de.Where != "post-send" {
			t.Fatalf("unexpected drop site %q", de.Where)
		}
	}
	pre, post := tr.Stats.DropsPre.Load(), tr.Stats.DropsPost.Load()
	if pre+post != n {
		t.Fatalf("drops = %d+%d, want %d", pre, post, n)
	}
	if pre == 0 || post == 0 {
		t.Fatalf("expected both drop sites over %d requests, got pre=%d post=%d", n, pre, post)
	}
	if got := hits.Load(); got != post {
		t.Fatalf("server hits = %d, want %d (post-send drops only)", got, post)
	}
}

// TestDuplicateDelivery forces duplication: the server sees every request
// twice while the caller sees one intact response.
func TestDuplicateDelivery(t *testing.T) {
	srv, hits := newBackend(t)
	tr := New(Config{Seed: 7, Duplicate: 1}, nil)
	for i := 0; i < 5; i++ {
		resp, err := do(t, tr, srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != payload {
			t.Fatalf("duplicated delivery corrupted the response: %q", body)
		}
	}
	if got := hits.Load(); got != 10 {
		t.Fatalf("server hits = %d, want 10 (each request delivered twice)", got)
	}
	if got := tr.Stats.Duplicates.Load(); got != 5 {
		t.Fatalf("duplicate count = %d, want 5", got)
	}
}

// TestTruncationIsSilent forces truncation and checks the hard property:
// the response stays well-formed HTTP (Content-Length matches the cut
// body) while the payload is short.
func TestTruncationIsSilent(t *testing.T) {
	srv, _ := newBackend(t)
	tr := New(Config{Seed: 7, Truncate: 1}, nil)
	for i := 0; i < 10; i++ {
		resp, err := do(t, tr, srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("truncated response not silently readable: %v", err)
		}
		if len(body) >= len(payload) {
			t.Fatalf("request %d: body not truncated (%d bytes)", i, len(body))
		}
		if resp.ContentLength != int64(len(body)) {
			t.Fatalf("Content-Length %d does not match truncated body %d", resp.ContentLength, len(body))
		}
	}
	if got := tr.Stats.Truncations.Load(); got != 10 {
		t.Fatalf("truncation count = %d, want 10", got)
	}
}

// TestDelayInjectsLatency forces delays and checks they are bounded by
// MaxDelay and counted.
func TestDelayInjectsLatency(t *testing.T) {
	srv, _ := newBackend(t)
	tr := New(Config{Seed: 7, Delay: 1, MaxDelay: 20 * time.Millisecond}, nil)
	t0 := time.Now()
	for i := 0; i < 5; i++ {
		resp, err := do(t, tr, srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if elapsed := time.Since(t0); elapsed > 5*20*time.Millisecond+time.Second {
		t.Fatalf("delays exceeded MaxDelay budget: %v", elapsed)
	}
	if got := tr.Stats.Delays.Load(); got != 5 {
		t.Fatalf("delay count = %d, want 5", got)
	}
}
