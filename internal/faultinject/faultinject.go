// Package faultinject wraps an http.RoundTripper with deterministic,
// seeded fault injection — dropped, delayed, duplicated and truncated
// messages — so the negotiation transport's retry, replay and resume
// machinery can be exercised reproducibly from tests and from
// `benchjoin -faults`.
//
// Determinism: all randomness comes from one seeded math/rand source
// consumed in a fixed per-request order under a mutex, so a given seed
// and request sequence always produces the same fault pattern.
package faultinject

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"trustvo/internal/telemetry"
)

// Config selects the fault mix. All probabilities are in [0, 1] and
// independent; zero values inject nothing.
type Config struct {
	// Seed initializes the deterministic random source.
	Seed int64
	// Drop is the probability a request is lost. Half of the drops happen
	// before the request is sent (the server never sees it), half after
	// (the server processed it but the response is lost) — the latter is
	// what forces the receiver-side reply cache to earn its keep.
	Drop float64
	// Delay is the probability a request is delayed by up to MaxDelay.
	Delay float64
	// MaxDelay bounds injected delays (default 5ms).
	MaxDelay time.Duration
	// Duplicate is the probability a request is delivered twice (the
	// first response is discarded; the caller sees the second).
	Duplicate float64
	// Truncate is the probability a response body is cut short.
	Truncate float64
}

// Stats counts injected faults (atomic; safe to read while in use).
type Stats struct {
	Requests    atomic.Int64
	DropsPre    atomic.Int64 // dropped before reaching the server
	DropsPost   atomic.Int64 // served, but the response was lost
	Delays      atomic.Int64
	Duplicates  atomic.Int64
	Truncations atomic.Int64
	Partitioned atomic.Int64 // dropped at a Net partition boundary
}

// String summarizes the counters.
func (s *Stats) String() string {
	return fmt.Sprintf("requests=%d drop_pre=%d drop_post=%d delay=%d dup=%d trunc=%d partition=%d",
		s.Requests.Load(), s.DropsPre.Load(), s.DropsPost.Load(),
		s.Delays.Load(), s.Duplicates.Load(), s.Truncations.Load(), s.Partitioned.Load())
}

// DroppedError is the transport error surfaced for an injected drop.
type DroppedError struct {
	// Where is "pre-send" or "post-send".
	Where string
}

// Error implements error.
func (e *DroppedError) Error() string { return "faultinject: message dropped (" + e.Where + ")" }

// Transport is the fault-injecting http.RoundTripper.
type Transport struct {
	// Base performs the real requests (http.DefaultTransport when nil).
	Base http.RoundTripper
	// Metrics, when set, counts injected faults under
	// fault_injected_total{kind=...}.
	Metrics *telemetry.Registry
	// Stats counts injected faults.
	Stats Stats
	// Net, when set together with LocalEndpoint, consults the shared
	// network-condition board before every request: requests crossing an
	// active partition fail at the connection level, and slow links add
	// latency toward their destination.
	Net *Net
	// LocalEndpoint names this transport's side of Net's partitions
	// (host:port of the node the transport belongs to).
	LocalEndpoint string

	cfg Config
	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a fault-injecting transport around base.
func New(cfg Config, base http.RoundTripper) *Transport {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 5 * time.Millisecond
	}
	return &Transport{
		Base: base,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
}

// decision is one request's pre-drawn fault plan. Drawing everything up
// front keeps the random stream's consumption fixed per request, so the
// fault pattern depends only on (seed, request index) — not on timing.
type decision struct {
	delay    time.Duration
	dropPre  bool
	dropPost bool
	dup      bool
	truncAt  float64 // keep this fraction of the response body; 1 = intact
}

func (t *Transport) decide() decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	var d decision
	if t.rng.Float64() < t.cfg.Delay {
		d.delay = time.Duration(t.rng.Float64() * float64(t.cfg.MaxDelay))
	}
	if t.rng.Float64() < t.cfg.Drop {
		if t.rng.Float64() < 0.5 {
			d.dropPre = true
		} else {
			d.dropPost = true
		}
	}
	if t.rng.Float64() < t.cfg.Duplicate {
		d.dup = true
	}
	if t.rng.Float64() < t.cfg.Truncate {
		d.truncAt = 0.2 + 0.6*t.rng.Float64() // keep 20–80%
	} else {
		d.truncAt = 1
	}
	return d
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

func (t *Transport) count(kind string, c *atomic.Int64) {
	c.Add(1)
	if t.Metrics != nil {
		t.Metrics.Counter("fault_injected_total", "kind", kind).Inc()
	}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.Stats.Requests.Add(1)
	if t.Net.Blocks(t.LocalEndpoint, req.URL.Host) {
		t.count("partition", &t.Stats.Partitioned)
		return nil, &DroppedError{Where: "partition"}
	}
	if d := t.Net.DelayTo(req.URL.Host); d > 0 {
		if err := sleepCtx(req.Context(), d); err != nil {
			return nil, err
		}
	}
	d := t.decide()

	// Buffer the body so the request can be replayed for duplication.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}

	if d.delay > 0 {
		t.count("delay", &t.Stats.Delays)
		if err := sleepCtx(req.Context(), d.delay); err != nil {
			return nil, err
		}
	}
	if d.dropPre {
		t.count("drop-pre", &t.Stats.DropsPre)
		return nil, &DroppedError{Where: "pre-send"}
	}

	resp, err := t.send(req, body)
	if err != nil {
		return nil, err
	}
	if d.dup {
		// Deliver again; the caller sees the second response (the first
		// is fully consumed, as a real duplicated datagram would be).
		t.count("duplicate", &t.Stats.Duplicates)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp, err = t.send(req, body); err != nil {
			return nil, err
		}
	}
	if d.dropPost {
		t.count("drop-post", &t.Stats.DropsPost)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &DroppedError{Where: "post-send"}
	}
	if d.truncAt < 1 {
		t.count("truncate", &t.Stats.Truncations)
		return truncate(resp, d.truncAt)
	}
	return resp, nil
}

// sleepCtx waits d or until ctx is canceled, releasing the timer
// immediately either way — a canceled request under heavy injected
// delay must not pin a timer for the rest of the delay window.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (t *Transport) send(req *http.Request, body []byte) (*http.Response, error) {
	r := req.Clone(req.Context())
	if body != nil {
		r.Body = io.NopCloser(bytes.NewReader(body))
		r.ContentLength = int64(len(body))
	}
	return t.base().RoundTrip(r)
}

// truncate cuts the response body to a fraction of its length, fixing
// Content-Length so the truncation is silent (the hard case: the reader
// sees a well-formed HTTP response with a garbled payload).
func truncate(resp *http.Response, frac float64) (*http.Response, error) {
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	cut := int(float64(len(data)) * frac)
	if cut >= len(data) && len(data) > 0 {
		cut = len(data) - 1
	}
	data = data[:cut]
	out := *resp
	out.Body = io.NopCloser(bytes.NewReader(data))
	out.ContentLength = int64(len(data))
	out.Header = resp.Header.Clone()
	out.Header.Set("Content-Length", strconv.Itoa(len(data)))
	return &out, nil
}
