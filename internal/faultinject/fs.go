// File-operation fault injection: a failpoint-style hook layer over the
// mutating filesystem calls a write-ahead log makes — create, write,
// sync, close, rename, remove, directory sync — in the spirit of
// go-failpoint instrumentation and dm-flakey device testing.
//
// internal/store routes every mutation through the FS interface; OSFS is
// the production passthrough and CrashFS is the torture-test double. A
// CrashFS counts operations, "crashes" at a chosen operation index (the
// operation does not execute and every later one fails with ErrCrashed),
// and models page-cache durability: bytes written but not yet fsynced are
// discarded by CrashImage, exactly what a power cut does to a real file.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// FS is the mutating-filesystem surface of the storage engine. Reads are
// not hooked: crash simulation rewrites the real files before reopen, so
// recovery can read them with plain os calls.
type FS interface {
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// MkdirAll creates the directory name with any missing parents (the
	// directory-per-kind store backend lays records out under one
	// directory per document kind).
	MkdirAll(name string) error
	// SyncDir fsyncs the directory containing path, making a just-created
	// or just-renamed directory entry durable.
	SyncDir(path string) error
}

// File is the mutating file handle surface used by the WAL.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// ErrCrashed is returned by every CrashFS operation at and after the
// injected crash point.
var ErrCrashed = errors.New("faultinject: simulated crash")

// OSFS is the production FS: direct os calls.
type OSFS struct{}

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OSFS) MkdirAll(name string) error { return os.MkdirAll(name, 0o755) }

// SyncDir implements FS. Some platforms refuse fsync on directories;
// those report a PathError we treat as "the platform gives no stronger
// guarantee" rather than a storage failure.
func (OSFS) SyncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("faultinject: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		var pe *os.PathError
		if errors.As(err, &pe) {
			return nil
		}
		return fmt.Errorf("faultinject: sync dir: %w", err)
	}
	return nil
}

// Op identifies one intercepted filesystem operation.
type Op struct {
	// N is the 1-based global operation index.
	N int
	// Kind is one of "create", "write", "sync", "close", "rename",
	// "remove", "mkdir", "syncdir".
	Kind string
	// Path is the primary path the operation touches.
	Path string
}

// CrashFS wraps OSFS with operation counting, an injectable crash point
// and a page-cache durability model. Safe for concurrent use.
type CrashFS struct {
	// CrashAt, when > 0, makes the CrashAt-th operation (1-based) fail
	// with ErrCrashed WITHOUT executing, along with every operation after
	// it — the moment the process "died".
	CrashAt int
	// Hook, when set, runs before each operation; a non-nil return aborts
	// that operation with the returned error (the fault is not sticky).
	// Used to inject targeted failures (e.g. "the snapshot rename fails").
	Hook func(Op) error

	mu      sync.Mutex
	ops     int
	crashed bool
	files   map[string]*fileDurability // live path -> durability state
}

// fileDurability tracks how much of a file the simulated page cache has
// flushed: size grows with every write, durable only on sync.
type fileDurability struct {
	size    int64
	durable int64
}

// NewCrashFS returns a CrashFS with no crash point set (pass-through,
// still counting operations and tracking durability).
func NewCrashFS() *CrashFS {
	return &CrashFS{files: make(map[string]*fileDurability)}
}

// gate counts one operation and decides whether it may execute.
func (c *CrashFS) gate(kind, path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	c.ops++
	if c.Hook != nil {
		if err := c.Hook(Op{N: c.ops, Kind: kind, Path: path}); err != nil {
			return err
		}
	}
	if c.CrashAt > 0 && c.ops >= c.CrashAt {
		c.crashed = true
		return ErrCrashed
	}
	return nil
}

// Ops returns how many operations have been attempted so far. A clean
// run's final count is the crash-point schedule for torture tests.
func (c *CrashFS) Ops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Crashed reports whether the crash point has fired.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Create implements FS.
func (c *CrashFS) Create(name string) (File, error) {
	if err := c.gate("create", name); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	c.mu.Lock() //lint:allow nakedlock short registration section; no early return before Unlock
	c.files[name] = &fileDurability{}
	c.mu.Unlock()
	return &crashFile{fs: c, f: f}, nil
}

// Rename implements FS. The durability state follows the file to its new
// name. Directory-entry volatility is deliberately NOT modeled (a rename
// is treated as durable once executed); crash-before-rename is its own
// crash point, which covers the interesting half of the window.
func (c *CrashFS) Rename(oldpath, newpath string) error {
	if err := c.gate("rename", oldpath); err != nil {
		return err
	}
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	c.mu.Lock() //lint:allow nakedlock short map update after the real rename; no early return
	if st, ok := c.files[oldpath]; ok {
		delete(c.files, oldpath)
		c.files[newpath] = st
	}
	c.mu.Unlock()
	return nil
}

// Remove implements FS.
func (c *CrashFS) Remove(name string) error {
	if err := c.gate("remove", name); err != nil {
		return err
	}
	if err := os.Remove(name); err != nil {
		return err
	}
	c.mu.Lock() //lint:allow nakedlock short map delete after the real remove; no early return
	delete(c.files, name)
	c.mu.Unlock()
	return nil
}

// MkdirAll implements FS. Directory creation is treated as durable once
// executed (the same simplification Rename documents); crash-before-mkdir
// is its own crash point.
func (c *CrashFS) MkdirAll(name string) error {
	if err := c.gate("mkdir", name); err != nil {
		return err
	}
	return os.MkdirAll(name, 0o755)
}

// SyncDir implements FS.
func (c *CrashFS) SyncDir(path string) error {
	if err := c.gate("syncdir", path); err != nil {
		return err
	}
	return OSFS{}.SyncDir(path)
}

// CrashImage rewrites the tracked files into a legal post-crash state and
// must only be called once the workload has stopped (every pending
// operation has returned). keepTail selects how much of the un-fsynced
// tail the "page cache" had happened to flush on its own:
//
//	0 — none: every file is truncated to its last explicit fsync, the
//	    adversarial minimum a crash guarantees;
//	1 — all: the tail survives intact, the lucky maximum (write-back
//	    completed just before the cut).
//
// Intermediate fractions keep a prefix of the tail, modeling a partial
// write-back that tears the final frame.
func (c *CrashFS) CrashImage(keepTail float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for path, st := range c.files {
		keep := st.durable + int64(keepTail*float64(st.size-st.durable))
		if keep > st.size {
			keep = st.size
		}
		if keep < st.size {
			if err := os.Truncate(path, keep); err != nil {
				if os.IsNotExist(err) {
					continue
				}
				return fmt.Errorf("faultinject: crash image %s: %w", path, err)
			}
		}
	}
	return nil
}

// crashFile wraps an *os.File with the shared gate and durability
// tracking. The tracked name is resolved at call time so a rename of the
// path (snapshot tmp -> final) keeps accounting against the same state.
type crashFile struct {
	fs *CrashFS
	f  *os.File
}

// Name implements File.
func (cf *crashFile) Name() string { return cf.f.Name() }

// state finds the durability record for this handle's original path or
// its renamed successor. Caller holds fs.mu.
func (cf *crashFile) state() *fileDurability {
	if st, ok := cf.fs.files[cf.f.Name()]; ok {
		return st
	}
	// Renamed while open: scan for the moved record is not possible by
	// name alone, so track under the current name from here on.
	st := &fileDurability{}
	cf.fs.files[cf.f.Name()] = st
	return st
}

// Write implements File.
func (cf *crashFile) Write(p []byte) (int, error) {
	if err := cf.fs.gate("write", cf.f.Name()); err != nil {
		return 0, err
	}
	n, err := cf.f.Write(p)
	cf.fs.mu.Lock() //lint:allow nakedlock size bookkeeping between write and return; no early return
	cf.state().size += int64(n)
	cf.fs.mu.Unlock()
	return n, err
}

// Sync implements File: everything written so far becomes durable.
func (cf *crashFile) Sync() error {
	if err := cf.fs.gate("sync", cf.f.Name()); err != nil {
		return err
	}
	if err := cf.f.Sync(); err != nil {
		return err
	}
	cf.fs.mu.Lock() //lint:allow nakedlock durability bookkeeping after a successful fsync; no early return
	st := cf.state()
	st.durable = st.size
	cf.fs.mu.Unlock()
	return nil
}

// Close implements File. Closing does NOT flush: un-fsynced bytes stay
// volatile, which is precisely the bug class the torture harness exists
// to catch.
func (cf *crashFile) Close() error {
	if err := cf.fs.gate("close", cf.f.Name()); err != nil {
		// The process is gone; release the real descriptor anyway so the
		// test process does not leak it.
		cf.f.Close()
		return err
	}
	return cf.f.Close()
}
