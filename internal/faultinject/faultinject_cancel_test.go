package faultinject

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"
)

// Regression test for the timer leak vetvo's goroleak analyzer flagged:
// an injected delay raced req.Context().Done() with a bare time.After,
// pinning a timer for the full delay window after cancellation. The
// delay path now stops its timer and must return the context error
// promptly.
func TestInjectedDelayHonorsCancel(t *testing.T) {
	tr := New(Config{Seed: 1}, nil)
	tr.Net = NewNet()
	tr.Net.SetDelay("slow.example", time.Hour)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://slow.example/", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = tr.RoundTrip(req)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("canceled delay took %v; want prompt return", elapsed)
	}
}
