// Package xpath compiles and evaluates a practical subset of XPath 1.0
// against xmldom trees.
//
// Disclosure policies in the paper carry their attribute conditions as
// XPath expressions over the counterpart's credential (§6.2: "Such element
// stores an Xpath expression on the credential denoted by targetCertType").
// This package is the evaluator behind those conditions, and also the query
// language of the embedded document store (internal/store).
//
// Supported grammar (a strict subset of XPath 1.0):
//
//	/a/b/c          absolute location paths
//	a/b             relative paths
//	//a             descendant-or-self steps
//	*               any-element wildcard
//	@name, @*       attribute steps
//	. and ..        self and parent
//	text()          text-node step
//	a[pred]         predicates: positions, comparisons, and/or, functions
//	=, !=, <, <=, >, >=   comparisons with node-set/string/number semantics
//	and, or, -x     boolean connectives and unary minus
//	p1 | p2         node-set union
//
// Functions: string, number, boolean, not, true, false, count, last,
// position, name, contains, starts-with, normalize-space, string-length,
// concat, substring.
package xpath

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokSlash
	tokDblSlash
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
	tokAt
	tokDot
	tokDotDot
	tokStar
	tokPipe
	tokComma
	tokName   // element/function names
	tokString // quoted literal
	tokNumber
	tokEq
	tokNeq
	tokLt
	tokLe
	tokGt
	tokGe
	tokPlus
	tokMinus
	tokAnd
	tokOr
	tokDiv
	tokMod
)

type token struct {
	kind tokKind
	text string
	num  float64
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokName, tokString:
		return t.text
	case tokNumber:
		return fmt.Sprintf("%g", t.num)
	default:
		return t.text
	}
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// SyntaxError describes a compilation failure with its byte offset.
type SyntaxError struct {
	Expr string
	Pos  int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xpath: %s at offset %d in %q", e.Msg, e.Pos, e.Expr)
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '/':
			if l.peekAt(1) == '/' {
				l.pos += 2
				l.emit(token{kind: tokDblSlash, text: "//", pos: start})
			} else {
				l.pos++
				l.emit(token{kind: tokSlash, text: "/", pos: start})
			}
		case c == '[':
			l.pos++
			l.emit(token{kind: tokLBracket, text: "[", pos: start})
		case c == ']':
			l.pos++
			l.emit(token{kind: tokRBracket, text: "]", pos: start})
		case c == '(':
			l.pos++
			l.emit(token{kind: tokLParen, text: "(", pos: start})
		case c == ')':
			l.pos++
			l.emit(token{kind: tokRParen, text: ")", pos: start})
		case c == '@':
			l.pos++
			l.emit(token{kind: tokAt, text: "@", pos: start})
		case c == '|':
			l.pos++
			l.emit(token{kind: tokPipe, text: "|", pos: start})
		case c == ',':
			l.pos++
			l.emit(token{kind: tokComma, text: ",", pos: start})
		case c == '*':
			l.pos++
			l.emit(token{kind: tokStar, text: "*", pos: start})
		case c == '+':
			l.pos++
			l.emit(token{kind: tokPlus, text: "+", pos: start})
		case c == '-':
			l.pos++
			l.emit(token{kind: tokMinus, text: "-", pos: start})
		case c == '=':
			l.pos++
			l.emit(token{kind: tokEq, text: "=", pos: start})
		case c == '!':
			if l.peekAt(1) != '=' {
				return nil, &SyntaxError{Expr: src, Pos: start, Msg: "expected != after !"}
			}
			l.pos += 2
			l.emit(token{kind: tokNeq, text: "!=", pos: start})
		case c == '<':
			if l.peekAt(1) == '=' {
				l.pos += 2
				l.emit(token{kind: tokLe, text: "<=", pos: start})
			} else {
				l.pos++
				l.emit(token{kind: tokLt, text: "<", pos: start})
			}
		case c == '>':
			if l.peekAt(1) == '=' {
				l.pos += 2
				l.emit(token{kind: tokGe, text: ">=", pos: start})
			} else {
				l.pos++
				l.emit(token{kind: tokGt, text: ">", pos: start})
			}
		case c == '.':
			if l.peekAt(1) == '.' {
				l.pos += 2
				l.emit(token{kind: tokDotDot, text: "..", pos: start})
			} else if isDigit(l.peekAt(1)) {
				l.lexNumber()
			} else {
				l.pos++
				l.emit(token{kind: tokDot, text: ".", pos: start})
			}
		case c == '\'' || c == '"':
			quote := c
			l.pos++
			j := strings.IndexByte(l.src[l.pos:], quote)
			if j < 0 {
				return nil, &SyntaxError{Expr: src, Pos: start, Msg: "unterminated string literal"}
			}
			l.emit(token{kind: tokString, text: l.src[l.pos : l.pos+j], pos: start})
			l.pos += j + 1
		case isDigit(c):
			l.lexNumber()
		case isNameStart(rune(c)):
			l.lexName()
		default:
			return nil, &SyntaxError{Expr: src, Pos: start, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\n' || l.src[l.pos] == '\r') {
		l.pos++
	}
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
		l.pos++
	}
	var n float64
	fmt.Sscanf(l.src[start:l.pos], "%g", &n)
	l.emit(token{kind: tokNumber, num: n, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexName() {
	start := l.pos
	for l.pos < len(l.src) && isNamePart(rune(l.src[l.pos])) {
		l.pos++
	}
	name := l.src[start:l.pos]
	// 'and', 'or', 'div', 'mod' are operators only where an operator may
	// appear; the parser disambiguates via the previous token. The lexer
	// keeps that rule: after a name, literal, number, ')' or ']', these
	// words are operators.
	switch name {
	case "and", "or", "div", "mod":
		if l.prevAllowsOperator() {
			kind := map[string]tokKind{"and": tokAnd, "or": tokOr, "div": tokDiv, "mod": tokMod}[name]
			l.emit(token{kind: kind, text: name, pos: start})
			return
		}
	}
	l.emit(token{kind: tokName, text: name, pos: start})
}

func (l *lexer) prevAllowsOperator() bool {
	if len(l.toks) == 0 {
		return false
	}
	switch l.toks[len(l.toks)-1].kind {
	case tokName, tokString, tokNumber, tokRParen, tokRBracket, tokStar, tokDot, tokDotDot:
		return true
	}
	return false
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNamePart(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
