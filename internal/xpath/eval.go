package xpath

import (
	"math"
	"strconv"
	"strings"

	"trustvo/internal/xmldom"
)

// item is one member of a node-set: an element/text node, an attribute
// (owner element plus name/value), or the virtual document root.
type item struct {
	node *xmldom.Node // nil only for doc items
	doc  bool
	attr bool
	name string // attribute name when attr
	val  string // attribute value when attr
}

func (it item) stringValue() string {
	switch {
	case it.attr:
		return it.val
	case it.doc:
		return it.node.Text()
	default:
		return it.node.Text()
	}
}

// value is the dynamic result of evaluating an expression: one of
// nodeset, float64, string, or bool.
type value any

type nodeset []item

type evalCtx struct {
	item item
	pos  int // 1-based position within the context node-set
	size int
	doc  *docIndex
}

// docIndex assigns document-order indices lazily so that unions and
// descendant steps can be returned in document order.
type docIndex struct {
	order map[*xmldom.Node]int
	root  *xmldom.Node
}

func newDocIndex(root *xmldom.Node) *docIndex {
	return &docIndex{root: root}
}

func (d *docIndex) indexOf(n *xmldom.Node) int {
	if d.order == nil {
		d.order = make(map[*xmldom.Node]int)
		i := 0
		d.root.Walk(func(x *xmldom.Node) bool {
			d.order[x] = i
			i++
			return true
		})
	}
	return d.order[n]
}

// Evaluate runs the expression with ctx as the context node and returns
// the raw result (nodeset, float64, string or bool). Most callers want
// one of the typed helpers below.
func (e *Expr) Evaluate(ctx *xmldom.Node) any {
	v := e.evalRoot(ctx)
	if ns, ok := v.(nodeset); ok {
		out := make([]*xmldom.Node, 0, len(ns))
		for _, it := range ns {
			if !it.attr {
				out = append(out, it.node)
			}
		}
		return out
	}
	return v
}

func (e *Expr) evalRoot(ctx *xmldom.Node) value {
	root := ctx.Root()
	c := &evalCtx{item: item{node: ctx}, pos: 1, size: 1, doc: newDocIndex(root)}
	return e.ast.eval(c)
}

// Select evaluates the expression and returns the resulting element/text
// nodes in document order. Non-nodeset results yield nil.
func (e *Expr) Select(ctx *xmldom.Node) []*xmldom.Node {
	v := e.evalRoot(ctx)
	ns, ok := v.(nodeset)
	if !ok {
		return nil
	}
	out := make([]*xmldom.Node, 0, len(ns))
	for _, it := range ns {
		if !it.attr && it.node != nil {
			out = append(out, it.node)
		}
	}
	return out
}

// SelectValues evaluates the expression and returns the string-value of
// every item in the result node-set (attribute values included). A scalar
// result is returned as a single-element slice.
func (e *Expr) SelectValues(ctx *xmldom.Node) []string {
	v := e.evalRoot(ctx)
	if ns, ok := v.(nodeset); ok {
		out := make([]string, len(ns))
		for i, it := range ns {
			out[i] = it.stringValue()
		}
		return out
	}
	return []string{toString(v)}
}

// StringValue evaluates the expression and converts the result to a
// string using XPath string() semantics (first node's string-value).
func (e *Expr) StringValue(ctx *xmldom.Node) string {
	return toString(e.evalRoot(ctx))
}

// Bool evaluates the expression under XPath boolean() semantics:
// non-empty node-set, non-zero number, non-empty string.
func (e *Expr) Bool(ctx *xmldom.Node) bool {
	return toBool(e.evalRoot(ctx))
}

// Number evaluates the expression under XPath number() semantics.
func (e *Expr) Number(ctx *xmldom.Node) float64 {
	return toNumber(e.evalRoot(ctx))
}

// ---- expression evaluation ----

func (n numLit) eval(*evalCtx) value { return float64(n) }
func (s strLit) eval(*evalCtx) value { return string(s) }

func (u *negExpr) eval(c *evalCtx) value { return -toNumber(u.x.eval(c)) }

func (b *binExpr) eval(c *evalCtx) value {
	switch b.op {
	case opOr:
		if toBool(b.l.eval(c)) {
			return true
		}
		return toBool(b.r.eval(c))
	case opAnd:
		if !toBool(b.l.eval(c)) {
			return false
		}
		return toBool(b.r.eval(c))
	case opUnion:
		l, lok := b.l.eval(c).(nodeset)
		r, rok := b.r.eval(c).(nodeset)
		if !lok || !rok {
			return nodeset(nil)
		}
		return unionSets(l, r, c.doc)
	case opEq, opNeq, opLt, opLe, opGt, opGe:
		return compare(b.op, b.l.eval(c), b.r.eval(c))
	case opAdd:
		return toNumber(b.l.eval(c)) + toNumber(b.r.eval(c))
	case opSub:
		return toNumber(b.l.eval(c)) - toNumber(b.r.eval(c))
	case opMul:
		return toNumber(b.l.eval(c)) * toNumber(b.r.eval(c))
	case opDiv:
		return toNumber(b.l.eval(c)) / toNumber(b.r.eval(c))
	case opMod:
		return math.Mod(toNumber(b.l.eval(c)), toNumber(b.r.eval(c)))
	}
	return nil
}

func unionSets(a, b nodeset, doc *docIndex) nodeset {
	seen := make(map[itemKey]bool, len(a)+len(b))
	out := make(nodeset, 0, len(a)+len(b))
	for _, it := range append(append(nodeset{}, a...), b...) {
		k := keyOf(it)
		if !seen[k] {
			seen[k] = true
			out = append(out, it)
		}
	}
	// Restore document order (attributes sort just after their owner).
	sortDocOrder(out, doc)
	return out
}

type itemKey struct {
	n    *xmldom.Node
	attr string
	doc  bool
}

func keyOf(it item) itemKey {
	k := itemKey{n: it.node, doc: it.doc}
	if it.attr {
		k.attr = it.name
	}
	return k
}

func sortDocOrder(ns nodeset, doc *docIndex) {
	if len(ns) < 2 {
		return
	}
	lessKey := func(it item) (int, int, string) {
		base := doc.indexOf(it.node)
		if it.attr {
			return base, 1, it.name
		}
		return base, 0, ""
	}
	// insertion sort: node-sets are small and mostly ordered already
	for i := 1; i < len(ns); i++ {
		j := i
		for j > 0 {
			a0, a1, a2 := lessKey(ns[j-1])
			b0, b1, b2 := lessKey(ns[j])
			if a0 < b0 || (a0 == b0 && (a1 < b1 || (a1 == b1 && a2 <= b2))) {
				break
			}
			ns[j-1], ns[j] = ns[j], ns[j-1]
			j--
		}
	}
}

func (p *pathExpr) eval(c *evalCtx) value {
	var cur nodeset
	if p.absolute {
		cur = nodeset{{node: c.item.node.Root(), doc: true}}
	} else {
		cur = nodeset{c.item}
	}
	for _, st := range p.steps {
		cur = applyStep(cur, st, c)
	}
	if p.absolute && len(p.steps) == 0 {
		return cur // bare "/"
	}
	return cur
}

func applyStep(in nodeset, st step, c *evalCtx) nodeset {
	var out nodeset
	seen := make(map[itemKey]bool)
	for _, it := range in {
		cands := axisItems(it, st)
		cands = filterPreds(cands, st.preds, c)
		for _, cd := range cands {
			k := keyOf(cd)
			if !seen[k] {
				seen[k] = true
				out = append(out, cd)
			}
		}
	}
	return out
}

func axisItems(it item, st step) nodeset {
	var out nodeset
	switch st.axis {
	case axisSelf:
		if matchTest(it, st) {
			out = append(out, it)
		}
	case axisParent:
		if it.attr || it.doc {
			return nil
		}
		if it.node.Parent != nil {
			out = append(out, item{node: it.node.Parent})
		} else {
			out = append(out, item{node: it.node, doc: true})
		}
	case axisAttribute:
		if it.attr {
			return nil
		}
		n := it.node
		if it.doc {
			return nil
		}
		for _, a := range n.Attrs {
			if st.name == "*" || a.Name == st.name {
				out = append(out, item{node: n, attr: true, name: a.Name, val: a.Value})
			}
		}
	case axisChild:
		if it.attr {
			return nil
		}
		if it.doc {
			// document node's only child is the root element
			child := item{node: it.node}
			if matchTest(child, st) {
				out = append(out, child)
			}
			return out
		}
		for _, ch := range it.node.Children {
			ci := item{node: ch}
			if matchTest(ci, st) {
				out = append(out, ci)
			}
		}
	case axisDescendantOrSelf:
		if it.attr {
			return nil
		}
		if it.doc {
			// The document node itself, then every node of the tree
			// (the root element included, as an ordinary element).
			if matchTest(it, st) {
				out = append(out, it)
			}
		}
		it.node.Walk(func(n *xmldom.Node) bool {
			ni := item{node: n}
			if matchTest(ni, st) {
				out = append(out, ni)
			}
			return true
		})
	}
	return out
}

func matchTest(it item, st step) bool {
	switch st.test {
	case testNode:
		return true
	case testText:
		return !it.attr && it.node.Type == xmldom.TextNode
	case testName:
		if it.attr {
			return st.name == "*" || it.name == st.name
		}
		if it.node.Type != xmldom.ElementNode || it.doc {
			return false
		}
		return st.name == "*" || it.node.Name == st.name
	}
	return false
}

func filterPreds(ns nodeset, preds []expr, c *evalCtx) nodeset {
	for _, pred := range preds {
		var kept nodeset
		for i, it := range ns {
			pc := &evalCtx{item: it, pos: i + 1, size: len(ns), doc: c.doc}
			v := pred.eval(pc)
			ok := false
			if n, isNum := v.(float64); isNum {
				ok = int(n) == pc.pos // positional predicate, e.g. [2]
			} else {
				ok = toBool(v)
			}
			if ok {
				kept = append(kept, it)
			}
		}
		ns = kept
	}
	return ns
}

func (f *funcCall) eval(c *evalCtx) value {
	argStr := func(i int) string {
		if i < len(f.args) {
			return toString(f.args[i].eval(c))
		}
		return c.item.stringValue()
	}
	switch f.name {
	case "string":
		return argStr(0)
	case "number":
		if len(f.args) == 0 {
			return toNumber(c.item.stringValue())
		}
		return toNumber(f.args[0].eval(c))
	case "boolean":
		return toBool(f.args[0].eval(c))
	case "not":
		return !toBool(f.args[0].eval(c))
	case "true":
		return true
	case "false":
		return false
	case "count":
		if ns, ok := f.args[0].eval(c).(nodeset); ok {
			return float64(len(ns))
		}
		return 0.0
	case "last":
		return float64(c.size)
	case "position":
		return float64(c.pos)
	case "name":
		it := c.item
		if len(f.args) == 1 {
			ns, ok := f.args[0].eval(c).(nodeset)
			if !ok || len(ns) == 0 {
				return ""
			}
			it = ns[0]
		}
		if it.attr {
			return it.name
		}
		if it.doc || it.node.Type != xmldom.ElementNode {
			return ""
		}
		return it.node.Name
	case "contains":
		return strings.Contains(argStr(0), toString(f.args[1].eval(c)))
	case "starts-with":
		return strings.HasPrefix(argStr(0), toString(f.args[1].eval(c)))
	case "normalize-space":
		return strings.Join(strings.Fields(argStr(0)), " ")
	case "string-length":
		return float64(len([]rune(argStr(0))))
	case "concat":
		var b strings.Builder
		for _, a := range f.args {
			b.WriteString(toString(a.eval(c)))
		}
		return b.String()
	case "substring-before":
		s, sep := argStr(0), toString(f.args[1].eval(c))
		if i := strings.Index(s, sep); i >= 0 && sep != "" {
			return s[:i]
		}
		return ""
	case "substring-after":
		s, sep := argStr(0), toString(f.args[1].eval(c))
		if sep == "" {
			return s
		}
		if i := strings.Index(s, sep); i >= 0 {
			return s[i+len(sep):]
		}
		return ""
	case "translate":
		s := argStr(0)
		from := []rune(toString(f.args[1].eval(c)))
		to := []rune(toString(f.args[2].eval(c)))
		var b strings.Builder
		for _, r := range s {
			idx := -1
			for i, fr := range from {
				if fr == r {
					idx = i
					break
				}
			}
			switch {
			case idx < 0:
				b.WriteRune(r)
			case idx < len(to):
				b.WriteRune(to[idx])
				// idx >= len(to): character removed
			}
		}
		return b.String()
	case "sum":
		ns, ok := f.args[0].eval(c).(nodeset)
		if !ok {
			return math.NaN()
		}
		total := 0.0
		for _, it := range ns {
			total += toNumber(it.stringValue())
		}
		return total
	case "floor":
		return math.Floor(toNumber(f.args[0].eval(c)))
	case "ceiling":
		return math.Ceil(toNumber(f.args[0].eval(c)))
	case "round":
		// XPath round: round half towards positive infinity
		return math.Floor(toNumber(f.args[0].eval(c)) + 0.5)
	case "substring":
		s := []rune(argStr(0))
		start := int(math.Round(toNumber(f.args[1].eval(c)))) - 1
		length := len(s) - start
		if len(f.args) == 3 {
			length = int(math.Round(toNumber(f.args[2].eval(c))))
		}
		if start < 0 {
			length += start
			start = 0
		}
		if start >= len(s) || length <= 0 {
			return ""
		}
		if start+length > len(s) {
			length = len(s) - start
		}
		return string(s[start : start+length])
	}
	return nil
}

// ---- type conversions (XPath 1.0 semantics) ----

func toString(v value) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	case bool:
		if x {
			return "true"
		}
		return "false"
	case float64:
		return formatNumber(x)
	case nodeset:
		if len(x) == 0 {
			return ""
		}
		return x[0].stringValue()
	}
	return ""
}

func formatNumber(f float64) string {
	if math.IsNaN(f) {
		return "NaN"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatFloat(f, 'f', 0, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func toNumber(v value) float64 {
	switch x := v.(type) {
	case nil:
		return math.NaN()
	case float64:
		return x
	case bool:
		if x {
			return 1
		}
		return 0
	case string:
		f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
		if err != nil {
			return math.NaN()
		}
		return f
	case nodeset:
		return toNumber(toString(x))
	}
	return math.NaN()
}

func toBool(v value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case float64:
		return x != 0 && !math.IsNaN(x)
	case string:
		return x != ""
	case nodeset:
		return len(x) > 0
	}
	return false
}

// compare implements XPath 1.0 comparison semantics, including the
// existential rules for node-sets ("true if ANY node satisfies").
func compare(op binOp, l, r value) bool {
	ln, lIsSet := l.(nodeset)
	rn, rIsSet := r.(nodeset)
	switch {
	case lIsSet && rIsSet:
		for _, a := range ln {
			for _, b := range rn {
				if cmpAtom(op, a.stringValue(), b.stringValue()) {
					return true
				}
			}
		}
		return false
	case lIsSet:
		for _, a := range ln {
			if cmpMixed(op, a.stringValue(), r) {
				return true
			}
		}
		return false
	case rIsSet:
		for _, b := range rn {
			if cmpMixed(flip(op), b.stringValue(), l) {
				return true
			}
		}
		return false
	default:
		return cmpScalar(op, l, r)
	}
}

func flip(op binOp) binOp {
	switch op {
	case opLt:
		return opGt
	case opLe:
		return opGe
	case opGt:
		return opLt
	case opGe:
		return opLe
	}
	return op
}

// cmpMixed compares a node string-value against a scalar.
func cmpMixed(op binOp, nodeVal string, scalar value) bool {
	switch s := scalar.(type) {
	case bool:
		b := nodeVal != "" // boolean() of a single node's value as string
		return cmpScalar(op, b, s)
	case float64:
		return cmpScalar(op, toNumber(nodeVal), s)
	case string:
		return cmpAtom(op, nodeVal, s)
	}
	return false
}

// cmpAtom compares two strings: equality as strings, ordering as numbers.
func cmpAtom(op binOp, a, b string) bool {
	switch op {
	case opEq:
		return a == b
	case opNeq:
		return a != b
	default:
		return cmpNum(op, toNumber(a), toNumber(b))
	}
}

func cmpScalar(op binOp, l, r value) bool {
	if lb, ok := l.(bool); ok {
		rb := toBool(r)
		switch op {
		case opEq:
			return lb == rb
		case opNeq:
			return lb != rb
		default:
			return cmpNum(op, toNumber(lb), toNumber(rb))
		}
	}
	if rb, ok := r.(bool); ok {
		lb := toBool(l)
		switch op {
		case opEq:
			return lb == rb
		case opNeq:
			return lb != rb
		default:
			return cmpNum(op, toNumber(lb), toNumber(rb))
		}
	}
	if _, ok := l.(float64); ok {
		return cmpNum(op, l.(float64), toNumber(r))
	}
	if _, ok := r.(float64); ok {
		return cmpNum(op, toNumber(l), r.(float64))
	}
	// both strings
	ls, rs := toString(l), toString(r)
	switch op {
	case opEq:
		return ls == rs
	case opNeq:
		return ls != rs
	default:
		return cmpNum(op, toNumber(ls), toNumber(rs))
	}
}

func cmpNum(op binOp, a, b float64) bool {
	switch op {
	case opEq:
		return a == b
	case opNeq:
		return a != b
	case opLt:
		return a < b
	case opLe:
		return a <= b
	case opGt:
		return a > b
	case opGe:
		return a >= b
	}
	return false
}
