package xpath

import (
	"strings"
	"testing"
	"testing/quick"

	"trustvo/internal/xmldom"
)

const credDoc = `
<credential credID="12" type="ISO 9000 Certified">
  <header>
    <credType>ISO 9000 Certified</credType>
    <issuer>INFN</issuer>
    <expiration_Date>2010-10-26T21:32:52</expiration_Date>
  </header>
  <content>
    <QualityRegulation>UNI EN ISO 9000</QualityRegulation>
    <level>3</level>
  </content>
  <signature>aGVsbG8=</signature>
</credential>`

func doc(t testing.TB, s string) *xmldom.Node {
	t.Helper()
	n, err := xmldom.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func evalStr(t testing.TB, expr string, d *xmldom.Node) string {
	t.Helper()
	e, err := Compile(expr)
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	return e.StringValue(d)
}

func evalBool(t testing.TB, expr string, d *xmldom.Node) bool {
	t.Helper()
	e, err := Compile(expr)
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	return e.Bool(d)
}

func TestAbsolutePath(t *testing.T) {
	d := doc(t, credDoc)
	if got := evalStr(t, "/credential/header/issuer", d); got != "INFN" {
		t.Fatalf("issuer = %q", got)
	}
}

func TestRelativePathFromRoot(t *testing.T) {
	d := doc(t, credDoc)
	if got := evalStr(t, "header/credType", d); got != "ISO 9000 Certified" {
		t.Fatalf("credType = %q", got)
	}
}

func TestAttributeStep(t *testing.T) {
	d := doc(t, credDoc)
	if got := evalStr(t, "/credential/@type", d); got != "ISO 9000 Certified" {
		t.Fatalf("@type = %q", got)
	}
	if got := evalStr(t, "@credID", d); got != "12" {
		t.Fatalf("@credID = %q", got)
	}
}

func TestDescendantOrSelf(t *testing.T) {
	d := doc(t, credDoc)
	if got := evalStr(t, "//QualityRegulation", d); got != "UNI EN ISO 9000" {
		t.Fatalf("//QualityRegulation = %q", got)
	}
	if got := evalStr(t, "//issuer", d); got != "INFN" {
		t.Fatalf("//issuer = %q", got)
	}
}

func TestWildcardAndParent(t *testing.T) {
	d := doc(t, credDoc)
	e := MustCompile("/credential/*")
	if got := len(e.Select(d)); got != 3 {
		t.Fatalf("child count = %d, want 3", got)
	}
	if got := evalStr(t, "/credential/header/../signature", d); got != "aGVsbG8=" {
		t.Fatalf("parent nav = %q", got)
	}
}

func TestPredicatesComparison(t *testing.T) {
	d := doc(t, credDoc)
	cases := []struct {
		expr string
		want bool
	}{
		{`/credential/content/QualityRegulation='UNI EN ISO 9000'`, true},
		{`/credential/content/QualityRegulation='ISO 14000'`, false},
		{`/credential/header/issuer='INFN'`, true},
		{`/credential/content/level > 2`, true},
		{`/credential/content/level >= 3`, true},
		{`/credential/content/level < 3`, false},
		{`/credential/content/level != 3`, false},
		{`/credential[@type='ISO 9000 Certified']/header/issuer = 'INFN'`, true},
		{`/credential[@type='other']`, false},
		{`contains(/credential/content/QualityRegulation, 'ISO 9000')`, true},
		{`starts-with(/credential/header/issuer, 'IN')`, true},
		{`not(/credential/missing)`, true},
		{`count(/credential/content/*) = 2`, true},
		{`/credential/header/issuer='INFN' and /credential/content/level=3`, true},
		{`/credential/header/issuer='X' or /credential/content/level=3`, true},
		{`/credential/header/issuer='X' or /credential/content/level=4`, false},
		{`boolean(//signature)`, true},
		{`string-length(/credential/header/issuer) = 4`, true},
		{`normalize-space(concat('  a ', 'b  ')) = 'a b'`, true},
	}
	for _, c := range cases {
		if got := evalBool(t, c.expr, d); got != c.want {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestPositionalPredicates(t *testing.T) {
	d := doc(t, `<r><i>a</i><i>b</i><i>c</i></r>`)
	if got := evalStr(t, "/r/i[2]", d); got != "b" {
		t.Fatalf("i[2] = %q", got)
	}
	if got := evalStr(t, "/r/i[last()]", d); got != "c" {
		t.Fatalf("i[last()] = %q", got)
	}
	if got := evalStr(t, "/r/i[position()=1]", d); got != "a" {
		t.Fatalf("i[position()=1] = %q", got)
	}
}

func TestUnion(t *testing.T) {
	d := doc(t, `<r><a>1</a><b>2</b><c>3</c></r>`)
	e := MustCompile("/r/c | /r/a")
	ns := e.Select(d)
	if len(ns) != 2 {
		t.Fatalf("union size = %d", len(ns))
	}
	// document order restored
	if ns[0].Name != "a" || ns[1].Name != "c" {
		t.Fatalf("union order = %s,%s", ns[0].Name, ns[1].Name)
	}
}

func TestArithmetic(t *testing.T) {
	d := doc(t, `<r><n>10</n><m>4</m></r>`)
	e := MustCompile("/r/n + /r/m * 2")
	if got := e.Number(d); got != 18 {
		t.Fatalf("arith = %v", got)
	}
	if got := MustCompile("/r/n mod /r/m").Number(d); got != 2 {
		t.Fatalf("mod = %v", got)
	}
	if got := MustCompile("-/r/m + 5").Number(d); got != 1 {
		t.Fatalf("neg = %v", got)
	}
	if got := MustCompile("/r/n div /r/m").Number(d); got != 2.5 {
		t.Fatalf("div = %v", got)
	}
}

func TestTextStep(t *testing.T) {
	d := doc(t, `<r>hello</r>`)
	if got := evalStr(t, "/r/text()", d); got != "hello" {
		t.Fatalf("text() = %q", got)
	}
}

func TestNameFunction(t *testing.T) {
	d := doc(t, `<r><child/></r>`)
	if got := evalStr(t, "name(/r/*)", d); got != "child" {
		t.Fatalf("name = %q", got)
	}
}

func TestSubstring(t *testing.T) {
	d := doc(t, `<r/>`)
	if got := evalStr(t, "substring('12345', 2, 3)", d); got != "234" {
		t.Fatalf("substring = %q", got)
	}
	if got := evalStr(t, "substring('12345', 2)", d); got != "2345" {
		t.Fatalf("substring open = %q", got)
	}
}

func TestExistentialNodesetComparison(t *testing.T) {
	d := doc(t, `<r><v>1</v><v>2</v><v>3</v></r>`)
	// true if ANY v equals 2
	if !evalBool(t, "/r/v = 2", d) {
		t.Fatal("existential equality failed")
	}
	if !evalBool(t, "/r/v > 2", d) {
		t.Fatal("existential > failed")
	}
	if evalBool(t, "/r/v > 3", d) {
		t.Fatal("no v > 3, expected false")
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",
		"/a[",
		"foo(",
		"unknownfn()",
		"/a/@",
		"a ! b",
		"'unterminated",
		"contains('x')",
		"a b",
		"count()",
	}
	for _, s := range bad {
		if _, err := Compile(s); err == nil {
			t.Errorf("Compile(%q): expected error", s)
		}
	}
}

func TestSyntaxErrorHasPosition(t *testing.T) {
	_, err := Compile("/a[@b=")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("expected SyntaxError, got %T: %v", err, err)
	}
	if se.Pos == 0 && !strings.Contains(se.Error(), "offset") {
		t.Fatalf("error should carry offset: %v", se)
	}
}

func TestAttrWildcard(t *testing.T) {
	d := doc(t, `<r a="1" b="2"/>`)
	e := MustCompile("count(@*) = 2")
	if !e.Bool(d) {
		t.Fatal("attr wildcard count failed")
	}
}

func TestSelectValuesIncludesAttrs(t *testing.T) {
	d := doc(t, `<r><e k="x">1</e><e k="y">2</e></r>`)
	vals := MustCompile("/r/e/@k").SelectValues(d)
	if len(vals) != 2 || vals[0] != "x" || vals[1] != "y" {
		t.Fatalf("SelectValues = %v", vals)
	}
}

func TestBooleanOfEmptyNodeset(t *testing.T) {
	d := doc(t, `<r/>`)
	if evalBool(t, "/r/missing", d) {
		t.Fatal("empty node-set should be false")
	}
}

func TestRelativeFromInnerContext(t *testing.T) {
	d := doc(t, credDoc)
	header := d.Child("header")
	e := MustCompile("issuer")
	if got := e.StringValue(header); got != "INFN" {
		t.Fatalf("relative from inner = %q", got)
	}
	// absolute path from inner context still reaches document root
	if got := MustCompile("/credential/signature").StringValue(header); got != "aGVsbG8=" {
		t.Fatalf("absolute from inner = %q", got)
	}
}

func TestPredicateOnAttrOfStep(t *testing.T) {
	d := doc(t, `<certs><cert issuer="AAA">1</cert><cert issuer="BBB">2</cert></certs>`)
	if got := evalStr(t, "/certs/cert[@issuer='BBB']", d); got != "2" {
		t.Fatalf("pred attr = %q", got)
	}
}

// Property: compiled expressions never panic on arbitrary small documents.
func TestQuickNoPanic(t *testing.T) {
	exprs := []*Expr{
		MustCompile("//x"),
		MustCompile("/a/b[@c='1']"),
		MustCompile("count(//*) > 0"),
		MustCompile("string(/a)"),
		MustCompile("//*[contains(., 'q')]"),
	}
	f := func(names []uint8, texts []string) bool {
		root := xmldom.NewElement("a")
		cur := root
		for i, b := range names {
			if i > 30 {
				break
			}
			el := xmldom.NewElement(string(rune('a' + b%4)))
			if len(texts) > 0 {
				el.AppendChild(xmldom.NewText(texts[i%len(texts)]))
			}
			cur.AppendChild(el)
			if b%3 == 0 {
				cur = el
			}
		}
		for _, e := range exprs {
			e.Bool(root)
			e.StringValue(root)
			e.Select(root)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateReturnsNodes(t *testing.T) {
	d := doc(t, `<r><a/><a/></r>`)
	v := MustCompile("/r/a").Evaluate(d)
	ns, ok := v.([]*xmldom.Node)
	if !ok || len(ns) != 2 {
		t.Fatalf("Evaluate = %#v", v)
	}
}

func BenchmarkCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MustCompile(`/credential[@type='ISO 9000 Certified']/content/QualityRegulation = 'UNI EN ISO 9000'`)
	}
}

func BenchmarkEvalCondition(b *testing.B) {
	d := doc(b, credDoc)
	e := MustCompile(`/credential/content/QualityRegulation = 'UNI EN ISO 9000'`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Bool(d) {
			b.Fatal("condition false")
		}
	}
}

func BenchmarkEvalDescendant(b *testing.B) {
	d := doc(b, credDoc)
	e := MustCompile(`//QualityRegulation`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Select(d)
	}
}

func TestStringFunctions(t *testing.T) {
	d := doc(t, `<r><v>1</v><v>2.5</v><v>3</v></r>`)
	cases := []struct {
		expr string
		want string
	}{
		{`substring-before('2009-10-26', '-')`, "2009"},
		{`substring-before('abc', 'x')`, ""},
		{`substring-before('abc', '')`, ""},
		{`substring-after('2009-10-26', '-')`, "10-26"},
		{`substring-after('abc', 'x')`, ""},
		{`substring-after('abc', '')`, "abc"},
		{`translate('bar', 'abc', 'ABC')`, "BAr"},
		{`translate('--aaa--', 'a-', 'A')`, "AAA"}, // '-' removed
	}
	for _, c := range cases {
		if got := evalStr(t, c.expr, d); got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
}

func TestNumericFunctions(t *testing.T) {
	d := doc(t, `<r><v>1</v><v>2.5</v><v>3</v></r>`)
	cases := []struct {
		expr string
		want float64
	}{
		{`sum(/r/v)`, 6.5},
		{`floor(2.7)`, 2},
		{`ceiling(2.1)`, 3},
		{`round(2.5)`, 3},
		{`round(-2.5)`, -2}, // XPath: round half toward +inf
		{`floor(-2.5)`, -3},
	}
	for _, c := range cases {
		e := MustCompile(c.expr)
		if got := e.Number(d); got != c.want {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
	// sum of a non-nodeset is NaN
	if got := MustCompile(`sum(/r/v)`).Number(d); got != 6.5 {
		t.Errorf("sum = %v", got)
	}
}
