package xpath

import (
	"fmt"
)

// ---- AST ----

type expr interface {
	eval(c *evalCtx) value
}

type binOp int

const (
	opOr binOp = iota
	opAnd
	opEq
	opNeq
	opLt
	opLe
	opGt
	opGe
	opAdd
	opSub
	opMul
	opDiv
	opMod
	opUnion
)

type binExpr struct {
	op   binOp
	l, r expr
}

type negExpr struct{ x expr }

type numLit float64

type strLit string

type funcCall struct {
	name string
	args []expr
}

type axis int

const (
	axisChild axis = iota
	axisAttribute
	axisDescendantOrSelf
	axisSelf
	axisParent
)

type nodeTest int

const (
	testName nodeTest = iota // match element/attribute by name ("" + wildcard flag for *)
	testText                 // text()
	testNode                 // node()
)

type step struct {
	axis  axis
	test  nodeTest
	name  string // for testName; "*" means wildcard
	preds []expr
}

type pathExpr struct {
	absolute bool
	steps    []step
}

// ---- Parser (recursive descent over the token list) ----

type parser struct {
	src  string
	toks []token
	i    int
}

// Expr is a compiled XPath expression, safe for concurrent use.
type Expr struct {
	src string
	ast expr
}

// String returns the source text the expression was compiled from.
func (e *Expr) String() string { return e.src }

// Compile parses src into an evaluatable expression.
func Compile(src string) (*Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	ast, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing %q", p.cur().String())
	}
	return &Expr{src: src, ast: ast}, nil
}

// MustCompile is Compile that panics on error, for statically known
// expressions.
func MustCompile(src string) *Expr {
	e, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) accept(k tokKind) bool {
	if p.cur().kind == k {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, what string) error {
	if !p.accept(k) {
		return p.errf("expected %s, found %q", what, p.cur().String())
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Expr: p.src, Pos: p.cur().pos, Msg: fmt.Sprintf(format, args...)}
}

// parseExpr := orExpr
func (p *parser) parseExpr() (expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOr) {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: opOr, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr, error) {
	l, err := p.parseEquality()
	if err != nil {
		return nil, err
	}
	for p.accept(tokAnd) {
		r, err := p.parseEquality()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: opAnd, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseEquality() (expr, error) {
	l, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for {
		var op binOp
		switch p.cur().kind {
		case tokEq:
			op = opEq
		case tokNeq:
			op = opNeq
		default:
			return l, nil
		}
		p.i++
		r, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: op, l: l, r: r}
	}
}

func (p *parser) parseRelational() (expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		var op binOp
		switch p.cur().kind {
		case tokLt:
			op = opLt
		case tokLe:
			op = opLe
		case tokGt:
			op = opGt
		case tokGe:
			op = opGe
		default:
			return l, nil
		}
		p.i++
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: op, l: l, r: r}
	}
}

func (p *parser) parseAdditive() (expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op binOp
		switch p.cur().kind {
		case tokPlus:
			op = opAdd
		case tokMinus:
			op = opSub
		default:
			return l, nil
		}
		p.i++
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: op, l: l, r: r}
	}
}

func (p *parser) parseMultiplicative() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op binOp
		switch p.cur().kind {
		case tokStar:
			// '*' is multiplication only in operator position; the lexer
			// cannot tell, so the parser decides: a '*' reached here (after
			// a completed operand) is arithmetic.
			op = opMul
		case tokDiv:
			op = opDiv
		case tokMod:
			op = opMod
		default:
			return l, nil
		}
		p.i++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: op, l: l, r: r}
	}
}

func (p *parser) parseUnary() (expr, error) {
	if p.accept(tokMinus) {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &negExpr{x: x}, nil
	}
	return p.parseUnion()
}

func (p *parser) parseUnion() (expr, error) {
	l, err := p.parsePathOrPrimary()
	if err != nil {
		return nil, err
	}
	for p.accept(tokPipe) {
		r, err := p.parsePathOrPrimary()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: opUnion, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parsePathOrPrimary() (expr, error) {
	switch t := p.cur(); t.kind {
	case tokNumber:
		p.i++
		return numLit(t.num), nil
	case tokString:
		p.i++
		return strLit(t.text), nil
	case tokLParen:
		p.i++
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	case tokName:
		// Function call when immediately followed by '(' and the name is
		// not a node-test keyword.
		if p.toks[p.i+1].kind == tokLParen && t.text != "text" && t.text != "node" {
			return p.parseFuncCall()
		}
		return p.parsePath()
	case tokSlash, tokDblSlash, tokDot, tokDotDot, tokAt, tokStar:
		return p.parsePath()
	default:
		return nil, p.errf("unexpected %q", t.String())
	}
}

func (p *parser) parseFuncCall() (expr, error) {
	name := p.next().text
	if err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	fc := &funcCall{name: name}
	if !p.accept(tokRParen) {
		for {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fc.args = append(fc.args, arg)
			if p.accept(tokComma) {
				continue
			}
			if err := p.expect(tokRParen, ") or ,"); err != nil {
				return nil, err
			}
			break
		}
	}
	if err := checkFuncArity(fc); err != nil {
		return nil, &SyntaxError{Expr: p.src, Pos: p.toks[p.i-1].pos, Msg: err.Error()}
	}
	return fc, nil
}

func (p *parser) parsePath() (expr, error) {
	path := &pathExpr{}
	switch p.cur().kind {
	case tokSlash:
		p.i++
		path.absolute = true
		if !p.startsStep() {
			// bare "/" selects the document root
			return path, nil
		}
	case tokDblSlash:
		p.i++
		path.absolute = true
		path.steps = append(path.steps, step{axis: axisDescendantOrSelf, test: testNode})
	}
	for {
		st, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		path.steps = append(path.steps, st)
		if p.accept(tokSlash) {
			continue
		}
		if p.accept(tokDblSlash) {
			path.steps = append(path.steps, step{axis: axisDescendantOrSelf, test: testNode})
			continue
		}
		return path, nil
	}
}

func (p *parser) startsStep() bool {
	switch p.cur().kind {
	case tokName, tokStar, tokAt, tokDot, tokDotDot:
		return true
	}
	return false
}

func (p *parser) parseStep() (step, error) {
	var st step
	switch t := p.cur(); t.kind {
	case tokDot:
		p.i++
		st = step{axis: axisSelf, test: testNode}
	case tokDotDot:
		p.i++
		st = step{axis: axisParent, test: testNode}
	case tokAt:
		p.i++
		switch a := p.cur(); a.kind {
		case tokName:
			p.i++
			st = step{axis: axisAttribute, test: testName, name: a.text}
		case tokStar:
			p.i++
			st = step{axis: axisAttribute, test: testName, name: "*"}
		default:
			return st, p.errf("expected attribute name after @")
		}
	case tokStar:
		p.i++
		st = step{axis: axisChild, test: testName, name: "*"}
	case tokName:
		p.i++
		if t.text == "text" && p.cur().kind == tokLParen {
			p.i++
			if err := p.expect(tokRParen, ")"); err != nil {
				return st, err
			}
			st = step{axis: axisChild, test: testText}
		} else if t.text == "node" && p.cur().kind == tokLParen {
			p.i++
			if err := p.expect(tokRParen, ")"); err != nil {
				return st, err
			}
			st = step{axis: axisChild, test: testNode}
		} else {
			st = step{axis: axisChild, test: testName, name: t.text}
		}
	default:
		return st, p.errf("expected location step, found %q", t.String())
	}
	for p.accept(tokLBracket) {
		pred, err := p.parseExpr()
		if err != nil {
			return st, err
		}
		if err := p.expect(tokRBracket, "]"); err != nil {
			return st, err
		}
		st.preds = append(st.preds, pred)
	}
	return st, nil
}

func checkFuncArity(fc *funcCall) error {
	type arity struct{ min, max int }
	table := map[string]arity{
		"string":           {0, 1},
		"number":           {0, 1},
		"boolean":          {1, 1},
		"not":              {1, 1},
		"true":             {0, 0},
		"false":            {0, 0},
		"count":            {1, 1},
		"last":             {0, 0},
		"position":         {0, 0},
		"name":             {0, 1},
		"contains":         {2, 2},
		"starts-with":      {2, 2},
		"normalize-space":  {0, 1},
		"string-length":    {0, 1},
		"concat":           {2, 1 << 30},
		"substring":        {2, 3},
		"substring-before": {2, 2},
		"substring-after":  {2, 2},
		"translate":        {3, 3},
		"sum":              {1, 1},
		"floor":            {1, 1},
		"ceiling":          {1, 1},
		"round":            {1, 1},
	}
	a, ok := table[fc.name]
	if !ok {
		return fmt.Errorf("unknown function %s()", fc.name)
	}
	if n := len(fc.args); n < a.min || n > a.max {
		return fmt.Errorf("%s() takes %d..%d arguments, got %d", fc.name, a.min, a.max, n)
	}
	return nil
}
