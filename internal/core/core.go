// Package core implements the paper's primary contribution: the VO
// lifecycle extended with trust negotiation at its three interaction
// points (§5, Fig. 3):
//
//   - Identification: the VO Initiator defines, per role, the disclosure
//     policies that will drive admission negotiations.
//   - Formation: the Initiator engages a TN with every candidate
//     accepting its invitation; acceptance is mutual, and a successful
//     negotiation ends with the release of an X.509 VO membership
//     token minted at runtime (§6.3).
//   - Operation: members run further TNs to re-validate expiring
//     credentials, and member replacement repeats the formation
//     protocol for the vacant role.
//
// The package wires together the TN engine (internal/negotiation), the
// VO substrate (internal/vo), the public repository (internal/vo/registry)
// and the PKI (internal/pki).
package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"trustvo/internal/negotiation"
	"trustvo/internal/pki"
	"trustvo/internal/vo"
	"trustvo/internal/vo/registry"
	"trustvo/internal/xtnl"
)

// Invitation is the formation-phase message delivered to a candidate's
// mailbox (§6.1: "Invitations appear in the Mailbox of the new potential
// members. The message contains the text entered in the invitation
// screen.").
type Invitation struct {
	VO   string
	Role string
	Goal string
	From string
	Text string
}

// MemberAgent is the service-provider side of the lifecycle: its
// negotiation identity, its published service description and its
// mailbox. Safe for concurrent use.
type MemberAgent struct {
	Party       *negotiation.Party
	Description *registry.Description
	// AcceptInvitation decides whether to accept an invitation before
	// any negotiation starts (nil = accept everything). Acceptance in
	// TN is mutual (§5.1): the potential member can also walk away.
	AcceptInvitation func(*Invitation) bool

	mu      sync.Mutex
	mailbox []*Invitation
	tokens  map[string][]byte // VO name -> membership token DER
}

// NewMemberAgent wraps a negotiation party and its service description.
func NewMemberAgent(p *negotiation.Party, d *registry.Description) *MemberAgent {
	return &MemberAgent{Party: p, Description: d, tokens: make(map[string][]byte)}
}

// Publish registers the agent's description in the public repository
// (the preparation phase of §2).
func (a *MemberAgent) Publish(reg *registry.Registry) error {
	if a.Description == nil {
		return errors.New("core: agent has no service description to publish")
	}
	return reg.Publish(a.Description)
}

// Deliver puts an invitation in the agent's mailbox.
func (a *MemberAgent) Deliver(inv *Invitation) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.mailbox = append(a.mailbox, inv)
}

// Mailbox returns a copy of the pending invitations.
func (a *MemberAgent) Mailbox() []*Invitation {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]*Invitation(nil), a.mailbox...)
}

// accepts applies the agent's acceptance policy.
func (a *MemberAgent) accepts(inv *Invitation) bool {
	if a.AcceptInvitation == nil {
		return true
	}
	return a.AcceptInvitation(inv)
}

// storeToken records the membership token received for a VO.
func (a *MemberAgent) storeToken(voName string, der []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tokens == nil {
		a.tokens = make(map[string][]byte)
	}
	a.tokens[voName] = der
}

// MembershipToken returns the agent's membership token for a VO, nil if
// it never joined.
func (a *MemberAgent) MembershipToken(voName string) []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tokens[voName]
}

// RegisterTicket makes the agent's membership token for voName usable
// as a credential in future negotiations (§5.1: admission policies "can
// require … tickets attesting their participation to other VOs"). The
// ticket appears in the profile as a VOParticipation credential and is
// disclosed in its X.509 form; counterparts accept it after adding the
// issuing VO's trust anchor (pki.VOAuthority.TrustAnchor).
func (a *MemberAgent) RegisterTicket(voName string) error {
	der := a.MembershipToken(voName)
	if der == nil {
		return fmt.Errorf("core: %s holds no membership token for %s", a.Party.Name, voName)
	}
	view, err := pki.DecodeX509Attribute(der)
	if err != nil {
		return fmt.Errorf("core: membership token for %s: %w", voName, err)
	}
	a.Party.Profile.Add(view)
	if a.Party.X509 == nil {
		a.Party.X509 = make(map[string][]byte)
	}
	a.Party.X509[view.ID] = der
	return nil
}

// Initiator is the TN-extended VO Initiator: it owns the VO, the
// registry handle, and the negotiation party whose policy set carries
// the per-role admission policies.
type Initiator struct {
	VO       *vo.VO
	Party    *negotiation.Party
	Registry *registry.Registry
	// SelfCA is the initiator's own credential authority. It signs the
	// VO-property credential (§8's extension of "requesting credentials
	// that describe VO properties"): candidates whose transient
	// formation policies "check the VO Initiator affiliation … and
	// other possible VO properties that were not advertised" (§5.1)
	// verify it against this authority's key.
	SelfCA *pki.Authority
}

// VOPropertyType is the credential type describing a VO's properties.
const VOPropertyType = "VOProperty"

// NewInitiator performs the identification phase: it creates the VO from
// the contract and installs every role's admission policies into the
// initiator's disclosure-policy set ("The VO Initiator … locally defines
// the disclosure policies to be used during the TN with potential
// members. Policies are created for the specific VO and in particular
// for the roles", §5.1). The party's Grant hook is wired to admit the
// peer and mint its membership token.
func NewInitiator(contract *vo.Contract, party *negotiation.Party, reg *registry.Registry) (*Initiator, error) {
	v, err := vo.New(contract)
	if err != nil {
		return nil, err
	}
	ini := &Initiator{VO: v, Party: party, Registry: reg}
	for _, role := range contract.Roles {
		res := vo.MembershipResource(contract.VOName, role.Name)
		if len(role.AdmissionPolicies) == 0 {
			return nil, fmt.Errorf("core: role %s has no admission policies; use an explicit DELIV rule for open roles", role.Name)
		}
		for _, p := range role.AdmissionPolicies {
			cp := *p
			cp.Resource = res
			if err := party.Policies.Add(&cp); err != nil {
				return nil, fmt.Errorf("core: role %s: %w", role.Name, err)
			}
		}
	}
	party.Grant = ini.grantMembership

	// Mint the VO-property credential and place it in the initiator's
	// profile, so formation negotiations can answer candidates'
	// transient policies about the VO itself.
	selfCA, err := pki.NewAuthority(contract.Initiator)
	if err != nil {
		return nil, err
	}
	ini.SelfCA = selfCA
	voProp, err := selfCA.Issue(pki.IssueRequest{
		Type:        VOPropertyType,
		Holder:      contract.Initiator,
		Sensitivity: xtnl.SensitivityLow,
		Attributes: []xtnl.Attribute{
			{Name: "voName", Value: contract.VOName},
			{Name: "goal", Value: contract.Goal},
			{Name: "initiator", Value: contract.Initiator},
			{Name: "roles", Value: strconv.Itoa(len(contract.Roles))},
		},
	})
	if err != nil {
		return nil, err
	}
	party.Profile.Add(voProp)
	return ini, nil
}

// VOProperty returns the initiator's VO-property credential (nil if the
// profile was replaced).
func (ini *Initiator) VOProperty() *xtnl.Credential {
	for _, c := range ini.Party.Profile.ByType(VOPropertyType) {
		return c
	}
	return nil
}

// grantMembership is the negotiation Grant hook: a successful admission
// negotiation admits the peer into the role encoded in the resource name
// and returns the DER of its freshly minted X.509 membership token.
func (ini *Initiator) grantMembership(resource, peer string) ([]byte, error) {
	voName, role, ok := splitMembershipResource(resource)
	if !ok || voName != ini.VO.Contract.VOName {
		return nil, fmt.Errorf("core: grant for unexpected resource %q", resource)
	}
	m, err := ini.VO.Admit(peer, role)
	if err != nil {
		return nil, err
	}
	return m.Token.DER, nil
}

func splitMembershipResource(resource string) (voName, role string, ok bool) {
	parts := strings.Split(resource, "/")
	if len(parts) != 3 || parts[0] != "VoMembership" {
		return "", "", false
	}
	return parts[1], parts[2], true
}

// Discover queries the public repository for candidates matching a
// role's capability requirements (the formation-phase shortlist, §2).
func (ini *Initiator) Discover(role string) ([]*registry.Description, error) {
	spec := ini.VO.Contract.Role(role)
	if spec == nil {
		return nil, fmt.Errorf("%w: %s", vo.ErrUnknownRole, role)
	}
	return ini.Registry.FindByCapabilities(spec.Capabilities), nil
}

// Invite delivers a formation invitation to the candidate's mailbox.
func (ini *Initiator) Invite(agent *MemberAgent, role string) *Invitation {
	inv := &Invitation{
		VO:   ini.VO.Contract.VOName,
		Role: role,
		Goal: ini.VO.Contract.Goal,
		From: ini.VO.Contract.Initiator,
		Text: fmt.Sprintf("You are invited to join %s as %s.", ini.VO.Contract.VOName, role),
	}
	agent.Deliver(inv)
	return inv
}

// Errors reported by the join protocol.
var (
	ErrDeclined     = errors.New("core: candidate declined the invitation")
	ErrNotPublished = errors.New("core: candidate has not published a service description")
	ErrNegotiation  = errors.New("core: admission negotiation failed")
)

// JoinOptions tunes the join protocol.
type JoinOptions struct {
	// Negotiate runs the formation-phase trust negotiation (the paper's
	// integrated path). When false the candidate is admitted directly —
	// the pre-integration baseline of Fig. 9's "Join" bar.
	Negotiate bool
}

// Join runs the full §5.1/Fig. 4 join protocol for one candidate:
// repository check, invitation, mutual acceptance, trust negotiation
// (optional), admission and membership-token delivery. It returns the
// admitted member and, when a negotiation ran, its outcome.
func (ini *Initiator) Join(agent *MemberAgent, role string, opt JoinOptions) (*vo.Member, *negotiation.Outcome, error) {
	if ini.Registry.Lookup(agent.Party.Name) == nil {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotPublished, agent.Party.Name)
	}
	inv := ini.Invite(agent, role)
	if !agent.accepts(inv) {
		return nil, nil, fmt.Errorf("%w: %s for role %s", ErrDeclined, agent.Party.Name, role)
	}
	if !opt.Negotiate {
		m, err := ini.VO.Admit(agent.Party.Name, role)
		if err != nil {
			return nil, nil, err
		}
		agent.storeToken(ini.VO.Contract.VOName, m.Token.DER)
		return m, nil, nil
	}
	resource := vo.MembershipResource(ini.VO.Contract.VOName, role)
	reqOut, _, err := negotiation.Run(agent.Party, ini.Party, resource)
	if err != nil {
		return nil, nil, err
	}
	if !reqOut.Succeeded {
		return nil, reqOut, fmt.Errorf("%w: %s", ErrNegotiation, reqOut.Reason)
	}
	agent.storeToken(ini.VO.Contract.VOName, reqOut.Grant)
	m := ini.VO.Member(agent.Party.Name)
	if m == nil {
		return nil, reqOut, errors.New("core: negotiation succeeded but member not admitted")
	}
	return m, reqOut, nil
}

// JoinFirst tries candidates in order until one joins — the Initiator
// "may engage multiple negotiations for a same role, to ensure that the
// role will be covered by at least one member" (§5.1, Fig. 4). Failed
// candidates are removed from the shortlist and the next is tried.
func (ini *Initiator) JoinFirst(agents []*MemberAgent, role string, opt JoinOptions) (*vo.Member, error) {
	var errs []string
	for _, a := range agents {
		m, _, err := ini.Join(a, role, opt)
		if err == nil {
			return m, nil
		}
		errs = append(errs, a.Party.Name+": "+err.Error())
	}
	return nil, fmt.Errorf("core: no candidate joined role %s: %s", role, strings.Join(errs, "; "))
}

// JoinConcurrent negotiates with all candidates for a role in parallel
// and keeps the first opt.Keep (default 1) that succeed (EXT-8). Excess
// successes are expelled again — the role's capacity in the VO substrate
// is the final arbiter.
func (ini *Initiator) JoinConcurrent(agents []*MemberAgent, role string, opt JoinOptions) ([]*vo.Member, error) {
	type res struct {
		m   *vo.Member
		err error
	}
	ch := make(chan res, len(agents))
	for _, a := range agents {
		go func(a *MemberAgent) {
			m, _, err := ini.Join(a, role, opt)
			ch <- res{m: m, err: err}
		}(a)
	}
	var members []*vo.Member
	var errs []string
	for range agents {
		r := <-ch
		if r.err != nil {
			errs = append(errs, r.err.Error())
			continue
		}
		members = append(members, r.m)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("core: no candidate joined role %s: %s", role, strings.Join(errs, "; "))
	}
	return members, nil
}

// Form runs the formation phase for every role: discovery, invitation
// and TN-backed joins until each role reaches MinMembers, then moves to
// operation. agents maps provider names to their agents (live endpoints
// for the shortlisted descriptions).
func (ini *Initiator) Form(agents map[string]*MemberAgent, opt JoinOptions) error {
	if err := ini.VO.StartFormation(); err != nil {
		return err
	}
	for _, role := range ini.VO.Contract.Roles {
		descs, err := ini.Discover(role.Name)
		if err != nil {
			return err
		}
		joined := len(ini.VO.MembersInRole(role.Name))
		for _, d := range descs {
			if joined >= role.MinMembers {
				break
			}
			agent, ok := agents[d.Provider]
			if !ok {
				continue
			}
			if _, _, err := ini.Join(agent, role.Name, opt); err == nil {
				joined++
			}
		}
		if joined < role.MinMembers {
			return fmt.Errorf("%w: role %s covered by %d of %d", vo.ErrRolesUncovered, role.Name, joined, role.MinMembers)
		}
	}
	return ini.VO.StartOperation()
}

// Replace handles the §5.1 operational-phase replacement: the violating
// member is reported and expelled, and the role is refilled through the
// formation protocol. It returns the new member.
func (ini *Initiator) Replace(oldMember string, candidates []*MemberAgent, opt JoinOptions) (*vo.Member, error) {
	m := ini.VO.Member(oldMember)
	if m == nil {
		return nil, fmt.Errorf("%w: %s", vo.ErrNotMember, oldMember)
	}
	role := m.Role
	if err := ini.VO.ReportViolation(oldMember, "contract", "replaced after contract violation", 3); err != nil {
		return nil, err
	}
	if err := ini.VO.Remove(oldMember); err != nil {
		return nil, err
	}
	return ini.JoinFirst(candidates, role, opt)
}

// Revalidate runs an operation-phase TN between two members (§5.1: the
// design optimization partner re-checks that the web portal's ISO
// certification "is still valid"). The requester asks the controller
// for the named resource; the result is an authorization, not a
// membership ("the result of a TN, in this case, is not a credential,
// but it is an authorization to execute the next VO operations"). A
// failed revalidation lowers the controller's reputation.
func (ini *Initiator) Revalidate(requester, controller *MemberAgent, resource string) (*negotiation.Outcome, error) {
	out, _, err := negotiation.Run(requester.Party, controller.Party, resource)
	if err != nil {
		return nil, err
	}
	if !out.Succeeded {
		if m := ini.VO.Member(controller.Party.Name); m != nil {
			_ = ini.VO.ReportViolation(controller.Party.Name, "revalidation:"+resource, out.Reason, 2)
		}
	}
	return out, nil
}

// VerifyPeerMembership lets one member check another member's X.509
// token against the VO authority (operational-phase authentication with
// the token of §5.1).
func (ini *Initiator) VerifyPeerMembership(tokenDER []byte) (*vo.Member, error) {
	return ini.VO.VerifyMembership(tokenDER)
}
