package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"trustvo/internal/negotiation"
	"trustvo/internal/pki"
	"trustvo/internal/vo"
	"trustvo/internal/vo/registry"
	"trustvo/internal/xtnl"
)

// scenario builds the Aircraft Optimization VO of §3: the Aircraft
// company initiates; the Aerospace company (Design Web Portal), a design
// optimization consultancy, an HPC provider and a storage provider are
// the candidates.
type scenario struct {
	qualityCA *pki.Authority
	certCA    *pki.Authority

	reg *registry.Registry
	ini *Initiator

	aerospace *MemberAgent
	optimizer *MemberAgent
	hpc       *MemberAgent
	storage   *MemberAgent
}

func trust(t testing.TB, cas ...*pki.Authority) *pki.TrustStore {
	t.Helper()
	return pki.NewTrustStore(cas...)
}

func (s *scenario) agents() map[string]*MemberAgent {
	return map[string]*MemberAgent{
		"AerospaceCo": s.aerospace,
		"OptimizeCo":  s.optimizer,
		"HPCCo":       s.hpc,
		"StorageCo":   s.storage,
	}
}

func newScenario(t testing.TB) *scenario {
	t.Helper()
	s := &scenario{
		qualityCA: pki.MustNewAuthority("QualityCA"),
		certCA:    pki.MustNewAuthority("CertCA"),
		reg:       registry.New(),
	}
	mkAgent := func(name, service string, caps []string, creds ...*xtnl.Credential) *MemberAgent {
		prof := xtnl.NewProfile(name)
		prof.Add(creds...)
		p := &negotiation.Party{
			Name:     name,
			Profile:  prof,
			Policies: xtnl.MustPolicySet(),
			Trust:    trust(t, s.qualityCA, s.certCA),
		}
		return NewMemberAgent(p, &registry.Description{
			Provider: name, Service: service, Capabilities: caps,
		})
	}
	s.aerospace = mkAgent("AerospaceCo", "DesignPortal", []string{"design-db"},
		s.qualityCA.MustIssue(pki.IssueRequest{
			Type: "WebDesignerQuality", Holder: "AerospaceCo",
			Attributes: []xtnl.Attribute{{Name: "regulation", Value: "UNI EN ISO 9000"}},
		}),
		s.certCA.MustIssue(pki.IssueRequest{
			Type: "ISO 9000 Certified", Holder: "AerospaceCo",
			Attributes: []xtnl.Attribute{{Name: "QualityRegulation", Value: "UNI EN ISO 9000"}},
		}),
	)
	s.optimizer = mkAgent("OptimizeCo", "DesignOptimization", []string{"optimization"},
		s.certCA.MustIssue(pki.IssueRequest{Type: "OptimizationLicense", Holder: "OptimizeCo"}),
		s.certCA.MustIssue(pki.IssueRequest{Type: "PrivacyRegulator", Holder: "OptimizeCo"}),
	)
	s.hpc = mkAgent("HPCCo", "NumericalSimulation", []string{"simulation"},
		s.certCA.MustIssue(pki.IssueRequest{Type: "HPCCertification", Holder: "HPCCo"}))
	s.storage = mkAgent("StorageCo", "IndustrialStorage", []string{"storage"})

	contract := &vo.Contract{
		VOName:    "AircraftOptimizationVO",
		Goal:      "low-emission, fuel-efficient wing design",
		Initiator: "AircraftCo",
		Roles: []vo.RoleSpec{
			{Name: "DesignWebPortal", Capabilities: []string{"design-db"}, MinMembers: 1,
				AdmissionPolicies: xtnl.MustParsePolicies("Membership <- WebDesignerQuality(regulation='UNI EN ISO 9000')")},
			{Name: "DesignOptimization", Capabilities: []string{"optimization"}, MinMembers: 1,
				AdmissionPolicies: xtnl.MustParsePolicies("Membership <- OptimizationLicense")},
			{Name: "HPC", Capabilities: []string{"simulation"}, MinMembers: 1, MaxMembers: 2,
				AdmissionPolicies: xtnl.MustParsePolicies("Membership <- HPCCertification")},
			{Name: "Storage", Capabilities: []string{"storage"}, MinMembers: 1,
				AdmissionPolicies: xtnl.MustParsePolicies("Membership <- DELIV")},
		},
		Rules: []vo.Rule{
			{Operation: "optimize", Callers: []string{"DesignWebPortal", "DesignOptimization"}, Target: "HPC"},
			{Operation: "store", Target: "Storage"},
		},
	}
	iniParty := &negotiation.Party{
		Name:     "AircraftCo",
		Profile:  xtnl.NewProfile("AircraftCo"),
		Policies: xtnl.MustPolicySet(),
		Trust:    trust(t, s.qualityCA, s.certCA),
	}
	iniParty.Profile.Add(s.certCA.MustIssue(pki.IssueRequest{
		Type: "AAAccreditation", Holder: "AircraftCo", Sensitivity: xtnl.SensitivityLow,
	}))
	ini, err := NewInitiator(contract, iniParty, s.reg)
	if err != nil {
		t.Fatal(err)
	}
	s.ini = ini

	for _, a := range s.agents() {
		if err := a.Publish(s.reg); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestLifecycleInterleavingFig3 walks the complete extended lifecycle of
// Fig. 3: identification (admission policies installed), formation
// (TN-backed joins), operation (re-validation TN, violation, member
// replacement TN) and dissolution.
func TestLifecycleInterleavingFig3(t *testing.T) {
	s := newScenario(t)

	// Identification: admission policies were installed per role.
	res := vo.MembershipResource("AircraftOptimizationVO", "DesignWebPortal")
	if got := s.ini.Party.Policies.For(res); len(got) != 1 {
		t.Fatalf("admission policies for %s = %d", res, len(got))
	}

	// Formation: every role filled through TN, then operation starts.
	if err := s.ini.Form(s.agents(), JoinOptions{Negotiate: true}); err != nil {
		t.Fatal(err)
	}
	if s.ini.VO.Phase() != vo.Operation {
		t.Fatalf("phase = %v", s.ini.VO.Phase())
	}
	if got := len(s.ini.VO.Members()); got != 4 {
		t.Fatalf("members = %d", got)
	}
	// every member holds a verifiable X.509 token
	for name, a := range s.agents() {
		der := a.MembershipToken("AircraftOptimizationVO")
		if der == nil {
			t.Fatalf("%s has no membership token", name)
		}
		if _, err := s.ini.VerifyPeerMembership(der); err != nil {
			t.Fatalf("%s token: %v", name, err)
		}
	}

	// Operation: the optimizer re-validates the portal's ISO cert via TN
	// (§5.1 second example). The portal protects the certification
	// behind the privacy-regulator requirement.
	s.aerospace.Party.Policies.Add(xtnl.MustParsePolicies("Certification <- PrivacyRegulator")[0])
	out, err := s.ini.Revalidate(s.optimizer, s.aerospace, "Certification")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Succeeded {
		t.Fatalf("revalidation failed: %s", out.Reason)
	}

	// A violation lowers the HPC provider's reputation, and it gets
	// replaced via a fresh formation-style TN (§5.1 third example).
	now := time.Now()
	before := s.ini.VO.Reputation.Score("HPCCo", now)
	s.ini.VO.ReportViolation("HPCCo", "simulate", "quality of service breach", 3)
	if s.ini.VO.Reputation.Score("HPCCo", now) >= before {
		t.Fatal("violation did not lower reputation")
	}
	newHPCParty := &negotiation.Party{
		Name:     "BetterHPCCo",
		Profile:  xtnl.NewProfile("BetterHPCCo"),
		Policies: xtnl.MustPolicySet(),
		Trust:    trust(t, s.qualityCA, s.certCA),
	}
	newHPCParty.Profile.Add(s.certCA.MustIssue(pki.IssueRequest{Type: "HPCCertification", Holder: "BetterHPCCo"}))
	newHPC := NewMemberAgent(newHPCParty, &registry.Description{Provider: "BetterHPCCo", Service: "Sim", Capabilities: []string{"simulation"}})
	newHPC.Publish(s.reg)
	m, err := s.ini.Replace("HPCCo", []*MemberAgent{newHPC}, JoinOptions{Negotiate: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "BetterHPCCo" || s.ini.VO.Member("HPCCo") != nil {
		t.Fatalf("replacement: %+v", m)
	}

	// Dissolution.
	if err := s.ini.VO.Dissolve(); err != nil {
		t.Fatal(err)
	}
	if s.ini.VO.Phase() != vo.Dissolution {
		t.Fatalf("phase = %v", s.ini.VO.Phase())
	}
}

// TestFormationSequenceFig4 checks the Fig. 4 message sequence for a
// single candidate: invitation delivered, mutual acceptance, TN run,
// membership token released on success.
func TestFormationSequenceFig4(t *testing.T) {
	s := newScenario(t)
	if err := s.ini.VO.StartFormation(); err != nil {
		t.Fatal(err)
	}

	m, out, err := s.ini.Join(s.aerospace, "DesignWebPortal", JoinOptions{Negotiate: true})
	if err != nil {
		t.Fatal(err)
	}
	// invitation reached the mailbox
	inbox := s.aerospace.Mailbox()
	if len(inbox) != 1 || inbox[0].Role != "DesignWebPortal" || inbox[0].VO != "AircraftOptimizationVO" {
		t.Fatalf("mailbox = %+v", inbox)
	}
	// a real negotiation ran
	if out == nil || out.Rounds == 0 {
		t.Fatalf("no negotiation rounds recorded: %+v", out)
	}
	// the initiator received and verified the quality credential
	if m.Role != "DesignWebPortal" {
		t.Fatalf("member = %+v", m)
	}
	// the grant is the member's X.509 token
	tok, err := s.ini.VO.Authority.VerifyMembership(out.Grant)
	if err != nil {
		t.Fatal(err)
	}
	if tok.Member != "AerospaceCo" || tok.Role != "DesignWebPortal" {
		t.Fatalf("token = %+v", tok)
	}
}

func TestJoinMutualAcceptance(t *testing.T) {
	s := newScenario(t)
	s.ini.VO.StartFormation()
	s.aerospace.AcceptInvitation = func(inv *Invitation) bool {
		return inv.VO != "AircraftOptimizationVO" // declines this VO
	}
	_, _, err := s.ini.Join(s.aerospace, "DesignWebPortal", JoinOptions{Negotiate: true})
	if !errors.Is(err, ErrDeclined) {
		t.Fatalf("err = %v", err)
	}
	if s.ini.VO.Member("AerospaceCo") != nil {
		t.Fatal("declined candidate admitted")
	}
}

func TestJoinRequiresPublication(t *testing.T) {
	s := newScenario(t)
	s.ini.VO.StartFormation()
	s.reg.Withdraw("AerospaceCo")
	_, _, err := s.ini.Join(s.aerospace, "DesignWebPortal", JoinOptions{Negotiate: true})
	if !errors.Is(err, ErrNotPublished) {
		t.Fatalf("err = %v", err)
	}
}

func TestJoinFailedNegotiationNotAdmitted(t *testing.T) {
	s := newScenario(t)
	s.ini.VO.StartFormation()
	// the storage provider lacks the HPC certification
	_, out, err := s.ini.Join(s.storage, "HPC", JoinOptions{Negotiate: true})
	if !errors.Is(err, ErrNegotiation) {
		t.Fatalf("err = %v", err)
	}
	if out == nil || out.Succeeded {
		t.Fatalf("outcome = %+v", out)
	}
	if s.ini.VO.Member("StorageCo") != nil {
		t.Fatal("failed negotiator admitted")
	}
}

func TestJoinWithoutNegotiationBaseline(t *testing.T) {
	s := newScenario(t)
	s.ini.VO.StartFormation()
	m, out, err := s.ini.Join(s.hpc, "HPC", JoinOptions{Negotiate: false})
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Fatal("baseline join should not negotiate")
	}
	if m.Role != "HPC" || s.hpc.MembershipToken("AircraftOptimizationVO") == nil {
		t.Fatalf("baseline join incomplete: %+v", m)
	}
}

func TestJoinFirstFallsBack(t *testing.T) {
	s := newScenario(t)
	s.ini.VO.StartFormation()
	// storage (no HPC cert) fails, hpc succeeds
	m, err := s.ini.JoinFirst([]*MemberAgent{s.storage, s.hpc}, "HPC", JoinOptions{Negotiate: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "HPCCo" {
		t.Fatalf("joined = %s", m.Name)
	}
	// all candidates failing surfaces every error
	_, err = s.ini.JoinFirst([]*MemberAgent{s.storage}, "DesignOptimization", JoinOptions{Negotiate: true})
	if err == nil || !strings.Contains(err.Error(), "StorageCo") {
		t.Fatalf("err = %v", err)
	}
}

func TestJoinConcurrentKeepsCapacity(t *testing.T) {
	s := newScenario(t)
	s.ini.VO.StartFormation()
	// two capable HPC candidates, role capacity 2
	otherParty := &negotiation.Party{
		Name:     "HPC2Co",
		Profile:  xtnl.NewProfile("HPC2Co"),
		Policies: xtnl.MustPolicySet(),
		Trust:    trust(t, s.qualityCA, s.certCA),
	}
	otherParty.Profile.Add(s.certCA.MustIssue(pki.IssueRequest{Type: "HPCCertification", Holder: "HPC2Co"}))
	other := NewMemberAgent(otherParty, &registry.Description{Provider: "HPC2Co", Service: "Sim", Capabilities: []string{"simulation"}})
	other.Publish(s.reg)

	members, err := s.ini.JoinConcurrent([]*MemberAgent{s.hpc, other}, "HPC", JoinOptions{Negotiate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 2 {
		t.Fatalf("concurrent joins = %d", len(members))
	}
	// all-failure case
	_, err = s.ini.JoinConcurrent([]*MemberAgent{s.storage}, "DesignOptimization", JoinOptions{Negotiate: true})
	if err == nil {
		t.Fatal("expected concurrent join failure")
	}
}

func TestRevalidateFailureLowersReputation(t *testing.T) {
	s := newScenario(t)
	if err := s.ini.Form(s.agents(), JoinOptions{Negotiate: true}); err != nil {
		t.Fatal(err)
	}
	// aerospace protects Certification behind something the optimizer lacks
	s.aerospace.Party.Policies.Add(xtnl.MustParsePolicies("Certification <- SomethingRare")[0])
	now := time.Now()
	before := s.ini.VO.Reputation.Score("AerospaceCo", now)
	out, err := s.ini.Revalidate(s.optimizer, s.aerospace, "Certification")
	if err != nil {
		t.Fatal(err)
	}
	if out.Succeeded {
		t.Fatal("revalidation should fail")
	}
	if s.ini.VO.Reputation.Score("AerospaceCo", now) >= before {
		t.Fatal("failed revalidation did not lower reputation")
	}
}

func TestDiscoverMatchesCapabilities(t *testing.T) {
	s := newScenario(t)
	descs, err := s.ini.Discover("HPC")
	if err != nil {
		t.Fatal(err)
	}
	if len(descs) != 1 || descs[0].Provider != "HPCCo" {
		t.Fatalf("discover(HPC) = %+v", descs)
	}
	if _, err := s.ini.Discover("Nope"); !errors.Is(err, vo.ErrUnknownRole) {
		t.Fatalf("unknown role: %v", err)
	}
}

func TestNewInitiatorRejectsPolicylessRole(t *testing.T) {
	contract := &vo.Contract{
		VOName: "V", Initiator: "I",
		Roles: []vo.RoleSpec{{Name: "R"}},
	}
	party := &negotiation.Party{Name: "I", Profile: xtnl.NewProfile("I"), Policies: xtnl.MustPolicySet()}
	if _, err := NewInitiator(contract, party, registry.New()); err == nil {
		t.Fatal("role without admission policies accepted")
	}
}

func TestGrantRejectsForeignResource(t *testing.T) {
	s := newScenario(t)
	s.ini.VO.StartFormation()
	if _, err := s.ini.Party.Grant("VoMembership/OtherVO/Role", "peer"); err == nil {
		t.Fatal("grant for foreign VO accepted")
	}
	if _, err := s.ini.Party.Grant("garbage", "peer"); err == nil {
		t.Fatal("grant for malformed resource accepted")
	}
}

func TestReplaceUnknownMember(t *testing.T) {
	s := newScenario(t)
	if _, err := s.ini.Replace("Nobody", nil, JoinOptions{}); !errors.Is(err, vo.ErrNotMember) {
		t.Fatalf("err = %v", err)
	}
}

// TestVOPropertyCredential covers the §8 "credentials that describe VO
// properties" extension: a candidate's transient formation policy
// demands proof of the VO's goal before the candidate discloses its
// quality credential. The initiator answers with its self-signed
// VO-property credential.
func TestVOPropertyCredential(t *testing.T) {
	s := newScenario(t)
	s.ini.VO.StartFormation()

	// The initiator's profile carries the VOProperty credential.
	prop := s.ini.VOProperty()
	if prop == nil {
		t.Fatal("VO-property credential missing")
	}
	if v, _ := prop.Attr("voName"); v != "AircraftOptimizationVO" {
		t.Fatalf("voName = %q", v)
	}
	if v, _ := prop.Attr("goal"); v == "" {
		t.Fatal("goal attribute missing")
	}

	// Candidate-side transient policy (§5.1): only join VOs whose
	// property credential names this VO.
	s.aerospace.Party.Policies.Add(xtnl.MustParsePolicies(
		"WebDesignerQuality <- VOProperty(voName='AircraftOptimizationVO')")[0])
	// Without trusting the initiator's self CA, verification fails.
	if _, _, err := s.ini.Join(s.aerospace, "DesignWebPortal", JoinOptions{Negotiate: true}); err == nil {
		t.Fatal("VO property accepted without trusting the initiator CA")
	}
	// After installing the trust root, the mutual negotiation succeeds.
	s.aerospace.Party.Trust.AddRoot(s.ini.SelfCA.Name, s.ini.SelfCA.Keys.Public)
	m, out, err := s.ini.Join(s.aerospace, "DesignWebPortal", JoinOptions{Negotiate: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Role != "DesignWebPortal" {
		t.Fatalf("member = %+v", m)
	}
	// the candidate received and verified the VO-property credential
	found := false
	for _, d := range out.Received {
		if d.Credential.Type == VOPropertyType {
			found = true
		}
	}
	if !found {
		t.Fatalf("VO property not disclosed: %+v", out.Received)
	}

	// A candidate demanding a DIFFERENT VO never joins.
	s.optimizer.Party.Trust.AddRoot(s.ini.SelfCA.Name, s.ini.SelfCA.Keys.Public)
	s.optimizer.Party.Policies.Add(xtnl.MustParsePolicies(
		"OptimizationLicense <- VOProperty(voName='SomeOtherVO')")[0])
	if _, _, err := s.ini.Join(s.optimizer, "DesignOptimization", JoinOptions{Negotiate: true}); err == nil {
		t.Fatal("joined a VO whose properties fail the transient policy")
	}
}

// TestParticipationTicketAcrossVOs implements the §5.1 requirement that
// admission policies "can require … tickets attesting their
// participation to other VOs": the aerospace company joins the Aircraft
// Optimization VO, registers its membership token as a ticket, and then
// joins a SECOND VO whose admission policy demands proof of that
// participation.
func TestParticipationTicketAcrossVOs(t *testing.T) {
	s := newScenario(t)
	s.ini.VO.StartFormation()
	if _, _, err := s.ini.Join(s.aerospace, "DesignWebPortal", JoinOptions{Negotiate: true}); err != nil {
		t.Fatal(err)
	}
	// turn the membership token into a usable credential
	if err := s.aerospace.RegisterTicket("AircraftOptimizationVO"); err != nil {
		t.Fatal(err)
	}

	// A second VO requires the ticket for admission.
	contract2 := &vo.Contract{
		VOName: "FollowUpVO", Initiator: "ConsortiumCo",
		Roles: []vo.RoleSpec{{
			Name: "Partner", MinMembers: 1,
			AdmissionPolicies: xtnl.MustParsePolicies(
				"M <- VOParticipation(vo='AircraftOptimizationVO')"),
		}},
	}
	ini2Party := &negotiation.Party{
		Name:     "ConsortiumCo",
		Profile:  xtnl.NewProfile("ConsortiumCo"),
		Policies: xtnl.MustPolicySet(),
		Trust:    trust(t, s.qualityCA, s.certCA),
	}
	// the second VO trusts the first VO's membership authority
	anchorName, anchorKey := s.ini.VO.Authority.TrustAnchor()
	ini2Party.Trust.AddRoot(anchorName, anchorKey)
	reg2 := registry.New()
	ini2, err := NewInitiator(contract2, ini2Party, reg2)
	if err != nil {
		t.Fatal(err)
	}
	ini2.VO.StartFormation()
	if err := s.aerospace.Publish(reg2); err != nil {
		t.Fatal(err)
	}
	m, out, err := ini2.Join(s.aerospace, "Partner", JoinOptions{Negotiate: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Role != "Partner" || !out.Succeeded {
		t.Fatalf("ticket-based join: %+v %+v", m, out)
	}

	// Without the trust anchor, the ticket is rejected.
	s.optimizer.Party.Profile.Add(func() *xtnl.Credential {
		return &xtnl.Credential{Type: "nothing-useful"}
	}())
	contract3 := &vo.Contract{
		VOName: "UntrustingVO", Initiator: "SkepticCo",
		Roles: []vo.RoleSpec{{
			Name: "Partner", MinMembers: 1,
			AdmissionPolicies: xtnl.MustParsePolicies(
				"M <- VOParticipation(vo='AircraftOptimizationVO')"),
		}},
	}
	ini3Party := &negotiation.Party{
		Name:     "SkepticCo",
		Profile:  xtnl.NewProfile("SkepticCo"),
		Policies: xtnl.MustPolicySet(),
		Trust:    trust(t, s.qualityCA, s.certCA), // NO anchor for the VO authority
	}
	ini3, err := NewInitiator(contract3, ini3Party, reg2)
	if err != nil {
		t.Fatal(err)
	}
	ini3.VO.StartFormation()
	if _, _, err := ini3.Join(s.aerospace, "Partner", JoinOptions{Negotiate: true}); err == nil {
		t.Fatal("ticket accepted without trust anchor")
	}
}

func TestRegisterTicketWithoutJoin(t *testing.T) {
	s := newScenario(t)
	if err := s.aerospace.RegisterTicket("NeverJoinedVO"); err == nil {
		t.Fatal("ticket registered without membership")
	}
}
