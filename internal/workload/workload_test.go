package workload

import (
	"testing"

	"trustvo/internal/negotiation"
)

// TestOracleAgreesWithEngine is the central engine property test: over
// hundreds of randomized policy worlds, the distributed negotiation must
// succeed exactly when the analytic AND-OR oracle says the policy graph
// is satisfiable.
func TestOracleAgreesWithEngine(t *testing.T) {
	sat, unsat := 0, 0
	for seed := int64(0); seed < 300; seed++ {
		w, err := Generate(DefaultConfig(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := w.Satisfiable()
		got, err := w.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got != want {
			t.Fatalf("seed %d: engine=%v oracle=%v\nheld=%v\npolicies=%v",
				seed, got, want, w.held, w.policies)
		}
		if want {
			sat++
		} else {
			unsat++
		}
	}
	// the configuration must exercise both outcomes to be meaningful
	if sat == 0 || unsat == 0 {
		t.Fatalf("degenerate workload mix: %d satisfiable, %d unsatisfiable", sat, unsat)
	}
	t.Logf("outcomes: %d satisfiable, %d unsatisfiable", sat, unsat)
}

// TestOracleAgreesUnderStress uses denser policies (more protection,
// more branching) to exercise deep chains, multiedges and cycles.
func TestOracleAgreesUnderStress(t *testing.T) {
	cfg := Config{
		CredTypes:         10,
		MaxAlternatives:   3,
		MaxTermsPerPolicy: 3,
		ProtectProb:       0.9,
		MissingProb:       0.15,
	}
	for seed := int64(0); seed < 150; seed++ {
		cfg.Seed = seed
		w, err := Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := w.Satisfiable()
		got, err := w.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got != want {
			t.Fatalf("seed %d: engine=%v oracle=%v\nheld=%v\npolicies=%v",
				seed, got, want, w.held, w.policies)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Satisfiable() != b.Satisfiable() {
		t.Fatal("same seed produced different worlds")
	}
	if a.Requester.Profile.Len() != b.Requester.Profile.Len() ||
		a.Controller.Policies.Len() != b.Controller.Policies.Len() {
		t.Fatal("same seed produced different inventories")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := Generate(Config{CredTypes: 1, MaxAlternatives: 0, MaxTermsPerPolicy: 1}); err == nil {
		t.Fatal("zero alternatives accepted")
	}
}

// TestRerunIsStable ensures a world can be negotiated repeatedly (the
// parties are not consumed by a run), which the benchmarks rely on.
func TestRerunIsStable(t *testing.T) {
	w, err := Generate(DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	first, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		got, err := w.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got != first {
			t.Fatalf("run %d changed outcome: %v -> %v", i, first, got)
		}
	}
}

func BenchmarkRandomWorldNegotiation(b *testing.B) {
	w, err := Generate(DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestOracleAgreesWithWildcards adds $any terms, exercising the engine's
// multi-candidate alternatives (one policy set per candidate type).
func TestOracleAgreesWithWildcards(t *testing.T) {
	cfg := Config{
		CredTypes:         8,
		MaxAlternatives:   2,
		MaxTermsPerPolicy: 2,
		ProtectProb:       0.7,
		MissingProb:       0.3,
		WildcardProb:      0.35,
	}
	sat := 0
	for seed := int64(0); seed < 250; seed++ {
		cfg.Seed = seed
		w, err := Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := w.Satisfiable()
		got, err := w.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got != want {
			t.Fatalf("seed %d: engine=%v oracle=%v\nheld=%v\npolicies=%v",
				seed, got, want, w.held, w.policies)
		}
		if want {
			sat++
		}
	}
	if sat == 0 || sat == 250 {
		t.Fatalf("degenerate wildcard mix: %d/250 satisfiable", sat)
	}
}

// TestStrategyInvariance: the negotiation strategy changes message
// traffic and confidentiality, never the outcome. Every generated world
// must succeed or fail identically under trusting and standard.
func TestStrategyInvariance(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		w, err := Generate(DefaultConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		base, err := w.Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []negotiation.Strategy{negotiation.Trusting, negotiation.StrongSuspicious} {
			if s == negotiation.StrongSuspicious {
				// strong-suspicious requires selective disclosure; the
				// generated plain credentials cannot satisfy it, so only
				// check the trusting variant for satisfiable worlds.
				continue
			}
			w2, err := Generate(DefaultConfig(seed))
			if err != nil {
				t.Fatal(err)
			}
			w2.Requester.Strategy = s
			w2.Controller.Strategy = s
			got, err := w2.Run()
			if err != nil {
				t.Fatal(err)
			}
			if got != base {
				t.Fatalf("seed %d: strategy %s changed outcome %v -> %v", seed, s, base, got)
			}
		}
	}
}
