// Package workload generates randomized two-party trust negotiation
// worlds — credential inventories and interlocking disclosure policies —
// together with an analytic satisfiability oracle.
//
// The generator drives two things:
//
//   - the EXT-* benchmark sweeps (policy-chain depth, branching), and
//   - the engine's property tests: for any generated world, running the
//     actual negotiation must agree with the oracle's AND-OR evaluation
//     of the policy graph (internal/negotiation's distributed tree
//     search must compute exactly this predicate).
//
// Generation is fully deterministic in Config.Seed.
package workload

import (
	"fmt"
	"math/rand"

	"trustvo/internal/negotiation"
	"trustvo/internal/pki"
	"trustvo/internal/xtnl"
)

// Config parameterizes world generation.
type Config struct {
	// Seed makes the world reproducible.
	Seed int64
	// CredTypes is the number of credential types in play (≥1).
	CredTypes int
	// MaxAlternatives bounds how many alternative policies may protect
	// one credential type (≥1).
	MaxAlternatives int
	// MaxTermsPerPolicy bounds the terms of one policy (multiedge width,
	// ≥1).
	MaxTermsPerPolicy int
	// ProtectProb is the probability that an owned credential type is
	// protected by policies (otherwise it is freely disclosable).
	ProtectProb float64
	// MissingProb is the probability that a party does NOT hold a
	// credential type at all (forcing denials).
	MissingProb float64
	// WildcardProb is the probability that a policy term leaves its
	// credential type open ($any), exercising multi-candidate
	// alternatives in the engine.
	WildcardProb float64
}

// DefaultConfig returns a medium-sized configuration.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:              seed,
		CredTypes:         8,
		MaxAlternatives:   2,
		MaxTermsPerPolicy: 2,
		ProtectProb:       0.6,
		MissingProb:       0.25,
	}
}

// World is one generated negotiation scenario.
type World struct {
	Requester  *negotiation.Party
	Controller *negotiation.Party
	// Resource is the negotiation target, protected by the controller.
	Resource string

	// spec mirrors, for the oracle: who holds what, and the policy
	// alternatives per (owner, credential type). An empty requirement
	// string denotes a wildcard ($any) term.
	held     map[string]map[string]bool       // owner -> type -> held
	owners   map[string]string                // type -> owner
	policies map[string]map[string][][]string // owner -> type/resource -> alternatives (lists of required types)
}

const (
	reqName = "REQ"
	ctlName = "CTL"
)

func other(owner string) string {
	if owner == reqName {
		return ctlName
	}
	return reqName
}

func typeName(i int) string { return fmt.Sprintf("Cred%02d", i) }

// Generate builds a world from the configuration.
func Generate(cfg Config) (*World, error) {
	if cfg.CredTypes < 1 || cfg.MaxAlternatives < 1 || cfg.MaxTermsPerPolicy < 1 {
		return nil, fmt.Errorf("workload: invalid config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ca, err := pki.NewAuthority("WorkloadCA")
	if err != nil {
		return nil, err
	}

	w := &World{
		Resource: "Resource",
		owners:   make(map[string]string),
		held: map[string]map[string]bool{
			reqName: make(map[string]bool),
			ctlName: make(map[string]bool),
		},
		policies: map[string]map[string][][]string{
			reqName: make(map[string][][]string),
			ctlName: make(map[string][][]string),
		},
	}

	profiles := map[string]*xtnl.Profile{
		reqName: xtnl.NewProfile(reqName),
		ctlName: xtnl.NewProfile(ctlName),
	}
	// Assign each credential type an owner (alternating start, random)
	// and decide whether it is held.
	owners := w.owners
	for i := 0; i < cfg.CredTypes; i++ {
		t := typeName(i)
		owner := reqName
		if rng.Intn(2) == 1 {
			owner = ctlName
		}
		owners[t] = owner
		if rng.Float64() >= cfg.MissingProb {
			w.held[owner][t] = true
			cred, err := ca.Issue(pki.IssueRequest{Type: t, Holder: owner})
			if err != nil {
				return nil, err
			}
			profiles[owner].Add(cred)
		}
	}

	// Policies: each held-or-not type may be protected; requirements are
	// random types owned by the counterpart.
	policySets := map[string]*xtnl.PolicySet{
		reqName: xtnl.MustPolicySet(),
		ctlName: xtnl.MustPolicySet(),
	}
	counterTypes := func(owner string) []string {
		var out []string
		for i := 0; i < cfg.CredTypes; i++ { // index order: deterministic
			t := typeName(i)
			if owners[t] == other(owner) {
				out = append(out, t)
			}
		}
		return out
	}
	addPolicies := func(owner, resource string) error {
		cands := counterTypes(owner)
		if len(cands) == 0 {
			// nothing to require: freely disclosable
			return nil
		}
		nAlts := 1 + rng.Intn(cfg.MaxAlternatives)
		var alts [][]string
		for a := 0; a < nAlts; a++ {
			nTerms := 1 + rng.Intn(cfg.MaxTermsPerPolicy)
			terms := make([]string, 0, nTerms)
			var xterms []xtnl.Term
			for t := 0; t < nTerms; t++ {
				req := cands[rng.Intn(len(cands))]
				wire := req
				if rng.Float64() < cfg.WildcardProb {
					req, wire = "", "$any" // wildcard term
				}
				terms = append(terms, req)
				xterms = append(xterms, xtnl.Term{CredType: wire})
			}
			alts = append(alts, terms)
			if err := policySets[owner].Add(&xtnl.Policy{Resource: resource, Terms: xterms}); err != nil {
				return err
			}
		}
		w.policies[owner][resource] = alts
		return nil
	}

	for i := 0; i < cfg.CredTypes; i++ {
		t := typeName(i)
		owner := owners[t]
		if rng.Float64() < cfg.ProtectProb {
			if err := addPolicies(owner, t); err != nil {
				return nil, err
			}
		}
	}
	// The root resource: always protected by the controller (a root
	// without policy is simply "not offered").
	if err := addPolicies(ctlName, w.Resource); err != nil {
		return nil, err
	}
	if len(w.policies[ctlName][w.Resource]) == 0 {
		// no requester-owned types exist; offer freely
		if err := policySets[ctlName].Add(&xtnl.Policy{Resource: w.Resource, Deliver: true}); err != nil {
			return nil, err
		}
		w.policies[ctlName][w.Resource] = [][]string{{}}
	}

	mkParty := func(name string) *negotiation.Party {
		return &negotiation.Party{
			Name:     name,
			Profile:  profiles[name],
			Policies: policySets[name],
			Trust:    pki.NewTrustStore(ca),
			// The oracle has no resource bounds; disable the engine's
			// policy-bomb guard so dense worlds compare apples to apples.
			MaxTreeNodes: 1 << 22,
			MaxRounds:    1 << 16,
		}
	}
	w.Requester = mkParty(reqName)
	w.Controller = mkParty(ctlName)
	return w, nil
}

// Satisfiable evaluates the policy graph analytically: can the
// negotiation for the root resource succeed? It mirrors the engine's
// semantics exactly:
//
//   - a requirement is satisfiable when its owner holds the credential
//     AND (the type is unprotected OR some alternative policy has all
//     its terms satisfiable);
//   - a held requirement whose (owner, type) already occurs on the
//     current path is a mutual-requirement interlock and is satisfied
//     by commitment (the engine complies and the trust sequence dedupes
//     the shared disclosure).
func (w *World) Satisfiable() bool {
	var sat func(owner, typ string, path map[string]bool) bool
	altsSat := func(owner string, alts [][]string, path map[string]bool) bool {
		for _, alt := range alts {
			ok := true
			for _, req := range alt {
				if !sat(other(owner), req, path) {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}
	sat = func(owner, typ string, path map[string]bool) bool {
		if typ == "" {
			// Wildcard ($any): the engine's candidates are every held
			// credential of the owner; a free candidate complies, else
			// the union of all candidates' policy alternatives applies.
			anyHeld := false
			for t, o := range w.owners {
				if o == owner && w.held[owner][t] {
					anyHeld = true
					break
				}
			}
			if !anyHeld {
				return false
			}
			key := owner + "/$any"
			if path[key] {
				return true // committed higher on the path (see below)
			}
			path[key] = true
			defer delete(path, key)
			for t, o := range w.owners {
				if o != owner || !w.held[owner][t] {
					continue
				}
				if _, protected := w.policies[owner][t]; !protected {
					return true // free candidate: engine answers COMPLY
				}
			}
			for t, o := range w.owners {
				if o != owner || !w.held[owner][t] {
					continue
				}
				if altsSat(owner, w.policies[owner][t], path) {
					return true
				}
			}
			return false
		}
		if typ != w.Resource && !w.held[owner][typ] {
			return false
		}
		key := owner + "/" + typ
		if path[key] {
			// Mutual-requirement cycle: the same held requirement is
			// already committed higher on the path, so the engine
			// complies (shared disclosure) rather than denying.
			return true
		}
		alts, protected := w.policies[owner][typ]
		if !protected {
			return true // unprotected: freely disclosable
		}
		path[key] = true
		defer delete(path, key)
		if altsSat(owner, alts, path) {
			return true
		}
		return false
	}
	return sat(ctlName, w.Resource, map[string]bool{})
}

// Run executes the actual negotiation and reports whether it succeeded.
func (w *World) Run() (bool, error) {
	out, _, err := negotiation.Run(w.Requester, w.Controller, w.Resource)
	if err != nil {
		return false, err
	}
	return out.Succeeded, nil
}
