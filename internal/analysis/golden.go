package analysis

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunGolden loads importPath through l, runs the analyzers over it, and
// compares the findings against `// want "regexp"` comments in the
// package's files: every finding must match an unconsumed want regexp
// on its line, and every want must be consumed. Multiple quoted
// regexps on one line expect multiple findings there.
func RunGolden(t testing.TB, l *Loader, importPath string, analyzers ...*Analyzer) {
	t.Helper()
	RunGoldenPkgs(t, l, []string{importPath}, analyzers...)
}

// RunGoldenPkgs is RunGolden over several packages analyzed together —
// the golden harness for the interprocedural analyzers, whose findings
// in one package may be witnessed by code in another. Want comments are
// collected from every listed package.
func RunGoldenPkgs(t testing.TB, l *Loader, importPaths []string, analyzers ...*Analyzer) {
	t.Helper()
	var pkgs []*Package
	for _, path := range importPaths {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	findings, err := Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("run %v: %v", importPaths, err)
	}
	type want struct {
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" → expectations
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, raw := range quotedStrings(t, rest) {
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", key, raw, err)
						}
						wants[key] = append(wants[key], &want{re: re, raw: raw})
					}
				}
			}
		}
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.File, f.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no finding matched want %q", key, w.raw)
			}
		}
	}
}

// quotedStrings extracts the sequence of Go-quoted strings from the
// tail of a want comment.
func quotedStrings(t testing.TB, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" || s[0] != '"' {
			break
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("bad want comment tail %q: %v", s, err)
		}
		raw, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("bad want string %q: %v", q, err)
		}
		out = append(out, raw)
		s = s[len(q):]
	}
	return out
}
