package analysis_test

import (
	"testing"

	"trustvo/internal/analysis"
)

// loadModule builds the interprocedural module over one fixture package.
func loadModule(t *testing.T, path string) *analysis.Module {
	t.Helper()
	pkg, err := testLoader(t).Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return analysis.NewModule([]*analysis.Package{pkg})
}

// callNames returns the display names of a node's resolved callees.
func callNames(m *analysis.Module, name string) map[string]bool {
	g := m.Graph()
	n := g.NodeByName(name)
	if n == nil {
		return nil
	}
	out := make(map[string]bool)
	for _, c := range g.Calls(n) {
		out[c.Name()] = true
	}
	return out
}

func wantCalls(t *testing.T, m *analysis.Module, caller string, want ...string) {
	t.Helper()
	got := callNames(m, caller)
	if got == nil {
		t.Fatalf("%s: no call-graph node", caller)
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("%s: missing callee %s (got %v)", caller, w, got)
		}
	}
}

func TestCallGraphDynamicDispatch(t *testing.T) {
	m := loadModule(t, "callgraph/a")

	// Interface dispatch resolves to every implementation's method.
	wantCalls(t, m, "a.Dispatch", "a.Fast.Run", "a.Slow.Run")

	// Generic constraint dispatch behaves like the constraint interface.
	wantCalls(t, m, "a.Generic", "a.Fast.Run", "a.Slow.Run")

	// A method value bound to a local still reaches the method.
	wantCalls(t, m, "a.MethodValue", "a.Fast.Run")

	// A func-valued hook field resolves to what was installed into it.
	wantCalls(t, m, "a.Fire", "a.tick")
}

func TestSummaryLockFacts(t *testing.T) {
	m := loadModule(t, "callgraph/a")
	n := m.Graph().NodeByName("a.Fast.Run")
	if n == nil {
		t.Fatal("a.Fast.Run: no call-graph node")
	}
	sum := m.Summary(n)
	if sum == nil {
		t.Fatal("a.Fast.Run: no summary")
	}
	var acquired, released []string
	for _, op := range sum.Ops {
		switch op.Kind {
		case analysis.OpAcquire:
			acquired = append(acquired, op.Lock)
		case analysis.OpRelease:
			released = append(released, op.Lock)
			if !op.Deferred {
				t.Errorf("a.Fast.Run: release of %s not recognized as deferred", op.Lock)
			}
		}
	}
	if len(acquired) != 1 || acquired[0] != "a.Fast.mu" {
		t.Errorf("acquired = %v, want [a.Fast.mu]", acquired)
	}
	if len(released) != 1 || released[0] != "a.Fast.mu" {
		t.Errorf("released = %v, want [a.Fast.mu]", released)
	}
}
