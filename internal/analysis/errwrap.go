package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
	"unicode"
	"unicode/utf8"
)

// errwrap enforces the module's error idiom: fmt.Errorf must wrap an
// error operand with %w (so errors.Is/As see through transport layers —
// the retry policy classifies wsrpc.Error by unwrapping), and error
// strings follow Go convention — lower-case first word, no trailing
// punctuation — so they compose when wrapped.
func errwrap() *Analyzer {
	a := &Analyzer{
		Name: "errwrap",
		Doc:  "fmt.Errorf wraps error operands with %w; error strings start lower-case and end without punctuation",
	}
	a.Run = func(p *Pass) error {
		info := p.Pkg.TypesInfo
		errorIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
		for _, file := range p.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := callee(info, call)
				switch {
				case isPkgFunc(fn, "fmt", "Errorf"):
					checkErrorf(p, info, errorIface, call)
				case isPkgFunc(fn, "errors", "New"):
					if len(call.Args) == 1 {
						checkErrorString(p, info, call.Args[0])
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

func checkErrorf(p *Pass, info *types.Info, errorIface *types.Interface, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	checkErrorString(p, info, call.Args[0])
	format, ok := constString(info, call.Args[0])
	if !ok {
		return
	}
	verbs := formatVerbs(format)
	operands := call.Args[1:]
	for i, v := range verbs {
		if i >= len(operands) {
			break
		}
		if v == 'w' {
			continue
		}
		t := info.Types[operands[i]].Type
		if t == nil || !types.Implements(t, errorIface) {
			continue
		}
		p.Reportf(operands[i].Pos(), "error operand formatted with %%%c; use %%w so callers can unwrap it", v)
	}
}

// checkErrorString applies the style rules to a constant string
// argument of errors.New / fmt.Errorf.
func checkErrorString(p *Pass, info *types.Info, arg ast.Expr) {
	s, ok := constString(info, arg)
	if !ok || s == "" {
		return
	}
	first, _ := utf8.DecodeRuneInString(s)
	rest := s[utf8.RuneLen(first):]
	second, _ := utf8.DecodeRuneInString(rest)
	// A capital is fine when it starts an initialism or proper token
	// ("TN service down", "X-TNL ..."), i.e. when the next rune is not
	// lower-case.
	if unicode.IsUpper(first) && unicode.IsLower(second) {
		p.Reportf(arg.Pos(), "error string %q is capitalized; error strings start lower-case", clip(s))
	}
	last, _ := utf8.DecodeLastRuneInString(s)
	if strings.ContainsRune(".!?\n", last) {
		p.Reportf(arg.Pos(), "error string %q ends with punctuation; error strings compose when wrapped", clip(s))
	}
}

// constString extracts the compile-time string value of an expression.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv := info.Types[e]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs returns the verb letter for each argument a format string
// consumes, in order. A '*' width or precision consumes an argument of
// its own and is emitted as a '*' pseudo-verb to keep alignment.
func formatVerbs(format string) []rune {
	var out []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
	flags:
		for i < len(format) {
			switch format[i] {
			case '*':
				out = append(out, '*')
				i++
			case '+', '-', '#', ' ', '0', '1', '2', '3', '4', '5', '6', '7', '8', '9', '.', '[', ']':
				i++
			default:
				break flags
			}
		}
		if i < len(format) && format[i] != '%' {
			out = append(out, rune(format[i]))
		}
	}
	return out
}

// clip shortens long strings for the finding message.
func clip(s string) string {
	if len(s) > 40 {
		return s[:37] + "..."
	}
	return s
}
