package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// callee resolves the *types.Func a call invokes, or nil for calls
// through function values, conversions, and builtins.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the named function from the package
// with the given import path.
func isPkgFunc(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// signatureTakesContext reports whether any parameter of sig (or, for
// variadic context slices, its element) is a context.Context.
func signatureTakesContext(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// derefStruct unwraps pointers, slices, and arrays down to a named
// struct type, returning the named type and its struct underlying, or
// nil when t does not bottom out at one.
func derefStruct(t types.Type) (*types.Named, *types.Struct) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		default:
			named, ok := t.(*types.Named)
			if !ok {
				return nil, nil
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				return nil, nil
			}
			return named, st
		}
	}
}

// pkgPathHasSuffix reports whether the import path is exactly name or
// ends in "/name" — suffix matching keeps the analyzers testable from
// golden packages whose paths mirror the real package names.
func pkgPathHasSuffix(path, name string) bool {
	return path == name || strings.HasSuffix(path, "/"+name)
}
