package analysis

import (
	"go/ast"
	"go/token"
)

// credtaint taint-tracks raw credential/ticket/session bytes from their
// decode sites (xmldom.Parse/ParseString, base64 decode, raw body
// reads — composed transitively through functions that return such
// values) into trust decisions, and demands the flow be guarded by BOTH
// a signature verification and an expiry check, with expiry checked
// first. That is PR 6's migration-ticket invariant (expiry → 410 before
// the Verify so expired tickets are a typed, counted, cheap condition)
// generalized to every adoption path: a snapshot a peer POSTs at us
// must never enter the session table on its own say-so.
//
// The trust decision recognized today is TNService.AdoptSessionDoc —
// the one call that turns an externally supplied document into a live
// negotiation session. Guards may live in callees: a helper that
// verifies and expiry-checks (a "sanitizer") makes its result trusted.
func credtaint() *Analyzer {
	a := &Analyzer{
		Name: "credtaint",
		Doc:  "externally decoded session/credential bytes must pass expiry + signature checks (in that order) before trust decisions",
	}
	a.RunModule = func(p *ModulePass) error {
		m := p.Module
		for _, n := range m.graph.Nodes {
			sum := m.sums[n]
			var sinks []*ast.CallExpr
			ast.Inspect(n.Body, func(an ast.Node) bool {
				if _, ok := an.(*ast.FuncLit); ok && an != n.Lit {
					return false
				}
				if call, ok := an.(*ast.CallExpr); ok {
					if fn := callee(n.Pkg.TypesInfo, call); fn != nil && fn.Name() == "AdoptSessionDoc" {
						sinks = append(sinks, call)
					}
				}
				return true
			})
			if len(sinks) == 0 {
				continue
			}
			ti := m.taintWalk(n)
			for _, sink := range sinks {
				taintedArg := false
				for _, arg := range sink.Args {
					if ti.tainted(arg) {
						taintedArg = true
						break
					}
				}
				if !taintedArg {
					continue
				}
				verify := firstBefore(sum.verifies, sink.Pos())
				expiry := firstBefore(sum.expiries, sink.Pos())
				switch {
				case verify == 0:
					p.Reportf(sink.Pos(), "externally decoded session document reaches AdoptSessionDoc without signature verification")
				case expiry == 0:
					p.Reportf(sink.Pos(), "externally decoded session document reaches AdoptSessionDoc without an expiry check")
				case verify < expiry:
					p.Reportf(sink.Pos(), "signature verified before the expiry check on the path to AdoptSessionDoc; check expiry first so expired tickets stay a typed, cheap rejection")
				}
			}
		}
		return nil
	}
	return a
}

// firstBefore returns the smallest position in list strictly before
// limit (0 when none).
func firstBefore(list []token.Pos, limit token.Pos) token.Pos {
	var best token.Pos
	for _, p := range list {
		if p < limit && (best == 0 || p < best) {
			best = p
		}
	}
	return best
}
