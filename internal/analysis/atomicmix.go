package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// atomicmix flags fields (and package variables) that are accessed both
// through sync/atomic package functions (atomic.LoadInt64(&x.f, …)) and
// by plain reads/writes elsewhere in the module: the plain access races
// the atomic one and the race detector only catches it when both sides
// execute under test. Typed atomics (atomic.Int64 et al.) are immune by
// construction and are the preferred fix; deliberate cold-path plain
// access (e.g. a constructor before publication) carries a lint:allow.
// Module-wide because the atomic side and the plain side are usually in
// different files or packages.
func atomicmix() *Analyzer {
	a := &Analyzer{
		Name: "atomicmix",
		Doc:  "a field accessed via sync/atomic must not also be read/written directly",
	}
	a.RunModule = func(p *ModulePass) error {
		atomicSites := make(map[*types.Var][]token.Pos) // var → atomic access sites
		atomicIdents := make(map[*ast.Ident]bool)       // idents inside atomic call args
		for _, pkg := range p.Pkgs {
			for _, file := range pkg.Files {
				collectAtomicUses(pkg, file, atomicSites, atomicIdents)
			}
		}
		if len(atomicSites) == 0 {
			return nil
		}
		for v := range atomicSites {
			sort.Slice(atomicSites[v], func(i, j int) bool { return atomicSites[v][i] < atomicSites[v][j] })
		}
		for _, pkg := range p.Pkgs {
			for _, file := range pkg.Files {
				reportPlainUses(p, pkg, file, atomicSites, atomicIdents)
			}
		}
		return nil
	}
	return a
}

// collectAtomicUses records variables whose address is passed to a
// sync/atomic package function, and every ident involved so those
// sites are not re-reported as plain uses.
func collectAtomicUses(pkg *Package, file *ast.File, sites map[*types.Var][]token.Pos, idents map[*ast.Ident]bool) {
	info := pkg.TypesInfo
	ast.Inspect(file, func(an ast.Node) bool {
		call, ok := an.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true // typed atomics (atomic.Int64 methods) are safe
		}
		if len(call.Args) == 0 {
			return true
		}
		addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok || addr.Op != token.AND {
			return true
		}
		var id *ast.Ident
		switch target := ast.Unparen(addr.X).(type) {
		case *ast.Ident:
			id = target
		case *ast.SelectorExpr:
			id = target.Sel
		default:
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		sites[v] = append(sites[v], call.Pos())
		idents[id] = true
		return true
	})
}

// reportPlainUses flags every non-atomic mention of an atomically
// accessed variable, skipping composite-literal keys (field names, not
// accesses).
func reportPlainUses(p *ModulePass, pkg *Package, file *ast.File, sites map[*types.Var][]token.Pos, atomicIdents map[*ast.Ident]bool) {
	info := pkg.TypesInfo
	litKeys := make(map[*ast.Ident]bool)
	ast.Inspect(file, func(an ast.Node) bool {
		if cl, ok := an.(*ast.CompositeLit); ok {
			for _, el := range cl.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok {
						litKeys[key] = true
					}
				}
			}
		}
		return true
	})
	ast.Inspect(file, func(an ast.Node) bool {
		id, ok := an.(*ast.Ident)
		if !ok || atomicIdents[id] || litKeys[id] {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		poss, tracked := sites[v]
		if !tracked {
			return true
		}
		where := pkg.Fset.Position(poss[0])
		p.Reportf(id.Pos(), "%s is accessed with sync/atomic (e.g. %s:%d) but read/written directly here; use the atomic API (or a typed atomic) everywhere", v.Name(), shortPath(where.Filename), where.Line)
		return true
	})
}

// shortPath trims a path to its last two segments for findings.
func shortPath(path string) string {
	slash := 0
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == '\\' {
			slash++
			if slash == 2 {
				return path[i+1:]
			}
		}
	}
	return path
}
