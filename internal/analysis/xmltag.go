package analysis

import (
	"go/ast"
	"go/types"
	"reflect"
	"strconv"
)

// xmltag guards the wire-schema hygiene of structs that go through
// encoding/xml (the X-TNL credential/policy documents of §5 travel as
// XML; a field silently marshaled under its Go name is a schema change
// nobody reviewed). Two rules:
//
//   - A struct declared in the analyzed package with at least one
//     xml-tagged field must tag every exported field — a half-tagged
//     struct means someone added a field and forgot the wire name.
//   - Any named struct passed to encoding/xml marshal/unmarshal entry
//     points must tag every exported field, reported at the call site
//     so uses of structs from other packages are still caught.
//
// `xml:"-"` counts as an explicit decision and satisfies both rules.
func xmltag() *Analyzer {
	a := &Analyzer{
		Name: "xmltag",
		Doc:  "structs serialized with encoding/xml carry explicit xml tags on every exported field",
	}
	a.Run = func(p *Pass) error {
		info := p.Pkg.TypesInfo
		// seen dedupes rule-1 and rule-2 reports for the same field.
		seen := make(map[string]bool)
		for _, file := range p.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.TypeSpec:
					if st, ok := n.Type.(*ast.StructType); ok {
						checkDeclaredStruct(p, n.Name.Name, st, seen)
					}
				case *ast.CallExpr:
					if arg := xmlPayloadArg(info, n); arg != nil {
						checkXMLArg(p, info, n, arg, seen)
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// checkDeclaredStruct applies rule 1 to a struct type declaration.
func checkDeclaredStruct(p *Pass, typeName string, st *ast.StructType, seen map[string]bool) {
	tagged := false
	for _, f := range st.Fields.List {
		if _, ok := fieldXMLTag(f); ok {
			tagged = true
			break
		}
	}
	if !tagged {
		return
	}
	for _, f := range st.Fields.List {
		if _, ok := fieldXMLTag(f); ok {
			continue
		}
		for _, name := range f.Names {
			if !name.IsExported() {
				continue
			}
			if key := typeName + "." + name.Name; !seen[key] {
				seen[key] = true
				p.Reportf(name.Pos(), "exported field %s.%s has no xml tag but sibling fields do; tag it (or xml:\"-\")", typeName, name.Name)
			}
		}
	}
}

// fieldXMLTag extracts the xml struct tag of a field.
func fieldXMLTag(f *ast.Field) (string, bool) {
	if f.Tag == nil {
		return "", false
	}
	raw, err := strconv.Unquote(f.Tag.Value)
	if err != nil {
		return "", false
	}
	return reflect.StructTag(raw).Lookup("xml")
}

// xmlPayloadArg returns the payload argument of an encoding/xml
// marshal/unmarshal call, or nil for other calls.
func xmlPayloadArg(info *types.Info, call *ast.CallExpr) ast.Expr {
	fn := callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/xml" {
		return nil
	}
	idx := -1
	switch fn.Name() {
	case "Marshal", "MarshalIndent", "Encode", "EncodeElement", "Decode", "DecodeElement":
		idx = 0
	case "Unmarshal":
		idx = 1
	}
	if idx < 0 || idx >= len(call.Args) {
		return nil
	}
	return call.Args[idx]
}

// checkXMLArg applies rule 2 to the payload of an encoding/xml call.
func checkXMLArg(p *Pass, info *types.Info, call *ast.CallExpr, arg ast.Expr, seen map[string]bool) {
	t := info.Types[arg].Type
	if t == nil {
		return
	}
	named, st := derefStruct(t)
	if named == nil {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() || f.Embedded() {
			continue
		}
		if _, ok := reflect.StructTag(st.Tag(i)).Lookup("xml"); ok {
			continue
		}
		key := named.Obj().Name() + "." + f.Name()
		if seen[key] {
			continue
		}
		seen[key] = true
		p.Reportf(call.Pos(), "%s is serialized with encoding/xml but exported field %s has no xml tag", named.Obj().Name(), f.Name())
	}
}
