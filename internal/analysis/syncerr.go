package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// syncerr flags call sites that discard the error from a Sync method —
// a niladic method named Sync returning exactly error, the fsync shape
// of os.File, faultinject.File and the store's own Sync entry points.
// An fsync is the storage engine's durability point: a swallowed Sync
// error acknowledges a write the disk may not have, exactly the bug
// class the crash-torture harness exists to catch. Flagged forms are
// the bare statement, defer, go, and blank-only assignment. Genuinely
// best-effort flushes carry //lint:allow syncerr with a reason.
func syncerr() *Analyzer {
	a := &Analyzer{
		Name: "syncerr",
		Doc:  "the error from a Sync() (fsync) call must be checked, not discarded",
	}
	a.Run = func(p *Pass) error {
		info := p.Pkg.TypesInfo
		check := func(pos token.Pos, call *ast.CallExpr, how string) {
			recv, ok := syncErrCall(info, call)
			if !ok {
				return
			}
			p.Reportf(pos, "%s discards the error from %s.Sync(); a swallowed fsync failure silently breaks durability", how, recv)
		}
		for _, file := range p.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok {
						check(n.Pos(), call, "statement")
					}
				case *ast.DeferStmt:
					check(n.Pos(), n.Call, "defer")
				case *ast.GoStmt:
					check(n.Pos(), n.Call, "go")
				case *ast.AssignStmt:
					if !allBlankExprs(n.Lhs) {
						return true
					}
					for _, rhs := range n.Rhs {
						if call, ok := rhs.(*ast.CallExpr); ok {
							check(n.Pos(), call, "blank assignment")
						}
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// syncErrCall matches `expr.Sync()` method calls whose signature is
// func() error. Package-qualified functions (pkg.Sync) and Sync methods
// with parameters or a different result shape are not fsync-shaped.
func syncErrCall(info *types.Info, call *ast.CallExpr) (recv string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Sync" || len(call.Args) != 0 {
		return "", false
	}
	selection, isMethod := info.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return "", false
	}
	sig, isSig := selection.Type().(*types.Signature)
	if !isSig || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return "", false
	}
	if !types.Identical(sig.Results().At(0).Type(), types.Universe.Lookup("error").Type()) {
		return "", false
	}
	return types.ExprString(sel.X), true
}

// allBlankExprs reports whether every expression is the blank identifier.
func allBlankExprs(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}
