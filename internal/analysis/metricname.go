package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// metricNameRE is the naming contract from the telemetry PR: snake_case,
// lower-case first letter, no trailing underscore. Unit/kind suffixes
// (_total, _seconds, _bytes) are checked per constructor below.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*[a-z0-9]$`)

// metricUse records where a metric name was first registered and as
// what kind, for the module-wide uniqueness check.
type metricUse struct {
	kind string
	pos  token.Position
}

// metricname checks every string literal handed to the telemetry
// constructors (Registry.Counter/Gauge/Histogram/LatencyHistogram and
// anything else with those method names defined in a telemetry
// package): the name must be a compile-time constant matching the
// naming contract, counters must end in _total, latency histograms in
// _seconds, gauges must not carry a unit suffix, label key/value
// arguments must pair up, and a name must keep one kind module-wide —
// the same series emitted as both counter and gauge corrupts the
// Prometheus exposition and the Fig. 9 run reports.
//
// The analyzer keeps state across packages, so it must come from
// Suite() fresh per run; the telemetry package itself is exempt (its
// internals forward names between constructors).
func metricname() *Analyzer {
	a := &Analyzer{
		Name: "metricname",
		Doc:  "telemetry metric names are constant snake_case with kind-correct suffixes, paired labels, and one kind per name module-wide",
	}
	seen := make(map[string]metricUse)
	a.Run = func(p *Pass) error {
		if pkgPathHasSuffix(p.Pkg.Path, "telemetry") {
			return nil
		}
		info := p.Pkg.TypesInfo
		for _, file := range p.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				kind, labelStart := metricConstructor(info, call)
				if kind == "" || len(call.Args) == 0 {
					return true
				}
				checkMetricCall(p, info, seen, call, kind, labelStart)
				return true
			})
		}
		return nil
	}
	return a
}

// metricConstructor classifies a call as one of the telemetry
// constructors, returning the metric kind and the index where label
// key/value arguments begin ("" when the call is something else).
func metricConstructor(info *types.Info, call *ast.CallExpr) (kind string, labelStart int) {
	fn := callee(info, call)
	if fn == nil || fn.Pkg() == nil || !pkgPathHasSuffix(fn.Pkg().Path(), "telemetry") {
		return "", 0
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
		return "", 0
	}
	switch fn.Name() {
	case "Counter":
		return "counter", 1
	case "Gauge":
		return "gauge", 1
	case "Histogram":
		return "histogram", 2 // (name, buckets, labels...)
	case "LatencyHistogram":
		return "latency histogram", 1
	}
	return "", 0
}

func checkMetricCall(p *Pass, info *types.Info, seen map[string]metricUse, call *ast.CallExpr, kind string, labelStart int) {
	nameArg := call.Args[0]
	name, ok := constString(info, nameArg)
	if !ok {
		p.Reportf(nameArg.Pos(), "%s name must be a constant string so the series set is greppable", kind)
		return
	}
	switch {
	case !metricNameRE.MatchString(name):
		p.Reportf(nameArg.Pos(), "%s name %q must match %s", kind, name, metricNameRE)
	case kind == "counter" && !strings.HasSuffix(name, "_total"):
		p.Reportf(nameArg.Pos(), "counter name %q must end in _total", name)
	case kind == "latency histogram" && !strings.HasSuffix(name, "_seconds"):
		p.Reportf(nameArg.Pos(), "latency histogram name %q must end in _seconds", name)
	case kind == "gauge" && hasUnitSuffix(name):
		p.Reportf(nameArg.Pos(), "gauge name %q must not carry a _total/_seconds/_bytes suffix", name)
	}
	if len(call.Args) > labelStart && !call.Ellipsis.IsValid() {
		if nlabels := len(call.Args) - labelStart; nlabels%2 != 0 {
			p.Reportf(call.Args[labelStart].Pos(), "%s %q has %d label arguments; labels are key/value pairs", kind, name, nlabels)
		}
	}
	// Histograms share one kind bucket: LatencyHistogram is sugar over
	// Histogram, so the same name through either is consistent.
	kindKey := kind
	if kind == "latency histogram" {
		kindKey = "histogram"
	}
	pos := p.Fset.Position(nameArg.Pos())
	if prev, ok := seen[name]; ok {
		if prev.kind != kindKey {
			p.Reportf(nameArg.Pos(), "metric %q already registered as a %s at %s:%d; one kind per name", name, prev.kind, prev.pos.Filename, prev.pos.Line)
		}
		return
	}
	seen[name] = metricUse{kind: kindKey, pos: pos}
}

func hasUnitSuffix(name string) bool {
	for _, s := range []string{"_total", "_seconds", "_bytes"} {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}
