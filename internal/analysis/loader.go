package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	Path      string // import path, e.g. trustvo/internal/wsrpc
	Name      string // package name, e.g. wsrpc or main
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader resolves import paths to directories under registered roots,
// parses and type-checks them (non-test files only), and falls back to
// the go/importer source importer for everything else — which is how a
// stdlib-only driver reaches net/http and friends without export data.
//
// Loader implements types.Importer, so loaded packages can import each
// other and the stdlib freely; results are cached per path.
type Loader struct {
	Fset *token.FileSet

	roots   []loaderRoot
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// loaderRoot maps an import-path prefix to a directory. An empty prefix
// matches any path whose directory exists under dir (used by the golden
// testdata root, which acts like a tiny GOPATH src tree).
type loaderRoot struct {
	prefix string
	dir    string
}

// NewLoader returns an empty loader with its own FileSet. The source
// importer is bound to the same FileSet so all positions stay coherent.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// AddRoot registers a directory serving import paths that start with
// prefix ("" matches any path that resolves to an existing directory).
func (l *Loader) AddRoot(prefix, dir string) {
	l.roots = append(l.roots, loaderRoot{prefix: prefix, dir: dir})
}

// dirFor resolves an import path against the registered roots.
func (l *Loader) dirFor(path string) (string, bool) {
	for _, r := range l.roots {
		switch {
		case r.prefix != "" && path == r.prefix:
			return r.dir, true
		case r.prefix != "" && strings.HasPrefix(path, r.prefix+"/"):
			return filepath.Join(r.dir, filepath.FromSlash(strings.TrimPrefix(path, r.prefix+"/"))), true
		case r.prefix == "":
			dir := filepath.Join(r.dir, filepath.FromSlash(path))
			if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
				return dir, true
			}
		}
	}
	return "", false
}

// Import implements types.Importer over the registered roots with a
// stdlib source-importer fallback.
func (l *Loader) Import(path string) (*types.Package, error) {
	if _, ok := l.dirFor(path); ok {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package at the import path, loading
// its root-resident dependencies first. Test files are skipped: the
// analyzers enforce invariants on shipping code, and _test.go files may
// import packages outside the roots.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("analysis: %s is outside every loader root", path)
	}
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset}
	for _, name := range names {
		file, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, file)
	}
	pkg.TypesInfo = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, pkg.Files, pkg.TypesInfo)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	pkg.Types = tpkg
	pkg.Name = tpkg.Name()
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadModule walks the module rooted at dir (its import-path prefix
// must already be registered via AddRoot) and loads every package under
// it, skipping testdata, vendor, and dot-directories. Packages come
// back sorted by import path so analyzer state and findings are
// deterministic.
func (l *Loader) LoadModule(prefix string) ([]*Package, error) {
	var rootDir string
	for _, r := range l.roots {
		if r.prefix == prefix {
			rootDir = r.dir
		}
	}
	if rootDir == "" {
		return nil, fmt.Errorf("analysis: no root registered for %s", prefix)
	}
	var paths []string
	err := filepath.WalkDir(rootDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != rootDir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFileNames(p)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(rootDir, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, prefix)
		} else {
			paths = append(paths, prefix+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goFileNames lists the non-test Go files in dir, sorted.
func goFileNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod and returns that directory plus the declared module path.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}
