package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	Path      string // import path, e.g. trustvo/internal/wsrpc
	Name      string // package name, e.g. wsrpc or main
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader resolves import paths to directories under registered roots,
// parses and type-checks them (non-test files only), and falls back to
// the go/importer source importer for everything else — which is how a
// stdlib-only driver reaches net/http and friends without export data.
//
// Loader implements types.Importer, so loaded packages can import each
// other and the stdlib freely; results are cached per path. The loader
// is safe for the concurrent use LoadModule makes of it: the package
// cache is mutex-guarded and the stdlib source importer — which is not
// concurrency-safe — is serialized behind its own lock.
type Loader struct {
	Fset *token.FileSet

	roots []loaderRoot
	std   types.Importer
	stdMu sync.Mutex // the source importer mutates shared state per Import

	mu      sync.Mutex
	pkgs    map[string]*Package
	loading map[string]bool
}

// loaderRoot maps an import-path prefix to a directory. An empty prefix
// matches any path whose directory exists under dir (used by the golden
// testdata root, which acts like a tiny GOPATH src tree).
type loaderRoot struct {
	prefix string
	dir    string
}

// NewLoader returns an empty loader with its own FileSet. The source
// importer is bound to the same FileSet so all positions stay coherent.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// AddRoot registers a directory serving import paths that start with
// prefix ("" matches any path that resolves to an existing directory).
func (l *Loader) AddRoot(prefix, dir string) {
	l.roots = append(l.roots, loaderRoot{prefix: prefix, dir: dir})
}

// dirFor resolves an import path against the registered roots.
func (l *Loader) dirFor(path string) (string, bool) {
	for _, r := range l.roots {
		switch {
		case r.prefix != "" && path == r.prefix:
			return r.dir, true
		case r.prefix != "" && strings.HasPrefix(path, r.prefix+"/"):
			return filepath.Join(r.dir, filepath.FromSlash(strings.TrimPrefix(path, r.prefix+"/"))), true
		case r.prefix == "":
			dir := filepath.Join(r.dir, filepath.FromSlash(path))
			if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
				return dir, true
			}
		}
	}
	return "", false
}

// Import implements types.Importer over the registered roots with a
// stdlib source-importer fallback.
func (l *Loader) Import(path string) (*types.Package, error) {
	if _, ok := l.dirFor(path); ok {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

// Load parses and type-checks the package at the import path, loading
// its root-resident dependencies first. Test files are skipped: the
// analyzers enforce invariants on shipping code, and _test.go files may
// import packages outside the roots.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.cached(path); ok {
		return pkg, nil
	}
	if !l.beginLoad(path) {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	defer l.endLoad(path)

	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("analysis: %s is outside every loader root", path)
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	return l.check(path, dir, files)
}

// cached returns the loaded package for path, if any.
func (l *Loader) cached(path string) (*Package, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	pkg, ok := l.pkgs[path]
	return pkg, ok
}

// beginLoad marks path as in progress; false means a load of path is
// already on the stack — an import cycle.
func (l *Loader) beginLoad(path string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.loading[path] {
		return false
	}
	l.loading[path] = true
	return true
}

func (l *Loader) endLoad(path string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.loading, path)
}

// register publishes a checked package into the cache.
func (l *Loader) register(pkg *Package) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pkgs[pkg.Path] = pkg
}

// parseDir parses every non-test Go file in dir.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		file, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, file)
	}
	return files, nil
}

// check type-checks pre-parsed files and registers the result. The
// loader mutex is NOT held across the check: the checker re-enters the
// loader through Import for dependencies.
func (l *Loader) check(path, dir string, files []*ast.File) (*Package, error) {
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files}
	pkg.TypesInfo = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, pkg.Files, pkg.TypesInfo)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	pkg.Types = tpkg
	pkg.Name = tpkg.Name()
	l.register(pkg)
	return pkg, nil
}

// LoadModule walks the module rooted at dir (its import-path prefix
// must already be registered via AddRoot) and loads every package under
// it, skipping testdata, vendor, and dot-directories. Packages come
// back sorted by import path so analyzer state and findings are
// deterministic.
//
// Loading is parallel in three phases: every package's files parse
// concurrently (the FileSet serializes internally); the module-internal
// import DAG is read straight off the parsed ASTs; then packages
// type-check level by level — each level's packages only depend on
// completed levels, so they check concurrently, re-entering the loader
// only for cache hits and (serialized) stdlib imports.
func (l *Loader) LoadModule(prefix string) ([]*Package, error) {
	var rootDir string
	for _, r := range l.roots {
		if r.prefix == prefix {
			rootDir = r.dir
		}
	}
	if rootDir == "" {
		return nil, fmt.Errorf("analysis: no root registered for %s", prefix)
	}
	var paths []string
	dirs := make(map[string]string)
	err := filepath.WalkDir(rootDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != rootDir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFileNames(p)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(rootDir, p)
		if err != nil {
			return err
		}
		path := prefix
		if rel != "." {
			path = prefix + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, path)
		dirs[path] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)

	// Phase 1: parse every package concurrently.
	parsed := make([][]*ast.File, len(paths))
	errs := make([]error, len(paths))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, p := range paths {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, dir string) {
			defer wg.Done()
			defer func() { <-sem }()
			parsed[i], errs[i] = l.parseDir(dir)
		}(i, dirs[p])
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", paths[i], err)
		}
	}

	// Phase 2: module-internal import DAG from the ASTs, collapsed into
	// topological levels (level = longest dependency chain below).
	levels, err := importLevels(paths, parsed)
	if err != nil {
		return nil, err
	}

	// Phase 3: type-check level by level, packages within a level in
	// parallel.
	index := make(map[string]int, len(paths))
	for i, p := range paths {
		index[p] = i
	}
	for _, level := range levels {
		var lwg sync.WaitGroup
		lerrs := make([]error, len(level))
		for k, i := range level {
			lwg.Add(1)
			sem <- struct{}{}
			go func(k, i int) {
				defer lwg.Done()
				defer func() { <-sem }()
				path := paths[i]
				if _, done := l.cached(path); done {
					return
				}
				_, lerrs[k] = l.check(path, dirs[path], parsed[i])
			}(k, i)
		}
		lwg.Wait()
		for _, err := range lerrs {
			if err != nil {
				return nil, err
			}
		}
	}

	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p) // cache hit
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// importLevels groups package indices into dependency levels: packages
// in level k import module-internal packages only from levels < k. A
// residual cycle (impossible in valid Go, but cheap to guard) is
// reported rather than silently dropped.
func importLevels(paths []string, parsed [][]*ast.File) ([][]int, error) {
	index := make(map[string]int, len(paths))
	for i, p := range paths {
		index[p] = i
	}
	deps := make([][]int, len(paths))
	for i, files := range parsed {
		seen := make(map[int]bool)
		for _, f := range files {
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if j, ok := index[ip]; ok && j != i && !seen[j] {
					seen[j] = true
					deps[i] = append(deps[i], j)
				}
			}
		}
	}
	level := make([]int, len(paths))
	for i := range level {
		level[i] = -1
	}
	assigned := 0
	for assigned < len(paths) {
		progressed := false
		for i := range paths {
			if level[i] >= 0 {
				continue
			}
			max := -1
			ok := true
			for _, j := range deps[i] {
				if level[j] < 0 {
					ok = false
					break
				}
				if level[j] > max {
					max = level[j]
				}
			}
			if ok {
				level[i] = max + 1
				assigned++
				progressed = true
			}
		}
		if !progressed {
			var stuck []string
			for i, lv := range level {
				if lv < 0 {
					stuck = append(stuck, paths[i])
				}
			}
			return nil, fmt.Errorf("analysis: import cycle among %s", strings.Join(stuck, ", "))
		}
	}
	maxLevel := 0
	for _, lv := range level {
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	out := make([][]int, maxLevel+1)
	for i, lv := range level {
		out[lv] = append(out[lv], i)
	}
	return out, nil
}

// goFileNames lists the non-test Go files in dir, sorted.
func goFileNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod and returns that directory plus the declared module path.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}
