package analysis

import (
	"go/ast"
	"go/types"
)

// nakedlock flags a sync.Mutex/RWMutex Lock or RLock whose very next
// statement in the block is not the matching defer Unlock: every early
// return between a naked Lock and its Unlock is a deadlock waiting for
// the next refactor (the telemetry and suspend paths run under these
// locks while handling live negotiations). Deliberate short critical
// sections — lock, snapshot, unlock before slow work — carry
// //lint:allow nakedlock with a reason.
func nakedlock() *Analyzer {
	a := &Analyzer{
		Name: "nakedlock",
		Doc:  "mu.Lock() is immediately followed by defer mu.Unlock() (same for RLock/RUnlock) unless annotated",
	}
	a.Run = func(p *Pass) error {
		info := p.Pkg.TypesInfo
		for _, file := range p.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				var list []ast.Stmt
				switch n := n.(type) {
				case *ast.BlockStmt:
					list = n.List
				case *ast.CaseClause:
					list = n.Body
				case *ast.CommClause:
					list = n.Body
				default:
					return true
				}
				for i, stmt := range list {
					recv, method, ok := mutexLockStmt(info, stmt)
					if !ok {
						continue
					}
					want := "Unlock"
					if method == "RLock" {
						want = "RUnlock"
					}
					if i+1 < len(list) && isDeferUnlock(list[i+1], recv, want) {
						continue
					}
					p.Reportf(stmt.Pos(), "%s.%s() is not immediately followed by defer %s.%s(); an early return leaks the lock", recv, method, recv, want)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// mutexLockStmt matches `expr.Lock()` / `expr.RLock()` statements where
// expr is a sync.Mutex or sync.RWMutex (possibly behind a pointer) and
// returns the rendered receiver expression and the method name.
func mutexLockStmt(info *types.Info, stmt ast.Stmt) (recv, method string, ok bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return "", "", false
	}
	t := info.Types[sel.X].Type
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || (obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// isDeferUnlock matches `defer recv.want()` for the textually same
// receiver expression.
func isDeferUnlock(stmt ast.Stmt, recv, want string) bool {
	ds, ok := stmt.(*ast.DeferStmt)
	if !ok {
		return false
	}
	sel, ok := ds.Call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != want {
		return false
	}
	return types.ExprString(sel.X) == recv
}
