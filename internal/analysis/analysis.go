// Package analysis is a hand-rolled static-analysis driver for this
// module: a stdlib-only (go/parser + go/types + go/importer, no
// golang.org/x/tools) harness that loads every package under the module,
// runs a suite of domain analyzers, and reports findings with file:line
// positions.
//
// The analyzers encode invariants that earlier PRs established by
// convention — context propagation through the transport paths, %w error
// wrapping, telemetry metric naming, explicit wire tags on serialized
// structs, defer-paired mutex use, and checked fsync errors in the
// storage engine — so that a regression fails CI
// instead of silently eroding the fault-tolerance and observability
// story. See DESIGN.md ("Static analysis") for the analyzer↔invariant
// table and cmd/vetvo for the CLI.
//
// Deliberate exceptions are annotated in source with
//
//	//lint:allow <analyzer>[,<analyzer>...] [reason]
//
// on the offending line or the line directly above it.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer hit at a source position. File is absolute as
// loaded; cmd/vetvo relativizes it to the module root before printing.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// Analyzer is one named check. Run is invoked once per package, in
// sorted package-path order; an analyzer may keep state across calls
// (metricname does, for module-wide name uniqueness), which is why
// Suite returns fresh instances rather than sharing globals.
//
// RunModule, when set, is invoked once with every loaded package and a
// shared interprocedural Module (call graph + per-function summaries)
// after all per-package runs. An analyzer sets Run, RunModule, or both.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass) error
	RunModule func(*ModulePass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	report   func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass carries the whole module through one interprocedural
// analyzer: every loaded package plus the shared call graph and summary
// layer, built once and reused by all module analyzers in a run.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package
	Module   *Module
	report   func(Finding)
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suite returns fresh instances of every analyzer, in reporting order.
// The first six are per-package syntactic checks from PR 3; the last
// four ride the interprocedural Module layer (call graph + summaries).
func Suite() []*Analyzer {
	return []*Analyzer{
		ctxpropagate(),
		errwrap(),
		metricname(),
		xmltag(),
		nakedlock(),
		syncerr(),
		lockorder(),
		goroleak(),
		credtaint(),
		atomicmix(),
	}
}

// Select filters a suite down by -only / -skip style name lists and
// errors on unknown names so typos fail loudly.
func Select(suite []*Analyzer, only, skip []string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	for _, n := range append(append([]string{}, only...), skip...) {
		if byName[n] == nil {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
	}
	skipped := make(map[string]bool, len(skip))
	for _, n := range skip {
		skipped[n] = true
	}
	var out []*Analyzer
	for _, a := range suite {
		if skipped[a.Name] {
			continue
		}
		if len(only) > 0 {
			keep := false
			for _, n := range only {
				if n == a.Name {
					keep = true
				}
			}
			if !keep {
				continue
			}
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes each analyzer over each package — then each module
// analyzer once over all packages together — and returns the surviving
// findings sorted by position. Findings suppressed by a lint:allow
// directive on their line (or the line above) are dropped.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		allow := allowIndex(pkg)
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Pkg:      pkg,
				report: func(f Finding) {
					if allow.suppressed(f) {
						return
					}
					findings = append(findings, f)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	var moduleAnalyzers []*Analyzer
	for _, a := range analyzers {
		if a.RunModule != nil {
			moduleAnalyzers = append(moduleAnalyzers, a)
		}
	}
	if len(moduleAnalyzers) > 0 && len(pkgs) > 0 {
		mod := NewModule(pkgs)
		allow := make(allowDirectives)
		for _, pkg := range pkgs {
			for file, lines := range allowIndex(pkg) {
				allow[file] = lines
			}
		}
		for _, a := range moduleAnalyzers {
			pass := &ModulePass{
				Analyzer: a,
				Fset:     pkgs[0].Fset,
				Pkgs:     pkgs,
				Module:   mod,
				report: func(f Finding) {
					if allow.suppressed(f) {
						return
					}
					findings = append(findings, f)
				},
			}
			if err := a.RunModule(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s: %w", a.Name, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// allowDirectives maps file → line → set of analyzer names allowed
// there. A directive covers its own line and the line below it, so both
// end-of-line and stand-alone comment placement work.
type allowDirectives map[string]map[int]map[string]bool

func (d allowDirectives) suppressed(f Finding) bool {
	lines := d[f.File]
	if lines == nil {
		return false
	}
	return lines[f.Line][f.Analyzer] || lines[f.Line-1][f.Analyzer]
}

func allowIndex(pkg *Package) allowDirectives {
	idx := make(allowDirectives)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "lint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					lines[pos.Line] = set
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name != "" {
						set[name] = true
					}
				}
			}
		}
	}
	return idx
}
