package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// lockorder builds the module's global mutex-acquisition-order graph:
// an edge A→B means some execution path acquires B (directly, or
// transitively through calls) while holding A. Any cycle in that graph
// is a potential deadlock — two goroutines entering the cycle from
// different locks wait on each other forever. The reported witness
// names the functions and call chains realizing each edge. The check is
// instance-insensitive (locks are fields, not objects), so A→A
// self-edges are not reported: striped and per-entry locks of the same
// field are different instances.
func lockorder() *Analyzer {
	a := &Analyzer{
		Name: "lockorder",
		Doc:  "no cycle in the global mutex acquisition-order graph (potential deadlock), witnessed by call chains",
	}
	a.RunModule = func(p *ModulePass) error {
		lo := &lockOrder{
			mod:   p.Module,
			acq:   make(map[*FuncNode]map[string]acqTrace),
			edges: make(map[string]map[string]*lockEdge),
		}
		lo.transAcquires()
		lo.buildEdges()
		for _, c := range lo.cycles() {
			p.Reportf(c.pos, "%s", c.message)
		}
		return nil
	}
	return a
}

// acqTrace records how a function comes to acquire a lock: directly at
// pos, or via a call at pos into another node.
type acqTrace struct {
	pos token.Pos
	via *FuncNode // nil for a direct acquire
}

type lockEdge struct {
	from, to string
	node     *FuncNode // function realizing the ordering
	pos      token.Pos // acquire or call position inside node
	via      *FuncNode // non-nil when `to` is acquired through this callee
}

type lockOrder struct {
	mod   *Module
	acq   map[*FuncNode]map[string]acqTrace
	edges map[string]map[string]*lockEdge
}

// transAcquires computes, for every function, the set of locks it may
// acquire transitively through calls (spawned goroutines excluded:
// their acquires happen on another stack).
func (lo *lockOrder) transAcquires() {
	nodes := lo.mod.graph.Nodes
	for _, n := range nodes {
		lo.acq[n] = make(map[string]acqTrace)
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			sum := lo.mod.sums[n]
			for _, op := range sum.Ops {
				switch op.Kind {
				case OpAcquire:
					if _, ok := lo.acq[n][op.Lock]; !ok {
						lo.acq[n][op.Lock] = acqTrace{pos: op.Pos}
						changed = true
					}
				case OpCall:
					for _, t := range op.Targets {
						for lock := range lo.acq[t] {
							if _, ok := lo.acq[n][lock]; !ok {
								lo.acq[n][lock] = acqTrace{pos: op.Pos, via: t}
								changed = true
							}
						}
					}
				}
			}
		}
	}
}

// buildEdges scans every op: acquiring (or calling into an acquire of)
// lock B while holding A adds edge A→B. First witness wins.
func (lo *lockOrder) buildEdges() {
	for _, n := range lo.mod.graph.Nodes {
		sum := lo.mod.sums[n]
		for _, op := range sum.Ops {
			switch op.Kind {
			case OpAcquire:
				for _, held := range op.Held {
					lo.addEdge(held, op.Lock, &lockEdge{node: n, pos: op.Pos})
				}
			case OpCall:
				if len(op.Held) == 0 {
					continue
				}
				for _, t := range op.Targets {
					for lock := range lo.acq[t] {
						for _, held := range op.Held {
							lo.addEdge(held, lock, &lockEdge{node: n, pos: op.Pos, via: t})
						}
					}
				}
			}
		}
	}
}

func (lo *lockOrder) addEdge(from, to string, e *lockEdge) {
	if from == to {
		return // instance-insensitive: same-field locks are distinct instances
	}
	m := lo.edges[from]
	if m == nil {
		m = make(map[string]*lockEdge)
		lo.edges[from] = m
	}
	if m[to] == nil {
		e.from, e.to = from, to
		m[to] = e
	}
}

type lockCycle struct {
	pos     token.Pos
	message string
}

// cycles finds each distinct lock cycle: for every edge a→b, the
// shortest path b→…→a closes a cycle; cycles are deduplicated by their
// lock set and reported with the full witness chain.
func (lo *lockOrder) cycles() []lockCycle {
	var froms []string
	for f := range lo.edges {
		froms = append(froms, f)
	}
	sort.Strings(froms)
	seen := make(map[string]bool)
	var out []lockCycle
	for _, a := range froms {
		var tos []string
		for t := range lo.edges[a] {
			tos = append(tos, t)
		}
		sort.Strings(tos)
		for _, b := range tos {
			path := lo.shortestPath(b, a)
			if path == nil {
				continue
			}
			cycle := append([]string{a}, path...) // a, b, …, a
			key := cycleKey(cycle)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, lo.describe(cycle))
		}
	}
	return out
}

// shortestPath runs BFS from→to over the edge graph; the returned path
// includes both endpoints.
func (lo *lockOrder) shortestPath(from, to string) []string {
	prev := map[string]string{from: from}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == to {
			var path []string
			for n := to; ; n = prev[n] {
				path = append([]string{n}, path...)
				if n == from {
					return path
				}
			}
		}
		var nexts []string
		for n := range lo.edges[cur] {
			nexts = append(nexts, n)
		}
		sort.Strings(nexts)
		for _, n := range nexts {
			if _, ok := prev[n]; !ok {
				prev[n] = cur
				queue = append(queue, n)
			}
		}
	}
	return nil
}

func cycleKey(cycle []string) string {
	set := append([]string(nil), cycle[:len(cycle)-1]...)
	sort.Strings(set)
	return strings.Join(set, "|")
}

// describe renders one cycle with a witness per edge.
func (lo *lockOrder) describe(cycle []string) lockCycle {
	var witnesses []string
	var pos token.Pos
	for i := 0; i+1 < len(cycle); i++ {
		e := lo.edges[cycle[i]][cycle[i+1]]
		if e == nil {
			continue
		}
		if pos == 0 {
			pos = e.pos
		}
		w := fmt.Sprintf("%s holds %s and acquires %s", e.node.Name(), e.from, e.to)
		if e.via != nil {
			w += " via " + lo.chain(e.via, e.to)
		}
		witnesses = append(witnesses, w)
	}
	return lockCycle{
		pos: pos,
		message: fmt.Sprintf("lock-order cycle %s (potential deadlock): %s",
			strings.Join(cycle, " -> "), strings.Join(witnesses, "; ")),
	}
}

// chain renders the call chain from a callee down to where lock is
// actually acquired.
func (lo *lockOrder) chain(n *FuncNode, lock string) string {
	names := []string{n.Name()}
	for depth := 0; depth < 12; depth++ {
		tr, ok := lo.acq[n][lock]
		if !ok || tr.via == nil {
			break
		}
		n = tr.via
		names = append(names, n.Name())
	}
	return strings.Join(names, " -> ")
}
