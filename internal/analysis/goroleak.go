package analysis

import (
	"fmt"
	"go/token"
)

// goroleak flags concurrency resources started without a reachable
// stop/cancel path:
//
//   - `go f(...)` where f (transitively) parks in a `for { }` loop with
//     no return, break, select, or channel receive — nothing can ever
//     stop that goroutine;
//   - time.NewTicker/NewTimer results that are never stopped: no
//     Stop/Reset in the creating function and, for tickers stored into
//     a struct field, no Stop on that field anywhere in the module;
//   - time.Tick, which leaks its ticker by design; and
//   - time.After racing other select cases — when the other case wins,
//     the timer burns memory until it fires; a NewTimer with defer Stop
//     releases it immediately (see wsrpc's sleepCtx for the pattern).
func goroleak() *Analyzer {
	a := &Analyzer{
		Name: "goroleak",
		Doc:  "goroutines, tickers, and timers must have a reachable stop/cancel path",
	}
	a.RunModule = func(p *ModulePass) error {
		m := p.Module
		for _, n := range m.graph.Nodes {
			sum := m.sums[n]
			for _, op := range sum.Ops {
				if op.Kind != OpSpawn {
					continue
				}
				for _, t := range op.Targets {
					if chain, pos := m.foreverChain(t, nil); pos != 0 {
						p.Reportf(op.Pos, "goroutine runs %s, which loops forever with no return, select, or channel receive — it can never be stopped", chain)
						break
					}
				}
			}
			for _, site := range sum.Timers {
				switch site.Kind {
				case "Tick":
					p.Reportf(site.Pos, "time.Tick leaks its ticker; use time.NewTicker with defer Stop")
				case "After":
					if site.InSelect && site.Cases > 1 {
						p.Reportf(site.Pos, "time.After in a select with competing cases leaks the timer until it fires; use time.NewTimer with defer Stop")
					}
				case "NewTicker", "NewTimer":
					if site.Stopped || site.Escapes {
						continue
					}
					if site.FieldVar != nil && m.stoppedFields[site.FieldVar] {
						continue
					}
					where := "no Stop in this function"
					if site.FieldVar != nil {
						where = fmt.Sprintf("stored to field %s, which is never stopped", site.FieldVar.Name())
					}
					p.Reportf(site.Pos, "time.%s result is never stopped (%s); the ticker leaks", site.Kind, where)
				}
			}
		}
		return nil
	}
	return a
}

// foreverChain reports whether node (or any function it calls,
// transitively) contains an unstoppable infinite loop, returning the
// call-chain description and the loop position.
func (m *Module) foreverChain(n *FuncNode, visited map[*FuncNode]bool) (string, token.Pos) {
	if visited[n] {
		return "", 0
	}
	if visited == nil {
		visited = make(map[*FuncNode]bool)
	}
	visited[n] = true
	sum := m.sums[n]
	if sum == nil {
		return "", 0
	}
	if sum.ForeverLoop != 0 {
		return n.Name(), sum.ForeverLoop
	}
	for _, op := range sum.Ops {
		if op.Kind != OpCall {
			continue
		}
		for _, t := range op.Targets {
			if chain, pos := m.foreverChain(t, visited); pos != 0 {
				return n.Name() + " -> " + chain, pos
			}
		}
	}
	return "", 0
}
